module metacomm

go 1.22
