package metacomm_test

import (
	"testing"

	"metacomm/internal/device/pbx"
	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/filter"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/ldapserver"
	"metacomm/internal/lexpress"
	"metacomm/internal/ltap"
	"metacomm/internal/mcschema"
	"metacomm/internal/um"
)

// twoSwitchMappings implements the paper's §4.2 partitioning example: one
// switch accepts phone numbers beginning "+1 908 582 9", a second takes the
// rest of the 58x range. A telephone-number change that crosses the
// boundary must translate into a delete at one PBX and an add at the other.
const twoSwitchMappings = `
mapping PBX9ToLDAP source "pbx9" target "ldap" {
    key Extension -> definityExtension;
    map definityExtension = Extension;
    map definityName = Name;
    map cn = Name;
    map telephoneNumber = "+1 908 58" + group(Extension, "([0-9])-([0-9]+)", 1)
                          + " " + group(Extension, "([0-9])-([0-9]+)", 2);
    map lastUpdater = "pbx9";
    set objectClass = "mcPerson", "definityUser";
    owns definityExtension, definityName;
    derive sn = group(cn, ".* ([^ ]+)", 1);
    derive sn = cn;
}
mapping LDAPToPBX9 source "ldap" target "pbx9" {
    key definityExtension -> Extension;
    map Extension = definityExtension
                  ? group(telephoneNumber, "\\+1 908 58([0-9]) ([0-9]+)", 1) + "-"
                    + group(telephoneNumber, "\\+1 908 58([0-9]) ([0-9]+)", 2);
    map Name = definityName ? cn;
    partition when telephoneNumber like "+1 908 582 9*";
    originator lastUpdater;
}
mapping PBXOToLDAP source "pbxo" target "ldap" {
    key Extension -> definityExtension;
    map definityExtension = Extension;
    map definityName = Name;
    map cn = Name;
    map telephoneNumber = "+1 908 58" + group(Extension, "([0-9])-([0-9]+)", 1)
                          + " " + group(Extension, "([0-9])-([0-9]+)", 2);
    map lastUpdater = "pbxo";
    set objectClass = "mcPerson", "definityUser";
    owns definityExtension, definityName;
    derive sn = group(cn, ".* ([^ ]+)", 1);
    derive sn = cn;
}
mapping LDAPToPBXO source "ldap" target "pbxo" {
    key definityExtension -> Extension;
    map Extension = definityExtension
                  ? group(telephoneNumber, "\\+1 908 58([0-9]) ([0-9]+)", 1) + "-"
                    + group(telephoneNumber, "\\+1 908 58([0-9]) ([0-9]+)", 2);
    map Name = definityName ? cn;
    partition when telephoneNumber like "+1 908 58*"
              and not telephoneNumber like "+1 908 582 9*";
    originator lastUpdater;
}
mapping LDAPClosure2 source "ldap" target "ldap" {
    key cn -> cn;
    derive definityExtension = group(telephoneNumber, "\\+1 908 58([0-9]) ([0-9]+)", 1) + "-"
                               + group(telephoneNumber, "\\+1 908 58([0-9]) ([0-9]+)", 2)
                               when present(definityExtension);
}
`

// twoSwitchStack assembles a MetaComm instance with TWO PBX simulators and
// the number-range mappings, demonstrating the "new data sources can be
// easily added" claim (§7) — no code changes, only mapping text and wiring.
type twoSwitchStack struct {
	pbx9, pbxo *pbx.PBX
	manager    *um.UM
	client     *ldapclient.Conn
}

func newTwoSwitchStack(t *testing.T) *twoSwitchStack {
	t.Helper()
	suffix := dn.MustParse("o=Lucent")

	dit := directory.New(mcschema.New())
	attrs := directory.NewAttrs()
	attrs.Put("objectClass", "organization")
	if err := dit.Add(suffix, attrs); err != nil {
		t.Fatal(err)
	}
	dirSrv := ldapserver.NewServer(ldapserver.NewDITHandler(dit))
	dirAddr, err := dirSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dirSrv.Close)

	lib, err := lexpress.Compile(twoSwitchMappings)
	if err != nil {
		t.Fatal(err)
	}

	s := &twoSwitchStack{pbx9: pbx.NewNamed("pbx9"), pbxo: pbx.NewNamed("pbxo")}
	addr9, err := s.pbx9.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.pbx9.Close)
	addrO, err := s.pbxo.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.pbxo.Close)

	conv9, err := pbx.DialNamed(addr9.String(), "metacomm", "pbx9")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conv9.Close() })
	convO, err := pbx.DialNamed(addrO.String(), "metacomm", "pbxo")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { convO.Close() })
	f9, err := filter.NewDeviceFilter(conv9, lib)
	if err != nil {
		t.Fatal(err)
	}
	fO, err := filter.NewDeviceFilter(convO, lib)
	if err != nil {
		t.Fatal(err)
	}

	backing, err := ldapclient.Dial(dirAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backing.Close() })
	manager, err := um.New(um.Config{
		Suffix:         suffix,
		Backing:        backing,
		Library:        lib,
		ClosureMapping: "LDAPClosure2",
	})
	if err != nil {
		t.Fatal(err)
	}
	manager.AddDevice(f9)
	manager.AddDevice(fO)
	s.manager = manager

	gwBacking, err := ldapclient.Dial(dirAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gwBacking.Close() })
	gateway := ltap.NewGateway(gwBacking, manager)
	ltapSrv := ldapserver.NewServer(gateway)
	ltapAddr, err := ltapSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ltapSrv.Close)

	umLTAP, err := ldapclient.Dial(ltapAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { umLTAP.Close() })
	manager.SetLTAP(umLTAP)
	if err := manager.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(manager.Stop)

	s.client, err = ldapclient.Dial(ltapAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.client.Close() })
	return s
}

// TestMultiPBXNumberRangeMigration is the paper's migration example: "when
// a person's telephone number changes, the Definity PBX that manages the
// person's extension may also change. In this case lexpress translates a
// modification of a telephone number into two updates: a deletion in one
// PBX and an add in another PBX."
func TestMultiPBXNumberRangeMigration(t *testing.T) {
	s := newTwoSwitchStack(t)
	const person = "cn=Range Mover,o=Lucent"
	err := s.client.Add(person, []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
		{Type: "cn", Values: []string{"Range Mover"}},
		{Type: "sn", Values: []string{"Mover"}},
		{Type: "definityExtension", Values: []string{"2-9100"}},
		{Type: "telephoneNumber", Values: []string{"+1 908 582 9100"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Managed by the 582-9 switch only.
	if _, err := s.pbx9.Store.Get("2-9100"); err != nil {
		t.Fatalf("pbx9 should own the station: %v", err)
	}
	if s.pbxo.Store.Len() != 0 {
		t.Fatal("pbxo should not know this person yet")
	}

	// The number moves out of the 582-9 range.
	err = s.client.Modify(person, []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "telephoneNumber", Values: []string{"+1 908 583 1200"}}}})
	if err != nil {
		t.Fatal(err)
	}
	// Deleted at one PBX...
	if s.pbx9.Store.Len() != 0 {
		t.Error("station not deleted at pbx9")
	}
	// ...added at the other, with the closure-updated extension.
	station, err := s.pbxo.Store.Get("3-1200")
	if err != nil {
		t.Fatalf("station missing at pbxo: %v", err)
	}
	if station.First("name") != "Range Mover" {
		t.Errorf("migrated station = %v", station)
	}
	// The directory tracked the new extension.
	e, err := s.client.SearchOne(&ldap.SearchRequest{BaseDN: person, Scope: ldap.ScopeBaseObject})
	if err != nil {
		t.Fatal(err)
	}
	if e.First("definityExtension") != "3-1200" {
		t.Errorf("definityExtension = %q", e.First("definityExtension"))
	}

	// And back again.
	err = s.client.Modify(person, []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "telephoneNumber", Values: []string{"+1 908 582 9777"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if s.pbxo.Store.Len() != 0 {
		t.Error("station not deleted at pbxo on return")
	}
	if _, err := s.pbx9.Store.Get("2-9777"); err != nil {
		t.Errorf("station missing back at pbx9: %v", err)
	}
}

// TestMultiPBXDDUFromSecondSwitch: a DDU at the second switch reaches the
// directory with the right originator and is conditionally reapplied.
func TestMultiPBXDDUFromSecondSwitch(t *testing.T) {
	s := newTwoSwitchStack(t)
	admin, err := pbx.DialNamed(s.pbxoAddr(t), "craft", "pbxo")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	rec := lexpress.NewRecord()
	rec.Set("Extension", "3-4000")
	rec.Set("Name", "Second Switch User")
	if _, err := admin.Add(rec); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "directory entry from pbxo DDU", func() bool {
		e, err := s.client.SearchOne(&ldap.SearchRequest{
			BaseDN: "cn=Second Switch User,o=Lucent", Scope: ldap.ScopeBaseObject})
		return err == nil && e.First("lastUpdater") == "pbxo"
	})
	// The station exists only at the second switch.
	if s.pbx9.Store.Len() != 0 {
		t.Error("pbx9 acquired a station it does not manage")
	}
}

// pbxoAddr digs out the second switch's address for a direct admin session.
func (s *twoSwitchStack) pbxoAddr(t *testing.T) string {
	t.Helper()
	// The simulator does not expose its address; reuse the store via a
	// fresh listener-independent path: attach through the already-running
	// listener by asking the PBX for it.
	addr := s.pbxo.Addr()
	if addr == "" {
		t.Fatal("pbxo has no address")
	}
	return addr
}
