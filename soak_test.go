package metacomm_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	metacomm "metacomm"
	"metacomm/internal/ldap"
)

// TestConvergenceSoak hammers the same small population from three origins
// at once — LDAP clients, a PBX craft terminal, and a voicemail console —
// then stops and verifies the paper's core guarantee: every repository
// converges to the same values (relaxed write-write consistency, §4).
func TestConvergenceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	s := startSystem(t, metacomm.Config{})
	setup := client(t, s)

	const people = 6
	for i := 0; i < people; i++ {
		err := setup.Add(fmt.Sprintf("cn=Soak %d,o=Lucent", i), []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
			{Type: "cn", Values: []string{fmt.Sprintf("Soak %d", i)}},
			{Type: "sn", Values: []string{fmt.Sprintf("S%d", i)}},
			{Type: "definityExtension", Values: []string{fmt.Sprintf("2-70%02d", i)}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// LDAP writers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := s.Client()
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				dn := fmt.Sprintf("cn=Soak %d,o=Lucent", rng.Intn(people))
				conn.Modify(dn, []ldap.Change{{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber",
						Values: []string{fmt.Sprintf("L%d-%d", w, i)}}}})
			}
		}(w)
	}
	// A switch administrator making direct device updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		admin, err := s.PBXAdmin("soak-craft")
		if err != nil {
			t.Error(err)
			return
		}
		defer admin.Close()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ext := fmt.Sprintf("2-70%02d", rng.Intn(people))
			rec, err := admin.Get(ext)
			if err != nil {
				continue // mid-migration; retry another station
			}
			rec.Set("Room", fmt.Sprintf("D-%d", i))
			admin.Modify(ext, rec)
		}
	}()

	time.Sleep(1 * time.Second)
	close(stop)
	wg.Wait()

	// Quiescence: wait until the UM stops processing (DDU echoes drain).
	var last uint64
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur := s.UM.Stats().UpdatesProcessed
		if cur == last {
			break
		}
		last = cur
		if time.Now().After(deadline) {
			t.Fatal("UM never quiesced")
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Convergence check: every person's directory state matches the PBX.
	entries, err := setup.Search(&ldap.SearchRequest{
		BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.Present("definityExtension"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != people {
		t.Fatalf("directory has %d PBX users, want %d", len(entries), people)
	}
	for _, e := range entries {
		ext := e.First("definityExtension")
		station, err := s.PBX.Store.Get(ext)
		if err != nil {
			t.Errorf("station %s missing: %v", ext, err)
			continue
		}
		if got, want := station.First("room"), e.First("roomNumber"); got != want {
			t.Errorf("%s diverged: PBX room=%q directory room=%q", ext, got, want)
		}
		if got, want := station.First("name"), e.First("cn"); !strings.EqualFold(got, want) {
			t.Errorf("%s name diverged: %q vs %q", ext, got, want)
		}
	}
	stats := s.UM.Stats()
	t.Logf("soak: %d updates processed, %d device applies, %d reapplies, %d errors logged",
		stats.UpdatesProcessed, stats.DeviceApplies, stats.Reapplies, stats.ErrorsLogged)
}
