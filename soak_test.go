package metacomm_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	metacomm "metacomm"
	"metacomm/internal/ldap"
)

// TestConvergenceSoak hammers the same small population from three origins
// at once — LDAP clients, a PBX craft terminal, and a voicemail console —
// then stops and verifies the paper's core guarantee: every repository
// converges to the same values (relaxed write-write consistency, §4).
func TestConvergenceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	s := startSystem(t, metacomm.Config{})
	setup := client(t, s)

	const people = 6
	for i := 0; i < people; i++ {
		err := setup.Add(fmt.Sprintf("cn=Soak %d,o=Lucent", i), []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
			{Type: "cn", Values: []string{fmt.Sprintf("Soak %d", i)}},
			{Type: "sn", Values: []string{fmt.Sprintf("S%d", i)}},
			{Type: "definityExtension", Values: []string{fmt.Sprintf("2-70%02d", i)}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// LDAP writers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := s.Client()
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				dn := fmt.Sprintf("cn=Soak %d,o=Lucent", rng.Intn(people))
				conn.Modify(dn, []ldap.Change{{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber",
						Values: []string{fmt.Sprintf("L%d-%d", w, i)}}}})
			}
		}(w)
	}
	// A switch administrator making direct device updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		admin, err := s.PBXAdmin("soak-craft")
		if err != nil {
			t.Error(err)
			return
		}
		defer admin.Close()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ext := fmt.Sprintf("2-70%02d", rng.Intn(people))
			rec, err := admin.Get(ext)
			if err != nil {
				continue // mid-migration; retry another station
			}
			rec.Set("Room", fmt.Sprintf("D-%d", i))
			admin.Modify(ext, rec)
		}
	}()

	time.Sleep(1 * time.Second)
	close(stop)
	wg.Wait()

	// Quiescence: wait until the UM stops processing (DDU echoes drain).
	var last uint64
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur := s.UM.Stats().UpdatesProcessed
		if cur == last {
			break
		}
		last = cur
		if time.Now().After(deadline) {
			t.Fatal("UM never quiesced")
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Convergence check: every person's directory state matches the PBX.
	entries, err := setup.Search(&ldap.SearchRequest{
		BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.Present("definityExtension"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != people {
		t.Fatalf("directory has %d PBX users, want %d", len(entries), people)
	}
	for _, e := range entries {
		ext := e.First("definityExtension")
		station, err := s.PBX.Store.Get(ext)
		if err != nil {
			t.Errorf("station %s missing: %v", ext, err)
			continue
		}
		if got, want := station.First("room"), e.First("roomNumber"); got != want {
			t.Errorf("%s diverged: PBX room=%q directory room=%q", ext, got, want)
		}
		if got, want := station.First("name"), e.First("cn"); !strings.EqualFold(got, want) {
			t.Errorf("%s name diverged: %q vs %q", ext, got, want)
		}
	}
	stats := s.UM.Stats()
	t.Logf("soak: %d updates processed, %d device applies, %d reapplies, %d errors logged",
		stats.UpdatesProcessed, stats.DeviceApplies, stats.Reapplies, stats.ErrorsLogged)
}

// TestDeviceFlapChaosSoak runs the outbox's chaos scenario: a 95/5
// read/write workload (one writer per person, so each person's last
// accepted write is well defined) while both devices flap up and down on a
// seeded random schedule. When the flapping stops, the test asserts the
// paper's guarantee end to end: the outbox backlog drains to zero, no
// update that the directory accepted is lost, and directory, PBX, and
// messaging platform converge three ways. The RNG seed is logged so a
// failing schedule can be replayed exactly.
func TestDeviceFlapChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	seed := time.Now().UnixNano()
	t.Logf("chaos seed: %d", seed)

	s := startSystem(t, metacomm.Config{
		Outbox: metacomm.OutboxConfig{
			Enable:      true,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
		},
	})
	setup := client(t, s)

	const people = 6
	for i := 0; i < people; i++ {
		err := setup.Add(fmt.Sprintf("cn=Flap %d,o=Lucent", i), []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
			{Type: "cn", Values: []string{fmt.Sprintf("Flap %d", i)}},
			{Type: "sn", Values: []string{fmt.Sprintf("F%d", i)}},
			{Type: "definityExtension", Values: []string{fmt.Sprintf("2-71%02d", i)}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Flapper: both devices go down and come back on a seeded schedule.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		stores := []interface{ SetDown(bool) }{s.PBX.Store, s.MP.Store}
		down := make([]bool, len(stores))
		for {
			select {
			case <-stop:
				for _, st := range stores {
					st.SetDown(false)
				}
				return
			case <-time.After(time.Duration(2+rng.Intn(8)) * time.Millisecond):
				i := rng.Intn(len(stores))
				down[i] = !down[i]
				stores[i].SetDown(down[i])
			}
		}
	}()

	// One writer per person: 95% reads, 5% writes. lastRoom records the
	// newest write the gateway accepted — the value nothing may lose.
	lastRoom := make([]string, people)
	for p := 0; p < people; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			conn, err := s.Client()
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			rng := rand.New(rand.NewSource(seed + int64(p) + 1))
			dn := fmt.Sprintf("cn=Flap %d,o=Lucent", p)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(100) < 95 {
					conn.Search(&ldap.SearchRequest{
						BaseDN: dn, Scope: ldap.ScopeBaseObject,
					})
					continue
				}
				room := fmt.Sprintf("C%d-%d", p, i)
				err := conn.Modify(dn, []ldap.Change{{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{room}}}})
				if err == nil {
					lastRoom[p] = room
				}
			}
		}(p)
	}

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Devices are back up; the backlog must drain and the UM quiesce.
	deadline := time.Now().Add(15 * time.Second)
	var last uint64
	for {
		cur := s.UM.Stats().UpdatesProcessed
		if s.UM.OutboxBacklog() == 0 && cur == last {
			break
		}
		last = cur
		if time.Now().After(deadline) {
			t.Fatalf("never quiesced: backlog=%d", s.UM.OutboxBacklog())
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Three-way convergence, and zero lost updates: the directory holds the
	// last accepted write, and both devices hold the directory's state.
	for p := 0; p < people; p++ {
		dn := fmt.Sprintf("cn=Flap %d,o=Lucent", p)
		entries, err := setup.Search(&ldap.SearchRequest{
			BaseDN: dn, Scope: ldap.ScopeBaseObject,
		})
		if err != nil || len(entries) != 1 {
			t.Fatalf("person %d: %v (%d entries)", p, err, len(entries))
		}
		e := entries[0]
		if want := lastRoom[p]; want != "" && e.First("roomNumber") != want {
			t.Errorf("person %d: accepted write lost: directory room=%q, last accepted=%q",
				p, e.First("roomNumber"), want)
		}
		ext := e.First("definityExtension")
		station, err := s.PBX.Store.Get(ext)
		if err != nil {
			t.Errorf("person %d: station %s missing: %v", p, ext, err)
			continue
		}
		if got, want := station.First("room"), e.First("roomNumber"); got != want {
			t.Errorf("person %d: PBX diverged: room=%q directory=%q", p, got, want)
		}
		mbox := e.First("mailboxNumber")
		if mbox == "" {
			t.Errorf("person %d: no derived mailbox", p)
			continue
		}
		vm, err := s.MP.Store.Get(mbox)
		if err != nil {
			t.Errorf("person %d: mailbox %s missing: %v", p, mbox, err)
			continue
		}
		if got, want := vm.First("name"), e.First("cn"); !strings.EqualFold(got, want) {
			t.Errorf("person %d: messaging platform diverged: name=%q cn=%q", p, got, want)
		}
	}
	for _, obs := range s.UM.OutboxStats() {
		t.Logf("outbox %s: breaker=%s enqueued=%d drained=%d deferred=%d retries=%d repairs=%d dropped=%d trips=%d",
			obs.Device, obs.Breaker, obs.Enqueued, obs.Drained, obs.Deferred,
			obs.Retries, obs.Repairs, obs.Dropped, obs.Trips)
		if obs.Dropped != 0 {
			t.Errorf("outbox %s dropped %d updates during a pure-outage chaos run", obs.Device, obs.Dropped)
		}
	}
}
