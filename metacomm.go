// Package metacomm assembles the complete MetaComm meta-directory (ICDE
// 2000): an LDAP directory server materializing user data from telecom
// devices, fronted by the LTAP trigger gateway, coordinated by the Update
// Manager, with a Definity PBX simulator and a voice messaging platform
// simulator as the integrated devices.
//
// Architecture (the paper's Figure 1):
//
//	LDAP clients / Web-Based Administration
//	        │ (LDAP protocol)
//	        ▼
//	     LTAP gateway ──── trigger events ───► Update Manager
//	        │ reads                              │  sharded queues,
//	        ▼                                    ▼  concurrent fanout
//	  LDAP directory ◄── direct writes ── PBX filter / MP filter
//	   (materialized view)                       │ proprietary protocols
//	                                             ▼
//	                                    Definity PBX   Messaging platform
//	                                             ▲
//	                                 direct device updates (DDUs)
//
// Updates may arrive through LDAP or directly at either device; MetaComm
// converges all repositories to the Update Manager's per-entry
// serialization order (relaxed write-write consistency — total order per
// entry, no order across independent entries).
package metacomm

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"metacomm/internal/device"
	"metacomm/internal/device/msgplat"
	"metacomm/internal/device/pbx"
	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/filter"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/ldapserver"
	"metacomm/internal/lexpress"
	"metacomm/internal/ltap"
	"metacomm/internal/mcschema"
	"metacomm/internal/replica"
	"metacomm/internal/um"
)

// OutboxConfig configures the UM's durable device-update outbox (see
// um.OutboxConfig for the fields).
type OutboxConfig = um.OutboxConfig

// Mode selects how LTAP reaches the Update Manager (paper §5.5).
type Mode string

// LTAP coupling modes.
const (
	// ModeGateway runs LTAP as a gateway process: trigger events travel to
	// the UM over a persistent TCP connection. This is how MetaComm
	// deployed (§5.5): LTAP and the UM can live on separate machines and
	// be upgraded independently, and the UM machine does no read work.
	ModeGateway Mode = "gateway"
	// ModeLibrary binds LTAP into the UM process: events are in-process
	// calls. Lower update latency, but couples the components.
	ModeLibrary Mode = "library"
)

// Accept-loop strategies for Config.AcceptLoop (see ldapserver.Server).
const (
	AcceptLoopGoroutine = ldapserver.AcceptLoopGoroutine
	AcceptLoopEpoll     = ldapserver.AcceptLoopEpoll
)

// Config configures a System. The zero value works: every listener binds a
// loopback ephemeral port and both device simulators start embedded.
type Config struct {
	// Suffix is the directory suffix (default "o=Lucent").
	Suffix string
	// DirectoryAddr / LTAPAddr / ActionAddr are listen addresses
	// (default 127.0.0.1:0).
	DirectoryAddr string
	LTAPAddr      string
	ActionAddr    string
	// PBXAddr / MPAddr are device listen addresses (default 127.0.0.1:0).
	PBXAddr string
	MPAddr  string
	// Mode selects gateway (default) or library LTAP coupling.
	Mode Mode
	// UMShards is the Update Manager's shard count: updates are routed to
	// shards by entry, preserving per-entry order while distinct entries
	// proceed in parallel (0 = um.DefaultShards).
	UMShards int
	// UMQueueDepth is each UM shard's queue capacity; a full queue rejects
	// updates with LDAP result busy (0 = um.DefaultQueueDepth).
	UMQueueDepth int
	// SyncWorkers sizes the synchronization reconciliation worker pool
	// (0 = um.DefaultSyncWorkers). Synchronization runs its bulk phase
	// unquiesced against a COW directory snapshot and only quiesces to
	// replay the updates that arrived meanwhile.
	SyncWorkers int
	// DeviceSessions is the number of pooled administration sessions each
	// device filter keeps open (0 or 1 = a single session). A single
	// session processes one device command at a time; with sharded UM
	// workers applying updates concurrently, extra sessions let the device
	// side keep up (real switch commands take milliseconds each).
	DeviceSessions int
	// DeviceLatency simulates per-update processing time inside the
	// embedded device simulators. Real switch administration is slow; the
	// experiments use this to reproduce that regime (0 = no delay).
	DeviceLatency time.Duration
	// BackendConns sizes the connection pools between the gateway and the
	// backing directory and between the UM and the backing directory
	// (0 = default pool size). Per-entry update order is preserved by the
	// UM's shard routing, not by connection order, so pooling is safe.
	BackendConns int
	// MaxMessageSize bounds a single LDAP request message on both listeners
	// (the LTAP gateway and the backing directory server); 0 means
	// ber.DefaultMaxMessageSize (4 MB). A request declaring a larger length
	// is refused with a protocolError unsolicited notice and the connection
	// is closed, before any content is read or allocated.
	MaxMessageSize int
	// AcceptLoop selects the connection-serving strategy for both LDAP
	// listeners (the LTAP gateway and the backing directory server):
	// AcceptLoopGoroutine (or "", the default) serves
	// goroutine-per-connection; AcceptLoopEpoll multiplexes connections
	// onto a readiness reactor so 10k+ mostly-idle consumers cost no
	// parked goroutines or buffers (Linux only; elsewhere it logs a note
	// and falls back to goroutine mode).
	AcceptLoop string
	// GatewayCache is the capacity of the LTAP gateway's before-image
	// cache, which is kept coherent by the directory changelog (0 = default
	// capacity, < 0 disables the cache so every trap refetches its
	// before-image from the backing server).
	GatewayCache int
	// Outbox configures the Update Manager's durable device-update outbox
	// with per-device circuit breakers: failed (or timed-out) device
	// applies are journaled and replayed with backoff once the device
	// answers again, falling back to a targeted per-entry repair sync on
	// conflicts. The zero value disables it — failed device applies are
	// logged as error entries only (the paper's §4.4 behavior).
	Outbox OutboxConfig
	// ExtraMappings is additional lexpress source compiled into the
	// standard telecom library (for new data sources).
	ExtraMappings string
	// InitialSync populates the directory from the devices on startup.
	InitialSync bool
	// ReplicationAddr, when set, serves the replication stream (see
	// internal/replica): read replicas and peer masters follow this
	// directory through it.
	ReplicationAddr string
	// NodeID is this node's multi-master replication identity — the
	// tiebreak of last-writer-wins conflict resolution. Required (nonzero,
	// distinct per node) when Peers is set; harmless otherwise.
	NodeID uint32
	// Peers lists other masters' replication addresses. Each peer's
	// committed writes stream in and apply under per-entry LWW, so writes
	// are accepted on ANY node and all nodes converge; this node's own
	// stream serves on ReplicationAddr. Reconnects resume from a durable
	// cursor (DataDir) instead of re-snapshotting.
	Peers []string
	// DataDir, when set, makes the directory durable: committed updates
	// are write-ahead journaled to <DataDir>/directory.journal and
	// replayed on the next Start. Empty keeps the directory in memory.
	DataDir string
	// JournalSync selects the journal durability mode: "group" (the
	// default — group commit: all concurrently committed updates share one
	// buffered write and ONE fsync, each writer acked only once its group
	// is durable), "always" (one fsync per update — same guarantee, no
	// amortization), or "none" (flushed to the OS, never fsynced — the
	// pre-group-commit behavior). Ignored without DataDir.
	JournalSync string
	// JournalBatch caps how many updates one commit group may carry
	// (0 = directory.DefaultJournalBatch). Groups form from whatever is
	// staged while the previous group's fsync is in flight, so the cap
	// only bounds worst-case group latency under deep backlog.
	JournalBatch int
	// JournalLinger, when positive, holds a non-full commit group open
	// that long waiting for more writers before fsyncing. Zero (default)
	// never delays a group.
	JournalLinger time.Duration
	// DITSegments partitions the directory into that many DN-hash segments,
	// each independently locked with its own journal file and commit
	// pipeline (0 = directory.DefaultDITSegments). A data dir written under
	// a different segment count (or by the old single-file journal) is
	// migrated on startup.
	DITSegments int
	// AttachWorkers caps the startup journal-replay worker pool: with a
	// matching on-disk layout the segment files replay concurrently, one
	// goroutine per file up to this many (0 = GOMAXPROCS, 1 = sequential).
	// Ignored without DataDir.
	AttachWorkers int
	// CompactInterval, when positive, runs background journal compaction:
	// every interval one segment (round-robin) whose journal has grown
	// enough is rewritten online — no stop-the-world pause, replay time
	// stays linear in live entries. Zero disables background compaction.
	// Ignored without DataDir.
	CompactInterval time.Duration
	// AuditLog, when set, receives one line per update that passes through
	// LTAP — including rejected ones — via the gateway's trigger facility.
	AuditLog io.Writer
	// Logger receives operational messages (nil = discard).
	Logger *log.Logger
}

// System is a running MetaComm instance.
type System struct {
	// Suffix is the parsed directory suffix.
	Suffix dn.DN
	// DIT is the backing store of the directory server.
	DIT *directory.DIT
	// UM is the Update Manager.
	UM *um.UM
	// Gateway is the LTAP gateway.
	Gateway *ltap.Gateway
	// PBX and MP are the embedded device simulators.
	PBX *pbx.PBX
	MP  *msgplat.MP
	// Library is the compiled lexpress mapping library.
	Library *lexpress.Library
	// Replicator runs this node's replication (nil unless ReplicationAddr
	// or Peers is configured): the publisher serving our changelog plus
	// one consumer link per peer. Its Stats surface on the WBA /status
	// page and the metacommd shutdown summary.
	Replicator *replica.Replicator

	// Addresses of the running listeners.
	DirectoryAddrActual   string
	ReplicationAddrActual string
	LTAPAddrActual        string
	PBXAddrActual         string
	MPAddrActual          string

	dirServer  *ldapserver.Server
	ltapServer *ldapserver.Server
	actionSrv  *ltap.ActionServer
	remote     *ltap.RemoteAction
	converters []device.Converter
	clients    []*ldapclient.Conn
	pools      []*ldapclient.Pool
	cache      *ltap.BeforeImageCache
}

func defaultStr(v, d string) string {
	if v == "" {
		return d
	}
	return v
}

// Start builds and starts a complete system.
func Start(cfg Config) (*System, error) {
	s := &System{}
	ok := false
	defer func() {
		if !ok {
			s.Close()
		}
	}()

	suffix, err := dn.Parse(defaultStr(cfg.Suffix, "o=Lucent"))
	if err != nil || suffix.IsRoot() {
		return nil, fmt.Errorf("metacomm: bad suffix %q: %v", cfg.Suffix, err)
	}
	s.Suffix = suffix
	if len(cfg.Peers) > 0 && cfg.NodeID == 0 {
		return nil, fmt.Errorf("metacomm: multi-master replication (Peers) requires a nonzero NodeID")
	}

	// 1. Backing directory server with the integrated schema; the suffix
	// entry exists from the start.
	s.DIT = directory.NewSegmented(mcschema.New(), cfg.DITSegments)
	// The node id brands every origin stamp, so it must be in place before
	// the first write — including the suffix add and journal replay below.
	s.DIT.SetNodeID(cfg.NodeID)
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("metacomm: data dir: %w", err)
		}
		mode, err := directory.ParseSyncMode(defaultStr(cfg.JournalSync, "group"))
		if err != nil {
			return nil, fmt.Errorf("metacomm: %w", err)
		}
		if _, err := s.DIT.AttachJournalSet(directory.JournalSetConfig{
			Base:     filepath.Join(cfg.DataDir, "directory.journal"),
			Mode:     mode,
			MaxBatch: cfg.JournalBatch,
			Linger:   cfg.JournalLinger,
			Workers:  cfg.AttachWorkers,
		}); err != nil {
			return nil, fmt.Errorf("metacomm: replaying journal: %w", err)
		}
		if st := s.DIT.JournalStats(); st.TornTails > 0 && cfg.Logger != nil {
			cfg.Logger.Printf("journal: truncated %d torn trailing record(s) (crash mid-append); replay continued from the last complete record", st.TornTails)
		}
		if cfg.CompactInterval > 0 {
			s.DIT.StartAutoCompact(cfg.CompactInterval)
		}
	}
	// The update path locates entries by device key on every translated
	// update; index those lookups (benchmark: ~4 orders of magnitude at
	// 10k entries, see BenchmarkIndexAblation).
	s.DIT.EnableIndexes(mcschema.AttrDefinityExtension, mcschema.AttrMailboxNumber,
		mcschema.AttrCN, mcschema.AttrTelephone, "objectClass")
	suffixAttrs := directory.NewAttrs()
	suffixAttrs.Put("objectClass", mcschema.ClassOrganization)
	// The suffix entry may already exist when a journal was replayed.
	if err := s.DIT.Add(suffix, suffixAttrs); err != nil &&
		directory.CodeOf(err) != ldap.ResultEntryAlreadyExists {
		return nil, err
	}
	s.dirServer = ldapserver.NewServer(ldapserver.NewDITHandler(s.DIT))
	s.dirServer.ErrorLog = cfg.Logger
	s.dirServer.MaxMessageSize = cfg.MaxMessageSize
	s.dirServer.AcceptLoop = cfg.AcceptLoop
	dirAddr, err := s.dirServer.Start(defaultStr(cfg.DirectoryAddr, "127.0.0.1:0"))
	if err != nil {
		return nil, fmt.Errorf("metacomm: directory listener: %w", err)
	}
	s.DirectoryAddrActual = dirAddr.String()
	if cfg.ReplicationAddr != "" || len(cfg.Peers) > 0 {
		s.Replicator = replica.NewReplicator(cfg.NodeID, s.DIT)
		if cfg.DataDir != "" {
			// Durable per-peer cursors: a restarted node resumes each link
			// where it left off instead of re-snapshotting.
			s.Replicator.SetCursorPath(filepath.Join(cfg.DataDir, "replication.cursors"))
		}
		for _, p := range cfg.Peers {
			s.Replicator.AddPeer(p)
		}
		if cfg.ReplicationAddr != "" {
			pubAddr, err := s.Replicator.Serve(cfg.ReplicationAddr)
			if err != nil {
				return nil, fmt.Errorf("metacomm: replication listener: %w", err)
			}
			s.ReplicationAddrActual = pubAddr.String()
		}
	}

	// 2. Device simulators.
	s.PBX = pbx.New()
	pbxAddr, err := s.PBX.Start(defaultStr(cfg.PBXAddr, "127.0.0.1:0"))
	if err != nil {
		return nil, fmt.Errorf("metacomm: pbx listener: %w", err)
	}
	s.PBXAddrActual = pbxAddr.String()
	s.MP = msgplat.New()
	mpAddr, err := s.MP.Start(defaultStr(cfg.MPAddr, "127.0.0.1:0"))
	if err != nil {
		return nil, fmt.Errorf("metacomm: msgplat listener: %w", err)
	}
	s.MPAddrActual = mpAddr.String()
	if cfg.DeviceLatency > 0 {
		s.PBX.Store.SetLatency(cfg.DeviceLatency)
		s.MP.Store.SetLatency(cfg.DeviceLatency)
	}

	// 3. Mapping library.
	lib, err := lexpress.StandardLibrary()
	if err != nil {
		return nil, err
	}
	if cfg.ExtraMappings != "" {
		if err := lib.Add(cfg.ExtraMappings); err != nil {
			return nil, err
		}
	}
	s.Library = lib

	// 4. Protocol converters + device filters. With more than one
	// administration session configured, each filter gets a session pool:
	// the primary session watches for DDUs, the extras share the update
	// load so concurrent UM shards are not serialized at the device wire.
	sessions := cfg.DeviceSessions
	if sessions < 1 {
		sessions = 1
	}
	pbxPrimary, err := pbx.Dial(s.PBXAddrActual, "metacomm")
	if err != nil {
		return nil, fmt.Errorf("metacomm: pbx converter: %w", err)
	}
	pbxMembers := []device.Converter{pbxPrimary}
	for i := 1; i < sessions; i++ {
		m, err := pbx.DialCommandOnly(s.PBXAddrActual, "metacomm", pbx.DeviceName)
		if err != nil {
			device.NewPool(pbxMembers...).Close()
			return nil, fmt.Errorf("metacomm: pbx converter: %w", err)
		}
		pbxMembers = append(pbxMembers, m)
	}
	var pbxConv device.Converter = device.NewPool(pbxMembers...)
	s.converters = append(s.converters, pbxConv)
	mpPrimary, err := msgplat.Dial(s.MPAddrActual, "metacomm")
	if err != nil {
		return nil, fmt.Errorf("metacomm: msgplat converter: %w", err)
	}
	mpMembers := []device.Converter{mpPrimary}
	for i := 1; i < sessions; i++ {
		m, err := msgplat.DialCommandOnly(s.MPAddrActual, "metacomm")
		if err != nil {
			device.NewPool(mpMembers...).Close()
			return nil, fmt.Errorf("metacomm: msgplat converter: %w", err)
		}
		mpMembers = append(mpMembers, m)
	}
	var mpConv device.Converter = device.NewPool(mpMembers...)
	s.converters = append(s.converters, mpConv)
	pbxFilter, err := filter.NewDeviceFilter(pbxConv, lib)
	if err != nil {
		return nil, err
	}
	mpFilter, err := filter.NewDeviceFilter(mpConv, lib)
	if err != nil {
		return nil, err
	}

	// 5. Update Manager over pooled connections to the backing server, so
	// concurrent shards are not serialized at the directory wire.
	backing, err := ldapclient.DialPool(s.DirectoryAddrActual, cfg.BackendConns)
	if err != nil {
		return nil, err
	}
	s.pools = append(s.pools, backing)
	manager, err := um.New(um.Config{
		Suffix:      suffix,
		Backing:     backing,
		Library:     lib,
		Shards:      cfg.UMShards,
		QueueDepth:  cfg.UMQueueDepth,
		SyncWorkers: cfg.SyncWorkers,
		// Snapshot+delta synchronization: the bulk pass reconciles against
		// a consistent COW snapshot while updates keep flowing; only the
		// delta replay quiesces.
		Snapshot: s.DIT.SnapshotAndSubscribeSeq,
		// Preferred streaming form of the same cut: the bulk pass filters
		// person entries as segments stream by instead of materializing the
		// whole directory.
		SnapshotRange: s.DIT.SnapshotRangeAndSubscribeSeq,
		Outbox:        cfg.Outbox,
		Log:           cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	manager.AddDevice(pbxFilter)
	manager.AddDevice(mpFilter)
	s.UM = manager

	// 6. LTAP gateway in front of the backing server, over its own
	// connection pool so proxied reads and before-image fetches from many
	// client connections proceed in parallel.
	gwBacking, err := ldapclient.DialPool(s.DirectoryAddrActual, cfg.BackendConns)
	if err != nil {
		return nil, err
	}
	s.pools = append(s.pools, gwBacking)
	var action ltap.Action = manager
	if defaultStr(string(cfg.Mode), string(ModeGateway)) == string(ModeGateway) {
		s.actionSrv = ltap.NewActionServer(manager)
		actionAddr, err := s.actionSrv.Start(defaultStr(cfg.ActionAddr, "127.0.0.1:0"))
		if err != nil {
			return nil, fmt.Errorf("metacomm: action listener: %w", err)
		}
		remote, err := ltap.DialAction(actionAddr.String())
		if err != nil {
			return nil, err
		}
		s.remote = remote
		action = remote
	}
	s.Gateway = ltap.NewGateway(gwBacking, action)
	if cfg.GatewayCache >= 0 {
		s.cache = ltap.NewBeforeImageCache(cfg.GatewayCache)
		// The backing server is in-process, so the cache can follow the
		// directory changelog: trap-path before-images come from memory and
		// stay coherent with every committed update (including device-
		// originated ones the UM writes back).
		s.cache.AttachChangelog(s.DIT)
		s.Gateway.UseCache(s.cache)
	}
	s.ltapServer = ldapserver.NewServer(s.Gateway)
	s.ltapServer.ErrorLog = cfg.Logger
	s.ltapServer.MaxMessageSize = cfg.MaxMessageSize
	s.ltapServer.AcceptLoop = cfg.AcceptLoop
	ltapAddr, err := s.ltapServer.Start(defaultStr(cfg.LTAPAddr, "127.0.0.1:0"))
	if err != nil {
		return nil, fmt.Errorf("metacomm: ltap listener: %w", err)
	}
	s.LTAPAddrActual = ltapAddr.String()

	if cfg.AuditLog != nil {
		var mu sync.Mutex
		s.Gateway.RegisterFailureTrigger(suffix, nil, func(ev ltap.Event, res ldap.Result) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(cfg.AuditLog, "audit seq=%d op=%s dn=%q by=%q result=%s\n",
				ev.ID, ev.Kind, ev.DN, ev.BoundDN, res.Code)
		})
	}

	// 7. The UM pushes device-originated updates through LTAP, and drives
	// quiesce for synchronization.
	umLTAP, err := ldapclient.Dial(s.LTAPAddrActual)
	if err != nil {
		return nil, err
	}
	s.clients = append(s.clients, umLTAP)
	manager.SetLTAP(umLTAP)
	// In gateway mode the UM drives quiesce the way any remote process
	// would — via LTAP's extended operations. The control channel is a
	// DEDICATED connection: sharing the DDU-path connection would deadlock
	// (a device update blocked by quiesce would hold the connection the
	// unquiesce needs). In library mode it calls the gateway directly.
	if s.actionSrv != nil {
		quiesceConn, err := ldapclient.Dial(s.LTAPAddrActual)
		if err != nil {
			return nil, err
		}
		s.clients = append(s.clients, quiesceConn)
		manager.SetQuiesce(
			func() bool {
				_, err := quiesceConn.Extended(ltap.OIDQuiesceBegin, nil)
				return err == nil
			},
			func() { _, _ = quiesceConn.Extended(ltap.OIDQuiesceEnd, nil) },
		)
	} else {
		manager.SetQuiesce(s.Gateway.Quiesce, s.Gateway.Unquiesce)
	}

	if err := manager.Start(); err != nil {
		return nil, err
	}
	if cfg.InitialSync {
		if _, err := manager.SynchronizeAll(); err != nil {
			return nil, fmt.Errorf("metacomm: initial synchronization: %w", err)
		}
	}

	// 8. Replication starts LAST, once the whole local stack can absorb
	// remote writes: each peer write that wins LWW in the DIT is fanned out
	// to this node's device filters by the UM — without the LTAP trip (no
	// re-stamping loop) and without the generated-info write-back (the
	// origin node's write-back replicates over).
	if s.Replicator != nil {
		s.Replicator.OnApply = func(res directory.RemoteApplied) {
			manager.PropagateRemote(res.DN.String(), recordOf(res.Old), recordOf(res.New))
		}
		s.Replicator.Start()
	}
	ok = true
	return s, nil
}

// recordOf converts a directory attribute image into a lexpress record
// (nil for nil — absent side of a create/delete).
func recordOf(a *directory.Attrs) lexpress.Record {
	if a == nil {
		return nil
	}
	rec := lexpress.NewRecord()
	for name, values := range a.Map() {
		rec.Set(name, values...)
	}
	return rec
}

// WireStats holds wire-path counters for both LDAP listeners: LTAP (the
// public endpoint) and the backing directory server (which the gateway, the
// UM, and replication readers hit).
type WireStats struct {
	LTAP      ldapserver.WireStats
	Directory ldapserver.WireStats
}

// WireStats snapshots both listeners' wire counters.
func (s *System) WireStats() WireStats {
	var w WireStats
	if s.ltapServer != nil {
		w.LTAP = s.ltapServer.WireStats()
	}
	if s.dirServer != nil {
		w.Directory = s.dirServer.WireStats()
	}
	return w
}

// Client opens an LDAP connection to the system's public (LTAP) endpoint —
// the address any LDAP tool would use.
func (s *System) Client() (*ldapclient.Conn, error) {
	c, err := ldapclient.Dial(s.LTAPAddrActual)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// DirectoryClient opens an LDAP connection directly to the backing server,
// bypassing LTAP (reads only; writing here would bypass consistency).
func (s *System) DirectoryClient() (*ldapclient.Conn, error) {
	return ldapclient.Dial(s.DirectoryAddrActual)
}

// PBXAdmin opens a direct administration session on the PBX simulator — the
// legacy interface a switch administrator would use; changes made here are
// direct device updates.
func (s *System) PBXAdmin(session string) (*pbx.Converter, error) {
	return pbx.Dial(s.PBXAddrActual, session)
}

// MPAdmin opens a direct administration session on the messaging platform.
func (s *System) MPAdmin(session string) (*msgplat.Converter, error) {
	return msgplat.Dial(s.MPAddrActual, session)
}

// Close shuts the whole system down. Replication stops FIRST so no remote
// write lands in a half-torn-down stack.
func (s *System) Close() {
	if s.Replicator != nil {
		s.Replicator.Stop()
	}
	if s.UM != nil {
		s.UM.Stop()
	}
	for _, c := range s.converters {
		c.Close()
	}
	if s.ltapServer != nil {
		s.ltapServer.Close()
	}
	if s.remote != nil {
		s.remote.Close()
	}
	if s.actionSrv != nil {
		s.actionSrv.Close()
	}
	for _, c := range s.clients {
		c.Close()
	}
	for _, p := range s.pools {
		p.Close()
	}
	if s.cache != nil {
		s.cache.Close()
	}
	if s.dirServer != nil {
		s.dirServer.Close()
	}
	if s.DIT != nil {
		// Stops background compaction, flushes every segment's commit
		// pipeline, and closes the attached journal files.
		s.DIT.CloseJournal()
	}
	if s.PBX != nil {
		s.PBX.Close()
	}
	if s.MP != nil {
		s.MP.Close()
	}
}

// Seed adds a person entry through the public LDAP path (convenience for
// examples and tests).
func (s *System) Seed(dnStr string, attrs map[string][]string) error {
	c, err := s.Client()
	if err != nil {
		return err
	}
	defer c.Close()
	var la []ldap.Attribute
	for k, v := range attrs {
		la = append(la, ldap.Attribute{Type: k, Values: v})
	}
	return c.Add(dnStr, la)
}
