// Benchmark harness for the experiment index in DESIGN.md. The ICDE 2000
// paper reports no numeric tables — its evaluation is the qualitative claim
// that MetaComm "has acceptable performance for our initial configuration"
// plus design arguments (§4.2, §4.4, §5.4, §5.5). Each benchmark here
// quantifies one of those claims or ablates one of those design choices;
// EXPERIMENTS.md records the measured numbers next to the paper's stated
// expectations.
package metacomm_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	metacomm "metacomm"
	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/filter"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/lexpress"
	"metacomm/internal/um"
)

// benchSystem boots a quiet system for benchmarking.
func benchSystem(b *testing.B, cfg metacomm.Config) *metacomm.System {
	b.Helper()
	s, err := metacomm.Start(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

func benchClient(b *testing.B, s *metacomm.System) *ldapclient.Conn {
	b.Helper()
	c, err := s.Client()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// provision creates n people with extensions 2-0000.. through LDAP.
func provision(b *testing.B, c *ldapclient.Conn, n int) []string {
	b.Helper()
	dns := make([]string, n)
	for i := 0; i < n; i++ {
		dns[i] = fmt.Sprintf("cn=Bench Person %04d,o=Lucent", i)
		err := c.Add(dns[i], []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
			{Type: "cn", Values: []string{fmt.Sprintf("Bench Person %04d", i)}},
			{Type: "sn", Values: []string{fmt.Sprintf("Person %04d", i)}},
			{Type: "definityExtension", Values: []string{fmt.Sprintf("2-%04d", i)}},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return dns
}

// BenchmarkE1LDAPUpdatePath measures the full LDAP write path — LTAP trap,
// entry lock, persistent action connection, UM serialization, closure,
// backing-directory write, fanout to both devices — against the baseline of
// touching the device directly through its legacy protocol.
func BenchmarkE1LDAPUpdatePath(b *testing.B) {
	b.Run("FullMetaCommPath", func(b *testing.B) {
		s := benchSystem(b, metacomm.Config{})
		c := benchClient(b, s)
		dns := provision(b, c, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := c.Modify(dns[0], []ldap.Change{{Op: ldap.ModReplace,
				Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("R-%d", i)}}}})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DirectDeviceBaseline", func(b *testing.B) {
		s := benchSystem(b, metacomm.Config{})
		c := benchClient(b, s)
		provision(b, c, 1)
		admin, err := s.PBXAdmin("bench-craft-baseline")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { admin.Close() })
		rec, err := admin.Get("2-0000")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Set("Room", fmt.Sprintf("R-%d", i))
			if _, err := admin.Modify("2-0000", rec); err != nil {
				b.Fatal(err)
			}
		}
		// The DDU listener is still digesting these; stop before teardown.
		b.StopTimer()
	})
	b.Run("PlainDirectoryBaseline", func(b *testing.B) {
		// The same modify against a bare LDAP server: what the meta-
		// directory machinery costs relative to a plain directory.
		s := benchSystem(b, metacomm.Config{})
		direct, err := s.DirectoryClient()
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { direct.Close() })
		err = direct.Add("cn=Plain Person,o=Lucent", []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson"}},
			{Type: "cn", Values: []string{"Plain Person"}},
			{Type: "sn", Values: []string{"Person"}},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := direct.Modify("cn=Plain Person,o=Lucent", []ldap.Change{{Op: ldap.ModReplace,
				Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("R-%d", i)}}}})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE2DDUPath measures a direct device update end to end: committed
// at the switch, noticed by the filter, pushed through LTAP, serialized,
// and visible in the directory.
func BenchmarkE2DDUPath(b *testing.B) {
	s := benchSystem(b, metacomm.Config{})
	c := benchClient(b, s)
	dns := provision(b, c, 1)
	admin, err := s.PBXAdmin("bench-craft")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { admin.Close() })
	rec, err := admin.Get("2-0000")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		want := fmt.Sprintf("DDU-%d", i)
		rec.Set("Room", want)
		if _, err := admin.Modify("2-0000", rec); err != nil {
			b.Fatal(err)
		}
		for {
			e, err := c.SearchOne(&ldap.SearchRequest{BaseDN: dns[0], Scope: ldap.ScopeBaseObject})
			if err == nil && e.First("roomNumber") == want {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// BenchmarkE3ConcurrentThroughput drives parallel writers at distinct
// entries; LTAP's per-entry locks let them proceed concurrently and the
// UM's sharded engine drains independent entries in parallel (total order
// is kept per entry only).
//
// The shards=1 cases are the single-coordinator baseline: one worker
// draining one queue, exactly the pre-sharding engine. The devlat cases add
// 2ms of simulated per-command device processing — the regime the paper's
// real switches operate in (administration commands take milliseconds to
// seconds) — where update throughput is bound by device concurrency rather
// than CPU; both get 4 pooled device sessions so the device wire is not
// the bottleneck and the comparison isolates the UM engine.
func BenchmarkE3ConcurrentThroughput(b *testing.B) {
	cases := []struct {
		name string
		cfg  metacomm.Config
	}{
		{"shards=1", metacomm.Config{UMShards: 1}},
		{"shards=4", metacomm.Config{UMShards: 4}},
		{"shards=1/devlat=2ms", metacomm.Config{UMShards: 1,
			DeviceSessions: 4, DeviceLatency: 2 * time.Millisecond}},
		{"shards=4/devlat=2ms", metacomm.Config{UMShards: 4,
			DeviceSessions: 4, DeviceLatency: 2 * time.Millisecond}},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			s := benchSystem(b, bc.cfg)
			setup := benchClient(b, s)
			const people = 16
			dns := provision(b, setup, people)
			var next atomic.Int64
			// 8 writers per GOMAXPROCS: the writers spend their time
			// waiting on round trips, so more of them than cores is what
			// exercises the engine's concurrency.
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				conn, err := s.Client()
				if err != nil {
					b.Error(err)
					return
				}
				defer conn.Close()
				for pb.Next() {
					i := next.Add(1)
					dn := dns[int(i)%people]
					err := conn.Modify(dn, []ldap.Change{{Op: ldap.ModReplace,
						Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("T-%d", i)}}}})
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkE4SyncScaling measures the synchronization facility against
// device populations of increasing size (initial directory population).
func BenchmarkE4SyncScaling(b *testing.B) {
	for _, n := range []int{100, 500, 2000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := metacomm.Start(metacomm.Config{})
				if err != nil {
					b.Fatal(err)
				}
				// Seed under the suppressed "metacomm" session: no DDU
				// notifications race the pass, so it measures pure
				// synchronization and every record is a DirectoryAdd.
				for j := 0; j < n; j++ {
					rec := lexpress.NewRecord()
					rec.Set("extension", fmt.Sprintf("2-%04d", j))
					rec.Set("name", fmt.Sprintf("Legacy User %04d", j))
					if _, err := s.PBX.Store.Add("metacomm", rec); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				stats, err := s.UM.Synchronize("pbx")
				b.StopTimer()
				if err != nil || stats.DirectoryAdds != n {
					b.Fatalf("sync = %+v, %v", stats, err)
				}
				s.Close()
			}
			b.ReportMetric(float64(n), "records/sync")
		})
	}
}

// BenchmarkE5ReadPath compares reads through the LTAP gateway against reads
// on the backing server — the proxy overhead §5.5 accepts in exchange for
// keeping reads off the UM.
func BenchmarkE5ReadPath(b *testing.B) {
	s := benchSystem(b, metacomm.Config{})
	setup := benchClient(b, s)
	dns := provision(b, setup, 1)
	req := &ldap.SearchRequest{BaseDN: dns[0], Scope: ldap.ScopeBaseObject}

	b.Run("ViaLTAPGateway", func(b *testing.B) {
		c := benchClient(b, s)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Search(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DirectToBacking", func(b *testing.B) {
		c, err := s.DirectoryClient()
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Search(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE6Lexpress measures mapping compilation (the "few minutes to map
// a new source" claim concerns authoring; compilation itself is sub-
// millisecond) and per-update translation through the compiled byte code.
func BenchmarkE6Lexpress(b *testing.B) {
	b.Run("CompileStandardLibrary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lexpress.StandardLibrary(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TranslateUpdate", func(b *testing.B) {
		lib := lexpress.MustStandardLibrary()
		m, _ := lib.Get("LDAPToPBX")
		old := lexpress.Record{
			"definityextension": {"2-9000"},
			"telephonenumber":   {"+1 908 582 9000"},
			"cn":                {"John Doe"},
		}
		nw := old.Clone()
		nw.Set("roomNumber", "2C-500")
		d := lexpress.Descriptor{Source: "ldap", Op: lexpress.OpModify, Old: old, New: nw}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Translate(d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7Closure measures the transitive-closure pass that ripples a
// telephone-number change to the extension and mailbox.
func BenchmarkE7Closure(b *testing.B) {
	lib := lexpress.MustStandardLibrary()
	cl, _ := lib.Get("LDAPClosure")
	old := lexpress.Record{
		"cn":                {"John Doe"},
		"telephonenumber":   {"+1 908 582 9000"},
		"definityextension": {"2-9000"},
		"mailboxnumber":     {"9000"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := old.Clone()
		rec.Set("telephoneNumber", "+1 908 583 1234")
		if _, err := cl.ApplyClosure(old, rec, []string{"telephoneNumber"}); err != nil {
			b.Fatal(err)
		}
	}
}

// multiPBX is the paper's §4.2 number-range partitioning: two switches
// splitting the +1 908 582 9xxx range from the rest.
const multiPBX = `
mapping LDAPToPBX9 source "ldap" target "pbx9" {
    key definityExtension -> Extension;
    map Extension = definityExtension;
    map Name = cn;
    partition when telephoneNumber like "+1 908 582 9*";
    originator lastUpdater;
}
mapping LDAPToPBXOther source "ldap" target "pbxother" {
    key definityExtension -> Extension;
    map Extension = definityExtension;
    map Name = cn;
    partition when telephoneNumber like "+1 908 58*" and not telephoneNumber like "+1 908 582 9*";
    originator lastUpdater;
}
`

// BenchmarkE8Partition measures partition-constraint routing: the
// old/new evaluation that turns one modify into add/modify/delete/skip per
// target, including the cross-switch migration case.
func BenchmarkE8Partition(b *testing.B) {
	lib, err := lexpress.Compile(multiPBX)
	if err != nil {
		b.Fatal(err)
	}
	pbx9, _ := lib.Get("LDAPToPBX9")
	other, _ := lib.Get("LDAPToPBXOther")
	old := lexpress.Record{
		"cn":                {"Mover"},
		"definityextension": {"2-9000"},
		"telephonenumber":   {"+1 908 582 9000"},
	}
	nw := old.Clone()
	nw.Set("telephoneNumber", "+1 908 583 1111") // migrates 9-range -> other
	d := lexpress.Descriptor{Source: "ldap", Op: lexpress.OpModify, Old: old, New: nw}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u9, err := pbx9.Translate(d)
		if err != nil || u9 == nil || u9.Op != lexpress.OpDelete {
			b.Fatalf("pbx9 route = %v, %v", u9, err)
		}
		uo, err := other.Translate(d)
		if err != nil || uo == nil || uo.Op != lexpress.OpAdd {
			b.Fatalf("other route = %v, %v", uo, err)
		}
	}
}

// BenchmarkE9GatewayVsLibrary ablates §5.5's deployment choice: LTAP as a
// separate gateway (persistent TCP action connection to the UM) versus LTAP
// bound into the UM process.
func BenchmarkE9GatewayVsLibrary(b *testing.B) {
	for _, mode := range []metacomm.Mode{metacomm.ModeGateway, metacomm.ModeLibrary} {
		b.Run(string(mode), func(b *testing.B) {
			s := benchSystem(b, metacomm.Config{Mode: mode})
			c := benchClient(b, s)
			dns := provision(b, c, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := c.Modify(dns[0], []ldap.Change{{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("M-%d", i)}}}})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10ConditionalReapply ablates §5.4: reapplying an add to its
// originating device with conditional semantics (apply as modify, fall back
// to add) versus naively re-adding, which the devices reject.
func BenchmarkE10ConditionalReapply(b *testing.B) {
	lib := lexpress.MustStandardLibrary()
	newFilter := func(b *testing.B) (*filter.DeviceFilter, *lexpress.TargetUpdate) {
		s := benchSystem(b, metacomm.Config{})
		conv, err := s.PBXAdmin("bench-reapply")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { conv.Close() })
		f, err := filter.NewDeviceFilter(conv, lib)
		if err != nil {
			b.Fatal(err)
		}
		rec := lexpress.NewRecord()
		rec.Set("Extension", "2-9000")
		rec.Set("Name", "Reapplied")
		if _, err := conv.Add(rec); err != nil {
			b.Fatal(err)
		}
		return f, &lexpress.TargetUpdate{
			Target: "pbx", Op: lexpress.OpAdd, Key: "2-9000", New: rec,
		}
	}
	b.Run("ConditionalSemantics", func(b *testing.B) {
		f, u := newFilter(b)
		u.Conditional = true
		errs := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Apply(u); err != nil {
				errs++
			}
		}
		b.ReportMetric(float64(errs)/float64(b.N), "errors/op")
	})
	b.Run("NaiveReapply", func(b *testing.B) {
		f, u := newFilter(b)
		u.Conditional = false
		errs := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Apply(u); err != nil {
				errs++
			}
		}
		b.ReportMetric(float64(errs)/float64(b.N), "errors/op")
	})
}

// BenchmarkE11WriteWriteRace measures convergence when a DDU and an LDAP
// update hit the same entry at the same time — the paper's queue-order
// reapplication argument (§4.4).
func BenchmarkE11WriteWriteRace(b *testing.B) {
	s := benchSystem(b, metacomm.Config{})
	c := benchClient(b, s)
	dns := provision(b, c, 1)
	admin, err := s.PBXAdmin("bench-race")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { admin.Close() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ldapRoom := fmt.Sprintf("L-%d", i)
		dduRoom := fmt.Sprintf("D-%d", i)
		done := make(chan struct{})
		go func() {
			defer close(done)
			rec, err := admin.Get("2-0000")
			if err != nil {
				return
			}
			rec.Set("Room", dduRoom)
			admin.Modify("2-0000", rec)
		}()
		c.Modify(dns[0], []ldap.Change{{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{ldapRoom}}}})
		<-done
		// Converged when directory and device agree.
		for {
			e, err := c.SearchOne(&ldap.SearchRequest{BaseDN: dns[0], Scope: ldap.ScopeBaseObject})
			if err != nil {
				b.Fatal(err)
			}
			station, err := s.PBX.Store.Get("2-0000")
			if err != nil {
				b.Fatal(err)
			}
			if r := e.First("roomNumber"); r != "" && station.First("room") == r {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// BenchmarkE12QuiesceCost measures a full quiesced synchronization pass
// while update traffic is in flight — the §5.1 isolation facility's cost.
func BenchmarkE12QuiesceCost(b *testing.B) {
	s := benchSystem(b, metacomm.Config{})
	c := benchClient(b, s)
	dns := provision(b, c, 8)
	stop := make(chan struct{})
	go func() {
		conn, err := s.Client()
		if err != nil {
			return
		}
		defer conn.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			conn.Modify(dns[i%len(dns)], []ldap.Change{{Op: ldap.ModReplace,
				Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("Q-%d", i)}}}})
		}
	}()
	b.Cleanup(func() { close(stop) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.UM.Synchronize("pbx"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16ReadHeavyMix drives the paper's actual workload shape (§5.5:
// "LDAP workloads are heavily read-oriented") through the public LTAP
// endpoint: a mixed read/write load at two ratios, with the read either an
// indexed whole-subtree search (objectClass is indexed) or an unindexed one
// (substring over sn, full scan), both returning the whole person
// population. Writes are roomNumber modifies riding the full update path
// with 2ms simulated device latency, the regime real switches impose.
//
// This is the experiment the PR-2 issue calls "E4" (the name E4 was already
// taken by sync scaling above).
func BenchmarkE16ReadHeavyMix(b *testing.B) {
	const people = 200
	mixes := []struct {
		name     string
		writePct int64
	}{
		{"mix=95r5w", 5},
		{"mix=50r50w", 50},
	}
	readFilters := []struct {
		name   string
		filter string
	}{
		{"read=indexed", "(objectClass=mcPerson)"},
		{"read=unindexed", "(sn=Person *)"},
	}
	caches := []struct {
		name string
		cap  int // Config.GatewayCache: 0 default-on, <0 off
	}{
		{"cache=on", 0},
		{"cache=off", -1},
	}
	for _, mix := range mixes {
		for _, rf := range readFilters {
			for _, ca := range caches {
				b.Run(mix.name+"/"+rf.name+"/"+ca.name, func(b *testing.B) {
					runE16Mix(b, mix.writePct, rf.filter, ca.cap)
				})
			}
		}
	}
}

func runE16Mix(b *testing.B, writePct int64, readFilter string, cacheCap int) {
	const people = 200
	s := benchSystem(b, metacomm.Config{UMShards: 4,
		DeviceSessions: 4, DeviceLatency: 2 * time.Millisecond,
		GatewayCache: cacheCap})
	setup := benchClient(b, s)
	dns := provision(b, setup, people)
	f, err := ldap.ParseFilter(readFilter)
	if err != nil {
		b.Fatal(err)
	}
	req := &ldap.SearchRequest{
		BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree, Filter: f,
	}
	var next, searches atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		conn, err := s.Client()
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		for pb.Next() {
			i := next.Add(1)
			if i%100 < writePct {
				err := conn.Modify(dns[int(i)%people], []ldap.Change{{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("W-%d", i)}}}})
				if err != nil {
					b.Error(err)
					return
				}
				continue
			}
			entries, err := conn.Search(req)
			if err != nil {
				b.Error(err)
				return
			}
			if len(entries) != people {
				b.Errorf("search returned %d entries, want %d", len(entries), people)
				return
			}
			searches.Add(1)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(searches.Load())/b.Elapsed().Seconds(), "searches/s")
	gs := s.Gateway.Stats()
	if gs.Updates > 0 {
		b.ReportMetric(float64(gs.BackendFetches)/float64(gs.Updates), "fetches/update")
	}
}

// BenchmarkF2SampleTree reproduces the paper's Figure 2 sample tree: build
// it and resolve/search it, through the full LDAP protocol stack.
func BenchmarkF2SampleTree(b *testing.B) {
	d := directory.New(nil)
	org := func(o string) *directory.Attrs {
		return directory.AttrsFrom(map[string][]string{"objectClass": {"organization"}, "o": {o}})
	}
	person := func(cn string) *directory.Attrs {
		return directory.AttrsFrom(map[string][]string{"objectClass": {"person"}, "cn": {cn}})
	}
	mustAdd := func(s string, a *directory.Attrs) {
		if err := d.Add(dn.MustParse(s), a); err != nil {
			b.Fatal(err)
		}
	}
	mustAdd("o=Lucent", org("Lucent"))
	mustAdd("o=Marketing,o=Lucent", org("Marketing"))
	mustAdd("o=Accounting,o=Lucent", org("Accounting"))
	mustAdd("o=R&D,o=Lucent", org("R&D"))
	mustAdd("o=DEN Group,o=R&D,o=Lucent", org("DEN Group"))
	mustAdd("cn=John Doe,o=Marketing,o=Lucent", person("John Doe"))
	mustAdd("cn=Pat Smith,o=Marketing,o=Lucent", person("Pat Smith"))
	mustAdd("cn=Tim Dickens,o=Accounting,o=Lucent", person("Tim Dickens"))
	mustAdd("cn=Jill Lu,o=R&D,o=Lucent", person("Jill Lu"))

	f, _ := ldap.ParseFilter("(cn=*)")
	base := dn.MustParse("o=Lucent")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries, err := d.Search(base, ldap.ScopeWholeSubtree, f, 0)
		if err != nil || len(entries) != 4 {
			b.Fatalf("entries = %d, %v", len(entries), err)
		}
	}
}

// BenchmarkE17SyncSnapshotDelta measures the tentpole claim of the
// snapshot+delta synchronization engine: on a large population with a live
// 95/5 read/write workload running, the update-rejection window (the time
// the system holds the quiesce) is bounded by the DELTA — the updates that
// landed during the pass — not by the population. The FullQuiesce variant
// runs the same pass with the snapshot source disabled, reproducing the
// classic whole-pass quiesce for comparison; concurrent writes must be
// neither rejected nor lost in either mode.
func BenchmarkE17SyncSnapshotDelta(b *testing.B) {
	const population = 5000
	run := func(b *testing.B, useSnapshot bool) {
		s := benchSystem(b, metacomm.Config{SyncWorkers: 8, BackendConns: 8, DeviceSessions: 4})
		if !useSnapshot {
			s.UM.SetSnapshot(nil)
		}
		// Seed the device under the suppressed session and populate the
		// directory with one initial pass.
		for j := 0; j < population; j++ {
			rec := lexpress.NewRecord()
			rec.Set("extension", fmt.Sprintf("2-%04d", j))
			rec.Set("name", fmt.Sprintf("Sync User %04d", j))
			rec.Set("room", "R0")
			if _, err := s.PBX.Store.Add("metacomm", rec); err != nil {
				b.Fatal(err)
			}
		}
		if stats, err := s.UM.Synchronize("pbx"); err != nil || stats.DirectoryAdds != population {
			b.Fatalf("initial sync = %+v, %v", stats, err)
		}

		// Concurrent 95/5 workload: 4 clients searching and writing through
		// the gateway while the pass runs.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var reads, writes, writeErrs atomic.Int64
		for w := 0; w < 4; w++ {
			c := benchClient(b, s)
			wg.Add(1)
			go func(c *ldapclient.Conn, seed int) {
				defer wg.Done()
				for i := seed; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					target := fmt.Sprintf("cn=Sync User %04d,o=Lucent", (i*7919)%population)
					if i%20 == 0 {
						err := c.Modify(target, []ldap.Change{{Op: ldap.ModReplace,
							Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("W%d", i)}}}})
						if err != nil {
							writeErrs.Add(1)
						} else {
							writes.Add(1)
						}
					} else {
						if _, err := c.SearchOne(&ldap.SearchRequest{BaseDN: target, Scope: ldap.ScopeBaseObject}); err == nil {
							reads.Add(1)
						}
					}
				}
			}(c, w)
		}

		var bulkNs, quiesceNs uint64
		var records int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stats, err := s.UM.Synchronize("pbx")
			if err != nil {
				b.Fatal(err)
			}
			if stats.SnapshotUsed != useSnapshot {
				b.Fatalf("SnapshotUsed = %v, want %v", stats.SnapshotUsed, useSnapshot)
			}
			bulkNs += stats.BulkNs
			quiesceNs += stats.QuiesceNs
			records += stats.DeviceRecords
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		if writeErrs.Load() > 0 {
			b.Fatalf("%d concurrent writes rejected during synchronization", writeErrs.Load())
		}
		n := float64(b.N)
		b.ReportMetric(float64(bulkNs)/n/1e6, "bulk-ms/op")
		b.ReportMetric(float64(quiesceNs)/n/1e6, "quiesce-ms/op")
		if bulkNs > 0 {
			b.ReportMetric(float64(records)/(float64(bulkNs)/1e9), "records/s")
		}
		b.ReportMetric(float64(writes.Load())/n, "writes/op")
	}
	b.Run("SnapshotDelta", func(b *testing.B) { run(b, true) })
	b.Run("FullQuiesce", func(b *testing.B) { run(b, false) })
}

// BenchmarkE18OutageDegradation measures what a device outage costs the
// write path. Each iteration is one flap cycle: take the PBX down, push a
// burst of LDAP updates touching a slice of the population (all of which
// the directory must accept without stalling on per-update device
// timeouts), bring the PBX back, and measure the time to convergence. The
// Outbox arm drains its journaled backlog in the background with per-entry
// ordering — work proportional to the backlog; the LegacyErrorLog arm is
// the seed behavior — failures land in ou=errors and convergence needs a
// synchronization pass over the whole population. Zero lost updates is
// asserted in both arms.
func BenchmarkE18OutageDegradation(b *testing.B) {
	const population = 1000
	const burst = 100 // people updated during the outage
	run := func(b *testing.B, useOutbox bool) {
		cfg := metacomm.Config{}
		if useOutbox {
			cfg.Outbox = metacomm.OutboxConfig{
				Enable:      true,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  10 * time.Millisecond,
			}
		}
		s := benchSystem(b, cfg)
		c := benchClient(b, s)
		dns := provision(b, c, population)

		var acceptNs, convergeNs int64
		accepted := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.PBX.Store.SetDown(true)

			// Outage phase: the burst must be accepted while the device is
			// unreachable.
			start := time.Now()
			for j, dn := range dns[:burst] {
				room := fmt.Sprintf("F%d-%d", i, j)
				err := c.Modify(dn, []ldap.Change{{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{room}}}})
				if err != nil {
					b.Fatalf("update rejected during outage: %v", err)
				}
				accepted++
			}
			acceptNs += int64(time.Since(start))

			// Recovery phase: time until every station matches the directory.
			s.PBX.Store.SetDown(false)
			start = time.Now()
			if useOutbox {
				deadline := time.Now().Add(30 * time.Second)
				for s.UM.OutboxBacklog() != 0 {
					if time.Now().After(deadline) {
						b.Fatalf("backlog stuck at %d", s.UM.OutboxBacklog())
					}
					time.Sleep(200 * time.Microsecond)
				}
			} else {
				if _, err := s.UM.SynchronizeWithPolicy("pbx", um.DirectoryWins); err != nil {
					b.Fatal(err)
				}
			}
			convergeNs += int64(time.Since(start))

			// Zero lost updates: every accepted write reached the device.
			for j := range dns[:burst] {
				want := fmt.Sprintf("F%d-%d", i, j)
				st, err := s.PBX.Store.Get(fmt.Sprintf("2-%04d", j))
				if err != nil {
					b.Fatalf("station %04d: %v", j, err)
				}
				if got := st.First("room"); got != want {
					b.Fatalf("station %04d lost an update: room=%q want %q", j, got, want)
				}
			}
			if !useOutbox {
				// The legacy arm logs one error per failed apply; clear them
				// so iterations stay comparable.
				if _, err := s.UM.ClearErrors(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		n := float64(b.N)
		b.ReportMetric(float64(accepted)/(float64(acceptNs)/1e9), "accepted-updates/s")
		b.ReportMetric(float64(convergeNs)/n/1e6, "converge-ms")
		if useOutbox {
			for _, obs := range s.UM.OutboxStats() {
				if obs.Device == "pbx" && obs.Dropped != 0 {
					b.Fatalf("outbox dropped %d updates", obs.Dropped)
				}
			}
		}
	}
	b.Run("Outbox", func(b *testing.B) { run(b, true) })
	b.Run("LegacyErrorLog", func(b *testing.B) { run(b, false) })
}

// BenchmarkE19DurableWrites measures the group-commit write pipeline
// (DESIGN.md §11): concurrent writers — the shape of the UM's sharded
// engine, every shard committing translated updates to the directory —
// against a durable journal in the three sync modes. "always" is the
// baseline the pipeline replaces (one write+fsync cycle per update, no
// batching), "group" coalesces every concurrently staged update into one
// buffered write and ONE fsync, "none" flushes without fsync (the
// pre-PR-5 default). The reported recs-per-group and fsyncs-per-op show
// the amortization doing the work.
func BenchmarkE19DurableWrites(b *testing.B) {
	run := func(b *testing.B, mode directory.SyncMode, writers int) {
		d := directory.New(nil)
		j, err := directory.OpenJournal(b.TempDir() + "/e19.journal")
		if err != nil {
			b.Fatal(err)
		}
		j.Mode = mode
		if _, err := d.AttachJournal(j); err != nil {
			b.Fatal(err)
		}
		defer d.CloseJournal()
		if err := d.Add(dn.MustParse("o=Lucent"), directory.AttrsFrom(map[string][]string{
			"objectClass": {"organization"}})); err != nil {
			b.Fatal(err)
		}
		names := make([]dn.DN, writers)
		for w := 0; w < writers; w++ {
			names[w] = dn.MustParse(fmt.Sprintf("cn=W%d,o=Lucent", w))
			if err := d.Add(names[w], directory.AttrsFrom(map[string][]string{
				"objectClass": {"person"}, "cn": {fmt.Sprintf("W%d", w)}})); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		b.ReportAllocs()
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := next.Add(1)
					if i > int64(b.N) {
						return
					}
					if err := d.Modify(names[w], []ldap.Change{{Op: ldap.ModReplace,
						Attribute: ldap.Attribute{Type: "roomNumber",
							Values: []string{fmt.Sprintf("R-%d", i)}}}}); err != nil {
						b.Errorf("writer %d: %v", w, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		b.StopTimer()
		st := d.JournalStats()
		if st.Appends > 0 {
			b.ReportMetric(st.MeanBatch(), "recs/group")
			b.ReportMetric(float64(st.Fsyncs)/float64(b.N), "fsyncs/op")
		}
	}
	for _, mode := range []directory.SyncMode{directory.SyncAlways, directory.SyncGroup, directory.SyncNone} {
		for _, writers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("sync=%s/writers=%d", mode, writers), func(b *testing.B) {
				run(b, mode, writers)
			})
		}
	}
}
