#!/bin/sh
# Wire-path benchmarks (EXPERIMENTS.md E20 + E24).
#
# E20: start a real metacommd process and drive it with cmd/loadgen over
# thousands of active LDAP connections — throughput and latency of the hot
# serving path over real sockets.
#
# E24: spawn in-process systems and hold ~1k and ~10k mostly-idle
# connections (each issuing one op per IDLE_INTERVAL) against both accept
# loops — goroutine-per-connection vs the epoll reactor — head-to-head. The
# in-process spawn is deliberate: heap and goroutine readings then include
# the server, so the per-idle-connection server cost is the delta between
# modes. Tier sizes are capped to what RLIMIT_NOFILE allows (two fds per
# connection in one process).
#
# The merged machine-readable record lands as BENCH_wire_<rev>.json at the
# repo root, with a side-by-side summary on stdout. Tunables come from the
# environment:
#
#   CONNS=1000 DURATION=10s PIPELINE=8 ENTRIES=1000 WRITE_PCT=5 \
#   ACTIVE=64 IDLE_TIERS="1000 10000" IDLE_INTERVAL=10s sh scripts/bench_wire.sh
set -eu
cd "$(dirname "$0")/.."

CONNS=${CONNS:-1000}
DURATION=${DURATION:-10s}
PIPELINE=${PIPELINE:-8}
ENTRIES=${ENTRIES:-1000}
WRITE_PCT=${WRITE_PCT:-5}
ACTIVE=${ACTIVE:-64}
IDLE_TIERS=${IDLE_TIERS:-"1000 10000"}
IDLE_INTERVAL=${IDLE_INTERVAL:-10s}
OUT=${OUT:-}

go build -o /tmp/metacommd.bench ./cmd/metacommd
go build -o /tmp/loadgen.bench ./cmd/loadgen

REV=$(git rev-parse --short HEAD 2>/dev/null || echo dev)
[ -n "$OUT" ] || OUT="BENCH_wire_${REV}.json"

# ---- E20: active-connection throughput against a separate server process.
# A separate server process, like a deployment: the load generator measures
# real sockets, not loopback-in-process shortcuts. WBA is disabled so the
# run has no port collisions; backend pools are sized so gateway searches
# are not serialized on the default four connections.
/tmp/metacommd.bench -quiet -ltap 127.0.0.1:0 -wba "" -backend-conns 32 \
	>/tmp/metacommd.bench.out 2>&1 &
SRV=$!
trap 'kill $SRV 2>/dev/null || true' EXIT INT TERM

ADDR=""
i=0
while [ $i -lt 50 ]; do
	ADDR=$(awk '/LDAP \(via LTAP\):/ {print $4; exit}' /tmp/metacommd.bench.out)
	[ -n "$ADDR" ] && break
	sleep 0.2
	i=$((i + 1))
done
if [ -z "$ADDR" ]; then
	echo "bench_wire: metacommd did not come up:" >&2
	cat /tmp/metacommd.bench.out >&2
	exit 1
fi

/tmp/loadgen.bench -addr "$ADDR" -conns "$CONNS" -duration "$DURATION" \
	-pipeline "$PIPELINE" -entries "$ENTRIES" -write-pct "$WRITE_PCT" \
	-label "active-${CONNS}conns" -out /tmp/bench_wire_e20.json

kill $SRV 2>/dev/null || true
wait $SRV 2>/dev/null || true

# ---- E24: the mostly-idle matrix, both accept loops at each tier.
NOFILE=$(ulimit -n)
MAXTOTAL=$(((NOFILE - 1024) / 2))
RUNS="/tmp/bench_wire_e20.json"
for MODE in goroutine epoll; do
	for TIER in $IDLE_TIERS; do
		TOTAL=$TIER
		[ "$TOTAL" -gt "$MAXTOTAL" ] && TOTAL=$MAXTOTAL
		IDLE=$((TOTAL - ACTIVE))
		if [ "$IDLE" -lt 0 ]; then
			echo "bench_wire: skipping tier $TIER (fd limit $NOFILE allows only $MAXTOTAL in-process conns)" >&2
			continue
		fi
		LBL="${MODE}-${TIER}conns"
		echo "==== E24 $LBL: $ACTIVE active + $IDLE idle (accept-loop=$MODE) ===="
		/tmp/loadgen.bench -spawn -accept-loop "$MODE" -conns "$ACTIVE" \
			-idle-conns "$IDLE" -idle-interval "$IDLE_INTERVAL" \
			-duration "$DURATION" -pipeline "$PIPELINE" -entries "$ENTRIES" \
			-write-pct "$WRITE_PCT" -label "$LBL" -out "/tmp/bench_wire_${LBL}.json"
		RUNS="$RUNS /tmp/bench_wire_${LBL}.json"
	done
done

# ---- merged record + side-by-side summary.
# shellcheck disable=SC2086 # RUNS is a deliberate word-split file list
/tmp/loadgen.bench -merge "$OUT" -rev "$REV" -experiment "E20+E24" $RUNS
