#!/bin/sh
# Wire-path benchmark (EXPERIMENTS.md E20): start a real metacommd process,
# drive it with cmd/loadgen over thousands of concurrent LDAP connections,
# and leave the machine-readable record as BENCH_wire_<rev>.json at the repo
# root. Tunables come from the environment:
#
#   CONNS=1000 DURATION=10s PIPELINE=8 ENTRIES=1000 WRITE_PCT=5 sh scripts/bench_wire.sh
set -eu
cd "$(dirname "$0")/.."

CONNS=${CONNS:-1000}
DURATION=${DURATION:-10s}
PIPELINE=${PIPELINE:-8}
ENTRIES=${ENTRIES:-1000}
WRITE_PCT=${WRITE_PCT:-5}
OUT=${OUT:-}

go build -o /tmp/metacommd.bench ./cmd/metacommd
go build -o /tmp/loadgen.bench ./cmd/loadgen

# A separate server process, like a deployment: the load generator measures
# real sockets, not loopback-in-process shortcuts. WBA is disabled so the
# run has no port collisions; backend pools are sized so gateway searches
# are not serialized on the default four connections.
/tmp/metacommd.bench -quiet -ltap 127.0.0.1:0 -wba "" -backend-conns 32 \
	>/tmp/metacommd.bench.out 2>&1 &
SRV=$!
trap 'kill $SRV 2>/dev/null || true' EXIT INT TERM

ADDR=""
i=0
while [ $i -lt 50 ]; do
	ADDR=$(awk '/LDAP \(via LTAP\):/ {print $4; exit}' /tmp/metacommd.bench.out)
	[ -n "$ADDR" ] && break
	sleep 0.2
	i=$((i + 1))
done
if [ -z "$ADDR" ]; then
	echo "bench_wire: metacommd did not come up:" >&2
	cat /tmp/metacommd.bench.out >&2
	exit 1
fi

/tmp/loadgen.bench -addr "$ADDR" -conns "$CONNS" -duration "$DURATION" \
	-pipeline "$PIPELINE" -entries "$ENTRIES" -write-pct "$WRITE_PCT" \
	${OUT:+-out "$OUT"}
