#!/bin/sh
# bench_scale.sh -- population-scale benchmark (EXPERIMENTS.md E21).
#
# Builds cmd/benchscale and runs it across the configured populations,
# writing BENCH_scale_<rev>.json at the repo root. Tunables:
#
#   POPS=1000,10000,100000,1000000   populations to measure
#   SEGMENTS=0                       DIT segments (0 = default)
#   OPS=2000                         measured ops per type per population
#   OUT=BENCH_scale_<rev>.json       output path
set -eu

cd "$(dirname "$0")/.."

POPS="${POPS:-1000,10000,100000,1000000}"
SEGMENTS="${SEGMENTS:-0}"
OPS="${OPS:-2000}"
REV="$(git rev-parse --short HEAD 2>/dev/null || echo dev)"
OUT="${OUT:-BENCH_scale_${REV}.json}"

go build -o /tmp/benchscale ./cmd/benchscale

/tmp/benchscale -pops "$POPS" -segments "$SEGMENTS" -ops "$OPS" -out "$OUT" -rev "$REV"
