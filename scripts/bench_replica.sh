#!/bin/sh
# Replication benchmark (EXPERIMENTS.md E23): read throughput of a 1/2/3-node
# multi-master mesh with connections round-robined across nodes, plus the
# join catch-up rate of a brand-new node seeding from a loaded peer without
# quiescing it. Leaves BENCH_replica_<rev>.json at the repo root. Tunables:
#
#   CONNS=64 DURATION=3s ENTRIES=1000 JOIN_ENTRIES=20000 sh scripts/bench_replica.sh
set -eu
cd "$(dirname "$0")/.."

CONNS=${CONNS:-64}
DURATION=${DURATION:-3s}
ENTRIES=${ENTRIES:-1000}
JOIN_ENTRIES=${JOIN_ENTRIES:-20000}
OUT=${OUT:-}

go run ./cmd/benchreplica -conns "$CONNS" -duration "$DURATION" \
	-entries "$ENTRIES" -join-entries "$JOIN_ENTRIES" \
	${OUT:+-out "$OUT"}
