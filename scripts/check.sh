#!/bin/sh
# Tier-1 check, for environments without make: build, tests, vet, the race
# detector over the concurrent core, and a one-iteration benchmark smoke so
# the experiment harness cannot rot (see Makefile `check`).
set -eux
cd "$(dirname "$0")/.."

go build ./...
go test ./...
go vet ./...
go test -race -count=1 ./internal/directory/... ./internal/um/... ./internal/ltap/... ./internal/filter/... ./internal/device/... ./internal/ber/... ./internal/ldapserver/... ./internal/ldapclient/... ./internal/replica/...
# Multi-master replication smoke: a two-node mesh, a write accepted on each
# side, and a conflicting same-DN write — both trees must converge.
go test -run TestMultiMasterWritesAnywhereConverge -count=1 .
# Group-commit smoke: three concurrent writers against a SyncGroup journal
# must produce at least one multi-record commit group (batch > 1 observed).
go test -run TestJournalGroupCommitBatches -count=1 ./internal/directory/
# Journal-format migration smoke: a legacy JSON journal set must come back
# as v2 (binary frames on disk, manifest updated, identical entry state).
go test -run TestLegacyJSONJournalMigratesToV2 -count=1 ./internal/directory/
go test -fuzz=FuzzDecode -fuzztime=10s ./internal/ber/
go test -fuzz=FuzzParse -fuzztime=10s ./internal/lexpress/
go test -fuzz=FuzzCompilePattern -fuzztime=10s ./internal/lexpress/
go test -fuzz=FuzzJournalV2Record -fuzztime=10s ./internal/directory/
go test -run '^$' -bench . -benchtime=1x .
# Wire-path load-generator smoke: spawn an in-process system, drive it for
# two seconds, and verify the machine-readable benchmark record is written.
go run ./cmd/loadgen -spawn -conns 64 -duration 2s -warmup 500ms -entries 64 -out /tmp/bench_wire_smoke.json
test -s /tmp/bench_wire_smoke.json
# Epoll accept-loop smoke: the event-loop serving path end to end, with a
# mostly-idle connection pool held alongside the active workers (falls back
# to goroutine mode off Linux, so this stays portable).
go run ./cmd/loadgen -spawn -accept-loop epoll -conns 32 -idle-conns 96 -idle-interval 1s -duration 2s -warmup 500ms -entries 64 -out /tmp/bench_wire_epoll_smoke.json
test -s /tmp/bench_wire_epoll_smoke.json
# Scale-harness smoke at 10k entries: segmented populate, online compaction
# under load (the tool exits nonzero on any rejected write), journal replay.
go run ./cmd/benchscale -pops 10000 -ops 200 -out /tmp/bench_scale_smoke.json
test -s /tmp/bench_scale_smoke.json
# Replication-harness smoke: a 1/2-node read sweep and a small join catch-up,
# with the machine-readable E23 record written and non-empty.
go run ./cmd/benchreplica -max-nodes 2 -conns 16 -duration 1s -entries 200 -join-entries 2000 -out /tmp/bench_replica_smoke.json
test -s /tmp/bench_replica_smoke.json
