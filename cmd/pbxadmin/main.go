// Command pbxadmin drives the Definity PBX simulator through its legacy
// administration protocol — the interface a switch administrator keeps
// using after MetaComm is deployed. Every change made here is a direct
// device update (DDU) that MetaComm propagates into the directory.
//
// Usage:
//
//	pbxadmin -addr HOST:PORT add    EXT [Field value]...
//	pbxadmin -addr HOST:PORT change EXT Field value [Field value]...
//	pbxadmin -addr HOST:PORT remove EXT
//	pbxadmin -addr HOST:PORT show   EXT
//	pbxadmin -addr HOST:PORT list
package main

import (
	"flag"
	"fmt"
	"os"

	"metacomm/internal/device/pbx"
	"metacomm/internal/lexpress"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:5038", "PBX administration address")
		session = flag.String("session", "pbxadmin", "administrator session name")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	conv, err := pbx.Dial(*addr, *session)
	if err != nil {
		fatal(err)
	}
	defer conv.Close()

	switch args[0] {
	case "add":
		if len(args) < 2 || len(args)%2 != 0 {
			usage()
		}
		rec := lexpress.NewRecord()
		rec.Set(pbx.KeyField, args[1])
		for i := 2; i+1 < len(args); i += 2 {
			rec.Set(args[i], args[i+1])
		}
		if _, err := conv.Add(rec); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "change":
		if len(args) < 4 || len(args)%2 != 0 {
			usage()
		}
		rec, err := conv.Get(args[1])
		if err != nil {
			fatal(err)
		}
		for i := 2; i+1 < len(args); i += 2 {
			if args[i+1] == "" {
				rec.Set(args[i])
			} else {
				rec.Set(args[i], args[i+1])
			}
		}
		if _, err := conv.Modify(args[1], rec); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "remove":
		if len(args) != 2 {
			usage()
		}
		if err := conv.Delete(args[1]); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "show":
		if len(args) != 2 {
			usage()
		}
		rec, err := conv.Get(args[1])
		if err != nil {
			fatal(err)
		}
		printStation(rec)
	case "list":
		recs, err := conv.Dump()
		if err != nil {
			fatal(err)
		}
		for _, rec := range recs {
			printStation(rec)
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "%d stations\n", len(recs))
	default:
		usage()
	}
}

func printStation(rec lexpress.Record) {
	for _, f := range pbx.Fields {
		if v := rec.First(f); v != "" {
			fmt.Printf("%-10s %s\n", f, v)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pbxadmin -addr HOST:PORT {add|change|remove|show|list} ...")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbxadmin:", err)
	os.Exit(1)
}
