// Command ldapcli is a small LDAP command-line client — the stand-in for
// "any tool that can perform LDAP updates" (paper §1). It works against the
// LTAP gateway or any plain LDAP server.
//
// Usage:
//
//	ldapcli -addr HOST:PORT search  BASE [FILTER] [ATTR...]
//	ldapcli -addr HOST:PORT add     DN attr=value [attr=value...]
//	ldapcli -addr HOST:PORT modify  DN replace:attr=value [add:attr=value] [delete:attr[=value]]...
//	ldapcli -addr HOST:PORT delete  DN
//	ldapcli -addr HOST:PORT rename  DN NEWRDN
//	ldapcli -addr HOST:PORT compare DN attr value
//	ldapcli -addr HOST:PORT quiesce on|off
//	ldapcli -addr HOST:PORT export  BASE [FILTER]       (LDIF to stdout)
//	ldapcli -addr HOST:PORT import  [FILE]              (LDIF adds; stdin default)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/ldif"
	"metacomm/internal/ltap"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ldapcli -addr HOST:PORT {search|add|modify|delete|rename|compare|quiesce} ...")
	os.Exit(2)
}

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:3890", "LDAP server (LTAP) address")
		bindDN = flag.String("D", "", "bind DN")
		bindPW = flag.String("w", "", "bind password")
		scope  = flag.String("scope", "sub", "search scope: base|one|sub")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	conn, err := ldapclient.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	if *bindDN != "" {
		if err := conn.Bind(*bindDN, *bindPW); err != nil {
			fatal(err)
		}
	}

	switch args[0] {
	case "search":
		doSearch(conn, *scope, args[1:])
	case "add":
		doAdd(conn, args[1:])
	case "modify":
		doModify(conn, args[1:])
	case "delete":
		if len(args) != 2 {
			usage()
		}
		check(conn.Delete(args[1]))
	case "rename":
		if len(args) != 3 {
			usage()
		}
		check(conn.ModifyDN(args[1], args[2], true))
	case "compare":
		if len(args) != 4 {
			usage()
		}
		match, err := conn.Compare(args[1], args[2], args[3])
		if err != nil {
			fatal(err)
		}
		fmt.Println(match)
	case "export":
		doExport(conn, args[1:])
	case "import":
		doImport(conn, args[1:])
	case "quiesce":
		if len(args) != 2 {
			usage()
		}
		oid := ltap.OIDQuiesceBegin
		if args[1] == "off" {
			oid = ltap.OIDQuiesceEnd
		}
		_, err := conn.Extended(oid, nil)
		check(err)
	default:
		usage()
	}
}

func doSearch(conn *ldapclient.Conn, scopeStr string, args []string) {
	if len(args) < 1 {
		usage()
	}
	req := &ldap.SearchRequest{BaseDN: args[0], Scope: ldap.ScopeWholeSubtree}
	switch scopeStr {
	case "base":
		req.Scope = ldap.ScopeBaseObject
	case "one":
		req.Scope = ldap.ScopeSingleLevel
	}
	if len(args) > 1 {
		f, err := ldap.ParseFilter(args[1])
		if err != nil {
			fatal(err)
		}
		req.Filter = f
	}
	if len(args) > 2 {
		req.Attributes = args[2:]
	}
	entries, err := conn.Search(req)
	if err != nil {
		fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("dn: %s\n", e.DN)
		for _, a := range e.Attributes {
			for _, v := range a.Values {
				fmt.Printf("%s: %s\n", a.Type, v)
			}
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "%d entries\n", len(entries))
}

func doAdd(conn *ldapclient.Conn, args []string) {
	if len(args) < 2 {
		usage()
	}
	byAttr := map[string][]string{}
	var order []string
	for _, kv := range args[1:] {
		attr, val, ok := strings.Cut(kv, "=")
		if !ok {
			fatal(fmt.Errorf("bad attribute %q (want attr=value)", kv))
		}
		if _, seen := byAttr[attr]; !seen {
			order = append(order, attr)
		}
		byAttr[attr] = append(byAttr[attr], val)
	}
	var attrs []ldap.Attribute
	for _, a := range order {
		attrs = append(attrs, ldap.Attribute{Type: a, Values: byAttr[a]})
	}
	check(conn.Add(args[0], attrs))
}

func doModify(conn *ldapclient.Conn, args []string) {
	if len(args) < 2 {
		usage()
	}
	var changes []ldap.Change
	for _, spec := range args[1:] {
		opStr, rest, ok := strings.Cut(spec, ":")
		if !ok {
			fatal(fmt.Errorf("bad change %q (want op:attr=value)", spec))
		}
		attr, val, hasVal := strings.Cut(rest, "=")
		c := ldap.Change{Attribute: ldap.Attribute{Type: attr}}
		if hasVal {
			c.Attribute.Values = []string{val}
		}
		switch opStr {
		case "add":
			c.Op = ldap.ModAdd
		case "replace":
			c.Op = ldap.ModReplace
		case "delete":
			c.Op = ldap.ModDelete
		default:
			fatal(fmt.Errorf("bad change op %q", opStr))
		}
		changes = append(changes, c)
	}
	check(conn.Modify(args[0], changes))
}

// doExport dumps a subtree as LDIF (parents sort before children, so the
// output re-imports cleanly).
func doExport(conn *ldapclient.Conn, args []string) {
	if len(args) < 1 {
		usage()
	}
	req := &ldap.SearchRequest{BaseDN: args[0], Scope: ldap.ScopeWholeSubtree}
	if len(args) > 1 {
		f, err := ldap.ParseFilter(args[1])
		if err != nil {
			fatal(err)
		}
		req.Filter = f
	}
	entries, err := conn.Search(req)
	if err != nil {
		fatal(err)
	}
	if err := ldif.Marshal(os.Stdout, ldif.FromSearchEntries(entries)); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%d entries\n", len(entries))
}

// doImport adds every entry from an LDIF file (or stdin), in order.
func doImport(conn *ldapclient.Conn, args []string) {
	in := os.Stdin
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if len(args) > 1 {
		usage()
	}
	entries, err := ldif.Parse(in)
	if err != nil {
		fatal(err)
	}
	added := 0
	for _, e := range entries {
		if err := conn.Add(e.DN, e.Attrs); err != nil {
			fatal(fmt.Errorf("adding %q (after %d ok): %w", e.DN, added, err))
		}
		added++
	}
	fmt.Printf("added %d entries\n", added)
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Println("ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ldapcli:", err)
	os.Exit(1)
}
