// Command benchreplica measures what multi-master replication buys and
// costs (EXPERIMENTS.md E23), writing BENCH_replica_<rev>.json:
//
//   - Read scaling: ops/s of a pure base-object search workload against a
//     1-, 2-, and 3-node mesh with connections round-robined across nodes —
//     the paper's §2 recipe (replicas for read scalability) measured on the
//     real wire path, full metacommd stacks in-process.
//   - Join catch-up: how fast a brand-new node seeds itself from a loaded
//     peer over the snapshot stream WITHOUT quiescing it — entries/s from
//     first dial to live cursor, measured at the directory layer.
//
// Example:
//
//	benchreplica -conns 64 -duration 3s -entries 1000 -join-entries 20000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	metacomm "metacomm"
	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/mcschema"
	"metacomm/internal/replica"
)

func main() {
	var (
		conns       = flag.Int("conns", 64, "concurrent search connections (split across nodes)")
		duration    = flag.Duration("duration", 3*time.Second, "measurement window per node count")
		entries     = flag.Int("entries", 1000, "seeded person entries for the read workload")
		joinEntries = flag.Int("join-entries", 20000, "directory size for the join catch-up measurement")
		maxNodes    = flag.Int("max-nodes", 3, "largest mesh size for the read-scaling sweep")
		depth       = flag.Int("pipeline", 8, "searches pipelined per burst")
		out         = flag.String("out", "", "output JSON path (default BENCH_replica_<rev>.json)")
		rev         = flag.String("rev", "", "revision label (default git rev-parse --short HEAD)")
	)
	flag.Parse()

	res := result{
		Rev:       revision(*rev),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Config: configJSON{
			Conns: *conns, Pipeline: *depth, DurationSec: duration.Seconds(),
			Entries: *entries, JoinEntries: *joinEntries,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}

	for n := 1; n <= *maxNodes; n++ {
		ops := readScaling(n, *conns, *depth, *entries, *duration)
		res.ReadScaling = append(res.ReadScaling, scalingJSON{
			Nodes: n, OpsPerSec: round2(ops),
		})
		fmt.Printf("read scaling %d node(s): %.0f ops/s\n", n, ops)
	}

	sec, method := joinCatchup(*joinEntries)
	res.Join = joinJSON{
		Entries:       *joinEntries,
		CatchupSec:    round2(sec),
		EntriesPerSec: round2(float64(*joinEntries) / sec),
		Method:        method,
	}
	fmt.Printf("join catch-up: %d entries in %.2fs (%.0f entries/s, %s)\n",
		*joinEntries, sec, float64(*joinEntries)/sec, method)

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_replica_%s.json", res.Rev)
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatalf("benchreplica: marshal: %v", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		log.Fatalf("benchreplica: write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// freePort reserves a loopback address nodes can be told about before the
// listener exists.
func freePort() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("benchreplica: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// readScaling starts an n-node full-stack mesh, seeds it, and drives a pure
// search workload round-robined across every node's LTAP endpoint.
func readScaling(n, conns, depth, entries int, duration time.Duration) float64 {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = freePort()
	}
	systems := make([]*metacomm.System, n)
	for i := range systems {
		cfg := metacomm.Config{}
		if n > 1 {
			cfg.NodeID = uint32(i + 1)
			cfg.ReplicationAddr = addrs[i]
			for j, a := range addrs {
				if j != i {
					cfg.Peers = append(cfg.Peers, a)
				}
			}
		}
		s, err := metacomm.Start(cfg)
		if err != nil {
			log.Fatalf("benchreplica: node %d: %v", i+1, err)
		}
		defer s.Close()
		systems[i] = s
	}

	// Seed through node 1; every node must hold the population before the
	// measurement starts (replication does the distribution when n > 1).
	c, err := ldapclient.Dial(systems[0].LTAPAddrActual)
	if err != nil {
		log.Fatalf("benchreplica: %v", err)
	}
	dns := make([]string, entries)
	const batch = 64
	for lo := 0; lo < entries; lo += batch {
		hi := lo + batch
		if hi > entries {
			hi = entries
		}
		ops := make([]ldap.Op, 0, hi-lo)
		for i := lo; i < hi; i++ {
			dns[i] = fmt.Sprintf("cn=Replica Person %05d,o=Lucent", i)
			ops = append(ops, &ldap.AddRequest{DN: dns[i], Attributes: []ldap.Attribute{
				{Type: "objectClass", Values: []string{"mcPerson"}},
				{Type: "cn", Values: []string{fmt.Sprintf("Replica Person %05d", i)}},
				{Type: "sn", Values: []string{fmt.Sprintf("Person %05d", i)}},
			}})
		}
		for _, r := range c.Pipeline(ops) {
			if r.Err != nil {
				log.Fatalf("benchreplica: seed: %v", r.Err)
			}
		}
	}
	c.Close()
	deadline := time.Now().Add(60 * time.Second)
	for _, s := range systems {
		for s.DIT.Len() < entries+1 {
			if time.Now().After(deadline) {
				log.Fatalf("benchreplica: population never replicated to all %d nodes", n)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	var (
		stop time.Time
		ops  atomic.Uint64
		wg   sync.WaitGroup
	)
	stop = time.Now().Add(duration)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := ldapclient.Dial(systems[w%n].LTAPAddrActual)
			if err != nil {
				return
			}
			defer conn.Close()
			burst := make([]ldap.Op, depth)
			i := w
			for time.Now().Before(stop) {
				for k := range burst {
					burst[k] = &ldap.SearchRequest{BaseDN: dns[i%len(dns)], Scope: ldap.ScopeBaseObject}
					i++
				}
				for _, r := range conn.Pipeline(burst) {
					if r.Err != nil {
						return
					}
					ops.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	return float64(ops.Load()) / duration.Seconds()
}

// joinCatchup loads one node with n entries, then times a fresh joiner from
// first dial to holding the full tree with its cursor at the peer's seq.
func joinCatchup(n int) (sec float64, method string) {
	src := directory.NewSegmented(mcschema.New(), 4)
	r1 := replica.NewReplicator(1, src)
	addr, err := r1.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatalf("benchreplica: %v", err)
	}
	defer r1.Stop()
	suffix := directory.NewAttrs()
	suffix.Put("objectClass", "organization")
	if err := src.Add(dn.MustParse("o=Lucent"), suffix); err != nil {
		log.Fatalf("benchreplica: %v", err)
	}
	for i := 0; i < n; i++ {
		err := src.Add(dn.MustParse(fmt.Sprintf("cn=Join %06d,o=Lucent", i)),
			directory.AttrsFrom(map[string][]string{
				"objectClass": {"mcPerson"},
				"cn":          {fmt.Sprintf("Join %06d", i)},
				"sn":          {"Join"},
			}))
		if err != nil {
			log.Fatalf("benchreplica: populate: %v", err)
		}
	}

	joiner := directory.NewSegmented(mcschema.New(), 4)
	r2 := replica.NewReplicator(2, joiner)
	r2.AddPeer(addr.String())
	srcSeq := src.Seq()
	t0 := time.Now()
	r2.Start()
	defer r2.Stop()
	for {
		ps := r2.Stats().Peers
		if joiner.Len() >= n+1 && len(ps) == 1 && ps[0].Cursor >= srcSeq {
			elapsed := time.Since(t0).Seconds()
			method = "snapshot"
			if ps[0].Snapshots == 0 {
				method = "resume"
			}
			return elapsed, method
		}
		time.Sleep(2 * time.Millisecond)
	}
}

type result struct {
	Rev         string        `json:"rev"`
	Timestamp   string        `json:"timestamp"`
	Config      configJSON    `json:"config"`
	ReadScaling []scalingJSON `json:"read_scaling"`
	Join        joinJSON      `json:"join"`
}

type configJSON struct {
	Conns       int     `json:"conns"`
	Pipeline    int     `json:"pipeline"`
	DurationSec float64 `json:"duration_sec"`
	Entries     int     `json:"entries"`
	JoinEntries int     `json:"join_entries"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
}

type scalingJSON struct {
	Nodes     int     `json:"nodes"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

type joinJSON struct {
	Entries       int     `json:"entries"`
	CatchupSec    float64 `json:"catchup_sec"`
	EntriesPerSec float64 `json:"entries_per_sec"`
	Method        string  `json:"method"`
}

func revision(explicit string) string {
	if explicit != "" {
		return explicit
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
