// Command metacommd runs the complete MetaComm meta-directory: the backing
// LDAP directory server, the LTAP trigger gateway, the Update Manager, the
// embedded Definity PBX and messaging-platform simulators, and the
// Web-Based Administration.
//
// Example:
//
//	metacommd -ltap 127.0.0.1:3890 -wba 127.0.0.1:8080
//
// Then point any LDAP tool at the LTAP address, a browser at the WBA
// address, and a telnet session at the printed PBX address for direct
// device updates.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	metacomm "metacomm"
	"metacomm/internal/ldapserver"
	"metacomm/internal/wba"
)

// splitPeers parses the -peers flag: comma-separated addresses, blanks
// dropped.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	var (
		suffix   = flag.String("suffix", "o=Lucent", "directory suffix")
		dirAddr  = flag.String("directory", "127.0.0.1:0", "backing LDAP server listen address")
		ltap     = flag.String("ltap", "127.0.0.1:3890", "LTAP gateway listen address (the public LDAP endpoint)")
		pbxAddr  = flag.String("pbx", "127.0.0.1:0", "PBX simulator listen address")
		mpAddr   = flag.String("mp", "127.0.0.1:0", "messaging platform listen address")
		wbaAddr  = flag.String("wba", "127.0.0.1:8080", "web administration listen address (empty disables)")
		mode     = flag.String("mode", "gateway", "LTAP coupling: gateway or library")
		umShards = flag.Int("um-shards", 0, "Update Manager shard count (0 = default)")
		umQueue  = flag.Int("um-queue-depth", 0, "Update Manager per-shard queue capacity (0 = default)")
		syncWk   = flag.Int("sync-workers", 0, "synchronization reconciliation worker pool size (0 = default)")
		devSess  = flag.Int("device-sessions", 0, "pooled administration sessions per device (0 = single session)")
		devLat   = flag.Duration("device-latency", 0, "simulated per-update processing time in the device simulators")
		beConns  = flag.Int("backend-conns", 0, "pooled connections to the backing directory per component (0 = default)")
		maxMsg   = flag.Int("max-message", 0, "max LDAP request message size in bytes on both listeners (0 = 4 MB default)")
		acceptLp = flag.String("accept-loop", "goroutine", "connection serving on both listeners: goroutine (per-conn, portable) or epoll (event loop, Linux)")
		gwCache  = flag.Int("gateway-cache", 0, "LTAP before-image cache capacity (0 = default, negative disables)")
		outbox   = flag.String("outbox-dir", "", "journal directory for the durable device-update outbox (empty disables)")
		obRetry  = flag.Int("outbox-retries", 0, "outbox replay attempts before targeted repair (0 = default)")
		obBack   = flag.Duration("outbox-backoff", 0, "outbox base retry backoff, doubled per attempt (0 = default)")
		dataDir  = flag.String("data", "", "data directory for the durable directory journal (empty = in-memory)")
		jSync    = flag.String("journal-sync", "group", "journal durability: always (fsync per update), group (one fsync per commit group), none (no fsync)")
		jBatch   = flag.Int("journal-batch", 0, "max updates per journal commit group (0 = default)")
		jLinger  = flag.Duration("journal-linger", 0, "how long a non-full commit group waits for more writers (0 = never)")
		ditSegs  = flag.Int("dit-segments", 0, "DN-hash DIT segment count, each with its own lock and journal (0 = default)")
		attachWk = flag.Int("attach-workers", 0, "startup journal-replay worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		compact  = flag.Duration("compact-interval", 0, "background journal compaction: one segment per interval, online (0 disables)")
		replAddr = flag.String("replication", "", "replication stream listen address for read replicas and multi-master peers (empty disables)")
		nodeID   = flag.Uint("node-id", 0, "this node's replication identity, distinct across the mesh (required with -peers)")
		peers    = flag.String("peers", "", "comma-separated replication addresses of multi-master peers (requires -node-id)")
		audit    = flag.String("audit", "", "audit log file ('-' = stderr, empty disables)")
		quiet    = flag.Bool("quiet", false, "suppress operational logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "metacomm: ", log.LstdFlags)
	if *quiet {
		logger = nil
	}
	var auditW io.Writer
	switch *audit {
	case "":
	case "-":
		auditW = os.Stderr
	default:
		f, err := os.OpenFile(*audit, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("metacommd: audit log: %v", err)
		}
		defer f.Close()
		auditW = f
	}
	peerList := splitPeers(*peers)
	sys, err := metacomm.Start(metacomm.Config{
		Suffix:         *suffix,
		DirectoryAddr:  *dirAddr,
		LTAPAddr:       *ltap,
		PBXAddr:        *pbxAddr,
		MPAddr:         *mpAddr,
		Mode:           metacomm.Mode(*mode),
		UMShards:       *umShards,
		UMQueueDepth:   *umQueue,
		SyncWorkers:    *syncWk,
		DeviceSessions: *devSess,
		DeviceLatency:  *devLat,
		BackendConns:   *beConns,
		MaxMessageSize: *maxMsg,
		AcceptLoop:     *acceptLp,
		GatewayCache:   *gwCache,
		Outbox: metacomm.OutboxConfig{
			Dir:         *outbox,
			MaxRetries:  *obRetry,
			BaseBackoff: *obBack,
		},
		InitialSync:     true,
		DataDir:         *dataDir,
		JournalSync:     *jSync,
		JournalBatch:    *jBatch,
		JournalLinger:   *jLinger,
		DITSegments:     *ditSegs,
		AttachWorkers:   *attachWk,
		CompactInterval: *compact,
		ReplicationAddr: *replAddr,
		NodeID:          uint32(*nodeID),
		Peers:           peerList,
		AuditLog:        auditW,
		Logger:          logger,
	})
	if err != nil {
		log.Fatalf("metacommd: %v", err)
	}
	defer sys.Close()

	if sys.Replicator != nil {
		fmt.Printf("replication node:  %d (%d peers)\n", sys.Replicator.NodeID, len(peerList))
	}
	fmt.Printf("LDAP (via LTAP):   %s\n", sys.LTAPAddrActual)
	fmt.Printf("backing directory: %s\n", sys.DirectoryAddrActual)
	fmt.Printf("Definity PBX:      %s\n", sys.PBXAddrActual)
	fmt.Printf("messaging platform:%s\n", sys.MPAddrActual)
	if sys.ReplicationAddrActual != "" {
		fmt.Printf("replication stream: %s\n", sys.ReplicationAddrActual)
	}

	if *wbaAddr != "" {
		conn, err := sys.Client()
		if err != nil {
			log.Fatalf("metacommd: wba connection: %v", err)
		}
		defer conn.Close()
		srv := wba.New(conn, *suffix)
		srv.Stats = sys.UM.Stats
		srv.GatewayStats = sys.Gateway.Stats
		srv.SyncStats = sys.UM.LastSyncStats
		srv.OutboxStats = sys.UM.OutboxStats
		srv.JournalStats = sys.DIT.JournalStats
		srv.LTAPWireStats = func() ldapserver.WireStats { return sys.WireStats().LTAP }
		srv.DirWireStats = func() ldapserver.WireStats { return sys.WireStats().Directory }
		if sys.Replicator != nil {
			srv.ReplicationStats = sys.Replicator.Stats
		}
		go func() {
			fmt.Printf("web administration: http://%s/\n", *wbaAddr)
			if err := http.ListenAndServe(*wbaAddr, srv); err != nil {
				log.Fatalf("metacommd: wba: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := sys.UM.Stats()
	fmt.Printf("shutting down; um: shards=%d processed=%d pending=%d busy-rejections=%d device-applies=%d errors=%d\n",
		st.Shards, st.UpdatesProcessed, st.Pending, st.QueueRejections, st.DeviceApplies, st.ErrorsLogged)
	ws := sys.WireStats()
	fmt.Printf("wire ltap: messages=%d responses=%d flushes=%d responses/flush=%.1f oversize-rejected=%d\n",
		ws.LTAP.MessagesRead, ws.LTAP.ResponsesWritten, ws.LTAP.Flushes,
		ws.LTAP.ResponsesPerFlush(), ws.LTAP.OversizeRejected)
	fmt.Printf("wire directory: messages=%d responses=%d flushes=%d responses/flush=%.1f oversize-rejected=%d\n",
		ws.Directory.MessagesRead, ws.Directory.ResponsesWritten, ws.Directory.Flushes,
		ws.Directory.ResponsesPerFlush(), ws.Directory.OversizeRejected)
	for _, r := range []struct {
		name string
		st   ldapserver.ReactorStats
	}{{"ltap", ws.LTAP.Reactor}, {"directory", ws.Directory.Reactor}} {
		if r.st.Enabled {
			fmt.Printf("reactor %s: conns=%d workers=%d wakeups=%d events=%d frames=%d frames/wakeup=%.1f queue-depth=%d\n",
				r.name, r.st.Conns, r.st.Workers, r.st.Wakeups, r.st.Events,
				r.st.Frames, r.st.FramesPerWakeup(), r.st.QueueDepth)
		}
	}
	gs := sys.Gateway.Stats()
	fmt.Printf("gateway: searches=%d updates=%d backend-fetches=%d cache-hits=%d cache-misses=%d hit-rate=%.1f%% quiesces=%d quiesce-ms=%.1f updates-delayed=%d\n",
		gs.Searches, gs.Updates, gs.BackendFetches, gs.Cache.Hits, gs.Cache.Misses, 100*gs.Cache.HitRate(),
		gs.Quiesces, float64(gs.QuiesceNs)/1e6, gs.UpdatesDelayedByQuiesce)
	for name, ss := range sys.UM.LastSyncStats() {
		fmt.Printf("sync %s: records=%d adds=%d/%d mods=%d/%d in-sync=%d errors=%d snapshot=%v workers=%d bulk-ms=%.1f quiesce-ms=%.1f delta=%d/%d records/s=%.0f\n",
			name, ss.DeviceRecords, ss.DirectoryAdds, ss.DeviceAdds, ss.DirectoryMods, ss.DeviceMods,
			ss.AlreadyInSync, ss.Errors, ss.SnapshotUsed, ss.Workers,
			float64(ss.BulkNs)/1e6, float64(ss.QuiesceNs)/1e6, ss.DeltaRecords, ss.DeltaReplayed, ss.RecordsPerSec())
	}
	for _, obs := range sys.UM.OutboxStats() {
		fmt.Printf("outbox %s: breaker=%s backlog=%d enqueued=%d drained=%d deferred=%d retries=%d repairs=%d dropped=%d trips=%d\n",
			obs.Device, obs.Breaker, obs.Backlog, obs.Enqueued, obs.Drained, obs.Deferred,
			obs.Retries, obs.Repairs, obs.Dropped, obs.Trips)
	}
	if js := sys.DIT.JournalStats(); js.Batches > 0 {
		fmt.Printf("journal: sync=%s commits=%d groups=%d mean-group=%.1f max-group=%d fsyncs=%d bytes=%d mean-commit=%s torn-tails=%d\n",
			js.Mode, js.Appends, js.Batches, js.MeanBatch(), js.MaxBatch,
			js.Fsyncs, js.Bytes, js.MeanCommit(), js.TornTails)
		fmt.Printf("journal group sizes: 1=%d 2-4=%d 5-16=%d 17-64=%d 65-256=%d >256=%d\n",
			js.BatchHist[0], js.BatchHist[1], js.BatchHist[2], js.BatchHist[3], js.BatchHist[4], js.BatchHist[5])
	}
	if js := sys.DIT.JournalStats(); js.Format != "" {
		fmt.Printf("journal replay: format=%s records=%d bytes=%d workers=%d wall-ms=%.1f records/s=%.0f\n",
			js.Format, js.ReplayedRecords, js.ReplayedBytes, js.ReplayWorkers,
			float64(js.ReplayNs)/1e6, js.ReplayRecordsPerSec())
	}
	ds := sys.DIT.Stats()
	fmt.Printf("dit: segments=%d entries=%d interned-names=%d\n", ds.Segments, ds.Entries, ds.InternedNames)
	if sys.Replicator != nil {
		rs := sys.Replicator.Stats()
		fmt.Printf("replication node %d: inbound-conns=%d resumes-served=%d snapshots-served=%d records-sent=%d um-remote-applies=%d um-remote-drops=%d\n",
			rs.NodeID, rs.Publisher.Conns, rs.Publisher.Resumes, rs.Publisher.Snapshots, rs.Publisher.RecordsSent,
			st.RemoteApplies, st.RemoteDrops)
		for _, ps := range rs.Peers {
			fmt.Printf("replication peer %s: connected=%v cursor=%d resumes=%d snapshots=%d applied=%d noops=%d structural=%d\n",
				ps.Addr, ps.Connected, ps.Cursor, ps.Resumes, ps.Snapshots, ps.Applied, ps.Noops, ps.Structural)
		}
	}
	if cs := sys.DIT.CompactionStats(); cs.Runs > 0 || cs.Skips > 0 {
		fmt.Printf("compaction: runs=%d skips=%d snapshot-entries=%d spliced-bytes=%d last-ms=%.1f\n",
			cs.Runs, cs.Skips, cs.SnapshotEntries, cs.SplicedBytes, float64(cs.LastNs)/1e6)
	}
}
