// Command replicad runs a read-only LDAP replica of a MetaComm directory:
// it follows the primary's replication stream (metacommd -replication) and
// serves searches locally — the directory world's standard recipe for
// read scalability and availability (paper §2).
//
// Usage:
//
//	metacommd -replication 127.0.0.1:7000 ...
//	replicad  -from 127.0.0.1:7000 -ldap 127.0.0.1:4890
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"metacomm/internal/ldapserver"
	"metacomm/internal/mcschema"
	"metacomm/internal/replica"
)

func main() {
	var (
		from     = flag.String("from", "127.0.0.1:7000", "primary replication address")
		ldapAddr = flag.String("ldap", "127.0.0.1:4890", "read-only LDAP listen address")
	)
	flag.Parse()

	r := replica.New(*from, mcschema.New())
	r.Start()
	defer r.Stop()

	h := ldapserver.NewDITHandler(r.DIT)
	h.ReadOnly = true
	srv := ldapserver.NewServer(h)
	addr, err := srv.Start(*ldapAddr)
	if err != nil {
		log.Fatalf("replicad: %v", err)
	}
	defer srv.Close()
	fmt.Printf("replica LDAP (read-only): %s\nfollowing:                %s\n", addr, *from)

	go func() {
		for range time.Tick(10 * time.Second) {
			fmt.Printf("replica: connected=%v appliedSeq=%d resumes=%d resyncs=%d entries=%d\n",
				r.Connected(), r.AppliedSeq(), r.Resumes(), r.Resyncs(), r.DIT.Len())
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}
