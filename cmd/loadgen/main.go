// Command loadgen drives a running metacommd (or a system it spawns itself)
// with thousands of concurrent LDAP connections and a configurable
// search/modify mix, and writes the measured throughput, latency
// distribution, and allocation rate as machine-readable JSON — the wire-path
// performance trajectory of the repo, one BENCH_wire_<rev>.json per
// revision.
//
// Examples:
//
//	loadgen -spawn -conns 1000 -duration 10s          # hermetic, in-process system
//	loadgen -addr 127.0.0.1:3890 -conns 2000          # against a running metacommd
//	loadgen -spawn -accept-loop epoll -conns 64 -idle-conns 5000   # mostly-idle regime
//	loadgen -merge BENCH_wire_abc.json run1.json run2.json         # combine runs
//
// Each connection runs a closed loop: it fires a pipelined burst of
// operations (one kernel write for the whole burst, see ldapclient.Pipeline),
// reads the responses, and records each operation's completion latency. The
// op mix defaults to 95% base-object searches / 5% roomNumber modifies —
// the read-mostly regime the paper describes for directory workloads.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/bits"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	metacomm "metacomm"
	"metacomm/internal/ber"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/ldapserver"
)

func main() {
	var (
		addr     = flag.String("addr", "", "LDAP address(es) of a running metacommd — comma-separated for a multi-master mesh; connections round-robin across them")
		spawn    = flag.Bool("spawn", false, "start a complete in-process system instead of dialing -addr")
		conns    = flag.Int("conns", 1000, "concurrent LDAP connections")
		duration = flag.Duration("duration", 10*time.Second, "measurement window")
		warmup   = flag.Duration("warmup", time.Second, "warmup before measurement starts")
		writePct = flag.Int("write-pct", 5, "percent of operations that are modifies (rest are searches)")
		depth    = flag.Int("pipeline", 8, "operations pipelined per burst (1 = one round-trip per op)")
		entries  = flag.Int("entries", 1000, "seeded person entries the workload targets")
		beConns  = flag.Int("backend-conns", 32, "backing-directory pool size when -spawn (gateway searches fan out here)")
		shards   = flag.Int("um-shards", 0, "UM shards when -spawn (0 = default)")
		out      = flag.String("out", "", "output JSON path (default BENCH_wire_<rev>.json in the current directory)")
		rev      = flag.String("rev", "", "revision label for the output file (default git rev-parse --short HEAD)")
		seed     = flag.Int64("rand-seed", 1, "workload RNG seed (deterministic op mix per connection)")
		idleN    = flag.Int("idle-conns", 0, "held-open mostly-idle connections alongside the active workers; each issues one base search per -idle-interval")
		idleIvl  = flag.Duration("idle-interval", 10*time.Second, "per-idle-connection operation interval")
		acceptLp = flag.String("accept-loop", "", "accept loop for the spawned system's listeners: goroutine or epoll (requires -spawn)")
		label    = flag.String("label", "", "run label recorded in the output JSON (merge summaries key on it)")
		merge    = flag.String("merge", "", "merge the per-run JSON files given as arguments into one benchmark record at this path; generates no load")
		expName  = flag.String("experiment", "", "experiment tag recorded in the merged record (with -merge)")
	)
	flag.Parse()
	if *merge != "" {
		mergeRuns(*merge, flag.Args(), revision(*rev), *expName)
		return
	}
	if *spawn == (*addr != "") {
		log.Fatal("loadgen: exactly one of -spawn or -addr is required")
	}
	if *acceptLp != "" && !*spawn {
		log.Fatal("loadgen: -accept-loop configures the spawned system; it requires -spawn")
	}
	if *writePct < 0 || *writePct > 100 {
		log.Fatal("loadgen: -write-pct must be 0..100")
	}
	if *idleN < 0 {
		log.Fatal("loadgen: -idle-conns must be >= 0")
	}
	if *depth < 1 {
		*depth = 1
	}
	raiseNoFile(*conns+*idleN, *spawn)

	targets := splitTargets(*addr)
	var sys *metacomm.System
	if *spawn {
		var err error
		sys, err = metacomm.Start(metacomm.Config{
			BackendConns: *beConns,
			UMShards:     *shards,
			AcceptLoop:   *acceptLp,
		})
		if err != nil {
			log.Fatalf("loadgen: spawn: %v", err)
		}
		defer sys.Close()
		targets = []string{sys.LTAPAddrActual}
		mode := *acceptLp
		if mode == "" {
			mode = metacomm.AcceptLoopGoroutine
		}
		fmt.Printf("spawned system at %s (backend-conns=%d accept-loop=%s)\n", targets[0], *beConns, mode)
	}

	// Seed through one node; a multi-master mesh replicates the population
	// to the rest before the warmup ends (writes during warmup are retried
	// by virtue of LWW idempotence — re-adds report already-exists).
	dns, err := provision(targets[0], *entries)
	if err != nil {
		log.Fatalf("loadgen: seeding %d entries: %v", *entries, err)
	}
	fmt.Printf("seeded %d entries; opening %d connections across %d target(s)...\n",
		len(dns), *conns, len(targets))

	var idle *idlePool
	if *idleN > 0 {
		idle, err = dialIdle(targets, *idleN)
		if err != nil {
			log.Fatalf("loadgen: idle pool: %v", err)
		}
		defer idle.shutdown()
		idle.start(*idleIvl)
		fmt.Printf("holding %d idle connections open (one op per %s each)\n", *idleN, *idleIvl)
	}

	cfgRun := runConfig{
		conns:    *conns,
		duration: *duration,
		warmup:   *warmup,
		writePct: *writePct,
		depth:    *depth,
		seed:     *seed,
	}
	r := run(targets, dns, cfgRun)
	r.Label = *label
	r.Config.Spawned = *spawn
	if *spawn {
		r.Config.AcceptLoop = *acceptLp
		if r.Config.AcceptLoop == "" {
			r.Config.AcceptLoop = metacomm.AcceptLoopGoroutine
		}
	}
	r.Config.IdleConns = *idleN
	if *idleN > 0 {
		r.Config.IdleIntervalSec = round2(idleIvl.Seconds())
	}
	if sys != nil {
		ws := sys.WireStats()
		r.ServerWire = &wireJSON{
			LTAPMessagesRead:      ws.LTAP.MessagesRead,
			LTAPResponsesWritten:  ws.LTAP.ResponsesWritten,
			LTAPFlushes:           ws.LTAP.Flushes,
			LTAPResponsesPerFlush: round2(ws.LTAP.ResponsesPerFlush()),
			DirMessagesRead:       ws.Directory.MessagesRead,
			DirResponsesWritten:   ws.Directory.ResponsesWritten,
			DirFlushes:            ws.Directory.Flushes,
			DirResponsesPerFlush:  round2(ws.Directory.ResponsesPerFlush()),
		}
		if rs := ws.LTAP.Reactor; rs.Enabled {
			r.ServerWire.LTAPReactor = reactorJSONOf(rs)
		}
		if rs := ws.Directory.Reactor; rs.Enabled {
			r.ServerWire.DirReactor = reactorJSONOf(rs)
		}
	}
	if idle != nil {
		idle.shutdown()
		r.IdleOps = idle.ops.Load()
		if n := idle.errs.Load(); n > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: %d idle-connection op errors\n", n)
		}
	}
	r.Rev = revision(*rev)
	r.Timestamp = time.Now().UTC().Format(time.RFC3339)

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_wire_%s.json", r.Rev)
	}
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: marshal: %v", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		log.Fatalf("loadgen: write %s: %v", path, err)
	}

	fmt.Printf("ops=%d (%d errors) over %.1fs: %.0f ops/s\n",
		r.Ops, r.Errors, r.Config.DurationSec, r.OpsPerSec)
	fmt.Printf("latency µs: p50=%d p90=%d p99=%d p999=%d max=%d mean=%.0f\n",
		r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.P999, r.Latency.Max, r.Latency.Mean)
	fmt.Printf("client allocs/op=%.1f\n", r.AllocsPerOp)
	fmt.Printf("process after run: heap-in-use=%d bytes goroutines=%d idle-ops=%d\n",
		r.HeapInUse, r.NumGoroutine, r.IdleOps)
	if r.ServerWire != nil {
		fmt.Printf("server coalescing: ltap %.1f responses/flush, directory %.1f responses/flush\n",
			r.ServerWire.LTAPResponsesPerFlush, r.ServerWire.DirResponsesPerFlush)
		if rs := r.ServerWire.LTAPReactor; rs != nil {
			fmt.Printf("ltap reactor: conns=%d workers=%d wakeups=%d frames=%d frames/wakeup=%.1f\n",
				rs.Conns, rs.Workers, rs.Wakeups, rs.Frames, rs.FramesPerWakeup)
		}
	}
	fmt.Printf("wrote %s\n", path)
	if r.Errors > r.Ops/100 {
		log.Fatalf("loadgen: error rate over 1%% (%d/%d)", r.Errors, r.Ops)
	}
}

// raiseNoFile lifts the fd limit so the requested connection count (plus the
// spawned system's accept side — two fds per connection in-process) fits, and
// fails fast with a clear message when it cannot. Privileged processes may
// raise the hard limit too; unprivileged ones are stuck at it.
func raiseNoFile(conns int, spawn bool) {
	perConn := uint64(1)
	if spawn {
		perConn = 2 // the server end of every connection lives in this process too
	}
	need := perConn*uint64(conns) + 1024
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return
	}
	if rl.Cur >= need {
		return
	}
	if rl.Max < need {
		// Raising the hard limit needs CAP_SYS_RESOURCE; try, ignore failure.
		try := rl
		try.Cur, try.Max = need, need
		if syscall.Setrlimit(syscall.RLIMIT_NOFILE, &try) == nil {
			return
		}
	}
	rl.Cur = rl.Max
	if rl.Cur > need {
		rl.Cur = need
	}
	_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
	syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl)
	if rl.Cur < need {
		log.Fatalf("loadgen: %d connections (-conns plus -idle-conns) need ~%d file descriptors "+
			"but RLIMIT_NOFILE caps at %d; lower the connection counts or raise the limit (ulimit -n)",
			conns, need, rl.Cur)
	}
}

// provision seeds the person entries the workload reads and writes, shaped
// like the repo's benchmark population. Re-running against a system that
// already has them is fine (entryAlreadyExists is not an error here).
func provision(addr string, n int) ([]string, error) {
	c, err := ldapclient.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	dns := make([]string, n)
	const batch = 64
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		ops := make([]ldap.Op, 0, hi-lo)
		for i := lo; i < hi; i++ {
			dns[i] = fmt.Sprintf("cn=Load Person %05d,o=Lucent", i)
			ops = append(ops, &ldap.AddRequest{DN: dns[i], Attributes: []ldap.Attribute{
				{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
				{Type: "cn", Values: []string{fmt.Sprintf("Load Person %05d", i)}},
				{Type: "sn", Values: []string{fmt.Sprintf("Person %05d", i)}},
				{Type: "definityExtension", Values: []string{fmt.Sprintf("3-%05d", i)}},
			}})
		}
		for _, res := range c.Pipeline(ops) {
			if res.Err != nil && !strings.Contains(res.Err.Error(), "already exists") {
				return nil, res.Err
			}
		}
	}
	return dns, nil
}

type runConfig struct {
	conns    int
	duration time.Duration
	warmup   time.Duration
	writePct int
	depth    int
	seed     int64
}

// result is the machine-readable benchmark record.
type result struct {
	Rev       string     `json:"rev"`
	Label     string     `json:"label,omitempty"`
	Timestamp string     `json:"timestamp"`
	Config    configJSON `json:"config"`
	Ops       uint64     `json:"ops"`
	Errors    uint64     `json:"errors"`
	OpsPerSec float64    `json:"ops_per_sec"`
	// IdleOps counts the slow-drip operations issued over the held-open idle
	// connections (not part of Ops or the latency histogram).
	IdleOps uint64 `json:"idle_ops,omitempty"`
	// PerSecond is the throughput trajectory, one sample per elapsed second.
	PerSecond []uint64    `json:"per_second"`
	Latency   latencyJSON `json:"latency_us"`
	// AllocsPerOp is the process-wide heap allocation count per completed
	// operation over the measurement window (includes the in-process server
	// when -spawn).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// HeapInUse is the process's live heap after the run and a forced GC,
	// with any idle connections still held open (bytes; includes the
	// in-process server when -spawn — the per-idle-conn server cost is the
	// delta between runs that differ only in -idle-conns).
	HeapInUse uint64 `json:"heap_in_use_bytes"`
	// NumGoroutine is the process goroutine count at the same instant: in
	// -spawn mode it exposes goroutine-per-conn vs O(workers) serving.
	NumGoroutine int       `json:"num_goroutine"`
	ServerWire   *wireJSON `json:"server_wire,omitempty"`
}

type configJSON struct {
	Conns           int     `json:"conns"`
	IdleConns       int     `json:"idle_conns"`
	IdleIntervalSec float64 `json:"idle_interval_sec,omitempty"`
	AcceptLoop      string  `json:"accept_loop,omitempty"`
	Pipeline        int     `json:"pipeline"`
	WritePct        int     `json:"write_pct"`
	DurationSec     float64 `json:"duration_sec"`
	Entries         int     `json:"entries"`
	Targets         int     `json:"targets"`
	Spawned         bool    `json:"spawned"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	NumCPU          int     `json:"num_cpu"`
}

type latencyJSON struct {
	P50  uint64  `json:"p50"`
	P90  uint64  `json:"p90"`
	P99  uint64  `json:"p99"`
	P999 uint64  `json:"p999"`
	Max  uint64  `json:"max"`
	Mean float64 `json:"mean"`
}

type wireJSON struct {
	LTAPMessagesRead      uint64       `json:"ltap_messages_read"`
	LTAPResponsesWritten  uint64       `json:"ltap_responses_written"`
	LTAPFlushes           uint64       `json:"ltap_flushes"`
	LTAPResponsesPerFlush float64      `json:"ltap_responses_per_flush"`
	DirMessagesRead       uint64       `json:"dir_messages_read"`
	DirResponsesWritten   uint64       `json:"dir_responses_written"`
	DirFlushes            uint64       `json:"dir_flushes"`
	DirResponsesPerFlush  float64      `json:"dir_responses_per_flush"`
	LTAPReactor           *reactorJSON `json:"ltap_reactor,omitempty"`
	DirReactor            *reactorJSON `json:"dir_reactor,omitempty"`
}

// reactorJSON records the epoll reactor's counters for one listener, present
// only when that listener served in epoll mode.
type reactorJSON struct {
	Conns           uint64  `json:"conns"`
	Workers         uint64  `json:"workers"`
	Wakeups         uint64  `json:"wakeups"`
	Events          uint64  `json:"events"`
	Frames          uint64  `json:"frames"`
	FramesPerWakeup float64 `json:"frames_per_wakeup"`
	QueueDepth      uint64  `json:"queue_depth"`
}

func reactorJSONOf(rs ldapserver.ReactorStats) *reactorJSON {
	return &reactorJSON{
		Conns:           rs.Conns,
		Workers:         rs.Workers,
		Wakeups:         rs.Wakeups,
		Events:          rs.Events,
		Frames:          rs.Frames,
		FramesPerWakeup: round2(rs.FramesPerWakeup()),
		QueueDepth:      rs.QueueDepth,
	}
}

// run opens cfg.conns connections round-robined across the targets, lets
// them spin through warmup, measures for cfg.duration, and aggregates the
// per-worker histograms.
func run(targets []string, dns []string, cfg runConfig) result {
	var (
		recording atomic.Bool
		stop      atomic.Bool
		ops       atomic.Uint64 // completed ops while recording
		errs      atomic.Uint64
		dialErrs  atomic.Uint64
	)
	workers := make([]*worker, cfg.conns)
	var wg sync.WaitGroup
	for i := range workers {
		w := &worker{
			hist: newHist(),
			rng:  rand.New(rand.NewSource(cfg.seed + int64(i))),
		}
		workers[i] = w
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := ldapclient.Dial(targets[i%len(targets)])
			if err != nil {
				dialErrs.Add(1)
				return
			}
			defer c.Close()
			w.loop(c, dns, cfg, &recording, &stop, &ops, &errs)
		}(i)
	}

	time.Sleep(cfg.warmup)
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	recording.Store(true)
	start := time.Now()

	// Sample the throughput trajectory once per second.
	perSecond := make([]uint64, 0, int(cfg.duration/time.Second)+1)
	tick := time.NewTicker(time.Second)
	var last uint64
	for elapsed := time.Duration(0); elapsed < cfg.duration; {
		<-tick.C
		elapsed = time.Since(start)
		cur := ops.Load()
		perSecond = append(perSecond, cur-last)
		last = cur
	}
	tick.Stop()

	recording.Store(false)
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	stop.Store(true)
	wg.Wait()

	total := ops.Load()
	h := newHist()
	for _, w := range workers {
		h.merge(w.hist)
	}
	res := result{
		Config: configJSON{
			Conns:       cfg.conns,
			Pipeline:    cfg.depth,
			WritePct:    cfg.writePct,
			DurationSec: round2(elapsed.Seconds()),
			Entries:     len(dns),
			Targets:     len(targets),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
		},
		Ops:       total,
		Errors:    errs.Load() + dialErrs.Load(),
		OpsPerSec: round2(float64(total) / elapsed.Seconds()),
		PerSecond: perSecond,
		Latency: latencyJSON{
			P50:  h.quantile(0.50),
			P90:  h.quantile(0.90),
			P99:  h.quantile(0.99),
			P999: h.quantile(0.999),
			Max:  h.max,
			Mean: round2(h.mean()),
		},
	}
	if total > 0 {
		res.AllocsPerOp = round2(float64(msAfter.Mallocs-msBefore.Mallocs) / float64(total))
	}
	// Steady-state footprint: active workers are gone, idle connections (if
	// any) are still held open, transient server workers have drained. The
	// forced GC makes HeapInuse mean live bytes, not floating garbage.
	runtime.GC()
	var msFinal runtime.MemStats
	runtime.ReadMemStats(&msFinal)
	res.HeapInUse = msFinal.HeapInuse
	res.NumGoroutine = runtime.NumGoroutine()
	if n := dialErrs.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d of %d connections failed to dial\n", n, cfg.conns)
	}
	return res
}

// worker is one connection's closed loop.
type worker struct {
	hist *hist
	rng  *rand.Rand
}

func (w *worker) loop(c *ldapclient.Conn, dns []string, cfg runConfig,
	recording, stop *atomic.Bool, ops, errs *atomic.Uint64) {
	burst := make([]ldap.Op, cfg.depth)
	gen := 0
	for !stop.Load() {
		for i := range burst {
			dn := dns[w.rng.Intn(len(dns))]
			if w.rng.Intn(100) < cfg.writePct {
				gen++
				burst[i] = &ldap.ModifyRequest{DN: dn, Changes: []ldap.Change{{
					Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber",
						Values: []string{fmt.Sprintf("R-%d", gen)}},
				}}}
			} else {
				burst[i] = &ldap.SearchRequest{BaseDN: dn, Scope: ldap.ScopeBaseObject}
			}
		}
		t0 := time.Now()
		results := c.Pipeline(burst)
		us := uint64(time.Since(t0).Microseconds())
		if !recording.Load() {
			for _, r := range results {
				if r.Err != nil {
					return // poisoned connection; transport errors don't recover
				}
			}
			continue
		}
		for _, r := range results {
			if r.Err != nil {
				errs.Add(1)
				return
			}
			ops.Add(1)
			w.hist.record(us)
		}
	}
}

// idlePool holds -idle-conns raw LDAP connections open, each issuing one
// base-object search per -idle-interval from a small fixed pool of poker
// goroutines — the 10k-mostly-idle-consumers regime of the paper's directory
// deployments. Raw net.Conns carry no client-library buffers and no per-conn
// goroutines, so the held connections cost this process almost nothing and
// the heap/goroutine readings isolate what the server pays per idle
// connection.
type idlePool struct {
	conns []net.Conn
	req   []byte
	ops   atomic.Uint64
	errs  atomic.Uint64
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
}

// dialIdle opens n raw connections round-robined across the targets and
// proves each live with one search round-trip before it counts as held.
func dialIdle(targets []string, n int) (*idlePool, error) {
	p := &idlePool{
		conns: make([]net.Conn, n),
		// A base search against a missing DN: the cheapest full
		// request/dispatch/response cycle, answered in a single frame.
		req: (&ldap.Message{ID: 1, Op: &ldap.SearchRequest{
			BaseDN: "o=LoadgenIdleProbe", Scope: ldap.ScopeBaseObject}}).AppendTo(nil),
		stop: make(chan struct{}),
	}
	const dialers = 64
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	var next atomic.Int64
	for d := 0; d < dialers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 0, 512)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				nc, err := net.Dial("tcp", targets[i%len(targets)])
				if err == nil {
					err = p.poke(nc, &buf)
				}
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				p.conns[i] = nc
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		p.closeAll()
		return nil, err
	default:
	}
	return p, nil
}

// poke issues one probe op on nc and reads the single-frame response.
func (p *idlePool) poke(nc net.Conn, scratch *[]byte) error {
	if _, err := nc.Write(p.req); err != nil {
		return err
	}
	return readFrame(nc, scratch)
}

// readFrame consumes exactly one BER frame using the caller's scratch buffer.
func readFrame(nc net.Conn, scratch *[]byte) error {
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	defer nc.SetReadDeadline(time.Time{})
	buf := (*scratch)[:0]
	defer func() { *scratch = buf }()
	for {
		size, ok, err := ber.FrameSize(buf, 0)
		if err != nil {
			return err
		}
		if ok && len(buf) >= size {
			return nil
		}
		var chunk [512]byte
		n, err := nc.Read(chunk[:])
		if err != nil {
			return err
		}
		buf = append(buf, chunk[:n]...)
	}
}

// start launches the poker pool: each poker owns a contiguous share of the
// connections and sweeps it once per interval, with first sweeps staggered
// across the interval so the drip never lands as a synchronized burst.
func (p *idlePool) start(interval time.Duration) {
	pokers := 8
	if len(p.conns) < pokers {
		pokers = len(p.conns)
	}
	share := (len(p.conns) + pokers - 1) / pokers
	for i := 0; i < pokers; i++ {
		lo, hi := i*share, (i+1)*share
		if hi > len(p.conns) {
			hi = len(p.conns)
		}
		if lo >= hi {
			break
		}
		p.wg.Add(1)
		go func(i, lo, hi int) {
			defer p.wg.Done()
			buf := make([]byte, 0, 512)
			delay := interval * time.Duration(i) / time.Duration(pokers)
			for {
				select {
				case <-p.stop:
					return
				case <-time.After(delay):
				}
				delay = interval
				for j := lo; j < hi; j++ {
					nc := p.conns[j]
					if nc == nil {
						continue
					}
					if err := p.poke(nc, &buf); err != nil {
						p.errs.Add(1)
						nc.Close()
						p.conns[j] = nil
						continue
					}
					p.ops.Add(1)
				}
			}
		}(i, lo, hi)
	}
}

// shutdown stops the pokers and closes every held connection. Idempotent.
func (p *idlePool) shutdown() {
	p.once.Do(func() {
		close(p.stop)
		p.wg.Wait()
		p.closeAll()
	})
}

func (p *idlePool) closeAll() {
	for i, nc := range p.conns {
		if nc != nil {
			nc.Close()
			p.conns[i] = nil
		}
	}
}

// hist is an HDR-style log-linear histogram of microsecond latencies: exact
// below 32µs, then 32 sub-buckets per power of two (≤ ~3% relative error),
// covering up to ~2^31 µs (~36 min) in 1024 counters.
type hist struct {
	counts [1024]uint64
	total  uint64
	sum    uint64
	max    uint64
}

func newHist() *hist { return &hist{} }

func (h *hist) record(us uint64) {
	h.counts[histIndex(us)]++
	h.total++
	h.sum += us
	if us > h.max {
		h.max = us
	}
}

func histIndex(v uint64) int {
	if v < 32 {
		return int(v)
	}
	exp := bits.Len64(v) - 6 // v >= 32, so exp >= 0
	idx := (exp+1)*32 + int(v>>uint(exp)) - 32
	if idx >= len((*hist)(nil).counts) {
		return len((*hist)(nil).counts) - 1
	}
	return idx
}

// histValue returns the upper edge of bucket idx.
func histValue(idx int) uint64 {
	if idx < 32 {
		return uint64(idx)
	}
	exp := idx/32 - 1
	sub := uint64(idx%32) + 32
	return (sub + 1) << uint(exp)
}

func (h *hist) merge(o *hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

func (h *hist) quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(q * float64(h.total))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			v := histValue(i)
			if v > h.max {
				return h.max
			}
			return v
		}
	}
	return h.max
}

func (h *hist) mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// splitTargets parses -addr: comma-separated addresses, blanks dropped.
func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// mergedResult is the head-to-head benchmark record: several labelled runs
// of the same revision combined into one file (E24 records its
// goroutine-vs-epoll matrix this way in BENCH_wire_<rev>.json).
type mergedResult struct {
	Rev        string   `json:"rev"`
	Timestamp  string   `json:"timestamp"`
	Experiment string   `json:"experiment,omitempty"`
	Runs       []result `json:"runs"`
}

// mergeRuns combines per-run JSON files into one record and prints a
// side-by-side summary.
func mergeRuns(outPath string, files []string, rev, experiment string) {
	if len(files) == 0 {
		log.Fatal("loadgen: -merge needs at least one per-run JSON file argument")
	}
	doc := mergedResult{
		Rev:        rev,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Experiment: experiment,
	}
	for _, f := range files {
		blob, err := os.ReadFile(f)
		if err != nil {
			log.Fatalf("loadgen: merge: %v", err)
		}
		var r result
		if err := json.Unmarshal(blob, &r); err != nil {
			log.Fatalf("loadgen: merge %s: %v", f, err)
		}
		if r.Label == "" {
			base := f
			if i := strings.LastIndexByte(base, '/'); i >= 0 {
				base = base[i+1:]
			}
			r.Label = strings.TrimSuffix(base, ".json")
		}
		doc.Runs = append(doc.Runs, r)
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: merge marshal: %v", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		log.Fatalf("loadgen: write %s: %v", outPath, err)
	}
	fmt.Printf("%-26s %7s %7s %10s %8s %14s %11s %10s\n",
		"label", "conns", "idle", "ops/s", "p99us", "heap-bytes", "goroutines", "frames/wk")
	for _, r := range doc.Runs {
		fw := "-"
		if r.ServerWire != nil && r.ServerWire.LTAPReactor != nil {
			fw = fmt.Sprintf("%.1f", r.ServerWire.LTAPReactor.FramesPerWakeup)
		}
		fmt.Printf("%-26s %7d %7d %10.0f %8d %14d %11d %10s\n",
			r.Label, r.Config.Conns, r.Config.IdleConns, r.OpsPerSec, r.Latency.P99,
			r.HeapInUse, r.NumGoroutine, fw)
	}
	fmt.Printf("wrote %s\n", outPath)
}

// revision resolves the label for the output filename.
func revision(explicit string) string {
	if explicit != "" {
		return explicit
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
