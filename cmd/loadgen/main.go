// Command loadgen drives a running metacommd (or a system it spawns itself)
// with thousands of concurrent LDAP connections and a configurable
// search/modify mix, and writes the measured throughput, latency
// distribution, and allocation rate as machine-readable JSON — the wire-path
// performance trajectory of the repo, one BENCH_wire_<rev>.json per
// revision.
//
// Examples:
//
//	loadgen -spawn -conns 1000 -duration 10s          # hermetic, in-process system
//	loadgen -addr 127.0.0.1:3890 -conns 2000          # against a running metacommd
//
// Each connection runs a closed loop: it fires a pipelined burst of
// operations (one kernel write for the whole burst, see ldapclient.Pipeline),
// reads the responses, and records each operation's completion latency. The
// op mix defaults to 95% base-object searches / 5% roomNumber modifies —
// the read-mostly regime the paper describes for directory workloads.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/bits"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	metacomm "metacomm"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
)

func main() {
	var (
		addr     = flag.String("addr", "", "LDAP address(es) of a running metacommd — comma-separated for a multi-master mesh; connections round-robin across them")
		spawn    = flag.Bool("spawn", false, "start a complete in-process system instead of dialing -addr")
		conns    = flag.Int("conns", 1000, "concurrent LDAP connections")
		duration = flag.Duration("duration", 10*time.Second, "measurement window")
		warmup   = flag.Duration("warmup", time.Second, "warmup before measurement starts")
		writePct = flag.Int("write-pct", 5, "percent of operations that are modifies (rest are searches)")
		depth    = flag.Int("pipeline", 8, "operations pipelined per burst (1 = one round-trip per op)")
		entries  = flag.Int("entries", 1000, "seeded person entries the workload targets")
		beConns  = flag.Int("backend-conns", 32, "backing-directory pool size when -spawn (gateway searches fan out here)")
		shards   = flag.Int("um-shards", 0, "UM shards when -spawn (0 = default)")
		out      = flag.String("out", "", "output JSON path (default BENCH_wire_<rev>.json in the current directory)")
		rev      = flag.String("rev", "", "revision label for the output file (default git rev-parse --short HEAD)")
		seed     = flag.Int64("rand-seed", 1, "workload RNG seed (deterministic op mix per connection)")
	)
	flag.Parse()
	if *spawn == (*addr != "") {
		log.Fatal("loadgen: exactly one of -spawn or -addr is required")
	}
	if *writePct < 0 || *writePct > 100 {
		log.Fatal("loadgen: -write-pct must be 0..100")
	}
	if *depth < 1 {
		*depth = 1
	}
	raiseNoFile(*conns)

	targets := splitTargets(*addr)
	var sys *metacomm.System
	if *spawn {
		var err error
		sys, err = metacomm.Start(metacomm.Config{
			BackendConns: *beConns,
			UMShards:     *shards,
		})
		if err != nil {
			log.Fatalf("loadgen: spawn: %v", err)
		}
		defer sys.Close()
		targets = []string{sys.LTAPAddrActual}
		fmt.Printf("spawned system at %s (backend-conns=%d)\n", targets[0], *beConns)
	}

	// Seed through one node; a multi-master mesh replicates the population
	// to the rest before the warmup ends (writes during warmup are retried
	// by virtue of LWW idempotence — re-adds report already-exists).
	dns, err := provision(targets[0], *entries)
	if err != nil {
		log.Fatalf("loadgen: seeding %d entries: %v", *entries, err)
	}
	fmt.Printf("seeded %d entries; opening %d connections across %d target(s)...\n",
		len(dns), *conns, len(targets))

	cfgRun := runConfig{
		conns:    *conns,
		duration: *duration,
		warmup:   *warmup,
		writePct: *writePct,
		depth:    *depth,
		seed:     *seed,
	}
	r := run(targets, dns, cfgRun)
	r.Config.Spawned = *spawn
	if sys != nil {
		ws := sys.WireStats()
		r.ServerWire = &wireJSON{
			LTAPMessagesRead:      ws.LTAP.MessagesRead,
			LTAPResponsesWritten:  ws.LTAP.ResponsesWritten,
			LTAPFlushes:           ws.LTAP.Flushes,
			LTAPResponsesPerFlush: round2(ws.LTAP.ResponsesPerFlush()),
			DirMessagesRead:       ws.Directory.MessagesRead,
			DirResponsesWritten:   ws.Directory.ResponsesWritten,
			DirFlushes:            ws.Directory.Flushes,
			DirResponsesPerFlush:  round2(ws.Directory.ResponsesPerFlush()),
		}
	}
	r.Rev = revision(*rev)
	r.Timestamp = time.Now().UTC().Format(time.RFC3339)

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_wire_%s.json", r.Rev)
	}
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: marshal: %v", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		log.Fatalf("loadgen: write %s: %v", path, err)
	}

	fmt.Printf("ops=%d (%d errors) over %.1fs: %.0f ops/s\n",
		r.Ops, r.Errors, r.Config.DurationSec, r.OpsPerSec)
	fmt.Printf("latency µs: p50=%d p90=%d p99=%d p999=%d max=%d mean=%.0f\n",
		r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.P999, r.Latency.Max, r.Latency.Mean)
	fmt.Printf("client allocs/op=%.1f\n", r.AllocsPerOp)
	if r.ServerWire != nil {
		fmt.Printf("server coalescing: ltap %.1f responses/flush, directory %.1f responses/flush\n",
			r.ServerWire.LTAPResponsesPerFlush, r.ServerWire.DirResponsesPerFlush)
	}
	fmt.Printf("wrote %s\n", path)
	if r.Errors > r.Ops/100 {
		log.Fatalf("loadgen: error rate over 1%% (%d/%d)", r.Errors, r.Ops)
	}
}

// raiseNoFile lifts the fd soft limit toward the hard limit so thousands of
// sockets (plus the spawned system's accept side) fit in one process.
func raiseNoFile(conns int) {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return
	}
	need := uint64(4*conns + 256)
	if rl.Cur >= need {
		return
	}
	rl.Cur = rl.Max
	if rl.Cur > need {
		rl.Cur = need
	}
	_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
}

// provision seeds the person entries the workload reads and writes, shaped
// like the repo's benchmark population. Re-running against a system that
// already has them is fine (entryAlreadyExists is not an error here).
func provision(addr string, n int) ([]string, error) {
	c, err := ldapclient.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	dns := make([]string, n)
	const batch = 64
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		ops := make([]ldap.Op, 0, hi-lo)
		for i := lo; i < hi; i++ {
			dns[i] = fmt.Sprintf("cn=Load Person %05d,o=Lucent", i)
			ops = append(ops, &ldap.AddRequest{DN: dns[i], Attributes: []ldap.Attribute{
				{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
				{Type: "cn", Values: []string{fmt.Sprintf("Load Person %05d", i)}},
				{Type: "sn", Values: []string{fmt.Sprintf("Person %05d", i)}},
				{Type: "definityExtension", Values: []string{fmt.Sprintf("3-%05d", i)}},
			}})
		}
		for _, res := range c.Pipeline(ops) {
			if res.Err != nil && !strings.Contains(res.Err.Error(), "already exists") {
				return nil, res.Err
			}
		}
	}
	return dns, nil
}

type runConfig struct {
	conns    int
	duration time.Duration
	warmup   time.Duration
	writePct int
	depth    int
	seed     int64
}

// result is the machine-readable benchmark record.
type result struct {
	Rev       string     `json:"rev"`
	Timestamp string     `json:"timestamp"`
	Config    configJSON `json:"config"`
	Ops       uint64     `json:"ops"`
	Errors    uint64     `json:"errors"`
	OpsPerSec float64    `json:"ops_per_sec"`
	// PerSecond is the throughput trajectory, one sample per elapsed second.
	PerSecond []uint64    `json:"per_second"`
	Latency   latencyJSON `json:"latency_us"`
	// AllocsPerOp is the process-wide heap allocation count per completed
	// operation over the measurement window (includes the in-process server
	// when -spawn).
	AllocsPerOp float64   `json:"allocs_per_op"`
	// HeapInUse is the client process's live heap after the run (bytes).
	HeapInUse  uint64    `json:"heap_in_use_bytes"`
	ServerWire *wireJSON `json:"server_wire,omitempty"`
}

type configJSON struct {
	Conns       int     `json:"conns"`
	Pipeline    int     `json:"pipeline"`
	WritePct    int     `json:"write_pct"`
	DurationSec float64 `json:"duration_sec"`
	Entries     int     `json:"entries"`
	Targets     int     `json:"targets"`
	Spawned     bool    `json:"spawned"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
}

type latencyJSON struct {
	P50  uint64  `json:"p50"`
	P90  uint64  `json:"p90"`
	P99  uint64  `json:"p99"`
	P999 uint64  `json:"p999"`
	Max  uint64  `json:"max"`
	Mean float64 `json:"mean"`
}

type wireJSON struct {
	LTAPMessagesRead      uint64  `json:"ltap_messages_read"`
	LTAPResponsesWritten  uint64  `json:"ltap_responses_written"`
	LTAPFlushes           uint64  `json:"ltap_flushes"`
	LTAPResponsesPerFlush float64 `json:"ltap_responses_per_flush"`
	DirMessagesRead       uint64  `json:"dir_messages_read"`
	DirResponsesWritten   uint64  `json:"dir_responses_written"`
	DirFlushes            uint64  `json:"dir_flushes"`
	DirResponsesPerFlush  float64 `json:"dir_responses_per_flush"`
}

// run opens cfg.conns connections round-robined across the targets, lets
// them spin through warmup, measures for cfg.duration, and aggregates the
// per-worker histograms.
func run(targets []string, dns []string, cfg runConfig) result {
	var (
		recording atomic.Bool
		stop      atomic.Bool
		ops       atomic.Uint64 // completed ops while recording
		errs      atomic.Uint64
		dialErrs  atomic.Uint64
	)
	workers := make([]*worker, cfg.conns)
	var wg sync.WaitGroup
	for i := range workers {
		w := &worker{
			hist: newHist(),
			rng:  rand.New(rand.NewSource(cfg.seed + int64(i))),
		}
		workers[i] = w
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := ldapclient.Dial(targets[i%len(targets)])
			if err != nil {
				dialErrs.Add(1)
				return
			}
			defer c.Close()
			w.loop(c, dns, cfg, &recording, &stop, &ops, &errs)
		}(i)
	}

	time.Sleep(cfg.warmup)
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	recording.Store(true)
	start := time.Now()

	// Sample the throughput trajectory once per second.
	perSecond := make([]uint64, 0, int(cfg.duration/time.Second)+1)
	tick := time.NewTicker(time.Second)
	var last uint64
	for elapsed := time.Duration(0); elapsed < cfg.duration; {
		<-tick.C
		elapsed = time.Since(start)
		cur := ops.Load()
		perSecond = append(perSecond, cur-last)
		last = cur
	}
	tick.Stop()

	recording.Store(false)
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	stop.Store(true)
	wg.Wait()

	total := ops.Load()
	h := newHist()
	for _, w := range workers {
		h.merge(w.hist)
	}
	res := result{
		Config: configJSON{
			Conns:       cfg.conns,
			Pipeline:    cfg.depth,
			WritePct:    cfg.writePct,
			DurationSec: round2(elapsed.Seconds()),
			Entries:     len(dns),
			Targets:     len(targets),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
		},
		Ops:       total,
		Errors:    errs.Load() + dialErrs.Load(),
		OpsPerSec: round2(float64(total) / elapsed.Seconds()),
		PerSecond: perSecond,
		Latency: latencyJSON{
			P50:  h.quantile(0.50),
			P90:  h.quantile(0.90),
			P99:  h.quantile(0.99),
			P999: h.quantile(0.999),
			Max:  h.max,
			Mean: round2(h.mean()),
		},
	}
	if total > 0 {
		res.AllocsPerOp = round2(float64(msAfter.Mallocs-msBefore.Mallocs) / float64(total))
	}
	res.HeapInUse = msAfter.HeapInuse
	if n := dialErrs.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d of %d connections failed to dial\n", n, cfg.conns)
	}
	return res
}

// worker is one connection's closed loop.
type worker struct {
	hist *hist
	rng  *rand.Rand
}

func (w *worker) loop(c *ldapclient.Conn, dns []string, cfg runConfig,
	recording, stop *atomic.Bool, ops, errs *atomic.Uint64) {
	burst := make([]ldap.Op, cfg.depth)
	gen := 0
	for !stop.Load() {
		for i := range burst {
			dn := dns[w.rng.Intn(len(dns))]
			if w.rng.Intn(100) < cfg.writePct {
				gen++
				burst[i] = &ldap.ModifyRequest{DN: dn, Changes: []ldap.Change{{
					Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber",
						Values: []string{fmt.Sprintf("R-%d", gen)}},
				}}}
			} else {
				burst[i] = &ldap.SearchRequest{BaseDN: dn, Scope: ldap.ScopeBaseObject}
			}
		}
		t0 := time.Now()
		results := c.Pipeline(burst)
		us := uint64(time.Since(t0).Microseconds())
		if !recording.Load() {
			for _, r := range results {
				if r.Err != nil {
					return // poisoned connection; transport errors don't recover
				}
			}
			continue
		}
		for _, r := range results {
			if r.Err != nil {
				errs.Add(1)
				return
			}
			ops.Add(1)
			w.hist.record(us)
		}
	}
}

// hist is an HDR-style log-linear histogram of microsecond latencies: exact
// below 32µs, then 32 sub-buckets per power of two (≤ ~3% relative error),
// covering up to ~2^31 µs (~36 min) in 1024 counters.
type hist struct {
	counts [1024]uint64
	total  uint64
	sum    uint64
	max    uint64
}

func newHist() *hist { return &hist{} }

func (h *hist) record(us uint64) {
	h.counts[histIndex(us)]++
	h.total++
	h.sum += us
	if us > h.max {
		h.max = us
	}
}

func histIndex(v uint64) int {
	if v < 32 {
		return int(v)
	}
	exp := bits.Len64(v) - 6 // v >= 32, so exp >= 0
	idx := (exp+1)*32 + int(v>>uint(exp)) - 32
	if idx >= len((*hist)(nil).counts) {
		return len((*hist)(nil).counts) - 1
	}
	return idx
}

// histValue returns the upper edge of bucket idx.
func histValue(idx int) uint64 {
	if idx < 32 {
		return uint64(idx)
	}
	exp := idx/32 - 1
	sub := uint64(idx%32) + 32
	return (sub + 1) << uint(exp)
}

func (h *hist) merge(o *hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

func (h *hist) quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(q * float64(h.total))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			v := histValue(i)
			if v > h.max {
				return h.max
			}
			return v
		}
	}
	return h.max
}

func (h *hist) mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// splitTargets parses -addr: comma-separated addresses, blanks dropped.
func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// revision resolves the label for the output filename.
func revision(explicit string) string {
	if explicit != "" {
		return explicit
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
