// Command benchscale measures the directory at population scale
// (EXPERIMENTS.md E21): per-operation latency and journal replay time as
// the population grows 1k -> 1M, against the segmented DIT directly (no
// wire). It records, per population:
//
//   - add/modify/indexed-search latency (p50/p99), which the segmented
//     design holds flat as the population grows;
//   - live heap after a GC, plus bytes/entry (the intern table and
//     slice-backed attributes are what keep this down);
//   - "crash-recovery" replay: reattaching the journal set exactly as
//     Start does after a crash, first against the raw append-only journal
//     and again after compaction (linear in live entries, not history);
//   - one full compaction sweep under a sustained 95/5 read/write load,
//     asserting ZERO rejected writes and recording the worst write latency
//     a concurrent writer observed while segments were being rewritten.
//
// The machine-readable record lands as BENCH_scale_<rev>.json (see
// scripts/bench_scale.sh and `make bench-scale`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/mcschema"
)

func main() {
	var (
		pops     = flag.String("pops", "1000,10000,100000,1000000", "comma-separated populations to measure")
		segments = flag.Int("segments", 0, "DIT segment count (0 = default)")
		ops      = flag.Int("ops", 2000, "measured operations per op type per population")
		writers  = flag.Int("writers", 8, "concurrent populate/load writers")
		attachWk = flag.Int("attach-workers", 0, "worker count for the parallel attach phase (0 = max(2, GOMAXPROCS))")
		syncMode = flag.String("journal-sync", "group", "journal durability mode for the run")
		outPath  = flag.String("out", "", "output JSON path (default BENCH_scale_<rev>.json)")
		rev      = flag.String("rev", "", "revision tag for the record (default git rev-parse)")
	)
	flag.Parse()

	mode, err := directory.ParseSyncMode(*syncMode)
	if err != nil {
		fatal(err)
	}
	var populations []int
	for _, f := range strings.Split(*pops, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			fatal(fmt.Errorf("bad population %q", f))
		}
		populations = append(populations, n)
	}

	res := result{
		Rev:        revision(*rev),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Segments:   *segments,
		Sync:       mode.String(),
	}
	if res.Segments == 0 {
		res.Segments = directory.DefaultDITSegments
	}
	for _, n := range populations {
		fmt.Fprintf(os.Stderr, "benchscale: population %d...\n", n)
		pr, err := runPopulation(n, *segments, *ops, *writers, *attachWk, mode)
		if err != nil {
			fatal(fmt.Errorf("population %d: %w", n, err))
		}
		res.Populations = append(res.Populations, pr)
	}

	path := *outPath
	if path == "" {
		path = fmt.Sprintf("BENCH_scale_%s.json", res.Rev)
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchscale: wrote %s\n", path)
	for _, p := range res.Populations {
		fmt.Printf("  n=%-8d add p50/p99=%d/%dus modify=%d/%dus search=%d/%dus heap/entry=%dB replay=%.0fms compacted=%.0fms compact-under-load: rejected=%d worst-write=%dus\n",
			p.Entries, p.Add.P50, p.Add.P99, p.Modify.P50, p.Modify.P99,
			p.Search.P50, p.Search.P99, p.HeapBytesPerEntry,
			float64(p.ReplayNs)/1e6, float64(p.ReplayCompactedNs)/1e6,
			p.CompactUnderLoad.RejectedWrites, p.CompactUnderLoad.WorstWriteUs)
		for _, a := range p.AttachReplay {
			fmt.Printf("    attach format=%-4s workers=%d records=%d wall=%.1fms records/s=%.0f MB/s=%.1f\n",
				a.Format, a.Workers, a.Records, float64(a.WallNs)/1e6, a.RecordsPerSec, a.MBPerSec)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchscale: %v\n", err)
	os.Exit(1)
}

type result struct {
	Rev         string      `json:"rev"`
	Timestamp   string      `json:"timestamp"`
	GoVersion   string      `json:"goversion"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	NumCPU      int         `json:"num_cpu"`
	Segments    int         `json:"segments"`
	Sync        string      `json:"sync"`
	Populations []popResult `json:"populations"`
}

type latency struct {
	P50 int64 `json:"p50"`
	P99 int64 `json:"p99"`
}

type popResult struct {
	Entries        int     `json:"entries"`
	PopulateSec    float64 `json:"populate_sec"`
	PopulatePerSec float64 `json:"populate_ops_per_sec"`
	// Per-op latency in microseconds over the measured sample.
	Add    latency `json:"add_us"`
	Modify latency `json:"modify_us"`
	Search latency `json:"search_us"`
	// Heap after runtime.GC, and per live entry.
	HeapInUse         uint64 `json:"heap_in_use_bytes"`
	HeapBytesPerEntry uint64 `json:"heap_bytes_per_entry"`
	InternedNames     int    `json:"interned_names"`
	// Replay (crash-recovery attach) against the raw journal and again
	// after compaction; record counts show what compaction saved.
	ReplayNs               int64 `json:"replay_ns"`
	ReplayRecords          int   `json:"replay_records"`
	ReplayCompactedNs      int64 `json:"replay_compacted_ns"`
	ReplayCompactedRecords int   `json:"replay_compacted_records"`

	CompactUnderLoad compactLoad `json:"compact_under_load"`

	// AttachReplay (E22) measures cold attach over the compacted journal
	// set in both record formats: v2 sequential, v2 on the worker pool,
	// and JSON sequential (the set is migrated to JSON in between, then
	// back — exercising the format migration both ways).
	AttachReplay []attachPhase `json:"attach_replay"`
}

// attachPhase is one timed cold attach of the journal set.
type attachPhase struct {
	Format        string  `json:"format"`
	Workers       int     `json:"workers"`
	Records       uint64  `json:"records"`
	Bytes         uint64  `json:"bytes"`
	WallNs        int64   `json:"wall_ns"`
	RecordsPerSec float64 `json:"records_per_sec"`
	MBPerSec      float64 `json:"mb_per_sec"`
}

type compactLoad struct {
	// RejectedWrites MUST be zero: compaction is online.
	RejectedWrites int64 `json:"rejected_writes"`
	// Ops completed (95% indexed searches / 5% modifies by the load mix,
	// plus the adds) while the sweep ran; WorstWriteUs is the worst single
	// write latency any writer observed during it.
	Ops          int64   `json:"ops"`
	CompactSec   float64 `json:"compact_sec"`
	WorstWriteUs int64   `json:"worst_write_us"`
	SplicedBytes uint64  `json:"spliced_bytes"`
}

func personDN(i int) dn.DN {
	return dn.MustParse(fmt.Sprintf("cn=u%07d,o=Lucent", i))
}

func personAttrs(i int) *directory.Attrs {
	return directory.AttrsFrom(map[string][]string{
		"objectClass": {mcschema.ClassPerson,
			mcschema.ClassDefinityUser, mcschema.ClassMessagingUser},
		mcschema.AttrCN:                {fmt.Sprintf("u%07d", i)},
		mcschema.AttrSN:                {fmt.Sprintf("User%07d", i)},
		mcschema.AttrTelephone:         {fmt.Sprintf("+1 908 555 %04d", i%10000)},
		mcschema.AttrDefinityExtension: {fmt.Sprintf("%07d", i)},
		mcschema.AttrMailboxNumber:     {fmt.Sprintf("%07d", i)},
	})
}

func runPopulation(n, segments, ops, writers, attachWorkers int, mode directory.SyncMode) (popResult, error) {
	dir, err := os.MkdirTemp("", "benchscale")
	if err != nil {
		return popResult{}, err
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "directory.journal")

	d := directory.NewSegmented(mcschema.New(), segments)
	if _, err := d.AttachJournalSet(directory.JournalSetConfig{Base: base, Mode: mode}); err != nil {
		return popResult{}, err
	}
	d.EnableIndexes(mcschema.AttrDefinityExtension, mcschema.AttrMailboxNumber,
		mcschema.AttrCN, mcschema.AttrTelephone, "objectClass")

	suffix := directory.NewAttrs()
	suffix.Put("objectClass", mcschema.ClassOrganization)
	if err := d.Add(dn.MustParse("o=Lucent"), suffix); err != nil {
		return popResult{}, err
	}

	pr := popResult{Entries: n}

	// The measured adds complete the population, so at small populations
	// they must not dominate it.
	if ops > (n-1)/2 {
		ops = (n - 1) / 2
	}

	// Populate in parallel (every person entry is a leaf of the suffix, so
	// adds serialize on the suffix's segment for the child-link write; the
	// journal I/O and fsyncs still group-commit across writers).
	populate := n - 1 - ops
	start := time.Now()
	var wg sync.WaitGroup
	var addErr atomic.Value
	per := populate / writers
	for w := 0; w < writers; w++ {
		lo, hi := w*per, (w+1)*per
		if w == writers-1 {
			hi = populate
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if err := d.Add(personDN(i), personAttrs(i)); err != nil {
					addErr.Store(err)
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if e := addErr.Load(); e != nil {
		return pr, e.(error)
	}
	pr.PopulateSec = time.Since(start).Seconds()
	if pr.PopulateSec > 0 {
		pr.PopulatePerSec = float64(populate) / pr.PopulateSec
	}

	// Measured adds: the last `ops` entries, timed individually.
	addNs := make([]int64, 0, ops)
	for i := populate; i < populate+ops; i++ {
		t0 := time.Now()
		if err := d.Add(personDN(i), personAttrs(i)); err != nil {
			return pr, err
		}
		addNs = append(addNs, time.Since(t0).Nanoseconds())
	}
	pr.Add = quantilesUs(addNs)

	// Measured modifies: random entries, one replace each.
	rng := rand.New(rand.NewSource(1))
	modNs := make([]int64, 0, ops)
	for k := 0; k < ops; k++ {
		name := personDN(rng.Intn(n - 1))
		t0 := time.Now()
		err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: mcschema.AttrRoom, Values: []string{strconv.Itoa(k)}}}})
		if err != nil {
			return pr, err
		}
		modNs = append(modNs, time.Since(t0).Nanoseconds())
	}
	pr.Modify = quantilesUs(modNs)

	// Measured searches: indexed equality on the device key, whole subtree.
	searchNs := make([]int64, 0, ops)
	for k := 0; k < ops; k++ {
		f := ldap.Eq(mcschema.AttrDefinityExtension, fmt.Sprintf("%07d", rng.Intn(n-1)))
		t0 := time.Now()
		got, err := d.Search(dn.MustParse("o=Lucent"), ldap.ScopeWholeSubtree, f, 0)
		if err != nil {
			return pr, err
		}
		if len(got) != 1 {
			return pr, fmt.Errorf("indexed search returned %d entries", len(got))
		}
		searchNs = append(searchNs, time.Since(t0).Nanoseconds())
	}
	pr.Search = quantilesUs(searchNs)

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	pr.HeapInUse = ms.HeapInuse
	pr.HeapBytesPerEntry = ms.HeapInuse / uint64(n)
	pr.InternedNames = d.Stats().InternedNames

	// Compaction under sustained 95/5 load: writers add + modify, readers
	// search, one full sweep runs concurrently. Zero rejected writes is the
	// online guarantee.
	load := compactLoad{}
	stop := make(chan struct{})
	var loadWg sync.WaitGroup
	var rejected, opsDone, worstWrite atomic.Int64
	for w := 0; w < writers/2+1; w++ {
		loadWg.Add(1)
		go func(w int) {
			defer loadWg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				t0 := time.Now()
				if i%20 == 0 { // 5% writes
					name := personDN(r.Intn(n - 1))
					err = d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
						Attribute: ldap.Attribute{Type: mcschema.AttrRoom, Values: []string{"load"}}}})
					if el := time.Since(t0).Nanoseconds(); el > worstWrite.Load() {
						worstWrite.Store(el)
					}
				} else {
					f := ldap.Eq(mcschema.AttrDefinityExtension, fmt.Sprintf("%07d", r.Intn(n-1)))
					_, err = d.Search(dn.MustParse("o=Lucent"), ldap.ScopeWholeSubtree, f, 0)
				}
				if err != nil {
					rejected.Add(1)
					return
				}
				opsDone.Add(1)
			}
		}(w)
	}
	csBefore := d.CompactionStats()
	t0 := time.Now()
	if err := d.Compact(); err != nil {
		return pr, err
	}
	load.CompactSec = time.Since(t0).Seconds()
	close(stop)
	loadWg.Wait()
	load.RejectedWrites = rejected.Load()
	load.Ops = opsDone.Load()
	load.WorstWriteUs = worstWrite.Load() / 1e3
	load.SplicedBytes = d.CompactionStats().SplicedBytes - csBefore.SplicedBytes
	pr.CompactUnderLoad = load
	if load.RejectedWrites != 0 {
		return pr, fmt.Errorf("%d writes rejected during online compaction", load.RejectedWrites)
	}

	// Crash-recovery replay: grow the journal back past the compacted
	// state with one more round of modifies, then reattach cold, exactly
	// as a restart after a crash would.
	for k := 0; k < ops; k++ {
		name := personDN(rng.Intn(n - 1))
		if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: mcschema.AttrRoom, Values: []string{"post"}}}}); err != nil {
			return pr, err
		}
	}
	if err := d.CloseJournal(); err != nil {
		return pr, err
	}

	cold := directory.NewSegmented(mcschema.New(), segments)
	t0 = time.Now()
	replayed, err := cold.AttachJournalSet(directory.JournalSetConfig{Base: base, Mode: mode})
	if err != nil {
		return pr, err
	}
	pr.ReplayNs = time.Since(t0).Nanoseconds()
	pr.ReplayRecords = replayed
	if cold.Len() != n {
		return pr, fmt.Errorf("replay restored %d entries, want %d", cold.Len(), n)
	}
	// Compact, close, and replay again: linear in live entries now.
	if err := cold.Compact(); err != nil {
		return pr, err
	}
	if err := cold.CloseJournal(); err != nil {
		return pr, err
	}
	cold2 := directory.NewSegmented(mcschema.New(), segments)
	t0 = time.Now()
	replayed, err = cold2.AttachJournalSet(directory.JournalSetConfig{Base: base, Mode: mode})
	if err != nil {
		return pr, err
	}
	pr.ReplayCompactedNs = time.Since(t0).Nanoseconds()
	pr.ReplayCompactedRecords = replayed
	if cold2.Len() != n {
		return pr, fmt.Errorf("compacted replay restored %d entries, want %d", cold2.Len(), n)
	}
	if err := cold2.CloseJournal(); err != nil {
		return pr, err
	}

	// E22 attach/replay phases over the compacted set: v2 sequential, v2
	// on the worker pool, then (after migrating the set to JSON) JSON
	// sequential — the v2-vs-JSON decode ratio and the parallel headroom.
	parWorkers := attachWorkers
	if parWorkers <= 0 {
		parWorkers = runtime.GOMAXPROCS(0)
		if parWorkers < 2 {
			parWorkers = 2 // exercise the pool even on one CPU
		}
	}
	// Each timed config takes the best of three attaches, and the two v2
	// configs interleave their tries: a cold attach is one long measurement
	// with no averaging, successive attaches in one process get gradually
	// slower as the heap fragments, and noisy neighbors swing single runs —
	// back-to-back triples would bias whichever config ran first.
	attachBest := func(workers int, format directory.JournalFormat, best *attachPhase) error {
		runtime.GC()
		a, err := attachOnce(base, segments, n, workers, mode, format)
		if err != nil {
			return fmt.Errorf("attach phase %s/w%d: %w", format, workers, err)
		}
		if best.WallNs == 0 || a.WallNs < best.WallNs {
			*best = a
		}
		return nil
	}
	var seqBest, parBest, jsonBest attachPhase
	for t := 0; t < 3; t++ {
		if err := attachBest(1, directory.FormatV2, &seqBest); err != nil {
			return pr, err
		}
		if err := attachBest(parWorkers, directory.FormatV2, &parBest); err != nil {
			return pr, err
		}
	}
	// Migrate the set v2 -> JSON (untimed), time JSON replay, migrate back.
	if _, err := attachOnce(base, segments, n, 1, mode, directory.FormatJSON); err != nil {
		return pr, fmt.Errorf("migrate to json: %w", err)
	}
	for t := 0; t < 3; t++ {
		if err := attachBest(1, directory.FormatJSON, &jsonBest); err != nil {
			return pr, err
		}
	}
	if _, err := attachOnce(base, segments, n, 1, mode, directory.FormatV2); err != nil {
		return pr, fmt.Errorf("migrate back to v2: %w", err)
	}
	pr.AttachReplay = append(pr.AttachReplay, seqBest, parBest, jsonBest)
	return pr, nil
}

// attachOnce cold-attaches the journal set and reports the replay phase
// stats the directory recorded (decode + link pass, excluding index build).
func attachOnce(base string, segments, wantLen, workers int, mode directory.SyncMode, format directory.JournalFormat) (attachPhase, error) {
	d := directory.NewSegmented(mcschema.New(), segments)
	if _, err := d.AttachJournalSet(directory.JournalSetConfig{
		Base: base, Mode: mode, Format: format, Workers: workers}); err != nil {
		return attachPhase{}, err
	}
	if d.Len() != wantLen {
		d.CloseJournal()
		return attachPhase{}, fmt.Errorf("attach restored %d entries, want %d", d.Len(), wantLen)
	}
	st := d.JournalStats()
	a := attachPhase{
		Format:        st.Format,
		Workers:       st.ReplayWorkers,
		Records:       st.ReplayedRecords,
		Bytes:         st.ReplayedBytes,
		WallNs:        st.ReplayNs,
		RecordsPerSec: st.ReplayRecordsPerSec(),
		MBPerSec:      st.ReplayMBPerSec(),
	}
	return a, d.CloseJournal()
}

// quantilesUs reduces a nanosecond sample to microsecond p50/p99.
func quantilesUs(ns []int64) latency {
	if len(ns) == 0 {
		return latency{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	q := func(p float64) int64 {
		i := int(p * float64(len(ns)-1))
		return ns[i] / 1e3
	}
	return latency{P50: q(0.50), P99: q(0.99)}
}

func revision(explicit string) string {
	if explicit != "" {
		return explicit
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}
