package metacomm_test

import (
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
)

// ---------------------------------------------------------------------------
// Partitionable TCP proxy: every replication link in the chaos mesh runs
// through one of these, so the test can sever any directed edge without
// touching the nodes.

type chaosProxy struct {
	addr    string
	target  string
	ln      net.Listener
	blocked atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
}

func newChaosProxy(t *testing.T, target string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{addr: ln.Addr().String(), target: target, ln: ln,
		conns: map[net.Conn]struct{}{}}
	go p.acceptLoop()
	t.Cleanup(p.close)
	return p
}

func (p *chaosProxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.blocked.Load() {
			c.Close()
			continue
		}
		up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			c.Close()
			continue
		}
		p.track(c)
		p.track(up)
		go p.pipe(c, up)
		go p.pipe(up, c)
	}
}

func (p *chaosProxy) track(c net.Conn) {
	p.mu.Lock()
	if p.done || p.blocked.Load() {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *chaosProxy) pipe(dst, src net.Conn) {
	io.Copy(dst, src) //nolint:errcheck — a severed link is the point
	dst.Close()
	src.Close()
	p.mu.Lock()
	delete(p.conns, dst)
	delete(p.conns, src)
	p.mu.Unlock()
}

// setBlocked flips the partition: blocking kills live connections and
// refuses new ones; unblocking lets the nodes' own reconnect logic heal.
func (p *chaosProxy) setBlocked(b bool) {
	p.blocked.Store(b)
	if !b {
		return
	}
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.conns = map[net.Conn]struct{}{}
	p.mu.Unlock()
}

func (p *chaosProxy) close() {
	p.mu.Lock()
	p.done = true
	p.mu.Unlock()
	p.ln.Close()
	p.setBlocked(true)
}

// ---------------------------------------------------------------------------
// chaosNode wraps one metacommd OS process so the test can SIGKILL and
// restart it with identical flags (same ports, same data directory).

type chaosNode struct {
	id       int
	ltapAddr string
	replAddr string
	dataDir  string
	peers    []string // proxy addresses, fixed for the node's lifetime
	bin      string

	mu  sync.Mutex
	cmd *exec.Cmd
}

func (n *chaosNode) start(t *testing.T) {
	t.Helper()
	cmd := exec.Command(n.bin,
		"-ltap", n.ltapAddr,
		"-directory", "127.0.0.1:0",
		"-pbx", "127.0.0.1:0",
		"-mp", "127.0.0.1:0",
		"-wba", "",
		"-data", n.dataDir,
		"-replication", n.replAddr,
		"-node-id", strconv.Itoa(n.id),
		"-peers", strings.Join(n.peers, ","),
		"-quiet",
	)
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("node %d: %v", n.id, err)
	}
	n.mu.Lock()
	n.cmd = cmd
	n.mu.Unlock()

	// Ready when the LTAP endpoint answers a base search for the suffix.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		c, err := ldapclient.Dial(n.ltapAddr)
		if err == nil {
			_, err = c.Search(&ldap.SearchRequest{BaseDN: "o=Lucent", Scope: ldap.ScopeBaseObject})
			c.Close()
			if err == nil {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("node %d never became ready on %s", n.id, n.ltapAddr)
}

// kill SIGKILLs the process — no shutdown hooks, no journal flush beyond
// what group commit already made durable before each ack.
func (n *chaosNode) kill(t *testing.T) {
	t.Helper()
	n.mu.Lock()
	cmd := n.cmd
	n.cmd = nil
	n.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	_ = cmd.Process.Kill()
	_, _ = cmd.Process.Wait()
}

// dump reads the node's whole subtree and returns a canonical fingerprint
// plus the roomNumber per DN — the client-visible convergence check (origin
// stamps are server-internal; byte-identical attribute trees are what the
// paper's administrator actually observes).
func (n *chaosNode) dump(t *testing.T) (string, map[string]string, error) {
	c, err := ldapclient.Dial(n.ltapAddr)
	if err != nil {
		return "", nil, err
	}
	defer c.Close()
	entries, err := c.Search(&ldap.SearchRequest{BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree})
	if err != nil {
		return "", nil, err
	}
	rooms := make(map[string]string, len(entries))
	lines := make([]string, 0, len(entries))
	for _, e := range entries {
		attrs := make([]string, 0, len(e.Attributes))
		for _, a := range e.Attributes {
			vals := append([]string(nil), a.Values...)
			sort.Strings(vals)
			attrs = append(attrs, strings.ToLower(a.Type)+"="+strings.Join(vals, "|"))
			if strings.EqualFold(a.Type, "roomNumber") && len(vals) > 0 {
				rooms[strings.ToLower(e.DN)] = vals[0]
			}
		}
		sort.Strings(attrs)
		lines = append(lines, strings.ToLower(e.DN)+": "+strings.Join(attrs, ", "))
	}
	sort.Strings(lines)
	sum := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return fmt.Sprintf("%x", sum[:8]), rooms, nil
}

// ---------------------------------------------------------------------------

// TestNodeChaosSoak is the tentpole's proof: three full metacommd processes
// in a multi-master mesh survive a seeded schedule of kill -9s, restarts,
// and network partitions under sustained 95/5 load — and when the chaos
// stops and the mesh heals, every node serves a byte-identical tree and not
// one acknowledged write has been lost.
func TestNodeChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	bin := filepath.Join(buildTools(t), "metacommd")
	if _, err := os.Stat(bin); err != nil {
		t.Skipf("metacommd binary missing: %v", err)
	}

	const N = 3
	base := t.TempDir()

	// Fixed node addresses first, then one proxy per directed replication
	// edge, then each node's peer list pointing AT THE PROXIES.
	nodes := make([]*chaosNode, N)
	for i := range nodes {
		nodes[i] = &chaosNode{
			id:       i + 1,
			ltapAddr: freePort(t),
			replAddr: freePort(t),
			dataDir:  filepath.Join(base, fmt.Sprintf("node%d", i+1)),
			bin:      bin,
		}
	}
	edges := make(map[[2]int]*chaosProxy) // [from][to]
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			if i == j {
				continue
			}
			p := newChaosProxy(t, nodes[j].replAddr)
			edges[[2]int{i, j}] = p
			nodes[i].peers = append(nodes[i].peers, p.addr)
		}
	}
	partition := func(k int, blocked bool) {
		for edge, p := range edges {
			if edge[0] == k || edge[1] == k {
				p.setBlocked(blocked)
			}
		}
	}

	for _, n := range nodes {
		n.start(t)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.kill(t)
		}
	})

	// Seed the shared population through node 1 and wait until replication
	// has planted it everywhere (writers need their DNs present on their
	// own node before the first modify).
	const perWriter = 8
	seedConn, err := ldapclient.Dial(nodes[0].ltapAddr)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for w := 0; w < N; w++ {
		for k := 0; k < perWriter; k++ {
			cn := fmt.Sprintf("Chaos W%d-%02d", w, k)
			err := seedConn.Add("cn="+cn+",o=Lucent", []ldap.Attribute{
				{Type: "objectClass", Values: []string{"mcPerson"}},
				{Type: "cn", Values: []string{cn}},
				{Type: "sn", Values: []string{"Chaos"}},
			})
			if err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	seedConn.Close()
	for _, n := range nodes {
		nd := n
		deadline := time.Now().Add(15 * time.Second)
		for {
			c, err := ldapclient.Dial(nd.ltapAddr)
			if err == nil {
				entries, serr := c.Search(&ldap.SearchRequest{
					BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree,
					Filter: ldap.Eq("sn", "Chaos")})
				c.Close()
				if serr == nil && len(entries) == total {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed population never reached node %d", nd.id)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Writers: one per node, pinned to that node for life — so each DN's
	// writes all take stamps from one monotonically-advancing clock, making
	// "the last acked write" well-defined even under LWW. 95/5 search/modify
	// with a seeded RNG; redial-and-retry while the node is down.
	type writerState struct {
		acked map[string]int // DN -> counter of the last ACKED modify
		ops   uint64
	}
	var (
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		writers = make([]*writerState, N)
	)
	for w := 0; w < N; w++ {
		ws := &writerState{acked: map[string]int{}}
		writers[w] = ws
		wg.Add(1)
		go func(w int, ws *writerState) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var conn *ldapclient.Conn
			defer func() {
				if conn != nil {
					conn.Close()
				}
			}()
			ctr := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if conn == nil {
					c, err := ldapclient.Dial(nodes[w].ltapAddr)
					if err != nil {
						time.Sleep(100 * time.Millisecond)
						continue
					}
					conn = c
				}
				dn := fmt.Sprintf("cn=Chaos W%d-%02d,o=Lucent", w, rng.Intn(perWriter))
				var err error
				if rng.Intn(100) < 5 {
					ctr++
					err = conn.Modify(dn, []ldap.Change{{Op: ldap.ModReplace,
						Attribute: ldap.Attribute{Type: "roomNumber",
							Values: []string{fmt.Sprintf("v-%d-%d", w, ctr)}}}})
					if err == nil {
						ws.acked[strings.ToLower(dn)] = ctr
					}
				} else {
					_, err = conn.Search(&ldap.SearchRequest{BaseDN: dn, Scope: ldap.ScopeBaseObject})
				}
				if err != nil {
					// Node down or link severed mid-flight: drop the
					// connection and retry against the same node. An errored
					// modify may still have applied — that is fine, only
					// ACKED writes join the loss check.
					conn.Close()
					conn = nil
					time.Sleep(50 * time.Millisecond)
					continue
				}
				ws.ops++
			}
		}(w, ws)
	}

	// The seeded chaos schedule: each round crashes one node (kill -9 then
	// cold restart with the same journal) or partitions one node (every
	// replication edge touching it severed, LTAP still up — writes keep
	// landing on the isolated node and must flow out after the heal).
	chaos := rand.New(rand.NewSource(7))
	for round := 0; round < 3; round++ {
		victim := chaos.Intn(N)
		if chaos.Intn(2) == 0 {
			t.Logf("round %d: kill -9 node %d", round, victim+1)
			nodes[victim].kill(t)
			time.Sleep(1200 * time.Millisecond)
			nodes[victim].start(t)
		} else {
			t.Logf("round %d: partition node %d", round, victim+1)
			partition(victim, true)
			time.Sleep(1200 * time.Millisecond)
			partition(victim, false)
		}
		time.Sleep(300 * time.Millisecond)
	}

	close(stop)
	wg.Wait()
	var totalOps uint64
	for _, ws := range writers {
		totalOps += ws.ops
	}
	if totalOps == 0 {
		t.Fatal("chaos load did nothing")
	}

	// Heal everything and wait for byte-identical trees on all nodes.
	for _, p := range edges {
		p.setBlocked(false)
	}
	var fps [N]string
	var rooms [N]map[string]string
	deadline := time.Now().Add(30 * time.Second)
	for {
		same := true
		for i, n := range nodes {
			fp, rm, err := n.dump(t)
			if err != nil {
				same = false
				break
			}
			fps[i], rooms[i] = fp, rm
			if fps[i] != fps[0] {
				same = false
			}
		}
		if same {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mesh did not converge after heal: fingerprints %v", fps)
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Logf("converged: %d ops, fingerprint %s", totalOps, fps[0])

	// Zero acked-write loss: for every DN, the converged value's counter is
	// at least the last ACKED counter — an acked write may be superseded by
	// the same writer's later write, but never by an older value and never
	// dropped.
	for w, ws := range writers {
		for dn, ackedCtr := range ws.acked {
			val, ok := rooms[0][dn]
			if !ok {
				t.Errorf("writer %d: %s lost its acked roomNumber entirely (last acked v-%d-%d)", w, dn, w, ackedCtr)
				continue
			}
			parts := strings.Split(val, "-")
			if len(parts) != 3 {
				t.Errorf("writer %d: %s has foreign value %q", w, dn, val)
				continue
			}
			gotCtr, err := strconv.Atoi(parts[2])
			if err != nil || gotCtr < ackedCtr {
				t.Errorf("writer %d: %s regressed to %q, acked counter was %d", w, dn, val, ackedCtr)
			}
		}
	}
}
