package metacomm_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	metacomm "metacomm"
	"metacomm/internal/ldap"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildTools compiles the command-line tools once per test binary.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "metacomm-bin")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"ldapcli", "lexc", "pbxadmin", "metacommd"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			cmd.Env = os.Environ()
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Skipf("cannot build tools: %v", buildErr)
	}
	return binDir
}

func runTool(t *testing.T, name string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), name), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIEndToEnd(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	addr := s.LTAPAddrActual

	// add through ldapcli
	out, err := runTool(t, "ldapcli", "-addr", addr, "add", "cn=CLI Person,o=Lucent",
		"objectClass=mcPerson", "objectClass=definityUser",
		"cn=CLI Person", "sn=Person", "definityExtension=2-6100")
	if err != nil {
		t.Fatalf("add: %v\n%s", err, out)
	}
	// The add provisioned the PBX.
	if _, err := s.PBX.Store.Get("2-6100"); err != nil {
		t.Fatalf("station missing after CLI add: %v", err)
	}

	// search
	out, err = runTool(t, "ldapcli", "-addr", addr, "search", "o=Lucent", "(cn=CLI Person)")
	if err != nil {
		t.Fatalf("search: %v\n%s", err, out)
	}
	if !strings.Contains(out, "definityExtension: 2-6100") {
		t.Errorf("search output:\n%s", out)
	}

	// modify
	out, err = runTool(t, "ldapcli", "-addr", addr, "modify", "cn=CLI Person,o=Lucent",
		"replace:roomNumber=7C-700")
	if err != nil {
		t.Fatalf("modify: %v\n%s", err, out)
	}
	station, _ := s.PBX.Store.Get("2-6100")
	if station.First("room") != "7C-700" {
		t.Errorf("station room = %q", station.First("room"))
	}

	// compare
	out, err = runTool(t, "ldapcli", "-addr", addr, "compare", "cn=CLI Person,o=Lucent", "sn", "Person")
	if err != nil || !strings.Contains(out, "true") {
		t.Errorf("compare: %v\n%s", err, out)
	}

	// rename
	if out, err := runTool(t, "ldapcli", "-addr", addr, "rename",
		"cn=CLI Person,o=Lucent", "cn=CLI Renamed"); err != nil {
		t.Fatalf("rename: %v\n%s", err, out)
	}

	// quiesce on/off via extended ops
	if out, err := runTool(t, "ldapcli", "-addr", addr, "quiesce", "on"); err != nil {
		t.Fatalf("quiesce on: %v\n%s", err, out)
	}
	if !s.Gateway.Quiesced() {
		t.Error("quiesce on did not take effect")
	}
	if out, err := runTool(t, "ldapcli", "-addr", addr, "quiesce", "off"); err != nil {
		t.Fatalf("quiesce off: %v\n%s", err, out)
	}

	// delete
	if out, err := runTool(t, "ldapcli", "-addr", addr, "delete", "cn=CLI Renamed,o=Lucent"); err != nil {
		t.Fatalf("delete: %v\n%s", err, out)
	}
	if s.PBX.Store.Len() != 0 {
		t.Error("station survived CLI delete")
	}

	// A failed operation exits non-zero.
	if _, err := runTool(t, "ldapcli", "-addr", addr, "delete", "cn=Ghost,o=Lucent"); err == nil {
		t.Error("deleting a ghost succeeded")
	}
}

func TestCLIPBXAdminDrivesDDUs(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	addr := s.PBXAddrActual

	out, err := runTool(t, "pbxadmin", "-addr", addr, "add", "2-6200", "Name", "Console Added")
	if err != nil {
		t.Fatalf("pbxadmin add: %v\n%s", err, out)
	}
	out, err = runTool(t, "pbxadmin", "-addr", addr, "show", "2-6200")
	if err != nil || !strings.Contains(out, "Console Added") {
		t.Fatalf("pbxadmin show: %v\n%s", err, out)
	}
	// The DDU propagated to the directory.
	c := client(t, s)
	waitFor(t, "DDU from pbxadmin", func() bool {
		entries, err := c.Search(&ldap.SearchRequest{
			BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree,
			Filter: ldap.Eq("definityExtension", "2-6200"),
		})
		return err == nil && len(entries) == 1
	})

	out, err = runTool(t, "pbxadmin", "-addr", addr, "list")
	if err != nil || !strings.Contains(out, "2-6200") {
		t.Fatalf("pbxadmin list: %v\n%s", err, out)
	}
	if out, err := runTool(t, "pbxadmin", "-addr", addr, "remove", "2-6200"); err != nil {
		t.Fatalf("pbxadmin remove: %v\n%s", err, out)
	}
}

func TestCLIExportImportLDIF(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	addr := s.LTAPAddrActual
	// Seed two people.
	for i, name := range []string{"Export One", "Export Two"} {
		out, err := runTool(t, "ldapcli", "-addr", addr, "add",
			"cn="+name+",o=Lucent",
			"objectClass=mcPerson", "objectClass=definityUser",
			"cn="+name, "sn=Exported",
			"definityExtension=2-63"+string(rune('0'+i))+"0")
		if err != nil {
			t.Fatalf("seed: %v\n%s", err, out)
		}
	}
	// Capture stdout alone: the entry count goes to stderr and must not
	// pollute the LDIF.
	cmd := exec.Command(filepath.Join(buildTools(t), "ldapcli"),
		"-addr", addr, "export", "o=Lucent", "(objectClass=mcPerson)")
	stdout, err := cmd.Output()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	out := string(stdout)
	if !strings.Contains(out, "dn: cn=Export One,o=Lucent") ||
		!strings.Contains(out, "definityExtension: 2-6300") {
		t.Fatalf("export output:\n%s", out)
	}

	// Import the dump into a SECOND system: backup/restore across sites.
	s2 := startSystem(t, metacomm.Config{})
	ldifFile := filepath.Join(t.TempDir(), "dump.ldif")
	if err := os.WriteFile(ldifFile, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	out2, err := runTool(t, "ldapcli", "-addr", s2.LTAPAddrActual, "import", ldifFile)
	if err != nil {
		t.Fatalf("import: %v\n%s", err, out2)
	}
	if !strings.Contains(out2, "added 2 entries") {
		t.Errorf("import output: %s", out2)
	}
	// The import flowed through LTAP: the second system's PBX is
	// provisioned too.
	if got := s2.PBX.Store.Len(); got != 2 {
		t.Errorf("second system stations = %d, want 2", got)
	}
}

func TestCLILexc(t *testing.T) {
	out, err := runTool(t, "lexc", "-std")
	if err != nil {
		t.Fatalf("lexc -std: %v\n%s", err, out)
	}
	for _, want := range []string{"PBXToLDAP", "LDAPToMP", "LDAPClosure",
		"originator: lastUpdater", "owns:", "cyclic closure dependency"} {
		if !strings.Contains(out, want) {
			t.Errorf("lexc output missing %q:\n%s", want, out)
		}
	}
	out, err = runTool(t, "lexc", "-std", "-d")
	if err != nil || !strings.Contains(out, "pushconst") {
		t.Errorf("lexc disassembly: %v", err)
	}
	// Bad source via a file.
	bad := filepath.Join(t.TempDir(), "bad.lex")
	if err := os.WriteFile(bad, []byte("mapping oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runTool(t, "lexc", bad); err == nil {
		t.Error("lexc accepted bad source")
	}
}
