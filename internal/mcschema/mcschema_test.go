package mcschema

import (
	"testing"

	"metacomm/internal/directory"
	"metacomm/internal/ldap"
)

func TestNewBuildsWithoutPanic(t *testing.T) {
	s := New()
	if !s.Strict {
		t.Error("integrated schema should be strict")
	}
	for _, c := range []string{ClassPerson, ClassDefinityUser, ClassMessagingUser, ClassUpdateError} {
		if _, ok := s.Class(c); !ok {
			t.Errorf("class %q missing", c)
		}
	}
}

func validPerson() *directory.Attrs {
	return directory.AttrsFrom(map[string][]string{
		"objectClass":         {ClassPerson, ClassDefinityUser, ClassMessagingUser},
		AttrCN:                {"John Doe"},
		AttrSN:                {"Doe"},
		AttrTelephone:         {"+1 908 582 9000"},
		AttrDefinityExtension: {"5-9000"},
	})
}

func TestIntegratedPersonValidates(t *testing.T) {
	if err := New().CheckEntry(validPerson()); err != nil {
		t.Fatal(err)
	}
}

func TestStrictRejectsForeignAttributes(t *testing.T) {
	e := validPerson()
	e.Put("favoriteColor", "blue")
	if directory.CodeOf(New().CheckEntry(e)) != ldap.ResultObjectClassViolation {
		t.Error("foreign attribute accepted in strict schema")
	}
}

func TestLastUpdaterIsOperational(t *testing.T) {
	e := validPerson()
	e.Put(AttrLastUpdater, "pbx")
	if err := New().CheckEntry(e); err != nil {
		t.Errorf("lastUpdater rejected: %v", err)
	}
}

func TestDeviceAttributesNeedAuxClass(t *testing.T) {
	e := directory.AttrsFrom(map[string][]string{
		"objectClass":         {ClassPerson},
		AttrCN:                {"Jane"},
		AttrSN:                {"Roe"},
		AttrDefinityExtension: {"5-1234"},
	})
	if directory.CodeOf(New().CheckEntry(e)) != ldap.ResultObjectClassViolation {
		t.Error("device attribute accepted without its auxiliary class")
	}
}

func TestUsesDevice(t *testing.T) {
	e := validPerson()
	if !UsesDevice(e, ClassDefinityUser, AttrDefinityExtension) {
		t.Error("person with extension should use PBX")
	}
	// The paper's anomaly: class present, key attribute absent -> MAY use,
	// does not actually use.
	e.Delete(AttrDefinityExtension)
	if UsesDevice(e, ClassDefinityUser, AttrDefinityExtension) {
		t.Error("person without extension should not count as PBX user")
	}
	if UsesDevice(e, ClassMessagingUser, AttrMailboxNumber) {
		t.Error("no mailbox number — not a messaging user")
	}
}

func TestErrorLogEntryValidates(t *testing.T) {
	e := directory.AttrsFrom(map[string][]string{
		"objectClass":    {ClassUpdateError},
		AttrErrorID:      {"err-42"},
		AttrErrorOp:      {"modify"},
		AttrErrorKey:     {"5-9000"},
		AttrErrorSource:  {"ldap"},
		AttrErrorTarget:  {"pbx"},
		AttrErrorMessage: {"extension in use"},
	})
	if err := New().CheckEntry(e); err != nil {
		t.Fatal(err)
	}
}
