// Package mcschema defines the integrated MetaComm directory schema
// (paper §5.2): a structural person class extended with one *auxiliary*
// object class per integrated device, each with uniquely named attributes.
//
// The paper's first design — a child entry per person/device pair — was
// abandoned because LDAP cannot atomically update a parent and a child; the
// auxiliary-class design keeps everything that must be read/written as a
// unit inside a single entry. Auxiliary classes cannot carry mandatory
// attributes, so the presence of (say) definityUser in objectClass only
// means the person MAY use a PBX; whether they actually do is determined by
// whether definityExtension is set.
package mcschema

import (
	"strings"

	"metacomm/internal/directory"
)

// Attribute names shared across the system. Device-specific attributes get
// unique per-device names (paper §5.2 footnote: unique names are required to
// identify which fields belong to which auxiliary class).
const (
	// AttrLastUpdater is the operational attribute recording the source of
	// the most recent update to an entry (paper §5.4). lexpress mappings
	// from a device set it; mappings toward a device consult it through the
	// Originator characteristic to detect reapplied updates.
	AttrLastUpdater = "lastUpdater"

	// Common person attributes.
	AttrCN        = "cn"
	AttrSN        = "sn"
	AttrTelephone = "telephoneNumber"
	AttrMail      = "mail"
	AttrRoom      = "roomNumber"
	AttrUID       = "uid"

	// Definity PBX auxiliary attributes.
	AttrDefinityExtension = "definityExtension"
	AttrDefinityName      = "definityName"
	AttrDefinityCOS       = "definityCOS"
	AttrDefinityCOR       = "definityCOR"
	AttrDefinityPort      = "definityPort"
	AttrDefinitySwitch    = "definitySwitch"

	// Messaging platform auxiliary attributes.
	AttrMailboxID     = "mailboxId"
	AttrMailboxNumber = "mailboxNumber"
	AttrMessagingCOS  = "messagingCOS"
	AttrMessagingName = "messagingName"
	AttrMessagingHost = "messagingHost"

	// Error-log attributes (paper §4.4: failed updates are logged into the
	// directory and browsed by the administrator).
	AttrErrorID      = "mcErrorId"
	AttrErrorSource  = "mcErrorSource"
	AttrErrorTarget  = "mcErrorTarget"
	AttrErrorOp      = "mcErrorOp"
	AttrErrorKey     = "mcErrorKey"
	AttrErrorMessage = "mcErrorMessage"
	AttrErrorSeq     = "mcErrorSeq"
)

// Object class names.
const (
	ClassTop           = "top"
	ClassOrganization  = "organization"
	ClassOrgUnit       = "organizationalUnit"
	ClassPerson        = "mcPerson"
	ClassDefinityUser  = "definityUser"
	ClassMessagingUser = "messagingUser"
	ClassUpdateError   = "mcUpdateError"
)

// New builds the integrated schema with strict attribute checking enabled.
func New() *directory.Schema {
	s := directory.NewSchema()
	attrs := []directory.AttributeType{
		{Name: "objectClass"},
		{Name: "o"},
		{Name: "ou"},
		{Name: AttrCN},
		{Name: AttrSN},
		{Name: AttrTelephone},
		{Name: AttrMail},
		{Name: AttrRoom, SingleValue: true},
		{Name: AttrUID, SingleValue: true},
		{Name: AttrLastUpdater, SingleValue: true, Operational: true},

		{Name: AttrDefinityExtension, SingleValue: true},
		{Name: AttrDefinityName, SingleValue: true},
		{Name: AttrDefinityCOS, SingleValue: true},
		{Name: AttrDefinityCOR, SingleValue: true},
		{Name: AttrDefinityPort, SingleValue: true},
		{Name: AttrDefinitySwitch, SingleValue: true},

		{Name: AttrMailboxID, SingleValue: true},
		{Name: AttrMailboxNumber, SingleValue: true},
		{Name: AttrMessagingCOS, SingleValue: true},
		{Name: AttrMessagingName, SingleValue: true},
		{Name: AttrMessagingHost, SingleValue: true},

		{Name: AttrErrorID, SingleValue: true},
		{Name: AttrErrorSource, SingleValue: true},
		{Name: AttrErrorTarget, SingleValue: true},
		{Name: AttrErrorOp, SingleValue: true},
		{Name: AttrErrorKey, SingleValue: true},
		{Name: AttrErrorMessage, SingleValue: true},
		{Name: AttrErrorSeq, SingleValue: true},
	}
	for _, a := range attrs {
		if err := s.AddAttribute(a); err != nil {
			panic(err) // schema literals are program constants
		}
	}
	classes := []directory.ObjectClass{
		{Name: ClassTop, Kind: directory.Abstract},
		{Name: ClassOrganization, Kind: directory.Structural, Sup: ClassTop, Must: []string{"o"}},
		{Name: ClassOrgUnit, Kind: directory.Structural, Sup: ClassTop, Must: []string{"ou"}},
		{
			Name: ClassPerson, Kind: directory.Structural, Sup: ClassTop,
			Description: "extension of the standard X.500 person class (paper §4)",
			Must:        []string{AttrCN, AttrSN},
			May:         []string{AttrTelephone, AttrMail, AttrRoom, AttrUID},
		},
		{
			Name: ClassDefinityUser, Kind: directory.Auxiliary,
			Description: "per-device auxiliary class for the Definity PBX",
			May: []string{AttrDefinityExtension, AttrDefinityName, AttrDefinityCOS,
				AttrDefinityCOR, AttrDefinityPort, AttrDefinitySwitch},
		},
		{
			Name: ClassMessagingUser, Kind: directory.Auxiliary,
			Description: "per-device auxiliary class for the voice messaging platform",
			May: []string{AttrMailboxID, AttrMailboxNumber, AttrMessagingCOS,
				AttrMessagingName, AttrMessagingHost},
		},
		{
			Name: ClassUpdateError, Kind: directory.Structural, Sup: ClassTop,
			Description: "failed-update log entry browsed by the administrator",
			Must:        []string{AttrErrorID},
			May: []string{AttrErrorSource, AttrErrorTarget, AttrErrorOp, AttrErrorKey,
				AttrErrorMessage, AttrErrorSeq},
		},
	}
	for _, c := range classes {
		if err := s.AddClass(c); err != nil {
			panic(err)
		}
	}
	s.Strict = true
	return s
}

// auxAttrClass maps each device-specific attribute (lower-cased) to the
// auxiliary class that allows it.
var auxAttrClass = map[string]string{}

func init() {
	for _, a := range []string{AttrDefinityExtension, AttrDefinityName, AttrDefinityCOS,
		AttrDefinityCOR, AttrDefinityPort, AttrDefinitySwitch} {
		auxAttrClass[strings.ToLower(a)] = ClassDefinityUser
	}
	for _, a := range []string{AttrMailboxID, AttrMailboxNumber, AttrMessagingCOS,
		AttrMessagingName, AttrMessagingHost} {
		auxAttrClass[strings.ToLower(a)] = ClassMessagingUser
	}
}

// AuxClassFor returns the auxiliary object class required for a
// device-specific attribute, or "" when the attribute needs none. The
// Update Manager uses it to extend an entry's classes when the transitive
// closure or a device write-back introduces device data.
func AuxClassFor(attr string) string {
	return auxAttrClass[strings.ToLower(attr)]
}

// UsesDevice reports whether an entry actually uses a device: per §5.2 the
// auxiliary class alone is not enough, the device's key attribute must be
// set.
func UsesDevice(a *directory.Attrs, class, keyAttr string) bool {
	return a.HasValue("objectClass", class) && a.Has(keyAttr)
}
