package wba_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	metacomm "metacomm"
	"metacomm/internal/wba"
)

// startWBA boots a full MetaComm system with the WBA in front of it.
func startWBA(t *testing.T) (*metacomm.System, *httptest.Server) {
	t.Helper()
	sys, err := metacomm.Start(metacomm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	conn, err := sys.Client()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	srv := httptest.NewServer(wba.New(conn, "o=Lucent"))
	t.Cleanup(srv.Close)
	return sys, srv
}

func postForm(t *testing.T, url string, form url.Values) *http.Response {
	t.Helper()
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.PostForm(url, form)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestWBACreatePersonProvisionsDevices(t *testing.T) {
	sys, srv := startWBA(t)
	resp := postForm(t, srv.URL+"/save", url.Values{
		"cn":                {"Web User"},
		"sn":                {"User"},
		"definityExtension": {"2-5500"},
		"roomNumber":        {"W-100"},
	})
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("save status = %d", resp.StatusCode)
	}
	// The single web form configured the PBX...
	station, err := sys.PBX.Store.Get("2-5500")
	if err != nil {
		t.Fatalf("station: %v", err)
	}
	if station.First("name") != "Web User" {
		t.Errorf("station = %v", station)
	}
	// ...and, via the closure, the messaging platform.
	if _, err := sys.MP.Store.Get("5500"); err != nil {
		t.Errorf("mailbox: %v", err)
	}
	// The person shows on the index page.
	body := get(t, srv.URL+"/")
	if !strings.Contains(body, "Web User") || !strings.Contains(body, "2-5500") {
		t.Errorf("index missing person:\n%s", body)
	}
}

func TestWBAUpdateAndClearFields(t *testing.T) {
	sys, srv := startWBA(t)
	postForm(t, srv.URL+"/save", url.Values{
		"cn": {"Edit Me"}, "sn": {"Me"}, "definityExtension": {"2-5600"}, "roomNumber": {"A-1"},
	})
	dn := "cn=Edit Me,o=Lucent"
	resp := postForm(t, srv.URL+"/save", url.Values{
		"dn": {dn}, "cn": {"Edit Me"}, "sn": {"Me"},
		"definityExtension": {"2-5600"}, "roomNumber": {"B-2"},
	})
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("update status = %d", resp.StatusCode)
	}
	station, err := sys.PBX.Store.Get("2-5600")
	if err != nil || station.First("room") != "B-2" {
		t.Errorf("station after move = %v, %v", station, err)
	}
	// Clearing the extension field releases the station.
	postForm(t, srv.URL+"/save", url.Values{
		"dn": {dn}, "cn": {"Edit Me"}, "sn": {"Me"}, "roomNumber": {"B-2"},
	})
	if _, err := sys.PBX.Store.Get("2-5600"); err == nil {
		t.Error("station survived extension clear")
	}
}

func TestWBAPersonPageAndDelete(t *testing.T) {
	sys, srv := startWBA(t)
	postForm(t, srv.URL+"/save", url.Values{
		"cn": {"Page Person"}, "sn": {"Person"}, "definityExtension": {"2-5700"},
	})
	body := get(t, srv.URL+"/person?dn="+url.QueryEscape("cn=Page Person,o=Lucent"))
	if !strings.Contains(body, "Page Person") || !strings.Contains(body, "definityExtension: 2-5700") {
		t.Errorf("person page:\n%s", body)
	}
	resp := postForm(t, srv.URL+"/delete", url.Values{"dn": {"cn=Page Person,o=Lucent"}})
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if sys.PBX.Store.Len() != 0 {
		t.Error("station survived web delete")
	}
}

func TestWBAErrorsPage(t *testing.T) {
	sys, srv := startWBA(t)
	sys.MP.Store.FailNext("disk full")
	postForm(t, srv.URL+"/save", url.Values{
		"cn": {"Err Person"}, "sn": {"Person"},
		"definityExtension": {"2-5800"}, "mailboxNumber": {"5800"},
	})
	body := get(t, srv.URL+"/errors")
	if !strings.Contains(body, "disk full") || !strings.Contains(body, "msgplat") {
		t.Errorf("errors page:\n%s", body)
	}
}

func TestWBAValidation(t *testing.T) {
	_, srv := startWBA(t)
	resp := postForm(t, srv.URL+"/save", url.Values{"sn": {"NoName"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("nameless save = %d", resp.StatusCode)
	}
	r2, err := http.Get(srv.URL + "/save")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /save = %d", r2.StatusCode)
	}
	r3, err := http.Get(srv.URL + "/person")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /person without dn = %d", r3.StatusCode)
	}
}

func TestStatusPageShowsGatewayAndCache(t *testing.T) {
	sys, err := metacomm.Start(metacomm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	conn, err := sys.Client()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	s := wba.New(conn, "o=Lucent")
	s.Stats = sys.UM.Stats
	s.GatewayStats = sys.Gateway.Stats
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	// A write through LTAP traps an update; its before-image comes from the
	// cache (warm-started from the directory snapshot).
	if err := sys.Seed("cn=Status Person,o=Lucent", map[string][]string{
		"objectClass": {"mcPerson"}, "cn": {"Status Person"}, "sn": {"Person"},
	}); err != nil {
		t.Fatal(err)
	}
	body := get(t, srv.URL+"/status")
	for _, want := range []string{
		"LTAP gateway", "Updates trapped", "Before-image cache", "Hit rate",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("status page missing %q", want)
		}
	}
	if strings.Contains(body, "cache disabled") {
		t.Error("cache reported disabled on a default system")
	}
}

func TestStatusPageShowsOutboxBreakers(t *testing.T) {
	sys, err := metacomm.Start(metacomm.Config{
		Outbox: metacomm.OutboxConfig{Enable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	conn, err := sys.Client()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	s := wba.New(conn, "o=Lucent")
	s.Stats = sys.UM.Stats
	s.OutboxStats = sys.UM.OutboxStats
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	body := get(t, srv.URL+"/status")
	for _, want := range []string{
		"Device outbox", "Breaker", "Backlog", "closed", "pbx", "msgplat",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("status page missing %q", want)
		}
	}

	// Without the hook the section disappears rather than rendering empty.
	bare := wba.New(conn, "o=Lucent")
	bare.Stats = sys.UM.Stats
	srv2 := httptest.NewServer(bare)
	t.Cleanup(srv2.Close)
	if strings.Contains(get(t, srv2.URL+"/status"), "Device outbox") {
		t.Error("outbox section rendered without an OutboxStats hook")
	}
}
