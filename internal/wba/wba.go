// Package wba implements MetaComm's Web-Based Administration (paper Fig. 1
// and §4.5): a single point of administration for the telecom devices that
// speaks nothing but LDAP to the LTAP gateway — demonstrating that "any
// LDAP tool" can administer the integrated devices. Assigning a person an
// extension here configures the PBX; giving them a mailbox configures the
// messaging platform; the intuitive Web interface "compares favorably with
// proprietary interfaces" (§4.5).
package wba

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strings"
	"time"

	"metacomm/internal/directory"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/ldapserver"
	"metacomm/internal/ltap"
	"metacomm/internal/mcschema"
	"metacomm/internal/replica"
	"metacomm/internal/um"
)

// Server is the WBA HTTP handler. It holds one LDAP connection to LTAP;
// handlers serialize on it (the client is internally synchronized).
type Server struct {
	// LDAP is the connection to the LTAP gateway.
	LDAP *ldapclient.Conn
	// Suffix is the directory suffix ("o=Lucent").
	Suffix string
	// Stats, when set, feeds the Update Manager status page (the WBA may
	// run on a machine without the UM; then the page says so).
	Stats func() um.Stats
	// GatewayStats, when set, feeds the LTAP gateway section of the status
	// page: read-path latency and before-image cache effectiveness.
	GatewayStats func() ltap.GatewayStats
	// SyncStats, when set, feeds the synchronization section of the status
	// page: per-device snapshot+delta phase timings for the most recent
	// pass (um.LastSyncStats).
	SyncStats func() map[string]um.SyncStats
	// OutboxStats, when set, feeds the device-outbox section of the status
	// page: per-device circuit-breaker state, journal backlog, and
	// retry/drain counters (um.OutboxStats; empty when disabled).
	OutboxStats func() []um.OutboxStats
	// JournalStats, when set, feeds the directory-journal section of the
	// status page: group-commit batching, fsync amortization, and commit
	// latency (directory.JournalStats; zero when the directory runs
	// in-memory).
	JournalStats func() directory.JournalStats
	// ReplicationStats, when set, feeds the multi-master replication section
	// of the status page: publisher connection counters plus per-peer link
	// progress (replica.Replicator.Stats).
	ReplicationStats func() replica.Stats
	// LTAPWireStats / DirWireStats, when set, feed the wire-path section of
	// the status page: per-listener message/flush counters and — when the
	// epoll accept loop is serving — reactor counters (registered conns,
	// wakeups, frames per wakeup, worker-pool depth).
	LTAPWireStats func() ldapserver.WireStats
	DirWireStats  func() ldapserver.WireStats

	mux *http.ServeMux
}

// New builds a WBA server over an LDAP connection.
func New(conn *ldapclient.Conn, suffix string) *Server {
	s := &Server{LDAP: conn, Suffix: suffix, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/person", s.handlePerson)
	s.mux.HandleFunc("/save", s.handleSave)
	s.mux.HandleFunc("/delete", s.handleDelete)
	s.mux.HandleFunc("/errors", s.handleErrors)
	s.mux.HandleFunc("/status", s.handleStatus)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>MetaComm Administration</title></head><body>
<h1>MetaComm — Web-Based Administration</h1>
<p><a href="/">People</a> | <a href="/errors">Update errors</a> | <a href="/status">Update Manager</a></p>
{{block "body" .}}{{end}}
</body></html>`))

var indexTmpl = template.Must(template.Must(pageTmpl.Clone()).Parse(`{{define "body"}}
<h2>People</h2>
<table border="1" cellpadding="4">
<tr><th>Name</th><th>Telephone</th><th>Extension</th><th>Mailbox</th><th>Room</th><th></th></tr>
{{range .People}}
<tr>
  <td><a href="/person?dn={{.DN}}">{{.CN}}</a></td>
  <td>{{.Telephone}}</td><td>{{.Extension}}</td><td>{{.Mailbox}}</td><td>{{.Room}}</td>
  <td><form method="POST" action="/delete"><input type="hidden" name="dn" value="{{.DN}}">
      <input type="submit" value="delete"></form></td>
</tr>
{{end}}
</table>
<h2>Add person</h2>
{{template "form" .Blank}}
{{end}}
{{define "form"}}
<form method="POST" action="/save">
<input type="hidden" name="dn" value="{{.DN}}">
<table>
<tr><td>Common name</td><td><input name="cn" value="{{.CN}}"></td></tr>
<tr><td>Surname</td><td><input name="sn" value="{{.SN}}"></td></tr>
<tr><td>Telephone</td><td><input name="telephoneNumber" value="{{.Telephone}}"></td></tr>
<tr><td>Definity extension</td><td><input name="definityExtension" value="{{.Extension}}"></td></tr>
<tr><td>Mailbox number</td><td><input name="mailboxNumber" value="{{.Mailbox}}"></td></tr>
<tr><td>Room</td><td><input name="roomNumber" value="{{.Room}}"></td></tr>
</table>
<input type="submit" value="Save">
</form>
{{end}}`))

var personTmpl = template.Must(template.Must(indexTmpl.Clone()).Parse(`{{define "body"}}
<h2>{{.Person.CN}}</h2>
{{template "form" .Person}}
<h3>Raw entry</h3>
<pre>{{.Raw}}</pre>
{{end}}`))

var errorsTmpl = template.Must(template.Must(pageTmpl.Clone()).Parse(`{{define "body"}}
<h2>Update errors</h2>
<table border="1" cellpadding="4">
<tr><th>Id</th><th>Source</th><th>Target</th><th>Op</th><th>Key</th><th>Message</th></tr>
{{range .Errors}}
<tr><td>{{.ID}}</td><td>{{.Source}}</td><td>{{.Target}}</td><td>{{.Op}}</td><td>{{.Key}}</td><td>{{.Message}}</td></tr>
{{end}}
</table>
{{end}}`))

// personView is the template model for one person.
type personView struct {
	DN, CN, SN, Telephone, Extension, Mailbox, Room string
}

func viewOf(e *ldapclient.Entry) personView {
	return personView{
		DN:        e.DN,
		CN:        e.First(mcschema.AttrCN),
		SN:        e.First(mcschema.AttrSN),
		Telephone: e.First(mcschema.AttrTelephone),
		Extension: e.First(mcschema.AttrDefinityExtension),
		Mailbox:   e.First(mcschema.AttrMailboxNumber),
		Room:      e.First(mcschema.AttrRoom),
	}
}

func (s *Server) people() ([]personView, error) {
	entries, err := s.LDAP.Search(&ldap.SearchRequest{
		BaseDN: s.Suffix,
		Scope:  ldap.ScopeWholeSubtree,
		Filter: ldap.Eq("objectClass", mcschema.ClassPerson),
	})
	if err != nil {
		return nil, err
	}
	out := make([]personView, 0, len(entries))
	for _, e := range entries {
		out = append(out, viewOf(e))
	}
	return out, nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	people, err := s.people()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	err = indexTmpl.Execute(w, map[string]any{"People": people, "Blank": personView{}})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handlePerson(w http.ResponseWriter, r *http.Request) {
	dn := r.URL.Query().Get("dn")
	if dn == "" {
		http.Error(w, "missing dn", http.StatusBadRequest)
		return
	}
	e, err := s.LDAP.SearchOne(&ldap.SearchRequest{BaseDN: dn, Scope: ldap.ScopeBaseObject})
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	var raw strings.Builder
	fmt.Fprintf(&raw, "dn: %s\n", e.DN)
	for _, a := range e.Attributes {
		for _, v := range a.Values {
			fmt.Fprintf(&raw, "%s: %s\n", a.Type, v)
		}
	}
	err = personTmpl.Execute(w, map[string]any{"Person": viewOf(e), "Raw": raw.String()})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// editableAttrs are the fields the form manages, with their form names.
var editableAttrs = []string{
	mcschema.AttrSN, mcschema.AttrTelephone, mcschema.AttrDefinityExtension,
	mcschema.AttrMailboxNumber, mcschema.AttrRoom,
}

func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	dn := strings.TrimSpace(r.Form.Get("dn"))
	cn := strings.TrimSpace(r.Form.Get("cn"))
	if dn == "" {
		// Create.
		if cn == "" {
			http.Error(w, "common name required", http.StatusBadRequest)
			return
		}
		dn = fmt.Sprintf("cn=%s,%s", cn, s.Suffix)
		attrs := []ldap.Attribute{
			{Type: "objectClass", Values: objectClassesFor(r)},
			{Type: mcschema.AttrCN, Values: []string{cn}},
		}
		for _, a := range editableAttrs {
			if v := strings.TrimSpace(r.Form.Get(a)); v != "" {
				attrs = append(attrs, ldap.Attribute{Type: a, Values: []string{v}})
			}
		}
		if err := s.LDAP.Add(dn, attrs); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	// Update: replace non-empty fields, delete cleared ones.
	cur, err := s.LDAP.SearchOne(&ldap.SearchRequest{BaseDN: dn, Scope: ldap.ScopeBaseObject})
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	var changes []ldap.Change
	for _, a := range editableAttrs {
		v := strings.TrimSpace(r.Form.Get(a))
		switch {
		case v == "" && cur.HasAttr(a):
			changes = append(changes, ldap.Change{Op: ldap.ModDelete, Attribute: ldap.Attribute{Type: a}})
		case v != "" && cur.First(a) != v:
			changes = append(changes, ldap.Change{Op: ldap.ModReplace,
				Attribute: ldap.Attribute{Type: a, Values: []string{v}}})
		}
	}
	if len(changes) == 0 {
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	if err := s.LDAP.Modify(dn, changes); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

// objectClassesFor derives the classes a new entry needs from the fields
// supplied.
func objectClassesFor(r *http.Request) []string {
	classes := []string{mcschema.ClassPerson}
	if strings.TrimSpace(r.Form.Get(mcschema.AttrDefinityExtension)) != "" {
		classes = append(classes, mcschema.ClassDefinityUser)
	}
	if strings.TrimSpace(r.Form.Get(mcschema.AttrMailboxNumber)) != "" {
		classes = append(classes, mcschema.ClassMessagingUser)
	}
	return classes
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	dn := r.FormValue("dn")
	if dn == "" {
		http.Error(w, "missing dn", http.StatusBadRequest)
		return
	}
	if err := s.LDAP.Delete(dn); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

var statusTmpl = template.Must(template.Must(pageTmpl.Clone()).Parse(`{{define "body"}}
<h2>Update Manager</h2>
{{if .Wired}}
<table border="1" cellpadding="4">
<tr><th>Counter</th><th>Value</th></tr>
<tr><td>Shards</td><td>{{.S.Shards}}</td></tr>
<tr><td>Updates processed</td><td>{{.S.UpdatesProcessed}}</td></tr>
<tr><td>Pending (queued + executing)</td><td>{{.S.Pending}}</td></tr>
<tr><td>Queue rejections (busy)</td><td>{{.S.QueueRejections}}</td></tr>
<tr><td>Device applies</td><td>{{.S.DeviceApplies}}</td></tr>
<tr><td>Reapplies to originator</td><td>{{.S.Reapplies}}</td></tr>
<tr><td>Closure changes</td><td>{{.S.ClosureChanges}}</td></tr>
<tr><td>Errors logged</td><td>{{.S.ErrorsLogged}}</td></tr>
<tr><td>DDUs forwarded</td><td>{{.S.DDUsForwarded}}</td></tr>
</table>
<h3>Mean stage latency per update</h3>
<table border="1" cellpadding="4">
<tr><th>Stage</th><th>Mean</th></tr>
<tr><td>Enqueue wait</td><td>{{.EnqueueWait}}</td></tr>
<tr><td>Directory apply</td><td>{{.DirectoryApply}}</td></tr>
<tr><td>Device fan-out</td><td>{{.Fanout}}</td></tr>
<tr><td>Generated write-back</td><td>{{.WriteBack}}</td></tr>
</table>
{{else}}
<p>The Update Manager does not run in this process; no stats available.</p>
{{end}}
{{if .GWired}}
<h2>LTAP gateway</h2>
<table border="1" cellpadding="4">
<tr><th>Counter</th><th>Value</th></tr>
<tr><td>Searches proxied</td><td>{{.G.Searches}}</td></tr>
<tr><td>Mean search latency</td><td>{{.SearchMean}}</td></tr>
<tr><td>Updates trapped</td><td>{{.G.Updates}}</td></tr>
<tr><td>Before-image backend fetches</td><td>{{.G.BackendFetches}}</td></tr>
<tr><td>Mean backend fetch latency</td><td>{{.FetchMean}}</td></tr>
<tr><td>Quiesce windows</td><td>{{.G.Quiesces}}</td></tr>
<tr><td>Total quiesce time</td><td>{{.QuiesceTotal}}</td></tr>
<tr><td>Updates delayed by quiesce</td><td>{{.G.UpdatesDelayedByQuiesce}}</td></tr>
</table>
{{if .G.CacheEnabled}}
<h3>Before-image cache</h3>
<table border="1" cellpadding="4">
<tr><th>Counter</th><th>Value</th></tr>
<tr><td>Entries</td><td>{{.G.Cache.Size}}</td></tr>
<tr><td>Hits</td><td>{{.G.Cache.Hits}}</td></tr>
<tr><td>Misses</td><td>{{.G.Cache.Misses}}</td></tr>
<tr><td>Hit rate</td><td>{{.HitRate}}</td></tr>
<tr><td>Invalidations</td><td>{{.G.Cache.Invalidations}}</td></tr>
<tr><td>Evictions</td><td>{{.G.Cache.Evictions}}</td></tr>
<tr><td>Changelog resyncs</td><td>{{.G.Cache.Resyncs}}</td></tr>
</table>
{{else}}
<p>Before-image cache disabled; every trap fetches from the backend.</p>
{{end}}
{{end}}
{{if .Wires}}
<h2>LDAP wire path</h2>
<table border="1" cellpadding="4">
<tr><th>Listener</th><th>Accept loop</th><th>Messages</th><th>Responses</th><th>Flushes</th>
<th>Responses/flush</th><th>Oversize rejected</th></tr>
{{range .Wires}}
<tr><td>{{.Name}}</td><td>{{.Mode}}</td><td>{{.W.MessagesRead}}</td><td>{{.W.ResponsesWritten}}</td>
<td>{{.W.Flushes}}</td><td>{{.RespPerFlush}}</td><td>{{.W.OversizeRejected}}</td></tr>
{{end}}
</table>
{{if .Reactors}}
<h3>Epoll reactors</h3>
<table border="1" cellpadding="4">
<tr><th>Listener</th><th>Conns</th><th>Workers</th><th>Wakeups</th><th>Events</th>
<th>Frames</th><th>Frames/wakeup</th><th>Queue depth</th></tr>
{{range .Reactors}}
<tr><td>{{.Name}}</td><td>{{.R.Conns}}</td><td>{{.R.Workers}}</td><td>{{.R.Wakeups}}</td>
<td>{{.R.Events}}</td><td>{{.R.Frames}}</td><td>{{.FramesPerWakeup}}</td><td>{{.R.QueueDepth}}</td></tr>
{{end}}
</table>
{{end}}
{{end}}
{{if .JWired}}
<h2>Directory journal (group commit)</h2>
<table border="1" cellpadding="4">
<tr><th>Counter</th><th>Value</th></tr>
<tr><td>Sync mode</td><td>{{.J.Mode}}</td></tr>
<tr><td>Updates committed</td><td>{{.J.Appends}}</td></tr>
<tr><td>Commit groups</td><td>{{.J.Batches}}</td></tr>
<tr><td>Mean group size</td><td>{{.JMeanBatch}}</td></tr>
<tr><td>Largest group</td><td>{{.J.MaxBatch}}</td></tr>
<tr><td>Fsyncs</td><td>{{.J.Fsyncs}}</td></tr>
<tr><td>Bytes written</td><td>{{.J.Bytes}}</td></tr>
<tr><td>Mean commit latency</td><td>{{.JMeanCommit}}</td></tr>
<tr><td>Torn tails truncated</td><td>{{.J.TornTails}}</td></tr>
<tr><td>Record format</td><td>{{.J.Format}}</td></tr>
</table>
<h3>Group size histogram</h3>
<table border="1" cellpadding="4">
<tr><th>1</th><th>2&ndash;4</th><th>5&ndash;16</th><th>17&ndash;64</th><th>65&ndash;256</th><th>&gt;256</th></tr>
<tr>{{range .JHist}}<td>{{.}}</td>{{end}}</tr>
</table>
<h3>Startup replay</h3>
<table border="1" cellpadding="4">
<tr><th>Counter</th><th>Value</th></tr>
<tr><td>Records replayed</td><td>{{.J.ReplayedRecords}}</td></tr>
<tr><td>Journal bytes decoded</td><td>{{.J.ReplayedBytes}}</td></tr>
<tr><td>Replay wall time</td><td>{{.JReplayWall}}</td></tr>
<tr><td>Replay workers</td><td>{{.J.ReplayWorkers}}</td></tr>
<tr><td>Records/s</td><td>{{.JReplayRate}}</td></tr>
<tr><td>Per-segment wall</td><td>{{.JSegmentWall}}</td></tr>
</table>
{{end}}
{{if .RWired}}
<h2>Multi-master replication (node {{.R.NodeID}})</h2>
<table border="1" cellpadding="4">
<tr><th>Counter</th><th>Value</th></tr>
<tr><td>Inbound connections</td><td>{{.R.Publisher.Conns}}</td></tr>
<tr><td>Resumes served</td><td>{{.R.Publisher.Resumes}}</td></tr>
<tr><td>Snapshots served</td><td>{{.R.Publisher.Snapshots}}</td></tr>
<tr><td>Records sent</td><td>{{.R.Publisher.RecordsSent}}</td></tr>
</table>
{{if .RPeers}}
<h3>Peer links</h3>
<table border="1" cellpadding="4">
<tr><th>Peer</th><th>Connected</th><th>Cursor</th><th>Resumes</th><th>Snapshots</th>
<th>Applied</th><th>No-ops</th><th>Structural skips</th></tr>
{{range .RPeers}}
<tr><td>{{.Addr}}</td><td>{{.Connected}}</td><td>{{.Cursor}}</td><td>{{.Resumes}}</td>
<td>{{.Snapshots}}</td><td>{{.Applied}}</td><td>{{.Noops}}</td><td>{{.Structural}}</td></tr>
{{end}}
</table>
{{end}}
{{end}}
{{if .Outboxes}}
<h2>Device outbox / circuit breakers</h2>
<table border="1" cellpadding="4">
<tr><th>Device</th><th>Breaker</th><th>Backlog</th><th>Enqueued</th><th>Drained</th>
<th>Deferred</th><th>Retries</th><th>Repairs</th><th>Dropped</th><th>Trips</th></tr>
{{range .Outboxes}}
<tr><td>{{.Device}}</td><td>{{.Breaker}}</td><td>{{.Backlog}}</td><td>{{.Enqueued}}</td>
<td>{{.Drained}}</td><td>{{.Deferred}}</td><td>{{.Retries}}</td><td>{{.Repairs}}</td>
<td>{{.Dropped}}</td><td>{{.Trips}}</td></tr>
{{end}}
</table>
{{end}}
{{if .Syncs}}
<h2>Synchronization (last pass)</h2>
<table border="1" cellpadding="4">
<tr><th>Device</th><th>Records</th><th>Dir adds</th><th>Dev adds</th><th>Dir mods</th><th>Dev mods</th>
<th>In sync</th><th>Errors</th><th>Dup keys</th><th>Snapshot</th><th>Workers</th>
<th>Bulk</th><th>Quiesce</th><th>Delta seen/replayed</th><th>Records/s</th></tr>
{{range .Syncs}}
<tr><td>{{.Name}}</td><td>{{.S.DeviceRecords}}</td><td>{{.S.DirectoryAdds}}</td><td>{{.S.DeviceAdds}}</td>
<td>{{.S.DirectoryMods}}</td><td>{{.S.DeviceMods}}</td><td>{{.S.AlreadyInSync}}</td><td>{{.S.Errors}}</td>
<td>{{.S.DuplicateKeys}}</td><td>{{.S.SnapshotUsed}}</td><td>{{.S.Workers}}</td>
<td>{{.Bulk}}</td><td>{{.Quiesce}}</td><td>{{.S.DeltaRecords}}/{{.S.DeltaReplayed}}</td><td>{{.Rate}}</td></tr>
{{end}}
</table>
{{end}}
{{end}}`))

// meanStage renders a per-update mean duration for a cumulative stage time.
func meanStage(totalNs, updates uint64) string {
	if updates == 0 {
		return "n/a"
	}
	return time.Duration(totalNs / updates).String()
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	data := map[string]any{"Wired": false}
	if s.Stats != nil {
		st := s.Stats()
		data["Wired"] = true
		data["S"] = st
		data["EnqueueWait"] = meanStage(st.EnqueueWaitNs, st.UpdatesProcessed)
		data["DirectoryApply"] = meanStage(st.DirectoryApplyNs, st.UpdatesProcessed)
		data["Fanout"] = meanStage(st.FanoutNs, st.UpdatesProcessed)
		data["WriteBack"] = meanStage(st.WriteBackNs, st.UpdatesProcessed)
	}
	data["GWired"] = false
	if s.GatewayStats != nil {
		gs := s.GatewayStats()
		data["GWired"] = true
		data["G"] = gs
		data["SearchMean"] = meanStage(gs.SearchNs, gs.Searches)
		data["FetchMean"] = meanStage(gs.BackendFetchNs, gs.BackendFetches)
		data["HitRate"] = fmt.Sprintf("%.1f%%", 100*gs.Cache.HitRate())
		data["QuiesceTotal"] = time.Duration(gs.QuiesceNs).String()
	}
	if s.OutboxStats != nil {
		if obs := s.OutboxStats(); len(obs) > 0 {
			data["Outboxes"] = obs
		}
	}
	type wireRow struct {
		Name, Mode, RespPerFlush string
		W                        ldapserver.WireStats
	}
	type reactorRow struct {
		Name, FramesPerWakeup string
		R                     ldapserver.ReactorStats
	}
	var wires []wireRow
	var reactors []reactorRow
	for _, l := range []struct {
		name string
		fn   func() ldapserver.WireStats
	}{{"LTAP", s.LTAPWireStats}, {"directory", s.DirWireStats}} {
		if l.fn == nil {
			continue
		}
		ws := l.fn()
		mode := "goroutine-per-conn"
		if ws.Reactor.Enabled {
			mode = "epoll"
			reactors = append(reactors, reactorRow{
				Name:            l.name,
				FramesPerWakeup: fmt.Sprintf("%.1f", ws.Reactor.FramesPerWakeup()),
				R:               ws.Reactor,
			})
		}
		wires = append(wires, wireRow{
			Name:         l.name,
			Mode:         mode,
			RespPerFlush: fmt.Sprintf("%.1f", ws.ResponsesPerFlush()),
			W:            ws,
		})
	}
	if len(wires) > 0 {
		data["Wires"] = wires
	}
	if len(reactors) > 0 {
		data["Reactors"] = reactors
	}
	data["JWired"] = false
	if s.JournalStats != nil {
		if js := s.JournalStats(); js.Batches > 0 || js.Mode != "" {
			data["JWired"] = true
			data["J"] = js
			data["JMeanBatch"] = fmt.Sprintf("%.1f", js.MeanBatch())
			data["JMeanCommit"] = js.MeanCommit().String()
			data["JHist"] = js.BatchHist[:]
			data["JReplayWall"] = time.Duration(js.ReplayNs).String()
			data["JReplayRate"] = fmt.Sprintf("%.0f", js.ReplayRecordsPerSec())
			segs := make([]string, len(js.SegmentReplayNs))
			for i, ns := range js.SegmentReplayNs {
				segs[i] = time.Duration(ns).String()
			}
			data["JSegmentWall"] = strings.Join(segs, " ")
		}
	}
	data["RWired"] = false
	if s.ReplicationStats != nil {
		rs := s.ReplicationStats()
		data["RWired"] = true
		data["R"] = rs
		data["RPeers"] = rs.Peers
	}
	if s.SyncStats != nil {
		type syncRow struct {
			Name                string
			S                   um.SyncStats
			Bulk, Quiesce, Rate string
		}
		var rows []syncRow
		for name, ss := range s.SyncStats() {
			rows = append(rows, syncRow{
				Name:    name,
				S:       ss,
				Bulk:    time.Duration(ss.BulkNs).String(),
				Quiesce: time.Duration(ss.QuiesceNs).String(),
				Rate:    fmt.Sprintf("%.0f", ss.RecordsPerSec()),
			})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
		data["Syncs"] = rows
	}
	if err := statusTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// errorView is the template model for one logged update error.
type errorView struct {
	ID, Source, Target, Op, Key, Message string
}

func (s *Server) handleErrors(w http.ResponseWriter, r *http.Request) {
	entries, err := s.LDAP.Search(&ldap.SearchRequest{
		BaseDN: "ou=errors," + s.Suffix,
		Scope:  ldap.ScopeSingleLevel,
		Filter: ldap.Eq("objectClass", mcschema.ClassUpdateError),
	})
	if err != nil && !ldap.IsCode(err, ldap.ResultNoSuchObject) {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	views := make([]errorView, 0, len(entries))
	for _, e := range entries {
		views = append(views, errorView{
			ID:      e.First(mcschema.AttrErrorID),
			Source:  e.First(mcschema.AttrErrorSource),
			Target:  e.First(mcschema.AttrErrorTarget),
			Op:      e.First(mcschema.AttrErrorOp),
			Key:     e.First(mcschema.AttrErrorKey),
			Message: e.First(mcschema.AttrErrorMessage),
		})
	}
	if err := errorsTmpl.Execute(w, map[string]any{"Errors": views}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
