package directory

import (
	"fmt"
	"path/filepath"
	"testing"
)

// BenchmarkReplayFormats measures cold-attach replay of a compacted
// 8-segment journal set in each format, sequentially (Workers: 1), and
// reports per-record decode+apply cost. This is the unit-level check behind
// experiment E22's "v2 ≥ 3× JSON records/s" acceptance bar; run benchscale
// for the full-population numbers.
func BenchmarkReplayFormats(b *testing.B) {
	for _, cfg := range []struct {
		format  JournalFormat
		workers int
	}{
		{FormatV2, 1},
		{FormatV2, 2},
		{FormatJSON, 1},
	} {
		format, workers := cfg.format, cfg.workers
		b.Run(fmt.Sprintf("%s-w%d", format, workers), func(b *testing.B) {
			dir := b.TempDir()
			base := filepath.Join(dir, "dir.journal")
			d := NewSegmented(nil, 8)
			if _, err := d.AttachJournalSet(JournalSetConfig{Base: base, Mode: SyncNone, Format: format}); err != nil {
				b.Fatal(err)
			}
			const n = 20000
			if err := d.Add(mustDN("o=Lucent"), AttrsFrom(map[string][]string{"objectClass": {"organization"}})); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				attrs := AttrsFrom(map[string][]string{
					"objectClass": {"person"}, "cn": {fmt.Sprintf("u%07d", i)},
					"sn": {fmt.Sprintf("User%07d", i)}, "telephoneNumber": {fmt.Sprintf("+1 908 555 %04d", i%10000)},
					"definityExtension": {fmt.Sprintf("%07d", i)}, "mailboxNumber": {fmt.Sprintf("%07d", i)}})
				if err := d.Add(mustDN(fmt.Sprintf("cn=u%07d,o=Lucent", i)), attrs); err != nil {
					b.Fatal(err)
				}
			}
			if err := d.Compact(); err != nil {
				b.Fatal(err)
			}
			if err := d.CloseJournal(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cold := NewSegmented(nil, 8)
				if _, err := cold.AttachJournalSet(JournalSetConfig{Base: base, Mode: SyncNone, Format: format, Workers: workers}); err != nil {
					b.Fatal(err)
				}
				if cold.Len() != n+1 {
					b.Fatalf("len %d", cold.Len())
				}
				b.SetBytes(int64(cold.JournalStats().ReplayedBytes))
				if err := cold.CloseJournal(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/record")
		})
	}
}
