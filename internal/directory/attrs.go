// Package directory implements the in-memory directory information tree
// (DIT) that backs the MetaComm LDAP server: entries addressed by
// distinguished name, hierarchical parent/child structure, LDAP update
// semantics (add/delete leaf, modify node, modify RDN), search with filter
// evaluation, and optional schema checking.
//
// Faithful to the paper's substrate assumptions, the DIT offers *atomic
// single-entry updates only*: there are no transactions, no triggers
// (LTAP adds those externally), and set-valued attributes hold atomic
// strings only.
package directory

import (
	"sort"
	"strings"
)

// Attrs is a case-insensitive multi-valued attribute map. Attribute type
// names compare case-insensitively but the first-seen spelling is preserved
// for display, as LDAP servers do.
type Attrs struct {
	names map[string]string   // lower-cased type -> display spelling
	vals  map[string][]string // lower-cased type -> values
}

// NewAttrs returns an empty attribute map.
func NewAttrs() *Attrs {
	return &Attrs{names: map[string]string{}, vals: map[string][]string{}}
}

// AttrsFrom builds an Attrs from a plain map (convenient in tests and
// loaders).
func AttrsFrom(m map[string][]string) *Attrs {
	a := NewAttrs()
	for k, vs := range m {
		for _, v := range vs {
			a.Add(k, v)
		}
	}
	return a
}

func lower(s string) string { return strings.ToLower(s) }

// Get returns all values of attr (nil when absent). The returned slice is
// shared; callers must not mutate it.
func (a *Attrs) Get(attr string) []string { return a.vals[lower(attr)] }

// First returns the first value of attr, or "".
func (a *Attrs) First(attr string) string {
	if vs := a.vals[lower(attr)]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// Has reports whether attr has at least one value.
func (a *Attrs) Has(attr string) bool { return len(a.vals[lower(attr)]) > 0 }

// HasValue reports whether attr contains value (case-insensitively).
func (a *Attrs) HasValue(attr, value string) bool {
	for _, v := range a.vals[lower(attr)] {
		if strings.EqualFold(v, value) {
			return true
		}
	}
	return false
}

// Put replaces all values of attr.
func (a *Attrs) Put(attr string, values ...string) {
	k := lower(attr)
	if len(values) == 0 {
		delete(a.vals, k)
		delete(a.names, k)
		return
	}
	if _, ok := a.names[k]; !ok {
		a.names[k] = attr
	}
	a.vals[k] = append([]string(nil), values...)
}

// Add appends a value to attr, refusing duplicates (LDAP sets have no
// duplicate values). It reports whether the value was added.
func (a *Attrs) Add(attr, value string) bool {
	if a.HasValue(attr, value) {
		return false
	}
	k := lower(attr)
	if _, ok := a.names[k]; !ok {
		a.names[k] = attr
	}
	a.vals[k] = append(a.vals[k], value)
	return true
}

// DeleteValue removes one value from attr, reporting whether it was present.
// When the last value goes, the attribute disappears.
func (a *Attrs) DeleteValue(attr, value string) bool {
	k := lower(attr)
	vs := a.vals[k]
	for i, v := range vs {
		if strings.EqualFold(v, value) {
			vs = append(vs[:i], vs[i+1:]...)
			if len(vs) == 0 {
				delete(a.vals, k)
				delete(a.names, k)
			} else {
				a.vals[k] = vs
			}
			return true
		}
	}
	return false
}

// Delete removes attr entirely, reporting whether it existed.
func (a *Attrs) Delete(attr string) bool {
	k := lower(attr)
	if _, ok := a.vals[k]; !ok {
		return false
	}
	delete(a.vals, k)
	delete(a.names, k)
	return true
}

// Names returns the display spellings of all present attributes, sorted
// case-insensitively for deterministic iteration.
func (a *Attrs) Names() []string {
	out := make([]string, 0, len(a.names))
	for _, display := range a.names {
		out = append(out, display)
	}
	sort.Slice(out, func(i, j int) bool { return lower(out[i]) < lower(out[j]) })
	return out
}

// Len returns the number of distinct attribute types.
func (a *Attrs) Len() int { return len(a.vals) }

// Clone returns a deep copy.
func (a *Attrs) Clone() *Attrs {
	c := NewAttrs()
	for k, display := range a.names {
		c.names[k] = display
		c.vals[k] = append([]string(nil), a.vals[k]...)
	}
	return c
}

// Map returns a plain map copy keyed by display names.
func (a *Attrs) Map() map[string][]string {
	out := make(map[string][]string, len(a.vals))
	for k, display := range a.names {
		out[display] = append([]string(nil), a.vals[k]...)
	}
	return out
}

// Equal reports whether two attribute maps hold the same types and value
// sets (value order-insensitive, case-insensitive values).
func (a *Attrs) Equal(b *Attrs) bool {
	if a.Len() != b.Len() {
		return false
	}
	for k, vs := range a.vals {
		ws := b.vals[k]
		if len(vs) != len(ws) {
			return false
		}
		for _, v := range vs {
			if !b.HasValue(k, v) {
				return false
			}
		}
	}
	return true
}
