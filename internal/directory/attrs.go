// Package directory implements the in-memory directory information tree
// (DIT) that backs the MetaComm LDAP server: entries addressed by
// distinguished name, hierarchical parent/child structure, LDAP update
// semantics (add/delete leaf, modify node, modify RDN), search with filter
// evaluation, and optional schema checking.
//
// Faithful to the paper's substrate assumptions, the DIT offers *atomic
// single-entry updates only*: there are no transactions, no triggers
// (LTAP adds those externally), and set-valued attributes hold atomic
// strings only.
package directory

import (
	"sort"
	"strings"
	"sync/atomic"
)

// Attrs is a case-insensitive multi-valued attribute map. Attribute type
// names compare case-insensitively but the first-seen spelling is preserved
// for display, as LDAP servers do.
type Attrs struct {
	names map[string]string   // lower-cased type -> display spelling
	vals  map[string][]string // lower-cased type -> values
	// view caches the deterministic iteration order used by Names and
	// EachSorted. The DIT's copy-on-write discipline means an installed
	// *Attrs is never mutated, so concurrent lazy initialization here is
	// an idempotent race (safe under atomic.Pointer); mutators, which only
	// ever run on private working copies, drop the cache.
	view atomic.Pointer[sortedView]
}

// sortedView is the cached iteration order: lowered keys sorted
// lexicographically (which is exactly case-insensitive order of the display
// spellings) with the display spellings aligned.
type sortedView struct {
	keys  []string
	names []string
}

// sorted returns the cached view, computing it on first use.
func (a *Attrs) sorted() *sortedView {
	if v := a.view.Load(); v != nil {
		return v
	}
	v := &sortedView{keys: make([]string, 0, len(a.names))}
	for k := range a.names {
		v.keys = append(v.keys, k)
	}
	sort.Strings(v.keys)
	v.names = make([]string, len(v.keys))
	for i, k := range v.keys {
		v.names[i] = a.names[k]
	}
	a.view.Store(v)
	return v
}

// NewAttrs returns an empty attribute map.
func NewAttrs() *Attrs {
	return &Attrs{names: map[string]string{}, vals: map[string][]string{}}
}

// AttrsFrom builds an Attrs from a plain map (convenient in tests and
// loaders).
func AttrsFrom(m map[string][]string) *Attrs {
	a := NewAttrs()
	for k, vs := range m {
		for _, v := range vs {
			a.Add(k, v)
		}
	}
	return a
}

func lower(s string) string { return strings.ToLower(s) }

// Get returns all values of attr (nil when absent). The returned slice is
// shared; callers must not mutate it.
func (a *Attrs) Get(attr string) []string { return a.vals[lower(attr)] }

// First returns the first value of attr, or "".
func (a *Attrs) First(attr string) string {
	if vs := a.vals[lower(attr)]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// Has reports whether attr has at least one value.
func (a *Attrs) Has(attr string) bool { return len(a.vals[lower(attr)]) > 0 }

// HasValue reports whether attr contains value (case-insensitively).
func (a *Attrs) HasValue(attr, value string) bool {
	for _, v := range a.vals[lower(attr)] {
		if strings.EqualFold(v, value) {
			return true
		}
	}
	return false
}

// Put replaces all values of attr.
func (a *Attrs) Put(attr string, values ...string) {
	a.view.Store(nil)
	k := lower(attr)
	if len(values) == 0 {
		delete(a.vals, k)
		delete(a.names, k)
		return
	}
	if _, ok := a.names[k]; !ok {
		a.names[k] = attr
	}
	a.vals[k] = append([]string(nil), values...)
}

// Add appends a value to attr, refusing duplicates (LDAP sets have no
// duplicate values). It reports whether the value was added.
func (a *Attrs) Add(attr, value string) bool {
	if a.HasValue(attr, value) {
		return false
	}
	a.view.Store(nil)
	k := lower(attr)
	if _, ok := a.names[k]; !ok {
		a.names[k] = attr
	}
	a.vals[k] = append(a.vals[k], value)
	return true
}

// DeleteValue removes one value from attr, reporting whether it was present.
// When the last value goes, the attribute disappears.
func (a *Attrs) DeleteValue(attr, value string) bool {
	k := lower(attr)
	vs := a.vals[k]
	for i, v := range vs {
		if strings.EqualFold(v, value) {
			a.view.Store(nil)
			vs = append(vs[:i], vs[i+1:]...)
			if len(vs) == 0 {
				delete(a.vals, k)
				delete(a.names, k)
			} else {
				a.vals[k] = vs
			}
			return true
		}
	}
	return false
}

// Delete removes attr entirely, reporting whether it existed.
func (a *Attrs) Delete(attr string) bool {
	k := lower(attr)
	if _, ok := a.vals[k]; !ok {
		return false
	}
	a.view.Store(nil)
	delete(a.vals, k)
	delete(a.names, k)
	return true
}

// Names returns the display spellings of all present attributes, sorted
// case-insensitively for deterministic iteration. The slice is the caller's
// to keep.
func (a *Attrs) Names() []string {
	return append([]string(nil), a.sorted().names...)
}

// EachSorted calls f for every attribute in the same deterministic order as
// Names, passing the display spelling and the shared (do not mutate) value
// slice. It exists for the search result conversion path, which would
// otherwise allocate a sorted name slice and re-hash every display name per
// entry per search.
func (a *Attrs) EachSorted(f func(attr string, values []string)) {
	v := a.sorted()
	for i, k := range v.keys {
		f(v.names[i], a.vals[k])
	}
}

// Len returns the number of distinct attribute types.
func (a *Attrs) Len() int { return len(a.vals) }

// Clone returns a deep copy.
func (a *Attrs) Clone() *Attrs {
	c := NewAttrs()
	for k, display := range a.names {
		c.names[k] = display
		c.vals[k] = append([]string(nil), a.vals[k]...)
	}
	return c
}

// Map returns a plain map copy keyed by display names.
func (a *Attrs) Map() map[string][]string {
	out := make(map[string][]string, len(a.vals))
	for k, display := range a.names {
		out[display] = append([]string(nil), a.vals[k]...)
	}
	return out
}

// Equal reports whether two attribute maps hold the same types and value
// sets (value order-insensitive, case-insensitive values).
func (a *Attrs) Equal(b *Attrs) bool {
	if a.Len() != b.Len() {
		return false
	}
	for k, vs := range a.vals {
		ws := b.vals[k]
		if len(vs) != len(ws) {
			return false
		}
		for _, v := range vs {
			if !b.HasValue(k, v) {
				return false
			}
		}
	}
	return true
}
