// Package directory implements the in-memory directory information tree
// (DIT) that backs the MetaComm LDAP server: entries addressed by
// distinguished name, hierarchical parent/child structure, LDAP update
// semantics (add/delete leaf, modify node, modify RDN), search with filter
// evaluation, and optional schema checking.
//
// Faithful to the paper's substrate assumptions, the DIT offers *atomic
// single-entry updates only*: there are no transactions, no triggers
// (LTAP adds those externally), and set-valued attributes hold atomic
// strings only.
package directory

import (
	"sort"
	"strings"
	"sync/atomic"
)

// Attrs is a case-insensitive multi-valued attribute map. Attribute type
// names compare case-insensitively but the first-seen spelling is preserved
// for display, as LDAP servers do.
//
// Representation: a small slice of fields rather than two maps. Real
// entries carry a handful of attributes, so linear scans beat hashing, and
// the per-entry footprint is one slice header plus one attrField per
// attribute — with both the lowered key and the display spelling interned
// (see intern.go), a million entries share one string object per distinct
// attribute name instead of storing a million copies.
type Attrs struct {
	fields []attrField
	// view caches the deterministic iteration order used by Names and
	// EachSorted. The DIT's copy-on-write discipline means an installed
	// *Attrs is never mutated, so concurrent lazy initialization here is
	// an idempotent race (safe under atomic.Pointer); mutators, which only
	// ever run on private working copies, drop the cache.
	view atomic.Pointer[sortedView]
}

// attrField is one attribute: its lowered (canonical) key, its first-seen
// display spelling, and its values. key and display are interned.
type attrField struct {
	key     string
	display string
	vals    []string
}

// sortedView is the cached iteration order: field indices sorted by lowered
// key (which is exactly case-insensitive order of the display spellings).
type sortedView struct {
	order []int
}

// sorted returns the cached view, computing it on first use.
func (a *Attrs) sorted() *sortedView {
	if v := a.view.Load(); v != nil {
		return v
	}
	v := &sortedView{order: make([]int, len(a.fields))}
	for i := range v.order {
		v.order[i] = i
	}
	sort.Slice(v.order, func(i, j int) bool {
		return a.fields[v.order[i]].key < a.fields[v.order[j]].key
	})
	a.view.Store(v)
	return v
}

// NewAttrs returns an empty attribute map.
func NewAttrs() *Attrs { return &Attrs{} }

// AttrsFrom builds an Attrs from a plain map (convenient in tests and
// loaders).
func AttrsFrom(m map[string][]string) *Attrs {
	a := NewAttrs()
	for k, vs := range m {
		for _, v := range vs {
			a.Add(k, v)
		}
	}
	return a
}

// lower canonicalizes an attribute type name. Names are ASCII in practice,
// so the common all-lower spelling returns its input unchanged with no
// allocation.
func lower(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			return strings.ToLower(s)
		}
	}
	return s
}

// idx returns the field index for the (already lowered) key, or -1.
func (a *Attrs) idx(k string) int {
	for i := range a.fields {
		if a.fields[i].key == k {
			return i
		}
	}
	return -1
}

// Get returns all values of attr (nil when absent). The returned slice is
// shared; callers must not mutate it.
func (a *Attrs) Get(attr string) []string {
	if i := a.idx(lower(attr)); i >= 0 {
		return a.fields[i].vals
	}
	return nil
}

// First returns the first value of attr, or "".
func (a *Attrs) First(attr string) string {
	if vs := a.Get(attr); len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// Has reports whether attr has at least one value.
func (a *Attrs) Has(attr string) bool { return len(a.Get(attr)) > 0 }

// HasValue reports whether attr contains value (case-insensitively).
func (a *Attrs) HasValue(attr, value string) bool {
	for _, v := range a.Get(attr) {
		if strings.EqualFold(v, value) {
			return true
		}
	}
	return false
}

// Put replaces all values of attr.
func (a *Attrs) Put(attr string, values ...string) {
	a.view.Store(nil)
	k := lower(attr)
	i := a.idx(k)
	if len(values) == 0 {
		if i >= 0 {
			a.fields = append(a.fields[:i], a.fields[i+1:]...)
		}
		return
	}
	vals := append([]string(nil), values...)
	if i >= 0 {
		a.fields[i].vals = vals
		return
	}
	a.fields = append(a.fields, attrField{key: intern(k), display: intern(attr), vals: vals})
}

// Add appends a value to attr, refusing duplicates (LDAP sets have no
// duplicate values). It reports whether the value was added.
func (a *Attrs) Add(attr, value string) bool {
	if a.HasValue(attr, value) {
		return false
	}
	a.view.Store(nil)
	k := lower(attr)
	if i := a.idx(k); i >= 0 {
		a.fields[i].vals = append(a.fields[i].vals, value)
		return true
	}
	a.fields = append(a.fields, attrField{key: intern(k), display: intern(attr), vals: []string{value}})
	return true
}

// DeleteValue removes one value from attr, reporting whether it was present.
// When the last value goes, the attribute disappears.
func (a *Attrs) DeleteValue(attr, value string) bool {
	i := a.idx(lower(attr))
	if i < 0 {
		return false
	}
	vs := a.fields[i].vals
	for vi, v := range vs {
		if strings.EqualFold(v, value) {
			a.view.Store(nil)
			vs = append(vs[:vi], vs[vi+1:]...)
			if len(vs) == 0 {
				a.fields = append(a.fields[:i], a.fields[i+1:]...)
			} else {
				a.fields[i].vals = vs
			}
			return true
		}
	}
	return false
}

// Delete removes attr entirely, reporting whether it existed.
func (a *Attrs) Delete(attr string) bool {
	i := a.idx(lower(attr))
	if i < 0 {
		return false
	}
	a.view.Store(nil)
	a.fields = append(a.fields[:i], a.fields[i+1:]...)
	return true
}

// Names returns the display spellings of all present attributes, sorted
// case-insensitively for deterministic iteration. The slice is the caller's
// to keep.
func (a *Attrs) Names() []string {
	v := a.sorted()
	out := make([]string, len(v.order))
	for i, fi := range v.order {
		out[i] = a.fields[fi].display
	}
	return out
}

// EachSorted calls f for every attribute in the same deterministic order as
// Names, passing the display spelling and the shared (do not mutate) value
// slice. It exists for the search result conversion path, which would
// otherwise allocate a sorted name slice and re-hash every display name per
// entry per search.
func (a *Attrs) EachSorted(f func(attr string, values []string)) {
	v := a.sorted()
	for _, fi := range v.order {
		f(a.fields[fi].display, a.fields[fi].vals)
	}
}

// Len returns the number of distinct attribute types.
func (a *Attrs) Len() int { return len(a.fields) }

// Clone returns a deep copy. Interned name objects are shared by design;
// value slices are copied.
func (a *Attrs) Clone() *Attrs {
	c := &Attrs{}
	if len(a.fields) > 0 {
		c.fields = make([]attrField, len(a.fields))
		copy(c.fields, a.fields)
		for i := range c.fields {
			c.fields[i].vals = append([]string(nil), c.fields[i].vals...)
		}
	}
	return c
}

// Map returns a plain map copy keyed by display names.
func (a *Attrs) Map() map[string][]string {
	out := make(map[string][]string, len(a.fields))
	for i := range a.fields {
		out[a.fields[i].display] = append([]string(nil), a.fields[i].vals...)
	}
	return out
}

// Equal reports whether two attribute maps hold the same types and value
// sets (value order-insensitive, case-insensitive values).
func (a *Attrs) Equal(b *Attrs) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.fields {
		f := &a.fields[i]
		ws := b.Get(f.key)
		if len(f.vals) != len(ws) {
			return false
		}
		for _, v := range f.vals {
			if !b.HasValue(f.key, v) {
				return false
			}
		}
	}
	return true
}
