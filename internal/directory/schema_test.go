package directory

import (
	"testing"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	for _, a := range []AttributeType{
		{Name: "cn"},
		{Name: "sn"},
		{Name: "o"},
		{Name: "telephoneNumber"},
		{Name: "definityExtension", SingleValue: true},
		{Name: "lastUpdater", Operational: true, SingleValue: true},
	} {
		if err := s.AddAttribute(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddClass(ObjectClass{Name: "top", Kind: Abstract}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClass(ObjectClass{Name: "person", Kind: Structural, Sup: "top",
		Must: []string{"cn", "sn"}, May: []string{"telephoneNumber"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClass(ObjectClass{Name: "definityUser", Kind: Auxiliary,
		May: []string{"definityExtension"}}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAuxiliaryClassesCannotHaveMandatoryAttributes(t *testing.T) {
	s := testSchema(t)
	err := s.AddClass(ObjectClass{Name: "badAux", Kind: Auxiliary, Must: []string{"cn"}})
	if err == nil {
		t.Fatal("auxiliary class with MUST accepted — contradicts paper §5.2")
	}
}

func TestSchemaRejectsUndefinedReferences(t *testing.T) {
	s := testSchema(t)
	if err := s.AddClass(ObjectClass{Name: "x", Kind: Structural, Must: []string{"ghost"}}); err == nil {
		t.Error("class with undefined attribute accepted")
	}
	if err := s.AddClass(ObjectClass{Name: "y", Kind: Structural, Sup: "ghost"}); err == nil {
		t.Error("class with undefined superior accepted")
	}
	if err := s.AddAttribute(AttributeType{Name: "CN"}); err == nil {
		t.Error("duplicate attribute (case-insensitive) accepted")
	}
	if err := s.AddClass(ObjectClass{Name: "PERSON", Kind: Structural}); err == nil {
		t.Error("duplicate class (case-insensitive) accepted")
	}
}

func TestCheckEntryMandatory(t *testing.T) {
	s := testSchema(t)
	missing := AttrsFrom(map[string][]string{
		"objectClass": {"person"},
		"cn":          {"John Doe"},
	})
	err := s.CheckEntry(missing)
	if CodeOf(err) != ldap.ResultObjectClassViolation {
		t.Errorf("missing sn: err = %v", err)
	}
	ok := AttrsFrom(map[string][]string{
		"objectClass": {"person"},
		"cn":          {"John Doe"},
		"sn":          {"Doe"},
	})
	if err := s.CheckEntry(ok); err != nil {
		t.Errorf("valid entry rejected: %v", err)
	}
}

func TestCheckEntryAuxiliarySignalsMayUse(t *testing.T) {
	// The paper's anomaly: objectClass says definityUser, but no extension
	// field. This must be LEGAL — presence of the auxiliary class only
	// indicates the person MAY use a device.
	s := testSchema(t)
	e := AttrsFrom(map[string][]string{
		"objectClass": {"person", "definityUser"},
		"cn":          {"John Doe"},
		"sn":          {"Doe"},
	})
	if err := s.CheckEntry(e); err != nil {
		t.Errorf("aux class without its fields rejected: %v", err)
	}
}

func TestCheckEntrySingleValue(t *testing.T) {
	s := testSchema(t)
	e := AttrsFrom(map[string][]string{
		"objectClass":       {"person", "definityUser"},
		"cn":                {"John Doe"},
		"sn":                {"Doe"},
		"definityExtension": {"5-9000", "5-9001"},
	})
	if CodeOf(s.CheckEntry(e)) != ldap.ResultConstraintViolation {
		t.Error("multi-valued single-value attribute accepted")
	}
}

func TestCheckEntryStrictMode(t *testing.T) {
	s := testSchema(t)
	e := AttrsFrom(map[string][]string{
		"objectClass": {"person"},
		"cn":          {"John Doe"},
		"sn":          {"Doe"},
		"shoeSize":    {"42"},
	})
	if err := s.CheckEntry(e); err != nil {
		t.Errorf("lenient mode rejected unknown attr: %v", err)
	}
	s.Strict = true
	if CodeOf(s.CheckEntry(e)) != ldap.ResultObjectClassViolation {
		t.Error("strict mode accepted disallowed attribute")
	}
	// Operational attributes pass even in strict mode.
	op := AttrsFrom(map[string][]string{
		"objectClass": {"person"},
		"cn":          {"John Doe"},
		"sn":          {"Doe"},
		"lastUpdater": {"pbx"},
	})
	if err := s.CheckEntry(op); err != nil {
		t.Errorf("operational attribute rejected in strict mode: %v", err)
	}
}

func TestCheckEntryRequiresStructuralClass(t *testing.T) {
	s := testSchema(t)
	e := AttrsFrom(map[string][]string{
		"objectClass": {"definityUser"},
	})
	if CodeOf(s.CheckEntry(e)) != ldap.ResultObjectClassViolation {
		t.Error("entry with only auxiliary class accepted")
	}
	none := AttrsFrom(map[string][]string{"cn": {"x"}})
	if CodeOf(s.CheckEntry(none)) != ldap.ResultObjectClassViolation {
		t.Error("entry without objectClass accepted")
	}
	unknown := AttrsFrom(map[string][]string{"objectClass": {"martian"}})
	if CodeOf(s.CheckEntry(unknown)) != ldap.ResultObjectClassViolation {
		t.Error("unknown class accepted")
	}
}

func TestDITWithSchemaEnforcesOnAllUpdatePaths(t *testing.T) {
	s := testSchema(t)
	d := New(s)
	if err := s.AddClass(ObjectClass{Name: "organization", Kind: Structural, Must: []string{"o"}}); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, d, "o=Lucent", AttrsFrom(map[string][]string{"objectClass": {"organization"}}))

	// Add without mandatory sn fails.
	err := d.Add(mustDN("cn=John Doe,o=Lucent"), AttrsFrom(map[string][]string{
		"objectClass": {"person"},
	}))
	if CodeOf(err) != ldap.ResultObjectClassViolation {
		t.Errorf("add err = %v", err)
	}

	mustAdd(t, d, "cn=John Doe,o=Lucent", AttrsFrom(map[string][]string{
		"objectClass": {"person"}, "sn": {"Doe"},
	}))

	// Modify removing a mandatory attribute fails and rolls back.
	err = d.Modify(mustDN("cn=John Doe,o=Lucent"), []ldap.Change{
		{Op: ldap.ModDelete, Attribute: ldap.Attribute{Type: "sn"}},
	})
	if CodeOf(err) != ldap.ResultObjectClassViolation {
		t.Errorf("modify err = %v", err)
	}
	e, _ := d.Get(mustDN("cn=John Doe,o=Lucent"))
	if !e.Attrs.Has("sn") {
		t.Error("failed modify mutated entry")
	}
}

func TestAttrsBasics(t *testing.T) {
	a := NewAttrs()
	a.Put("TelephoneNumber", "+1 908 582 9000")
	if a.First("telephonenumber") != "+1 908 582 9000" {
		t.Error("case-insensitive get failed")
	}
	if !a.Add("telephoneNumber", "+1 908 582 9001") {
		t.Error("add of new value failed")
	}
	if a.Add("TELEPHONENUMBER", "+1 908 582 9001") {
		t.Error("duplicate value added")
	}
	if got := a.Names(); len(got) != 1 || got[0] != "TelephoneNumber" {
		t.Errorf("names = %v (display spelling should be first-seen)", got)
	}
	b := a.Clone()
	b.Put("TelephoneNumber", "other")
	if a.First("telephoneNumber") == "other" {
		t.Error("clone aliases original")
	}
	if !a.Equal(a.Clone()) {
		t.Error("Equal(clone) = false")
	}
	if a.Equal(b) {
		t.Error("Equal across different values")
	}
}

func mustDN(s string) dn.DN { return dn.MustParse(s) }

func mustAdd(t *testing.T, d *DIT, name string, attrs *Attrs) {
	t.Helper()
	if err := d.Add(mustDN(name), attrs); err != nil {
		t.Fatalf("add %s: %v", name, err)
	}
}
