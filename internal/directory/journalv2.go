package directory

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Journal record format v2: length-prefixed binary frames instead of
// newline-delimited JSON. Replay cost dominated cold start at million-entry
// scale (26-31 µs/record of JSON decode, E21); a v2 record decodes with no
// reflection, no intermediate map, and no per-field allocation beyond the
// strings that live on in the DIT, following the same reused-buffer
// discipline as the internal/ber Reader (one payload buffer per replay
// stream, one encode buffer per committer).
//
// Frame layout (all integers little-endian, lengths uvarint):
//
//	0xB2                     frame marker ("v2"); also the format sniff
//	uvarint payloadLen       bytes between here and the checksum
//	payload                  op-tagged record body (below)
//	uint32 CRC32-C           Castagnoli checksum of payload
//
// Payload layout:
//
//	byte   op               1 add | 2 delete | 3 modify | 4 modifydn | 5 entry
//	uvarint seq
//	string DN               (string = uvarint byteLen + bytes)
//	entry:       string normalized DN key (may be empty), then as add
//	add|entry:   uvarint nattrs, then per attribute:
//	             string name, uvarint nvals, string values...
//	modify:      uvarint nchanges, then per change:
//	             byte op (1 add | 2 delete | 3 replace),
//	             string attr, uvarint nvals, string values...
//	modifydn:    string newRDN, byte deleteOldRDN (0|1)
//	delete:      nothing further
//	(optional)   uvarint originSeq, uvarint originNode — the replication
//	             origin stamp, appended after the op-specific fields only
//	             when nonzero. Pre-replication frames simply end earlier;
//	             the decoder reads the stamp iff payload bytes remain, so
//	             both generations round-trip byte-identically.
//
// Entry records — what compaction writes, so what nearly every replayed
// record is after the first restart — carry the entry's normalized DN key,
// which compaction holds anyway (it is the entry's map key): replay skips
// re-normalizing a million DNs it normalized before the crash. An empty
// key field just means "normalize at replay".
//
// The marker byte makes every record self-describing, so one file may hold
// JSON lines followed by v2 frames (a journal appended to after a format
// switch, before the migrating compaction rewrote it — exactly the state a
// crash mid-migration leaves). Replay sniffs the first byte of each record:
// '{' is a JSON line, 0xB2 is a v2 frame. 0xB2 never begins a JSON record
// and '{' never begins a frame.
//
// Torn-tail semantics match the JSON journal's (DESIGN.md §11): a final
// frame cut short by a crash — EOF inside the varint, payload, or checksum
// — is truncated and counted; a complete frame whose checksum or structure
// is wrong is corruption and aborts replay wherever it sits. Tears only
// ever shorten the file, so "incomplete" is the only shape a crash leaves.

const (
	// frameMarkerV2 begins every v2 frame. Deliberately outside ASCII and
	// never the first byte of a JSON record.
	frameMarkerV2 = 0xB2

	// maxV2Payload bounds a single record's declared payload so a corrupt
	// length cannot drive an allocation; far above any real entry.
	maxV2Payload = 64 << 20
)

// Op tags, payload byte 0.
const (
	opTagAdd = iota + 1
	opTagDelete
	opTagModify
	opTagModifyDN
	opTagEntry
)

// Change op tags inside a modify payload.
const (
	changeTagAdd = iota + 1
	changeTagDelete
	changeTagReplace
)

// errTornFrameV2 classifies an incomplete final frame (crash mid-append):
// replay truncates at the frame start and continues, exactly like a torn
// JSON tail.
var errTornFrameV2 = errors.New("directory: torn journal v2 frame")

var crcV2Table = crc32.MakeTable(crc32.Castagnoli)

// v2Encoder marshals records into frames, reusing one payload scratch
// buffer across records (the committer keeps one per pipeline).
type v2Encoder struct {
	payload []byte
}

// appendRecord appends rec as one framed v2 record to dst.
func (e *v2Encoder) appendRecord(dst []byte, rec *UpdateRecord) ([]byte, error) {
	p, err := appendPayloadV2(e.payload[:0], rec)
	if err != nil {
		return dst, err
	}
	e.payload = p
	dst = append(dst, frameMarkerV2)
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	dst = append(dst, p...)
	crc := crc32.Checksum(p, crcV2Table)
	return binary.LittleEndian.AppendUint32(dst, crc), nil
}

func appendStringV2(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

// appendValuesV2 appends a counted string list.
func appendValuesV2(p []byte, vals []string) []byte {
	p = binary.AppendUvarint(p, uint64(len(vals)))
	for _, v := range vals {
		p = appendStringV2(p, v)
	}
	return p
}

// appendPayloadV2 appends rec's payload bytes (no frame) to p. Attribute
// maps encode from rec.attrsDec when the record carries one (compaction's
// fast path — no intermediate map), else from rec.Attrs.
func appendPayloadV2(p []byte, rec *UpdateRecord) ([]byte, error) {
	var tag byte
	switch rec.Op {
	case "add":
		tag = opTagAdd
	case "delete":
		tag = opTagDelete
	case "modify":
		tag = opTagModify
	case "modifydn":
		tag = opTagModifyDN
	case "entry":
		tag = opTagEntry
	default:
		return p, fmt.Errorf("journal v2: unknown op %q", rec.Op)
	}
	p = append(p, tag)
	p = binary.AppendUvarint(p, rec.Seq)
	p = appendStringV2(p, rec.DN)
	if tag == opTagEntry {
		p = appendStringV2(p, rec.normKey)
	}
	switch tag {
	case opTagAdd, opTagEntry:
		if a := rec.attrsDec; a != nil {
			p = binary.AppendUvarint(p, uint64(len(a.fields)))
			for i := range a.fields {
				p = appendStringV2(p, a.fields[i].display)
				p = appendValuesV2(p, a.fields[i].vals)
			}
		} else {
			p = binary.AppendUvarint(p, uint64(len(rec.Attrs)))
			for name, vals := range rec.Attrs {
				p = appendStringV2(p, name)
				p = appendValuesV2(p, vals)
			}
		}
	case opTagModify:
		p = binary.AppendUvarint(p, uint64(len(rec.Changes)))
		for i := range rec.Changes {
			c := &rec.Changes[i]
			var ct byte
			switch c.Op {
			case "add":
				ct = changeTagAdd
			case "delete":
				ct = changeTagDelete
			case "replace":
				ct = changeTagReplace
			default:
				return p, fmt.Errorf("journal v2: unknown change op %q", c.Op)
			}
			p = append(p, ct)
			p = appendStringV2(p, c.Attr)
			p = appendValuesV2(p, c.Values)
		}
	case opTagModifyDN:
		p = appendStringV2(p, rec.NewRDN)
		if rec.DeleteOldRDN {
			p = append(p, 1)
		} else {
			p = append(p, 0)
		}
	}
	if rec.OriginSeq != 0 || rec.OriginNode != 0 {
		p = binary.AppendUvarint(p, rec.OriginSeq)
		p = binary.AppendUvarint(p, uint64(rec.OriginNode))
	}
	return p, nil
}

// v2Decoder reads frames from a buffered stream, reusing one payload buffer
// across records. Decoded records borrow nothing: every string is its own
// copy (it outlives the buffer in the DIT).
type v2Decoder struct {
	payload []byte
	// names caches raw attribute-name spelling -> interned (key, display)
	// for this stream. A journal repeats the same handful of names per
	// record; the cache turns per-record lower()+intern() (two global
	// sync.Map probes and up to two allocations each) into one local map
	// probe with no allocation.
	names map[string]internedName
}

// internedName is a cached attribute name: interned lowered key and
// interned display spelling.
type internedName struct{ key, display string }

func (d *v2Decoder) internName(raw []byte) internedName {
	if in, ok := d.names[string(raw)]; ok { // no alloc: compiler-recognized pattern
		return in
	}
	name := string(raw)
	in := internedName{key: intern(lower(name)), display: intern(name)}
	if d.names == nil {
		d.names = make(map[string]internedName, 16)
	}
	d.names[name] = in
	return in
}

// readFrame reads one frame from r (whose next byte is the marker) and
// decodes it into rec, returning the frame's total byte length. An
// incomplete frame at EOF returns errTornFrameV2; a complete frame that
// fails its checksum or does not parse is corruption and returns a
// descriptive error.
func (d *v2Decoder) readFrame(r *bufio.Reader, rec *UpdateRecord) (int, error) {
	if _, err := r.ReadByte(); err != nil {
		return 0, errTornFrameV2
	}
	n := 1
	plen, vn, err := readUvarintV2(r)
	n += vn
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return n, errTornFrameV2
		}
		return n, err
	}
	if plen > maxV2Payload {
		return n, fmt.Errorf("frame payload %d bytes exceeds limit", plen)
	}
	if uint64(cap(d.payload)) < plen {
		d.payload = make([]byte, plen)
	}
	p := d.payload[:plen]
	if _, err := io.ReadFull(r, p); err != nil {
		return n, errTornFrameV2
	}
	n += int(plen)
	var crcb [4]byte
	if _, err := io.ReadFull(r, crcb[:]); err != nil {
		return n, errTornFrameV2
	}
	n += 4
	if got, want := crc32.Checksum(p, crcV2Table), binary.LittleEndian.Uint32(crcb[:]); got != want {
		return n, fmt.Errorf("frame checksum mismatch (crc32c %08x, frame says %08x)", got, want)
	}
	if err := d.decodePayload(p, rec); err != nil {
		return n, err
	}
	return n, nil
}

// readUvarintV2 is binary.ReadUvarint with a consumed-byte count, so replay
// can track file offsets for torn-tail truncation.
func readUvarintV2(r *bufio.Reader) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, i, err
		}
		if i == binary.MaxVarintLen64 {
			return 0, i + 1, errors.New("uvarint overflows 64 bits")
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, i + 1, errors.New("uvarint overflows 64 bits")
			}
			return x | uint64(b)<<s, i + 1, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// v2cursor walks a payload during decode with bounds checking.
type v2cursor struct {
	b   []byte
	off int
}

var errV2Truncated = errors.New("payload truncated")

func (c *v2cursor) rem() int { return len(c.b) - c.off }

func (c *v2cursor) byte() (byte, error) {
	if c.off >= len(c.b) {
		return 0, errV2Truncated
	}
	b := c.b[c.off]
	c.off++
	return b, nil
}

func (c *v2cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, errV2Truncated
	}
	c.off += n
	return v, nil
}

// count reads a element count and rejects counts that could not fit in the
// remaining payload (each element costs at least min bytes), so a corrupt
// count cannot drive a huge allocation.
func (c *v2cursor) count(min int) (int, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(c.rem()/min) {
		return 0, fmt.Errorf("count %d exceeds remaining payload", v)
	}
	return int(v), nil
}

func (c *v2cursor) str() (string, error) {
	b, err := c.strBytes()
	return string(b), err
}

// strBytes returns the next string's bytes without copying; the slice
// aliases the payload buffer and is only valid until the next frame.
func (c *v2cursor) strBytes() ([]byte, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(c.rem()) {
		return nil, errV2Truncated
	}
	b := c.b[c.off : c.off+int(n)]
	c.off += int(n)
	return b, nil
}

func (c *v2cursor) values() ([]string, error) {
	n, err := c.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil // round-trip fidelity: absent and empty both encode as 0
	}
	vals := make([]string, 0, n)
	for i := 0; i < n; i++ {
		v, err := c.str()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// decodePayload parses one checksum-verified payload into rec. For
// add/entry records the attributes decode straight into an *Attrs
// (rec.attrsDec) with interned names — replay installs it without the
// map[string][]string round trip the JSON path pays.
func (d *v2Decoder) decodePayload(p []byte, rec *UpdateRecord) error {
	*rec = UpdateRecord{}
	c := v2cursor{b: p}
	tag, err := c.byte()
	if err != nil {
		return err
	}
	if rec.Seq, err = c.uvarint(); err != nil {
		return err
	}
	if rec.DN, err = c.str(); err != nil {
		return err
	}
	switch tag {
	case opTagAdd, opTagEntry:
		if tag == opTagAdd {
			rec.Op = "add"
		} else {
			rec.Op = "entry"
			if rec.normKey, err = c.str(); err != nil {
				return err
			}
		}
		// name + empty value list = 2 bytes minimum per attribute.
		na, err := c.count(2)
		if err != nil {
			return err
		}
		a := &Attrs{fields: make([]attrField, 0, na)}
		for i := 0; i < na; i++ {
			name, err := c.strBytes()
			if err != nil {
				return err
			}
			vals, err := c.values()
			if err != nil {
				return err
			}
			in := d.internName(name)
			a.fields = append(a.fields, attrField{
				key: in.key, display: in.display, vals: vals})
		}
		rec.attrsDec = a
	case opTagDelete:
		rec.Op = "delete"
	case opTagModify:
		rec.Op = "modify"
		// op byte + attr + empty value list = 3 bytes minimum per change.
		nc, err := c.count(3)
		if err != nil {
			return err
		}
		rec.Changes = make([]UpdateChange, 0, nc)
		for i := 0; i < nc; i++ {
			ct, err := c.byte()
			if err != nil {
				return err
			}
			var op string
			switch ct {
			case changeTagAdd:
				op = "add"
			case changeTagDelete:
				op = "delete"
			case changeTagReplace:
				op = "replace"
			default:
				return fmt.Errorf("unknown change tag %d", ct)
			}
			attr, err := c.str()
			if err != nil {
				return err
			}
			vals, err := c.values()
			if err != nil {
				return err
			}
			rec.Changes = append(rec.Changes, UpdateChange{Op: op, Attr: attr, Values: vals})
		}
	case opTagModifyDN:
		rec.Op = "modifydn"
		if rec.NewRDN, err = c.str(); err != nil {
			return err
		}
		b, err := c.byte()
		if err != nil {
			return err
		}
		rec.DeleteOldRDN = b != 0
	default:
		return fmt.Errorf("unknown op tag %d", tag)
	}
	if c.rem() > 0 {
		// Optional trailing origin stamp (absent on pre-replication frames).
		os, err := c.uvarint()
		if err != nil {
			return err
		}
		on, err := c.uvarint()
		if err != nil {
			return err
		}
		if on > 1<<32-1 {
			return fmt.Errorf("origin node %d overflows 32 bits", on)
		}
		rec.OriginSeq, rec.OriginNode = os, uint32(on)
	}
	if c.rem() != 0 {
		return fmt.Errorf("%d trailing payload bytes", c.rem())
	}
	return nil
}
