package directory

import (
	"strings"

	"metacomm/internal/ldap"
)

// Equality and presence indexes. Directory servers index the attributes
// their workloads search by; MetaComm's update path locates entries by
// device key (definityExtension, mailboxNumber) on every translated update,
// so without an index each update pays a full scan.
//
// Each segment keeps its own postings for every indexed attribute,
// maintained inside that segment's lock on every committed update: value ->
// normalized-DN set for equality terms, and the presence set (every DN
// carrying the attribute) for (attr=*) probes. Search consults them
// per segment for equality and presence filters (including such terms
// inside an AND) and verifies candidates against scope and the full
// filter, so indexed results are always exactly the scan results.

type attrIndex map[string]*attrPosting

// attrPosting holds one attribute's postings within one segment.
type attrPosting struct {
	// values maps lower-cased value -> normalized-DN set.
	values map[string]map[string]bool
	// present is the set of normalized DNs carrying the attribute at all.
	present map[string]bool
}

func newAttrPosting() *attrPosting {
	return &attrPosting{values: map[string]map[string]bool{}, present: map[string]bool{}}
}

// EnableIndexes builds equality+presence indexes over the named attributes
// and keeps them maintained. Safe to call on a populated DIT; existing
// entries are indexed immediately.
func (d *DIT) EnableIndexes(attrs ...string) {
	// Reuse the attach worker pool size: after a parallel journal replay
	// the initial posting build is the other population-sized cost.
	workers := 1
	if r := d.replay.Load(); r != nil && r.Workers > workers {
		workers = r.Workers
	}
	d.enableIndexes(workers, attrs)
}

// enableIndexes is EnableIndexes with a worker count: each segment's
// postings touch only that segment, so on an attach with a worker pool
// the initial build fans out per segment. workers <= 1 keeps the
// sequential path.
func (d *DIT) enableIndexes(workers int, attrs []string) {
	d.lockAll()
	defer d.unlockAll()
	var added []string
	for _, a := range attrs {
		k := lower(a)
		dup := false
		for _, have := range d.indexed {
			if have == k {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		d.indexed = append(d.indexed, k)
		added = append(added, k)
	}
	if len(added) == 0 {
		return
	}
	forEachIdx(workers, len(d.segs), func(i int) {
		s := d.segs[i]
		if s.indexes == nil {
			s.indexes = attrIndex{}
		}
		for _, k := range added {
			p := newAttrPosting()
			for key, n := range s.entries {
				p.index(n.attrs.Get(k), key)
			}
			s.indexes[k] = p
		}
	})
}

// IndexedAttrs lists the indexed attributes (lowered spellings).
func (d *DIT) IndexedAttrs() []string {
	s := d.segs[0]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), d.indexed...)
}

// index adds an entry's values for this attribute to both postings.
func (p *attrPosting) index(values []string, dnKey string) {
	for _, v := range values {
		vk := strings.ToLower(v)
		set := p.values[vk]
		if set == nil {
			set = map[string]bool{}
			p.values[vk] = set
		}
		set[dnKey] = true
	}
	if len(values) > 0 {
		p.present[dnKey] = true
	}
}

// unindex removes an entry's values for this attribute from both postings.
func (p *attrPosting) unindex(values []string, dnKey string) {
	for _, v := range values {
		vk := strings.ToLower(v)
		if set := p.values[vk]; set != nil {
			delete(set, dnKey)
			if len(set) == 0 {
				delete(p.values, vk)
			}
		}
	}
	delete(p.present, dnKey)
}

// indexEntry adds every indexed attribute of the entry. Caller holds the
// segment lock.
func (s *segment) indexEntry(dnKey string, attrs *Attrs) {
	for a, p := range s.indexes {
		p.index(attrs.Get(a), dnKey)
	}
}

// unindexEntry removes every indexed attribute of the entry. Caller holds
// the segment lock.
func (s *segment) unindexEntry(dnKey string, attrs *Attrs) {
	for a, p := range s.indexes {
		p.unindex(attrs.Get(a), dnKey)
	}
}

// reindexEntry moves an entry's index postings from old to new state.
// Caller holds the segment lock.
func (s *segment) reindexEntry(dnKey string, old, new *Attrs) {
	for a, p := range s.indexes {
		ov, nv := old.Get(a), new.Get(a)
		if sameStrings(ov, nv) {
			continue
		}
		p.unindex(ov, dnKey)
		p.index(nv, dnKey)
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// indexCandidates returns this segment's candidate DN-key set for a filter,
// or (nil, false) when the filter has no usable indexed equality or
// presence term. An AND uses its most selective indexed term; the
// candidates are a superset of the answer only in the AND case, never
// missing matches, because every returned entry is still verified against
// the full filter. Caller holds the segment lock.
func (s *segment) indexCandidates(f *ldap.Filter) (map[string]bool, bool) {
	if len(s.indexes) == 0 || f == nil {
		return nil, false
	}
	switch f.Kind {
	case ldap.FilterEquality:
		p, ok := s.indexes[lower(f.Attr)]
		if !ok {
			return nil, false
		}
		return p.values[strings.ToLower(f.Value)], true
	case ldap.FilterPresent:
		p, ok := s.indexes[lower(f.Attr)]
		if !ok {
			return nil, false
		}
		return p.present, true
	case ldap.FilterAnd:
		var best map[string]bool
		found := false
		for _, c := range f.Children {
			if set, ok := s.indexCandidates(c); ok {
				if !found || len(set) < len(best) {
					best, found = set, true
				}
			}
		}
		return best, found
	}
	return nil, false
}
