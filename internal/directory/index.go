package directory

import (
	"strings"

	"metacomm/internal/ldap"
)

// Equality indexes. Directory servers index the attributes their workloads
// search by; MetaComm's update path locates entries by device key
// (definityExtension, mailboxNumber) on every translated update, so without
// an index each update pays a full scan.
//
// The index maps attribute -> value -> normalized-DN set, maintained inside
// the DIT's lock on every committed update. Search consults it for equality
// filters (including equality terms inside an AND) and verifies candidates
// against scope and the full filter, so indexed results are always exactly
// the scan results.

type attrIndex map[string]map[string]map[string]bool

// EnableIndexes builds equality indexes over the named attributes and keeps
// them maintained. Safe to call on a populated DIT; existing entries are
// indexed immediately.
func (d *DIT) EnableIndexes(attrs ...string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.indexes == nil {
		d.indexes = attrIndex{}
	}
	for _, a := range attrs {
		k := lower(a)
		if _, dup := d.indexes[k]; dup {
			continue
		}
		idx := map[string]map[string]bool{}
		for key, n := range d.entries {
			for _, v := range n.attrs.Get(k) {
				addToIndex(idx, v, key)
			}
		}
		d.indexes[k] = idx
	}
}

// IndexedAttrs lists the indexed attributes (sorted order not guaranteed).
func (d *DIT) IndexedAttrs() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.indexes))
	for a := range d.indexes {
		out = append(out, a)
	}
	return out
}

func addToIndex(idx map[string]map[string]bool, value, dnKey string) {
	vk := strings.ToLower(value)
	set := idx[vk]
	if set == nil {
		set = map[string]bool{}
		idx[vk] = set
	}
	set[dnKey] = true
}

func removeFromIndex(idx map[string]map[string]bool, value, dnKey string) {
	vk := strings.ToLower(value)
	if set := idx[vk]; set != nil {
		delete(set, dnKey)
		if len(set) == 0 {
			delete(idx, vk)
		}
	}
}

// indexEntry adds every indexed attribute of the entry. Caller holds d.mu.
func (d *DIT) indexEntry(dnKey string, attrs *Attrs) {
	for a, idx := range d.indexes {
		for _, v := range attrs.Get(a) {
			addToIndex(idx, v, dnKey)
		}
	}
}

// unindexEntry removes every indexed attribute of the entry. Caller holds
// d.mu.
func (d *DIT) unindexEntry(dnKey string, attrs *Attrs) {
	for a, idx := range d.indexes {
		for _, v := range attrs.Get(a) {
			removeFromIndex(idx, v, dnKey)
		}
	}
}

// reindexEntry moves an entry's index postings from old to new state.
// Caller holds d.mu.
func (d *DIT) reindexEntry(dnKey string, old, new *Attrs) {
	for a, idx := range d.indexes {
		ov, nv := old.Get(a), new.Get(a)
		if sameStrings(ov, nv) {
			continue
		}
		for _, v := range ov {
			removeFromIndex(idx, v, dnKey)
		}
		for _, v := range nv {
			addToIndex(idx, v, dnKey)
		}
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// indexCandidates returns the candidate DN-key set for a filter, or
// (nil, false) when the filter has no usable indexed equality term. An AND
// uses its most selective indexed term; the candidates are a superset of
// the answer only in the AND case, never missing matches, because every
// returned entry is still verified against the full filter.
func (d *DIT) indexCandidates(f *ldap.Filter) (map[string]bool, bool) {
	if len(d.indexes) == 0 || f == nil {
		return nil, false
	}
	switch f.Kind {
	case ldap.FilterEquality:
		idx, ok := d.indexes[lower(f.Attr)]
		if !ok {
			return nil, false
		}
		return idx[strings.ToLower(f.Value)], true
	case ldap.FilterAnd:
		var best map[string]bool
		found := false
		for _, c := range f.Children {
			if set, ok := d.indexCandidates(c); ok {
				if !found || len(set) < len(best) {
					best, found = set, true
				}
			}
		}
		return best, found
	}
	return nil, false
}
