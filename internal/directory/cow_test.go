package directory

import (
	"fmt"
	"sync"
	"testing"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

// These tests pin the copy-on-write read path's concurrency contract: a
// Search racing an update sees a consistent before-or-after image of every
// entry, never a torn one. Run them under -race (scripts/check.sh does).

func TestSearchDuringModifyRace(t *testing.T) {
	d := New(nil)
	d.EnableIndexes("cn")
	if err := d.Add(dn.MustParse("o=Lucent"), org("Lucent")); err != nil {
		t.Fatal(err)
	}
	name := dn.MustParse("cn=Racer,o=Lucent")
	attrs := AttrsFrom(map[string][]string{
		"objectClass":     {"person"},
		"cn":              {"Racer"},
		"roomNumber":      {"0"},
		"telephoneNumber": {"0"},
	})
	if err := d.Add(name, attrs); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		// Each update replaces both attributes to the same token; a torn
		// read would show them disagreeing.
		for i := 1; i <= 2000; i++ {
			v := fmt.Sprint(i)
			err := d.Modify(name, []ldap.Change{
				{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{v}}},
				{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "telephoneNumber", Values: []string{v}}},
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	base := dn.MustParse("o=Lucent")
	filters := []*ldap.Filter{
		ldap.Eq("cn", "Racer"),    // indexed equality path
		ldap.Present("cn"),        // indexed presence path
		ldap.Eq("roomNumber", ""), // placeholder, replaced below
	}
	filters[2], _ = ldap.ParseFilter("(telephoneNumber=*)") // unindexed scan path
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(f *ldap.Filter) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := d.Search(base, ldap.ScopeWholeSubtree, f, 0)
				if err != nil {
					t.Error(err)
					return
				}
				for _, e := range got {
					room, tel := e.Attrs.First("roomNumber"), e.Attrs.First("telephoneNumber")
					if room != tel {
						t.Errorf("torn read: roomNumber=%q telephoneNumber=%q", room, tel)
						return
					}
				}
			}
		}(filters[r])
	}
	wg.Wait()
}

func TestSearchDuringModifyDNRace(t *testing.T) {
	d := New(nil)
	d.EnableIndexes("cn")
	if err := d.Add(dn.MustParse("o=Lucent"), org("Lucent")); err != nil {
		t.Fatal(err)
	}
	cur := dn.MustParse("cn=Flip,o=Lucent")
	if err := d.Add(cur, AttrsFrom(map[string][]string{
		"objectClass": {"person"}, "cn": {"Flip"},
	})); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		names := []string{"Flop", "Flip"}
		for i := 0; i < 1000; i++ {
			next := names[i%2]
			if err := d.ModifyDN(cur, dn.RDN{{Attr: "cn", Value: next}}, true); err != nil {
				t.Error(err)
				return
			}
			cur = dn.MustParse(fmt.Sprintf("cn=%s,o=Lucent", next))
		}
	}()

	base := dn.MustParse("o=Lucent")
	f, _ := ldap.ParseFilter("(objectClass=person)")
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := d.Search(base, ldap.ScopeWholeSubtree, f, 0)
				if err != nil {
					t.Error(err)
					return
				}
				// A consistent image has the entry's RDN value present in
				// its cn attribute (deleteOldRDN keeps them in lockstep).
				for _, e := range got {
					rdn := e.DN.FirstValue("cn")
					if !e.Attrs.HasValue("cn", rdn) {
						t.Errorf("torn rename: DN rdn %q not in cn %v", rdn, e.Attrs.Get("cn"))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
