package directory

import (
	"fmt"
	"strings"
	"sync"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

// Error is a directory error carrying an LDAP result code.
type Error struct {
	Code ldap.ResultCode
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("directory: %s: %s", e.Code, e.Msg) }

// errf builds an *Error.
func errf(code ldap.ResultCode, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the LDAP result code from a directory error, defaulting to
// ResultOther.
func CodeOf(err error) ldap.ResultCode {
	if err == nil {
		return ldap.ResultSuccess
	}
	if de, ok := err.(*Error); ok {
		return de.Code
	}
	if c, ok := ldap.Code(err); ok {
		return c
	}
	return ldap.ResultOther
}

// Entry is a snapshot of a directory entry: its DN and attributes. The
// attribute values are copy-on-write: updates install a fresh *Attrs, so
// entries returned by the DIT share the tree's immutable attribute values
// instead of paying a deep copy per entry. Callers MUST NOT mutate a
// returned entry's Attrs — use Clone() first for a private mutable copy.
// An entry held across later updates keeps its point-in-time values.
type Entry struct {
	DN    dn.DN
	Attrs *Attrs
}

// Clone returns a deep copy of the entry.
func (e Entry) Clone() Entry {
	return Entry{DN: append(dn.DN(nil), e.DN...), Attrs: e.Attrs.Clone()}
}

// node fields are read and written only under DIT.mu. The *Attrs object a
// node points to (and the backing array of its dn) is immutable once
// installed: updates build a fresh value and swap the pointer, never mutate
// through it. Search relies on this to evaluate snapshots outside the lock.
type node struct {
	dn dn.DN
	// key caches dn.Normalize() — also this node's key in DIT.entries.
	// DN normalization (lower-casing and re-joining every RDN) is too
	// expensive to recompute on the search path, where results are sorted
	// by it; it is maintained at Add/ModifyDN time instead.
	key      string
	attrs    *Attrs
	children map[string]bool // normalized child DNs
}

// DIT is the in-memory directory information tree. All operations are
// individually atomic under an internal lock; there is deliberately no
// multi-operation transaction facility, matching the paper's substrate.
//
// Write path (DESIGN.md §11): under d.mu an update validates, applies in
// memory, takes its commit seq, and stages its journal record; the caller
// then waits OUTSIDE the lock for the group committer's durability
// notification. Journal I/O, record marshaling, and changelog fan-out all
// run off the critical section, so the lock hold time of a write is the
// in-memory mutation only and durable throughput is bounded by fsyncs per
// GROUP rather than per update. Unjournaled DITs commit and emit inline.
type DIT struct {
	mu      sync.RWMutex
	entries map[string]*node
	schema  *Schema
	// indexes holds the equality indexes (see index.go); nil when none are
	// enabled.
	indexes attrIndex
	// journal, when attached, receives a write-ahead record of every
	// committed update through the group-commit pipeline (see persist.go);
	// commit is that pipeline.
	journal *Journal
	commit  *committer
	// subs are changelog subscribers, under their own lock so the
	// committer can fan out without d.mu (see changelog.go).
	subMu sync.Mutex
	subs  []*changeSub
	// seq counts committed updates; used by tests and the synchronization
	// logic to detect change cheaply.
	seq uint64
}

// New returns an empty DIT. schema may be nil to disable validation.
func New(schema *Schema) *DIT {
	return &DIT{entries: map[string]*node{}, schema: schema}
}

// Schema returns the schema in force (nil when unvalidated).
func (d *DIT) Schema() *Schema { return d.schema }

// Seq returns the number of committed updates.
func (d *DIT) Seq() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.seq
}

// Len returns the number of entries.
func (d *DIT) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// Add creates a new leaf entry. The parent must exist (except for
// depth-1 suffix entries). RDN attribute values are folded into the entry's
// attributes as LDAP requires.
func (d *DIT) Add(name dn.DN, attrs *Attrs) error {
	if name.IsRoot() {
		return errf(ldap.ResultInvalidDNSyntax, "cannot add root entry")
	}
	a := attrs.Clone()
	for _, ava := range name.RDN() {
		if !a.HasValue(ava.Attr, ava.Value) {
			a.Add(ava.Attr, ava.Value)
		}
	}
	if d.schema != nil {
		a = canonicalDisplay(a, d.schema)
	}
	if d.schema != nil {
		if err := d.schema.CheckEntry(a); err != nil {
			return err
		}
	}

	d.mu.Lock()
	t, err := d.addLocked(name, a)
	d.mu.Unlock()
	if err != nil {
		return err
	}
	return t.Wait()
}

func (d *DIT) addLocked(name dn.DN, a *Attrs) (commitTicket, error) {
	key := name.Normalize()
	if _, exists := d.entries[key]; exists {
		return commitTicket{}, errf(ldap.ResultEntryAlreadyExists, "entry %q already exists", name)
	}
	parent := name.Parent()
	parentKey := parent.Normalize()
	if !parent.IsRoot() {
		if _, ok := d.entries[parentKey]; !ok {
			return commitTicket{}, errf(ldap.ResultNoSuchObject, "parent of %q does not exist", name)
		}
	}
	if err := d.commitReadyLocked(); err != nil {
		return commitTicket{}, err
	}
	if p, ok := d.entries[parentKey]; ok {
		p.children[key] = true
	}
	d.entries[key] = &node{dn: name, key: key, attrs: a, children: map[string]bool{}}
	d.indexEntry(key, a)
	d.seq++
	rec := UpdateRecord{Seq: d.seq, Op: "add", DN: name.String(), Attrs: a.Map()}
	return d.commitLocked(rec), nil
}

// Delete removes a leaf entry.
func (d *DIT) Delete(name dn.DN) error {
	d.mu.Lock()
	t, err := d.deleteLocked(name)
	d.mu.Unlock()
	if err != nil {
		return err
	}
	return t.Wait()
}

func (d *DIT) deleteLocked(name dn.DN) (commitTicket, error) {
	key := name.Normalize()
	n, ok := d.entries[key]
	if !ok {
		return commitTicket{}, errf(ldap.ResultNoSuchObject, "no entry %q", name)
	}
	if len(n.children) > 0 {
		return commitTicket{}, errf(ldap.ResultNotAllowedOnNonLeaf, "entry %q has children", name)
	}
	if err := d.commitReadyLocked(); err != nil {
		return commitTicket{}, err
	}
	delete(d.entries, key)
	d.unindexEntry(key, n.attrs)
	if p, ok := d.entries[name.Parent().Normalize()]; ok {
		delete(p.children, key)
	}
	d.seq++
	rec := UpdateRecord{Seq: d.seq, Op: "delete", DN: name.String()}
	return d.commitLocked(rec), nil
}

// Modify applies a sequence of changes to one entry atomically: either all
// changes apply and the result passes schema validation, or none do.
// Attribute values that appear in the entry's RDN may not be removed
// (notAllowedOnRDN) — that requires ModifyDN, which is precisely the
// non-atomicity the paper wrestles with.
func (d *DIT) Modify(name dn.DN, changes []ldap.Change) error {
	d.mu.Lock()
	t, err := d.modifyLocked(name, changes)
	d.mu.Unlock()
	if err != nil {
		return err
	}
	return t.Wait()
}

func (d *DIT) modifyLocked(name dn.DN, changes []ldap.Change) (commitTicket, error) {
	key := name.Normalize()
	n, ok := d.entries[key]
	if !ok {
		return commitTicket{}, errf(ldap.ResultNoSuchObject, "no entry %q", name)
	}
	work := n.attrs.Clone()
	for _, c := range changes {
		attr := c.Attribute.Type
		if d.schema != nil {
			attr = d.schema.DisplayName(attr)
		}
		switch c.Op {
		case ldap.ModAdd:
			if len(c.Attribute.Values) == 0 {
				return commitTicket{}, errf(ldap.ResultProtocolError, "add of %q without values", attr)
			}
			for _, v := range c.Attribute.Values {
				if !work.Add(attr, v) {
					return commitTicket{}, errf(ldap.ResultAttributeOrValueExists, "%q already has value %q", attr, v)
				}
			}
		case ldap.ModDelete:
			if d.rdnProtects(name, attr, c.Attribute.Values) {
				return commitTicket{}, errf(ldap.ResultNotAllowedOnRDN, "attribute %q is part of the RDN", attr)
			}
			if len(c.Attribute.Values) == 0 {
				if !work.Delete(attr) {
					return commitTicket{}, errf(ldap.ResultNoSuchAttribute, "no attribute %q", attr)
				}
			} else {
				for _, v := range c.Attribute.Values {
					if !work.DeleteValue(attr, v) {
						return commitTicket{}, errf(ldap.ResultNoSuchAttribute, "no value %q for %q", v, attr)
					}
				}
			}
		case ldap.ModReplace:
			if d.rdnProtects(name, attr, c.Attribute.Values) {
				return commitTicket{}, errf(ldap.ResultNotAllowedOnRDN, "attribute %q is part of the RDN", attr)
			}
			work.Put(attr, c.Attribute.Values...)
		default:
			return commitTicket{}, errf(ldap.ResultProtocolError, "unknown modify op %d", c.Op)
		}
	}
	if d.schema != nil {
		if err := d.schema.CheckEntry(work); err != nil {
			return commitTicket{}, err
		}
	}
	if err := d.commitReadyLocked(); err != nil {
		return commitTicket{}, err
	}
	d.reindexEntry(key, n.attrs, work)
	n.attrs = work
	d.seq++
	rec := modifyRecord(name, changes)
	rec.Seq = d.seq
	return d.commitLocked(rec), nil
}

// modifyRecord converts a change list into its journal form.
func modifyRecord(name dn.DN, changes []ldap.Change) UpdateRecord {
	rec := UpdateRecord{Op: "modify", DN: name.String()}
	for _, c := range changes {
		rec.Changes = append(rec.Changes, UpdateChange{
			Op: c.Op.String(), Attr: c.Attribute.Type, Values: c.Attribute.Values})
	}
	return rec
}

// canonicalDisplay rewrites attribute names to the schema's spelling.
func canonicalDisplay(a *Attrs, s *Schema) *Attrs {
	out := NewAttrs()
	for _, n := range a.Names() {
		out.Put(s.DisplayName(n), a.Get(n)...)
	}
	return out
}

// rdnProtects reports whether removing/replacing attr with newValues would
// strip an RDN value from the entry.
func (d *DIT) rdnProtects(name dn.DN, attr string, newValues []string) bool {
	for _, ava := range name.RDN() {
		if !strings.EqualFold(ava.Attr, attr) {
			continue
		}
		for _, v := range newValues {
			if strings.EqualFold(v, ava.Value) {
				return false // value retained
			}
		}
		return true
	}
	return false
}

// ModifyDN renames an entry (and its subtree) to a new leaf RDN. The old
// RDN values are removed from the attributes when deleteOldRDN is set; the
// new RDN values are added.
func (d *DIT) ModifyDN(name dn.DN, newRDN dn.RDN, deleteOldRDN bool) error {
	d.mu.Lock()
	t, err := d.modifyDNLocked(name, newRDN, deleteOldRDN)
	d.mu.Unlock()
	if err != nil {
		return err
	}
	return t.Wait()
}

func (d *DIT) modifyDNLocked(name dn.DN, newRDN dn.RDN, deleteOldRDN bool) (commitTicket, error) {
	key := name.Normalize()
	n, ok := d.entries[key]
	if !ok {
		return commitTicket{}, errf(ldap.ResultNoSuchObject, "no entry %q", name)
	}
	newDN := name.WithRDN(newRDN)
	newKey := newDN.Normalize()
	if newKey == key {
		return commitTicket{}, nil
	}
	if _, exists := d.entries[newKey]; exists {
		return commitTicket{}, errf(ldap.ResultEntryAlreadyExists, "entry %q already exists", newDN)
	}
	work := n.attrs.Clone()
	if deleteOldRDN {
		for _, ava := range name.RDN() {
			work.DeleteValue(ava.Attr, ava.Value)
		}
	}
	for _, ava := range newRDN {
		if !work.HasValue(ava.Attr, ava.Value) {
			work.Add(ava.Attr, ava.Value)
		}
	}
	if d.schema != nil {
		if err := d.schema.CheckEntry(work); err != nil {
			return commitTicket{}, err
		}
	}
	if err := d.commitReadyLocked(); err != nil {
		return commitTicket{}, err
	}

	// Collect the subtree, then rewrite keys.
	var subtree []*node
	var collect func(*node)
	collect = func(nd *node) {
		subtree = append(subtree, nd)
		for ck := range nd.children {
			collect(d.entries[ck])
		}
	}
	collect(n)
	for _, nd := range subtree {
		d.unindexEntry(nd.key, nd.attrs)
	}

	if p, ok := d.entries[name.Parent().Normalize()]; ok {
		delete(p.children, key)
		p.children[newKey] = true
	}
	depth := name.Depth()
	for _, nd := range subtree {
		delete(d.entries, nd.key)
	}
	for _, nd := range subtree {
		suffixStart := nd.dn.Depth() - depth
		rebased := make(dn.DN, 0, nd.dn.Depth())
		rebased = append(rebased, nd.dn[:suffixStart]...)
		rebased = append(rebased, newDN...)
		nd.dn = rebased
		nd.children = map[string]bool{}
	}
	n.attrs = work
	for _, nd := range subtree {
		k := nd.dn.Normalize()
		nd.key = k
		d.entries[k] = nd
		d.indexEntry(k, nd.attrs)
		if pk := nd.dn.Parent().Normalize(); pk != "" {
			if p, ok := d.entries[pk]; ok {
				p.children[k] = true
			}
		}
	}
	d.seq++
	rec := UpdateRecord{Seq: d.seq, Op: "modifydn", DN: name.String(),
		NewRDN: newRDN.String(), DeleteOldRDN: deleteOldRDN}
	return d.commitLocked(rec), nil
}

// Get returns the entry at name. The returned attributes are a shared
// immutable snapshot (see Entry).
func (d *DIT) Get(name dn.DN) (Entry, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, ok := d.entries[name.Normalize()]
	if !ok {
		return Entry{}, errf(ldap.ResultNoSuchObject, "no entry %q", name)
	}
	return Entry{DN: n.dn, Attrs: n.attrs}, nil
}

// Compare tests an attribute/value assertion against an entry.
func (d *DIT) Compare(name dn.DN, attr, value string) (bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, ok := d.entries[name.Normalize()]
	if !ok {
		return false, errf(ldap.ResultNoSuchObject, "no entry %q", name)
	}
	return n.attrs.HasValue(attr, value), nil
}

// Search evaluates filter over the entries selected by base and scope and
// returns matching entries sorted by DN depth then name (parents before
// children), truncated at sizeLimit when positive. Truncated result sets
// are sorted among themselves but are not the depth-first prefix of the
// full answer — LDAP promises no ordering, and stopping at the limit is
// what keeps bounded searches cheap on large trees.
//
// The lock is held only while collecting candidate (DN, *Attrs) pairs;
// filter verification and sorting run on that snapshot outside d.mu.
// Attribute values are immutable once installed (every update builds a
// fresh *Attrs), so the snapshot stays consistent with no coordination and
// the returned entries share it without cloning — readers never block
// writers for the duration of filter evaluation, and writers never tear an
// entry a reader is matching.
func (d *DIT) Search(base dn.DN, scope ldap.Scope, filter *ldap.Filter, sizeLimit int) ([]Entry, error) {
	if filter == nil {
		// An AND of zero terms is vacuously true: match everything.
		filter = &ldap.Filter{Kind: ldap.FilterAnd}
	}
	cands, err := d.collectCandidates(base, scope, filter)
	if err != nil {
		return nil, err
	}
	var out []Entry
	var keys []string
	for _, c := range cands {
		if !filter.Matches(c.attrs.Get) {
			continue
		}
		out = append(out, Entry{DN: c.dn, Attrs: c.attrs})
		keys = append(keys, c.key)
		if sizeLimit > 0 && len(out) > sizeLimit {
			// One over the limit proves the limit is exceeded; stop
			// materializing instead of verifying the whole candidate set.
			break
		}
	}
	sortEntries(out, keys)
	if sizeLimit > 0 && len(out) > sizeLimit {
		return out[:sizeLimit], errf(ldap.ResultSizeLimitExceeded, "size limit %d exceeded", sizeLimit)
	}
	return out, nil
}

// searchCand is one node's read snapshot: the DN (plus its cached
// normalized form, for sorting without re-normalizing) and the immutable
// attribute value current at collection time.
type searchCand struct {
	dn    dn.DN
	key   string
	attrs *Attrs
}

// collectCandidates gathers the scope-selected (or index-selected) nodes
// under the read lock. It copies only a DN slice header and an *Attrs
// pointer per node — the cheap snapshot Search evaluates lock-free.
func (d *DIT) collectCandidates(base dn.DN, scope ldap.Scope, filter *ldap.Filter) ([]searchCand, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()

	baseKey := base.Normalize()
	if !base.IsRoot() {
		if _, ok := d.entries[baseKey]; !ok {
			return nil, errf(ldap.ResultNoSuchObject, "search base %q does not exist", base)
		}
	}
	var cands []searchCand
	add := func(n *node) { cands = append(cands, searchCand{dn: n.dn, key: n.key, attrs: n.attrs}) }
	switch scope {
	case ldap.ScopeBaseObject:
		if n, ok := d.entries[baseKey]; ok {
			add(n)
		}
	case ldap.ScopeSingleLevel:
		if base.IsRoot() {
			for _, n := range d.entries {
				if n.dn.Depth() == 1 {
					add(n)
				}
			}
		} else if n, ok := d.entries[baseKey]; ok {
			for ck := range n.children {
				add(d.entries[ck])
			}
		}
	case ldap.ScopeWholeSubtree:
		if keys, ok := d.indexCandidates(filter); ok {
			// Indexed fast path: scope-check the candidate set only; the
			// full filter is still verified on every returned entry.
			for key := range keys {
				n := d.entries[key]
				if n == nil {
					continue
				}
				if base.IsRoot() || key == baseKey || n.dn.IsDescendantOf(base) {
					add(n)
				}
			}
			break
		}
		for _, n := range d.entries {
			if base.IsRoot() || n.key == baseKey || n.dn.IsDescendantOf(base) {
				add(n)
			}
		}
	default:
		return nil, errf(ldap.ResultProtocolError, "unknown scope %d", scope)
	}
	return cands, nil
}

// All returns every entry, parents before children. Used by the UM's
// synchronization facility to dump the directory.
func (d *DIT) All() []Entry {
	out, _ := d.Search(dn.DN{}, ldap.ScopeWholeSubtree, nil, 0)
	return out
}
