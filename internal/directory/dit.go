package directory

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

// Error is a directory error carrying an LDAP result code.
type Error struct {
	Code ldap.ResultCode
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("directory: %s: %s", e.Code, e.Msg) }

// errf builds an *Error.
func errf(code ldap.ResultCode, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the LDAP result code from a directory error, defaulting to
// ResultOther.
func CodeOf(err error) ldap.ResultCode {
	if err == nil {
		return ldap.ResultSuccess
	}
	if de, ok := err.(*Error); ok {
		return de.Code
	}
	if c, ok := ldap.Code(err); ok {
		return c
	}
	return ldap.ResultOther
}

// Entry is a snapshot of a directory entry: its DN and attributes. The
// attribute values are copy-on-write: updates install a fresh *Attrs, so
// entries returned by the DIT share the tree's immutable attribute values
// instead of paying a deep copy per entry. Callers MUST NOT mutate a
// returned entry's Attrs — use Clone() first for a private mutable copy.
// An entry held across later updates keeps its point-in-time values.
type Entry struct {
	DN    dn.DN
	Attrs *Attrs
}

// Clone returns a deep copy of the entry.
func (e Entry) Clone() Entry {
	return Entry{DN: append(dn.DN(nil), e.DN...), Attrs: e.Attrs.Clone()}
}

// node fields are read and written only under the owning segment's lock.
// The *Attrs object a node points to (and the backing array of its dn) is
// immutable once installed: updates build a fresh value and swap the
// pointer, never mutate through it. Search relies on this to evaluate
// snapshots outside the lock.
type node struct {
	dn dn.DN
	// key caches dn.Normalize() — also this node's key in segment.entries.
	// DN normalization (lower-casing and re-joining every RDN) is too
	// expensive to recompute on the search path, where results are sorted
	// by it; it is maintained at Add/ModifyDN time instead.
	key   string
	attrs *Attrs
	// stamp is the origin (Lamport-seq, node-id) of the write that
	// installed attrs — the last-writer-wins coordinate for multi-master
	// replication (replication.go). Zero on entries restored from
	// pre-replication journals.
	stamp Stamp
	// children holds normalized child DNs; nil until the first child
	// arrives, because at million-entry scale most entries are leaves and
	// an empty map per leaf is measurable heap.
	children map[string]bool
}

func (n *node) addChild(key string) {
	if n.children == nil {
		n.children = make(map[string]bool, 1)
	}
	n.children[key] = true
}

// segment is one DN-hash partition of the DIT: its own entry map, its own
// equality indexes, its own journal file, and its own group-commit
// pipeline, all behind its own lock. Writes touching a single entry lock
// only the (entry, parent) segments; nothing a segment does blocks the
// others.
type segment struct {
	id      int
	mu      sync.RWMutex
	entries map[string]*node
	// indexes holds this segment's share of the equality indexes (see
	// index.go); nil when none are enabled.
	indexes attrIndex
	// tombstones remembers deleted keys and the stamps that deleted them
	// so a concurrent losing upsert arriving later cannot resurrect the
	// entry (replication.go); bounded by maxTombstones, nil until the
	// first delete.
	tombstones map[string]Stamp
	// journal, when attached, receives a write-ahead record of every
	// committed update routed to this segment through its group-commit
	// pipeline (see persist.go); commit is that pipeline.
	journal *Journal
	commit  *committer
	// sizeAfterCompact is the journal's byte size right after this
	// segment's last compaction (or attach); the auto-compactor compares it
	// against the live size to skip segments that haven't grown. Guarded by
	// DIT.compactMu (only the compactor touches it).
	sizeAfterCompact int64
}

// DefaultDITSegments is the segment count metacomm configures when
// Config.DITSegments is zero.
const DefaultDITSegments = 8

// DIT is the in-memory directory information tree. All operations are
// individually atomic under internal locks; there is deliberately no
// multi-operation transaction facility, matching the paper's substrate.
//
// Scale architecture (DESIGN.md §13): entries are partitioned by FNV-32a of
// the normalized DN — the same shard discipline as the UM and sync worker
// pools — into independently locked segments, each with its own journal and
// group-commit pipeline. A single global atomic commit sequence keeps the
// changelog totally ordered: a sequence number is only ever taken inside a
// segment's write critical section, so holding every segment lock
// guarantees the applied updates are exactly {1..seq} (the prefix
// property), which is what keeps SnapshotAndSubscribeSeq exact. The
// emitter (changelog.go) re-assembles per-segment commit completions into
// one gap-free global order before fan-out.
//
// Write path (DESIGN.md §11): under the segment lock an update validates,
// applies in memory, takes its commit seq, and stages its journal record;
// the caller then waits OUTSIDE the lock for the group committer's
// durability notification and the emitter's order notification. Journal
// I/O, record marshaling, and changelog fan-out all run off the critical
// section. Unjournaled DITs hand the record straight to the emitter.
type DIT struct {
	schema *Schema
	segs   []*segment
	// seq is the global commit sequence; incremented only while holding
	// the write lock of the segment (or segments) the update mutates.
	seq atomic.Uint64
	// count tracks the live entry total across segments.
	count atomic.Int64
	// em is the changelog sequencer: it restores the global total order
	// over records completed by per-segment pipelines.
	em *emitter
	// subs are changelog subscribers, under their own lock so the
	// emitter can fan out without any segment lock (see changelog.go).
	subMu sync.Mutex
	subs  []*changeSub
	// The cursor-addressable changelog tail (replication.go): a ring of
	// the most recently emitted records so a reconnecting peer can resume
	// from its cursor instead of full-resyncing. Guarded by subMu.
	// tailFirst/tailLast bound the covered cursor range: SubscribeFrom
	// serves any cursor in [tailFirst, seq].
	tailBuf   []UpdateRecord
	tailStart int
	tailLen   int
	tailCap   int
	tailFirst uint64
	tailLast  uint64

	// nodeID and clock are the replication identity and the Lamport stamp
	// clock (replication.go). nodeID is written once before serving.
	nodeID uint32
	clock  atomic.Uint64
	// indexed lists the lowered names of indexed attributes; written under
	// all segment locks, read under any one segment lock.
	indexed []string

	tornTails atomic.Uint64

	// replay captures the stats of the most recent journal attach
	// (records/bytes replayed, wall time, workers, per-segment times);
	// nil until a journal has been attached. See JournalStats.
	replay atomic.Pointer[replayStats]

	// journalBase/journalFormat remember the attached journal set's layout
	// so manifest refreshes (post-compaction, clean close) can rewrite
	// <base>.meta with current per-segment entry counts. Written once by
	// AttachJournalSet before any compactor can run; read under compactMu.
	journalBase   string
	journalFormat JournalFormat

	// compactMu serializes compaction sweeps (manual Compact, the
	// auto-compactor, and CloseJournal's shutdown barrier).
	compactMu sync.Mutex
	// auto-compaction goroutine lifecycle, guarded by autoMu.
	autoMu   sync.Mutex
	autoStop chan struct{}
	autoDone chan struct{}
	autoNext int // next segment in the round-robin sweep

	// Compaction counters (atomics; see CompactionStats).
	compactRuns    atomic.Uint64
	compactSkips   atomic.Uint64
	compactSpliced atomic.Uint64
	compactEntries atomic.Uint64
	compactLastNs  atomic.Int64
}

// New returns an empty single-segment DIT. schema may be nil to disable
// validation. Single-segment DITs accept the legacy single-file
// AttachJournal; use NewSegmented for the partitioned form.
func New(schema *Schema) *DIT { return NewSegmented(schema, 1) }

// NewSegmented returns an empty DIT partitioned into n DN-hash segments
// (n <= 0 selects DefaultDITSegments).
func NewSegmented(schema *Schema, n int) *DIT {
	if n <= 0 {
		n = DefaultDITSegments
	}
	d := &DIT{schema: schema, segs: make([]*segment, n), tailCap: DefaultChangeTail}
	for i := range d.segs {
		d.segs[i] = &segment{id: i, entries: map[string]*node{}}
	}
	d.em = newEmitter(d)
	return d
}

// Schema returns the schema in force (nil when unvalidated).
func (d *DIT) Schema() *Schema { return d.schema }

// Seq returns the number of committed updates.
func (d *DIT) Seq() uint64 { return d.seq.Load() }

// Len returns the number of entries.
func (d *DIT) Len() int { return int(d.count.Load()) }

// Segments returns the segment count.
func (d *DIT) Segments() int { return len(d.segs) }

// fnv32a is FNV-1a over s — the same function (hash/fnv's New32a) the UM
// shards and sync workers key on, inlined to avoid a hasher allocation on
// every routed operation.
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// segIndex routes a normalized DN key to its segment index.
func (d *DIT) segIndex(key string) int {
	if len(d.segs) == 1 {
		return 0
	}
	return int(fnv32a(key) % uint32(len(d.segs)))
}

// seg routes a normalized DN key to its segment.
func (d *DIT) seg(key string) *segment { return d.segs[d.segIndex(key)] }

// lockPair write-locks the segments of two keys in ascending id order (the
// global lock order; see also lockAll), coping with both keys landing in
// the same segment.
func lockPair(a, b *segment) {
	if a == b {
		a.mu.Lock()
		return
	}
	if a.id > b.id {
		a, b = b, a
	}
	a.mu.Lock()
	b.mu.Lock()
}

func unlockPair(a, b *segment) {
	if a == b {
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
	b.mu.Unlock()
}

// lockAll write-locks every segment in ascending id order. With all locks
// held the applied update set is exactly {1..seq} — no sequence number is
// ever assigned outside a segment write critical section.
func (d *DIT) lockAll() {
	for _, s := range d.segs {
		s.mu.Lock()
	}
}

func (d *DIT) unlockAll() {
	for _, s := range d.segs {
		s.mu.Unlock()
	}
}

func (d *DIT) rlockAll() {
	for _, s := range d.segs {
		s.mu.RLock()
	}
}

func (d *DIT) runlockAll() {
	for _, s := range d.segs {
		s.mu.RUnlock()
	}
}

// journaled reports whether journals are attached (all-or-none). Caller
// holds at least one segment lock.
func (d *DIT) journaled() bool { return d.segs[0].journal != nil }

// Add creates a new leaf entry. The parent must exist (except for
// depth-1 suffix entries). RDN attribute values are folded into the entry's
// attributes as LDAP requires.
func (d *DIT) Add(name dn.DN, attrs *Attrs) error {
	if name.IsRoot() {
		return errf(ldap.ResultInvalidDNSyntax, "cannot add root entry")
	}
	a := attrs.Clone()
	for _, ava := range name.RDN() {
		if !a.HasValue(ava.Attr, ava.Value) {
			a.Add(ava.Attr, ava.Value)
		}
	}
	if d.schema != nil {
		a = canonicalDisplay(a, d.schema)
	}
	if d.schema != nil {
		if err := d.schema.CheckEntry(a); err != nil {
			return err
		}
	}

	key := name.Normalize()
	parentKey := name.Parent().Normalize()
	sa, sp := d.seg(key), d.seg(parentKey)
	lockPair(sa, sp)
	t, err := d.addLocked(sa, sp, name, key, parentKey, a)
	unlockPair(sa, sp)
	if err != nil {
		return err
	}
	return t.Wait()
}

func (d *DIT) addLocked(sa, sp *segment, name dn.DN, key, parentKey string, a *Attrs) (commitTicket, error) {
	if _, exists := sa.entries[key]; exists {
		return commitTicket{}, errf(ldap.ResultEntryAlreadyExists, "entry %q already exists", name)
	}
	parent := name.Parent()
	if !parent.IsRoot() {
		if _, ok := sp.entries[parentKey]; !ok {
			return commitTicket{}, errf(ldap.ResultNoSuchObject, "parent of %q does not exist", name)
		}
	}
	if err := sa.commitReady(); err != nil {
		return commitTicket{}, err
	}
	if p, ok := sp.entries[parentKey]; ok {
		p.addChild(key)
	}
	st := d.stampLocked()
	sa.entries[key] = &node{dn: name, key: key, attrs: a, stamp: st}
	sa.indexEntry(key, a)
	delete(sa.tombstones, key)
	d.count.Add(1)
	seq := d.seq.Add(1)
	rec := UpdateRecord{Seq: seq, Op: "add", DN: name.String(), Attrs: a.Map(),
		OriginSeq: st.Seq, OriginNode: st.Node, post: a}
	return d.commitLocked(sa, rec), nil
}

// Delete removes a leaf entry.
func (d *DIT) Delete(name dn.DN) error {
	key := name.Normalize()
	parentKey := name.Parent().Normalize()
	sa, sp := d.seg(key), d.seg(parentKey)
	lockPair(sa, sp)
	t, err := d.deleteLocked(sa, sp, name, key, parentKey)
	unlockPair(sa, sp)
	if err != nil {
		return err
	}
	return t.Wait()
}

func (d *DIT) deleteLocked(sa, sp *segment, name dn.DN, key, parentKey string) (commitTicket, error) {
	n, ok := sa.entries[key]
	if !ok {
		return commitTicket{}, errf(ldap.ResultNoSuchObject, "no entry %q", name)
	}
	if len(n.children) > 0 {
		return commitTicket{}, errf(ldap.ResultNotAllowedOnNonLeaf, "entry %q has children", name)
	}
	if err := sa.commitReady(); err != nil {
		return commitTicket{}, err
	}
	delete(sa.entries, key)
	sa.unindexEntry(key, n.attrs)
	if p, ok := sp.entries[parentKey]; ok {
		delete(p.children, key)
	}
	st := d.stampLocked()
	sa.setTombstone(key, st)
	d.count.Add(-1)
	seq := d.seq.Add(1)
	rec := UpdateRecord{Seq: seq, Op: "delete", DN: name.String(),
		OriginSeq: st.Seq, OriginNode: st.Node}
	return d.commitLocked(sa, rec), nil
}

// Modify applies a sequence of changes to one entry atomically: either all
// changes apply and the result passes schema validation, or none do.
// Attribute values that appear in the entry's RDN may not be removed
// (notAllowedOnRDN) — that requires ModifyDN, which is precisely the
// non-atomicity the paper wrestles with.
func (d *DIT) Modify(name dn.DN, changes []ldap.Change) error {
	key := name.Normalize()
	s := d.seg(key)
	s.mu.Lock()
	t, err := d.modifyLocked(s, name, key, changes)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return t.Wait()
}

func (d *DIT) modifyLocked(s *segment, name dn.DN, key string, changes []ldap.Change) (commitTicket, error) {
	n, ok := s.entries[key]
	if !ok {
		return commitTicket{}, errf(ldap.ResultNoSuchObject, "no entry %q", name)
	}
	work, err := d.applyChanges(name, n.attrs, changes)
	if err != nil {
		return commitTicket{}, err
	}
	if err := s.commitReady(); err != nil {
		return commitTicket{}, err
	}
	s.reindexEntry(key, n.attrs, work)
	n.attrs = work
	st := d.stampLocked()
	n.stamp = st
	seq := d.seq.Add(1)
	rec := modifyRecord(name, changes)
	rec.Seq = seq
	rec.OriginSeq, rec.OriginNode = st.Seq, st.Node
	rec.post = work
	return d.commitLocked(s, rec), nil
}

// applyChanges builds the post-modify attribute state from cur without
// mutating it, enforcing LDAP change semantics, RDN protection, and schema
// validation. Shared by the live modify path and relaxed journal replay.
func (d *DIT) applyChanges(name dn.DN, cur *Attrs, changes []ldap.Change) (*Attrs, error) {
	work := cur.Clone()
	for _, c := range changes {
		attr := c.Attribute.Type
		if d.schema != nil {
			attr = d.schema.DisplayName(attr)
		}
		switch c.Op {
		case ldap.ModAdd:
			if len(c.Attribute.Values) == 0 {
				return nil, errf(ldap.ResultProtocolError, "add of %q without values", attr)
			}
			for _, v := range c.Attribute.Values {
				if !work.Add(attr, v) {
					return nil, errf(ldap.ResultAttributeOrValueExists, "%q already has value %q", attr, v)
				}
			}
		case ldap.ModDelete:
			if d.rdnProtects(name, attr, c.Attribute.Values) {
				return nil, errf(ldap.ResultNotAllowedOnRDN, "attribute %q is part of the RDN", attr)
			}
			if len(c.Attribute.Values) == 0 {
				if !work.Delete(attr) {
					return nil, errf(ldap.ResultNoSuchAttribute, "no attribute %q", attr)
				}
			} else {
				for _, v := range c.Attribute.Values {
					if !work.DeleteValue(attr, v) {
						return nil, errf(ldap.ResultNoSuchAttribute, "no value %q for %q", v, attr)
					}
				}
			}
		case ldap.ModReplace:
			if d.rdnProtects(name, attr, c.Attribute.Values) {
				return nil, errf(ldap.ResultNotAllowedOnRDN, "attribute %q is part of the RDN", attr)
			}
			work.Put(attr, c.Attribute.Values...)
		default:
			return nil, errf(ldap.ResultProtocolError, "unknown modify op %d", c.Op)
		}
	}
	if d.schema != nil {
		if err := d.schema.CheckEntry(work); err != nil {
			return nil, err
		}
	}
	return work, nil
}

// modifyRecord converts a change list into its journal form.
func modifyRecord(name dn.DN, changes []ldap.Change) UpdateRecord {
	rec := UpdateRecord{Op: "modify", DN: name.String()}
	for _, c := range changes {
		rec.Changes = append(rec.Changes, UpdateChange{
			Op: c.Op.String(), Attr: c.Attribute.Type, Values: c.Attribute.Values})
	}
	return rec
}

// canonicalDisplay rewrites attribute names to the schema's spelling.
func canonicalDisplay(a *Attrs, s *Schema) *Attrs {
	out := NewAttrs()
	for _, n := range a.Names() {
		out.Put(s.DisplayName(n), a.Get(n)...)
	}
	return out
}

// rdnProtects reports whether removing/replacing attr with newValues would
// strip an RDN value from the entry.
func (d *DIT) rdnProtects(name dn.DN, attr string, newValues []string) bool {
	for _, ava := range name.RDN() {
		if !strings.EqualFold(ava.Attr, attr) {
			continue
		}
		for _, v := range newValues {
			if strings.EqualFold(v, ava.Value) {
				return false // value retained
			}
		}
		return true
	}
	return false
}

// ModifyDN renames an entry (and its subtree) to a new leaf RDN. The old
// RDN values are removed from the attributes when deleteOldRDN is set; the
// new RDN values are added.
//
// A rename re-routes every moved entry to the segment of its new key, so it
// is the one update that locks every segment — the cross-partition
// operation, rare by construction in the directory workloads MetaComm
// serves. On a journaled DIT it is journaled as per-entry delete+entry
// records in the affected segments' own files (segment journals replay
// independently and never contain cross-segment operations), while the
// changelog still carries the single logical modifydn record.
func (d *DIT) ModifyDN(name dn.DN, newRDN dn.RDN, deleteOldRDN bool) error {
	d.lockAll()
	t, err := d.modifyDNLocked(name, newRDN, deleteOldRDN)
	d.unlockAll()
	if err != nil {
		return err
	}
	return t.Wait()
}

func (d *DIT) modifyDNLocked(name dn.DN, newRDN dn.RDN, deleteOldRDN bool) (commitTicket, error) {
	key := name.Normalize()
	n, ok := d.seg(key).entries[key]
	if !ok {
		return commitTicket{}, errf(ldap.ResultNoSuchObject, "no entry %q", name)
	}
	newDN := name.WithRDN(newRDN)
	newKey := newDN.Normalize()
	if newKey == key {
		return commitTicket{}, nil
	}
	if _, exists := d.seg(newKey).entries[newKey]; exists {
		return commitTicket{}, errf(ldap.ResultEntryAlreadyExists, "entry %q already exists", newDN)
	}
	work := n.attrs.Clone()
	if deleteOldRDN {
		for _, ava := range name.RDN() {
			work.DeleteValue(ava.Attr, ava.Value)
		}
	}
	for _, ava := range newRDN {
		if !work.HasValue(ava.Attr, ava.Value) {
			work.Add(ava.Attr, ava.Value)
		}
	}
	if d.schema != nil {
		if err := d.schema.CheckEntry(work); err != nil {
			return commitTicket{}, err
		}
	}

	// Collect the subtree and compute every node's rebased DN up front, so
	// commit readiness of every involved segment is checked before anything
	// mutates.
	var subtree []*node
	var collect func(*node)
	collect = func(nd *node) {
		subtree = append(subtree, nd)
		for ck := range nd.children {
			collect(d.seg(ck).entries[ck])
		}
	}
	collect(n)

	depth := name.Depth()
	moves := make([]renameMove, len(subtree))
	for i, nd := range subtree {
		suffixStart := nd.dn.Depth() - depth
		rebased := make(dn.DN, 0, nd.dn.Depth())
		rebased = append(rebased, nd.dn[:suffixStart]...)
		rebased = append(rebased, newDN...)
		moves[i] = renameMove{nd: nd, oldKey: nd.key, oldDN: nd.dn.String(), newDN: rebased}
	}
	journaled := d.journaled()
	if journaled {
		seen := make(map[*segment]bool)
		for i := range moves {
			for _, s := range []*segment{d.seg(moves[i].oldKey), d.seg(moves[i].newDN.Normalize())} {
				if !seen[s] {
					seen[s] = true
					if err := s.commitReady(); err != nil {
						return commitTicket{}, err
					}
				}
			}
		}
	}

	for _, nd := range subtree {
		d.seg(nd.key).unindexEntry(nd.key, nd.attrs)
	}
	if p, ok := d.seg(name.Parent().Normalize()).entries[name.Parent().Normalize()]; ok {
		delete(p.children, key)
		p.addChild(newKey)
	}
	st := d.stampLocked()
	for _, nd := range subtree {
		delete(d.seg(nd.key).entries, nd.key)
		// The rename is a delete at the old key under the LWW rule: leave
		// a tombstone so a concurrent remote upsert of the old DN with a
		// smaller stamp cannot resurrect it.
		d.seg(nd.key).setTombstone(nd.key, st)
	}
	for i := range moves {
		nd := moves[i].nd
		nd.dn = moves[i].newDN
		nd.children = nil
		nd.stamp = st
	}
	n.attrs = work
	for _, nd := range subtree {
		k := nd.dn.Normalize()
		nd.key = k
		s := d.seg(k)
		s.entries[k] = nd
		s.indexEntry(k, nd.attrs)
		delete(s.tombstones, k)
		if pk := nd.dn.Parent().Normalize(); pk != "" {
			if p, ok := d.seg(pk).entries[pk]; ok {
				p.addChild(k)
			}
		}
	}
	seq := d.seq.Add(1)
	logical := UpdateRecord{Seq: seq, Op: "modifydn", DN: name.String(),
		NewRDN: newRDN.String(), DeleteOldRDN: deleteOldRDN,
		OriginSeq: st.Seq, OriginNode: st.Node, post: work}
	if journaled {
		if err := d.journalRenameParts(seq, st, moves); err != nil {
			d.em.skip(seq)
			return commitTicket{}, errf(ldap.ResultUnavailable, "journal write failed: %v", err)
		}
	}
	d.em.ready(logical)
	return commitTicket{em: d.em, seq: seq}, nil
}

// renameMove is one entry's half of a ModifyDN: the node, where it came
// from, and where it lands.
type renameMove struct {
	nd     *node
	oldKey string
	oldDN  string
	newDN  dn.DN
}

// Get returns the entry at name. The returned attributes are a shared
// immutable snapshot (see Entry).
func (d *DIT) Get(name dn.DN) (Entry, error) {
	key := name.Normalize()
	s := d.seg(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.entries[key]
	if !ok {
		return Entry{}, errf(ldap.ResultNoSuchObject, "no entry %q", name)
	}
	return Entry{DN: n.dn, Attrs: n.attrs}, nil
}

// Compare tests an attribute/value assertion against an entry.
func (d *DIT) Compare(name dn.DN, attr, value string) (bool, error) {
	key := name.Normalize()
	s := d.seg(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.entries[key]
	if !ok {
		return false, errf(ldap.ResultNoSuchObject, "no entry %q", name)
	}
	return n.attrs.HasValue(attr, value), nil
}

// Search evaluates filter over the entries selected by base and scope and
// returns matching entries sorted by DN depth then name (parents before
// children), truncated at sizeLimit when positive. Truncated result sets
// are sorted among themselves but are not the depth-first prefix of the
// full answer — LDAP promises no ordering, and stopping at the limit is
// what keeps bounded searches cheap on large trees.
//
// Candidate collection visits segments one at a time under their read
// locks; filter verification and sorting run on that snapshot outside any
// lock. Attribute values are immutable once installed (every update builds
// a fresh *Attrs), so each entry in the snapshot is internally consistent
// with no coordination and the returned entries share it without cloning.
// Cross-entry, a whole-subtree search on a segmented DIT observes each
// segment at a (slightly) different instant — the usual read-committed
// answer an LDAP search provides, not a point-in-time snapshot (that is
// SnapshotAndSubscribeSeq's job).
func (d *DIT) Search(base dn.DN, scope ldap.Scope, filter *ldap.Filter, sizeLimit int) ([]Entry, error) {
	if filter == nil {
		// An AND of zero terms is vacuously true: match everything.
		filter = &ldap.Filter{Kind: ldap.FilterAnd}
	}
	cands, err := d.collectCandidates(base, scope, filter)
	if err != nil {
		return nil, err
	}
	var out []Entry
	var keys []string
	for _, c := range cands {
		if !filter.Matches(c.attrs.Get) {
			continue
		}
		out = append(out, Entry{DN: c.dn, Attrs: c.attrs})
		keys = append(keys, c.key)
		if sizeLimit > 0 && len(out) > sizeLimit {
			// One over the limit proves the limit is exceeded; stop
			// materializing instead of verifying the whole candidate set.
			break
		}
	}
	sortEntries(out, keys)
	if sizeLimit > 0 && len(out) > sizeLimit {
		return out[:sizeLimit], errf(ldap.ResultSizeLimitExceeded, "size limit %d exceeded", sizeLimit)
	}
	return out, nil
}

// searchCand is one node's read snapshot: the DN (plus its cached
// normalized form, for sorting without re-normalizing) and the immutable
// attribute value current at collection time.
type searchCand struct {
	dn    dn.DN
	key   string
	attrs *Attrs
}

// collectCandidates gathers the scope-selected (or index-selected) nodes
// under per-segment read locks. It copies only a DN slice header and an
// *Attrs pointer per node — the cheap snapshot Search evaluates lock-free.
func (d *DIT) collectCandidates(base dn.DN, scope ldap.Scope, filter *ldap.Filter) ([]searchCand, error) {
	baseKey := base.Normalize()
	if !base.IsRoot() {
		sb := d.seg(baseKey)
		sb.mu.RLock()
		_, ok := sb.entries[baseKey]
		sb.mu.RUnlock()
		if !ok {
			return nil, errf(ldap.ResultNoSuchObject, "search base %q does not exist", base)
		}
	}
	var cands []searchCand
	add := func(n *node) { cands = append(cands, searchCand{dn: n.dn, key: n.key, attrs: n.attrs}) }
	switch scope {
	case ldap.ScopeBaseObject:
		sb := d.seg(baseKey)
		sb.mu.RLock()
		if n, ok := sb.entries[baseKey]; ok {
			add(n)
		}
		sb.mu.RUnlock()
	case ldap.ScopeSingleLevel:
		if base.IsRoot() {
			for _, s := range d.segs {
				s.mu.RLock()
				for _, n := range s.entries {
					if n.dn.Depth() == 1 {
						add(n)
					}
				}
				s.mu.RUnlock()
			}
			break
		}
		// Copy the child key set under the parent's lock, then fetch the
		// children grouped by segment. A child deleted between the copy and
		// the fetch simply isn't returned.
		sb := d.seg(baseKey)
		sb.mu.RLock()
		var childKeys []string
		if n, ok := sb.entries[baseKey]; ok {
			childKeys = make([]string, 0, len(n.children))
			for ck := range n.children {
				childKeys = append(childKeys, ck)
			}
		}
		sb.mu.RUnlock()
		bySeg := make([][]string, len(d.segs))
		for _, ck := range childKeys {
			i := d.segIndex(ck)
			bySeg[i] = append(bySeg[i], ck)
		}
		for i, keys := range bySeg {
			if len(keys) == 0 {
				continue
			}
			s := d.segs[i]
			s.mu.RLock()
			for _, k := range keys {
				if n, ok := s.entries[k]; ok {
					add(n)
				}
			}
			s.mu.RUnlock()
		}
	case ldap.ScopeWholeSubtree:
		for _, s := range d.segs {
			s.mu.RLock()
			if keys, ok := s.indexCandidates(filter); ok {
				// Indexed fast path: scope-check the candidate set only; the
				// full filter is still verified on every returned entry.
				for key := range keys {
					n := s.entries[key]
					if n == nil {
						continue
					}
					if base.IsRoot() || key == baseKey || n.dn.IsDescendantOf(base) {
						add(n)
					}
				}
			} else {
				for _, n := range s.entries {
					if base.IsRoot() || n.key == baseKey || n.dn.IsDescendantOf(base) {
						add(n)
					}
				}
			}
			s.mu.RUnlock()
		}
	default:
		return nil, errf(ldap.ResultProtocolError, "unknown scope %d", scope)
	}
	return cands, nil
}

// All returns every entry, parents before children. Prefer Range for bulk
// passes that do not need the sorted materialized slice.
func (d *DIT) All() []Entry {
	out, _ := d.Search(dn.DN{}, ldap.ScopeWholeSubtree, nil, 0)
	return out
}

// Range streams every entry to visit, one segment at a time, stopping early
// when visit returns false. Unlike All it never materializes the whole
// directory: the transient copy is bounded by the largest segment, and
// entries share the tree's immutable attribute values. Order is
// unspecified. Each segment is visited at its own instant (read-committed
// across segments); use SnapshotRangeAndSubscribeSeq for an exact cut.
func (d *DIT) Range(visit func(Entry) bool) {
	var buf []Entry
	for _, s := range d.segs {
		buf = buf[:0]
		s.mu.RLock()
		for _, n := range s.entries {
			buf = append(buf, Entry{DN: n.dn, Attrs: n.attrs})
		}
		s.mu.RUnlock()
		for _, e := range buf {
			if !visit(e) {
				return
			}
		}
	}
}

// DITStats is a point-in-time footprint summary.
type DITStats struct {
	Segments       int
	Entries        int
	SegmentEntries []int // live entries per segment
	InternedNames  int   // global attribute-name intern table size
}

// Stats snapshots entry distribution across segments.
func (d *DIT) Stats() DITStats {
	st := DITStats{Segments: len(d.segs), SegmentEntries: make([]int, len(d.segs)), InternedNames: InternedNames()}
	for i, s := range d.segs {
		s.mu.RLock()
		st.SegmentEntries[i] = len(s.entries)
		s.mu.RUnlock()
		st.Entries += st.SegmentEntries[i]
	}
	return st
}
