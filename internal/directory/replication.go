package directory

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

// Multi-master replication plumbing (DESIGN.md §15). Every committed update
// is stamped with an origin (Lamport-seq, node-id) pair; peers exchange
// full post-images plus stamps and resolve conflicts per entry by
// last-writer-wins on the stamp order, so any apply order converges to the
// same tree. Deletes leave tombstones so a concurrent losing upsert cannot
// resurrect an entry, and a joining node seeds itself from an exact-cut
// snapshot (entries with stamps + tombstones + changelog cursor) without
// quiescing the donor.
//
// The origin stamp is deliberately NOT the global commit seq: commit seqs
// must stay contiguous (the emitter's reorder buffer stalls on gaps, and
// remote applies take local commit seqs of their own), so the stamp comes
// from a separate Lamport clock that only ratchets forward — raised past
// every remote stamp observed, which keeps "my next local write wins over
// everything I have already seen" true on every node.

// Stamp identifies the originating write of an entry's current state:
// a Lamport sequence from the origin node's clock plus the origin node id
// as the total-order tiebreak.
type Stamp struct {
	Seq  uint64 `json:"seq"`
	Node uint32 `json:"node"`
}

// Less orders stamps: by Lamport seq, node id breaking ties. The relation
// is total over distinct (Seq, Node) pairs, which is what makes LWW
// deterministic regardless of apply order.
func (s Stamp) Less(t Stamp) bool {
	if s.Seq != t.Seq {
		return s.Seq < t.Seq
	}
	return s.Node < t.Node
}

// IsZero reports an absent stamp (pre-replication records).
func (s Stamp) IsZero() bool { return s.Seq == 0 && s.Node == 0 }

// SetNodeID sets this node's replication identity. Call once, before any
// writes; node ids must be distinct across a cluster (the LWW tiebreak).
func (d *DIT) SetNodeID(id uint32) { d.nodeID = id }

// NodeID returns the replication identity (0 = unconfigured single node).
func (d *DIT) NodeID() uint32 { return d.nodeID }

// bumpClock raises the Lamport clock to at least seq (the receive rule).
func (d *DIT) bumpClock(seq uint64) {
	for {
		cur := d.clock.Load()
		if cur >= seq {
			return
		}
		if d.clock.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// stampLocked mints the origin stamp for a local write. Called inside the
// segment write critical section so the stamp order of two writes to the
// same entry matches their apply order.
func (d *DIT) stampLocked() Stamp {
	return Stamp{Seq: d.clock.Add(1), Node: d.nodeID}
}

// Origin returns the record's origin stamp (zero for pre-replication
// records).
func (r *UpdateRecord) Origin() Stamp {
	return Stamp{Seq: r.OriginSeq, Node: r.OriginNode}
}

// PostImage returns the full attribute state the update left behind
// (nil for deletes and for records restored from pre-replication
// journals). Replication ships post-images, not deltas: images converge
// byte-identically under reordering where deltas cannot.
func (r *UpdateRecord) PostImage() *Attrs { return r.post }

// maxTombstones bounds a segment's tombstone map. When it fills, the
// oldest-stamped half is dropped — the same age-based GC production
// directories apply. A delete older than everything in a full tombstone
// map is by construction far in the past; re-delivering its losing upsert
// that much later would require a peer partitioned across thousands of
// intervening deletes.
const maxTombstones = 8192

// setTombstone records that key was deleted by st, pruning when full.
// Caller holds the segment lock.
func (s *segment) setTombstone(key string, st Stamp) {
	if s.tombstones == nil {
		s.tombstones = make(map[string]Stamp, 8)
	}
	s.tombstones[key] = st
	if len(s.tombstones) <= maxTombstones {
		return
	}
	// Prune the oldest half by stamp order.
	stamps := make([]Stamp, 0, len(s.tombstones))
	for _, ts := range s.tombstones {
		stamps = append(stamps, ts)
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i].Less(stamps[j]) })
	cut := stamps[len(stamps)/2]
	for k, ts := range s.tombstones {
		if ts.Less(cut) {
			delete(s.tombstones, k)
		}
	}
}

// RemoteApplied describes the local effect of one remote update: whether
// it won LWW (losing applies are silent no-ops), and the before/after
// images for device propagation (Old nil = created, New nil = deleted).
type RemoteApplied struct {
	Applied bool
	DN      dn.DN
	Old     *Attrs
	New     *Attrs
}

// ApplyRemote applies one remotely-originated update — a full post-image
// upsert or a delete, carrying its origin stamp — with per-entry
// last-writer-wins resolution:
//
//   - the update applies iff its stamp is strictly greater than the
//     entry's current stamp (or its tombstone's, when absent); losing or
//     duplicate deliveries return Applied=false and mutate nothing, which
//     is what makes flood-style exchange terminate and re-delivery after
//     reconnect idempotent.
//   - a winning delete leaves a tombstone so a slower concurrent upsert
//     with a smaller stamp cannot resurrect the entry; a delete of an
//     absent entry records the tombstone alone.
//   - structural conflicts the flat LWW rule cannot express — an upsert
//     whose parent does not exist here, a delete of an entry that has
//     children here — return an error for the caller to count; they
//     cannot arise in the flat (suffix + leaves) trees the telecom
//     workloads build.
//
// Winning applies take a local commit seq, journal, and emit on the
// changelog exactly like local writes (with the ORIGIN stamp preserved),
// so remote updates are durable, visible to gateway caches, and forwarded
// to this node's own subscribers.
//
// The image is installed as given — no schema re-validation (the origin
// already validated it; divergent local rejection would break convergence)
// — and MUST NOT be mutated by the caller afterwards.
func (d *DIT) ApplyRemote(name dn.DN, image *Attrs, st Stamp, deleted bool) (RemoteApplied, error) {
	if st.IsZero() {
		return RemoteApplied{}, errf(ldap.ResultProtocolError, "remote update for %q carries no origin stamp", name)
	}
	if name.IsRoot() {
		return RemoteApplied{}, errf(ldap.ResultInvalidDNSyntax, "remote update for the root entry")
	}
	// Lamport receive rule: local writes after this point outrank st.
	d.bumpClock(st.Seq)

	key := name.Normalize()
	parentKey := name.Parent().Normalize()
	sa, sp := d.seg(key), d.seg(parentKey)
	lockPair(sa, sp)
	n, exists := sa.entries[key]

	if deleted {
		if !exists {
			if ts, has := sa.tombstones[key]; has && !ts.Less(st) {
				unlockPair(sa, sp)
				return RemoteApplied{Applied: false}, nil
			}
			// Tombstone-only apply: remember the delete (and journal it)
			// even though the entry never reached this node, so the
			// tombstone survives restarts and flows to our own peers.
			if err := sa.commitReady(); err != nil {
				unlockPair(sa, sp)
				return RemoteApplied{}, err
			}
			sa.setTombstone(key, st)
			seq := d.seq.Add(1)
			rec := UpdateRecord{Seq: seq, Op: "delete", DN: name.String(),
				OriginSeq: st.Seq, OriginNode: st.Node}
			t := d.commitLocked(sa, rec)
			unlockPair(sa, sp)
			if err := t.Wait(); err != nil {
				return RemoteApplied{}, err
			}
			return RemoteApplied{Applied: true, DN: name}, nil
		}
		if !n.stamp.Less(st) {
			unlockPair(sa, sp)
			return RemoteApplied{Applied: false}, nil
		}
		if len(n.children) > 0 {
			unlockPair(sa, sp)
			return RemoteApplied{}, errf(ldap.ResultNotAllowedOnNonLeaf, "remote delete of %q: entry has children here", name)
		}
		if err := sa.commitReady(); err != nil {
			unlockPair(sa, sp)
			return RemoteApplied{}, err
		}
		delete(sa.entries, key)
		sa.unindexEntry(key, n.attrs)
		if p, ok := sp.entries[parentKey]; ok {
			delete(p.children, key)
		}
		sa.setTombstone(key, st)
		d.count.Add(-1)
		seq := d.seq.Add(1)
		rec := UpdateRecord{Seq: seq, Op: "delete", DN: name.String(),
			OriginSeq: st.Seq, OriginNode: st.Node}
		t := d.commitLocked(sa, rec)
		unlockPair(sa, sp)
		if err := t.Wait(); err != nil {
			return RemoteApplied{}, err
		}
		return RemoteApplied{Applied: true, DN: name, Old: n.attrs}, nil
	}

	// Upsert.
	if exists {
		if !n.stamp.Less(st) {
			unlockPair(sa, sp)
			return RemoteApplied{Applied: false}, nil
		}
		if err := sa.commitReady(); err != nil {
			unlockPair(sa, sp)
			return RemoteApplied{}, err
		}
		old := n.attrs
		sa.reindexEntry(key, old, image)
		n.attrs = image
		n.dn = name
		n.stamp = st
		seq := d.seq.Add(1)
		rec := UpdateRecord{Seq: seq, Op: "entry", DN: name.String(),
			Attrs: image.Map(), attrsDec: image, normKey: key,
			OriginSeq: st.Seq, OriginNode: st.Node, post: image}
		t := d.commitLocked(sa, rec)
		unlockPair(sa, sp)
		if err := t.Wait(); err != nil {
			return RemoteApplied{}, err
		}
		return RemoteApplied{Applied: true, DN: name, Old: old, New: image}, nil
	}
	if ts, has := sa.tombstones[key]; has && !ts.Less(st) {
		unlockPair(sa, sp)
		return RemoteApplied{Applied: false}, nil
	}
	if !name.Parent().IsRoot() {
		if _, ok := sp.entries[parentKey]; !ok {
			unlockPair(sa, sp)
			return RemoteApplied{}, errf(ldap.ResultNoSuchObject, "remote upsert of %q: parent does not exist here", name)
		}
	}
	if err := sa.commitReady(); err != nil {
		unlockPair(sa, sp)
		return RemoteApplied{}, err
	}
	if p, ok := sp.entries[parentKey]; ok {
		p.addChild(key)
	}
	sa.entries[key] = &node{dn: name, key: key, attrs: image, stamp: st}
	sa.indexEntry(key, image)
	delete(sa.tombstones, key)
	d.count.Add(1)
	seq := d.seq.Add(1)
	rec := UpdateRecord{Seq: seq, Op: "entry", DN: name.String(),
		Attrs: image.Map(), attrsDec: image, normKey: key,
		OriginSeq: st.Seq, OriginNode: st.Node, post: image}
	t := d.commitLocked(sa, rec)
	unlockPair(sa, sp)
	if err := t.Wait(); err != nil {
		return RemoteApplied{}, err
	}
	return RemoteApplied{Applied: true, DN: name, New: image}, nil
}

// DefaultChangeTail is the cursor-addressable changelog tail's capacity
// when SetChangeTail has not been called: how many recent records a
// reconnecting peer may resume across without a snapshot fallback.
const DefaultChangeTail = 8192

// SetChangeTail resizes the changelog tail ring (0 disables it; every
// resume then falls back to a snapshot). Existing tail contents are
// dropped, so resume coverage restarts at the current seq.
func (d *DIT) SetChangeTail(capacity int) {
	d.subMu.Lock()
	defer d.subMu.Unlock()
	d.tailCap = capacity
	d.tailBuf = nil
	d.tailStart, d.tailLen = 0, 0
	d.tailFirst = d.tailLast
}

// tailAppendLocked records one emitted record in the tail ring. Caller
// holds subMu (emission order == tail order).
func (d *DIT) tailAppendLocked(rec UpdateRecord) {
	if d.tailCap <= 0 {
		return
	}
	if d.tailBuf == nil {
		d.tailBuf = make([]UpdateRecord, d.tailCap)
	}
	if d.tailLen == d.tailCap {
		d.tailFirst = d.tailBuf[d.tailStart].Seq
		d.tailStart = (d.tailStart + 1) % d.tailCap
		d.tailLen--
	}
	d.tailBuf[(d.tailStart+d.tailLen)%d.tailCap] = rec
	d.tailLen++
	d.tailLast = rec.Seq
}

// resetTailTo clears the tail and restarts its coverage at seq — called
// when replayed history fast-forwards the changelog (journal attach): the
// tail is in-memory, so nothing before seq can be resumed from.
func (d *DIT) resetTailTo(seq uint64) {
	d.subMu.Lock()
	d.tailStart, d.tailLen = 0, 0
	d.tailFirst, d.tailLast = seq, seq
	d.subMu.Unlock()
}

// SubscribeFrom registers a changelog subscription resuming after cursor
// `after`: the backlog slice holds the already-committed records with
// Seq > after still covered by the tail ring, and the channel delivers
// everything later, exactly once, in commit order. ok=false means the
// tail no longer covers the cursor (evicted, or from a foreign history)
// and the caller must fall back to a snapshot. The overflow/cancel
// contract matches SnapshotAndSubscribe.
func (d *DIT) SubscribeFrom(after uint64, buffer int) (backlog []UpdateRecord, changes <-chan UpdateRecord, cancel func(), ok bool) {
	if buffer <= 0 {
		buffer = 1024
	}
	d.subMu.Lock()
	if after < d.tailFirst || after > d.seq.Load() {
		d.subMu.Unlock()
		return nil, nil, nil, false
	}
	for i := 0; i < d.tailLen; i++ {
		rec := d.tailBuf[(d.tailStart+i)%d.tailCap]
		if rec.Seq > after {
			backlog = append(backlog, rec)
		}
	}
	sub := &changeSub{ch: make(chan UpdateRecord, buffer), startAfter: after}
	d.subs = append(d.subs, sub)
	d.subMu.Unlock()
	return backlog, sub.ch, d.cancelFunc(sub), true
}

// ReplEntry is one entry of a replication snapshot: the live image plus
// the origin stamp that installed it.
type ReplEntry struct {
	DN    dn.DN
	Attrs *Attrs
	Stamp Stamp
}

// ReplTombstone is one remembered delete: the normalized DN key and the
// deleting stamp.
type ReplTombstone struct {
	Key   string
	Stamp Stamp
}

// SnapshotReplicaAndSubscribe captures the exact cut a joining peer seeds
// from — every entry with its stamp (parents before children, so the
// receiver can ApplyRemote them in order), every tombstone, the commit
// seq the cut reflects, and a live subscription delivering everything
// after it — without quiescing writers: the same rlockAll header capture
// as SnapshotAndSubscribeSeq (PR 3/7), extended with stamps and
// tombstones.
func (d *DIT) SnapshotReplicaAndSubscribe(buffer int) (entries []ReplEntry, tombs []ReplTombstone, seq uint64, changes <-chan UpdateRecord, cancel func()) {
	if buffer <= 0 {
		buffer = 1024
	}
	d.rlockAll()
	total := 0
	for _, s := range d.segs {
		total += len(s.entries)
	}
	entries = make([]ReplEntry, 0, total)
	keys := make([]string, 0, total)
	for _, s := range d.segs {
		for k, n := range s.entries {
			entries = append(entries, ReplEntry{DN: n.dn, Attrs: n.attrs, Stamp: n.stamp})
			keys = append(keys, k)
		}
		for k, ts := range s.tombstones {
			tombs = append(tombs, ReplTombstone{Key: k, Stamp: ts})
		}
	}
	seq = d.seq.Load()
	sub := &changeSub{ch: make(chan UpdateRecord, buffer), startAfter: seq}
	d.subMu.Lock()
	d.subs = append(d.subs, sub)
	d.subMu.Unlock()
	d.runlockAll()

	sort.Sort(&replEntrySorter{entries, keys})
	return entries, tombs, seq, sub.ch, d.cancelFunc(sub)
}

type replEntrySorter struct {
	e []ReplEntry
	k []string
}

func (s *replEntrySorter) Len() int { return len(s.e) }
func (s *replEntrySorter) Swap(i, j int) {
	s.e[i], s.e[j] = s.e[j], s.e[i]
	s.k[i], s.k[j] = s.k[j], s.k[i]
}
func (s *replEntrySorter) Less(i, j int) bool {
	if di, dj := s.e[i].DN.Depth(), s.e[j].DN.Depth(); di != dj {
		return di < dj
	}
	return s.k[i] < s.k[j]
}

// Fingerprint returns a canonical SHA-256 over the directory's exact
// state: every entry's normalized DN, attributes (names sorted, values in
// stored order), and origin stamp. Two nodes with equal fingerprints hold
// byte-identical trees AND will resolve all future conflicts identically
// (the stamps match too). Tombstones are excluded — they are GC-pruned
// metadata, not state. Taken under all segment read locks (exact cut).
func (d *DIT) Fingerprint() string {
	type fpEnt struct {
		key   string
		attrs *Attrs
		stamp Stamp
	}
	d.rlockAll()
	ents := make([]fpEnt, 0, int(d.count.Load()))
	for _, s := range d.segs {
		for k, n := range s.entries {
			ents = append(ents, fpEnt{key: k, attrs: n.attrs, stamp: n.stamp})
		}
	}
	d.runlockAll()
	sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })
	h := sha256.New()
	var num [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(num[:], uint64(len(s)))
		h.Write(num[:])
		h.Write([]byte(s))
	}
	for _, e := range ents {
		writeStr(e.key)
		binary.LittleEndian.PutUint64(num[:], e.stamp.Seq)
		h.Write(num[:])
		binary.LittleEndian.PutUint64(num[:], uint64(e.stamp.Node))
		h.Write(num[:])
		e.attrs.EachSorted(func(attr string, values []string) {
			writeStr(lower(attr))
			binary.LittleEndian.PutUint64(num[:], uint64(len(values)))
			h.Write(num[:])
			for _, v := range values {
				writeStr(v)
			}
		})
	}
	return hex.EncodeToString(h.Sum(nil))
}
