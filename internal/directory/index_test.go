package directory

import (
	"fmt"
	"testing"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

func personWith(cn, ext string) *Attrs {
	a := AttrsFrom(map[string][]string{
		"objectClass": {"person"},
		"cn":          {cn},
	})
	if ext != "" {
		a.Put("definityExtension", ext)
	}
	return a
}

func populated(t testing.TB, n int, indexed bool) *DIT {
	t.Helper()
	d := New(nil)
	if indexed {
		d.EnableIndexes("definityExtension", "cn")
	}
	if err := d.Add(dn.MustParse("o=Lucent"), org("Lucent")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		name := dn.MustParse(fmt.Sprintf("cn=Person %05d,o=Lucent", i))
		if err := d.Add(name, personWith(fmt.Sprintf("Person %05d", i), fmt.Sprintf("2-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// searchEq runs the equality search both ways and compares.
func searchEq(t *testing.T, d *DIT, attr, value string, want int) {
	t.Helper()
	got, err := d.Search(dn.MustParse("o=Lucent"), ldap.ScopeWholeSubtree, ldap.Eq(attr, value), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("(%s=%s) matched %d entries, want %d", attr, value, len(got), want)
	}
}

func TestIndexedSearchEqualsScan(t *testing.T) {
	indexed := populated(t, 200, true)
	scan := populated(t, 200, false)
	for _, q := range []struct {
		attr, value string
		want        int
	}{
		{"definityExtension", "2-00042", 1},
		{"definityExtension", "2-99999", 0},
		{"cn", "person 00007", 1}, // case-insensitive
	} {
		searchEq(t, indexed, q.attr, q.value, q.want)
		searchEq(t, scan, q.attr, q.value, q.want)
	}
}

func TestIndexFollowsModify(t *testing.T) {
	d := populated(t, 10, true)
	name := dn.MustParse("cn=Person 00003,o=Lucent")
	if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "definityExtension", Values: []string{"9-1234"}}}}); err != nil {
		t.Fatal(err)
	}
	searchEq(t, d, "definityExtension", "9-1234", 1)
	searchEq(t, d, "definityExtension", "2-00003", 0)

	// Deleting the attribute removes the posting.
	if err := d.Modify(name, []ldap.Change{{Op: ldap.ModDelete,
		Attribute: ldap.Attribute{Type: "definityExtension"}}}); err != nil {
		t.Fatal(err)
	}
	searchEq(t, d, "definityExtension", "9-1234", 0)
}

func TestIndexFollowsDelete(t *testing.T) {
	d := populated(t, 10, true)
	if err := d.Delete(dn.MustParse("cn=Person 00005,o=Lucent")); err != nil {
		t.Fatal(err)
	}
	searchEq(t, d, "definityExtension", "2-00005", 0)
}

func TestIndexFollowsModifyDN(t *testing.T) {
	d := populated(t, 10, true)
	if err := d.ModifyDN(dn.MustParse("cn=Person 00001,o=Lucent"),
		dn.RDN{{Attr: "cn", Value: "Renamed Person"}}, true); err != nil {
		t.Fatal(err)
	}
	searchEq(t, d, "cn", "Renamed Person", 1)
	searchEq(t, d, "cn", "Person 00001", 0)
	// The extension posting now points at the renamed DN.
	got, err := d.Search(dn.MustParse("o=Lucent"), ldap.ScopeWholeSubtree,
		ldap.Eq("definityExtension", "2-00001"), 0)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d, %v", len(got), err)
	}
	if got[0].DN.FirstValue("cn") != "Renamed Person" {
		t.Errorf("posting DN = %s", got[0].DN)
	}
}

func TestIndexUsedInsideAnd(t *testing.T) {
	d := populated(t, 50, true)
	f := ldap.And(
		ldap.Present("objectClass"),
		ldap.Eq("definityExtension", "2-00010"),
		ldap.Eq("cn", "Person 00010"),
	)
	got, err := d.Search(dn.MustParse("o=Lucent"), ldap.ScopeWholeSubtree, f, 0)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d, %v", len(got), err)
	}
	// An AND whose indexed term matches but whose other terms don't must
	// return nothing (candidates are verified against the full filter).
	f2 := ldap.And(ldap.Eq("definityExtension", "2-00010"), ldap.Eq("cn", "Somebody Else"))
	got, err = d.Search(dn.MustParse("o=Lucent"), ldap.ScopeWholeSubtree, f2, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %d, %v", len(got), err)
	}
}

func TestPresenceIndexEqualsScan(t *testing.T) {
	indexed := populated(t, 40, true)
	scan := populated(t, 40, false)
	// Strip the extension from half the people so presence is selective.
	for i := 0; i < 40; i += 2 {
		name := dn.MustParse(fmt.Sprintf("cn=Person %05d,o=Lucent", i))
		for _, d := range []*DIT{indexed, scan} {
			if err := d.Modify(name, []ldap.Change{{Op: ldap.ModDelete,
				Attribute: ldap.Attribute{Type: "definityExtension"}}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	base := dn.MustParse("o=Lucent")
	for _, d := range []*DIT{indexed, scan} {
		got, err := d.Search(base, ldap.ScopeWholeSubtree, ldap.Present("definityExtension"), 0)
		if err != nil || len(got) != 20 {
			t.Fatalf("(definityExtension=*) matched %d, %v; want 20", len(got), err)
		}
		// Presence term inside an AND: candidates still verified fully.
		f := ldap.And(ldap.Present("definityExtension"), ldap.Eq("cn", "Person 00001"))
		got, err = d.Search(base, ldap.ScopeWholeSubtree, f, 0)
		if err != nil || len(got) != 1 {
			t.Fatalf("AND with presence matched %d, %v; want 1", len(got), err)
		}
		f = ldap.And(ldap.Present("definityExtension"), ldap.Eq("cn", "Person 00002"))
		got, err = d.Search(base, ldap.ScopeWholeSubtree, f, 0)
		if err != nil || len(got) != 0 {
			t.Fatalf("AND with absent presence matched %d, %v; want 0", len(got), err)
		}
	}
}

func TestPresenceIndexFollowsUpdates(t *testing.T) {
	d := populated(t, 5, true)
	name := dn.MustParse("cn=Person 00003,o=Lucent")
	base := dn.MustParse("o=Lucent")
	presence := func() int {
		got, err := d.Search(base, ldap.ScopeWholeSubtree, ldap.Present("definityExtension"), 0)
		if err != nil {
			t.Fatal(err)
		}
		return len(got)
	}
	if n := presence(); n != 5 {
		t.Fatalf("presence = %d, want 5", n)
	}
	if err := d.Modify(name, []ldap.Change{{Op: ldap.ModDelete,
		Attribute: ldap.Attribute{Type: "definityExtension"}}}); err != nil {
		t.Fatal(err)
	}
	if n := presence(); n != 4 {
		t.Fatalf("presence after delete = %d, want 4", n)
	}
	if err := d.Modify(name, []ldap.Change{{Op: ldap.ModAdd,
		Attribute: ldap.Attribute{Type: "definityExtension", Values: []string{"7-0000"}}}}); err != nil {
		t.Fatal(err)
	}
	if n := presence(); n != 5 {
		t.Fatalf("presence after re-add = %d, want 5", n)
	}
	if err := d.Delete(name); err != nil {
		t.Fatal(err)
	}
	if n := presence(); n != 4 {
		t.Fatalf("presence after entry delete = %d, want 4", n)
	}
}

func TestSearchSizeLimitStopsEarly(t *testing.T) {
	// The size-limit path stops materializing once the limit is proven
	// exceeded: the result is sizeLimit entries (sorted among themselves)
	// plus sizeLimitExceeded, regardless of how many more would match.
	d := populated(t, 100, false)
	got, err := d.Search(dn.MustParse("o=Lucent"), ldap.ScopeWholeSubtree,
		ldap.Present("cn"), 7)
	if CodeOf(err) != ldap.ResultSizeLimitExceeded {
		t.Fatalf("err = %v", err)
	}
	if len(got) != 7 {
		t.Fatalf("len = %d, want 7", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].DN.Depth() > got[i].DN.Depth() {
			t.Errorf("results not sorted: %s before %s", got[i-1].DN, got[i].DN)
		}
	}
	// A limit the result set does not reach returns everything, no error.
	got, err = d.Search(dn.MustParse("o=Lucent"), ldap.ScopeWholeSubtree,
		ldap.Present("cn"), 500)
	if err != nil || len(got) != 100 {
		t.Fatalf("got %d, %v", len(got), err)
	}
}

func TestIndexRespectsSearchBase(t *testing.T) {
	d := populated(t, 5, true)
	if err := d.Add(dn.MustParse("o=Other"), org("Other")); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(dn.MustParse("cn=Elsewhere,o=Other"), personWith("Elsewhere", "2-00002")); err != nil {
		t.Fatal(err)
	}
	// Same extension exists in both trees; base restricts the result.
	got, err := d.Search(dn.MustParse("o=Other"), ldap.ScopeWholeSubtree,
		ldap.Eq("definityExtension", "2-00002"), 0)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d, %v", len(got), err)
	}
	if got[0].DN.FirstValue("cn") != "Elsewhere" {
		t.Errorf("wrong subtree: %s", got[0].DN)
	}
}

func TestEnableIndexesOnPopulatedDIT(t *testing.T) {
	d := populated(t, 20, false)
	d.EnableIndexes("definityExtension")
	searchEq(t, d, "definityExtension", "2-00015", 1)
	if got := d.IndexedAttrs(); len(got) != 1 {
		t.Errorf("IndexedAttrs = %v", got)
	}
	// Enabling twice is a no-op.
	d.EnableIndexes("definityExtension")
	searchEq(t, d, "definityExtension", "2-00015", 1)
}

func BenchmarkIndexAblation(b *testing.B) {
	const n = 10000
	for _, indexed := range []bool{false, true} {
		name := "scan"
		if indexed {
			name = "indexed"
		}
		b.Run(fmt.Sprintf("%s/entries=%d", name, n), func(b *testing.B) {
			d := populated(b, n, indexed)
			base := dn.MustParse("o=Lucent")
			f := ldap.Eq("definityExtension", "2-05000")
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := d.Search(base, ldap.ScopeWholeSubtree, f, 0)
				if err != nil || len(got) != 1 {
					b.Fatalf("got %d, %v", len(got), err)
				}
			}
		})
	}
}
