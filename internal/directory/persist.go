package directory

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

// Durability. The paper's directory world handles system and media failure
// with replication and backups; this implementation adds the database-
// native equivalent: a write-ahead journal of committed updates with
// snapshot compaction. Reopening the journal replays it, restoring the
// exact directory state.
//
// On a segmented DIT every segment has its own journal file and its own
// group-commit pipeline (one fsync per group per segment; see DESIGN.md
// §11/§13), named <base>.seg<i> and attached together via
// AttachJournalSet. Segment journals replay independently: each file
// carries a linear per-DN history (the router always sends a DN to the
// same file), so replay is relaxed — "entry"/"add" upsert, modify/delete
// apply strictly per entry, parent/child links are wired in one post-pass.
// A legacy single-file journal (or a set written under a different segment
// count) is replayed and folded into the current layout at attach.
//
// The journal is deliberately simple — newline-delimited JSON,
// atomically-renamed snapshots — because the consistency story of MetaComm
// does not depend on it: a directory restored from an older journal is just
// a repository that missed updates, which the Update Manager's
// synchronization facility reconciles. The same stance covers the one
// cross-segment operation: a ModifyDN journals as per-entry delete+entry
// records in the affected segments' files, durable per the sync mode
// before the call returns, but a crash mid-write can persist a subset of
// the rename — an older-state repository that sync reconciles.

// UpdateRecord is one committed update, as written to the journal and
// streamed to replicas. Seq is assigned at commit; replay derives order
// from file position, so records journaled before sequencing existed (or
// compaction's "entry" records) replay identically.
type UpdateRecord struct {
	Seq uint64 `json:"seq,omitempty"`

	Op string `json:"op"` // add | delete | modify | modifydn | entry

	DN    string              `json:"dn"`
	Attrs map[string][]string `json:"attrs,omitempty"` // add / entry

	Changes []UpdateChange `json:"changes,omitempty"` // modify

	NewRDN       string `json:"newRDN,omitempty"` // modifydn
	DeleteOldRDN bool   `json:"deleteOldRDN,omitempty"`

	// OriginSeq/OriginNode are the origin stamp — the (Lamport-seq,
	// node-id) LWW coordinate of the write (replication.go). Journaled and
	// replicated with every record; zero on records written before
	// replication existed, which keeps old journals and the v2 codec
	// byte-compatible (the stamp encodes as an optional trailing field).
	OriginSeq  uint64 `json:"oseq,omitempty"`
	OriginNode uint32 `json:"onode,omitempty"`

	// attrsDec, when non-nil, is the add/entry attribute set as a decoded
	// *Attrs. The v2 codec decodes straight into this form (and compaction
	// encodes straight out of it), skipping the map[string][]string round
	// trip; Attrs stays authoritative for JSON records and the changelog.
	attrsDec *Attrs

	// normKey, when non-empty, is the entry's normalized DN key, carried by
	// v2 "entry" frames (compaction knows it for free) so relaxed replay
	// skips re-normalizing the DN. Must equal dn.Parse(DN).Normalize().
	normKey string

	// post, when non-nil, is the full attribute state the update left
	// behind, attached at commit time for changelog consumers that need
	// images rather than deltas (the replication publisher ships
	// post-image upserts; see PostImage). Never journaled — replay
	// reconstructs state, it does not need images.
	post *Attrs
}

// attrsValue returns the record's attribute set as an *Attrs, preferring
// the decoded fast-path form.
func (r *UpdateRecord) attrsValue() *Attrs {
	if r.attrsDec != nil {
		return r.attrsDec
	}
	return AttrsFrom(r.Attrs)
}

// UpdateChange is one modification inside an UpdateRecord.
type UpdateChange struct {
	Op     string   `json:"op"` // add | delete | replace
	Attr   string   `json:"attr"`
	Values []string `json:"values,omitempty"`
}

// SyncMode selects when an appended record becomes durable relative to its
// writer's acknowledgment.
type SyncMode int

const (
	// SyncNone flushes each commit group to the OS but never fsyncs;
	// crash durability is whatever the page cache provides. This is the
	// fastest mode and the historical default.
	SyncNone SyncMode = iota
	// SyncAlways makes every record individually durable before its writer
	// is acknowledged: one write+fsync cycle per record, no batching — the
	// safe-but-slow baseline (one fsync per update no matter how many
	// writers are concurrent).
	SyncAlways
	// SyncGroup is group commit: all records staged while the previous
	// group was being written are coalesced into one buffered write and
	// ONE fsync; every writer in the group is acknowledged together. Same
	// ack guarantee as SyncAlways (a returned write is on stable storage),
	// fsync cost amortized across the group.
	SyncGroup
)

// String returns the flag spelling of the mode.
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	default:
		return "none"
	}
}

// ParseSyncMode parses the -journal-sync flag spelling.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "group":
		return SyncGroup, nil
	case "none", "":
		return SyncNone, nil
	}
	return SyncNone, fmt.Errorf("directory: unknown sync mode %q (want always, group, or none)", s)
}

// JournalFormat selects the on-disk record encoding. New journals default
// to FormatV2; a journal set written in the other format is migrated at
// attach through the compaction rewrite (replay sniffs per record, so files
// that mix both formats — the state between a format switch and its
// migrating compaction — always replay correctly).
type JournalFormat int

const (
	// FormatV2 is the CRC-framed binary record codec (journalv2.go).
	FormatV2 JournalFormat = iota
	// FormatJSON is the legacy newline-delimited JSON encoding.
	FormatJSON
)

// String returns the manifest/flag spelling of the format.
func (f JournalFormat) String() string {
	if f == FormatJSON {
		return "json"
	}
	return "v2"
}

// ParseJournalFormat parses a journal format spelling ("" selects the
// default, FormatV2).
func ParseJournalFormat(s string) (JournalFormat, error) {
	switch s {
	case "v2", "":
		return FormatV2, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatV2, fmt.Errorf("directory: unknown journal format %q (want v2 or json)", s)
}

// DefaultJournalBatch caps how many records one commit group may carry when
// Journal.MaxBatch is unset. Groups form from whatever is concurrently
// staged — there is no artificial wait — so the cap only bounds worst-case
// group latency under extreme backlog.
const DefaultJournalBatch = 256

// Journal persists committed directory updates. Configure Mode, MaxBatch,
// and Linger before attaching; they are read by the commit pipeline.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer

	// Mode selects the durability mode (default SyncNone).
	Mode SyncMode
	// MaxBatch caps the records per commit group (0 = DefaultJournalBatch).
	MaxBatch int
	// Linger, when positive, is how long the committer waits after claiming
	// a non-full group for more records to arrive before writing it. Zero
	// (the default) writes immediately: batching then comes only from
	// records staged while the previous group's fsync was in flight, which
	// adds no latency and is usually what you want.
	Linger time.Duration
	// Format selects the record encoding for appends and compaction
	// rewrites (default FormatV2). Replay is format-agnostic.
	Format JournalFormat

	fsyncs uint64 // atomic
}

// OpenJournal opens (creating if needed) a journal file.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("directory: opening journal: %w", err)
	}
	return &Journal{path: path, f: f, w: bufio.NewWriter(f)}, nil
}

// Close flushes and closes the journal file. A journal attached to a DIT
// should be closed via DIT.CloseJournal, which flushes the commit pipeline
// first; closing directly while writers are staging fails their commits
// (cleanly — the pipeline reports the closed journal) but loses nothing
// that was already acknowledged.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err1 := j.w.Flush()
	err2 := j.f.Close()
	j.f = nil
	if err1 != nil {
		return err1
	}
	return err2
}

// writeGroup appends one marshaled commit group and makes it as durable as
// Mode requires: flushed for SyncNone, flushed+fsynced otherwise. The
// group's records were marshaled by the committer outside any lock.
func (j *Journal) writeGroup(data []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("directory: journal closed")
	}
	if _, err := j.w.Write(data); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.Mode != SyncNone {
		atomic.AddUint64(&j.fsyncs, 1)
		return j.f.Sync()
	}
	return nil
}

// size flushes buffered output and reports the journal file's current byte
// size (the auto-compactor's growth probe).
func (j *Journal) size() (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, fmt.Errorf("directory: journal closed")
	}
	if err := j.w.Flush(); err != nil {
		return 0, err
	}
	st, err := j.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// JournalStats is a point-in-time snapshot of the commit pipeline. On a
// segmented DIT the counters aggregate every segment's pipeline.
type JournalStats struct {
	// Mode is the journal's sync mode ("always", "group", "none").
	Mode string
	// Appends counts records committed through the pipeline; Batches counts
	// the commit groups that carried them. Appends/Batches is the mean
	// group size — the fsync amortization factor in group mode.
	Appends uint64
	Batches uint64
	// Fsyncs counts journal fsync calls (0 in SyncNone mode).
	Fsyncs uint64
	// Bytes counts journal bytes written through the pipeline.
	Bytes uint64
	// MaxBatch is the largest commit group observed.
	MaxBatch int
	// BatchHist is a histogram of group sizes; bucket upper bounds are
	// BatchHistBounds.
	BatchHist [6]uint64
	// CommitNs sums the writers' observed ack latency (stage → durable);
	// CommitNs/Appends is the mean durable-commit latency.
	CommitNs int64
	// TornTails counts torn trailing records truncated during replay (at
	// most one per journal file; a crash mid-append leaves at most one).
	TornTails uint64

	// Format is the journal's record encoding ("v2", "json").
	Format string
	// Attach-time replay: records applied, journal bytes decoded, total
	// wall time (including the cross-segment link pass), the worker count
	// used, and per-segment-file wall times. Zero until a journal set is
	// attached.
	ReplayedRecords uint64
	ReplayedBytes   uint64
	ReplayNs        int64
	ReplayWorkers   int
	SegmentReplayNs []int64
}

// BatchHistBounds are the inclusive upper bounds of JournalStats.BatchHist
// buckets (the last bucket is unbounded).
var BatchHistBounds = [6]int{1, 4, 16, 64, 256, 1 << 30}

// MeanBatch returns the mean commit-group size.
func (s JournalStats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Appends) / float64(s.Batches)
}

// MeanCommit returns the mean writer-observed commit latency.
func (s JournalStats) MeanCommit() time.Duration {
	if s.Appends == 0 {
		return 0
	}
	return time.Duration(s.CommitNs / int64(s.Appends))
}

// ReplayRecordsPerSec returns the attach-time replay rate in records/s.
func (s JournalStats) ReplayRecordsPerSec() float64 {
	if s.ReplayNs <= 0 {
		return 0
	}
	return float64(s.ReplayedRecords) / (float64(s.ReplayNs) / 1e9)
}

// ReplayMBPerSec returns the attach-time replay rate in MB/s of journal.
func (s JournalStats) ReplayMBPerSec() float64 {
	if s.ReplayNs <= 0 {
		return 0
	}
	return float64(s.ReplayedBytes) / (1 << 20) / (float64(s.ReplayNs) / 1e9)
}

// committer is the group-commit pipeline attached between one segment and
// its journal. Writers stage records under the segment lock (cheap: one
// slice append) and then block in await outside the lock; the run goroutine
// claims every staged record, writes the group through one buffered write +
// one fsync, hands the group to the emitter for globally ordered changelog
// fan-out, and finally broadcasts durability so the writers return. A
// writer's ticket additionally waits for the emitter's order notification,
// preserving the invariant consumers rely on (see um/sync.go): once a
// writer's call returns, its record is already in every subscription
// buffer, in global commit order.
type committer struct {
	em *emitter
	j  *Journal

	mu     sync.Mutex
	work   sync.Cond // signals run: queue non-empty or closing
	done   sync.Cond // broadcast: durable advanced or pipeline failed
	queue  []UpdateRecord
	staged uint64 // highest seq staged
	// durable is the highest seq written per the journal's mode; err is a
	// sticky I/O failure that poisons the pipeline (reads keep working,
	// every later write to this segment is rejected before mutating).
	durable uint64
	err     error
	closed  bool
	stopped chan struct{}

	maxBatch int
	linger   time.Duration

	// Marshaling state, reused across groups: the JSON encoder appends each
	// record plus the record separator to buf, so the per-record
	// append(b, '\n') allocation of the old path is gone; v2 groups frame
	// into bin with enc2's reused payload scratch. Which pair runs is the
	// journal's Format.
	buf  bytes.Buffer
	enc  *json.Encoder
	bin  []byte
	enc2 v2Encoder

	// Stats, guarded by mu except the atomics.
	appends  uint64
	batches  uint64
	bytes    uint64
	maxSeen  int
	hist     [6]uint64
	commitNs int64 // atomic
}

func newCommitter(em *emitter, j *Journal) *committer {
	c := &committer{em: em, j: j, stopped: make(chan struct{}),
		maxBatch: j.MaxBatch, linger: j.Linger}
	if c.maxBatch <= 0 {
		c.maxBatch = DefaultJournalBatch
	}
	c.work.L = &c.mu
	c.done.L = &c.mu
	c.enc = json.NewEncoder(&c.buf)
	go c.run()
	return c
}

// ready reports whether the pipeline accepts new records. Checked under
// the segment lock before a write mutates anything, so a closed or failed
// journal rejects updates without applying them.
func (c *committer) ready() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errf(ldap.ResultUnavailable, "journal closed")
	}
	if c.err != nil {
		return errf(ldap.ResultUnavailable, "journal failed: %v", c.err)
	}
	return nil
}

// stage enqueues one sequenced record. Called with the segment lock held,
// which is what guarantees queue order == this segment's commit order ==
// journal file order (global seqs are taken under the same lock, so the
// queue is seq-ascending too).
func (c *committer) stage(rec UpdateRecord) {
	c.mu.Lock()
	c.queue = append(c.queue, rec)
	c.staged = rec.Seq
	c.mu.Unlock()
	c.work.Signal()
}

// await blocks until seq is durable (per mode), or the pipeline failed
// before reaching it.
func (c *committer) await(seq uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.durable < seq {
		if c.err != nil {
			return errf(ldap.ResultUnavailable, "journal write failed: %v", c.err)
		}
		c.done.Wait()
	}
	return nil
}

// flush waits until everything staged so far is durable. Callers hold the
// segment lock (so nothing new can stage) — compaction and CloseJournal
// use it to quiesce the pipeline.
func (c *committer) flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.durable < c.staged {
		if c.err != nil {
			return c.err
		}
		c.done.Wait()
	}
	return c.err
}

// poison marks the pipeline failed (a direct journal write outside the run
// loop hit an error); later writes are rejected pre-mutation.
func (c *committer) poison(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.done.Broadcast()
}

// stop shuts the run goroutine down after a flush. Caller holds the
// segment lock.
func (c *committer) stop() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.work.Signal()
	<-c.stopped
}

// run is the committer goroutine: claim a group, write it, hand it to the
// emitter, wake its writers; repeat.
func (c *committer) run() {
	defer close(c.stopped)
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.work.Wait()
		}
		if len(c.queue) == 0 {
			c.mu.Unlock()
			return
		}
		max := c.maxBatch
		if c.j.Mode == SyncAlways {
			// The contract of always is one durability cycle per record:
			// no batching, so the baseline really is fsync-per-update.
			max = 1
		}
		if c.linger > 0 && len(c.queue) < max && !c.closed && max > 1 {
			// Optional linger: give concurrent writers a window to join
			// this group. Off by default — natural batching (records that
			// staged during the previous group's fsync) adds no latency.
			c.mu.Unlock()
			time.Sleep(c.linger)
			c.mu.Lock()
		}
		// Settle: writers woken by the previous group's broadcast stage
		// staggered (scheduler latency), so the instant queue understates
		// the group that wants to form. While arrivals keep landing and
		// the group is under max, yield one scheduler pass so stragglers
		// join — a microsecond spent here saves their whole fsync. The
		// loop is bounded: it continues only while the queue grew.
		for max > 1 && len(c.queue) < max {
			prev := len(c.queue)
			c.mu.Unlock()
			runtime.Gosched()
			c.mu.Lock()
			if len(c.queue) == prev {
				break
			}
		}
		n := len(c.queue)
		if n > max {
			n = max
		}
		batch := c.queue[:n:n]
		c.queue = c.queue[n:]
		failed := c.err != nil
		c.mu.Unlock()

		var err error
		if failed {
			// Poisoned: drop the group, fail its writers via the sticky
			// err, and release the group's seqs so the global emission
			// order moves past them instead of stalling on the gap.
			c.em.skipBatch(batch)
			c.done.Broadcast()
			continue
		}
		var nbytes int
		nbytes, err = c.writeGroup(batch)

		if err == nil {
			// Hand the durable group to the emitter BEFORE acking the
			// writers: it is released to subscribers as soon as every
			// earlier seq (possibly from other segments' pipelines) has
			// been, and the writer's ticket waits for exactly that.
			c.em.readyBatch(batch)
		} else {
			c.em.skipBatch(batch)
		}

		c.mu.Lock()
		if err != nil {
			c.err = err
		} else {
			c.durable = batch[n-1].Seq
			c.appends += uint64(n)
			c.batches++
			c.bytes += uint64(nbytes)
			if n > c.maxSeen {
				c.maxSeen = n
			}
			for i, bound := range BatchHistBounds {
				if n <= bound {
					c.hist[i]++
					break
				}
			}
		}
		c.done.Broadcast()
		c.mu.Unlock()
	}
}

// writeGroup marshals the group into the reused buffer (in the journal's
// format) and appends it to the journal with the mode's durability.
func (c *committer) writeGroup(batch []UpdateRecord) (int, error) {
	if c.j.Format == FormatJSON {
		c.buf.Reset()
		for i := range batch {
			if err := c.enc.Encode(&batch[i]); err != nil {
				return 0, err
			}
		}
		if err := c.j.writeGroup(c.buf.Bytes()); err != nil {
			return 0, err
		}
		return c.buf.Len(), nil
	}
	var err error
	c.bin = c.bin[:0]
	for i := range batch {
		if c.bin, err = c.enc2.appendRecord(c.bin, &batch[i]); err != nil {
			return 0, err
		}
	}
	if err := c.j.writeGroup(c.bin); err != nil {
		return 0, err
	}
	return len(c.bin), nil
}

// journalStats snapshots the pipeline counters.
func (c *committer) journalStats() JournalStats {
	c.mu.Lock()
	s := JournalStats{
		Mode:      c.j.Mode.String(),
		Appends:   c.appends,
		Batches:   c.batches,
		Bytes:     c.bytes,
		MaxBatch:  c.maxSeen,
		BatchHist: c.hist,
	}
	c.mu.Unlock()
	s.Fsyncs = atomic.LoadUint64(&c.j.fsyncs)
	s.CommitNs = atomic.LoadInt64(&c.commitNs)
	return s
}

// commitTicket is what a writer blocks on after releasing the segment
// lock: Wait returns once the staged record is durable (journaled DITs)
// and released to subscribers in global order. The zero ticket (a no-op
// update) waits for nothing.
type commitTicket struct {
	c   *committer
	em  *emitter
	seq uint64
}

// Wait blocks for the ticket's durability and emission notifications.
func (t commitTicket) Wait() error {
	if t.c != nil {
		start := time.Now()
		err := t.c.await(t.seq)
		atomic.AddInt64(&t.c.commitNs, time.Since(start).Nanoseconds())
		if err != nil {
			return err
		}
	}
	if t.em != nil {
		t.em.waitEmitted(t.seq)
	}
	return nil
}

// commitReady rejects writes early when the segment's pipeline cannot
// accept them (closed or failed journal). Called with the segment lock
// held, before mutating.
func (s *segment) commitReady() error {
	if s.commit == nil {
		return nil
	}
	return s.commit.ready()
}

// commitLocked finishes a sequenced in-memory commit on segment s:
// journaled DITs stage the record for the segment's group committer
// (journal write, emitter hand-off, and the writer's wait all happen
// outside the lock); unjournaled DITs hand the record to the emitter
// directly.
func (d *DIT) commitLocked(s *segment, rec UpdateRecord) commitTicket {
	if s.commit != nil {
		s.commit.stage(rec)
		return commitTicket{c: s.commit, em: d.em, seq: rec.Seq}
	}
	d.em.ready(rec)
	return commitTicket{em: d.em, seq: rec.Seq}
}

// journalRenameParts journals a ModifyDN's per-entry decomposition: every
// moved entry contributes a delete record to its old segment's journal and
// an entry record to its new segment's journal, all carrying the rename's
// global seq. Caller holds every segment lock, so flushing the involved
// pipelines quiesces them and the direct appends land in correct per-DN
// order within each file.
func (d *DIT) journalRenameParts(seq uint64, st Stamp, moves []renameMove) error {
	bySeg := make(map[*segment][]UpdateRecord)
	var order []*segment // deterministic write order
	appendRec := func(s *segment, rec UpdateRecord) {
		if _, ok := bySeg[s]; !ok {
			order = append(order, s)
		}
		bySeg[s] = append(bySeg[s], rec)
	}
	for i := range moves {
		m := &moves[i]
		appendRec(d.seg(m.oldKey), UpdateRecord{Seq: seq, Op: "delete", DN: m.oldDN,
			OriginSeq: st.Seq, OriginNode: st.Node})
		nd := m.nd
		appendRec(d.seg(nd.key), UpdateRecord{Seq: seq, Op: "entry", DN: nd.dn.String(),
			Attrs: nd.attrs.Map(), OriginSeq: st.Seq, OriginNode: st.Node})
	}
	for _, s := range order {
		if err := s.commit.flush(); err != nil {
			return err
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	var enc2 v2Encoder
	var bin []byte
	for _, s := range order {
		recs := bySeg[s]
		var group []byte
		if s.journal.Format == FormatJSON {
			buf.Reset()
			for i := range recs {
				if err := enc.Encode(&recs[i]); err != nil {
					return err
				}
			}
			group = buf.Bytes()
		} else {
			bin = bin[:0]
			var err error
			for i := range recs {
				if bin, err = enc2.appendRecord(bin, &recs[i]); err != nil {
					return err
				}
			}
			group = bin
		}
		if err := s.journal.writeGroup(group); err != nil {
			s.commit.poison(err)
			return err
		}
	}
	return nil
}

// AttachJournal replays a legacy single-file journal into the DIT, then
// attaches it and starts the group-commit pipeline so every future
// committed update is appended. It returns the number of records replayed.
// A torn trailing record (crash mid-append) is truncated and tolerated —
// the journal ends at the last complete record, which is exactly the acked
// prefix — but corruption followed by further complete records still
// errors. Only single-segment DITs accept this form; segmented DITs attach
// one journal per segment via AttachJournalSet.
func (d *DIT) AttachJournal(j *Journal) (int, error) {
	if len(d.segs) != 1 {
		return 0, fmt.Errorf("directory: single-file journal on a %d-segment DIT; use AttachJournalSet", len(d.segs))
	}
	s := d.segs[0]
	s.mu.RLock()
	attached := s.journal != nil
	s.mu.RUnlock()
	if attached {
		return 0, fmt.Errorf("directory: journal already attached")
	}

	start := time.Now()
	n, nb, torn, err := d.replayFile(j.path, d.applyRecord)
	if err != nil {
		return n, err
	}
	ns := time.Since(start).Nanoseconds()
	d.replay.Store(&replayStats{Format: j.Format, Workers: 1, Records: uint64(n),
		Bytes: uint64(nb), WallNs: ns, SegmentNs: []int64{ns}})
	s.mu.Lock()
	if s.journal != nil {
		s.mu.Unlock()
		return n, fmt.Errorf("directory: journal already attached")
	}
	s.journal = j
	s.commit = newCommitter(d.em, j)
	if torn {
		d.tornTails.Store(1)
	}
	s.mu.Unlock()
	// Replay runs through the public ops, which emit records carrying
	// replay-minted stamps (restoreStamp then corrects the entries, but not
	// the emitted copies). Those must never be resumable: restart the
	// changelog tail's coverage at the restored seq so pre-restart cursors
	// take the snapshot fallback, which ships the corrected stamps.
	d.resetTailTo(d.seq.Load())
	return n, nil
}

// JournalSetConfig configures AttachJournalSet. Base is the path stem;
// segment i journals to <Base>.seg<i> and the layout manifest lives at
// <Base>.meta. Mode/MaxBatch/Linger/Format apply to every segment's
// pipeline; Workers caps the attach-replay worker pool (0 = GOMAXPROCS).
type JournalSetConfig struct {
	Base     string
	Mode     SyncMode
	MaxBatch int
	Linger   time.Duration
	Format   JournalFormat
	Workers  int
}

func segJournalPath(base string, i int) string { return fmt.Sprintf("%s.seg%d", base, i) }

// journalManifest records the on-disk layout so attach can tell whether
// the existing files match the configured segment count and record format.
// An absent format field means a set written before v2 existed, i.e. JSON.
type journalManifest struct {
	Segments int    `json:"segments"`
	Format   string `json:"format,omitempty"`
	// Entries holds each segment's live entry count at the time the
	// manifest was written (compaction, clean close, attach). It is a
	// presize hint only — attach allocates each empty segment map at this
	// capacity so replay never grows a map — and staleness is harmless.
	Entries []int `json:"entries,omitempty"`
}

// replayStats captures one attach-time replay (see JournalStats).
type replayStats struct {
	Format    JournalFormat
	Workers   int
	Records   uint64
	Bytes     uint64
	WallNs    int64
	SegmentNs []int64
}

// forEachIdx runs fn(i) for every i in [0, n), fanning out over up to
// workers goroutines (inline when workers <= 1).
func forEachIdx(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// AttachJournalSet replays and attaches one journal per segment. It
// returns the total records replayed across files. Three on-disk layouts
// are accepted:
//
//   - Fresh or matching segment files: each file replays relaxed into its
//     segment(s) — linear in live entries after compaction, since a
//     compacted file is exactly one entry record per live entry.
//   - A legacy single-file journal at Base (pre-segmentation data dir):
//     replayed strictly, then folded into segment files via a compaction
//     sweep; the legacy file is removed afterwards. A crash anywhere in
//     the migration is safe: entry upserts make re-folding idempotent.
//   - Segment files written under a different segment count: replayed
//     through the current router (a DN's records are totally ordered
//     within whichever single file held them), then rewritten into the
//     current layout and the stale files removed.
//
// When the on-disk layout matches the configured segment count, the files
// replay CONCURRENTLY on a pool of cfg.Workers goroutines (default
// GOMAXPROCS): each segment's file only ever touches that segment's entry
// map, so the only cross-segment work — the parent/child link pass and the
// global sequence restore — runs after every file has landed. The legacy
// and re-fold layouts keep the sequential path (their records cross
// segments). A set written in the other record format (manifest says so)
// replays normally — the decoder sniffs per record — and is migrated to
// cfg.Format through the same compaction rewrite the layout migrations use.
func (d *DIT) AttachJournalSet(cfg JournalSetConfig) (int, error) {
	for _, s := range d.segs {
		s.mu.RLock()
		attached := s.journal != nil
		s.mu.RUnlock()
		if attached {
			return 0, fmt.Errorf("directory: journal already attached")
		}
	}

	// A crash mid-compaction leaves a .compact temporary; it is garbage
	// (the real journal was never replaced) and must not survive.
	for i := 0; ; i++ {
		path := segJournalPath(cfg.Base, i) + ".compact"
		if err := os.Remove(path); err != nil && i >= len(d.segs) {
			break
		}
	}

	// Read the layout manifest (absence means legacy or fresh).
	manifestPath := cfg.Base + ".meta"
	diskSegs := 0
	diskFormat := FormatJSON // manifests predating v2 carry no format field
	haveManifest := false
	var entriesHint []int
	if b, err := os.ReadFile(manifestPath); err == nil {
		var m journalManifest
		if json.Unmarshal(b, &m) == nil {
			diskSegs = m.Segments
			haveManifest = true
			entriesHint = m.Entries
			if m.Format != "" {
				if f, ferr := ParseJournalFormat(m.Format); ferr == nil {
					diskFormat = f
				}
			}
		}
	}

	total := 0
	migrate := false
	legacy := false
	replayStart := time.Now()
	rst := replayStats{Format: cfg.Format, Workers: 1}

	// Legacy single-file journal: strict replay (one file carries the
	// global order, so the original operation semantics hold exactly).
	if _, err := os.Stat(cfg.Base); err == nil {
		n, nb, torn, err := d.replayFile(cfg.Base, d.applyRecord)
		if err != nil {
			return total, err
		}
		if torn {
			d.tornTails.Add(1)
		}
		total += n
		rst.Records += uint64(n)
		rst.Bytes += uint64(nb)
		migrate = true
		legacy = true
	}

	// A set written under a different segment count is re-folded; one
	// written in the other record format is rewritten in cfg.Format. Both
	// go through the same migrating compaction after attach.
	refold := diskSegs != 0 && diskSegs != len(d.segs)
	if refold || (haveManifest && diskFormat != cfg.Format) {
		migrate = true
	}
	maxSeq := uint64(0)
	applied := 0
	var stale []string

	if refold || legacy {
		// Foreign layouts replay sequentially, in file order: their records
		// route across segments through the current router, and files
		// beyond the configured count (larger previous layout) are folded
		// in and removed after migration.
		scan := len(d.segs)
		if diskSegs > scan {
			scan = diskSegs
		}
		rst.SegmentNs = make([]int64, scan)
		for i := 0; i < scan; i++ {
			path := segJournalPath(cfg.Base, i)
			if _, err := os.Stat(path); err != nil {
				continue
			}
			t0 := time.Now()
			n, ms, nb, torn, err := d.replayRelaxed(path)
			if err != nil {
				return total, err
			}
			if torn {
				d.tornTails.Add(1)
			}
			total += n
			applied += n
			rst.Records += uint64(n)
			rst.Bytes += uint64(nb)
			rst.SegmentNs[i] = time.Since(t0).Nanoseconds()
			if ms > maxSeq {
				maxSeq = ms
			}
			if i >= len(d.segs) {
				stale = append(stale, path)
			}
		}
	} else {
		// Matching layout: every file touches only its own segment's entry
		// map, so the files replay concurrently on the worker pool.
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(d.segs) {
			workers = len(d.segs)
		}
		rst.Workers = workers
		// Presize each empty segment map from the manifest's entry counts:
		// a compacted file upserts exactly that many live entries, and
		// growing a multi-hundred-thousand-key map mid-replay (repeated
		// doubling plus bucket evacuation) is the dominant allocator cost
		// at this population. The hint may be stale; maps still grow.
		for i, s := range d.segs {
			if i < len(entriesHint) && entriesHint[i] > 0 {
				s.mu.Lock()
				if len(s.entries) == 0 {
					s.entries = make(map[string]*node, entriesHint[i])
				}
				s.mu.Unlock()
			}
		}
		type segReplay struct {
			n    int
			max  uint64
			nb   int64
			torn bool
			ns   int64
			err  error
		}
		res := make([]segReplay, len(d.segs))
		forEachIdx(workers, len(d.segs), func(i int) {
			path := segJournalPath(cfg.Base, i)
			if _, err := os.Stat(path); err != nil {
				return
			}
			t0 := time.Now()
			n, ms, nb, torn, err := d.replayRelaxed(path)
			res[i] = segReplay{n: n, max: ms, nb: nb, torn: torn,
				ns: time.Since(t0).Nanoseconds(), err: err}
		})
		rst.SegmentNs = make([]int64, len(d.segs))
		for i := range res {
			if res[i].err != nil {
				return total, res[i].err
			}
			if res[i].torn {
				d.tornTails.Add(1)
			}
			total += res[i].n
			applied += res[i].n
			rst.Records += uint64(res[i].n)
			rst.Bytes += uint64(res[i].nb)
			rst.SegmentNs[i] = res[i].ns
			if res[i].max > maxSeq {
				maxSeq = res[i].max
			}
		}
	}
	d.wireChildren(rst.Workers)
	rst.WallNs = time.Since(replayStart).Nanoseconds()
	d.replay.Store(&rst)

	// Advance the global sequence past everything replayed so future seqs
	// never collide with ones already on disk or streamed to replicas.
	seq := d.seq.Load() + uint64(applied)
	if maxSeq > seq {
		seq = maxSeq
	}
	d.seq.Store(seq)
	d.em.advanceTo(seq)
	// Records restored their own stamps into the clock above; raising it to
	// the commit seq too keeps fresh local writes above anything a
	// pre-replication journal (all-zero stamps) could have produced.
	d.bumpClock(seq)

	// Open and attach every segment's journal.
	opened := make([]*Journal, 0, len(d.segs))
	for i, s := range d.segs {
		j, err := OpenJournal(segJournalPath(cfg.Base, i))
		if err != nil {
			for _, oj := range opened {
				oj.Close()
			}
			return total, err
		}
		j.Mode, j.MaxBatch, j.Linger, j.Format = cfg.Mode, cfg.MaxBatch, cfg.Linger, cfg.Format
		opened = append(opened, j)
		s.mu.Lock()
		s.journal = j
		s.commit = newCommitter(d.em, j)
		s.mu.Unlock()
	}
	d.journalBase, d.journalFormat = cfg.Base, cfg.Format

	if migrate {
		// Fold the foreign layout into the current one: one compaction
		// sweep writes every segment's live state into its own file, after
		// which the legacy/stale files are dead weight.
		if err := d.Compact(); err != nil {
			return total, err
		}
		if err := os.Remove(cfg.Base); err != nil && !os.IsNotExist(err) {
			return total, err
		}
		for _, path := range stale {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return total, err
			}
		}
	}
	for _, s := range d.segs {
		if sz, err := s.journal.size(); err == nil {
			s.sizeAfterCompact = sz
		}
	}

	if err := d.writeManifest(cfg.Base, cfg.Format); err != nil {
		return total, err
	}
	return total, nil
}

// writeManifest persists the layout manifest (tmp+rename so it is never
// torn). Alongside the segment count and record format it records each
// segment's live entry count, the presize hint the next attach uses.
// Refreshed at attach, after every full compaction, and at clean close so
// the hint tracks the population.
func (d *DIT) writeManifest(base string, format JournalFormat) error {
	m := journalManifest{
		Segments: len(d.segs),
		Format:   format.String(),
		Entries:  make([]int, len(d.segs)),
	}
	for i, s := range d.segs {
		s.mu.RLock()
		m.Entries[i] = len(s.entries)
		s.mu.RUnlock()
	}
	mb, _ := json.Marshal(m)
	path := base + ".meta"
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(mb, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if dirf, err := os.Open(filepath.Dir(path)); err == nil {
		dirf.Sync()
		dirf.Close()
	}
	return nil
}

// CloseJournal stops background compaction, flushes every segment's commit
// pipeline, stops the committers, closes the journal files, and detaches
// them. Writers that race the close are rejected with unavailable before
// they mutate anything; everything staged before the close is written
// first. A DIT without journals returns nil.
func (d *DIT) CloseJournal() error {
	d.stopAutoCompact()
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	var firstErr error
	for _, s := range d.segs {
		s.mu.Lock()
		if s.journal == nil {
			s.mu.Unlock()
			continue
		}
		flushErr := s.commit.flush()
		s.commit.stop()
		closeErr := s.journal.Close()
		s.journal = nil
		s.commit = nil
		s.mu.Unlock()
		if firstErr == nil {
			if flushErr != nil {
				firstErr = flushErr
			} else {
				firstErr = closeErr
			}
		}
	}
	// A clean close leaves the manifest's presize hint exact for the next
	// attach (entry counts drift between compactions while serving).
	if firstErr == nil && d.journalBase != "" {
		firstErr = d.writeManifest(d.journalBase, d.journalFormat)
	}
	return firstErr
}

// JournalStats snapshots the commit pipelines, aggregated across segments
// (zero when no journal is attached).
func (d *DIT) JournalStats() JournalStats {
	var out JournalStats
	if rs := d.replay.Load(); rs != nil {
		out.Format = rs.Format.String()
		out.ReplayedRecords = rs.Records
		out.ReplayedBytes = rs.Bytes
		out.ReplayNs = rs.WallNs
		out.ReplayWorkers = rs.Workers
		out.SegmentReplayNs = append([]int64(nil), rs.SegmentNs...)
	}
	for _, s := range d.segs {
		s.mu.RLock()
		c := s.commit
		if s.journal != nil && out.Format == "" {
			out.Format = s.journal.Format.String()
		}
		s.mu.RUnlock()
		if c == nil {
			continue
		}
		st := c.journalStats()
		if out.Mode == "" {
			out.Mode = st.Mode
		}
		out.Appends += st.Appends
		out.Batches += st.Batches
		out.Fsyncs += st.Fsyncs
		out.Bytes += st.Bytes
		if st.MaxBatch > out.MaxBatch {
			out.MaxBatch = st.MaxBatch
		}
		for i := range out.BatchHist {
			out.BatchHist[i] += st.BatchHist[i]
		}
		out.CommitNs += st.CommitNs
	}
	out.TornTails = d.tornTails.Load()
	return out
}

// replayFile applies all records from path (missing file = empty journal)
// through apply, reporting the journal bytes consumed by complete records.
// Each record's first byte says what it is — 0xB2 a v2 frame, anything
// else a JSON line — so one file may mix formats (the state between a
// format switch and its migrating compaction). A torn final record — an
// incomplete frame, or unmarshalable bytes with nothing but emptiness
// after them; the signature of a crash mid-append — is truncated from the
// file and reported via torn; a damaged record followed by more data is
// real corruption and errors.
func (d *DIT) replayFile(path string, apply func(UpdateRecord) error) (count int, nbytes int64, torn bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 256*1024)
	var dec v2Decoder
	var rec UpdateRecord
	var off int64 // byte offset of the record being read
	for {
		first, perr := r.Peek(1)
		if perr == io.EOF {
			return count, off, false, nil
		}
		if perr != nil {
			return count, off, false, perr
		}
		if first[0] == frameMarkerV2 {
			n, ferr := dec.readFrame(r, &rec)
			if ferr == errTornFrameV2 {
				// Torn tail: drop it so future appends start at a record
				// boundary instead of extending garbage.
				if terr := os.Truncate(path, off); terr != nil {
					return count, off, false, fmt.Errorf("directory: truncating torn journal tail: %w", terr)
				}
				return count, off, true, nil
			}
			if ferr != nil {
				return count, off, false, fmt.Errorf("directory: journal record %d: %w", count+1, ferr)
			}
			if aerr := apply(rec); aerr != nil {
				return count, off, false, fmt.Errorf("directory: replaying record %d (%s %q): %w",
					count+1, rec.Op, rec.DN, aerr)
			}
			count++
			off += int64(n)
			continue
		}
		line, rerr := r.ReadBytes('\n')
		lineLen := int64(len(line))
		recb := bytes.TrimSuffix(line, []byte{'\n'})
		if len(bytes.TrimSpace(recb)) > 0 {
			var u UpdateRecord
			if uerr := json.Unmarshal(recb, &u); uerr != nil {
				rest, _ := io.ReadAll(r)
				if len(bytes.TrimSpace(rest)) > 0 {
					return count, off, false, fmt.Errorf("directory: journal record %d: %w", count+1, uerr)
				}
				if terr := os.Truncate(path, off); terr != nil {
					return count, off, false, fmt.Errorf("directory: truncating torn journal tail: %w", terr)
				}
				return count, off, true, nil
			}
			if aerr := apply(u); aerr != nil {
				return count, off, false, fmt.Errorf("directory: replaying record %d (%s %q): %w",
					count+1, u.Op, u.DN, aerr)
			}
			count++
		}
		off += lineLen
		if rerr == io.EOF {
			return count, off, false, nil
		}
		if rerr != nil {
			return count, off, false, rerr
		}
	}
}

// replayRelaxed replays one segment journal. See applyRelaxed for the
// (deliberately weaker) semantics; maxSeq reports the highest commit seq
// seen in the file.
func (d *DIT) replayRelaxed(path string) (count int, maxSeq uint64, nbytes int64, torn bool, err error) {
	count, nbytes, torn, err = d.replayFile(path, func(rec UpdateRecord) error {
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		return d.applyRelaxed(rec)
	})
	return count, maxSeq, nbytes, torn, err
}

// applyRecord replays one record of a legacy single-file journal through
// the public operations — the file carries the global commit order, so
// full LDAP semantics (parent existence, leaf-only delete, subtree
// renames) hold at every prefix.
func (d *DIT) applyRecord(rec UpdateRecord) error {
	name, err := dn.Parse(rec.DN)
	if err != nil {
		return err
	}
	switch rec.Op {
	case "add", "entry":
		if err := d.Add(name, rec.attrsValue()); err != nil {
			return err
		}
		d.restoreStamp(name.Normalize(), rec.Origin())
		return nil
	case "delete":
		st := rec.Origin()
		if err := d.Delete(name); err != nil {
			if !st.IsZero() && CodeOf(err) == ldap.ResultNoSuchObject {
				// A tombstone-only record: a remote delete journaled for an
				// entry this node never held. Restore the tombstone alone.
				d.restoreTombstone(name.Normalize(), st)
				return nil
			}
			return err
		}
		if !st.IsZero() {
			d.restoreTombstone(name.Normalize(), st)
		}
		return nil
	case "modify":
		changes, err := changesFromRecord(rec)
		if err != nil {
			return err
		}
		if err := d.Modify(name, changes); err != nil {
			return err
		}
		d.restoreStamp(name.Normalize(), rec.Origin())
		return nil
	case "modifydn":
		newRDN, err := dn.Parse(rec.NewRDN)
		if err != nil || newRDN.Depth() != 1 {
			return fmt.Errorf("bad newRDN %q", rec.NewRDN)
		}
		if err := d.ModifyDN(name, newRDN.RDN(), rec.DeleteOldRDN); err != nil {
			return err
		}
		d.restoreStamp(name.WithRDN(newRDN.RDN()).Normalize(), rec.Origin())
		return nil
	}
	return fmt.Errorf("unknown journal op %q", rec.Op)
}

// restoreStamp reinstates a replayed record's origin stamp on its entry
// (strict replay applies through the public ops, which mint fresh local
// stamps; without this, a restarted node's entries would lose LWW to
// stale remote state and diverge). No-op for unstamped legacy records.
func (d *DIT) restoreStamp(key string, st Stamp) {
	if st.IsZero() {
		return
	}
	d.bumpClock(st.Seq)
	s := d.seg(key)
	s.mu.Lock()
	if n, ok := s.entries[key]; ok {
		n.stamp = st
	}
	s.mu.Unlock()
}

// restoreTombstone reinstates a replayed delete's tombstone.
func (d *DIT) restoreTombstone(key string, st Stamp) {
	d.bumpClock(st.Seq)
	s := d.seg(key)
	s.mu.Lock()
	s.setTombstone(key, st)
	s.mu.Unlock()
}

// applyRelaxed replays one record of a per-segment journal. A segment file
// sees only its own entries' history — parents may live elsewhere and
// logical modifydn records never appear (renames are decomposed into
// per-entry delete+entry parts at journaling time) — so replay is
// entry-local: add/entry upsert (which also makes migration re-folds
// idempotent), modify and delete apply strictly to the entry (its per-DN
// history within one file is total), and parent/child links are wired in
// a single post-pass after every file has replayed.
func (d *DIT) applyRelaxed(rec UpdateRecord) error {
	name, err := dn.Parse(rec.DN)
	if err != nil {
		return err
	}
	key := rec.normKey // v2 entry frames carry the key; others normalize here
	if key == "" {
		key = name.Normalize()
	}
	s := d.seg(key)
	switch rec.Op {
	case "add", "entry":
		a := rec.attrsValue()
		st := rec.Origin()
		d.bumpClock(st.Seq)
		s.mu.Lock()
		if n, ok := s.entries[key]; ok {
			s.reindexEntry(key, n.attrs, a)
			n.attrs = a
			n.dn = name
			n.stamp = st
		} else {
			s.entries[key] = &node{dn: name, key: key, attrs: a, stamp: st}
			s.indexEntry(key, a)
			d.count.Add(1)
		}
		delete(s.tombstones, key)
		s.mu.Unlock()
		return nil
	case "delete":
		st := rec.Origin()
		d.bumpClock(st.Seq)
		s.mu.Lock()
		defer s.mu.Unlock()
		n, ok := s.entries[key]
		if !ok {
			if !st.IsZero() {
				// Tombstone-only record (a remote delete of an entry this
				// node never held, or compaction's persisted tombstones).
				s.setTombstone(key, st)
				return nil
			}
			return errf(ldap.ResultNoSuchObject, "no entry %q", name)
		}
		delete(s.entries, key)
		s.unindexEntry(key, n.attrs)
		if !st.IsZero() {
			s.setTombstone(key, st)
		}
		d.count.Add(-1)
		return nil
	case "modify":
		changes, err := changesFromRecord(rec)
		if err != nil {
			return err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		n, ok := s.entries[key]
		if !ok {
			return errf(ldap.ResultNoSuchObject, "no entry %q", name)
		}
		work, err := d.applyChanges(name, n.attrs, changes)
		if err != nil {
			return err
		}
		s.reindexEntry(key, n.attrs, work)
		n.attrs = work
		if st := rec.Origin(); !st.IsZero() {
			n.stamp = st
			d.bumpClock(st.Seq)
		}
		return nil
	}
	return fmt.Errorf("unexpected op %q in segment journal", rec.Op)
}

// changesFromRecord decodes a modify record's change list.
func changesFromRecord(rec UpdateRecord) ([]ldap.Change, error) {
	changes := make([]ldap.Change, 0, len(rec.Changes))
	for _, c := range rec.Changes {
		var op ldap.ModOp
		switch c.Op {
		case "add":
			op = ldap.ModAdd
		case "delete":
			op = ldap.ModDelete
		case "replace":
			op = ldap.ModReplace
		default:
			return nil, fmt.Errorf("unknown change op %q", c.Op)
		}
		changes = append(changes, ldap.Change{Op: op,
			Attribute: ldap.Attribute{Type: c.Attr, Values: c.Values}})
	}
	return changes, nil
}

// wireChildren rebuilds every parent's child-link set after relaxed
// replay, which installs entries without cross-segment linking. With
// workers > 1 the rebuild runs as two barrier-separated parallel passes:
// phase A scans each segment, clears its nodes' child sets, and buckets
// every (parent, child) link by the PARENT's segment; phase B hands each
// parent segment exactly its own buckets — no two workers ever touch the
// same node, so the passes need no locking beyond the barrier between
// them (forEachIdx's WaitGroup).
func (d *DIT) wireChildren(workers int) {
	d.lockAll()
	defer d.unlockAll()
	if workers <= 1 || len(d.segs) == 1 {
		for _, s := range d.segs {
			for _, n := range s.entries {
				n.children = nil
			}
		}
		// Consecutive entries overwhelmingly share a parent (the flat tree
		// hangs everything off the suffix), so cache the last parent lookup
		// — one hash+probe per parent run instead of per entry.
		var lastPK string
		var lastP *node
		for _, s := range d.segs {
			for key := range s.entries {
				pk := parentNormKey(key)
				if pk == "" {
					continue
				}
				if pk != lastPK || lastP == nil {
					lastPK, lastP = pk, d.seg(pk).entries[pk]
				}
				if lastP != nil {
					lastP.addChild(key)
				}
			}
		}
		return
	}
	type childLink struct{ parent, child string }
	// links[scanSeg][parentSeg] — each phase-A worker writes only its own
	// row, each phase-B worker reads only its own column.
	links := make([][][]childLink, len(d.segs))
	forEachIdx(workers, len(d.segs), func(i int) {
		ents := d.segs[i].entries
		for _, n := range ents {
			n.children = nil
		}
		row := make([][]childLink, len(d.segs))
		// Same consecutive-parent cache as the sequential path: routing
		// (hash) and same-segment node lookup run once per parent run.
		var lastPK string
		var lastPS int
		var lastP *node // valid only when lastPS == i
		for key := range ents {
			pk := parentNormKey(key)
			if pk == "" {
				continue
			}
			if pk != lastPK {
				lastPK, lastPS, lastP = pk, d.segIndex(pk), nil
				if lastPS == i {
					lastP = ents[pk]
				}
			}
			if lastPS == i {
				// Same-segment link: this worker owns every node in
				// segment i during phase A (children already cleared
				// above), so apply directly instead of bucketing.
				if lastP != nil {
					lastP.addChild(key)
				}
				continue
			}
			row[lastPS] = append(row[lastPS], childLink{parent: pk, child: key})
		}
		links[i] = row
	})
	forEachIdx(workers, len(d.segs), func(ps int) {
		ents := d.segs[ps].entries
		var lastPK string
		var lastP *node
		for _, row := range links {
			for _, l := range row[ps] {
				if l.parent != lastPK || lastP == nil {
					lastPK, lastP = l.parent, ents[l.parent]
				}
				if lastP != nil {
					lastP.addChild(l.child)
				}
			}
		}
	})
}

// parentNormKey returns the parent entry's normalized DN key given an
// entry's normalized key — everything past the first unescaped comma, or
// "" for a depth-1 entry. Normalized keys escape every literal ',' and
// '\' inside attribute values, so the first comma not preceded by a
// backslash escape is exactly the first RDN separator. This is the
// allocation-free equivalent of n.dn.Parent().Normalize(), which the
// wiring post-pass would otherwise pay twice per entry per attach.
func parentNormKey(key string) string {
	for i := 0; i < len(key); i++ {
		switch key[i] {
		case '\\':
			i++ // skip the escaped byte
		case ',':
			return key[i+1:]
		}
	}
	return ""
}
