package directory

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

// Durability. The paper's directory world handles system and media failure
// with replication and backups; this implementation adds the database-
// native equivalent: a write-ahead journal of committed updates with
// snapshot compaction. Reopening the journal replays it, restoring the
// exact directory state.
//
// The commit path is a staged group-commit pipeline (DESIGN.md §11).
// Under the DIT lock a write only validates, applies in memory, takes its
// commit sequence number, and stages its record; a single committer
// goroutine marshals and writes every concurrently staged record as one
// buffered write with ONE fsync per group, then fans the group out to
// changelog subscribers and finally wakes the staging writers. A writer's
// ack therefore still means "durable per the journal's sync mode and
// visible on every subscription", but neither marshaling nor journal I/O
// ever executes inside the DIT critical section, and fsync cost is
// amortized across however many writers committed together.
//
// The journal is deliberately simple — one file, newline-delimited JSON,
// atomically-renamed snapshots — because the consistency story of MetaComm
// does not depend on it: a directory restored from an older journal is just
// a repository that missed updates, which the Update Manager's
// synchronization facility reconciles.

// UpdateRecord is one committed update, as written to the journal and
// streamed to replicas. Seq is assigned at commit; replay derives order
// from file position, so records journaled before sequencing existed (or
// compaction's "entry" records) replay identically.
type UpdateRecord struct {
	Seq uint64 `json:"seq,omitempty"`

	Op string `json:"op"` // add | delete | modify | modifydn | entry

	DN    string              `json:"dn"`
	Attrs map[string][]string `json:"attrs,omitempty"` // add / entry

	Changes []UpdateChange `json:"changes,omitempty"` // modify

	NewRDN       string `json:"newRDN,omitempty"` // modifydn
	DeleteOldRDN bool   `json:"deleteOldRDN,omitempty"`
}

// UpdateChange is one modification inside an UpdateRecord.
type UpdateChange struct {
	Op     string   `json:"op"` // add | delete | replace
	Attr   string   `json:"attr"`
	Values []string `json:"values,omitempty"`
}

// SyncMode selects when an appended record becomes durable relative to its
// writer's acknowledgment.
type SyncMode int

const (
	// SyncNone flushes each commit group to the OS but never fsyncs;
	// crash durability is whatever the page cache provides. This is the
	// fastest mode and the historical default.
	SyncNone SyncMode = iota
	// SyncAlways makes every record individually durable before its writer
	// is acknowledged: one write+fsync cycle per record, no batching — the
	// safe-but-slow baseline (one fsync per update no matter how many
	// writers are concurrent).
	SyncAlways
	// SyncGroup is group commit: all records staged while the previous
	// group was being written are coalesced into one buffered write and
	// ONE fsync; every writer in the group is acknowledged together. Same
	// ack guarantee as SyncAlways (a returned write is on stable storage),
	// fsync cost amortized across the group.
	SyncGroup
)

// String returns the flag spelling of the mode.
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	default:
		return "none"
	}
}

// ParseSyncMode parses the -journal-sync flag spelling.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "group":
		return SyncGroup, nil
	case "none", "":
		return SyncNone, nil
	}
	return SyncNone, fmt.Errorf("directory: unknown sync mode %q (want always, group, or none)", s)
}

// DefaultJournalBatch caps how many records one commit group may carry when
// Journal.MaxBatch is unset. Groups form from whatever is concurrently
// staged — there is no artificial wait — so the cap only bounds worst-case
// group latency under extreme backlog.
const DefaultJournalBatch = 256

// Journal persists committed directory updates. Configure Mode, MaxBatch,
// and Linger before AttachJournal; they are read by the commit pipeline.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer

	// Mode selects the durability mode (default SyncNone).
	Mode SyncMode
	// MaxBatch caps the records per commit group (0 = DefaultJournalBatch).
	MaxBatch int
	// Linger, when positive, is how long the committer waits after claiming
	// a non-full group for more records to arrive before writing it. Zero
	// (the default) writes immediately: batching then comes only from
	// records staged while the previous group's fsync was in flight, which
	// adds no latency and is usually what you want.
	Linger time.Duration

	fsyncs uint64 // atomic
}

// OpenJournal opens (creating if needed) a journal file.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("directory: opening journal: %w", err)
	}
	return &Journal{path: path, f: f, w: bufio.NewWriter(f)}, nil
}

// Close flushes and closes the journal file. A journal attached to a DIT
// should be closed via DIT.CloseJournal, which flushes the commit pipeline
// first; closing directly while writers are staging fails their commits
// (cleanly — the pipeline reports the closed journal) but loses nothing
// that was already acknowledged.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err1 := j.w.Flush()
	err2 := j.f.Close()
	j.f = nil
	if err1 != nil {
		return err1
	}
	return err2
}

// writeGroup appends one marshaled commit group and makes it as durable as
// Mode requires: flushed for SyncNone, flushed+fsynced otherwise. The
// group's records were marshaled by the committer outside any lock.
func (j *Journal) writeGroup(data []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("directory: journal closed")
	}
	if _, err := j.w.Write(data); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.Mode != SyncNone {
		atomic.AddUint64(&j.fsyncs, 1)
		return j.f.Sync()
	}
	return nil
}

// JournalStats is a point-in-time snapshot of the commit pipeline.
type JournalStats struct {
	// Mode is the journal's sync mode ("always", "group", "none").
	Mode string
	// Appends counts records committed through the pipeline; Batches counts
	// the commit groups that carried them. Appends/Batches is the mean
	// group size — the fsync amortization factor in group mode.
	Appends uint64
	Batches uint64
	// Fsyncs counts journal fsync calls (0 in SyncNone mode).
	Fsyncs uint64
	// Bytes counts journal bytes written through the pipeline.
	Bytes uint64
	// MaxBatch is the largest commit group observed.
	MaxBatch int
	// BatchHist is a histogram of group sizes; bucket upper bounds are
	// BatchHistBounds.
	BatchHist [6]uint64
	// CommitNs sums the writers' observed ack latency (stage → durable);
	// CommitNs/Appends is the mean durable-commit latency.
	CommitNs int64
	// TornTails counts torn trailing records truncated during replay (0 or
	// 1 per attach; a crash mid-append leaves at most one).
	TornTails uint64
}

// BatchHistBounds are the inclusive upper bounds of JournalStats.BatchHist
// buckets (the last bucket is unbounded).
var BatchHistBounds = [6]int{1, 4, 16, 64, 256, 1 << 30}

// MeanBatch returns the mean commit-group size.
func (s JournalStats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Appends) / float64(s.Batches)
}

// MeanCommit returns the mean writer-observed commit latency.
func (s JournalStats) MeanCommit() time.Duration {
	if s.Appends == 0 {
		return 0
	}
	return time.Duration(s.CommitNs / int64(s.Appends))
}

// committer is the group-commit pipeline attached between a DIT and its
// journal. Writers stage records under d.mu (cheap: one slice append) and
// then block in await outside the lock; the run goroutine claims every
// staged record, writes the group through one buffered write + one fsync,
// fans the group out to changelog subscribers, and finally broadcasts
// durability so the writers return. Emission-before-broadcast preserves
// the invariant consumers rely on (see um/sync.go): once a writer's call
// returns, its record is already in every subscription buffer.
type committer struct {
	d *DIT
	j *Journal

	mu     sync.Mutex
	work   sync.Cond // signals run: queue non-empty or closing
	done   sync.Cond // broadcast: durable advanced or pipeline failed
	queue  []UpdateRecord
	staged uint64 // highest seq staged
	// durable is the highest seq written per the journal's mode; err is a
	// sticky I/O failure that poisons the pipeline (reads keep working,
	// every later write is rejected before mutating the DIT).
	durable uint64
	err     error
	closed  bool
	stopped chan struct{}

	maxBatch int
	linger   time.Duration

	// Marshaling state, reused across groups: the encoder appends each
	// record plus the record separator to buf, so the per-record
	// append(b, '\n') allocation of the old path is gone.
	buf bytes.Buffer
	enc *json.Encoder

	// Stats, guarded by mu except the atomics.
	appends   uint64
	batches   uint64
	bytes     uint64
	maxSeen   int
	hist      [6]uint64
	commitNs  int64  // atomic
	tornTails uint64 // set at attach, read-only after
}

func newCommitter(d *DIT, j *Journal) *committer {
	c := &committer{d: d, j: j, stopped: make(chan struct{}),
		maxBatch: j.MaxBatch, linger: j.Linger}
	if c.maxBatch <= 0 {
		c.maxBatch = DefaultJournalBatch
	}
	c.work.L = &c.mu
	c.done.L = &c.mu
	c.enc = json.NewEncoder(&c.buf)
	go c.run()
	return c
}

// ready reports whether the pipeline accepts new records. Checked under
// d.mu before a write mutates anything, so a closed or failed journal
// rejects updates without applying them.
func (c *committer) ready() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errf(ldap.ResultUnavailable, "journal closed")
	}
	if c.err != nil {
		return errf(ldap.ResultUnavailable, "journal failed: %v", c.err)
	}
	return nil
}

// stage enqueues one sequenced record. Called with d.mu held, which is what
// guarantees queue order == commit order == journal file order.
func (c *committer) stage(rec UpdateRecord) {
	c.mu.Lock()
	c.queue = append(c.queue, rec)
	c.staged = rec.Seq
	c.mu.Unlock()
	c.work.Signal()
}

// await blocks until seq is durable (per mode) and emitted, or the
// pipeline failed before reaching it.
func (c *committer) await(seq uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.durable < seq {
		if c.err != nil {
			return errf(ldap.ResultUnavailable, "journal write failed: %v", c.err)
		}
		c.done.Wait()
	}
	return nil
}

// flush waits until everything staged so far is durable. Callers hold d.mu
// (so nothing new can stage) — Compact and CloseJournal use it to quiesce
// the pipeline.
func (c *committer) flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.durable < c.staged {
		if c.err != nil {
			return c.err
		}
		c.done.Wait()
	}
	return c.err
}

// stop shuts the run goroutine down after a flush. Caller holds d.mu.
func (c *committer) stop() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.work.Signal()
	<-c.stopped
}

// run is the committer goroutine: claim a group, write it, emit it, wake
// its writers; repeat.
func (c *committer) run() {
	defer close(c.stopped)
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.work.Wait()
		}
		if len(c.queue) == 0 {
			c.mu.Unlock()
			return
		}
		max := c.maxBatch
		if c.j.Mode == SyncAlways {
			// The contract of always is one durability cycle per record:
			// no batching, so the baseline really is fsync-per-update.
			max = 1
		}
		if c.linger > 0 && len(c.queue) < max && !c.closed && max > 1 {
			// Optional linger: give concurrent writers a window to join
			// this group. Off by default — natural batching (records that
			// staged during the previous group's fsync) adds no latency.
			c.mu.Unlock()
			time.Sleep(c.linger)
			c.mu.Lock()
		}
		// Settle: writers woken by the previous group's broadcast stage
		// staggered (scheduler latency), so the instant queue understates
		// the group that wants to form. While arrivals keep landing and
		// the group is under max, yield one scheduler pass so stragglers
		// join — a microsecond spent here saves their whole fsync. The
		// loop is bounded: it continues only while the queue grew.
		for max > 1 && len(c.queue) < max {
			prev := len(c.queue)
			c.mu.Unlock()
			runtime.Gosched()
			c.mu.Lock()
			if len(c.queue) == prev {
				break
			}
		}
		n := len(c.queue)
		if n > max {
			n = max
		}
		batch := c.queue[:n:n]
		c.queue = c.queue[n:]
		failed := c.err != nil
		c.mu.Unlock()

		var err error
		if failed {
			// Poisoned: drop the group, fail its writers via the sticky err.
			c.done.Broadcast()
			continue
		}
		var nbytes int
		nbytes, err = c.writeGroup(batch)

		if err == nil {
			// Fan out to changelog subscribers BEFORE acking the writers:
			// one subscriber sweep per group instead of per record, and a
			// returned write is already visible on every subscription.
			c.d.emitBatch(batch)
		}

		c.mu.Lock()
		if err != nil {
			c.err = err
		} else {
			c.durable = batch[n-1].Seq
			c.appends += uint64(n)
			c.batches++
			c.bytes += uint64(nbytes)
			if n > c.maxSeen {
				c.maxSeen = n
			}
			for i, bound := range BatchHistBounds {
				if n <= bound {
					c.hist[i]++
					break
				}
			}
		}
		c.done.Broadcast()
		c.mu.Unlock()
	}
}

// writeGroup marshals the group into the reused buffer and appends it to
// the journal with the mode's durability.
func (c *committer) writeGroup(batch []UpdateRecord) (int, error) {
	c.buf.Reset()
	for i := range batch {
		if err := c.enc.Encode(&batch[i]); err != nil {
			return 0, err
		}
	}
	if err := c.j.writeGroup(c.buf.Bytes()); err != nil {
		return 0, err
	}
	return c.buf.Len(), nil
}

// stats snapshots the pipeline counters.
func (c *committer) journalStats() JournalStats {
	c.mu.Lock()
	s := JournalStats{
		Mode:      c.j.Mode.String(),
		Appends:   c.appends,
		Batches:   c.batches,
		Bytes:     c.bytes,
		MaxBatch:  c.maxSeen,
		BatchHist: c.hist,
		TornTails: c.tornTails,
	}
	c.mu.Unlock()
	s.Fsyncs = atomic.LoadUint64(&c.j.fsyncs)
	s.CommitNs = atomic.LoadInt64(&c.commitNs)
	return s
}

// commitTicket is what a writer blocks on after releasing d.mu: Wait
// returns once the staged record is durable and emitted. The zero ticket
// (unjournaled DIT — the commit was final and emitted inline) waits for
// nothing.
type commitTicket struct {
	c   *committer
	seq uint64
}

// Wait blocks for the ticket's durability notification.
func (t commitTicket) Wait() error {
	if t.c == nil {
		return nil
	}
	start := time.Now()
	err := t.c.await(t.seq)
	atomic.AddInt64(&t.c.commitNs, time.Since(start).Nanoseconds())
	return err
}

// commitReadyLocked rejects writes early when the pipeline cannot accept
// them (closed or failed journal). Called with d.mu held, before mutating.
func (d *DIT) commitReadyLocked() error {
	if d.commit == nil {
		return nil
	}
	return d.commit.ready()
}

// commitLocked finishes a sequenced in-memory commit: journaled DITs stage
// the record for the group committer (journal write, changelog fan-out,
// and the writer's wait all happen outside d.mu); unjournaled DITs emit to
// subscribers inline, exactly the pre-pipeline behavior.
func (d *DIT) commitLocked(rec UpdateRecord) commitTicket {
	if d.commit != nil {
		d.commit.stage(rec)
		return commitTicket{c: d.commit, seq: rec.Seq}
	}
	d.emitOne(rec)
	return commitTicket{}
}

// AttachJournal replays the journal's records into the DIT, then attaches
// it and starts the group-commit pipeline so every future committed update
// is appended. It returns the number of records replayed. A torn trailing
// record (crash mid-append) is truncated and tolerated — the journal ends
// at the last complete record, which is exactly the acked prefix —
// but corruption followed by further complete records still errors. The
// DIT must not have a journal attached already.
func (d *DIT) AttachJournal(j *Journal) (int, error) {
	d.mu.Lock()
	if d.journal != nil {
		d.mu.Unlock()
		return 0, fmt.Errorf("directory: journal already attached")
	}
	d.mu.Unlock()

	n, torn, err := d.replay(j.path)
	if err != nil {
		return n, err
	}
	d.mu.Lock()
	if d.journal != nil {
		d.mu.Unlock()
		return n, fmt.Errorf("directory: journal already attached")
	}
	d.journal = j
	d.commit = newCommitter(d, j)
	if torn {
		d.commit.tornTails = 1
	}
	d.mu.Unlock()
	return n, nil
}

// CloseJournal flushes the commit pipeline, stops the committer, closes
// the journal file, and detaches it. Writers that race the close are
// rejected with unavailable before they mutate anything; everything staged
// before the close is written first. A DIT without a journal returns nil.
func (d *DIT) CloseJournal() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.journal == nil {
		return nil
	}
	flushErr := d.commit.flush()
	d.commit.stop()
	closeErr := d.journal.Close()
	d.journal = nil
	d.commit = nil
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// JournalStats snapshots the commit pipeline (zero when no journal is
// attached).
func (d *DIT) JournalStats() JournalStats {
	d.mu.RLock()
	c := d.commit
	d.mu.RUnlock()
	if c == nil {
		return JournalStats{}
	}
	return c.journalStats()
}

// replay applies all records from path (missing file = empty journal). A
// torn final record — unmarshalable bytes with nothing but emptiness after
// them, the signature of a crash mid-append — is truncated from the file
// and reported via torn; an unmarshalable record followed by more data is
// real corruption and errors.
func (d *DIT) replay(path string) (count int, torn bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64*1024)
	var off int64 // byte offset of the line being read
	for {
		line, rerr := r.ReadBytes('\n')
		lineLen := int64(len(line))
		rec := bytes.TrimSuffix(line, []byte{'\n'})
		if len(bytes.TrimSpace(rec)) > 0 {
			var u UpdateRecord
			if uerr := json.Unmarshal(rec, &u); uerr != nil {
				rest, _ := io.ReadAll(r)
				if len(bytes.TrimSpace(rest)) > 0 {
					return count, false, fmt.Errorf("directory: journal record %d: %w", count+1, uerr)
				}
				// Torn tail: drop it so future appends start at a record
				// boundary instead of extending garbage.
				if terr := os.Truncate(path, off); terr != nil {
					return count, false, fmt.Errorf("directory: truncating torn journal tail: %w", terr)
				}
				return count, true, nil
			}
			if aerr := d.applyRecord(u); aerr != nil {
				return count, false, fmt.Errorf("directory: replaying record %d (%s %q): %w",
					count+1, u.Op, u.DN, aerr)
			}
			count++
		}
		off += lineLen
		if rerr == io.EOF {
			return count, false, nil
		}
		if rerr != nil {
			return count, false, rerr
		}
	}
}

func (d *DIT) applyRecord(rec UpdateRecord) error {
	name, err := dn.Parse(rec.DN)
	if err != nil {
		return err
	}
	switch rec.Op {
	case "add", "entry":
		return d.Add(name, AttrsFrom(rec.Attrs))
	case "delete":
		return d.Delete(name)
	case "modify":
		changes := make([]ldap.Change, 0, len(rec.Changes))
		for _, c := range rec.Changes {
			var op ldap.ModOp
			switch c.Op {
			case "add":
				op = ldap.ModAdd
			case "delete":
				op = ldap.ModDelete
			case "replace":
				op = ldap.ModReplace
			default:
				return fmt.Errorf("unknown change op %q", c.Op)
			}
			changes = append(changes, ldap.Change{Op: op,
				Attribute: ldap.Attribute{Type: c.Attr, Values: c.Values}})
		}
		return d.Modify(name, changes)
	case "modifydn":
		newRDN, err := dn.Parse(rec.NewRDN)
		if err != nil || newRDN.Depth() != 1 {
			return fmt.Errorf("bad newRDN %q", rec.NewRDN)
		}
		return d.ModifyDN(name, newRDN.RDN(), rec.DeleteOldRDN)
	}
	return fmt.Errorf("unknown journal op %q", rec.Op)
}

// Compact rewrites the journal as a snapshot: one add record per live
// entry, parents first. The commit pipeline is flushed first (d.mu blocks
// new stages), then the rewrite goes to a temporary file that is
// atomically renamed over the journal, so a crash leaves either the old or
// the new journal intact.
func (d *DIT) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.journal == nil {
		return fmt.Errorf("directory: no journal attached")
	}
	if err := d.commit.flush(); err != nil {
		return err
	}
	j := d.journal

	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		return err
	}

	tmp := j.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	// Parents before children: sort by depth then name (the same order
	// Search emits).
	type pair struct {
		key string
		n   *node
	}
	nodes := make([]pair, 0, len(d.entries))
	for k, n := range d.entries {
		nodes = append(nodes, pair{k, n})
	}
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := nodes[i].n.dn.Depth(), nodes[j].n.dn.Depth()
		if di != dj {
			return di < dj
		}
		return nodes[i].key < nodes[j].key
	})
	for _, p := range nodes {
		rec := UpdateRecord{Op: "entry", DN: p.n.dn.String(), Attrs: p.n.attrs.Map()}
		if err := enc.Encode(&rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return err
	}
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = nf
	j.w = bufio.NewWriter(nf)
	// fsync the directory so the rename is durable.
	if dirf, err := os.Open(filepath.Dir(j.path)); err == nil {
		dirf.Sync()
		dirf.Close()
	}
	return nil
}
