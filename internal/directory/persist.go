package directory

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

// Durability. The paper's directory world handles system and media failure
// with replication and backups; this implementation adds the database-
// native equivalent: a write-ahead journal of committed updates with
// snapshot compaction. Every update appends one JSON record BEFORE the
// in-memory commit; reopening the journal replays it, restoring the exact
// directory state.
//
// The journal is deliberately simple — one file, newline-delimited JSON,
// atomically-renamed snapshots — because the consistency story of MetaComm
// does not depend on it: a directory restored from an older journal is just
// a repository that missed updates, which the Update Manager's
// synchronization facility reconciles.

// UpdateRecord is one committed update, as written to the journal and
// streamed to replicas. Seq is assigned at commit (not stored in the
// journal, where position is the order).
type UpdateRecord struct {
	Seq uint64 `json:"seq,omitempty"`

	Op string `json:"op"` // add | delete | modify | modifydn | entry

	DN    string              `json:"dn"`
	Attrs map[string][]string `json:"attrs,omitempty"` // add / entry

	Changes []UpdateChange `json:"changes,omitempty"` // modify

	NewRDN       string `json:"newRDN,omitempty"` // modifydn
	DeleteOldRDN bool   `json:"deleteOldRDN,omitempty"`
}

// UpdateChange is one modification inside an UpdateRecord.
type UpdateChange struct {
	Op     string   `json:"op"` // add | delete | replace
	Attr   string   `json:"attr"`
	Values []string `json:"values,omitempty"`
}

// Journal persists committed directory updates.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
	// SyncEveryWrite fsyncs after each record (durability over throughput).
	SyncEveryWrite bool
}

// OpenJournal opens (creating if needed) a journal file.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("directory: opening journal: %w", err)
	}
	return &Journal{path: path, f: f, w: bufio.NewWriter(f)}, nil
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err1 := j.w.Flush()
	err2 := j.f.Close()
	j.f = nil
	if err1 != nil {
		return err1
	}
	return err2
}

// append writes one record durably enough (buffered unless SyncEveryWrite).
func (j *Journal) append(rec UpdateRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("directory: journal closed")
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.SyncEveryWrite {
		return j.f.Sync()
	}
	return nil
}

// AttachJournal replays the journal's records into the DIT, then attaches
// it so every future committed update is appended. It returns the number of
// records replayed. The DIT must not have a journal attached already;
// replay tolerates a journal written against the same schema.
func (d *DIT) AttachJournal(j *Journal) (int, error) {
	d.mu.Lock()
	if d.journal != nil {
		d.mu.Unlock()
		return 0, fmt.Errorf("directory: journal already attached")
	}
	d.mu.Unlock()

	n, err := d.replay(j.path)
	if err != nil {
		return n, err
	}
	d.mu.Lock()
	d.journal = j
	d.mu.Unlock()
	return n, nil
}

// replay applies all records from path (missing file = empty journal).
func (d *DIT) replay(path string) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	count := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec UpdateRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return count, fmt.Errorf("directory: journal record %d: %w", count+1, err)
		}
		if err := d.applyRecord(rec); err != nil {
			return count, fmt.Errorf("directory: replaying record %d (%s %q): %w",
				count+1, rec.Op, rec.DN, err)
		}
		count++
	}
	return count, sc.Err()
}

func (d *DIT) applyRecord(rec UpdateRecord) error {
	name, err := dn.Parse(rec.DN)
	if err != nil {
		return err
	}
	switch rec.Op {
	case "add", "entry":
		return d.Add(name, AttrsFrom(rec.Attrs))
	case "delete":
		return d.Delete(name)
	case "modify":
		changes := make([]ldap.Change, 0, len(rec.Changes))
		for _, c := range rec.Changes {
			var op ldap.ModOp
			switch c.Op {
			case "add":
				op = ldap.ModAdd
			case "delete":
				op = ldap.ModDelete
			case "replace":
				op = ldap.ModReplace
			default:
				return fmt.Errorf("unknown change op %q", c.Op)
			}
			changes = append(changes, ldap.Change{Op: op,
				Attribute: ldap.Attribute{Type: c.Attr, Values: c.Values}})
		}
		return d.Modify(name, changes)
	case "modifydn":
		newRDN, err := dn.Parse(rec.NewRDN)
		if err != nil || newRDN.Depth() != 1 {
			return fmt.Errorf("bad newRDN %q", rec.NewRDN)
		}
		return d.ModifyDN(name, newRDN.RDN(), rec.DeleteOldRDN)
	}
	return fmt.Errorf("unknown journal op %q", rec.Op)
}

// journalAppend writes a record if a journal is attached. Called with d.mu
// held, BEFORE the in-memory mutation (write-ahead): a failed append aborts
// the update.
func (d *DIT) journalAppend(rec UpdateRecord) error {
	if d.journal == nil {
		return nil
	}
	if err := d.journal.append(rec); err != nil {
		return errf(ldap.ResultUnavailable, "journal write failed: %v", err)
	}
	return nil
}

// Compact rewrites the journal as a snapshot: one add record per live
// entry, parents first. The rewrite goes to a temporary file that is
// atomically renamed over the journal, so a crash leaves either the old or
// the new journal intact.
func (d *DIT) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.journal == nil {
		return fmt.Errorf("directory: no journal attached")
	}
	j := d.journal

	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		return err
	}

	tmp := j.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	// Parents before children: sort by depth then name (the same order
	// Search emits).
	type pair struct {
		key string
		n   *node
	}
	nodes := make([]pair, 0, len(d.entries))
	for k, n := range d.entries {
		nodes = append(nodes, pair{k, n})
	}
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := nodes[i].n.dn.Depth(), nodes[j].n.dn.Depth()
		if di != dj {
			return di < dj
		}
		return nodes[i].key < nodes[j].key
	})
	for _, p := range nodes {
		rec := UpdateRecord{Op: "entry", DN: p.n.dn.String(), Attrs: p.n.attrs.Map()}
		b, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return err
	}
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = nf
	j.w = bufio.NewWriter(nf)
	// fsync the directory so the rename is durable.
	if dirf, err := os.Open(filepath.Dir(j.path)); err == nil {
		dirf.Sync()
		dirf.Close()
	}
	return nil
}
