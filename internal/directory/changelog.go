package directory

import "sort"

// Changelog subscriptions: replicas (and any other consumer) receive every
// committed update as an UpdateRecord with its commit sequence number. The
// paper's directory world leans on replication for availability (§2);
// internal/replica builds the wire protocol on top of this hook.
//
// Fan-out is batched per commit group: on a journaled DIT the group
// committer emits each durable group with one sweep over the subscriber
// list (one subMu acquisition and one wakeup burst per group, not per
// update) before any writer in the group is acknowledged. Unjournaled
// DITs emit inline at commit, as before. Either way the contract
// consumers rely on holds: when a write call returns, its record is
// already buffered on every live subscription, in commit order.

// changeSub is one changelog subscriber.
type changeSub struct {
	ch chan UpdateRecord
	// startAfter is the commit seq the subscriber's snapshot reflects;
	// only records with Seq > startAfter are delivered. This is what makes
	// SnapshotAndSubscribe exact on a journaled DIT, where records the
	// snapshot already contains may still be in flight in the committer
	// when the subscription registers.
	startAfter uint64
	// overflowed marks a subscriber that missed records because its buffer
	// filled; its channel has been closed and the consumer must resync.
	overflowed bool
}

// SnapshotAndSubscribe atomically captures the full directory state and
// registers a changelog subscription starting at the next commit: every
// update after the returned snapshot appears exactly once on the channel.
//
// A consumer that falls behind (buffer overflow) gets its channel CLOSED —
// the signal to resynchronize from a fresh snapshot. cancel releases the
// subscription.
func (d *DIT) SnapshotAndSubscribe(buffer int) (snapshot []Entry, changes <-chan UpdateRecord, cancel func()) {
	snapshot, _, changes, cancel = d.SnapshotAndSubscribeSeq(buffer)
	return snapshot, changes, cancel
}

// SnapshotAndSubscribeSeq is SnapshotAndSubscribe plus the commit sequence
// the snapshot reflects: the first record on the channel carries Seq
// seq+1. Consumers that reconcile a snapshot against live state (the UM's
// snapshot+delta synchronization) use the cursor to report where the
// bulk/catch-up boundary lies.
func (d *DIT) SnapshotAndSubscribeSeq(buffer int) (snapshot []Entry, seq uint64, changes <-chan UpdateRecord, cancel func()) {
	if buffer <= 0 {
		buffer = 1024
	}
	d.mu.Lock()
	snapshot = d.allLocked()
	seq = d.seq
	sub := &changeSub{ch: make(chan UpdateRecord, buffer), startAfter: seq}
	d.subMu.Lock()
	d.subs = append(d.subs, sub)
	d.subMu.Unlock()
	d.mu.Unlock()

	cancel = func() {
		d.subMu.Lock()
		defer d.subMu.Unlock()
		for i, s := range d.subs {
			if s == sub {
				d.subs = append(d.subs[:i], d.subs[i+1:]...)
				if !sub.overflowed {
					close(sub.ch)
				}
				return
			}
		}
	}
	return snapshot, seq, sub.ch, cancel
}

// emitOne fans a single committed record out (the unjournaled inline
// path). Caller holds d.mu; rec.Seq must be set.
func (d *DIT) emitOne(rec UpdateRecord) {
	d.emitBatch([]UpdateRecord{rec})
}

// emitBatch fans one commit group out to subscribers in commit order: one
// subscriber-list sweep for the whole group. Records a subscriber's
// snapshot already covers (Seq <= startAfter) are skipped. A subscriber
// whose buffer fills is closed — forcing a resync — rather than blocking
// the pipeline or growing without bound.
func (d *DIT) emitBatch(recs []UpdateRecord) {
	d.subMu.Lock()
	defer d.subMu.Unlock()
	if len(d.subs) == 0 {
		return
	}
	keep := d.subs[:0]
	for _, sub := range d.subs {
		alive := true
		for _, rec := range recs {
			if rec.Seq <= sub.startAfter {
				continue
			}
			select {
			case sub.ch <- rec:
			default:
				sub.overflowed = true
				close(sub.ch)
				alive = false
			}
			if !alive {
				break
			}
		}
		if alive {
			keep = append(keep, sub)
		}
	}
	// Zero the dropped tail so closed subscribers are collectable.
	for i := len(keep); i < len(d.subs); i++ {
		d.subs[i] = nil
	}
	d.subs = keep
}

// allLocked snapshots every entry, parents first. Caller holds d.mu. The
// snapshot shares the tree's immutable attribute values (see Entry).
func (d *DIT) allLocked() []Entry {
	out := make([]Entry, 0, len(d.entries))
	keys := make([]string, 0, len(d.entries))
	for k, n := range d.entries {
		out = append(out, Entry{DN: n.dn, Attrs: n.attrs})
		keys = append(keys, k)
	}
	sortEntries(out, keys)
	return out
}

// sortEntries orders entries parents-before-children (depth, then
// normalized DN) — a stable order for deterministic snapshots. keys[i]
// must be out[i].DN.Normalize(); callers pass the tree's cached keys so
// the comparator never normalizes, which would otherwise dominate the
// search read path (O(n log n) allocating string work per result set).
func sortEntries(out []Entry, keys []string) {
	sort.Sort(&entrySorter{out, keys})
}

type entrySorter struct {
	e []Entry
	k []string
}

func (s *entrySorter) Len() int { return len(s.e) }
func (s *entrySorter) Swap(i, j int) {
	s.e[i], s.e[j] = s.e[j], s.e[i]
	s.k[i], s.k[j] = s.k[j], s.k[i]
}
func (s *entrySorter) Less(i, j int) bool {
	if di, dj := s.e[i].DN.Depth(), s.e[j].DN.Depth(); di != dj {
		return di < dj
	}
	return s.k[i] < s.k[j]
}
