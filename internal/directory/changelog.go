package directory

import (
	"sort"
	"sync"
)

// Changelog subscriptions: replicas (and any other consumer) receive every
// committed update as an UpdateRecord with its commit sequence number. The
// paper's directory world leans on replication for availability (§2);
// internal/replica builds the wire protocol on top of this hook.
//
// On a segmented DIT the per-segment group committers complete out of
// global order (each pipeline fsyncs independently), so fan-out runs
// through the emitter: a reorder buffer keyed by the global commit seq that
// releases records to subscribers only in gap-free ascending order. The
// contract consumers rely on is unchanged: when a write call returns, its
// record is already buffered on every live subscription, in commit order.

// changeSub is one changelog subscriber.
type changeSub struct {
	ch chan UpdateRecord
	// startAfter is the commit seq the subscriber's snapshot reflects;
	// only records with Seq > startAfter are delivered. This is what makes
	// SnapshotAndSubscribe exact on a journaled DIT, where records the
	// snapshot already contains may still be in flight in the committer
	// when the subscription registers.
	startAfter uint64
	// overflowed marks a subscriber that missed records because its buffer
	// filled; its channel has been closed and the consumer must resync.
	overflowed bool
}

// SnapshotAndSubscribe atomically captures the full directory state and
// registers a changelog subscription starting at the next commit: every
// update after the returned snapshot appears exactly once on the channel.
//
// A consumer that falls behind (buffer overflow) gets its channel CLOSED —
// the signal to resynchronize from a fresh snapshot. cancel releases the
// subscription.
func (d *DIT) SnapshotAndSubscribe(buffer int) (snapshot []Entry, changes <-chan UpdateRecord, cancel func()) {
	snapshot, _, changes, cancel = d.SnapshotAndSubscribeSeq(buffer)
	return snapshot, changes, cancel
}

// SnapshotAndSubscribeSeq is SnapshotAndSubscribe plus the commit sequence
// the snapshot reflects: the first record on the channel carries Seq
// seq+1. Consumers that reconcile a snapshot against live state (the UM's
// snapshot+delta synchronization) use the cursor to report where the
// bulk/catch-up boundary lies.
//
// Exactness on a segmented DIT rests on the prefix property: sequence
// numbers are only assigned inside a segment write critical section, so
// with every segment read-locked the applied updates are exactly
// {1..d.seq} — the captured state and cursor correspond precisely.
func (d *DIT) SnapshotAndSubscribeSeq(buffer int) (snapshot []Entry, seq uint64, changes <-chan UpdateRecord, cancel func()) {
	if buffer <= 0 {
		buffer = 1024
	}
	d.rlockAll()
	snapshot = d.allLocked()
	seq = d.seq.Load()
	sub := &changeSub{ch: make(chan UpdateRecord, buffer), startAfter: seq}
	d.subMu.Lock()
	d.subs = append(d.subs, sub)
	d.subMu.Unlock()
	d.runlockAll()

	return snapshot, seq, sub.ch, d.cancelFunc(sub)
}

// SnapshotRangeAndSubscribeSeq is the streaming form of
// SnapshotAndSubscribeSeq: the same exact cut (consistent state + cursor +
// subscription), but the snapshot is streamed to visit per segment after
// the locks are released instead of materialized into one sorted slice.
// Only (DN, *Attrs) headers are captured under the locks, so the extra
// memory is one slice of headers, released segment by segment as visit
// consumes them. Visit order is unspecified (NOT parents-first); a visit
// returning false stops the stream but leaves the subscription live.
func (d *DIT) SnapshotRangeAndSubscribeSeq(buffer int, visit func(Entry) bool) (seq uint64, changes <-chan UpdateRecord, cancel func()) {
	if buffer <= 0 {
		buffer = 1024
	}
	d.rlockAll()
	perSeg := make([][]Entry, len(d.segs))
	for i, s := range d.segs {
		es := make([]Entry, 0, len(s.entries))
		for _, n := range s.entries {
			es = append(es, Entry{DN: n.dn, Attrs: n.attrs})
		}
		perSeg[i] = es
	}
	seq = d.seq.Load()
	sub := &changeSub{ch: make(chan UpdateRecord, buffer), startAfter: seq}
	d.subMu.Lock()
	d.subs = append(d.subs, sub)
	d.subMu.Unlock()
	d.runlockAll()

	stopped := false
	for i := range perSeg {
		if !stopped {
			for _, e := range perSeg[i] {
				if !visit(e) {
					stopped = true
					break
				}
			}
		}
		perSeg[i] = nil
	}
	return seq, sub.ch, d.cancelFunc(sub)
}

// cancelFunc builds the subscription-release closure.
func (d *DIT) cancelFunc(sub *changeSub) func() {
	return func() {
		d.subMu.Lock()
		defer d.subMu.Unlock()
		for i, s := range d.subs {
			if s == sub {
				d.subs = append(d.subs[:i], d.subs[i+1:]...)
				if !sub.overflowed {
					close(sub.ch)
				}
				return
			}
		}
	}
}

// emitBatch fans a run of committed records out to subscribers in commit
// order: one subscriber-list sweep for the whole batch. Records a
// subscriber's snapshot already covers (Seq <= startAfter) are skipped. A
// subscriber whose buffer fills is closed — forcing a resync — rather than
// blocking the pipeline or growing without bound. Called only by the
// emitter, which guarantees gap-free ascending Seq across calls.
func (d *DIT) emitBatch(recs []UpdateRecord) {
	d.subMu.Lock()
	defer d.subMu.Unlock()
	// Record the batch in the cursor-addressable tail ring first (same
	// critical section as delivery, so tail order == delivery order and a
	// SubscribeFrom registered under this lock never misses or duplicates
	// a record; see replication.go).
	for i := range recs {
		d.tailAppendLocked(recs[i])
	}
	if len(d.subs) == 0 {
		return
	}
	keep := d.subs[:0]
	for _, sub := range d.subs {
		alive := true
		for _, rec := range recs {
			if rec.Seq <= sub.startAfter {
				continue
			}
			select {
			case sub.ch <- rec:
			default:
				sub.overflowed = true
				close(sub.ch)
				alive = false
			}
			if !alive {
				break
			}
		}
		if alive {
			keep = append(keep, sub)
		}
	}
	// Zero the dropped tail so closed subscribers are collectable.
	for i := len(keep); i < len(d.subs); i++ {
		d.subs[i] = nil
	}
	d.subs = keep
}

// allLocked snapshots every entry, parents first. Caller holds every
// segment lock. The snapshot shares the tree's immutable attribute values
// (see Entry).
func (d *DIT) allLocked() []Entry {
	total := 0
	for _, s := range d.segs {
		total += len(s.entries)
	}
	out := make([]Entry, 0, total)
	keys := make([]string, 0, total)
	for _, s := range d.segs {
		for k, n := range s.entries {
			out = append(out, Entry{DN: n.dn, Attrs: n.attrs})
			keys = append(keys, k)
		}
	}
	sortEntries(out, keys)
	return out
}

// sortEntries orders entries parents-before-children (depth, then
// normalized DN) — a stable order for deterministic snapshots. keys[i]
// must be out[i].DN.Normalize(); callers pass the tree's cached keys so
// the comparator never normalizes, which would otherwise dominate the
// search read path (O(n log n) allocating string work per result set).
func sortEntries(out []Entry, keys []string) {
	sort.Sort(&entrySorter{out, keys})
}

type entrySorter struct {
	e []Entry
	k []string
}

func (s *entrySorter) Len() int { return len(s.e) }
func (s *entrySorter) Swap(i, j int) {
	s.e[i], s.e[j] = s.e[j], s.e[i]
	s.k[i], s.k[j] = s.k[j], s.k[i]
}
func (s *entrySorter) Less(i, j int) bool {
	if di, dj := s.e[i].DN.Depth(), s.e[j].DN.Depth(); di != dj {
		return di < dj
	}
	return s.k[i] < s.k[j]
}

// emitter is the changelog sequencer: per-segment commit pipelines finish
// their groups in their own time, but subscribers must observe one gap-free
// global order. Completed records park in a reorder buffer keyed by commit
// seq; whenever the next-expected seq is present, the contiguous run drains
// to subscribers in one emitBatch sweep. Sequence numbers whose write
// failed (a poisoned pipeline dropped the group) are skipped explicitly so
// a gap never stalls emission forever.
type emitter struct {
	mu   sync.Mutex
	cond sync.Cond
	// emitted is the highest seq released (or skipped); pending parks
	// completed records above emitted+1.
	emitted uint64
	pending map[uint64]pendingRec
	d       *DIT
	scratch []UpdateRecord
}

type pendingRec struct {
	rec  UpdateRecord
	skip bool
}

func newEmitter(d *DIT) *emitter {
	e := &emitter{d: d, pending: make(map[uint64]pendingRec)}
	e.cond.L = &e.mu
	return e
}

// ready submits one completed record for in-order emission.
func (e *emitter) ready(rec UpdateRecord) {
	e.mu.Lock()
	e.pending[rec.Seq] = pendingRec{rec: rec}
	e.drainLocked()
	e.mu.Unlock()
}

// readyBatch submits a durable commit group for in-order emission.
func (e *emitter) readyBatch(recs []UpdateRecord) {
	e.mu.Lock()
	for i := range recs {
		e.pending[recs[i].Seq] = pendingRec{rec: recs[i]}
	}
	e.drainLocked()
	e.mu.Unlock()
}

// skip marks one seq as failed (never to be emitted) so the order can move
// past it.
func (e *emitter) skip(seq uint64) {
	e.mu.Lock()
	e.pending[seq] = pendingRec{skip: true}
	e.drainLocked()
	e.mu.Unlock()
}

// skipBatch marks a dropped commit group's seqs as failed.
func (e *emitter) skipBatch(recs []UpdateRecord) {
	e.mu.Lock()
	for i := range recs {
		e.pending[recs[i].Seq] = pendingRec{skip: true}
	}
	e.drainLocked()
	e.mu.Unlock()
}

// drainLocked releases the contiguous run starting at emitted+1. Caller
// holds e.mu. emitBatch takes only subMu, so the lock order is
// segment locks -> e.mu -> subMu (never cyclic).
func (e *emitter) drainLocked() {
	batch := e.scratch[:0]
	advanced := false
	for {
		p, ok := e.pending[e.emitted+1]
		if !ok {
			break
		}
		delete(e.pending, e.emitted+1)
		e.emitted++
		advanced = true
		if !p.skip {
			batch = append(batch, p.rec)
		}
	}
	if len(batch) > 0 {
		e.d.emitBatch(batch)
	}
	e.scratch = batch[:0]
	if advanced {
		e.cond.Broadcast()
	}
}

// waitEmitted blocks until seq has been released to subscribers (or
// skipped). Writers wait on this after durability so that "call returned"
// still implies "buffered on every subscription".
func (e *emitter) waitEmitted(seq uint64) {
	e.mu.Lock()
	for e.emitted < seq {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// advanceTo fast-forwards the order cursor past replayed history. Only
// valid while the DIT is quiescent (journal attach). The changelog tail
// restarts its coverage at seq: replayed history was never emitted, so
// nothing before seq can be resumed from (peers with older cursors fall
// back to a snapshot).
func (e *emitter) advanceTo(seq uint64) {
	e.mu.Lock()
	e.emitted = seq
	e.mu.Unlock()
	e.d.resetTailTo(seq)
}
