package directory

import "sort"

// Changelog subscriptions: replicas (and any other consumer) receive every
// committed update as an UpdateRecord with its commit sequence number. The
// paper's directory world leans on replication for availability (§2);
// internal/replica builds the wire protocol on top of this hook.

// changeSub is one changelog subscriber.
type changeSub struct {
	ch chan UpdateRecord
	// overflowed marks a subscriber that missed records because its buffer
	// filled; its channel has been closed and the consumer must resync.
	overflowed bool
}

// SnapshotAndSubscribe atomically captures the full directory state and
// registers a changelog subscription starting at the next commit: every
// update after the returned snapshot appears exactly once on the channel.
//
// A consumer that falls behind (buffer overflow) gets its channel CLOSED —
// the signal to resynchronize from a fresh snapshot. cancel releases the
// subscription.
func (d *DIT) SnapshotAndSubscribe(buffer int) (snapshot []Entry, changes <-chan UpdateRecord, cancel func()) {
	snapshot, _, changes, cancel = d.SnapshotAndSubscribeSeq(buffer)
	return snapshot, changes, cancel
}

// SnapshotAndSubscribeSeq is SnapshotAndSubscribe plus the commit sequence
// the snapshot reflects: the first record on the channel carries Seq
// seq+1. Consumers that reconcile a snapshot against live state (the UM's
// snapshot+delta synchronization) use the cursor to report where the
// bulk/catch-up boundary lies.
func (d *DIT) SnapshotAndSubscribeSeq(buffer int) (snapshot []Entry, seq uint64, changes <-chan UpdateRecord, cancel func()) {
	if buffer <= 0 {
		buffer = 1024
	}
	d.mu.Lock()
	snapshot = d.allLocked()
	seq = d.seq
	sub := &changeSub{ch: make(chan UpdateRecord, buffer)}
	d.subs = append(d.subs, sub)
	d.mu.Unlock()

	cancel = func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		for i, s := range d.subs {
			if s == sub {
				d.subs = append(d.subs[:i], d.subs[i+1:]...)
				if !sub.overflowed {
					close(sub.ch)
				}
				return
			}
		}
	}
	return snapshot, seq, sub.ch, cancel
}

// emitLocked fans a committed record out to subscribers. Caller holds d.mu;
// rec.Seq must be set.
func (d *DIT) emitLocked(rec UpdateRecord) {
	if len(d.subs) == 0 {
		return
	}
	keep := d.subs[:0]
	for _, sub := range d.subs {
		select {
		case sub.ch <- rec:
			keep = append(keep, sub)
		default:
			// Slow consumer: close to force a resync rather than block
			// the commit path or grow without bound.
			sub.overflowed = true
			close(sub.ch)
		}
	}
	d.subs = keep
}

// allLocked snapshots every entry, parents first. Caller holds d.mu. The
// snapshot shares the tree's immutable attribute values (see Entry).
func (d *DIT) allLocked() []Entry {
	out := make([]Entry, 0, len(d.entries))
	keys := make([]string, 0, len(d.entries))
	for k, n := range d.entries {
		out = append(out, Entry{DN: n.dn, Attrs: n.attrs})
		keys = append(keys, k)
	}
	sortEntries(out, keys)
	return out
}

// sortEntries orders entries parents-before-children (depth, then
// normalized DN) — a stable order for deterministic snapshots. keys[i]
// must be out[i].DN.Normalize(); callers pass the tree's cached keys so
// the comparator never normalizes, which would otherwise dominate the
// search read path (O(n log n) allocating string work per result set).
func sortEntries(out []Entry, keys []string) {
	sort.Sort(&entrySorter{out, keys})
}

type entrySorter struct {
	e []Entry
	k []string
}

func (s *entrySorter) Len() int { return len(s.e) }
func (s *entrySorter) Swap(i, j int) {
	s.e[i], s.e[j] = s.e[j], s.e[i]
	s.k[i], s.k[j] = s.k[j], s.k[i]
}
func (s *entrySorter) Less(i, j int) bool {
	if di, dj := s.e[i].DN.Depth(), s.e[j].DN.Depth(); di != dj {
		return di < dj
	}
	return s.k[i] < s.k[j]
}
