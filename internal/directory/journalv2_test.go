package directory

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

// v2TestRecords is one record of every op shape the journal can carry.
func v2TestRecords() []UpdateRecord {
	return []UpdateRecord{
		{Op: "add", Seq: 1, DN: "cn=A,o=Lucent", Attrs: map[string][]string{
			"objectClass": {"person"}, "cn": {"A"}, "telephoneNumber": {"555-0001", "555-0002"}}},
		{Op: "entry", Seq: 42, DN: "o=Lucent", normKey: "o=lucent", Attrs: map[string][]string{
			"objectClass": {"organization"}}},
		{Op: "delete", Seq: 7, DN: "cn=B,o=Lucent"},
		{Op: "modify", Seq: 9, DN: "cn=A,o=Lucent", Changes: []UpdateChange{
			{Op: "add", Attr: "mail", Values: []string{"a@x"}},
			{Op: "delete", Attr: "roomNumber"},
			{Op: "replace", Attr: "cn", Values: []string{"A", "Alice"}}}},
		{Op: "modifydn", Seq: 11, DN: "cn=A,o=Lucent", NewRDN: "cn=Alice", DeleteOldRDN: true},
		{Op: "add", Seq: 1 << 40, DN: "", Attrs: map[string][]string{}},
	}
}

// sameRecord compares a decoded record against the original, reading the
// decoded attribute set through attrsValue (the decoder produces *Attrs,
// not the map).
func sameRecord(t *testing.T, want, got *UpdateRecord) {
	t.Helper()
	if got.Op != want.Op || got.Seq != want.Seq || got.DN != want.DN ||
		got.normKey != want.normKey ||
		got.NewRDN != want.NewRDN || got.DeleteOldRDN != want.DeleteOldRDN {
		t.Fatalf("decoded header differs:\n%+v\nvs\n%+v", got, want)
	}
	if !reflect.DeepEqual(got.Changes, want.Changes) {
		t.Fatalf("decoded changes differ:\n%+v\nvs\n%+v", got.Changes, want.Changes)
	}
	if want.Op == "add" || want.Op == "entry" {
		if !got.attrsValue().Equal(AttrsFrom(want.Attrs)) {
			t.Fatalf("decoded attrs of %s differ:\n%v\nvs\n%v",
				want.DN, got.attrsValue().Map(), want.Attrs)
		}
	}
}

func TestV2RecordRoundTrip(t *testing.T) {
	var enc v2Encoder
	var buf []byte
	recs := v2TestRecords()
	for i := range recs {
		var err error
		buf, err = enc.appendRecord(buf, &recs[i])
		if err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	r := bufio.NewReader(bytes.NewReader(buf))
	var dec v2Decoder
	total := 0
	for i := range recs {
		var got UpdateRecord
		n, err := dec.readFrame(r, &got)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		total += n
		sameRecord(t, &recs[i], &got)
	}
	if total != len(buf) {
		t.Fatalf("frames consumed %d bytes of %d", total, len(buf))
	}
	if _, err := r.ReadByte(); err == nil {
		t.Fatal("trailing bytes after last frame")
	}
}

// TestV2CorruptFrameRejected flips every single byte of an encoded frame in
// turn and requires decode to fail each time — the CRC (or the frame
// structure around it) must catch any one-byte corruption.
func TestV2CorruptFrameRejected(t *testing.T) {
	var enc v2Encoder
	rec := v2TestRecords()[0]
	frame, err := enc.appendRecord(nil, &rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		var got UpdateRecord
		var dec v2Decoder
		_, derr := dec.readFrame(bufio.NewReader(bytes.NewReader(mut)), &got)
		if derr == nil && mut[0] == frameMarkerV2 {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
}

// TestV2JournalOnDisk asserts a default-config journal set writes v2 frames
// and reports the format through JournalStats.
func TestV2JournalOnDisk(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := segmentedDIT(t, base, 4)
	seedOrg(t, d, 32)
	st := d.JournalStats()
	if st.Format != "v2" {
		t.Fatalf("live format = %q, want v2", st.Format)
	}
	d.CloseJournal()
	for i := 0; i < 4; i++ {
		b, err := os.ReadFile(segJournalPath(base, i))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) > 0 && b[0] != frameMarkerV2 {
			t.Fatalf("segment %d does not start with the v2 marker: %x", i, b[0])
		}
	}
	restored := reopenSet(t, base, 4)
	sameState(t, d, restored)
	st = restored.JournalStats()
	if st.Format != "v2" || st.ReplayedRecords != 33 || st.ReplayedBytes == 0 ||
		st.ReplayNs <= 0 || len(st.SegmentReplayNs) != 4 {
		t.Fatalf("replay stats = %+v", st)
	}
}

// TestV2TornTailTolerated cuts the final frame short at several lengths —
// every prefix of a frame is a possible crash shape — and requires replay to
// truncate the tear, count it, and keep every complete record.
func TestV2TornTailTolerated(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := segmentedDIT(t, base, 1)
	seedOrg(t, d, 10)
	d.CloseJournal()

	seg0 := segJournalPath(base, 0)
	whole, err := os.ReadFile(seg0)
	if err != nil {
		t.Fatal(err)
	}
	// Encode one more frame and append only part of it.
	var enc v2Encoder
	extra, err := enc.appendRecord(nil, &UpdateRecord{Op: "add", Seq: 999,
		DN: "cn=torn,o=Lucent", Attrs: map[string][]string{"cn": {"torn"}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 2, len(extra) / 2, len(extra) - 1} {
		if err := os.WriteFile(seg0, append(append([]byte(nil), whole...), extra[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		restored := reopenSet(t, base, 1)
		sameState(t, d, restored)
		if got := restored.JournalStats().TornTails; got != 1 {
			t.Fatalf("cut %d: TornTails = %d, want 1", cut, got)
		}
		// The tear is physically gone: appends resume at a record boundary.
		mustAddP(t, restored, "cn=after,o=Lucent", map[string][]string{"cn": {"after"}})
		restored.CloseJournal()
		again := reopenSet(t, base, 1)
		if _, err := again.Get(dn.MustParse("cn=after,o=Lucent")); err != nil {
			t.Fatalf("cut %d: append after tear lost: %v", cut, err)
		}
		again.CloseJournal()
		if err := os.WriteFile(seg0, whole, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// v2Frames splits a v2 journal file into individual frames.
func v2Frames(t *testing.T, b []byte) [][]byte {
	t.Helper()
	var frames [][]byte
	for off := 0; off < len(b); {
		if b[off] != frameMarkerV2 {
			t.Fatalf("offset %d: not a frame marker: %x", off, b[off])
		}
		plen, vn := binary.Uvarint(b[off+1:])
		end := off + 1 + vn + int(plen) + 4
		if vn <= 0 || end > len(b) {
			t.Fatalf("offset %d: bad frame", off)
		}
		frames = append(frames, b[off:end])
		off = end
	}
	return frames
}

// TestV2CorruptMidFileSurfaces damages a complete frame — mid-file and at
// the tail — and requires attach to fail loudly rather than silently
// truncate: a complete frame with a bad checksum is corruption, not a tear.
func TestV2CorruptMidFileSurfaces(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := segmentedDIT(t, base, 1)
	seedOrg(t, d, 10)
	d.CloseJournal()

	seg0 := segJournalPath(base, 0)
	whole, err := os.ReadFile(seg0)
	if err != nil {
		t.Fatal(err)
	}
	frames := v2Frames(t, whole)
	if len(frames) < 3 {
		t.Fatalf("only %d frames", len(frames))
	}
	for _, fi := range []int{1, len(frames) - 1} {
		mut := append([]byte(nil), whole...)
		// Flip a payload byte of frame fi (skip marker + length prefix).
		off := 0
		for i := 0; i < fi; i++ {
			off += len(frames[i])
		}
		_, vn := binary.Uvarint(mut[off+1:])
		mut[off+1+vn] ^= 0x40
		if err := os.WriteFile(seg0, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		bad := NewSegmented(nil, 1)
		if _, err := bad.AttachJournalSet(JournalSetConfig{Base: base, Mode: SyncGroup}); err == nil {
			bad.CloseJournal()
			t.Fatalf("corrupt frame %d of %d replayed without error", fi, len(frames))
		}
		after, err := os.ReadFile(seg0)
		if err != nil {
			t.Fatal(err)
		}
		if len(after) != len(mut) {
			t.Fatalf("corrupt journal was truncated: %d -> %d bytes", len(mut), len(after))
		}
		if err := os.WriteFile(seg0, whole, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestV2MixedFormatFileReplays appends v2 frames to a JSON segment file —
// the state a crash leaves when a format switch has appended new records
// but the migrating compaction has not rewritten the file yet — and
// requires replay to apply both.
func TestV2MixedFormatFileReplays(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := NewSegmented(nil, 1)
	if _, err := d.AttachJournalSet(JournalSetConfig{Base: base, Mode: SyncGroup, Format: FormatJSON}); err != nil {
		t.Fatal(err)
	}
	seedOrg(t, d, 5)
	d.CloseJournal()

	seg0 := segJournalPath(base, 0)
	var enc v2Encoder
	frame, err := enc.appendRecord(nil, &UpdateRecord{Op: "add", Seq: d.Seq() + 1,
		DN: "cn=binary,o=Lucent", Attrs: map[string][]string{"cn": {"binary"}}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(seg0, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	restored := reopenSet(t, base, 1)
	if _, err := restored.Get(dn.MustParse("cn=binary,o=Lucent")); err != nil {
		t.Fatalf("v2 record after JSON records lost: %v", err)
	}
	if restored.Len() != d.Len()+1 {
		t.Fatalf("restored %d entries, want %d", restored.Len(), d.Len()+1)
	}
}

// TestLegacyJSONJournalMigratesToV2 is the check.sh migration smoke: a
// journal set written in JSON attaches under the v2 default, migrates in
// place, and a second attach replays pure v2 with identical contents.
func TestLegacyJSONJournalMigratesToV2(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := NewSegmented(nil, 4)
	if _, err := d.AttachJournalSet(JournalSetConfig{Base: base, Mode: SyncGroup, Format: FormatJSON}); err != nil {
		t.Fatal(err)
	}
	seedOrg(t, d, 40)
	if err := d.Modify(dn.MustParse("cn=p1,o=Lucent"), []ldap.Change{
		{Op: ldap.ModAdd, Attribute: ldap.Attribute{Type: "mail", Values: []string{"p1@x"}}}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(dn.MustParse("cn=p2,o=Lucent")); err != nil {
		t.Fatal(err)
	}
	d.CloseJournal()
	if st := d.JournalStats(); st.Format != "json" {
		t.Fatalf("source format = %q, want json", st.Format)
	}
	for i := 0; i < 4; i++ {
		b, err := os.ReadFile(segJournalPath(base, i))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 || b[0] != '{' {
			t.Fatalf("segment %d is not JSON before migration", i)
		}
	}

	migrated := reopenSet(t, base, 4)
	sameState(t, d, migrated)
	mustAddP(t, migrated, "cn=post-migration,o=Lucent", map[string][]string{"cn": {"post-migration"}})
	migrated.CloseJournal()

	// Migration rewrote every file as v2 frames and stamped the manifest.
	for i := 0; i < 4; i++ {
		b, err := os.ReadFile(segJournalPath(base, i))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 || b[0] != frameMarkerV2 {
			t.Fatalf("segment %d not rewritten as v2", i)
		}
	}
	mb, err := os.ReadFile(base + ".meta")
	if err != nil {
		t.Fatal(err)
	}
	var m journalManifest
	if err := json.Unmarshal(mb, &m); err != nil || m.Format != "v2" {
		t.Fatalf("manifest after migration: %s (%v)", mb, err)
	}

	again := reopenSet(t, base, 4)
	sameState(t, migrated, again)
	if st := again.JournalStats(); st.Format != "v2" {
		t.Fatalf("format after second attach = %q, want v2", st.Format)
	}
}

// migrationCrash kills the JSON→v2 migrating compaction at the given stage
// and asserts the next attach still restores every acked write and removes
// the temps — the migration must be re-runnable from any crash point.
func migrationCrash(t *testing.T, stage string) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := NewSegmented(nil, 2)
	if _, err := d.AttachJournalSet(JournalSetConfig{Base: base, Mode: SyncGroup, Format: FormatJSON}); err != nil {
		t.Fatal(err)
	}
	seedOrg(t, d, 20)
	d.CloseJournal()

	injected := false
	compactHook = func(s string, seg int) error {
		if s == stage && !injected {
			injected = true
			return fmt.Errorf("injected crash at %s", s)
		}
		return nil
	}
	crashed := NewSegmented(nil, 2)
	_, err := crashed.AttachJournalSet(JournalSetConfig{Base: base, Mode: SyncGroup})
	compactHook = nil
	if err == nil {
		t.Fatal("migrating attach did not surface the injected crash")
	}
	if !injected {
		t.Fatal("hook never fired")
	}
	crashed.CloseJournal()

	restored := reopenSet(t, base, 2)
	sameState(t, d, restored)
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(segJournalPath(base, i) + ".compact"); err == nil {
			t.Errorf("stale .compact temp for segment %d survived attach", i)
		}
	}
	// The completed migration leaves a pure-v2 set.
	mustAddP(t, restored, "cn=post,o=Lucent", map[string][]string{"cn": {"post"}})
	restored.CloseJournal()
	if st := restored.JournalStats(); st.Format != "v2" {
		t.Fatalf("format after recovered migration = %q", st.Format)
	}
	final := reopenSet(t, base, 2)
	if _, err := final.Get(dn.MustParse("cn=post,o=Lucent")); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationCrashAtTmpWritten(t *testing.T) { migrationCrash(t, "tmp-written") }
func TestMigrationCrashMidSplice(t *testing.T)    { migrationCrash(t, "mid-splice") }
func TestMigrationCrashPreRename(t *testing.T)    { migrationCrash(t, "pre-rename") }

// TestParallelAttachReplay exercises the worker-pool attach (the -race run
// of this package drives the concurrent path) and checks the post-pass
// rebuilt cross-segment child links.
func TestParallelAttachReplay(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := NewSegmented(nil, 8)
	if _, err := d.AttachJournalSet(JournalSetConfig{Base: base, Mode: SyncGroup, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	seedOrg(t, d, 120)
	mustAddP(t, d, "ou=Eng,o=Lucent", map[string][]string{"ou": {"Eng"}})
	for i := 0; i < 40; i++ {
		mustAddP(t, d, fmt.Sprintf("cn=e%d,ou=Eng,o=Lucent", i),
			map[string][]string{"cn": {fmt.Sprintf("e%d", i)}})
	}
	if err := d.Delete(dn.MustParse("cn=p7,o=Lucent")); err != nil {
		t.Fatal(err)
	}
	d.CloseJournal()

	restored := NewSegmented(nil, 8)
	if _, err := restored.AttachJournalSet(JournalSetConfig{Base: base, Mode: SyncGroup, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { restored.CloseJournal() })
	sameState(t, d, restored)
	st := restored.JournalStats()
	if st.ReplayWorkers != 4 {
		t.Fatalf("ReplayWorkers = %d, want 4", st.ReplayWorkers)
	}
	if len(st.SegmentReplayNs) != 8 {
		t.Fatalf("SegmentReplayNs has %d entries, want 8", len(st.SegmentReplayNs))
	}
	// Child links must be rebuilt: a populated subtree refuses deletion.
	if err := restored.Delete(dn.MustParse("ou=Eng,o=Lucent")); err == nil {
		t.Fatal("deleted non-leaf after parallel replay: children links missing")
	}
	// Indexes built after a parallel attach reuse the pool (enableIndexes
	// worker path) and must serve exact results.
	restored.EnableIndexes("telephoneNumber")
	got, err := restored.Search(dn.MustParse("o=Lucent"), ldap.ScopeWholeSubtree,
		&ldap.Filter{Kind: ldap.FilterEquality, Attr: "telephoneNumber", Value: "555-0005"}, 0)
	if err != nil || len(got) != 1 {
		t.Fatalf("indexed search after parallel attach: %v, %d results", err, len(got))
	}
}

// TestParentNormKey pins the zero-allocation parent-key derivation used by
// the child-wiring post-pass against the definitional form, across escaped
// commas, escaped backslashes, multi-AVA RDNs, and depth-1/root names.
func TestParentNormKey(t *testing.T) {
	for _, raw := range []string{
		"o=Lucent",
		"cn=A,o=Lucent",
		"cn=u0000001,ou=R&D,o=Lucent",
		`cn=Doe\, John,o=Lucent`,
		`cn=back\\slash,ou=x\,y,o=Lucent`,
		"cn=A+sn=B,ou=Mixed+l=NJ,o=Lucent",
		`cn=\,lead,o=Lucent`,
		`cn=trail\\,o=Lucent`,
	} {
		name, err := dn.Parse(raw)
		if err != nil {
			t.Fatalf("parse %q: %v", raw, err)
		}
		key := name.Normalize()
		want := name.Parent().Normalize()
		if got := parentNormKey(key); got != want {
			t.Errorf("parentNormKey(%q) = %q, want %q", key, got, want)
		}
	}
	if got := parentNormKey(""); got != "" {
		t.Errorf("parentNormKey of root = %q, want empty", got)
	}
}
