package directory

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalV2Record throws arbitrary bytes at the v2 frame decoder. The
// decoder runs on every cold start against whatever a crash left on disk,
// so it must never panic, never over-allocate from a corrupt length or
// count, and classify damage correctly: anything that decodes must
// round-trip through the encoder, and any single-byte corruption of a
// valid frame must be rejected (the CRC covers the whole payload).
func FuzzJournalV2Record(f *testing.F) {
	var enc v2Encoder
	recs := v2TestRecords()
	for i := range recs {
		frame, err := enc.appendRecord(nil, &recs[i])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{frameMarkerV2})
	f.Add([]byte{frameMarkerV2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		var dec v2Decoder
		var rec UpdateRecord
		n, err := dec.readFrame(bufio.NewReader(bytes.NewReader(data)), &rec)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("frame consumed %d of %d bytes", n, len(data))
		}
		// Round trip: re-encoding the decoded record must produce a frame
		// that decodes back to the same record.
		if rec.attrsDec != nil {
			// appendPayloadV2 prefers attrsDec; the map stays nil either way.
			rec.Attrs = nil
		}
		var enc v2Encoder
		frame, err := enc.appendRecord(nil, &rec)
		if err != nil {
			t.Fatalf("re-encode of decoded record failed: %v\nrecord: %+v", err, rec)
		}
		var rec2 UpdateRecord
		if _, err := dec.readFrame(bufio.NewReader(bytes.NewReader(frame)), &rec2); err != nil {
			t.Fatalf("re-decode failed: %v\nframe: %x", err, frame)
		}
		if rec2.Op != rec.Op || rec2.Seq != rec.Seq || rec2.DN != rec.DN ||
			rec2.normKey != rec.normKey ||
			rec2.NewRDN != rec.NewRDN || rec2.DeleteOldRDN != rec.DeleteOldRDN ||
			len(rec2.Changes) != len(rec.Changes) {
			t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", rec, rec2)
		}
		if rec.attrsDec != nil && !rec2.attrsValue().Equal(rec.attrsDec) {
			t.Fatalf("round-trip attrs diverged:\n%v\nvs\n%v",
				rec.attrsDec.Map(), rec2.attrsValue().Map())
		}
		// Corrupt-frame rejection: flip one payload byte of the re-encoded
		// frame; the checksum must catch it.
		if len(frame) > 7 {
			mut := append([]byte(nil), frame...)
			mut[len(mut)/2] ^= 0x40
			if !bytes.Equal(mut, frame) {
				var rec3 UpdateRecord
				if _, err := dec.readFrame(bufio.NewReader(bytes.NewReader(mut)), &rec3); err == nil {
					t.Fatalf("single-byte corruption went undetected\nframe: %x", frame)
				}
			}
		}
	})
}

// TestWriteV2FuzzSeedCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzJournalV2Record. Skipped unless WRITE_FUZZ_CORPUS is
// set; run it after changing the frame format so the corpus stays
// representative.
func TestWriteV2FuzzSeedCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalV2Record")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var enc v2Encoder
	recs := v2TestRecords()
	for i := range recs {
		frame, err := enc.appendRecord(nil, &recs[i])
		if err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", frame)
		name := filepath.Join(dir, fmt.Sprintf("seed-%s-%d", recs[i].Op, i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range map[string][]byte{
		"seed-empty":      {},
		"seed-marker":     {frameMarkerV2},
		"seed-huge-len":   {frameMarkerV2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"seed-not-binary": []byte(`{"op":"add","dn":"o=Lucent"}` + "\n"),
	} {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
