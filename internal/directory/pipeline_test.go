package directory

// Concurrency tests for the group-commit pipeline (run under -race via the
// Makefile race list): writers hammering the DIT while the journal is
// compacted and closed, with changelog subscribers following along. The
// invariants: no data race, no hang, writers that lose the close race get
// clean unavailable errors, subscribers see every committed record exactly
// once and in order, and whatever the journal holds afterwards replays.

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

func TestPipelineWritersVsCompactAndClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dir.journal")
	d := New(nil)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Mode = SyncGroup
	if _, err := d.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})

	const writers = 8
	for i := 0; i < writers; i++ {
		mustAddP(t, d, fmt.Sprintf("cn=W%d,o=Lucent", i),
			map[string][]string{"objectClass": {"person"}, "cn": {fmt.Sprintf("W%d", i)}})
	}

	// A subscriber that checks ordering while batches are emitted.
	_, seq0, changes, cancel := d.SnapshotAndSubscribeSeq(16384)
	var subWG sync.WaitGroup
	subWG.Add(1)
	var outOfOrder atomic.Bool
	go func() {
		defer subWG.Done()
		last := seq0
		for rec := range changes {
			if rec.Seq != last+1 {
				outOfOrder.Store(true)
			}
			last = rec.Seq
		}
	}()

	var wg sync.WaitGroup
	var acked, rejected atomic.Int64
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := dn.MustParse(fmt.Sprintf("cn=W%d,o=Lucent", i))
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber",
						Values: []string{fmt.Sprintf("R-%d-%d", i, k)}}}})
				switch {
				case err == nil:
					acked.Add(1)
				case CodeOf(err) == ldap.ResultUnavailable:
					rejected.Add(1) // lost the race with CloseJournal — fine
				default:
					t.Errorf("writer %d: unexpected error %v", i, err)
					return
				}
			}
		}(i)
	}

	// Compact twice mid-flight, then close the journal under load.
	time.Sleep(2 * time.Millisecond)
	for n := 0; n < 2; n++ {
		if err := d.Compact(); err != nil {
			t.Errorf("compact: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if err := d.CloseJournal(); err != nil {
		t.Fatalf("close under load: %v", err)
	}
	// Writers keep running against the now-unjournaled DIT (commits are
	// final inline again); let them observe the transition, then stop.
	time.Sleep(time.Millisecond)
	close(stop)
	wg.Wait()
	cancel()
	subWG.Wait()

	if outOfOrder.Load() {
		t.Error("subscriber observed out-of-order commit sequence")
	}
	if acked.Load() == 0 {
		t.Error("no writes acked under load")
	}
	// The journal replays cleanly to SOME prefix of the commit history —
	// every replayed entry value must be one a writer actually wrote.
	restored := reopen(t, path)
	if restored.Len() == 0 {
		t.Error("journal replayed to empty state")
	}
}

func TestPipelineCloseRejectsWithoutMutating(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dir.journal")
	d := New(nil)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Mode = SyncGroup
	if _, err := d.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})
	if err := d.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	seqBefore, lenBefore := d.Seq(), d.Len()
	err = d.Add(dn.MustParse("cn=late,o=Lucent"),
		AttrsFrom(map[string][]string{"objectClass": {"person"}, "cn": {"late"}}))
	if err != nil {
		// Post-close the DIT detached the journal entirely, so writes
		// succeed in memory; both behaviors are acceptable — what is NOT
		// acceptable is a half-applied write.
		if d.Seq() != seqBefore || d.Len() != lenBefore {
			t.Errorf("failed write mutated the DIT: seq %d->%d len %d->%d",
				seqBefore, d.Seq(), lenBefore, d.Len())
		}
	}
	// Double close is a no-op.
	if err := d.CloseJournal(); err != nil {
		t.Errorf("second CloseJournal: %v", err)
	}
}

// TestPipelineAckImpliesEmitted pins the contract um/sync.go depends on:
// when a write call returns, its record is already buffered on every live
// subscription (emission happens before the writer's ack).
func TestPipelineAckImpliesEmitted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dir.journal")
	d := New(nil)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Mode = SyncGroup
	if _, err := d.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	defer d.CloseJournal()
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})

	_, _, changes, cancel := d.SnapshotAndSubscribeSeq(1024)
	defer cancel()
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("cn=E%d,o=Lucent", i)
		mustAddP(t, d, name, map[string][]string{"objectClass": {"person"}, "cn": {fmt.Sprintf("E%d", i)}})
		// Non-blocking receive MUST find the record: the Add returned.
		select {
		case rec := <-changes:
			if rec.DN != name {
				t.Fatalf("record %d: got DN %q, want %q", i, rec.DN, name)
			}
		default:
			t.Fatalf("add %d acked before its record reached the subscription", i)
		}
	}
}
