package directory

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

func person(cn string) *Attrs {
	return AttrsFrom(map[string][]string{
		"objectClass": {"person"},
		"cn":          {cn},
	})
}

func org(o string) *Attrs {
	return AttrsFrom(map[string][]string{
		"objectClass": {"organization"},
		"o":           {o},
	})
}

// buildFigure2 builds the paper's Figure 2 sample tree.
func buildFigure2(t testing.TB) *DIT {
	d := New(nil)
	adds := []struct {
		dn    string
		attrs *Attrs
	}{
		{"o=Lucent", org("Lucent")},
		{"o=Marketing,o=Lucent", org("Marketing")},
		{"o=Accounting,o=Lucent", org("Accounting")},
		{"o=R&D,o=Lucent", org("R&D")},
		{"o=DEN Group,o=R&D,o=Lucent", org("DEN Group")},
		{"cn=John Doe,o=Marketing,o=Lucent", person("John Doe")},
		{"cn=Pat Smith,o=Marketing,o=Lucent", person("Pat Smith")},
		{"cn=Tim Dickens,o=Accounting,o=Lucent", person("Tim Dickens")},
		{"cn=Jill Lu,o=R&D,o=Lucent", person("Jill Lu")},
	}
	for _, a := range adds {
		if err := d.Add(dn.MustParse(a.dn), a.attrs); err != nil {
			t.Fatalf("add %s: %v", a.dn, err)
		}
	}
	return d
}

func TestFigure2TreeBuildAndGet(t *testing.T) {
	d := buildFigure2(t)
	if d.Len() != 9 {
		t.Fatalf("len = %d, want 9", d.Len())
	}
	e, err := d.Get(dn.MustParse("cn=John Doe, o=Marketing, o=Lucent"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Attrs.First("cn") != "John Doe" {
		t.Errorf("cn = %q", e.Attrs.First("cn"))
	}
}

func TestAddRequiresParent(t *testing.T) {
	d := New(nil)
	err := d.Add(dn.MustParse("cn=x,o=Nowhere"), person("x"))
	if CodeOf(err) != ldap.ResultNoSuchObject {
		t.Errorf("err = %v", err)
	}
}

func TestAddDuplicate(t *testing.T) {
	d := buildFigure2(t)
	err := d.Add(dn.MustParse("cn=JOHN DOE,o=marketing,o=lucent"), person("John Doe"))
	if CodeOf(err) != ldap.ResultEntryAlreadyExists {
		t.Errorf("err = %v", err)
	}
}

func TestAddFoldsRDNValues(t *testing.T) {
	d := New(nil)
	if err := d.Add(dn.MustParse("o=Lucent"), AttrsFrom(map[string][]string{"objectClass": {"organization"}})); err != nil {
		t.Fatal(err)
	}
	e, _ := d.Get(dn.MustParse("o=Lucent"))
	if e.Attrs.First("o") != "Lucent" {
		t.Error("RDN value not folded into attributes")
	}
}

func TestDeleteLeafOnly(t *testing.T) {
	d := buildFigure2(t)
	err := d.Delete(dn.MustParse("o=Marketing,o=Lucent"))
	if CodeOf(err) != ldap.ResultNotAllowedOnNonLeaf {
		t.Errorf("err = %v", err)
	}
	if err := d.Delete(dn.MustParse("cn=John Doe,o=Marketing,o=Lucent")); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(dn.MustParse("cn=John Doe,o=Marketing,o=Lucent")); CodeOf(err) != ldap.ResultNoSuchObject {
		t.Errorf("double delete err = %v", err)
	}
}

func TestModifySemantics(t *testing.T) {
	d := buildFigure2(t)
	name := dn.MustParse("cn=John Doe,o=Marketing,o=Lucent")

	// replace
	if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "telephoneNumber", Values: []string{"+1 908 582 9000"}}}}); err != nil {
		t.Fatal(err)
	}
	// add duplicate value -> attributeOrValueExists
	err := d.Modify(name, []ldap.Change{{Op: ldap.ModAdd,
		Attribute: ldap.Attribute{Type: "telephoneNumber", Values: []string{"+1 908 582 9000"}}}})
	if CodeOf(err) != ldap.ResultAttributeOrValueExists {
		t.Errorf("dup add err = %v", err)
	}
	// delete one value
	if err := d.Modify(name, []ldap.Change{{Op: ldap.ModDelete,
		Attribute: ldap.Attribute{Type: "telephoneNumber", Values: []string{"+1 908 582 9000"}}}}); err != nil {
		t.Fatal(err)
	}
	e, _ := d.Get(name)
	if e.Attrs.Has("telephoneNumber") {
		t.Error("value delete left attribute behind")
	}
	// delete absent -> noSuchAttribute
	err = d.Modify(name, []ldap.Change{{Op: ldap.ModDelete,
		Attribute: ldap.Attribute{Type: "telephoneNumber"}}})
	if CodeOf(err) != ldap.ResultNoSuchAttribute {
		t.Errorf("absent delete err = %v", err)
	}
}

func TestModifyIsAtomicOnError(t *testing.T) {
	d := buildFigure2(t)
	name := dn.MustParse("cn=Pat Smith,o=Marketing,o=Lucent")
	err := d.Modify(name, []ldap.Change{
		{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"2C-401"}}},
		{Op: ldap.ModDelete, Attribute: ldap.Attribute{Type: "noSuchThing"}},
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	e, _ := d.Get(name)
	if e.Attrs.Has("roomNumber") {
		t.Error("failed modify partially applied — single-entry atomicity violated")
	}
}

func TestModifyCannotStripRDN(t *testing.T) {
	d := buildFigure2(t)
	name := dn.MustParse("cn=John Doe,o=Marketing,o=Lucent")
	err := d.Modify(name, []ldap.Change{{Op: ldap.ModDelete,
		Attribute: ldap.Attribute{Type: "cn"}}})
	if CodeOf(err) != ldap.ResultNotAllowedOnRDN {
		t.Errorf("err = %v", err)
	}
	// Replacing cn but keeping the RDN value is fine.
	if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "cn", Values: []string{"John Doe", "Johnny"}}}}); err != nil {
		t.Errorf("replace retaining RDN value: %v", err)
	}
	// Replacing cn with values omitting the RDN value is not.
	err = d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "cn", Values: []string{"Someone Else"}}}})
	if CodeOf(err) != ldap.ResultNotAllowedOnRDN {
		t.Errorf("err = %v", err)
	}
}

func TestModifyDNRenamesEntry(t *testing.T) {
	d := buildFigure2(t)
	old := dn.MustParse("cn=John Doe,o=Marketing,o=Lucent")
	if err := d.ModifyDN(old, dn.RDN{{Attr: "cn", Value: "John Q Doe"}}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(old); CodeOf(err) != ldap.ResultNoSuchObject {
		t.Error("old DN still resolves")
	}
	e, err := d.Get(dn.MustParse("cn=John Q Doe,o=Marketing,o=Lucent"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Attrs.HasValue("cn", "John Doe") {
		t.Error("deleteOldRDN did not remove old value")
	}
	if !e.Attrs.HasValue("cn", "John Q Doe") {
		t.Error("new RDN value missing")
	}
}

func TestModifyDNKeepOldRDNValue(t *testing.T) {
	d := buildFigure2(t)
	old := dn.MustParse("cn=Pat Smith,o=Marketing,o=Lucent")
	if err := d.ModifyDN(old, dn.RDN{{Attr: "cn", Value: "Patricia Smith"}}, false); err != nil {
		t.Fatal(err)
	}
	e, _ := d.Get(dn.MustParse("cn=Patricia Smith,o=Marketing,o=Lucent"))
	if !e.Attrs.HasValue("cn", "Pat Smith") || !e.Attrs.HasValue("cn", "Patricia Smith") {
		t.Errorf("cn values = %v", e.Attrs.Get("cn"))
	}
}

func TestModifyDNRenamesSubtree(t *testing.T) {
	d := buildFigure2(t)
	if err := d.ModifyDN(dn.MustParse("o=R&D,o=Lucent"), dn.RDN{{Attr: "o", Value: "Research"}}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(dn.MustParse("cn=Jill Lu,o=Research,o=Lucent")); err != nil {
		t.Errorf("descendant not renamed: %v", err)
	}
	if _, err := d.Get(dn.MustParse("o=DEN Group,o=Research,o=Lucent")); err != nil {
		t.Errorf("grandchild not renamed: %v", err)
	}
	if _, err := d.Get(dn.MustParse("cn=Jill Lu,o=R&D,o=Lucent")); err == nil {
		t.Error("old descendant DN still resolves")
	}
	// Parent's child index must track the rename: add under the new name.
	if err := d.Add(dn.MustParse("cn=New Hire,o=Research,o=Lucent"), person("New Hire")); err != nil {
		t.Errorf("add under renamed node: %v", err)
	}
}

func TestModifyDNCollision(t *testing.T) {
	d := buildFigure2(t)
	err := d.ModifyDN(dn.MustParse("cn=John Doe,o=Marketing,o=Lucent"),
		dn.RDN{{Attr: "cn", Value: "Pat Smith"}}, true)
	if CodeOf(err) != ldap.ResultEntryAlreadyExists {
		t.Errorf("err = %v", err)
	}
}

func TestSearchScopes(t *testing.T) {
	d := buildFigure2(t)
	base := dn.MustParse("o=Lucent")

	got, err := d.Search(base, ldap.ScopeBaseObject, nil, 0)
	if err != nil || len(got) != 1 {
		t.Fatalf("base: %d entries, err %v", len(got), err)
	}
	got, err = d.Search(base, ldap.ScopeSingleLevel, nil, 0)
	if err != nil || len(got) != 3 {
		t.Fatalf("one: %d entries, err %v", len(got), err)
	}
	got, err = d.Search(base, ldap.ScopeWholeSubtree, nil, 0)
	if err != nil || len(got) != 9 {
		t.Fatalf("sub: %d entries, err %v", len(got), err)
	}
	// Parents sort before children.
	for i := 1; i < len(got); i++ {
		if got[i].DN.Depth() < got[i-1].DN.Depth() {
			t.Fatal("subtree results not parent-first")
		}
	}
}

func TestSearchWithFilter(t *testing.T) {
	d := buildFigure2(t)
	f, _ := ldap.ParseFilter("(&(objectClass=person)(cn=J*))")
	got, err := d.Search(dn.MustParse("o=Lucent"), ldap.ScopeWholeSubtree, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range got {
		names = append(names, e.Attrs.First("cn"))
	}
	if len(names) != 2 || names[0] != "John Doe" && names[1] != "John Doe" {
		t.Errorf("names = %v", names)
	}
}

func TestSearchSizeLimit(t *testing.T) {
	d := buildFigure2(t)
	got, err := d.Search(dn.MustParse("o=Lucent"), ldap.ScopeWholeSubtree, nil, 4)
	if CodeOf(err) != ldap.ResultSizeLimitExceeded {
		t.Errorf("err = %v", err)
	}
	if len(got) != 4 {
		t.Errorf("len = %d", len(got))
	}
}

func TestSearchMissingBase(t *testing.T) {
	d := buildFigure2(t)
	_, err := d.Search(dn.MustParse("o=Nokia"), ldap.ScopeWholeSubtree, nil, 0)
	if CodeOf(err) != ldap.ResultNoSuchObject {
		t.Errorf("err = %v", err)
	}
}

func TestSearchResultsAreSnapshots(t *testing.T) {
	// Search results share the tree's copy-on-write attribute values: a
	// later update installs a fresh *Attrs, so entries returned earlier
	// keep their point-in-time values.
	d := buildFigure2(t)
	name := dn.MustParse("cn=Jill Lu,o=R&D,o=Lucent")
	got, _ := d.Search(name, ldap.ScopeBaseObject, nil, 0)
	if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"3A-200"}}}}); err != nil {
		t.Fatal(err)
	}
	if got[0].Attrs.Has("roomNumber") {
		t.Error("pre-update search result sees the later update")
	}
	// Mutating a Clone() must not write through to the live entry.
	priv := got[0].Clone()
	priv.Attrs.Put("cn", "Mutated")
	e, _ := d.Get(name)
	if e.Attrs.First("cn") != "Jill Lu" {
		t.Error("cloned entry aliases live entry")
	}
}

func TestSeqAdvancesOnCommit(t *testing.T) {
	d := buildFigure2(t)
	before := d.Seq()
	name := dn.MustParse("cn=Jill Lu,o=R&D,o=Lucent")
	if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"3A-100"}}}}); err != nil {
		t.Fatal(err)
	}
	if d.Seq() != before+1 {
		t.Error("seq did not advance")
	}
	// Failed update must not advance.
	d.Modify(name, []ldap.Change{{Op: ldap.ModDelete, Attribute: ldap.Attribute{Type: "zzz"}}})
	if d.Seq() != before+1 {
		t.Error("seq advanced on failed update")
	}
}

func TestDITPropertyAddGetDelete(t *testing.T) {
	d := New(nil)
	if err := d.Add(dn.MustParse("o=Root"), org("Root")); err != nil {
		t.Fatal(err)
	}
	f := func(name string) bool {
		name = strings.TrimSpace(sanitizeValue(name))
		if name == "" {
			return true
		}
		child := dn.MustParse("o=Root").Child(dn.RDN{{Attr: "cn", Value: name}})
		if err := d.Add(child, person(name)); err != nil {
			// Acceptable only if a previous iteration added the same normalized name.
			return CodeOf(err) == ldap.ResultEntryAlreadyExists
		}
		e, err := d.Get(child)
		if err != nil || !strings.EqualFold(e.Attrs.First("cn"), strings.Join(strings.Fields(name), " ")) && e.Attrs.First("cn") != name {
			return false
		}
		return d.Delete(child) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitizeValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 0x21 && r < 0x7F && r != ',' && r != '+' && r != '=' && r != '\\' && r != '#' && r != ';' && r != '<' && r != '>' && r != '"' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	d := buildFigure2(t)
	done := make(chan error, 20)
	for i := 0; i < 10; i++ {
		go func(i int) {
			name := dn.MustParse(fmt.Sprintf("cn=Worker %d,o=R&D,o=Lucent", i))
			if err := d.Add(name, person(fmt.Sprintf("Worker %d", i))); err != nil {
				done <- err
				return
			}
			done <- d.Delete(name)
		}(i)
		go func() {
			_, err := d.Search(dn.MustParse("o=Lucent"), ldap.ScopeWholeSubtree, nil, 0)
			done <- err
		}()
	}
	for i := 0; i < 20; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkF2SampleTreeSearch(b *testing.B) {
	d := buildFigure2(b)
	f, _ := ldap.ParseFilter("(cn=J*)")
	base := dn.MustParse("o=Lucent")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Search(base, ldap.ScopeWholeSubtree, f, 0); err != nil {
			b.Fatal(err)
		}
	}
}
