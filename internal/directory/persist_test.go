package directory

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

func journaledDIT(t *testing.T, path string) *DIT {
	t.Helper()
	d := New(nil)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	if _, err := d.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	return d
}

// reopen replays the journal into a fresh DIT.
func reopen(t *testing.T, path string) *DIT {
	t.Helper()
	d := New(nil)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	if _, err := d.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	return d
}

// sameState compares two DITs entry by entry.
func sameState(t *testing.T, a, b *DIT) {
	t.Helper()
	ea, eb := a.All(), b.All()
	if len(ea) != len(eb) {
		t.Fatalf("entry counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if !ea[i].DN.Equal(eb[i].DN) {
			t.Fatalf("DN %d: %s vs %s", i, ea[i].DN, eb[i].DN)
		}
		if !ea[i].Attrs.Equal(eb[i].Attrs) {
			t.Fatalf("attrs of %s differ:\n%v\nvs\n%v", ea[i].DN, ea[i].Attrs.Map(), eb[i].Attrs.Map())
		}
	}
}

func TestJournalReplayRestoresState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dir.journal")
	d := journaledDIT(t, path)
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})
	mustAddP(t, d, "cn=A,o=Lucent", map[string][]string{"objectClass": {"person"}, "cn": {"A"}})
	mustAddP(t, d, "cn=B,o=Lucent", map[string][]string{"objectClass": {"person"}, "cn": {"B"}})
	if err := d.Modify(dn.MustParse("cn=A,o=Lucent"), []ldap.Change{
		{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"1"}}},
		{Op: ldap.ModAdd, Attribute: ldap.Attribute{Type: "mail", Values: []string{"a@x"}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(dn.MustParse("cn=B,o=Lucent")); err != nil {
		t.Fatal(err)
	}
	if err := d.ModifyDN(dn.MustParse("cn=A,o=Lucent"), dn.RDN{{Attr: "cn", Value: "A Prime"}}, true); err != nil {
		t.Fatal(err)
	}

	restored := reopen(t, path)
	sameState(t, d, restored)
	e, err := restored.Get(dn.MustParse("cn=A Prime,o=Lucent"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Attrs.First("roomNumber") != "1" || e.Attrs.First("mail") != "a@x" {
		t.Errorf("restored attrs = %v", e.Attrs.Map())
	}
}

func mustAddP(t *testing.T, d *DIT, name string, attrs map[string][]string) {
	t.Helper()
	if err := d.Add(dn.MustParse(name), AttrsFrom(attrs)); err != nil {
		t.Fatalf("add %s: %v", name, err)
	}
}

func TestJournalFailedUpdatesNotRecorded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dir.journal")
	d := journaledDIT(t, path)
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})
	// Failing operations must leave no trace.
	d.Add(dn.MustParse("cn=x,o=Ghost"), AttrsFrom(map[string][]string{"cn": {"x"}}))
	d.Delete(dn.MustParse("cn=missing,o=Lucent"))
	d.Modify(dn.MustParse("cn=missing,o=Lucent"), []ldap.Change{
		{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "x", Values: []string{"y"}}}})

	restored := reopen(t, path)
	sameState(t, d, restored)
	if restored.Len() != 1 {
		t.Errorf("restored %d entries, want 1", restored.Len())
	}
}

func TestCompactPreservesStateAndShrinks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dir.journal")
	d := journaledDIT(t, path)
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})
	name := dn.MustParse("cn=Busy,o=Lucent")
	mustAddP(t, d, "cn=Busy,o=Lucent", map[string][]string{"objectClass": {"person"}, "cn": {"Busy"}})
	for i := 0; i < 100; i++ {
		if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("R-%d", i)}}}}); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := os.Stat(path)
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink: %d -> %d", before.Size(), after.Size())
	}
	// State survives compaction AND further updates after it.
	if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"FINAL"}}}}); err != nil {
		t.Fatal(err)
	}
	restored := reopen(t, path)
	sameState(t, d, restored)
	e, _ := restored.Get(name)
	if e.Attrs.First("roomNumber") != "FINAL" {
		t.Errorf("post-compaction update lost: %q", e.Attrs.First("roomNumber"))
	}
}

func TestJournalDoubleAttachRejected(t *testing.T) {
	dir := t.TempDir()
	d := journaledDIT(t, filepath.Join(dir, "a.journal"))
	j2, err := OpenJournal(filepath.Join(dir, "b.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, err := d.AttachJournal(j2); err == nil {
		t.Error("second journal attached")
	}
}

func TestJournalCorruptRecordSurfaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dir.journal")
	if err := os.WriteFile(path, []byte("{\"op\":\"add\",\"dn\":\"o=X\",\"attrs\":{\"o\":[\"X\"]}}\nnot-json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := New(nil)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := d.AttachJournal(j); err == nil {
		t.Error("corrupt journal replayed cleanly")
	}
}

// TestJournalRandomOpsProperty drives a random operation sequence and
// verifies replay equivalence — the crash-recovery property.
func TestJournalRandomOpsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	path := filepath.Join(t.TempDir(), "dir.journal")
	d := journaledDIT(t, path)
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})

	live := map[int]bool{}
	nameOf := func(i int) dn.DN { return dn.MustParse(fmt.Sprintf("cn=P%03d,o=Lucent", i)) }
	for step := 0; step < 500; step++ {
		i := rng.Intn(40)
		switch rng.Intn(4) {
		case 0: // add
			err := d.Add(nameOf(i), AttrsFrom(map[string][]string{
				"objectClass": {"person"}, "cn": {fmt.Sprintf("P%03d", i)}}))
			if err == nil {
				live[i] = true
			}
		case 1: // delete
			if d.Delete(nameOf(i)) == nil {
				delete(live, i)
			}
		case 2: // modify
			d.Modify(nameOf(i), []ldap.Change{{Op: ldap.ModReplace,
				Attribute: ldap.Attribute{Type: "roomNumber",
					Values: []string{fmt.Sprintf("R-%d", step)}}}})
		case 3: // occasional compaction mid-stream
			if step%97 == 0 {
				if err := d.Compact(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	restored := reopen(t, path)
	sameState(t, d, restored)
	if restored.Len() != len(live)+1 {
		t.Errorf("restored %d entries, want %d", restored.Len(), len(live)+1)
	}
}

// BenchmarkJournalAblation measures what the write-ahead journal costs the
// update path (buffered and fsync-per-write variants vs in-memory).
func BenchmarkJournalAblation(b *testing.B) {
	run := func(b *testing.B, journaled, syncEvery bool) {
		d := New(nil)
		if journaled {
			j, err := OpenJournal(filepath.Join(b.TempDir(), "bench.journal"))
			if err != nil {
				b.Fatal(err)
			}
			j.SyncEveryWrite = syncEvery
			defer j.Close()
			if _, err := d.AttachJournal(j); err != nil {
				b.Fatal(err)
			}
		}
		if err := d.Add(dn.MustParse("o=Lucent"), AttrsFrom(map[string][]string{
			"objectClass": {"organization"}})); err != nil {
			b.Fatal(err)
		}
		name := dn.MustParse("cn=Bench,o=Lucent")
		if err := d.Add(name, AttrsFrom(map[string][]string{
			"objectClass": {"person"}, "cn": {"Bench"}})); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
				Attribute: ldap.Attribute{Type: "roomNumber",
					Values: []string{fmt.Sprintf("R-%d", i)}}}}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("InMemory", func(b *testing.B) { run(b, false, false) })
	b.Run("Journaled", func(b *testing.B) { run(b, true, false) })
	b.Run("JournaledFsync", func(b *testing.B) { run(b, true, true) })
}
