package directory

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

func journaledDIT(t *testing.T, path string) *DIT {
	t.Helper()
	d := New(nil)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	if _, err := d.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	return d
}

// reopen replays the journal into a fresh DIT.
func reopen(t *testing.T, path string) *DIT {
	t.Helper()
	d := New(nil)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	if _, err := d.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	return d
}

// sameState compares two DITs entry by entry.
func sameState(t *testing.T, a, b *DIT) {
	t.Helper()
	ea, eb := a.All(), b.All()
	if len(ea) != len(eb) {
		t.Fatalf("entry counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if !ea[i].DN.Equal(eb[i].DN) {
			t.Fatalf("DN %d: %s vs %s", i, ea[i].DN, eb[i].DN)
		}
		if !ea[i].Attrs.Equal(eb[i].Attrs) {
			t.Fatalf("attrs of %s differ:\n%v\nvs\n%v", ea[i].DN, ea[i].Attrs.Map(), eb[i].Attrs.Map())
		}
	}
}

func TestJournalReplayRestoresState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dir.journal")
	d := journaledDIT(t, path)
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})
	mustAddP(t, d, "cn=A,o=Lucent", map[string][]string{"objectClass": {"person"}, "cn": {"A"}})
	mustAddP(t, d, "cn=B,o=Lucent", map[string][]string{"objectClass": {"person"}, "cn": {"B"}})
	if err := d.Modify(dn.MustParse("cn=A,o=Lucent"), []ldap.Change{
		{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"1"}}},
		{Op: ldap.ModAdd, Attribute: ldap.Attribute{Type: "mail", Values: []string{"a@x"}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(dn.MustParse("cn=B,o=Lucent")); err != nil {
		t.Fatal(err)
	}
	if err := d.ModifyDN(dn.MustParse("cn=A,o=Lucent"), dn.RDN{{Attr: "cn", Value: "A Prime"}}, true); err != nil {
		t.Fatal(err)
	}

	restored := reopen(t, path)
	sameState(t, d, restored)
	e, err := restored.Get(dn.MustParse("cn=A Prime,o=Lucent"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Attrs.First("roomNumber") != "1" || e.Attrs.First("mail") != "a@x" {
		t.Errorf("restored attrs = %v", e.Attrs.Map())
	}
}

func mustAddP(t *testing.T, d *DIT, name string, attrs map[string][]string) {
	t.Helper()
	if err := d.Add(dn.MustParse(name), AttrsFrom(attrs)); err != nil {
		t.Fatalf("add %s: %v", name, err)
	}
}

func TestJournalFailedUpdatesNotRecorded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dir.journal")
	d := journaledDIT(t, path)
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})
	// Failing operations must leave no trace.
	d.Add(dn.MustParse("cn=x,o=Ghost"), AttrsFrom(map[string][]string{"cn": {"x"}}))
	d.Delete(dn.MustParse("cn=missing,o=Lucent"))
	d.Modify(dn.MustParse("cn=missing,o=Lucent"), []ldap.Change{
		{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "x", Values: []string{"y"}}}})

	restored := reopen(t, path)
	sameState(t, d, restored)
	if restored.Len() != 1 {
		t.Errorf("restored %d entries, want 1", restored.Len())
	}
}

func TestCompactPreservesStateAndShrinks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dir.journal")
	d := journaledDIT(t, path)
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})
	name := dn.MustParse("cn=Busy,o=Lucent")
	mustAddP(t, d, "cn=Busy,o=Lucent", map[string][]string{"objectClass": {"person"}, "cn": {"Busy"}})
	for i := 0; i < 100; i++ {
		if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("R-%d", i)}}}}); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := os.Stat(path)
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink: %d -> %d", before.Size(), after.Size())
	}
	// State survives compaction AND further updates after it.
	if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"FINAL"}}}}); err != nil {
		t.Fatal(err)
	}
	restored := reopen(t, path)
	sameState(t, d, restored)
	e, _ := restored.Get(name)
	if e.Attrs.First("roomNumber") != "FINAL" {
		t.Errorf("post-compaction update lost: %q", e.Attrs.First("roomNumber"))
	}
}

func TestJournalDoubleAttachRejected(t *testing.T) {
	dir := t.TempDir()
	d := journaledDIT(t, filepath.Join(dir, "a.journal"))
	j2, err := OpenJournal(filepath.Join(dir, "b.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, err := d.AttachJournal(j2); err == nil {
		t.Error("second journal attached")
	}
}

func TestJournalCorruptMidFileSurfaces(t *testing.T) {
	// A garbage record FOLLOWED by more records is real corruption, not a
	// torn tail, and must abort startup.
	path := filepath.Join(t.TempDir(), "dir.journal")
	content := "{\"op\":\"add\",\"dn\":\"o=X\",\"attrs\":{\"o\":[\"X\"]}}\n" +
		"not-json\n" +
		"{\"op\":\"add\",\"dn\":\"cn=a,o=X\",\"attrs\":{\"cn\":[\"a\"]}}\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	d := New(nil)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := d.AttachJournal(j); err == nil {
		t.Error("corrupt journal replayed cleanly")
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	// A crash mid-append leaves a partial final record. Replay must
	// truncate it, keep every complete record, and leave the journal
	// appendable at a record boundary.
	path := filepath.Join(t.TempDir(), "dir.journal")
	d := journaledDIT(t, path)
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})
	mustAddP(t, d, "cn=A,o=Lucent", map[string][]string{"objectClass": {"person"}, "cn": {"A"}})
	if err := d.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"add","dn":"cn=torn,o=Lu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	restored := New(nil)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := restored.AttachJournal(j)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if n != 2 {
		t.Errorf("replayed %d records, want 2", n)
	}
	if st := restored.JournalStats(); st.TornTails != 1 {
		t.Errorf("TornTails = %d, want 1", st.TornTails)
	}
	// The tail was truncated: further appends land on a record boundary
	// and a second replay is clean.
	mustAddP(t, restored, "cn=B,o=Lucent", map[string][]string{"objectClass": {"person"}, "cn": {"B"}})
	if err := restored.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	again := reopen(t, path)
	sameState(t, restored, again)
	if again.Len() != 3 {
		t.Errorf("after torn-tail recovery got %d entries, want 3", again.Len())
	}
}

// TestJournalGroupCommitBatches proves group formation: concurrent writers
// commit in groups larger than one, with far fewer groups than records.
// This is the scripts/check.sh group-commit smoke.
func TestJournalGroupCommitBatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dir.journal")
	d := New(nil)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Mode = SyncGroup
	// A small linger makes group formation deterministic even on a
	// single-CPU runner: the committer waits for the other writers to
	// stage before writing the group.
	j.Linger = 2 * time.Millisecond
	if _, err := d.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	defer d.CloseJournal()
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})
	const writers, each = 3, 40
	for i := 0; i < writers; i++ {
		mustAddP(t, d, fmt.Sprintf("cn=W%d,o=Lucent", i),
			map[string][]string{"objectClass": {"person"}, "cn": {fmt.Sprintf("W%d", i)}})
	}
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := dn.MustParse(fmt.Sprintf("cn=W%d,o=Lucent", i))
			for k := 0; k < each; k++ {
				if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber",
						Values: []string{fmt.Sprintf("R-%d-%d", i, k)}}}}); err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := d.JournalStats()
	if st.MaxBatch <= 1 {
		t.Errorf("no group commit observed: MaxBatch = %d", st.MaxBatch)
	}
	if st.Batches >= st.Appends {
		t.Errorf("batches (%d) not fewer than appends (%d)", st.Batches, st.Appends)
	}
	if st.Mode != "group" {
		t.Errorf("stats mode = %q", st.Mode)
	}
	// Durability-equivalence: the journal replays to the identical state.
	if err := d.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	sameState(t, d, reopen(t, path))
}

// TestGroupCommitCrashRecovery is the write-ahead-safety proof for group
// commit: every ACKED write (the call returned) survives a simulated crash
// — the journal file as-is, no clean close, plus a torn tail from a write
// that was in flight — while unacked tails may be lost but never corrupt
// replay.
func TestGroupCommitCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dir.journal")
	d := New(nil)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Mode = SyncGroup
	if _, err := d.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})
	const writers, each = 8, 50
	type acked struct {
		mu   sync.Mutex
		last map[int]string // writer -> last acked roomNumber value
	}
	ack := acked{last: map[int]string{}}
	for i := 0; i < writers; i++ {
		mustAddP(t, d, fmt.Sprintf("cn=W%d,o=Lucent", i),
			map[string][]string{"objectClass": {"person"}, "cn": {fmt.Sprintf("W%d", i)}})
	}
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := dn.MustParse(fmt.Sprintf("cn=W%d,o=Lucent", i))
			for k := 0; k < each; k++ {
				v := fmt.Sprintf("%d", k)
				if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{v}}}}); err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
				// The call returned: this value is acked (durable).
				ack.mu.Lock()
				ack.last[i] = v
				ack.mu.Unlock()
			}
		}(i)
	}

	// Crash MID-FLIGHT: snapshot what has been acked so far, THEN copy the
	// journal bytes as they are on disk — no close, no flush — and append
	// a torn half-record as if one more write was in the middle of its
	// group. Anything acked before the copy must be in the copy.
	time.Sleep(2 * time.Millisecond)
	ack.mu.Lock()
	ackedAtCrash := make(map[int]string, len(ack.last))
	for k, v := range ack.last {
		ackedAtCrash[k] = v
	}
	ack.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	crashed := filepath.Join(dir, "crashed.journal")
	data = append(data, []byte(`{"seq":99999,"op":"modify","dn":"cn=W0,o=Luce`)...)
	if err := os.WriteFile(crashed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	restored := New(nil)
	j2, err := OpenJournal(crashed)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, err := restored.AttachJournal(j2); err != nil {
		t.Fatalf("crash replay failed: %v", err)
	}
	for i, want := range ackedAtCrash {
		e, err := restored.Get(dn.MustParse(fmt.Sprintf("cn=W%d,o=Lucent", i)))
		if err != nil {
			t.Fatalf("acked entry W%d lost: %v", i, err)
		}
		// Each writer's values ascend, so the restored value must be at
		// least the one acked before the crash copy (later unacked writes
		// may also have made it — fine; going backwards would mean an
		// acked write was lost).
		got := e.Attrs.First("roomNumber")
		gotK, err1 := strconv.Atoi(got)
		wantK, err2 := strconv.Atoi(want)
		if err1 != nil || err2 != nil || gotK < wantK {
			t.Errorf("W%d: acked write lost: restored roomNumber %q < acked %q", i, got, want)
		}
	}

	// And the post-crash journal on the ORIGINAL path replays the complete
	// final state once all writers finished.
	if err := d.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	full := reopen(t, path)
	sameState(t, d, full)
}

// TestJournalRandomOpsProperty drives a random operation sequence and
// verifies replay equivalence — the crash-recovery property.
func TestJournalRandomOpsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	path := filepath.Join(t.TempDir(), "dir.journal")
	d := journaledDIT(t, path)
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})

	live := map[int]bool{}
	nameOf := func(i int) dn.DN { return dn.MustParse(fmt.Sprintf("cn=P%03d,o=Lucent", i)) }
	for step := 0; step < 500; step++ {
		i := rng.Intn(40)
		switch rng.Intn(4) {
		case 0: // add
			err := d.Add(nameOf(i), AttrsFrom(map[string][]string{
				"objectClass": {"person"}, "cn": {fmt.Sprintf("P%03d", i)}}))
			if err == nil {
				live[i] = true
			}
		case 1: // delete
			if d.Delete(nameOf(i)) == nil {
				delete(live, i)
			}
		case 2: // modify
			d.Modify(nameOf(i), []ldap.Change{{Op: ldap.ModReplace,
				Attribute: ldap.Attribute{Type: "roomNumber",
					Values: []string{fmt.Sprintf("R-%d", step)}}}})
		case 3: // occasional compaction mid-stream
			if step%97 == 0 {
				if err := d.Compact(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	restored := reopen(t, path)
	sameState(t, d, restored)
	if restored.Len() != len(live)+1 {
		t.Errorf("restored %d entries, want %d", restored.Len(), len(live)+1)
	}
}

// BenchmarkJournalAblation measures what the write-ahead journal costs the
// update path (buffered and fsync-per-write variants vs in-memory).
func BenchmarkJournalAblation(b *testing.B) {
	run := func(b *testing.B, journaled, syncEvery bool) {
		d := New(nil)
		if journaled {
			j, err := OpenJournal(filepath.Join(b.TempDir(), "bench.journal"))
			if err != nil {
				b.Fatal(err)
			}
			if syncEvery {
				j.Mode = SyncAlways
			}
			defer j.Close()
			if _, err := d.AttachJournal(j); err != nil {
				b.Fatal(err)
			}
		}
		if err := d.Add(dn.MustParse("o=Lucent"), AttrsFrom(map[string][]string{
			"objectClass": {"organization"}})); err != nil {
			b.Fatal(err)
		}
		name := dn.MustParse("cn=Bench,o=Lucent")
		if err := d.Add(name, AttrsFrom(map[string][]string{
			"objectClass": {"person"}, "cn": {"Bench"}})); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
				Attribute: ldap.Attribute{Type: "roomNumber",
					Values: []string{fmt.Sprintf("R-%d", i)}}}}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("InMemory", func(b *testing.B) { run(b, false, false) })
	b.Run("Journaled", func(b *testing.B) { run(b, true, false) })
	b.Run("JournaledFsync", func(b *testing.B) { run(b, true, true) })
}
