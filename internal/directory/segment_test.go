package directory

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

// segmentedDIT builds an n-segment DIT journaled at base (group commit).
func segmentedDIT(t *testing.T, base string, n int) *DIT {
	t.Helper()
	d := NewSegmented(nil, n)
	if _, err := d.AttachJournalSet(JournalSetConfig{Base: base, Mode: SyncGroup}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.CloseJournal() })
	return d
}

// reopenSet replays the journal set into a fresh n-segment DIT.
func reopenSet(t *testing.T, base string, n int) *DIT {
	t.Helper()
	d := NewSegmented(nil, n)
	if _, err := d.AttachJournalSet(JournalSetConfig{Base: base, Mode: SyncGroup}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.CloseJournal() })
	return d
}

// seedOrg populates a two-level tree wide enough to land entries in every
// segment of an 8-way DIT.
func seedOrg(t *testing.T, d *DIT, people int) {
	t.Helper()
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})
	for i := 0; i < people; i++ {
		mustAddP(t, d, fmt.Sprintf("cn=p%d,o=Lucent", i), map[string][]string{
			"objectClass": {"person"}, "cn": {fmt.Sprintf("p%d", i)},
			"telephoneNumber": {fmt.Sprintf("555-%04d", i)}})
	}
}

func TestSegmentedBasicOps(t *testing.T) {
	d := NewSegmented(nil, 8)
	seedOrg(t, d, 64)
	if d.Len() != 65 {
		t.Fatalf("Len = %d, want 65", d.Len())
	}
	st := d.Stats()
	if st.Segments != 8 || st.Entries != 65 {
		t.Fatalf("stats = %+v", st)
	}
	spread := 0
	for _, n := range st.SegmentEntries {
		if n > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("entries not spread across segments: %v", st.SegmentEntries)
	}

	if err := d.Modify(dn.MustParse("cn=p3,o=Lucent"), []ldap.Change{
		{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"9"}}}}); err != nil {
		t.Fatal(err)
	}
	e, err := d.Get(dn.MustParse("cn=p3,o=Lucent"))
	if err != nil || e.Attrs.First("roomNumber") != "9" {
		t.Fatalf("get after modify: %v %v", err, e.Attrs.Map())
	}
	if err := d.Delete(dn.MustParse("cn=p4,o=Lucent")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Search(dn.MustParse("o=Lucent"), ldap.ScopeSingleLevel, nil, 0)
	if err != nil || len(got) != 63 {
		t.Fatalf("one-level search: %v, %d entries (want 63)", err, len(got))
	}
	// Rename crossing segments: the whole subtree re-routes to new keys.
	mustAddP(t, d, "ou=Eng,o=Lucent", map[string][]string{"ou": {"Eng"}})
	mustAddP(t, d, "cn=sub,ou=Eng,o=Lucent", map[string][]string{"cn": {"sub"}})
	if err := d.ModifyDN(dn.MustParse("ou=Eng,o=Lucent"), dn.RDN{{Attr: "ou", Value: "Engineering"}}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(dn.MustParse("cn=sub,ou=Engineering,o=Lucent")); err != nil {
		t.Fatalf("subtree entry after rename: %v", err)
	}
	if _, err := d.Get(dn.MustParse("ou=Eng,o=Lucent")); err == nil {
		t.Fatal("old DN still resolves after rename")
	}
}

func TestSegmentedJournalReplay(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := segmentedDIT(t, base, 8)
	seedOrg(t, d, 40)
	if err := d.Modify(dn.MustParse("cn=p1,o=Lucent"), []ldap.Change{
		{Op: ldap.ModAdd, Attribute: ldap.Attribute{Type: "mail", Values: []string{"p1@x"}}}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(dn.MustParse("cn=p2,o=Lucent")); err != nil {
		t.Fatal(err)
	}
	mustAddP(t, d, "ou=Eng,o=Lucent", map[string][]string{"ou": {"Eng"}})
	mustAddP(t, d, "cn=dev,ou=Eng,o=Lucent", map[string][]string{"cn": {"dev"}})
	if err := d.ModifyDN(dn.MustParse("ou=Eng,o=Lucent"), dn.RDN{{Attr: "ou", Value: "R&D"}}, true); err != nil {
		t.Fatal(err)
	}

	restored := reopenSet(t, base, 8)
	sameState(t, d, restored)
	if restored.Seq() < d.Seq() {
		t.Fatalf("restored seq %d < live seq %d", restored.Seq(), d.Seq())
	}
	// The restored tree must be structurally sound: children links let the
	// renamed subtree entry be deleted leaf-first.
	if err := restored.Delete(dn.MustParse("ou=R&D,o=Lucent")); err == nil {
		t.Fatal("deleted non-leaf after replay: children links missing")
	}
	if err := restored.Delete(dn.MustParse("cn=dev,ou=R&D,o=Lucent")); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentCountChangeReplay(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := segmentedDIT(t, base, 8)
	seedOrg(t, d, 30)
	d.CloseJournal()

	// Shrink: 8 -> 3. The higher-numbered files must be folded in and gone.
	d3 := reopenSet(t, base, 3)
	sameState(t, d, d3)
	for i := 3; i < 8; i++ {
		if _, err := os.Stat(segJournalPath(base, i)); err == nil {
			t.Errorf("stale segment file %d survived migration", i)
		}
	}
	mustAddP(t, d3, "cn=extra,o=Lucent", map[string][]string{"cn": {"extra"}})
	d3.CloseJournal()

	// Grow: 3 -> 5.
	d5 := reopenSet(t, base, 5)
	if d5.Len() != d.Len()+1 {
		t.Fatalf("after regrow Len = %d, want %d", d5.Len(), d.Len()+1)
	}
	if _, err := d5.Get(dn.MustParse("cn=extra,o=Lucent")); err != nil {
		t.Fatal(err)
	}
}

func TestLegacyJournalMigration(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := New(nil)
	j, err := OpenJournal(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	seedOrg(t, d, 25)
	if err := d.ModifyDN(dn.MustParse("cn=p0,o=Lucent"), dn.RDN{{Attr: "cn", Value: "p0 prime"}}, true); err != nil {
		t.Fatal(err)
	}
	d.CloseJournal()

	migrated := reopenSet(t, base, 8)
	sameState(t, d, migrated)
	if _, err := os.Stat(base); !os.IsNotExist(err) {
		t.Error("legacy journal file survived migration")
	}
	for i := 0; i < 8; i++ {
		if _, err := os.Stat(segJournalPath(base, i)); err != nil {
			t.Errorf("segment file %d missing after migration: %v", i, err)
		}
	}
	// And the migrated layout replays on its own.
	mustAddP(t, migrated, "cn=post,o=Lucent", map[string][]string{"cn": {"post"}})
	migrated.CloseJournal()
	again := reopenSet(t, base, 8)
	if _, err := again.Get(dn.MustParse("cn=post,o=Lucent")); err != nil {
		t.Fatal(err)
	}
	if _, err := again.Get(dn.MustParse("cn=p0 prime,o=Lucent")); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedChangelogTotalOrder drives concurrent writers across segments
// and asserts subscribers observe one gap-free ascending seq stream even
// though per-segment pipelines complete out of order.
func TestSegmentedChangelogTotalOrder(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := segmentedDIT(t, base, 8)
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})

	snap, seq, changes, cancel := d.SnapshotAndSubscribeSeq(8192)
	defer cancel()
	if len(snap) != 1 || seq != d.Seq() {
		t.Fatalf("snapshot %d entries at seq %d (dit seq %d)", len(snap), seq, d.Seq())
	}

	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				name := fmt.Sprintf("cn=w%d-%d,o=Lucent", w, i)
				if err := d.Add(dn.MustParse(name), AttrsFrom(map[string][]string{"cn": {name}})); err != nil {
					t.Errorf("add %s: %v", name, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	want := seq
	for i := 0; i < writers*perWriter; i++ {
		select {
		case rec := <-changes:
			want++
			if rec.Seq != want {
				t.Fatalf("changelog gap: got seq %d, want %d", rec.Seq, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("changelog stalled after %d records", i)
		}
	}
}

func TestRangeStreamsEveryEntry(t *testing.T) {
	d := NewSegmented(nil, 8)
	seedOrg(t, d, 50)
	seen := map[string]bool{}
	d.Range(func(e Entry) bool {
		seen[e.DN.Normalize()] = true
		return true
	})
	if len(seen) != 51 {
		t.Fatalf("Range visited %d entries, want 51", len(seen))
	}
	n := 0
	d.Range(func(Entry) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop visited %d, want 10", n)
	}
}

// TestIncrementalCompactUnderLoad runs compaction sweeps against concurrent
// writers and asserts no write is ever rejected and no acked write is lost.
func TestIncrementalCompactUnderLoad(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := segmentedDIT(t, base, 4)
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})

	stop := make(chan struct{})
	var rejected atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("cn=c%d-%d,o=Lucent", w, i)
				if err := d.Add(dn.MustParse(name), AttrsFrom(map[string][]string{"cn": {name}})); err != nil {
					rejected.Add(1)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 6; i++ {
		if err := d.Compact(); err != nil {
			t.Errorf("compact sweep %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if rejected.Load() != 0 {
		t.Fatalf("%d writes rejected during online compaction", rejected.Load())
	}
	if d.CompactionStats().Runs == 0 {
		t.Fatal("no compaction runs recorded")
	}
	d.CloseJournal()
	restored := reopenSet(t, base, 4)
	sameState(t, d, restored)
}

// compactCrash aborts one segment compaction at the given stage, keeps
// writing acked updates, and asserts replay restores every one of them.
func compactCrash(t *testing.T, stage string) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := segmentedDIT(t, base, 2)
	seedOrg(t, d, 20)

	injected := false
	compactHook = func(s string, seg int) error {
		if s == stage && !injected {
			injected = true
			return fmt.Errorf("injected crash at %s", s)
		}
		return nil
	}
	defer func() { compactHook = nil }()

	if err := d.Compact(); err == nil {
		t.Fatal("compact did not surface the injected crash")
	}
	if !injected {
		t.Fatal("hook never fired")
	}
	// The aborted rewrite leaves a .compact temp behind, like a real crash.
	tmps := 0
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(segJournalPath(base, i) + ".compact"); err == nil {
			tmps++
		}
	}
	if tmps == 0 {
		t.Fatal("no .compact temp left after aborted compaction")
	}

	// The directory keeps serving acked writes after the failed compaction.
	mustAddP(t, d, "cn=after-crash,o=Lucent", map[string][]string{"cn": {"after-crash"}})
	if err := d.Modify(dn.MustParse("cn=p5,o=Lucent"), []ldap.Change{
		{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"7"}}}}); err != nil {
		t.Fatal(err)
	}
	d.CloseJournal()

	restored := reopenSet(t, base, 2)
	sameState(t, d, restored)
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(segJournalPath(base, i) + ".compact"); err == nil {
			t.Errorf("stale .compact temp for segment %d survived attach", i)
		}
	}
}

func TestCompactCrashAtTmpWritten(t *testing.T) { compactCrash(t, "tmp-written") }
func TestCompactCrashMidSplice(t *testing.T)    { compactCrash(t, "mid-splice") }

func TestAutoCompactLifecycle(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := segmentedDIT(t, base, 2)
	seedOrg(t, d, 10)
	d.StartAutoCompact(time.Millisecond)
	d.StartAutoCompact(time.Millisecond) // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for d.CompactionStats().Skips < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d.CompactionStats().Skips < 3 {
		t.Fatal("auto-compactor never ticked")
	}
	d.stopAutoCompact()
	d.stopAutoCompact() // idempotent
	// CloseJournal after stop must not hang.
	if err := d.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRangeExactCut(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dir.journal")
	d := segmentedDIT(t, base, 8)
	mustAddP(t, d, "o=Lucent", map[string][]string{"objectClass": {"organization"}})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("cn=bg%d,o=Lucent", i)
			if err := d.Add(dn.MustParse(name), AttrsFrom(map[string][]string{"cn": {name}})); err != nil {
				t.Errorf("bg add: %v", err)
				return
			}
		}
	}()

	time.Sleep(10 * time.Millisecond)
	var streamed int
	seq, changes, cancel := d.SnapshotRangeAndSubscribeSeq(8192, func(Entry) bool {
		streamed++
		return true
	})
	defer cancel()
	close(stop)
	wg.Wait()

	// Exact cut: streamed entries = 1 root + (seq - renames…) adds; every
	// op here is an add, so streamed == seq at the cut. The first change
	// carries seq+1 and the stream is gap-free.
	if uint64(streamed) != seq {
		t.Fatalf("streamed %d entries at cut seq %d", streamed, seq)
	}
	want := seq
	remaining := d.Seq() - seq
	for i := uint64(0); i < remaining; i++ {
		select {
		case rec := <-changes:
			want++
			if rec.Seq != want {
				t.Fatalf("stream gap: got %d want %d", rec.Seq, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("stream stalled")
		}
	}
}
