package directory

import (
	"strings"
	"sync"
	"sync/atomic"
)

// Attribute-name interning. A million-entry directory stores the same small
// set of attribute type names ("cn", "telephoneNumber", objectClass", ...)
// once per entry; interning collapses them to one canonical string object
// per distinct spelling, so per-entry cost for names is one string header,
// not one heap copy. The table is global (names are workload vocabulary,
// not per-DIT data) and append-only.
//
// Ownership rules (DESIGN.md §13): only attrs.go interns — at the points
// where a name is stored into an Attrs (Put/Add and the lowered key). Read
// paths (Get/Has/...) never intern: lookups compare by content, and
// interning on reads would let a scanning client grow the table. As a
// backstop against pathological schemas the table stops accepting new
// names past internMax and hands back the input unchanged — correctness
// never depends on interning, only footprint does.

const internMax = 1 << 16

var (
	internTab  sync.Map // string -> string (key == value, canonical object)
	internSize atomic.Int64
)

// intern returns the canonical string object equal to s.
func intern(s string) string {
	if v, ok := internTab.Load(s); ok {
		return v.(string)
	}
	if internSize.Load() >= internMax {
		return s
	}
	// Clone so the canonical object never pins a larger backing array the
	// caller sliced s out of (e.g. a decoded wire buffer).
	s = strings.Clone(s)
	v, loaded := internTab.LoadOrStore(s, s)
	if !loaded {
		internSize.Add(1)
	}
	return v.(string)
}

// InternedNames reports how many distinct attribute-name spellings the
// global intern table holds.
func InternedNames() int { return int(internSize.Load()) }
