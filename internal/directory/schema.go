package directory

import (
	"fmt"
	"strings"

	"metacomm/internal/ldap"
)

// ClassKind distinguishes structural, auxiliary and abstract object classes.
type ClassKind int

// Object class kinds.
const (
	Structural ClassKind = iota
	Auxiliary
	Abstract
)

func (k ClassKind) String() string {
	switch k {
	case Structural:
		return "structural"
	case Auxiliary:
		return "auxiliary"
	case Abstract:
		return "abstract"
	}
	return fmt.Sprintf("classKind(%d)", int(k))
}

// AttributeType describes one attribute in the schema.
type AttributeType struct {
	Name        string
	Description string
	SingleValue bool
	// Operational attributes (e.g. lastUpdater) are maintained by the
	// system and permitted on any entry.
	Operational bool
}

// ObjectClass describes one object class.
type ObjectClass struct {
	Name        string
	Description string
	Kind        ClassKind
	Sup         string // superior class name, "" for top-level
	Must        []string
	May         []string
}

// Schema is a set of attribute types and object classes with the validation
// rules the paper depends on: structural classes may have mandatory (MUST)
// attributes; auxiliary classes may not (paper §5.2 — "one practical
// limitation of auxiliary classes is that they cannot have mandatory
// attributes").
type Schema struct {
	attrs   map[string]*AttributeType
	classes map[string]*ObjectClass
	// Strict rejects attributes not allowed by the entry's classes. The
	// default is false, reflecting LDAP's "very weak typing" (§5.3); the
	// MetaComm integrated schema turns it on.
	Strict bool
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{attrs: map[string]*AttributeType{}, classes: map[string]*ObjectClass{}}
}

// AddAttribute registers an attribute type.
func (s *Schema) AddAttribute(a AttributeType) error {
	k := lower(a.Name)
	if _, dup := s.attrs[k]; dup {
		return fmt.Errorf("schema: duplicate attribute type %q", a.Name)
	}
	s.attrs[k] = &a
	return nil
}

// AddClass registers an object class. Auxiliary classes with MUST attributes
// are rejected at definition time.
func (s *Schema) AddClass(c ObjectClass) error {
	k := lower(c.Name)
	if _, dup := s.classes[k]; dup {
		return fmt.Errorf("schema: duplicate object class %q", c.Name)
	}
	if c.Kind == Auxiliary && len(c.Must) > 0 {
		return fmt.Errorf("schema: auxiliary class %q cannot have mandatory attributes", c.Name)
	}
	for _, a := range append(append([]string{}, c.Must...), c.May...) {
		if _, ok := s.attrs[lower(a)]; !ok {
			return fmt.Errorf("schema: class %q references undefined attribute %q", c.Name, a)
		}
	}
	if c.Sup != "" {
		if _, ok := s.classes[lower(c.Sup)]; !ok {
			return fmt.Errorf("schema: class %q has undefined superior %q", c.Name, c.Sup)
		}
	}
	s.classes[k] = &c
	return nil
}

// Attribute looks up an attribute type by name.
func (s *Schema) Attribute(name string) (*AttributeType, bool) {
	a, ok := s.attrs[lower(name)]
	return a, ok
}

// DisplayName returns the schema's canonical spelling for an attribute
// type, or name unchanged when the schema does not define it. The DIT
// normalizes stored attribute names through this, so clients see
// "definityExtension" regardless of how an update spelled it.
func (s *Schema) DisplayName(name string) string {
	if a, ok := s.attrs[lower(name)]; ok {
		return a.Name
	}
	return name
}

// Class looks up an object class by name.
func (s *Schema) Class(name string) (*ObjectClass, bool) {
	c, ok := s.classes[lower(name)]
	return c, ok
}

// classChain returns c and all its superiors, root-last.
func (s *Schema) classChain(name string) []*ObjectClass {
	var out []*ObjectClass
	seen := map[string]bool{}
	for name != "" && !seen[lower(name)] {
		seen[lower(name)] = true
		c, ok := s.classes[lower(name)]
		if !ok {
			break
		}
		out = append(out, c)
		name = c.Sup
	}
	return out
}

// CheckEntry validates an entry's attributes against the schema:
//
//   - every objectClass value must be defined;
//   - at most one structural class chain (plus any auxiliaries);
//   - all MUST attributes of every named class (and superiors) present;
//   - single-valued attributes hold one value;
//   - in Strict mode, every attribute must be allowed by some class's
//     MUST/MAY (or be operational).
//
// Note what CheckEntry deliberately does NOT do: an auxiliary class (e.g.
// definityUser) merely signals the person MAY use the device — the paper's
// anomaly, where objectClass lists a PBX class but no extension field
// exists, is representable and legal.
func (s *Schema) CheckEntry(a *Attrs) error {
	classes := a.Get("objectClass")
	if len(classes) == 0 {
		return &Error{Code: ldap.ResultObjectClassViolation, Msg: "entry has no objectClass"}
	}
	structural := 0
	allowed := map[string]bool{"objectclass": true}
	for _, cn := range classes {
		c, ok := s.Class(cn)
		if !ok {
			return &Error{Code: ldap.ResultObjectClassViolation, Msg: fmt.Sprintf("unknown object class %q", cn)}
		}
		if c.Kind == Structural {
			structural++
		}
		for _, cc := range s.classChain(cn) {
			for _, m := range cc.Must {
				if !a.Has(m) {
					return &Error{Code: ldap.ResultObjectClassViolation,
						Msg: fmt.Sprintf("missing mandatory attribute %q of class %q", m, cc.Name)}
				}
				allowed[lower(m)] = true
			}
			for _, m := range cc.May {
				allowed[lower(m)] = true
			}
		}
	}
	if structural == 0 {
		return &Error{Code: ldap.ResultObjectClassViolation, Msg: "entry has no structural object class"}
	}
	for _, name := range a.Names() {
		at, defined := s.Attribute(name)
		if defined && at.SingleValue && len(a.Get(name)) > 1 {
			return &Error{Code: ldap.ResultConstraintViolation,
				Msg: fmt.Sprintf("attribute %q is single-valued", name)}
		}
		if !s.Strict {
			continue
		}
		if defined && at.Operational {
			continue
		}
		if !allowed[lower(name)] {
			return &Error{Code: ldap.ResultObjectClassViolation,
				Msg: fmt.Sprintf("attribute %q not allowed by object classes %s", name, strings.Join(classes, ","))}
		}
	}
	return nil
}
