package directory

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Incremental, online compaction. A journal grows with every update; a
// million-entry directory restarted after months of traffic would replay
// history instead of state. Compaction rewrites a journal as one "entry"
// record per live entry, making replay linear in live entries.
//
// The old implementation held the whole directory locked for the rewrite —
// a stop-the-world pause proportional to population. The segmented DIT
// compacts ONE SEGMENT AT A TIME, and each segment compaction touches its
// segment lock only long enough to snapshot (DN, *Attrs) headers
// copy-on-write:
//
//	phase 1 (segment lock): quiesce the pipeline, record the journal's
//	        size as the splice offset, collect entry headers. No I/O.
//	phase 2 (no locks):     write the snapshot to <journal>.compact.
//	        Writers proceed normally; their records land after the
//	        recorded offset.
//	phase 3 (journal mutex): splice journal[offset:] — every record that
//	        committed during phase 2 — onto the temp file, fsync, rename
//	        over the journal, reopen. Writers to the segment block only
//	        on the physical append for the splice's duration, which is
//	        proportional to the delta, not the population.
//
// Crash safety: the journal file itself is only replaced by the atomic
// rename, after the temp file is fsynced. A crash before the rename leaves
// the original journal untouched plus a dead .compact temp that attach
// removes; a crash after it leaves the compacted journal, whose replay is
// state-equivalent. Acked writes survive either way.

// compactHook, when set (crash-injection tests), runs at the named stage
// of a segment compaction; returning an error aborts exactly as an I/O
// failure at that point would. Stages: "tmp-written" (snapshot written,
// nothing spliced or renamed), "mid-splice" (delta records copied to the
// temp file, original journal still in place), "pre-rename" (temp file
// fsynced and closed, original journal still the live file — the last
// instant a crash loses only the temp).
var compactHook func(stage string, seg int) error

// CompactionStats is a point-in-time snapshot of background/foreground
// compaction activity.
type CompactionStats struct {
	// Runs counts completed segment compactions; Skips counts auto-compact
	// ticks that found too little growth to bother.
	Runs  uint64
	Skips uint64
	// SplicedBytes totals the live-traffic bytes spliced onto rewritten
	// journals (phase 3 work); SnapshotEntries totals entries written into
	// compacted snapshots (phase 2 work).
	SplicedBytes    uint64
	SnapshotEntries uint64
	// LastNs is the wall time of the most recent segment compaction.
	LastNs int64
}

// CompactionStats reports compaction counters.
func (d *DIT) CompactionStats() CompactionStats {
	return CompactionStats{
		Runs:            d.compactRuns.Load(),
		Skips:           d.compactSkips.Load(),
		SplicedBytes:    d.compactSpliced.Load(),
		SnapshotEntries: d.compactEntries.Load(),
		LastNs:          d.compactLastNs.Load(),
	}
}

// Compact rewrites every segment's journal to hold exactly the live state,
// one segment at a time — the directory stays online throughout (see the
// package comment above; there is no global pause). Serialized with
// background compaction and CloseJournal.
func (d *DIT) Compact() error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	for _, s := range d.segs {
		if err := d.compactSegment(s); err != nil {
			return err
		}
	}
	// Refresh the manifest's entry-count hint — after a full sweep every
	// file is exactly one record per live entry, so the counts are exact.
	if d.journalBase != "" {
		return d.writeManifest(d.journalBase, d.journalFormat)
	}
	return nil
}

// compactSegment rewrites one segment's journal online. Caller holds
// d.compactMu (one compaction at a time).
func (d *DIT) compactSegment(s *segment) error {
	start := time.Now()

	// Phase 1 — under the segment write lock: quiesce this segment's
	// pipeline so every acked record is physically in the file, record the
	// file size as the splice offset, and snapshot entry headers. The
	// attribute values are copy-on-write (an installed *Attrs is never
	// mutated), so the snapshot is a slice of (DN, key, pointer) triples.
	s.mu.Lock()
	j := s.journal
	if j == nil {
		s.mu.Unlock()
		return fmt.Errorf("directory: no journal attached")
	}
	if err := s.commit.flush(); err != nil {
		s.mu.Unlock()
		return err
	}
	var off int64
	off, err := j.size()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	type compactEnt struct {
		searchCand
		stamp Stamp
	}
	snap := make([]compactEnt, 0, len(s.entries))
	for k, n := range s.entries {
		snap = append(snap, compactEnt{searchCand{dn: n.dn, key: k, attrs: n.attrs}, n.stamp})
	}
	// Tombstones survive compaction too (as trailing stamped delete
	// records) — without them a restarted node would forget its deletes
	// and let stale remote upserts resurrect entries.
	tombs := make([]ReplTombstone, 0, len(s.tombstones))
	for k, ts := range s.tombstones {
		tombs = append(tombs, ReplTombstone{Key: k, Stamp: ts})
	}
	s.mu.Unlock()
	sort.Slice(tombs, func(i, j int) bool { return tombs[i].Key < tombs[j].Key })

	// Parents before children within the segment — replay does not need it
	// (relaxed replay is entry-local), but humans reading a journal do.
	sort.Slice(snap, func(i, j int) bool {
		if di, dj := snap[i].dn.Depth(), snap[j].dn.Depth(); di != dj {
			return di < dj
		}
		return snap[i].key < snap[j].key
	})

	// Phase 2 — no locks held: write the snapshot to the temp file.
	tmp := j.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 256<<10)
	// The rewrite is also the format migration path: the snapshot is
	// written in the journal's CONFIGURED format, so attaching a legacy
	// JSON set with Format v2 converts it by simply compacting.
	switch j.Format {
	case FormatJSON:
		enc := json.NewEncoder(w)
		for i := range snap {
			rec := UpdateRecord{Op: "entry", DN: snap[i].dn.String(), Attrs: snap[i].attrs.Map(),
				OriginSeq: snap[i].stamp.Seq, OriginNode: snap[i].stamp.Node}
			if err := enc.Encode(&rec); err != nil {
				f.Close()
				return err
			}
		}
		for _, tb := range tombs {
			rec := UpdateRecord{Op: "delete", DN: tb.Key,
				OriginSeq: tb.Stamp.Seq, OriginNode: tb.Stamp.Node}
			if err := enc.Encode(&rec); err != nil {
				f.Close()
				return err
			}
		}
	default:
		var enc v2Encoder
		var bin []byte
		for i := range snap {
			rec := UpdateRecord{Op: "entry", DN: snap[i].dn.String(), attrsDec: snap[i].attrs, normKey: snap[i].key,
				OriginSeq: snap[i].stamp.Seq, OriginNode: snap[i].stamp.Node}
			bin, err = enc.appendRecord(bin[:0], &rec)
			if err != nil {
				f.Close()
				return err
			}
			if _, err := w.Write(bin); err != nil {
				f.Close()
				return err
			}
		}
		for _, tb := range tombs {
			rec := UpdateRecord{Op: "delete", DN: tb.Key,
				OriginSeq: tb.Stamp.Seq, OriginNode: tb.Stamp.Node}
			bin, err = enc.appendRecord(bin[:0], &rec)
			if err != nil {
				f.Close()
				return err
			}
			if _, err := w.Write(bin); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if compactHook != nil {
		if err := compactHook("tmp-written", s.id); err != nil {
			f.Close()
			return err
		}
	}

	// Phase 3 — under the journal mutex only: append journal[off:] (every
	// record committed since phase 1) to the temp file, then atomically
	// swap it in. Writers keep mutating the segment and staging records;
	// only the committer's physical append waits here.
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		f.Close()
		return fmt.Errorf("directory: journal closed")
	}
	if err := j.w.Flush(); err != nil {
		f.Close()
		return err
	}
	src, err := os.Open(j.path)
	if err != nil {
		f.Close()
		return err
	}
	if _, err := src.Seek(off, io.SeekStart); err != nil {
		src.Close()
		f.Close()
		return err
	}
	spliced, err := io.Copy(w, src)
	src.Close()
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		f.Close()
		return err
	}
	if compactHook != nil {
		if err := compactHook("mid-splice", s.id); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if compactHook != nil {
		if err := compactHook("pre-rename", s.id); err != nil {
			return err
		}
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return err
	}
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = nf
	j.w = bufio.NewWriter(nf)
	if dirf, derr := os.Open(filepath.Dir(j.path)); derr == nil {
		dirf.Sync()
		dirf.Close()
	}
	if st, serr := nf.Stat(); serr == nil {
		s.sizeAfterCompact = st.Size()
	}

	d.compactRuns.Add(1)
	d.compactSpliced.Add(uint64(spliced))
	d.compactEntries.Add(uint64(len(snap)))
	d.compactLastNs.Store(time.Since(start).Nanoseconds())
	return nil
}

// autoCompactMinGrowth is how many bytes a segment's journal must have
// grown since its last compaction before the background sweep bothers
// rewriting it.
const autoCompactMinGrowth = 256 << 10

// StartAutoCompact starts the background compactor: every interval it
// visits one segment (round-robin) and compacts it if its journal grew by
// at least autoCompactMinGrowth since last time. One goroutine, one
// segment per tick — compaction cost is spread evenly instead of arriving
// as one big pause. No-op if already running or interval <= 0.
func (d *DIT) StartAutoCompact(interval time.Duration) {
	if interval <= 0 {
		return
	}
	d.autoMu.Lock()
	defer d.autoMu.Unlock()
	if d.autoStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	d.autoStop, d.autoDone = stop, done
	go d.autoCompactLoop(interval, stop, done)
}

func (d *DIT) autoCompactLoop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		d.compactMu.Lock()
		s := d.segs[d.autoNext%len(d.segs)]
		d.autoNext++
		s.mu.RLock()
		j := s.journal
		s.mu.RUnlock()
		grown := false
		if j != nil {
			if sz, err := j.size(); err == nil && sz-s.sizeAfterCompact >= autoCompactMinGrowth {
				grown = true
			}
		}
		if grown {
			// An I/O failure here poisons the pipeline and surfaces to
			// writers; the sweep itself just moves on.
			if d.compactSegment(s) == nil && d.journalBase != "" {
				_ = d.writeManifest(d.journalBase, d.journalFormat)
			}
		} else {
			d.compactSkips.Add(1)
		}
		d.compactMu.Unlock()
	}
}

// stopAutoCompact stops the background compactor and waits for it to
// finish its current sweep. Idempotent.
func (d *DIT) stopAutoCompact() {
	d.autoMu.Lock()
	stop, done := d.autoStop, d.autoDone
	d.autoStop, d.autoDone = nil, nil
	d.autoMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
