package directory

import (
	"testing"

	"metacomm/internal/dn"
)

// remoteOp is one replicated record as a peer would deliver it.
type remoteOp struct {
	name    string
	image   *Attrs
	stamp   Stamp
	deleted bool
}

// conflictDIT builds a fresh node with the common base tree every conflict
// case starts from.
func conflictDIT(t *testing.T, node uint32) *DIT {
	t.Helper()
	d := New(nil)
	d.SetNodeID(node)
	if err := d.Add(dn.MustParse("o=Lucent"), org("Lucent")); err != nil {
		t.Fatal(err)
	}
	return d
}

// applyOps delivers the ops in the given order, tolerating LWW losers and
// structural skips — exactly what a live consumer link does.
func applyOps(t *testing.T, d *DIT, ops []remoteOp) {
	t.Helper()
	for _, op := range ops {
		if _, err := d.ApplyRemote(dn.MustParse(op.name), op.image, op.stamp, op.deleted); err != nil {
			t.Fatalf("ApplyRemote(%s, %v): %v", op.name, op.stamp, err)
		}
	}
}

// bothOrders asserts the op sequence converges to the same fingerprint no
// matter which delivery order a node sees — the heart of the LWW argument:
// per-entry resolution is a join, so apply order cannot matter.
func bothOrders(t *testing.T, ops []remoteOp) (fwd *DIT) {
	t.Helper()
	// Same node id on both: the locally-added suffix then carries the same
	// stamp, so any fingerprint difference is the delivery order's doing.
	a := conflictDIT(t, 10)
	b := conflictDIT(t, 10)
	applyOps(t, a, ops)
	rev := make([]remoteOp, len(ops))
	for i, op := range ops {
		rev[len(ops)-1-i] = op
	}
	applyOps(t, b, rev)
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("delivery order changed the tree:\n forward %s\n reverse %s", fa, fb)
	}
	return a
}

func TestConflictModifyModify(t *testing.T) {
	// Two nodes modify the same entry concurrently: same seq, the node id
	// breaks the tie, and the higher stamp's whole image wins.
	ops := []remoteOp{
		{"cn=X,o=Lucent", person("X"), Stamp{Seq: 4, Node: 1}, false},
		{"cn=X,o=Lucent", AttrsFrom(map[string][]string{
			"objectClass": {"person"}, "cn": {"X"}, "roomNumber": {"R1"},
		}), Stamp{Seq: 9, Node: 1}, false},
		{"cn=X,o=Lucent", AttrsFrom(map[string][]string{
			"objectClass": {"person"}, "cn": {"X"}, "roomNumber": {"R2"},
		}), Stamp{Seq: 9, Node: 2}, false},
	}
	d := bothOrders(t, ops)
	e, err := d.Get(dn.MustParse("cn=X,o=Lucent"))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Attrs.First("roomNumber"); got != "R2" {
		t.Fatalf("winner roomNumber = %q, want R2 (stamp 9/2 > 9/1)", got)
	}
}

func TestConflictModifyDelete(t *testing.T) {
	// Delete stamped after the modify: the tombstone wins in either order —
	// a late-arriving older modify must NOT resurrect the entry.
	ops := []remoteOp{
		{"cn=Y,o=Lucent", person("Y"), Stamp{Seq: 3, Node: 1}, false},
		{"cn=Y,o=Lucent", AttrsFrom(map[string][]string{
			"objectClass": {"person"}, "cn": {"Y"}, "roomNumber": {"R9"},
		}), Stamp{Seq: 6, Node: 1}, false},
		{"cn=Y,o=Lucent", nil, Stamp{Seq: 7, Node: 2}, true},
	}
	d := bothOrders(t, ops)
	if _, err := d.Get(dn.MustParse("cn=Y,o=Lucent")); err == nil {
		t.Fatal("entry survived a newer delete")
	}

	// Modify stamped after the delete: the entry lives with the modify's
	// image in either order.
	ops = []remoteOp{
		{"cn=Z,o=Lucent", person("Z"), Stamp{Seq: 3, Node: 1}, false},
		{"cn=Z,o=Lucent", nil, Stamp{Seq: 5, Node: 2}, true},
		{"cn=Z,o=Lucent", AttrsFrom(map[string][]string{
			"objectClass": {"person"}, "cn": {"Z"}, "roomNumber": {"R5"},
		}), Stamp{Seq: 8, Node: 1}, false},
	}
	d = bothOrders(t, ops)
	e, err := d.Get(dn.MustParse("cn=Z,o=Lucent"))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Attrs.First("roomNumber"); got != "R5" {
		t.Fatalf("revived entry roomNumber = %q, want R5", got)
	}
}

func TestConflictAddAdd(t *testing.T) {
	// Both nodes create the same DN with different images: one image wins
	// everywhere, never a merge of the two.
	ops := []remoteOp{
		{"cn=W,o=Lucent", AttrsFrom(map[string][]string{
			"objectClass": {"person"}, "cn": {"W"}, "description": {"from node 1"},
		}), Stamp{Seq: 2, Node: 1}, false},
		{"cn=W,o=Lucent", AttrsFrom(map[string][]string{
			"objectClass": {"person"}, "cn": {"W"}, "description": {"from node 2"},
		}), Stamp{Seq: 2, Node: 2}, false},
	}
	d := bothOrders(t, ops)
	e, err := d.Get(dn.MustParse("cn=W,o=Lucent"))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Attrs.First("description"); got != "from node 2" {
		t.Fatalf("winner description = %q, want node 2's image", got)
	}
	if vals := e.Attrs.Get("description"); len(vals) != 1 {
		t.Fatalf("images merged: description = %v", vals)
	}
}

func TestConflictDuplicateDeliveryIdempotent(t *testing.T) {
	// Re-delivering every record — whole-stream duplication, the worst case
	// of a resumed cursor that was behind the truth — changes nothing.
	ops := []remoteOp{
		{"cn=D,o=Lucent", person("D"), Stamp{Seq: 2, Node: 1}, false},
		{"cn=D,o=Lucent", AttrsFrom(map[string][]string{
			"objectClass": {"person"}, "cn": {"D"}, "roomNumber": {"R1"},
		}), Stamp{Seq: 4, Node: 1}, false},
		{"cn=E,o=Lucent", person("E"), Stamp{Seq: 5, Node: 2}, false},
		{"cn=E,o=Lucent", nil, Stamp{Seq: 6, Node: 1}, true},
	}
	d := conflictDIT(t, 10)
	applyOps(t, d, ops)
	before := d.Fingerprint()

	// Duplicate the full stream, then a torn replay: just the first half
	// again, as if a link died mid-frame-batch and resumed early.
	applyOps(t, d, ops)
	applyOps(t, d, ops[:2])
	if after := d.Fingerprint(); after != before {
		t.Fatalf("duplicate delivery changed the tree: %s -> %s", before, after)
	}

	// And every duplicate must report Applied=false (no device fan-out for
	// records that changed nothing).
	for _, op := range ops {
		res, err := d.ApplyRemote(dn.MustParse(op.name), op.image, op.stamp, op.deleted)
		if err != nil {
			t.Fatal(err)
		}
		if res.Applied {
			t.Fatalf("duplicate of %s/%v reported Applied", op.name, op.stamp)
		}
	}
}

func TestConflictStructuralSkip(t *testing.T) {
	// A child add whose parent never materialized here (its create lost a
	// race with a parent delete) is a structural conflict: reported as an
	// error the link counts and skips, not a crash and not a partial apply.
	d := conflictDIT(t, 10)
	_, err := d.ApplyRemote(dn.MustParse("cn=Kid,ou=Gone,o=Lucent"),
		person("Kid"), Stamp{Seq: 3, Node: 2}, false)
	if err == nil {
		t.Fatal("orphan child apply succeeded")
	}
	before := d.Fingerprint()
	if after := d.Fingerprint(); after != before {
		t.Fatalf("failed apply mutated the tree")
	}
}
