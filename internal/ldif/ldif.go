// Package ldif reads and writes the LDAP Data Interchange Format (RFC
// 2849 content records): the standard way to move directory data between
// servers, and the format MetaComm's tools use for bulk import/export and
// backups.
//
// Supported: comments, line folding (continuation lines starting with a
// space), base64-encoded values ("attr:: ..."), multiple entries separated
// by blank lines, and an optional leading "version: 1". Change records
// ("changetype:") are out of scope — MetaComm applies changes through the
// LDAP protocol, not offline.
package ldif

import (
	"bufio"
	"encoding/base64"
	"fmt"
	"io"
	"sort"
	"strings"

	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
)

// Entry is one LDIF content record.
type Entry struct {
	DN    string
	Attrs []ldap.Attribute
}

// Parse reads all entries from LDIF text.
func Parse(r io.Reader) ([]*Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	// Unfold: gather logical lines (continuations start with one space).
	var logical []string
	lineno := 0
	flushed := func(s string) {
		if s != "" {
			logical = append(logical, s)
		}
	}
	var cur strings.Builder
	curOpen := false
	for sc.Scan() {
		lineno++
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, " ") && curOpen:
			cur.WriteString(line[1:])
		case line == "":
			if curOpen {
				flushed(cur.String())
				cur.Reset()
				curOpen = false
			}
			logical = append(logical, "") // record separator
		default:
			if curOpen {
				flushed(cur.String())
				cur.Reset()
			}
			cur.WriteString(line)
			curOpen = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if curOpen {
		flushed(cur.String())
	}

	var entries []*Entry
	var e *Entry
	finish := func() {
		if e != nil && e.DN != "" {
			entries = append(entries, e)
		}
		e = nil
	}
	for _, line := range logical {
		if line == "" {
			finish()
			continue
		}
		if strings.HasPrefix(strings.ToLower(line), "version:") {
			continue
		}
		attr, value, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		if strings.EqualFold(attr, "dn") {
			finish()
			e = &Entry{DN: value}
			continue
		}
		if e == nil {
			return nil, fmt.Errorf("ldif: attribute %q before any dn:", attr)
		}
		if strings.EqualFold(attr, "changetype") {
			return nil, fmt.Errorf("ldif: change records not supported (entry %q)", e.DN)
		}
		addValue(e, attr, value)
	}
	finish()
	return entries, nil
}

func parseLine(line string) (attr, value string, err error) {
	i := strings.IndexByte(line, ':')
	if i <= 0 {
		return "", "", fmt.Errorf("ldif: malformed line %q", line)
	}
	attr = line[:i]
	rest := line[i+1:]
	if strings.HasPrefix(rest, ":") {
		// base64 value
		raw := strings.TrimLeft(rest[1:], " ")
		b, err := base64.StdEncoding.DecodeString(raw)
		if err != nil {
			return "", "", fmt.Errorf("ldif: bad base64 for %s: %v", attr, err)
		}
		return attr, string(b), nil
	}
	if strings.HasPrefix(rest, "<") {
		return "", "", fmt.Errorf("ldif: URL values not supported (%s)", attr)
	}
	return attr, strings.TrimLeft(rest, " "), nil
}

func addValue(e *Entry, attr, value string) {
	for i := range e.Attrs {
		if strings.EqualFold(e.Attrs[i].Type, attr) {
			e.Attrs[i].Values = append(e.Attrs[i].Values, value)
			return
		}
	}
	e.Attrs = append(e.Attrs, ldap.Attribute{Type: attr, Values: []string{value}})
}

// needsBase64 reports whether an LDIF value must be base64-encoded.
func needsBase64(v string) bool {
	if v == "" {
		return false
	}
	switch v[0] {
	case ' ', ':', '<':
		return true
	}
	if strings.HasSuffix(v, " ") {
		return true
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c == '\n' || c == '\r' || c == 0 || c >= 0x80 {
			return true
		}
	}
	return false
}

// writeValue emits one attr line, folding at 76 characters.
func writeValue(w *bufio.Writer, attr, value string) error {
	var line string
	if needsBase64(value) {
		line = attr + ":: " + base64.StdEncoding.EncodeToString([]byte(value))
	} else {
		line = attr + ": " + value
	}
	const width = 76
	for len(line) > width {
		if _, err := w.WriteString(line[:width] + "\n"); err != nil {
			return err
		}
		line = " " + line[width:]
	}
	_, err := w.WriteString(line + "\n")
	return err
}

// Marshal writes entries as LDIF.
func Marshal(w io.Writer, entries []*Entry) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("version: 1\n"); err != nil {
		return err
	}
	for _, e := range entries {
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
		if err := writeValue(bw, "dn", e.DN); err != nil {
			return err
		}
		for _, a := range orderedAttrs(e.Attrs) {
			for _, v := range a.Values {
				if err := writeValue(bw, a.Type, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// orderedAttrs puts objectClass first (LDIF convention), the rest sorted.
func orderedAttrs(attrs []ldap.Attribute) []ldap.Attribute {
	out := append([]ldap.Attribute(nil), attrs...)
	sort.SliceStable(out, func(i, j int) bool {
		oi := strings.EqualFold(out[i].Type, "objectClass")
		oj := strings.EqualFold(out[j].Type, "objectClass")
		if oi != oj {
			return oi
		}
		return strings.ToLower(out[i].Type) < strings.ToLower(out[j].Type)
	})
	return out
}

// FromSearchEntries converts client search results into LDIF entries.
func FromSearchEntries(entries []*ldapclient.Entry) []*Entry {
	out := make([]*Entry, 0, len(entries))
	for _, e := range entries {
		out = append(out, &Entry{DN: e.DN, Attrs: e.Attributes})
	}
	return out
}
