package ldif

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"metacomm/internal/ldap"
)

const sample = `version: 1
# the paper's Figure 2 tree, as LDIF

dn: o=Lucent
objectClass: organization
o: Lucent

dn: cn=John Doe,o=Marketing,o=Lucent
objectClass: mcPerson
objectClass: definityUser
cn: John Doe
sn: Doe
telephoneNumber: +1 908 582 9000
definityExtension: 2-9000
`

func TestParseSample(t *testing.T) {
	entries, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[1]
	if e.DN != "cn=John Doe,o=Marketing,o=Lucent" {
		t.Errorf("dn = %q", e.DN)
	}
	var classes []string
	for _, a := range e.Attrs {
		if strings.EqualFold(a.Type, "objectClass") {
			classes = a.Values
		}
	}
	if len(classes) != 2 || classes[1] != "definityUser" {
		t.Errorf("classes = %v", classes)
	}
}

func TestParseFoldingAndBase64(t *testing.T) {
	in := "dn: cn=x\ncn: x\ndescription: part one\n  and part two\nsn:: RMOpY2hpcmF0w6k=\n"
	entries, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	e := entries[0]
	if got := attrValue(e, "description"); got != "part one and part two" {
		t.Errorf("description = %q", got)
	}
	if got := attrValue(e, "sn"); got != "Déchiraté" {
		t.Errorf("sn = %q", got)
	}
}

func attrValue(e *Entry, name string) string {
	for _, a := range e.Attrs {
		if strings.EqualFold(a.Type, name) && len(a.Values) > 0 {
			return a.Values[0]
		}
	}
	return ""
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"attr before dn": "cn: x\n",
		"malformed":      "dn: cn=x\nnocolonhere\n",
		"bad base64":     "dn: cn=x\nsn:: !!!\n",
		"url value":      "dn: cn=x\njpegPhoto:< file:///x\n",
		"changetype":     "dn: cn=x\nchangetype: modify\n",
	}
	for name, in := range bad {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	entries := []*Entry{
		{DN: "o=Lucent", Attrs: []ldap.Attribute{
			{Type: "objectClass", Values: []string{"organization"}},
			{Type: "o", Values: []string{"Lucent"}},
		}},
		{DN: "cn=Weird,o=Lucent", Attrs: []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson"}},
			{Type: "cn", Values: []string{"Weird"}},
			{Type: "sn", Values: []string{" leading space"}},
			{Type: "description", Values: []string{"multi\nline", "café ☕"}},
			{Type: "note", Values: []string{strings.Repeat("long ", 60)}},
		}},
	}
	var buf bytes.Buffer
	if err := Marshal(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if len(back) != 2 {
		t.Fatalf("entries = %d", len(back))
	}
	e := back[1]
	if attrValue(e, "sn") != " leading space" {
		t.Errorf("sn = %q", attrValue(e, "sn"))
	}
	var desc []string
	for _, a := range e.Attrs {
		if strings.EqualFold(a.Type, "description") {
			desc = a.Values
		}
	}
	if len(desc) != 2 || desc[0] != "multi\nline" || desc[1] != "café ☕" {
		t.Errorf("description = %q", desc)
	}
	if got := attrValue(e, "note"); got != strings.Repeat("long ", 60) {
		t.Errorf("folded value corrupted: %q", got)
	}
}

func TestMarshalPutsObjectClassFirst(t *testing.T) {
	entries := []*Entry{{DN: "cn=x", Attrs: []ldap.Attribute{
		{Type: "sn", Values: []string{"x"}},
		{Type: "objectClass", Values: []string{"person"}},
	}}}
	var buf bytes.Buffer
	if err := Marshal(&buf, entries); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// version, blank record separator, dn, then objectClass first.
	if lines[3] != "objectClass: person" {
		t.Errorf("lines = %q", lines)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vals []string) bool {
		clean := make([]string, 0, len(vals))
		for _, v := range vals {
			if v != "" && !strings.ContainsAny(v, "\x00") {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		entries := []*Entry{{DN: "cn=prop", Attrs: []ldap.Attribute{
			{Type: "description", Values: clean},
		}}}
		var buf bytes.Buffer
		if err := Marshal(&buf, entries); err != nil {
			return false
		}
		back, err := Parse(&buf)
		if err != nil || len(back) != 1 {
			return false
		}
		var got []string
		for _, a := range back[0].Attrs {
			if strings.EqualFold(a.Type, "description") {
				got = a.Values
			}
		}
		if len(got) != len(clean) {
			return false
		}
		for i := range got {
			if got[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
