package replica_test

import (
	"fmt"
	"testing"
	"time"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/mcschema"
	"metacomm/internal/replica"
)

func primaryDIT(t *testing.T) *directory.DIT {
	t.Helper()
	d := directory.New(mcschema.New())
	attrs := directory.NewAttrs()
	attrs.Put("objectClass", "organization")
	if err := d.Add(dn.MustParse("o=Lucent"), attrs); err != nil {
		t.Fatal(err)
	}
	return d
}

func addPerson(t *testing.T, d *directory.DIT, name string) {
	t.Helper()
	err := d.Add(dn.MustParse(fmt.Sprintf("cn=%s,o=Lucent", name)),
		directory.AttrsFrom(map[string][]string{
			"objectClass": {"mcPerson"},
			"cn":          {name},
			"sn":          {name},
		}))
	if err != nil {
		t.Fatal(err)
	}
}

func startReplication(t *testing.T, d *directory.DIT) *replica.Replica {
	t.Helper()
	pub := replica.NewPublisher(d)
	addr, err := pub.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pub.Close)
	r := replica.New(addr.String(), mcschema.New())
	r.Start()
	t.Cleanup(r.Stop)
	return r
}

// waitSeq waits until the replica reflects at least the primary's seq.
func waitSeq(t *testing.T, r *replica.Replica, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.AppliedSeq() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replica stuck at seq %d, want >= %d", r.AppliedSeq(), want)
}

func sameTrees(t *testing.T, a, b *directory.DIT) {
	t.Helper()
	ea, eb := a.All(), b.All()
	if len(ea) != len(eb) {
		t.Fatalf("entry counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if !ea[i].DN.Equal(eb[i].DN) || !ea[i].Attrs.Equal(eb[i].Attrs) {
			t.Fatalf("entry %d differs: %s %v vs %s %v", i,
				ea[i].DN, ea[i].Attrs.Map(), eb[i].DN, eb[i].Attrs.Map())
		}
	}
}

func TestReplicaReceivesSnapshotAndLiveChanges(t *testing.T) {
	d := primaryDIT(t)
	addPerson(t, d, "Before Snapshot")
	r := startReplication(t, d)
	waitSeq(t, r, d.Seq())
	sameTrees(t, d, r.DIT)

	// Live changes flow.
	addPerson(t, d, "After Snapshot")
	if err := d.Modify(dn.MustParse("cn=After Snapshot,o=Lucent"), []ldap.Change{
		{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"R1"}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.ModifyDN(dn.MustParse("cn=Before Snapshot,o=Lucent"),
		dn.RDN{{Attr: "cn", Value: "Renamed"}}, true); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(dn.MustParse("cn=Renamed,o=Lucent")); err != nil {
		t.Fatal(err)
	}
	waitSeq(t, r, d.Seq())
	sameTrees(t, d, r.DIT)
}

func TestReplicaResumesAfterPublisherRestart(t *testing.T) {
	d := primaryDIT(t)
	pub := replica.NewPublisher(d)
	addr, err := pub.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := replica.New(addr.String(), mcschema.New())
	r.Start()
	t.Cleanup(r.Stop)
	waitSeq(t, r, d.Seq())

	// Publisher dies; primary keeps changing; publisher returns on the
	// same port. The replica's cursor is still inside the changelog tail,
	// so the reconnect RESUMES — it replays only the outage's records,
	// never a full snapshot.
	pub.Close()
	addPerson(t, d, "During Outage")
	pub2 := replica.NewPublisher(d)
	if _, err := pub2.Start(addr.String()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pub2.Close)

	waitSeq(t, r, d.Seq())
	sameTrees(t, d, r.DIT)
	if r.Resumes() < 2 {
		t.Errorf("resumes = %d, want >= 2 (initial + after restart)", r.Resumes())
	}
	if r.Resyncs() != 0 {
		t.Errorf("resyncs = %d, want 0 (tail covered the cursor)", r.Resyncs())
	}
}

func TestReplicaSnapshotFallbackWhenTailEvicted(t *testing.T) {
	d := primaryDIT(t)
	// A two-record tail: by the time the replica first connects (cursor 0)
	// the tail's coverage starts far past 0, forcing the snapshot path.
	d.SetChangeTail(2)
	for i := 0; i < 8; i++ {
		addPerson(t, d, fmt.Sprintf("Evict %d", i))
	}
	r := startReplication(t, d)
	waitSeq(t, r, d.Seq())
	sameTrees(t, d, r.DIT)
	if r.Resyncs() != 1 {
		t.Errorf("resyncs = %d, want 1 (tail evicted past cursor 0)", r.Resyncs())
	}
	if r.Resumes() != 0 {
		t.Errorf("resumes = %d, want 0", r.Resumes())
	}

	// Live changes still flow after a snapshot catch-up, and a reconnect
	// NOW resumes: the cursor sits at the tail's edge.
	addPerson(t, d, "After Snapshot")
	waitSeq(t, r, d.Seq())
	sameTrees(t, d, r.DIT)
}

func TestReplicaServesReadsViaLDAPHandler(t *testing.T) {
	d := primaryDIT(t)
	addPerson(t, d, "Read Me")
	r := startReplication(t, d)
	waitSeq(t, r, d.Seq())

	// The replica's DIT is a plain directory: searchable directly.
	entries, err := r.DIT.Search(dn.MustParse("o=Lucent"), ldap.ScopeWholeSubtree,
		ldap.Eq("cn", "Read Me"), 0)
	if err != nil || len(entries) != 1 {
		t.Fatalf("replica search = %d, %v", len(entries), err)
	}
}

func TestReplicaConvergesUnderLoad(t *testing.T) {
	d := primaryDIT(t)
	r := startReplication(t, d)
	for i := 0; i < 50; i++ {
		addPerson(t, d, fmt.Sprintf("Load %02d", i))
	}
	name := dn.MustParse("cn=Load 00,o=Lucent")
	for i := 0; i < 100; i++ {
		if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("R%d", i)}}}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 25; i++ {
		if err := d.Delete(dn.MustParse(fmt.Sprintf("cn=Load %02d,o=Lucent", 25+i))); err != nil {
			t.Fatal(err)
		}
	}
	waitSeq(t, r, d.Seq())
	sameTrees(t, d, r.DIT)
}

func TestSnapshotAndSubscribeOverflowClosesChannel(t *testing.T) {
	d := primaryDIT(t)
	_, changes, cancel := d.SnapshotAndSubscribe(1)
	defer cancel()
	// Two commits with a 1-slot buffer and no consumer: overflow.
	addPerson(t, d, "A")
	addPerson(t, d, "B")
	// Drain: the channel must be closed after the overflow.
	closed := false
	for i := 0; i < 3; i++ {
		if _, ok := <-changes; !ok {
			closed = true
			break
		}
	}
	if !closed {
		t.Fatal("overflowed subscription not closed")
	}
	// Further commits must not panic (subscriber was removed).
	addPerson(t, d, "C")
}

// BenchmarkReplicationLag measures primary-commit to replica-visible time.
func BenchmarkReplicationLag(b *testing.B) {
	d := directory.New(mcschema.New())
	attrs := directory.NewAttrs()
	attrs.Put("objectClass", "organization")
	if err := d.Add(dn.MustParse("o=Lucent"), attrs); err != nil {
		b.Fatal(err)
	}
	pub := replica.NewPublisher(d)
	addr, err := pub.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer pub.Close()
	r := replica.New(addr.String(), mcschema.New())
	r.Start()
	defer r.Stop()
	if err := d.Add(dn.MustParse("cn=Lag,o=Lucent"), directory.AttrsFrom(map[string][]string{
		"objectClass": {"mcPerson"}, "cn": {"Lag"}, "sn": {"Lag"}})); err != nil {
		b.Fatal(err)
	}
	name := dn.MustParse("cn=Lag,o=Lucent")
	for r.AppliedSeq() < d.Seq() {
		time.Sleep(time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("R%d", i)}}}}); err != nil {
			b.Fatal(err)
		}
		target := d.Seq()
		for r.AppliedSeq() < target {
			// Sleep-poll: on small machines a busy spin would starve the
			// replication goroutines and measure the scheduler instead.
			time.Sleep(20 * time.Microsecond)
		}
	}
}
