// Package replica implements single-master replication for the MetaComm
// directory. The paper situates LDAP's availability story in replication
// ("LDAP servers make extensive use of replication to make directory
// information highly available", §2); this package supplies it:
//
//   - a Publisher on the primary streams a consistent snapshot followed by
//     the live changelog to each consumer, over newline-delimited JSON;
//   - a Replica maintains a local DIT from that stream and serves reads
//     (wrap it in an ldapserver.DITHandler); it reconnects and fully
//     resynchronizes after disconnection or when it falls too far behind —
//     which is exactly LDAP's relaxed write-write consistency: replicas
//     converge, they are never transactionally current.
//
// Replay on the replica is convergent rather than strict: an add that finds
// the entry present becomes a replace, a delete of a missing entry is a
// no-op. A replica that applies a suffix of the stream twice therefore ends
// in the same state.
package replica

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

// wire message types.
const (
	msgSnapshotBegin = "snapshot-begin"
	msgSnapshotEntry = "entry"
	msgSnapshotEnd   = "snapshot-end"
	msgChange        = "change"
)

// frame is one wire message.
type frame struct {
	Type string `json:"type"`
	// Seq: for snapshot-end, the commit sequence the snapshot reflects;
	// for change, the record's commit sequence.
	Seq    uint64                  `json:"seq,omitempty"`
	Record *directory.UpdateRecord `json:"record,omitempty"`
	// Count: snapshot-end carries the number of entries sent.
	Count int `json:"count,omitempty"`
}

// Publisher serves the replication stream from a primary DIT.
type Publisher struct {
	DIT *directory.DIT

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// NewPublisher wraps a primary DIT.
func NewPublisher(d *directory.DIT) *Publisher {
	return &Publisher{DIT: d, conns: map[net.Conn]bool{}}
}

// Start listens for consumers on addr.
func (p *Publisher) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.listener = l
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				c.Close()
				return
			}
			p.conns[c] = true
			p.mu.Unlock()
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.serve(c)
			}()
		}
	}()
	return l.Addr(), nil
}

// Close stops the publisher and drops all consumers.
func (p *Publisher) Close() {
	p.mu.Lock()
	p.closed = true
	if p.listener != nil {
		p.listener.Close()
	}
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// serve ships snapshot + live changes to one consumer until it drops.
func (p *Publisher) serve(nc net.Conn) {
	defer func() {
		nc.Close()
		p.mu.Lock()
		delete(p.conns, nc)
		p.mu.Unlock()
	}()
	w := bufio.NewWriter(nc)
	enc := json.NewEncoder(w)
	send := func(f frame) bool {
		if err := enc.Encode(f); err != nil {
			return false
		}
		return w.Flush() == nil
	}

	snapshot, changes, cancel := p.DIT.SnapshotAndSubscribe(4096)
	defer cancel()

	if !send(frame{Type: msgSnapshotBegin}) {
		return
	}
	for _, e := range snapshot {
		rec := &directory.UpdateRecord{Op: "entry", DN: e.DN.String(), Attrs: e.Attrs.Map()}
		if !send(frame{Type: msgSnapshotEntry, Record: rec}) {
			return
		}
	}
	if !send(frame{Type: msgSnapshotEnd, Seq: p.DIT.Seq(), Count: len(snapshot)}) {
		return
	}

	// Unblock on consumer disconnect: a reader that fails closes nc.
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		for {
			if _, err := nc.Read(buf); err != nil {
				return
			}
		}
	}()
	for {
		select {
		case rec, ok := <-changes:
			if !ok {
				return // overflow: consumer must reconnect and resync
			}
			if !send(frame{Type: msgChange, Seq: rec.Seq, Record: &rec}) {
				return
			}
		case <-done:
			return
		}
	}
}

// Replica maintains a read-only copy of the primary.
type Replica struct {
	// DIT is the replica's local tree; serve reads from it.
	DIT *directory.DIT

	addr string

	applied   atomic.Uint64 // primary seq reflected locally
	resyncs   atomic.Uint64
	connected atomic.Bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a replica of the publisher at addr. schema should match the
// primary's (nil for none). Call Start to begin replicating.
func New(addr string, schema *directory.Schema) *Replica {
	return &Replica{
		DIT:  directory.New(schema),
		addr: addr,
		stop: make(chan struct{}),
	}
}

// AppliedSeq returns the primary commit sequence the replica reflects.
func (r *Replica) AppliedSeq() uint64 { return r.applied.Load() }

// Resyncs counts full resynchronizations (initial sync included).
func (r *Replica) Resyncs() uint64 { return r.resyncs.Load() }

// Connected reports whether the replication stream is live.
func (r *Replica) Connected() bool { return r.connected.Load() }

// Start begins replicating in the background, reconnecting with a small
// backoff until Stop.
func (r *Replica) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			select {
			case <-r.stop:
				return
			default:
			}
			if err := r.syncOnce(); err != nil {
				select {
				case <-r.stop:
					return
				case <-time.After(100 * time.Millisecond):
				}
			}
		}
	}()
}

// Stop halts replication.
func (r *Replica) Stop() {
	close(r.stop)
	r.wg.Wait()
}

// syncOnce connects, loads the snapshot, applies live changes until the
// stream breaks.
func (r *Replica) syncOnce() error {
	nc, err := net.DialTimeout("tcp", r.addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	// Drop the connection promptly when stopping; connDone reaps the
	// watcher when this sync attempt ends for any other reason.
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		select {
		case <-r.stop:
			nc.Close()
		case <-connDone:
		}
	}()
	dec := json.NewDecoder(bufio.NewReader(nc))

	// Each frame decodes into a FRESH struct: json.Decoder merges into
	// existing pointers/maps, which would silently fuse records.
	var f frame
	if err := dec.Decode(&f); err != nil || f.Type != msgSnapshotBegin {
		return fmt.Errorf("replica: bad stream start: %v %q", err, f.Type)
	}
	var snapshot []*directory.UpdateRecord
	for {
		f = frame{}
		if err := dec.Decode(&f); err != nil {
			return err
		}
		if f.Type == msgSnapshotEnd {
			break
		}
		if f.Type != msgSnapshotEntry || f.Record == nil {
			return fmt.Errorf("replica: unexpected frame %q in snapshot", f.Type)
		}
		snapshot = append(snapshot, f.Record)
	}
	if err := r.loadSnapshot(snapshot); err != nil {
		return err
	}
	r.applied.Store(f.Seq)
	r.resyncs.Add(1)
	r.connected.Store(true)
	defer r.connected.Store(false)

	for {
		f = frame{}
		if err := dec.Decode(&f); err != nil {
			return err
		}
		if f.Type != msgChange || f.Record == nil {
			return fmt.Errorf("replica: unexpected frame %q in stream", f.Type)
		}
		if err := r.applyChange(*f.Record); err != nil {
			return err
		}
		r.applied.Store(f.Seq)
	}
}

// loadSnapshot converges the local tree to exactly the snapshot contents.
func (r *Replica) loadSnapshot(entries []*directory.UpdateRecord) error {
	want := map[string]bool{}
	for _, rec := range entries {
		name, err := dn.Parse(rec.DN)
		if err != nil {
			return err
		}
		want[name.Normalize()] = true
		if err := r.upsert(name, rec.Attrs); err != nil {
			return err
		}
	}
	// Remove local entries the primary no longer has. Collect the stale
	// DNs by streaming the tree (no population-sized copy), then delete
	// deepest-first so children always go before their parents.
	var stale []dn.DN
	r.DIT.Range(func(e directory.Entry) bool {
		if !want[e.DN.Normalize()] {
			stale = append(stale, e.DN)
		}
		return true
	})
	sort.Slice(stale, func(i, j int) bool { return stale[i].Depth() > stale[j].Depth() })
	for _, name := range stale {
		if err := r.DIT.Delete(name); err != nil {
			return err
		}
	}
	return nil
}

// upsert adds or converges one entry.
func (r *Replica) upsert(name dn.DN, attrs map[string][]string) error {
	err := r.DIT.Add(name, directory.AttrsFrom(attrs))
	if err == nil || directory.CodeOf(err) != ldap.ResultEntryAlreadyExists {
		return err
	}
	// Converge the existing entry: replace every attribute of the new
	// image, drop the rest (RDN attributes excepted).
	cur, err := r.DIT.Get(name)
	if err != nil {
		return err
	}
	var changes []ldap.Change
	seen := map[string]bool{}
	for a, vs := range attrs {
		seen[lowerASCII(a)] = true
		changes = append(changes, ldap.Change{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: a, Values: vs}})
	}
	for _, a := range cur.Attrs.Names() {
		if seen[lowerASCII(a)] || name.FirstValue(a) != "" {
			continue
		}
		changes = append(changes, ldap.Change{Op: ldap.ModDelete,
			Attribute: ldap.Attribute{Type: a}})
	}
	if len(changes) == 0 {
		return nil
	}
	return r.DIT.Modify(name, changes)
}

// applyChange replays one record convergently.
func (r *Replica) applyChange(rec directory.UpdateRecord) error {
	name, err := dn.Parse(rec.DN)
	if err != nil {
		return err
	}
	switch rec.Op {
	case "add", "entry":
		return r.upsert(name, rec.Attrs)
	case "delete":
		err := r.DIT.Delete(name)
		if directory.CodeOf(err) == ldap.ResultNoSuchObject {
			return nil
		}
		return err
	case "modify":
		changes := make([]ldap.Change, 0, len(rec.Changes))
		for _, c := range rec.Changes {
			lc, err := toLDAPChange(c)
			if err != nil {
				return err
			}
			changes = append(changes, lc)
		}
		err := r.DIT.Modify(name, changes)
		switch directory.CodeOf(err) {
		case ldap.ResultSuccess:
			return nil
		case ldap.ResultNoSuchObject, ldap.ResultNoSuchAttribute, ldap.ResultAttributeOrValueExists:
			// Convergent replay tolerates re-applied suffixes.
			return nil
		}
		return err
	case "modifydn":
		newRDN, err := dn.Parse(rec.NewRDN)
		if err != nil || newRDN.Depth() != 1 {
			return fmt.Errorf("replica: bad newRDN %q", rec.NewRDN)
		}
		err = r.DIT.ModifyDN(name, newRDN.RDN(), rec.DeleteOldRDN)
		switch directory.CodeOf(err) {
		case ldap.ResultSuccess, ldap.ResultNoSuchObject, ldap.ResultEntryAlreadyExists:
			return nil
		}
		return err
	}
	return errors.New("replica: unknown record op " + rec.Op)
}

func toLDAPChange(c directory.UpdateChange) (ldap.Change, error) {
	var op ldap.ModOp
	switch c.Op {
	case "add":
		op = ldap.ModAdd
	case "delete":
		op = ldap.ModDelete
	case "replace":
		op = ldap.ModReplace
	default:
		return ldap.Change{}, fmt.Errorf("replica: unknown change op %q", c.Op)
	}
	return ldap.Change{Op: op, Attribute: ldap.Attribute{Type: c.Attr, Values: c.Values}}, nil
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
