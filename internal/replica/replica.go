// Package replica implements replication for the MetaComm directory. The
// paper situates LDAP's availability story in replication ("LDAP servers
// make extensive use of replication to make directory information highly
// available", §2); this package supplies it in multi-master form:
//
//   - a Publisher streams committed updates to any consumer over
//     newline-delimited JSON. A consumer announces itself with a hello
//     frame carrying its node id and changelog cursor; the publisher
//     either RESUMES it (replaying the tail of records after the cursor)
//     or, when the in-memory tail no longer covers the cursor, ships a
//     full exact-cut snapshot — entries with their origin stamps plus
//     tombstones — followed by the live stream. Either way no writer on
//     the publisher is ever quiesced.
//   - a link (the consumer half) applies every received record through
//     DIT.ApplyRemote: per-entry last-writer-wins on the (Lamport seq,
//     node id) origin stamp, so records may arrive in any order, from any
//     number of peers, any number of times, and every node converges to
//     the same tree.
//   - a Replicator (replicator.go) composes one Publisher with N links
//     into a multi-master node: writes accepted anywhere, exchanged
//     peer-to-peer, durable cursors so reconnects resume instead of
//     re-snapshotting.
//   - a Replica is the read-only special case — one link feeding a local
//     tree that serves reads (wrap it in an ldapserver.DITHandler).
//
// Everything on the wire is a full post-image, never a delta: re-applying
// any suffix of the stream is idempotent (losing/duplicate stamps are
// silent no-ops), which is what makes the cursor protocol safe against
// torn connections, duplicated frames, and crash-stale cursors.
package replica

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

// wire message types.
const (
	msgHello         = "hello"  // consumer -> publisher: node id + cursor
	msgResume        = "resume" // publisher confirms tail resume from Seq
	msgSnapshotBegin = "snapshot-begin"
	msgSnapshotEntry = "entry" // one stamped snapshot entry
	msgSnapshotTomb  = "tomb"  // one remembered delete
	msgSnapshotEnd   = "snapshot-end"
	msgChange        = "change"
)

// wire record ops.
const (
	opEntry  = "entry"
	opDelete = "delete"
)

// wireRecord is one replicated update: a full post-image upsert or a
// delete, with the origin stamp that decides conflicts.
type wireRecord struct {
	Op    string              `json:"op"`
	DN    string              `json:"dn"`
	Attrs map[string][]string `json:"attrs,omitempty"`
	OSeq  uint64              `json:"oseq"`
	ONode uint32              `json:"onode"`
}

// frame is one wire message.
type frame struct {
	Type string `json:"type"`
	// Node/Cursor: hello only — the consumer's node id and the publisher
	// commit seq its state already reflects.
	Node   uint32 `json:"node,omitempty"`
	Cursor uint64 `json:"cursor,omitempty"`
	// Seq: for resume, the confirmed cursor; for snapshot-begin/-end, the
	// commit seq the cut reflects; for change, the publisher commit seq
	// the whole frame advances the consumer's cursor to.
	Seq   uint64 `json:"seq,omitempty"`
	Count int    `json:"count,omitempty"` // snapshot-end: entries sent
	// Record: snapshot entry/tomb frames. Records: change frames — one
	// source commit may decompose into several wire records (a rename is
	// delete+upsert), shipped in ONE frame so the cursor never lands
	// between them.
	Record  *wireRecord  `json:"record,omitempty"`
	Records []wireRecord `json:"records,omitempty"`
}

// PublisherStats counts one publisher's replication activity.
type PublisherStats struct {
	// Conns counts accepted consumer connections; Resumes/Snapshots split
	// their catch-ups by path; RecordsSent totals wire records shipped
	// (snapshot + live).
	Conns       uint64
	Resumes     uint64
	Snapshots   uint64
	RecordsSent uint64
}

// Publisher serves the replication stream from a DIT.
type Publisher struct {
	DIT *directory.DIT

	conns     atomic.Uint64
	resumes   atomic.Uint64
	snapshots atomic.Uint64
	sent      atomic.Uint64

	mu       sync.Mutex
	listener net.Listener
	open     map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// NewPublisher wraps a DIT.
func NewPublisher(d *directory.DIT) *Publisher {
	return &Publisher{DIT: d, open: map[net.Conn]bool{}}
}

// Stats reports publisher counters.
func (p *Publisher) Stats() PublisherStats {
	return PublisherStats{
		Conns:       p.conns.Load(),
		Resumes:     p.resumes.Load(),
		Snapshots:   p.snapshots.Load(),
		RecordsSent: p.sent.Load(),
	}
}

// Start listens for consumers on addr.
func (p *Publisher) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.listener = l
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				c.Close()
				return
			}
			p.open[c] = true
			p.mu.Unlock()
			p.conns.Add(1)
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.serve(c)
			}()
		}
	}()
	return l.Addr(), nil
}

// Close stops the publisher and drops all consumers.
func (p *Publisher) Close() {
	p.mu.Lock()
	p.closed = true
	if p.listener != nil {
		p.listener.Close()
	}
	for c := range p.open {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// serve catches one consumer up (resume or snapshot, chosen by its hello
// cursor) and ships live changes until it drops.
func (p *Publisher) serve(nc net.Conn) {
	defer func() {
		nc.Close()
		p.mu.Lock()
		delete(p.open, nc)
		p.mu.Unlock()
	}()

	// The hello frame must arrive promptly; a consumer that dials and says
	// nothing would otherwise pin a subscription forever.
	nc.SetReadDeadline(time.Now().Add(30 * time.Second))
	dec := json.NewDecoder(bufio.NewReader(nc))
	var hello frame
	if err := dec.Decode(&hello); err != nil || hello.Type != msgHello {
		return
	}
	nc.SetReadDeadline(time.Time{})

	w := bufio.NewWriter(nc)
	enc := json.NewEncoder(w)
	send := func(f frame) bool { return enc.Encode(f) == nil }

	var changes <-chan directory.UpdateRecord
	var cancel func()
	if backlog, ch, cf, ok := p.DIT.SubscribeFrom(hello.Cursor, 4096); ok {
		p.resumes.Add(1)
		changes, cancel = ch, cf
		defer cancel()
		if !send(frame{Type: msgResume, Seq: hello.Cursor}) {
			return
		}
		for i := range backlog {
			if !p.sendChange(send, &backlog[i]) {
				return
			}
		}
	} else {
		// Tail doesn't cover the cursor (evicted, disabled, or a cursor
		// from a history this process never saw): exact-cut snapshot.
		p.snapshots.Add(1)
		entries, tombs, seq, ch, cf := p.DIT.SnapshotReplicaAndSubscribe(4096)
		changes, cancel = ch, cf
		defer cancel()
		if !send(frame{Type: msgSnapshotBegin, Seq: seq}) {
			return
		}
		for i := range entries {
			st := entries[i].Stamp
			if st.IsZero() {
				// Pre-replication entry (restored from an unstamped legacy
				// journal): ship the minimal valid stamp so it applies
				// everywhere but loses to any real write.
				st = directory.Stamp{Seq: 1, Node: p.DIT.NodeID()}
			}
			p.sent.Add(1)
			if !send(frame{Type: msgSnapshotEntry, Record: &wireRecord{
				Op: opEntry, DN: entries[i].DN.String(), Attrs: entries[i].Attrs.Map(),
				OSeq: st.Seq, ONode: st.Node}}) {
				return
			}
		}
		for i := range tombs {
			p.sent.Add(1)
			if !send(frame{Type: msgSnapshotTomb, Record: &wireRecord{
				Op: opDelete, DN: tombs[i].Key,
				OSeq: tombs[i].Stamp.Seq, ONode: tombs[i].Stamp.Node}}) {
				return
			}
		}
		if !send(frame{Type: msgSnapshotEnd, Seq: seq, Count: len(entries)}) {
			return
		}
	}
	if w.Flush() != nil {
		return
	}

	// Unblock on consumer disconnect: a reader that fails closes nc.
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		for {
			if _, err := nc.Read(buf); err != nil {
				return
			}
		}
	}()
	for {
		select {
		case rec, ok := <-changes:
			if !ok {
				return // overflow: consumer reconnects and resumes/resyncs
			}
			if !p.sendChange(send, &rec) {
				return
			}
			// Drain whatever else is already buffered before flushing so a
			// burst of commits costs one syscall, not one per record.
			for drained := false; !drained; {
				select {
				case rec, ok = <-changes:
					if !ok {
						return
					}
					if !p.sendChange(send, &rec) {
						return
					}
				default:
					drained = true
				}
			}
			if w.Flush() != nil {
				return
			}
		case <-done:
			return
		}
	}
}

// sendChange converts one committed record to wire form and sends it.
// Returns false only on a send error; records that convert to nothing
// (unstamped legacy history) are skipped.
func (p *Publisher) sendChange(send func(frame) bool, rec *directory.UpdateRecord) bool {
	wrs := p.wireRecords(rec)
	if len(wrs) == 0 {
		return true
	}
	p.sent.Add(uint64(len(wrs)))
	return send(frame{Type: msgChange, Seq: rec.Seq, Records: wrs})
}

// wireRecords converts one changelog record into its replicated form:
// full post-image upserts and stamped deletes. A rename decomposes into
// delete(old)+upsert(new) under the rename's single stamp. Records
// without a post-image in hand fall back to the live tree — the image
// read may be newer than the record, but it ships under the record's
// (older) stamp, so the later state's own record simply re-wins when it
// arrives: convergence is unaffected.
func (p *Publisher) wireRecords(rec *directory.UpdateRecord) []wireRecord {
	st := rec.Origin()
	if st.IsZero() {
		return nil // unstamped legacy record; snapshot fallback covers it
	}
	switch rec.Op {
	case "add", "entry":
		attrs := rec.Attrs
		if img := rec.PostImage(); img != nil {
			attrs = img.Map()
		}
		return []wireRecord{{Op: opEntry, DN: rec.DN, Attrs: attrs, OSeq: st.Seq, ONode: st.Node}}
	case "modify":
		attrs := p.postImageFor(rec, rec.DN)
		if attrs == nil {
			return nil // entry since deleted; its delete record follows
		}
		return []wireRecord{{Op: opEntry, DN: rec.DN, Attrs: attrs, OSeq: st.Seq, ONode: st.Node}}
	case "delete":
		return []wireRecord{{Op: opDelete, DN: rec.DN, OSeq: st.Seq, ONode: st.Node}}
	case "modifydn":
		name, err := dn.Parse(rec.DN)
		if err != nil || name.IsRoot() {
			return nil
		}
		newRDN, err := dn.Parse(rec.NewRDN)
		if err != nil || newRDN.Depth() != 1 {
			return nil
		}
		newDN := name.WithRDN(newRDN.RDN())
		out := []wireRecord{{Op: opDelete, DN: rec.DN, OSeq: st.Seq, ONode: st.Node}}
		if attrs := p.postImageFor(rec, newDN.String()); attrs != nil {
			out = append(out, wireRecord{Op: opEntry, DN: newDN.String(), Attrs: attrs, OSeq: st.Seq, ONode: st.Node})
		}
		return out
	}
	return nil
}

// postImageFor returns the record's post-image attributes, falling back
// to the live tree at name when the record doesn't carry one.
func (p *Publisher) postImageFor(rec *directory.UpdateRecord, name string) map[string][]string {
	if img := rec.PostImage(); img != nil {
		return img.Map()
	}
	parsed, err := dn.Parse(name)
	if err != nil {
		return nil
	}
	e, err := p.DIT.Get(parsed)
	if err != nil {
		return nil
	}
	return e.Attrs.Map()
}

// link is the consumer half of one replication connection: it dials a
// publisher, announces its cursor, applies everything received through
// ApplyRemote, and reconnects with backoff until stopped. Replica wraps
// one link; Replicator runs one per peer.
type link struct {
	addr    string
	node    uint32
	d       *directory.DIT
	onApply func(directory.RemoteApplied)
	persist func(cursor uint64)

	cursor     atomic.Uint64 // publisher commit seq reflected locally
	resyncs    atomic.Uint64 // snapshot catch-ups
	resumes    atomic.Uint64 // tail resumes
	applied    atomic.Uint64 // records that won LWW and mutated the tree
	noops      atomic.Uint64 // losing/duplicate deliveries
	structural atomic.Uint64 // records skipped on structural conflict
	connected  atomic.Bool

	stop chan struct{}
	wg   sync.WaitGroup
}

func newLink(addr string, node uint32, d *directory.DIT,
	onApply func(directory.RemoteApplied), persist func(uint64)) *link {
	return &link{addr: addr, node: node, d: d, onApply: onApply,
		persist: persist, stop: make(chan struct{})}
}

func (l *link) start() {
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			select {
			case <-l.stop:
				return
			default:
			}
			if err := l.session(); err != nil {
				select {
				case <-l.stop:
					return
				case <-time.After(100 * time.Millisecond):
				}
			}
		}
	}()
}

func (l *link) stopAndWait() {
	close(l.stop)
	l.wg.Wait()
}

func (l *link) setCursor(seq uint64) {
	l.cursor.Store(seq)
	if l.persist != nil {
		l.persist(seq)
	}
}

// session runs one connection: hello, catch-up (resume or snapshot), then
// the live stream until it breaks.
func (l *link) session() error {
	nc, err := net.DialTimeout("tcp", l.addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	// Drop the connection promptly when stopping; connDone reaps the
	// watcher when this session ends for any other reason.
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		select {
		case <-l.stop:
			nc.Close()
		case <-connDone:
		}
	}()

	w := bufio.NewWriter(nc)
	enc := json.NewEncoder(w)
	if err := enc.Encode(frame{Type: msgHello, Node: l.node, Cursor: l.cursor.Load()}); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}

	dec := json.NewDecoder(bufio.NewReader(nc))
	// Each frame decodes into a FRESH struct: json.Decoder merges into
	// existing pointers/maps, which would silently fuse records.
	var f frame
	if err := dec.Decode(&f); err != nil {
		return err
	}
	switch f.Type {
	case msgResume:
		l.resumes.Add(1)
	case msgSnapshotBegin:
		l.resyncs.Add(1)
		for {
			f = frame{}
			if err := dec.Decode(&f); err != nil {
				return err
			}
			if f.Type == msgSnapshotEnd {
				break
			}
			if (f.Type != msgSnapshotEntry && f.Type != msgSnapshotTomb) || f.Record == nil {
				return fmt.Errorf("replica: unexpected frame %q in snapshot", f.Type)
			}
			if err := l.applyOne(f.Record); err != nil {
				return err
			}
		}
		// The cut seq may be BELOW our stale cursor (publisher restarted
		// with a fresh history); trusting it either way is safe because
		// every apply is idempotent under LWW.
		l.setCursor(f.Seq)
	default:
		return fmt.Errorf("replica: bad stream start %q", f.Type)
	}
	l.connected.Store(true)
	defer l.connected.Store(false)

	for {
		f = frame{}
		if err := dec.Decode(&f); err != nil {
			return err
		}
		if f.Type != msgChange {
			return fmt.Errorf("replica: unexpected frame %q in stream", f.Type)
		}
		for i := range f.Records {
			if err := l.applyOne(&f.Records[i]); err != nil {
				return err
			}
		}
		// Cursor advances only after the WHOLE frame applied: a rename's
		// delete+upsert pair is never torn by a reconnect between them.
		l.setCursor(f.Seq)
	}
}

// applyOne feeds one wire record through LWW resolution. Structural
// conflicts (bad DN, missing parent, delete of a non-leaf, unstamped
// record) are counted and skipped — they are per-record, not per-stream,
// and re-delivery cannot fix them. Real failures (a poisoned local
// journal) abort the session.
func (l *link) applyOne(wr *wireRecord) error {
	name, err := dn.Parse(wr.DN)
	if err != nil {
		l.structural.Add(1)
		return nil
	}
	var image *directory.Attrs
	if wr.Op != opDelete {
		image = directory.AttrsFrom(wr.Attrs)
	}
	st := directory.Stamp{Seq: wr.OSeq, Node: wr.ONode}
	res, err := l.d.ApplyRemote(name, image, st, wr.Op == opDelete)
	if err != nil {
		switch directory.CodeOf(err) {
		case ldap.ResultNoSuchObject, ldap.ResultNotAllowedOnNonLeaf,
			ldap.ResultProtocolError, ldap.ResultInvalidDNSyntax:
			l.structural.Add(1)
			return nil
		}
		return err
	}
	if !res.Applied {
		l.noops.Add(1)
		return nil
	}
	l.applied.Add(1)
	if l.onApply != nil {
		l.onApply(res)
	}
	return nil
}

// Replica maintains a read-only copy of one publisher — the single-master
// special case of the protocol (node id 0, no publisher of its own).
type Replica struct {
	// DIT is the replica's local tree; serve reads from it.
	DIT *directory.DIT

	link *link
}

// New builds a replica of the publisher at addr. schema should match the
// publisher's (nil for none). Call Start to begin replicating.
func New(addr string, schema *directory.Schema) *Replica {
	d := directory.New(schema)
	return &Replica{DIT: d, link: newLink(addr, 0, d, nil, nil)}
}

// AppliedSeq returns the publisher commit sequence the replica reflects.
func (r *Replica) AppliedSeq() uint64 { return r.link.cursor.Load() }

// Resyncs counts full snapshot resynchronizations. A replica whose cursor
// is still covered by the publisher's changelog tail resumes instead (see
// Resumes), so reconnects normally leave this untouched.
func (r *Replica) Resyncs() uint64 { return r.link.resyncs.Load() }

// Resumes counts cursor resumes — the cheap catch-up path, including the
// initial sync when the publisher's tail reaches back to seq 0.
func (r *Replica) Resumes() uint64 { return r.link.resumes.Load() }

// Connected reports whether the replication stream is live.
func (r *Replica) Connected() bool { return r.link.connected.Load() }

// Start begins replicating in the background, reconnecting with a small
// backoff until Stop.
func (r *Replica) Start() { r.link.start() }

// Stop halts replication.
func (r *Replica) Stop() { r.link.stopAndWait() }
