package replica_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/mcschema"
	"metacomm/internal/replica"
)

// meshNode builds one multi-master node: a DIT plus its replicator, with
// the publisher listening on a loopback port.
func meshNode(t *testing.T, id uint32, dir string) (*directory.DIT, *replica.Replicator, string) {
	t.Helper()
	d := directory.NewSegmented(mcschema.New(), 4)
	r := replica.NewReplicator(id, d)
	if dir != "" {
		r.SetCursorPath(filepath.Join(dir, fmt.Sprintf("cursors.%d.json", id)))
	}
	addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return d, r, addr.String()
}

// waitConverged polls until every node reports the same fingerprint.
func waitConverged(t *testing.T, ds ...*directory.DIT) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var fps []string
	for time.Now().Before(deadline) {
		fps = fps[:0]
		same := true
		for _, d := range ds {
			fps = append(fps, d.Fingerprint())
			if fps[len(fps)-1] != fps[0] {
				same = false
			}
		}
		if same {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("mesh did not converge: fingerprints %v", fps)
}

func TestReplicatorMeshConverges(t *testing.T) {
	dir := t.TempDir()
	d1, r1, a1 := meshNode(t, 1, dir)
	d2, r2, a2 := meshNode(t, 2, dir)
	d3, r3, a3 := meshNode(t, 3, dir)
	r1.AddPeer(a2)
	r1.AddPeer(a3)
	r2.AddPeer(a1)
	r2.AddPeer(a3)
	r3.AddPeer(a1)
	r3.AddPeer(a2)
	r1.Start()
	r2.Start()
	r3.Start()

	// All three concurrently create the suffix (an add/add conflict LWW
	// must collapse to one winner), then disjoint children everywhere.
	ds := []*directory.DIT{d1, d2, d3}
	for _, d := range ds {
		attrs := directory.NewAttrs()
		attrs.Put("objectClass", "organization")
		// EntryAlreadyExists is fine: a peer's add may have replicated in
		// first; LWW picks one image either way.
		_ = d.Add(dn.MustParse("o=Lucent"), attrs)
	}
	for i, d := range ds {
		for j := 0; j < 20; j++ {
			err := d.Add(dn.MustParse(fmt.Sprintf("cn=N%d W%02d,o=Lucent", i+1, j)),
				directory.AttrsFrom(map[string][]string{
					"objectClass": {"mcPerson"},
					"cn":          {fmt.Sprintf("N%d W%02d", i+1, j)},
					"sn":          {"Mesh"},
				}))
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	waitConverged(t, d1, d2, d3)

	// Every node holds all 60 children + the suffix.
	if n := d1.Len(); n != 61 {
		t.Fatalf("node 1 holds %d entries, want 61", n)
	}

	// A conflicting write on the same DN from two nodes: both trees must
	// agree on one winner (whichever stamp is larger).
	target := dn.MustParse("cn=N1 W00,o=Lucent")
	for i, d := range []*directory.DIT{d2, d3} {
		if err := d.Modify(target, []ldap.Change{{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("R%d", i+2)}}}}); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, d1, d2, d3)
	e, err := d1.Get(target)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Attrs.First("roomNumber")
	if got != "R2" && got != "R3" {
		t.Fatalf("converged roomNumber = %q, want R2 or R3", got)
	}

	// A delete on one node wins everywhere; the tombstone stops the
	// slower peers' older state from resurrecting it.
	if err := d3.Delete(target); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, d1, d2, d3)
	if _, err := d1.Get(target); err == nil {
		t.Fatal("deleted entry still present on node 1")
	}
}
