package replica

import (
	"encoding/json"
	"net"
	"os"
	"sync"
	"time"

	"metacomm/internal/directory"
)

// Replicator runs one node's side of a multi-master mesh: a Publisher
// serving this node's changelog to whoever asks, plus one consumer link
// per configured peer. Writes accepted on any node flow to every other —
// directly or through intermediaries (a re-applied remote record is
// re-emitted with its ORIGIN stamp, so updates flood the mesh and the
// strict-greater LWW rule terminates the flood).
//
// Per-peer cursors persist to a small JSON file (SetCursorPath): a
// restarted node resumes each peer link from where it left off instead of
// re-snapshotting. Stale cursors are harmless — every record re-applied
// under LWW is a no-op.
type Replicator struct {
	// NodeID is this node's replication identity (the LWW tiebreak); it
	// must be distinct across the mesh.
	NodeID uint32
	// OnApply, when set BEFORE Start, observes every remote record that
	// won LWW and mutated the tree — the hook the Update Manager uses to
	// run device propagation for writes that originated elsewhere.
	OnApply func(directory.RemoteApplied)

	d   *directory.DIT
	pub *Publisher

	mu         sync.Mutex
	links      []*link
	cursorPath string
	cursors    map[string]uint64
	lastSave   time.Time
	started    bool
}

// NewReplicator builds a replicator over d, branding d with the node id.
// Call before any writes reach d (the id goes into every origin stamp).
func NewReplicator(nodeID uint32, d *directory.DIT) *Replicator {
	d.SetNodeID(nodeID)
	return &Replicator{NodeID: nodeID, d: d, pub: NewPublisher(d), cursors: map[string]uint64{}}
}

// SetCursorPath selects the per-peer cursor file and loads whatever a
// previous run left there. Call before AddPeer.
func (r *Replicator) SetCursorPath(path string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cursorPath = path
	data, err := os.ReadFile(path)
	if err != nil {
		return // first run
	}
	var saved map[string]uint64
	if json.Unmarshal(data, &saved) == nil {
		for k, v := range saved {
			r.cursors[k] = v
		}
	}
}

// Serve starts the publisher on addr (host:port; port 0 picks one) and
// returns the bound address.
func (r *Replicator) Serve(addr string) (net.Addr, error) {
	return r.pub.Start(addr)
}

// AddPeer registers a peer publisher to consume from. Call before Start.
func (r *Replicator) AddPeer(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := newLink(addr, r.NodeID, r.d,
		func(res directory.RemoteApplied) {
			if r.OnApply != nil {
				r.OnApply(res)
			}
		},
		func(cursor uint64) { r.saveCursor(addr, cursor) })
	l.cursor.Store(r.cursors[addr])
	r.links = append(r.links, l)
}

// Start begins consuming from every registered peer.
func (r *Replicator) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return
	}
	r.started = true
	for _, l := range r.links {
		l.start()
	}
}

// Stop halts the peer links and the publisher, then writes the final
// cursor file.
func (r *Replicator) Stop() {
	r.mu.Lock()
	links := r.links
	started := r.started
	r.started = false
	r.mu.Unlock()
	if started {
		for _, l := range links {
			l.stopAndWait()
		}
	}
	r.pub.Close()
	r.flushCursors()
}

// saveCursor records a peer link's progress, rewriting the cursor file at
// most every 200ms — losing the last interval to a crash only costs
// re-applying that interval's records, all no-ops under LWW.
func (r *Replicator) saveCursor(addr string, cursor uint64) {
	r.mu.Lock()
	r.cursors[addr] = cursor
	if r.cursorPath == "" || time.Since(r.lastSave) < 200*time.Millisecond {
		r.mu.Unlock()
		return
	}
	r.lastSave = time.Now()
	path := r.cursorPath
	data, err := json.Marshal(r.cursors)
	r.mu.Unlock()
	if err == nil {
		writeFileAtomic(path, data)
	}
}

// flushCursors writes the cursor file unconditionally.
func (r *Replicator) flushCursors() {
	r.mu.Lock()
	path := r.cursorPath
	data, err := json.Marshal(r.cursors)
	r.mu.Unlock()
	if path == "" || err != nil {
		return
	}
	writeFileAtomic(path, data)
}

func writeFileAtomic(path string, data []byte) {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// PeerStats is one peer link's progress.
type PeerStats struct {
	Addr      string
	Connected bool
	// Cursor is the peer commit seq this node reflects; Resumes/Snapshots
	// count catch-ups by path; Applied/Noops/Structural classify received
	// records (LWW winners / losers+duplicates / skipped conflicts).
	Cursor     uint64
	Resumes    uint64
	Snapshots  uint64
	Applied    uint64
	Noops      uint64
	Structural uint64
}

// Stats is a point-in-time snapshot of one node's replication activity.
type Stats struct {
	NodeID    uint32
	Publisher PublisherStats
	Peers     []PeerStats
}

// Stats reports the node's replication counters.
func (r *Replicator) Stats() Stats {
	r.mu.Lock()
	links := append([]*link(nil), r.links...)
	r.mu.Unlock()
	s := Stats{NodeID: r.NodeID, Publisher: r.pub.Stats()}
	for _, l := range links {
		s.Peers = append(s.Peers, PeerStats{
			Addr:       l.addr,
			Connected:  l.connected.Load(),
			Cursor:     l.cursor.Load(),
			Resumes:    l.resumes.Load(),
			Snapshots:  l.resyncs.Load(),
			Applied:    l.applied.Load(),
			Noops:      l.noops.Load(),
			Structural: l.structural.Load(),
		})
	}
	return s
}
