package filter

import (
	"testing"
	"time"
)

// fakeClock drives a Breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func newTestBreaker(threshold int, base, max time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, base, max)
	b.SetClock(clk.now)
	return b, clk
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, 10*time.Millisecond, time.Second)
	for i := 0; i < 2; i++ {
		b.Failure()
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("state after %d failures = %v, want closed", i+1, got)
		}
		if !b.Allow() {
			t.Fatalf("closed breaker denied Allow after %d failures", i+1)
		}
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("freshly opened breaker allowed an apply")
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", b.Trips())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newTestBreaker(3, 10*time.Millisecond, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed: Success must reset the count", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, 10*time.Millisecond, time.Second)
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	// Before the probe time nothing passes.
	if b.Allow() {
		t.Fatal("open breaker allowed an apply before the probe window")
	}
	// Past the probe time exactly one caller gets through as the probe.
	clk.t = b.ProbeAt().Add(time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe allowed after the open window elapsed")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("second caller stole the half-open probe")
	}
	// A successful probe closes the breaker.
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied Allow")
	}
}

func TestBreakerReopensWithEscalatingDelay(t *testing.T) {
	b, clk := newTestBreaker(1, 10*time.Millisecond, time.Second)
	b.Failure()
	first := b.ProbeAt().Sub(clk.t)
	clk.t = b.ProbeAt().Add(time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe after first open window")
	}
	// The probe fails: back to open with a longer window.
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	second := b.ProbeAt().Sub(clk.t)
	// Base delay is jittered ±25%, so compare against the guaranteed gap:
	// the second window's minimum (2*base * 3/4) must exceed the first
	// window's maximum (base * 5/4)... with base=10ms: 15ms > 12.5ms.
	if second <= first*11/10 {
		t.Fatalf("open window did not escalate: first=%v second=%v", first, second)
	}
	if b.Trips() != 2 {
		t.Fatalf("Trips = %d, want 2", b.Trips())
	}
}

func TestBreakerDelayCapped(t *testing.T) {
	b, clk := newTestBreaker(1, 100*time.Millisecond, 300*time.Millisecond)
	for i := 0; i < 10; i++ {
		b.Failure()
		if w := b.ProbeAt().Sub(clk.t); w > 300*time.Millisecond+300*time.Millisecond/4 {
			t.Fatalf("trip %d: open window %v exceeds cap+jitter", i, w)
		}
		clk.t = b.ProbeAt().Add(time.Millisecond)
		if !b.Allow() {
			t.Fatalf("trip %d: no probe", i)
		}
	}
}
