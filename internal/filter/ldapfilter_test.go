package filter

import (
	"errors"
	"strings"
	"testing"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/lexpress"
	"metacomm/internal/mcschema"
)

// ditClient adapts a DIT directly to the LDAPClient interface for tests.
type ditClient struct{ d *directory.DIT }

func (c *ditClient) Search(req *ldap.SearchRequest) ([]*ldapclient.Entry, error) {
	base, err := dn.Parse(req.BaseDN)
	if err != nil {
		return nil, err
	}
	entries, err := c.d.Search(base, req.Scope, req.Filter, req.SizeLimit)
	if err != nil {
		return nil, &ldap.ResultError{Result: ldap.Result{Code: directory.CodeOf(err), Message: err.Error()}}
	}
	var out []*ldapclient.Entry
	for _, e := range entries {
		ce := &ldapclient.Entry{DN: e.DN.String()}
		for _, n := range e.Attrs.Names() {
			ce.Attributes = append(ce.Attributes, ldap.Attribute{Type: n, Values: e.Attrs.Get(n)})
		}
		out = append(out, ce)
	}
	return out, nil
}

func (c *ditClient) Add(name string, attrs []ldap.Attribute) error {
	d, err := dn.Parse(name)
	if err != nil {
		return err
	}
	a := directory.NewAttrs()
	for _, at := range attrs {
		for _, v := range at.Values {
			a.Add(at.Type, v)
		}
	}
	if err := c.d.Add(d, a); err != nil {
		return &ldap.ResultError{Result: ldap.Result{Code: directory.CodeOf(err), Message: err.Error()}}
	}
	return nil
}

func (c *ditClient) Modify(name string, changes []ldap.Change) error {
	d, err := dn.Parse(name)
	if err != nil {
		return err
	}
	if err := c.d.Modify(d, changes); err != nil {
		return &ldap.ResultError{Result: ldap.Result{Code: directory.CodeOf(err), Message: err.Error()}}
	}
	return nil
}

func (c *ditClient) ModifyDN(name, newRDN string, deleteOldRDN bool) error {
	d, err := dn.Parse(name)
	if err != nil {
		return err
	}
	r, err := dn.Parse(newRDN)
	if err != nil || r.Depth() != 1 {
		return errors.New("bad newRDN")
	}
	if err := c.d.ModifyDN(d, r.RDN(), deleteOldRDN); err != nil {
		return &ldap.ResultError{Result: ldap.Result{Code: directory.CodeOf(err), Message: err.Error()}}
	}
	return nil
}

func (c *ditClient) Delete(name string) error {
	d, err := dn.Parse(name)
	if err != nil {
		return err
	}
	if err := c.d.Delete(d); err != nil {
		return &ldap.ResultError{Result: ldap.Result{Code: directory.CodeOf(err), Message: err.Error()}}
	}
	return nil
}

func newLDAPFilter(t *testing.T) (*LDAPFilter, *directory.DIT) {
	t.Helper()
	d := directory.New(mcschema.New())
	suffix := dn.MustParse("o=Lucent")
	attrs := directory.NewAttrs()
	attrs.Put("objectClass", "organization")
	if err := d.Add(suffix, attrs); err != nil {
		t.Fatal(err)
	}
	return &LDAPFilter{
		Client:     &ditClient{d: d},
		Suffix:     suffix,
		PeopleBase: suffix,
		RDNAttr:    "cn",
	}, d
}

func pbxImage(ext, name string) lexpress.Record {
	rec := lexpress.NewRecord()
	rec.Set("definityExtension", ext)
	rec.Set("definityName", name)
	rec.Set("cn", name)
	rec.Set("sn", lastWord(name))
	rec.Set("objectClass", "mcPerson", "definityUser")
	rec.Set("lastUpdater", "pbx")
	return rec
}

func lastWord(s string) string {
	parts := strings.Fields(s)
	return parts[len(parts)-1]
}

func TestLDAPFilterAddCreatesPerson(t *testing.T) {
	f, d := newLDAPFilter(t)
	err := f.Apply(&lexpress.TargetUpdate{
		Target: "ldap", Op: lexpress.OpAdd, Key: "2-1",
		New: pbxImage("2-1", "Ada Lovelace"),
	}, "definityExtension")
	if err != nil {
		t.Fatal(err)
	}
	e, err := d.Get(dn.MustParse("cn=Ada Lovelace,o=Lucent"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Attrs.First("definityExtension") != "2-1" {
		t.Errorf("entry = %v", e.Attrs.Map())
	}
}

func TestLDAPFilterAddNameCollisionQualifiesRDN(t *testing.T) {
	f, d := newLDAPFilter(t)
	for _, ext := range []string{"2-1", "2-2"} {
		err := f.Apply(&lexpress.TargetUpdate{
			Target: "ldap", Op: lexpress.OpAdd, Key: ext,
			New: pbxImage(ext, "Jan Kowalski"),
		}, "definityExtension")
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Get(dn.MustParse("cn=Jan Kowalski (2-2),o=Lucent")); err != nil {
		t.Errorf("qualified entry missing: %v", err)
	}
}

func TestLDAPFilterModifyConverges(t *testing.T) {
	f, d := newLDAPFilter(t)
	img := pbxImage("2-1", "Ada Lovelace")
	if err := f.Apply(&lexpress.TargetUpdate{Target: "ldap", Op: lexpress.OpAdd, Key: "2-1", New: img}, "definityExtension"); err != nil {
		t.Fatal(err)
	}
	upd := img.Clone()
	upd.Set("roomNumber", "1A-1")
	upd.Set("definityCOS", "2")
	err := f.Apply(&lexpress.TargetUpdate{
		Target: "ldap", Op: lexpress.OpModify, Key: "2-1", OldKey: "2-1",
		Old: img, New: upd,
	}, "definityExtension")
	if err != nil {
		t.Fatal(err)
	}
	e, _ := d.Get(dn.MustParse("cn=Ada Lovelace,o=Lucent"))
	if e.Attrs.First("roomNumber") != "1A-1" || e.Attrs.First("definityCOS") != "2" {
		t.Errorf("entry = %v", e.Attrs.Map())
	}
	// Removing an attribute from the image deletes it on the entry.
	trimmed := upd.Clone()
	trimmed.Set("roomNumber")
	err = f.Apply(&lexpress.TargetUpdate{
		Target: "ldap", Op: lexpress.OpModify, Key: "2-1", OldKey: "2-1",
		Old: upd, New: trimmed,
	}, "definityExtension")
	if err != nil {
		t.Fatal(err)
	}
	e, _ = d.Get(dn.MustParse("cn=Ada Lovelace,o=Lucent"))
	if e.Attrs.Has("roomNumber") {
		t.Error("stale attribute survived")
	}
}

func TestLDAPFilterRenameIsModifyRDNPlusModifyPair(t *testing.T) {
	f, d := newLDAPFilter(t)
	img := pbxImage("2-1", "Ada Lovelace")
	if err := f.Apply(&lexpress.TargetUpdate{Target: "ldap", Op: lexpress.OpAdd, Key: "2-1", New: img}, "definityExtension"); err != nil {
		t.Fatal(err)
	}
	renamed := pbxImage("2-1", "Ada King")
	renamed.Set("roomNumber", "NEW-1")
	err := f.Apply(&lexpress.TargetUpdate{
		Target: "ldap", Op: lexpress.OpModify, Key: "2-1", OldKey: "2-1",
		Old: img, New: renamed,
	}, "definityExtension")
	if err != nil {
		t.Fatal(err)
	}
	e, err := d.Get(dn.MustParse("cn=Ada King,o=Lucent"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Attrs.First("roomNumber") != "NEW-1" {
		t.Errorf("second half of the pair missing: %v", e.Attrs.Map())
	}
	if _, err := d.Get(dn.MustParse("cn=Ada Lovelace,o=Lucent")); err == nil {
		t.Error("old name survived")
	}
}

// TestRenameCrashWindow reproduces §5.1: a crash between the ModifyRDN and
// the Modify leaves the entry renamed but not updated — visible to readers
// until resynchronization repairs it.
func TestRenameCrashWindow(t *testing.T) {
	f, d := newLDAPFilter(t)
	img := pbxImage("2-1", "Ada Lovelace")
	if err := f.Apply(&lexpress.TargetUpdate{Target: "ldap", Op: lexpress.OpAdd, Key: "2-1", New: img}, "definityExtension"); err != nil {
		t.Fatal(err)
	}
	f.AfterRename = func() error { return errors.New("um crashed") }
	renamed := pbxImage("2-1", "Ada King")
	renamed.Set("roomNumber", "NEW-1")
	err := f.Apply(&lexpress.TargetUpdate{
		Target: "ldap", Op: lexpress.OpModify, Key: "2-1", OldKey: "2-1",
		Old: img, New: renamed,
	}, "definityExtension")
	if err == nil || !strings.Contains(err.Error(), "um crashed") {
		t.Fatalf("err = %v", err)
	}
	// Inconsistent state: renamed, but the room never arrived.
	e, err := d.Get(dn.MustParse("cn=Ada King,o=Lucent"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Attrs.Has("roomNumber") {
		t.Fatal("crash window did not reproduce")
	}
	// Recovery: rerunning the (reapplied) update converges the entry.
	f.AfterRename = nil
	err = f.Apply(&lexpress.TargetUpdate{
		Target: "ldap", Op: lexpress.OpModify, Conditional: true, Key: "2-1", OldKey: "2-1",
		Old: img, New: renamed,
	}, "definityExtension")
	if err != nil {
		t.Fatal(err)
	}
	e, _ = d.Get(dn.MustParse("cn=Ada King,o=Lucent"))
	if e.Attrs.First("roomNumber") != "NEW-1" {
		t.Error("resync did not repair the §5.1 inconsistency")
	}
}

func TestLDAPFilterDeleteClearsOwnedOnly(t *testing.T) {
	f, d := newLDAPFilter(t)
	img := pbxImage("2-1", "Ada Lovelace")
	img.Set("telephoneNumber", "+1 908 582 0001")
	if err := f.Apply(&lexpress.TargetUpdate{Target: "ldap", Op: lexpress.OpAdd, Key: "2-1", New: img}, "definityExtension"); err != nil {
		t.Fatal(err)
	}
	err := f.Apply(&lexpress.TargetUpdate{
		Target: "ldap", Op: lexpress.OpDelete, Key: "2-1", OldKey: "2-1",
		Old:   img,
		Owned: []string{"definityExtension", "definityName", "definityCOS"},
	}, "definityExtension")
	if err != nil {
		t.Fatal(err)
	}
	e, err := d.Get(dn.MustParse("cn=Ada Lovelace,o=Lucent"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Attrs.Has("definityExtension") || e.Attrs.Has("definityName") {
		t.Error("owned attributes survived")
	}
	if !e.Attrs.Has("telephoneNumber") {
		t.Error("shared attribute cleared")
	}
}

func TestLDAPFilterConditionalModifyOfMissingAdds(t *testing.T) {
	f, d := newLDAPFilter(t)
	img := pbxImage("2-7", "Grace Hopper")
	err := f.Apply(&lexpress.TargetUpdate{
		Target: "ldap", Op: lexpress.OpModify, Conditional: true,
		Key: "2-7", OldKey: "2-7", New: img,
	}, "definityExtension")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(dn.MustParse("cn=Grace Hopper,o=Lucent")); err != nil {
		t.Errorf("conditional modify fallback add missing: %v", err)
	}
	// A plain modify of a missing entry errors.
	err = f.Apply(&lexpress.TargetUpdate{
		Target: "ldap", Op: lexpress.OpModify, Key: "9-9", OldKey: "9-9",
		New: pbxImage("9-9", "Nobody"),
	}, "definityExtension")
	if !ldap.IsCode(err, ldap.ResultNoSuchObject) {
		t.Errorf("err = %v", err)
	}
}

func TestLocateAmbiguityIsAnError(t *testing.T) {
	f, d := newLDAPFilter(t)
	for _, name := range []string{"cn=A,o=Lucent", "cn=B,o=Lucent"} {
		attrs := directory.AttrsFrom(map[string][]string{
			"objectClass":       {"mcPerson", "definityUser"},
			"sn":                {"X"},
			"definityExtension": {"2-1"},
		})
		if err := d.Add(dn.MustParse(name), attrs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Locate("definityExtension", "2-1"); err == nil {
		t.Error("ambiguous key lookup succeeded")
	}
}
