// Package filter implements MetaComm's repository filters (paper §4.1). A
// filter couples a protocol converter — the unified device API — with a
// mapper built on lexpress mappings. Filters translate update descriptors
// into repository updates and repository notifications into descriptors.
//
// The separation matters: protocol-specific software is reused across
// schema variants by swapping only the lexpress mapping, which is input
// data, not code.
package filter

import (
	"errors"
	"fmt"

	"metacomm/internal/device"
	"metacomm/internal/lexpress"
)

// DeviceFilter is the filter for one telecom device (PBX, messaging
// platform, ...).
type DeviceFilter struct {
	conv device.Converter
	lib  *lexpress.Library

	// toDevice maps ldap -> device; fromDevice maps device -> ldap.
	toDevice   *lexpress.Mapping
	fromDevice *lexpress.Mapping
}

// NewDeviceFilter builds a filter for conv using the mappings registered in
// lib for the (ldap, device) schema pair.
func NewDeviceFilter(conv device.Converter, lib *lexpress.Library) (*DeviceFilter, error) {
	name := conv.Name()
	toDev, ok := lib.ForPair("ldap", name)
	if !ok {
		return nil, fmt.Errorf("filter: no ldap->%s mapping in library", name)
	}
	fromDev, ok := lib.ForPair(name, "ldap")
	if !ok {
		return nil, fmt.Errorf("filter: no %s->ldap mapping in library", name)
	}
	return &DeviceFilter{conv: conv, lib: lib, toDevice: toDev, fromDevice: fromDev}, nil
}

// Name returns the repository name.
func (f *DeviceFilter) Name() string { return f.conv.Name() }

// Converter exposes the underlying protocol converter (synchronization
// needs Dump/Get).
func (f *DeviceFilter) Converter() device.Converter { return f.conv }

// ToDevice returns the ldap->device mapping.
func (f *DeviceFilter) ToDevice() *lexpress.Mapping { return f.toDevice }

// FromDevice returns the device->ldap mapping.
func (f *DeviceFilter) FromDevice() *lexpress.Mapping { return f.fromDevice }

// Translate maps an LDAP-schema descriptor into this device's update, or
// nil when the device is not concerned (partition routing).
func (f *DeviceFilter) Translate(d lexpress.Descriptor) (*lexpress.TargetUpdate, error) {
	return f.toDevice.Translate(d)
}

// DescriptorFromNotification converts a committed device change into the
// canonical descriptor (Source = the device).
func (f *DeviceFilter) DescriptorFromNotification(n device.Notification) lexpress.Descriptor {
	return lexpress.Descriptor{
		Source: f.Name(),
		Origin: f.Name(),
		Op:     n.Op,
		Key:    n.Key,
		Old:    n.Old,
		New:    n.New,
	}
}

// Apply performs a translated update against the device, implementing the
// paper's conditional-update semantics for reapplied updates (§5.4):
//
//   - conditional add  -> applied as modify; not-found falls back to add;
//   - conditional mod  -> modify; not-found falls back to add;
//   - conditional del  -> delete; not-found is a no-op;
//   - normal modify that fails does NOT attempt an add;
//   - a key change (OldKey != Key) becomes delete(old)+add(new) — the data
//     migration lexpress's partitioning constraints call for.
//
// It returns the record as stored by the device, which may include
// device-generated fields the directory must learn about (§5.5).
func (f *DeviceFilter) Apply(u *lexpress.TargetUpdate) (lexpress.Record, error) {
	if u == nil {
		return nil, nil
	}
	switch u.Op {
	case lexpress.OpAdd:
		if u.Conditional {
			// Reapply: the record should already exist; converge it.
			stored, err := f.conv.Modify(u.Key, u.New)
			if err == nil {
				return stored, nil
			}
			if !errors.Is(err, device.ErrNotFound) {
				return nil, err
			}
		}
		stored, err := f.conv.Add(u.New)
		if err != nil && u.Conditional && errors.Is(err, device.ErrExists) {
			return f.conv.Modify(u.Key, u.New)
		}
		return stored, err

	case lexpress.OpModify:
		if u.OldKey != "" && u.OldKey != u.Key {
			// Key migration: remove the old record, add the new one.
			if err := f.conv.Delete(u.OldKey); err != nil && !errors.Is(err, device.ErrNotFound) {
				return nil, err
			}
			stored, err := f.conv.Add(u.New)
			if err != nil && errors.Is(err, device.ErrExists) {
				return f.conv.Modify(u.Key, u.New)
			}
			return stored, err
		}
		stored, err := f.conv.Modify(u.Key, u.New)
		if err == nil {
			return stored, nil
		}
		if u.Conditional && errors.Is(err, device.ErrNotFound) {
			return f.conv.Add(u.New)
		}
		return nil, err

	case lexpress.OpDelete:
		key := u.OldKey
		if key == "" {
			key = u.Key
		}
		err := f.conv.Delete(key)
		if err != nil && u.Conditional && errors.Is(err, device.ErrNotFound) {
			return nil, nil
		}
		return nil, err
	}
	return nil, fmt.Errorf("filter: unknown op %v", u.Op)
}

// Close releases the protocol converter.
func (f *DeviceFilter) Close() error { return f.conv.Close() }
