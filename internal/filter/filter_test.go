package filter

import (
	"errors"
	"fmt"
	"testing"

	"metacomm/internal/device"
	"metacomm/internal/lexpress"
)

// fakeConverter records calls and simulates a device store keyed by
// "extension".
type fakeConverter struct {
	name    string
	records map[string]lexpress.Record
	calls   []string
	failMod error
	failAdd error
}

func newFakeConverter() *fakeConverter {
	return &fakeConverter{name: "pbx", records: map[string]lexpress.Record{}}
}

func (f *fakeConverter) Name() string { return f.name }
func (f *fakeConverter) Get(key string) (lexpress.Record, error) {
	r, ok := f.records[key]
	if !ok {
		return nil, device.ErrNotFound
	}
	return r.Clone(), nil
}
func (f *fakeConverter) Add(rec lexpress.Record) (lexpress.Record, error) {
	f.calls = append(f.calls, "add:"+rec.First("extension"))
	if f.failAdd != nil {
		return nil, f.failAdd
	}
	key := rec.First("extension")
	if _, dup := f.records[key]; dup {
		return nil, device.ErrExists
	}
	f.records[key] = rec.Clone()
	return rec.Clone(), nil
}
func (f *fakeConverter) Modify(key string, rec lexpress.Record) (lexpress.Record, error) {
	f.calls = append(f.calls, "modify:"+key)
	if f.failMod != nil {
		return nil, f.failMod
	}
	if _, ok := f.records[key]; !ok {
		return nil, device.ErrNotFound
	}
	f.records[rec.First("extension")] = rec.Clone()
	if rec.First("extension") != key {
		delete(f.records, key)
	}
	return rec.Clone(), nil
}
func (f *fakeConverter) Delete(key string) error {
	f.calls = append(f.calls, "delete:"+key)
	if _, ok := f.records[key]; !ok {
		return device.ErrNotFound
	}
	delete(f.records, key)
	return nil
}
func (f *fakeConverter) Dump() ([]lexpress.Record, error) {
	var out []lexpress.Record
	for _, r := range f.records {
		out = append(out, r.Clone())
	}
	return out, nil
}
func (f *fakeConverter) Notifications() <-chan device.Notification { return nil }
func (f *fakeConverter) Close() error                              { return nil }

func newTestFilter(t *testing.T) (*DeviceFilter, *fakeConverter) {
	t.Helper()
	conv := newFakeConverter()
	df, err := NewDeviceFilter(conv, lexpress.MustStandardLibrary())
	if err != nil {
		t.Fatal(err)
	}
	return df, conv
}

func station(ext string) lexpress.Record {
	r := lexpress.NewRecord()
	r.Set("extension", ext)
	r.Set("name", "Test User")
	return r
}

func TestNewDeviceFilterRequiresBothMappings(t *testing.T) {
	conv := newFakeConverter()
	conv.name = "unknown-device"
	if _, err := NewDeviceFilter(conv, lexpress.MustStandardLibrary()); err == nil {
		t.Fatal("filter built without mappings")
	}
}

func TestApplyPlainAddModifyDelete(t *testing.T) {
	df, conv := newTestFilter(t)
	if _, err := df.Apply(&lexpress.TargetUpdate{Op: lexpress.OpAdd, Key: "2-1", New: station("2-1")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := conv.records["2-1"]; !ok {
		t.Fatal("add did not store")
	}
	mod := station("2-1")
	mod.Set("name", "Renamed")
	if _, err := df.Apply(&lexpress.TargetUpdate{Op: lexpress.OpModify, Key: "2-1", OldKey: "2-1", New: mod}); err != nil {
		t.Fatal(err)
	}
	if conv.records["2-1"].First("name") != "Renamed" {
		t.Error("modify did not converge")
	}
	if _, err := df.Apply(&lexpress.TargetUpdate{Op: lexpress.OpDelete, Key: "2-1", OldKey: "2-1", Old: station("2-1")}); err != nil {
		t.Fatal(err)
	}
	if len(conv.records) != 0 {
		t.Error("delete did not remove")
	}
}

func TestConditionalAddIsAppliedAsModify(t *testing.T) {
	// Paper §5.4: "add operations are reapplied as conditional modify
	// operations."
	df, conv := newTestFilter(t)
	conv.records["2-1"] = station("2-1")
	u := &lexpress.TargetUpdate{Op: lexpress.OpAdd, Conditional: true, Key: "2-1", New: station("2-1")}
	if _, err := df.Apply(u); err != nil {
		t.Fatal(err)
	}
	if conv.calls[0] != "modify:2-1" {
		t.Errorf("calls = %v (conditional add must try modify first)", conv.calls)
	}
}

func TestConditionalModifyFallsBackToAdd(t *testing.T) {
	// "If a conditional modify fails, the update filters then attempt to
	// add the record."
	df, conv := newTestFilter(t)
	u := &lexpress.TargetUpdate{Op: lexpress.OpModify, Conditional: true, Key: "2-9", OldKey: "2-9", New: station("2-9")}
	if _, err := df.Apply(u); err != nil {
		t.Fatal(err)
	}
	want := []string{"modify:2-9", "add:2-9"}
	for i, w := range want {
		if conv.calls[i] != w {
			t.Fatalf("calls = %v, want %v", conv.calls, want)
		}
	}
}

func TestNormalModifyDoesNotFallBack(t *testing.T) {
	// "If a normal modify fails, no add is attempted."
	df, conv := newTestFilter(t)
	u := &lexpress.TargetUpdate{Op: lexpress.OpModify, Key: "2-9", OldKey: "2-9", New: station("2-9")}
	_, err := df.Apply(u)
	if !errors.Is(err, device.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	for _, c := range conv.calls {
		if c == "add:2-9" {
			t.Error("normal modify fell back to add")
		}
	}
}

func TestConditionalDeleteOfAbsentIsNoOp(t *testing.T) {
	df, _ := newTestFilter(t)
	u := &lexpress.TargetUpdate{Op: lexpress.OpDelete, Conditional: true, Key: "2-9", OldKey: "2-9"}
	if _, err := df.Apply(u); err != nil {
		t.Fatalf("conditional delete errored: %v", err)
	}
	// Normal delete of absent record is an error.
	u.Conditional = false
	if _, err := df.Apply(u); !errors.Is(err, device.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestKeyMigrationBecomesDeletePlusAdd(t *testing.T) {
	// lexpress partitioning semantics: a key change migrates the record.
	df, conv := newTestFilter(t)
	conv.records["2-1"] = station("2-1")
	u := &lexpress.TargetUpdate{Op: lexpress.OpModify, Key: "3-5", OldKey: "2-1", New: station("3-5")}
	if _, err := df.Apply(u); err != nil {
		t.Fatal(err)
	}
	want := []string{"delete:2-1", "add:3-5"}
	for i, w := range want {
		if conv.calls[i] != w {
			t.Fatalf("calls = %v, want %v", conv.calls, want)
		}
	}
	if _, ok := conv.records["3-5"]; !ok {
		t.Error("migrated record missing")
	}
}

func TestApplyNilUpdateIsNoOp(t *testing.T) {
	df, conv := newTestFilter(t)
	if _, err := df.Apply(nil); err != nil {
		t.Fatal(err)
	}
	if len(conv.calls) != 0 {
		t.Error("nil update touched the device")
	}
}

func TestDescriptorFromNotification(t *testing.T) {
	df, _ := newTestFilter(t)
	n := device.Notification{
		Device: "pbx", Session: "craft", Op: lexpress.OpModify, Key: "2-1",
		Old: station("2-1"), New: station("2-1"),
	}
	d := df.DescriptorFromNotification(n)
	if d.Source != "pbx" || d.Origin != "pbx" || d.Op != lexpress.OpModify || d.Key != "2-1" {
		t.Errorf("descriptor = %+v", d)
	}
}

func TestApplyErrorsPropagate(t *testing.T) {
	df, conv := newTestFilter(t)
	conv.failAdd = fmt.Errorf("device full")
	_, err := df.Apply(&lexpress.TargetUpdate{Op: lexpress.OpAdd, Key: "2-1", New: station("2-1")})
	if err == nil || err.Error() != "device full" {
		t.Errorf("err = %v", err)
	}
}
