package filter

import (
	"fmt"
	"strings"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/lexpress"
	"metacomm/internal/mcschema"
)

// LDAPClient is the client surface the LDAP filter needs; both
// *ldapclient.Conn (network) and in-process adapters satisfy it.
type LDAPClient interface {
	Search(req *ldap.SearchRequest) ([]*ldapclient.Entry, error)
	Add(dn string, attrs []ldap.Attribute) error
	Modify(dn string, changes []ldap.Change) error
	ModifyDN(dn, newRDN string, deleteOldRDN bool) error
	Delete(dn string) error
}

// LDAPFilter applies lexpress target updates (target schema "ldap") to an
// LDAP server. On the DDU path the client points at LTAP, so every applied
// update is trapped, locked, and serialized by the Update Manager exactly
// as the paper describes (§4.4); the Update Manager itself uses a second
// instance pointed at the backing server.
type LDAPFilter struct {
	Client LDAPClient
	// Suffix is the directory suffix ("o=Lucent").
	Suffix dn.DN
	// PeopleBase is where device-discovered people are created.
	PeopleBase dn.DN
	// RDNAttr names the RDN attribute for person entries ("cn").
	RDNAttr string

	// AfterRename, when set, runs between the ModifyRDN and Modify halves
	// of a non-atomic rename pair; returning an error aborts the pair —
	// this is the §5.1 crash window, made injectable for tests.
	AfterRename func() error
}

// Name returns "ldap".
func (f *LDAPFilter) Name() string { return "ldap" }

// Locate finds the unique entry whose keyAttr equals key below the suffix.
// It returns nil when absent.
func (f *LDAPFilter) Locate(keyAttr, key string) (*ldapclient.Entry, error) {
	entries, err := f.Client.Search(&ldap.SearchRequest{
		BaseDN: f.Suffix.String(),
		Scope:  ldap.ScopeWholeSubtree,
		Filter: ldap.Eq(keyAttr, key),
	})
	if err != nil {
		return nil, err
	}
	switch len(entries) {
	case 0:
		return nil, nil
	case 1:
		return entries[0], nil
	}
	return nil, fmt.Errorf("ldapfilter: key %s=%q matches %d entries", keyAttr, key, len(entries))
}

// Apply performs a translated update against the directory. keyAttr is the
// LDAP-side key attribute of the mapping that produced u (its KeyAttrs
// target when mapping device->ldap).
func (f *LDAPFilter) Apply(u *lexpress.TargetUpdate, keyAttr string) error {
	if u == nil {
		return nil
	}
	switch u.Op {
	case lexpress.OpAdd:
		return f.applyAdd(u, keyAttr)
	case lexpress.OpModify:
		return f.applyModify(u, keyAttr)
	case lexpress.OpDelete:
		return f.applyDelete(u, keyAttr)
	}
	return fmt.Errorf("ldapfilter: unknown op %v", u.Op)
}

func (f *LDAPFilter) applyAdd(u *lexpress.TargetUpdate, keyAttr string) error {
	existing, err := f.Locate(keyAttr, u.Key)
	if err != nil {
		return err
	}
	if existing != nil {
		if u.Conditional {
			return f.modifyEntry(existing, u.Old, u.New)
		}
		return &ldap.ResultError{Result: ldap.Result{Code: ldap.ResultEntryAlreadyExists,
			Message: fmt.Sprintf("entry with %s=%s exists", keyAttr, u.Key)}}
	}
	return f.AddEntry(u.New, u.Key)
}

// AddEntry creates a person entry for img under the people base, qualifying
// the RDN with the key when the natural name is already taken by someone
// else. It is used by translated adds and by the synchronization passes
// (which already know the entry is absent).
func (f *LDAPFilter) AddEntry(img lexpress.Record, key string) error {
	err := f.AddEntryOnce(img)
	if ldap.IsCode(err, ldap.ResultEntryAlreadyExists) {
		err = f.AddEntryQualified(img, key)
	}
	return err
}

// AddEntryOnce attempts the natural-RDN add and surfaces entryAlreadyExists
// to the caller instead of retrying. The snapshot+delta sync engine uses it
// so a concurrent DDU creating the same person is detected (and converged
// against) rather than shadowed by a duplicate qualified-RDN entry.
func (f *LDAPFilter) AddEntryOnce(img lexpress.Record) error {
	rdnVal := img.First(f.RDNAttr)
	if rdnVal == "" {
		return fmt.Errorf("ldapfilter: new entry has no %s", f.RDNAttr)
	}
	name := f.PeopleBase.Child(dn.RDN{{Attr: f.RDNAttr, Value: rdnVal}})
	return f.Client.Add(name.String(), recordToAttributes(img))
}

// AddEntryQualified creates the entry under an RDN qualified with the key —
// the fallback when the natural name is already taken by a different
// person.
func (f *LDAPFilter) AddEntryQualified(img lexpress.Record, key string) error {
	rdnVal := img.First(f.RDNAttr)
	if rdnVal == "" {
		return fmt.Errorf("ldapfilter: new entry has no %s", f.RDNAttr)
	}
	name := f.PeopleBase.Child(dn.RDN{{Attr: f.RDNAttr, Value: fmt.Sprintf("%s (%s)", rdnVal, key)}})
	return f.Client.Add(name.String(), recordToAttributes(img))
}

func (f *LDAPFilter) applyModify(u *lexpress.TargetUpdate, keyAttr string) error {
	lookup := u.OldKey
	if lookup == "" {
		lookup = u.Key
	}
	existing, err := f.Locate(keyAttr, lookup)
	if err != nil {
		return err
	}
	if existing == nil && lookup != u.Key {
		existing, err = f.Locate(keyAttr, u.Key)
		if err != nil {
			return err
		}
	}
	if existing == nil {
		if u.Conditional {
			return f.applyAdd(u, keyAttr)
		}
		return &ldap.ResultError{Result: ldap.Result{Code: ldap.ResultNoSuchObject,
			Message: fmt.Sprintf("no entry with %s=%s", keyAttr, lookup)}}
	}
	return f.modifyEntry(existing, u.Old, u.New)
}

func (f *LDAPFilter) applyDelete(u *lexpress.TargetUpdate, keyAttr string) error {
	key := u.OldKey
	if key == "" {
		key = u.Key
	}
	existing, err := f.Locate(keyAttr, key)
	if err != nil {
		return err
	}
	if existing == nil {
		if u.Conditional {
			return nil
		}
		return &ldap.ResultError{Result: ldap.Result{Code: ldap.ResultNoSuchObject,
			Message: fmt.Sprintf("no entry with %s=%s", keyAttr, key)}}
	}
	// A device record disappearing does not delete the person — it clears
	// the attributes the device exclusively owns (the mapping's "owns"
	// declaration) from the entry; shared data like the telephone number
	// and the person entry itself survive.
	var changes []ldap.Change
	for _, a := range u.Owned {
		if strings.EqualFold(a, "objectclass") || strings.EqualFold(a, f.RDNAttr) {
			continue
		}
		if entryAttr(existing, a) != nil {
			changes = append(changes, ldap.Change{Op: ldap.ModDelete,
				Attribute: ldap.Attribute{Type: a}})
		}
	}
	changes = append(changes, ldap.Change{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: mcschema.AttrLastUpdater, Values: u.Old.Get(mcschema.AttrLastUpdater)}})
	if len(u.Old.Get(mcschema.AttrLastUpdater)) == 0 {
		changes = changes[:len(changes)-1]
	}
	if len(changes) == 0 {
		return nil
	}
	return f.Client.Modify(existing.DN, changes)
}

// ConvergeEntry converges an already-located entry toward the new image
// (synchronization's modify path — no key lookup needed).
func (f *LDAPFilter) ConvergeEntry(cur *ldapclient.Entry, old, new lexpress.Record) error {
	return f.modifyEntry(cur, old, new)
}

// ConvergePlan is the computed convergence for one entry: an optional
// rename followed by an optional attribute modify. Splitting planning from
// execution lets the sync engine batch many plans' Modify operations over
// pipelined connections (ldapclient.ModifyBatch) instead of paying a
// round-trip each.
type ConvergePlan struct {
	// RenameFrom/NewRDN describe the rename half when the mapping changes
	// the RDN attribute; RenameFrom == "" means no rename.
	RenameFrom string
	NewRDN     string
	// TargetDN is the entry's DN after any rename; Changes apply to it.
	TargetDN string
	Changes  []ldap.Change
}

// Empty reports whether the plan performs no operation at all.
func (p *ConvergePlan) Empty() bool { return p.RenameFrom == "" && len(p.Changes) == 0 }

// PlanConverge computes the convergence of cur toward the new image without
// executing it, limited to the attributes this mapping manages (the union
// of old/new image attrs). An RDN-attribute change becomes the paper's
// non-atomic ModifyRDN+Modify pair (§5.1), represented as the plan's rename
// half.
func (f *LDAPFilter) PlanConverge(cur *ldapclient.Entry, old, new lexpress.Record) (ConvergePlan, error) {
	var plan ConvergePlan
	curDN, err := dn.Parse(cur.DN)
	if err != nil {
		return plan, err
	}
	plan.TargetDN = cur.DN

	// Half one: the rename, when the mapping changes the RDN attribute.
	newRDNVal := new.First(f.RDNAttr)
	if newRDNVal != "" && !strings.EqualFold(curDN.FirstValue(f.RDNAttr), newRDNVal) && curDN.FirstValue(f.RDNAttr) != "" {
		newRDN := dn.RDN{{Attr: f.RDNAttr, Value: newRDNVal}}
		plan.RenameFrom = cur.DN
		plan.NewRDN = newRDN.String()
		plan.TargetDN = curDN.WithRDN(newRDN).String()
	}

	// Half two: the attribute modify.
	seen := map[string]bool{}
	for _, a := range new.Attrs() {
		seen[a] = true
		if strings.EqualFold(a, f.RDNAttr) {
			continue // handled by the rename
		}
		if strings.EqualFold(a, "objectclass") {
			// Object classes accumulate across device mappings; add the
			// missing values, never remove any.
			for _, v := range new.Get(a) {
				if !entryHasValue(cur, a, v) {
					plan.Changes = append(plan.Changes, ldap.Change{Op: ldap.ModAdd,
						Attribute: ldap.Attribute{Type: "objectClass", Values: []string{v}}})
				}
			}
			continue
		}
		if !sameStringSet(entryAttr(cur, a), new.Get(a)) {
			plan.Changes = append(plan.Changes, ldap.Change{Op: ldap.ModReplace,
				Attribute: ldap.Attribute{Type: a, Values: new.Get(a)}})
		}
	}
	if old != nil {
		for _, a := range old.Attrs() {
			if seen[a] || strings.EqualFold(a, "objectclass") || strings.EqualFold(a, f.RDNAttr) {
				continue
			}
			if entryAttr(cur, a) != nil {
				plan.Changes = append(plan.Changes, ldap.Change{Op: ldap.ModDelete,
					Attribute: ldap.Attribute{Type: a}})
			}
		}
	}
	return plan, nil
}

// ApplyConverge executes a plan: the rename (with the injectable §5.1 crash
// window between the halves), then the modify.
func (f *LDAPFilter) ApplyConverge(plan ConvergePlan) error {
	if plan.RenameFrom != "" {
		if err := f.Client.ModifyDN(plan.RenameFrom, plan.NewRDN, true); err != nil {
			return err
		}
		if f.AfterRename != nil {
			if err := f.AfterRename(); err != nil {
				return fmt.Errorf("ldapfilter: aborted between ModifyRDN and Modify: %w", err)
			}
		}
	}
	if len(plan.Changes) == 0 {
		return nil
	}
	return f.Client.Modify(plan.TargetDN, plan.Changes)
}

// modifyEntry converges an existing entry toward the new image: plan, then
// apply.
func (f *LDAPFilter) modifyEntry(cur *ldapclient.Entry, old, new lexpress.Record) error {
	plan, err := f.PlanConverge(cur, old, new)
	if err != nil {
		return err
	}
	return f.ApplyConverge(plan)
}

func recordToAttributes(rec lexpress.Record) []ldap.Attribute {
	var out []ldap.Attribute
	for _, a := range rec.Attrs() {
		out = append(out, ldap.Attribute{Type: a, Values: rec.Get(a)})
	}
	return out
}

func entryAttr(e *ldapclient.Entry, name string) []string { return e.Attr(name) }

func entryHasValue(e *ldapclient.Entry, name, value string) bool {
	for _, v := range e.Attr(name) {
		if strings.EqualFold(v, value) {
			return true
		}
	}
	return false
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, v := range a {
		count[strings.ToLower(v)]++
	}
	for _, v := range b {
		count[strings.ToLower(v)]--
		if count[strings.ToLower(v)] < 0 {
			return false
		}
	}
	return true
}
