package filter

import (
	"fmt"
	"strings"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/lexpress"
	"metacomm/internal/mcschema"
)

// LDAPClient is the client surface the LDAP filter needs; both
// *ldapclient.Conn (network) and in-process adapters satisfy it.
type LDAPClient interface {
	Search(req *ldap.SearchRequest) ([]*ldapclient.Entry, error)
	Add(dn string, attrs []ldap.Attribute) error
	Modify(dn string, changes []ldap.Change) error
	ModifyDN(dn, newRDN string, deleteOldRDN bool) error
	Delete(dn string) error
}

// LDAPFilter applies lexpress target updates (target schema "ldap") to an
// LDAP server. On the DDU path the client points at LTAP, so every applied
// update is trapped, locked, and serialized by the Update Manager exactly
// as the paper describes (§4.4); the Update Manager itself uses a second
// instance pointed at the backing server.
type LDAPFilter struct {
	Client LDAPClient
	// Suffix is the directory suffix ("o=Lucent").
	Suffix dn.DN
	// PeopleBase is where device-discovered people are created.
	PeopleBase dn.DN
	// RDNAttr names the RDN attribute for person entries ("cn").
	RDNAttr string

	// AfterRename, when set, runs between the ModifyRDN and Modify halves
	// of a non-atomic rename pair; returning an error aborts the pair —
	// this is the §5.1 crash window, made injectable for tests.
	AfterRename func() error
}

// Name returns "ldap".
func (f *LDAPFilter) Name() string { return "ldap" }

// Locate finds the unique entry whose keyAttr equals key below the suffix.
// It returns nil when absent.
func (f *LDAPFilter) Locate(keyAttr, key string) (*ldapclient.Entry, error) {
	entries, err := f.Client.Search(&ldap.SearchRequest{
		BaseDN: f.Suffix.String(),
		Scope:  ldap.ScopeWholeSubtree,
		Filter: ldap.Eq(keyAttr, key),
	})
	if err != nil {
		return nil, err
	}
	switch len(entries) {
	case 0:
		return nil, nil
	case 1:
		return entries[0], nil
	}
	return nil, fmt.Errorf("ldapfilter: key %s=%q matches %d entries", keyAttr, key, len(entries))
}

// Apply performs a translated update against the directory. keyAttr is the
// LDAP-side key attribute of the mapping that produced u (its KeyAttrs
// target when mapping device->ldap).
func (f *LDAPFilter) Apply(u *lexpress.TargetUpdate, keyAttr string) error {
	if u == nil {
		return nil
	}
	switch u.Op {
	case lexpress.OpAdd:
		return f.applyAdd(u, keyAttr)
	case lexpress.OpModify:
		return f.applyModify(u, keyAttr)
	case lexpress.OpDelete:
		return f.applyDelete(u, keyAttr)
	}
	return fmt.Errorf("ldapfilter: unknown op %v", u.Op)
}

func (f *LDAPFilter) applyAdd(u *lexpress.TargetUpdate, keyAttr string) error {
	existing, err := f.Locate(keyAttr, u.Key)
	if err != nil {
		return err
	}
	if existing != nil {
		if u.Conditional {
			return f.modifyEntry(existing, u.Old, u.New)
		}
		return &ldap.ResultError{Result: ldap.Result{Code: ldap.ResultEntryAlreadyExists,
			Message: fmt.Sprintf("entry with %s=%s exists", keyAttr, u.Key)}}
	}
	return f.AddEntry(u.New, u.Key)
}

// AddEntry creates a person entry for img under the people base, qualifying
// the RDN with the key when the natural name is already taken by someone
// else. It is used by translated adds and by the synchronization passes
// (which already know the entry is absent).
func (f *LDAPFilter) AddEntry(img lexpress.Record, key string) error {
	rdnVal := img.First(f.RDNAttr)
	if rdnVal == "" {
		return fmt.Errorf("ldapfilter: new entry has no %s", f.RDNAttr)
	}
	name := f.PeopleBase.Child(dn.RDN{{Attr: f.RDNAttr, Value: rdnVal}})
	attrs := recordToAttributes(img)
	err := f.Client.Add(name.String(), attrs)
	if ldap.IsCode(err, ldap.ResultEntryAlreadyExists) {
		// The name is taken by a different person; qualify the RDN with the
		// key to keep it unique.
		name = f.PeopleBase.Child(dn.RDN{{Attr: f.RDNAttr, Value: fmt.Sprintf("%s (%s)", rdnVal, key)}})
		err = f.Client.Add(name.String(), attrs)
	}
	return err
}

func (f *LDAPFilter) applyModify(u *lexpress.TargetUpdate, keyAttr string) error {
	lookup := u.OldKey
	if lookup == "" {
		lookup = u.Key
	}
	existing, err := f.Locate(keyAttr, lookup)
	if err != nil {
		return err
	}
	if existing == nil && lookup != u.Key {
		existing, err = f.Locate(keyAttr, u.Key)
		if err != nil {
			return err
		}
	}
	if existing == nil {
		if u.Conditional {
			return f.applyAdd(u, keyAttr)
		}
		return &ldap.ResultError{Result: ldap.Result{Code: ldap.ResultNoSuchObject,
			Message: fmt.Sprintf("no entry with %s=%s", keyAttr, lookup)}}
	}
	return f.modifyEntry(existing, u.Old, u.New)
}

func (f *LDAPFilter) applyDelete(u *lexpress.TargetUpdate, keyAttr string) error {
	key := u.OldKey
	if key == "" {
		key = u.Key
	}
	existing, err := f.Locate(keyAttr, key)
	if err != nil {
		return err
	}
	if existing == nil {
		if u.Conditional {
			return nil
		}
		return &ldap.ResultError{Result: ldap.Result{Code: ldap.ResultNoSuchObject,
			Message: fmt.Sprintf("no entry with %s=%s", keyAttr, key)}}
	}
	// A device record disappearing does not delete the person — it clears
	// the attributes the device exclusively owns (the mapping's "owns"
	// declaration) from the entry; shared data like the telephone number
	// and the person entry itself survive.
	var changes []ldap.Change
	for _, a := range u.Owned {
		if strings.EqualFold(a, "objectclass") || strings.EqualFold(a, f.RDNAttr) {
			continue
		}
		if entryAttr(existing, a) != nil {
			changes = append(changes, ldap.Change{Op: ldap.ModDelete,
				Attribute: ldap.Attribute{Type: a}})
		}
	}
	changes = append(changes, ldap.Change{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: mcschema.AttrLastUpdater, Values: u.Old.Get(mcschema.AttrLastUpdater)}})
	if len(u.Old.Get(mcschema.AttrLastUpdater)) == 0 {
		changes = changes[:len(changes)-1]
	}
	if len(changes) == 0 {
		return nil
	}
	return f.Client.Modify(existing.DN, changes)
}

// ConvergeEntry converges an already-located entry toward the new image
// (synchronization's modify path — no key lookup needed).
func (f *LDAPFilter) ConvergeEntry(cur *ldapclient.Entry, old, new lexpress.Record) error {
	return f.modifyEntry(cur, old, new)
}

// modifyEntry converges an existing entry toward the new image, limited to
// the attributes this mapping manages (the union of old/new image attrs).
// An RDN-attribute change becomes the paper's non-atomic ModifyRDN+Modify
// pair (§5.1).
func (f *LDAPFilter) modifyEntry(cur *ldapclient.Entry, old, new lexpress.Record) error {
	curDN, err := dn.Parse(cur.DN)
	if err != nil {
		return err
	}
	targetDN := cur.DN

	// Half one: the rename, when the mapping changes the RDN attribute.
	newRDNVal := new.First(f.RDNAttr)
	if newRDNVal != "" && !strings.EqualFold(curDN.FirstValue(f.RDNAttr), newRDNVal) && curDN.FirstValue(f.RDNAttr) != "" {
		newRDN := dn.RDN{{Attr: f.RDNAttr, Value: newRDNVal}}
		if err := f.Client.ModifyDN(cur.DN, newRDN.String(), true); err != nil {
			return err
		}
		targetDN = curDN.WithRDN(newRDN).String()
		if f.AfterRename != nil {
			if err := f.AfterRename(); err != nil {
				return fmt.Errorf("ldapfilter: aborted between ModifyRDN and Modify: %w", err)
			}
		}
	}

	// Half two: the attribute modify.
	var changes []ldap.Change
	seen := map[string]bool{}
	for _, a := range new.Attrs() {
		seen[a] = true
		if strings.EqualFold(a, f.RDNAttr) {
			continue // handled by the rename
		}
		if strings.EqualFold(a, "objectclass") {
			// Object classes accumulate across device mappings; add the
			// missing values, never remove any.
			for _, v := range new.Get(a) {
				if !entryHasValue(cur, a, v) {
					changes = append(changes, ldap.Change{Op: ldap.ModAdd,
						Attribute: ldap.Attribute{Type: "objectClass", Values: []string{v}}})
				}
			}
			continue
		}
		if !sameStringSet(entryAttr(cur, a), new.Get(a)) {
			changes = append(changes, ldap.Change{Op: ldap.ModReplace,
				Attribute: ldap.Attribute{Type: a, Values: new.Get(a)}})
		}
	}
	if old != nil {
		for _, a := range old.Attrs() {
			if seen[a] || strings.EqualFold(a, "objectclass") || strings.EqualFold(a, f.RDNAttr) {
				continue
			}
			if entryAttr(cur, a) != nil {
				changes = append(changes, ldap.Change{Op: ldap.ModDelete,
					Attribute: ldap.Attribute{Type: a}})
			}
		}
	}
	if len(changes) == 0 {
		return nil
	}
	return f.Client.Modify(targetDN, changes)
}

func recordToAttributes(rec lexpress.Record) []ldap.Attribute {
	var out []ldap.Attribute
	for _, a := range rec.Attrs() {
		out = append(out, ldap.Attribute{Type: a, Values: rec.Get(a)})
	}
	return out
}

func entryAttr(e *ldapclient.Entry, name string) []string { return e.Attr(name) }

func entryHasValue(e *ldapclient.Entry, name, value string) bool {
	for _, v := range e.Attr(name) {
		if strings.EqualFold(v, value) {
			return true
		}
	}
	return false
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, v := range a {
		count[strings.ToLower(v)]++
	}
	for _, v := range b {
		count[strings.ToLower(v)]--
		if count[strings.ToLower(v)] < 0 {
			return false
		}
	}
	return true
}
