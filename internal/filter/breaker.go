package filter

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// Breaker states. Closed passes traffic; Open rejects it outright; HalfOpen
// admits exactly one probe to test whether the device recovered.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a circuit breaker around one device's administration link.
// While closed, operations flow; Threshold consecutive failures trip it
// open. An open breaker rejects operations until its open window elapses,
// then goes half-open and lets a single probe through: the probe's outcome
// either closes the breaker or re-opens it with a doubled window (capped at
// MaxDelay, jittered ±25% so recovering devices are not hit by
// synchronized probes).
type Breaker struct {
	mu        sync.Mutex
	threshold int
	baseDelay time.Duration
	maxDelay  time.Duration

	state     BreakerState
	fails     int           // consecutive failures while closed
	openDelay time.Duration // current open window (escalates per trip)
	probeAt   time.Time     // when an open breaker next admits a probe
	trips     uint64

	// now is replaceable for tests.
	now func() time.Time
}

// NewBreaker builds a breaker. threshold <= 0 means 3 consecutive failures;
// base <= 0 means 50ms; max <= 0 means 5s.
func NewBreaker(threshold int, base, max time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if max < base {
		max = base
	}
	return &Breaker{threshold: threshold, baseDelay: base, maxDelay: max, now: time.Now}
}

// SetClock replaces the breaker's time source (tests drive state
// transitions deterministically with a fake clock).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// Allow reports whether an operation may proceed. A closed breaker always
// allows; an open one allows only once its window elapsed, transitioning to
// half-open — that caller is the probe, and every other caller is rejected
// until the probe resolves via Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Before(b.probeAt) {
			return false
		}
		b.state = BreakerHalfOpen
		return true
	default: // half-open: a probe is already in flight
		return false
	}
}

// Success records a successful operation: the breaker closes and the
// escalation resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.openDelay = 0
}

// Failure records a failed operation. While closed it counts consecutive
// failures and trips at the threshold; a half-open probe failure re-opens
// immediately with an escalated window.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
	case BreakerOpen:
		// Failure from a caller admitted before the trip; the window stands.
	}
}

// trip opens the breaker with the next escalation step. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.fails = 0
	b.trips++
	if b.openDelay == 0 {
		b.openDelay = b.baseDelay
	} else if b.openDelay *= 2; b.openDelay > b.maxDelay {
		b.openDelay = b.maxDelay
	}
	b.probeAt = b.now().Add(jitter(b.openDelay))
}

// State returns the breaker's current position. An elapsed open window
// still reports open — the transition to half-open happens in Allow, when a
// probe actually goes out.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// ProbeAt returns when an open breaker admits its next probe (zero time
// when not open).
func (b *Breaker) ProbeAt() time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return time.Time{}
	}
	return b.probeAt
}

// jitter spreads d over [0.75d, 1.25d].
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d*3/4 + time.Duration(rand.Int63n(int64(d)/2+1))
}
