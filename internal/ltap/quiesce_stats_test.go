package ltap

import (
	"testing"
	"time"

	"metacomm/internal/ldap"
	"metacomm/internal/ldapserver"
)

// TestQuiesceAccounting: the gateway counts quiesce windows, their total
// duration (including an in-progress window), and the updates they delayed —
// the synchronization pass's update-rejection cost made observable.
func TestQuiesceAccounting(t *testing.T) {
	d := testDIT(t)
	g := NewGateway(&LocalBackend{DIT: d}, &recordingAction{})
	if s := g.Stats(); s.Quiesces != 0 || s.QuiesceNs != 0 || s.UpdatesDelayedByQuiesce != 0 {
		t.Fatalf("fresh gateway stats = %+v", s)
	}

	if !g.Quiesce() {
		t.Fatal("quiesce failed")
	}
	conn := &ldapserver.Conn{}
	done := make(chan ldap.Result, 1)
	go func() {
		done <- g.Delete(conn, &ldap.DeleteRequest{DN: "cn=John Doe,o=Lucent"})
	}()
	// Wait until the delete has parked on the quiesce gate.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s := g.Stats(); s.UpdatesDelayedByQuiesce == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("delayed update never counted")
		}
		time.Sleep(time.Millisecond)
	}
	mid := g.Stats()
	if mid.Quiesces != 1 {
		t.Errorf("Quiesces = %d, want 1", mid.Quiesces)
	}
	if mid.QuiesceNs == 0 {
		t.Error("in-progress quiesce window not counted")
	}

	g.Unquiesce()
	if r := <-done; r.Code != ldap.ResultSuccess {
		t.Fatalf("post-quiesce update = %+v", r)
	}
	after := g.Stats()
	if after.QuiesceNs < mid.QuiesceNs {
		t.Errorf("QuiesceNs went backward: %d -> %d", mid.QuiesceNs, after.QuiesceNs)
	}

	// A second window bumps the count; the delayed counter is cumulative.
	if !g.Quiesce() {
		t.Fatal("second quiesce failed")
	}
	g.Unquiesce()
	final := g.Stats()
	if final.Quiesces != 2 || final.UpdatesDelayedByQuiesce != 1 {
		t.Errorf("final stats = %+v, want Quiesces=2 UpdatesDelayed=1", final)
	}
}
