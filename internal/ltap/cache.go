package ltap

import (
	"strings"
	"sync"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/lexpress"
)

// BeforeImageCache keeps the gateway's before-images of backing-server
// entries so that trapping an update does not require a round-trip per
// operation. The trap path (fetchOld) consults the cache first; a miss falls
// through to the backend and the fetched image is written through.
//
// Coherence comes from the directory changelog: AttachChangelog subscribes
// the cache to the backing DIT's committed-update stream and every Lookup
// drains pending records before reading. Because the directory emits records
// synchronously at commit, and all updates to an entry commit while the
// gateway holds that entry's LTAP lock, any record affecting an entry is
// already in the channel by the time a later trap for the same entry drains —
// the cached image a Lookup returns is never older than the last committed
// update. Modify records are applied to cached images (not discarded) so the
// cache stays warm under repeated writes to the same entry, which is the
// dominant trap-path pattern.
//
// Without a changelog (e.g. a remote backend that is not the in-process
// DIT), the gateway falls back to invalidating written entries on the trap
// path itself; entries changed behind the gateway's back are then stale until
// the next invalidation, so the changelog hookup is strongly preferred.
type BeforeImageCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]lexpress.Record

	source  *directory.DIT
	changes <-chan directory.UpdateRecord
	cancel  func()

	hits, misses, invalidations, resyncs, evictions uint64
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Size          int
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	// Resyncs counts changelog overflows that forced a flush + resubscribe.
	Resyncs   uint64
	Evictions uint64
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// NewBeforeImageCache returns a cache holding at most max entries (<=0 picks
// a default).
func NewBeforeImageCache(max int) *BeforeImageCache {
	if max <= 0 {
		max = 4096
	}
	return &BeforeImageCache{max: max, entries: make(map[string]lexpress.Record)}
}

// AttachChangelog subscribes the cache to the DIT's committed-update stream
// and warm-starts it from the subscription snapshot. Call before serving.
func (c *BeforeImageCache) AttachChangelog(d *directory.DIT) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancel != nil {
		c.cancel()
	}
	c.source = d
	c.subscribeLocked()
}

// subscribeLocked (re)subscribes and loads the snapshot, up to capacity.
func (c *BeforeImageCache) subscribeLocked() {
	snapshot, changes, cancel := c.source.SnapshotAndSubscribe(0)
	c.changes, c.cancel = changes, cancel
	for _, e := range snapshot {
		if len(c.entries) >= c.max {
			break
		}
		c.entries[e.DN.Normalize()] = recordFromAttrs(e.Attrs.Map())
	}
}

// ChangelogAttached reports whether the cache is coherent via the changelog.
func (c *BeforeImageCache) ChangelogAttached() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.changes != nil
}

// Close cancels the changelog subscription.
func (c *BeforeImageCache) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
		c.changes = nil
		c.source = nil
	}
}

// Lookup returns a copy of the cached image of name. It first drains any
// pending changelog records so the answer reflects every committed update.
func (c *BeforeImageCache) Lookup(name string) (lexpress.Record, bool) {
	parsed, err := dn.Parse(name)
	if err != nil {
		return nil, false
	}
	key := parsed.Normalize()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainLocked()
	if rec, ok := c.entries[key]; ok {
		c.hits++
		return rec.Clone(), true
	}
	c.misses++
	return nil, false
}

// Store writes through an image fetched from the backend. The caller must
// hold the entry's LTAP lock (the trap path does), which guarantees the
// image cannot be stale relative to undrained changelog records.
func (c *BeforeImageCache) Store(name string, rec lexpress.Record) {
	parsed, err := dn.Parse(name)
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeLocked(parsed.Normalize(), rec.Clone())
}

// Invalidate drops name and everything under it (trap-path coherence when no
// changelog is attached; subtree semantics cover ModifyDN renames).
func (c *BeforeImageCache) Invalidate(name string) {
	parsed, err := dn.Parse(name)
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidateSubtreeLocked(parsed.Normalize())
}

// Stats returns a counter snapshot.
func (c *BeforeImageCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size: len(c.entries), Hits: c.hits, Misses: c.misses,
		Invalidations: c.invalidations, Resyncs: c.resyncs, Evictions: c.evictions,
	}
}

// drainLocked applies every pending changelog record. A closed channel means
// the subscription overflowed: flush everything and resync from a fresh
// snapshot.
func (c *BeforeImageCache) drainLocked() {
	if c.changes == nil {
		return
	}
	for {
		select {
		case rec, ok := <-c.changes:
			if !ok {
				c.entries = make(map[string]lexpress.Record)
				c.resyncs++
				c.subscribeLocked()
				return
			}
			c.applyLocked(rec)
		default:
			return
		}
	}
}

// applyLocked folds one committed update into the cache.
func (c *BeforeImageCache) applyLocked(rec directory.UpdateRecord) {
	parsed, err := dn.Parse(rec.DN)
	if err != nil {
		return
	}
	key := parsed.Normalize()
	switch rec.Op {
	case "add", "entry":
		c.storeLocked(key, recordFromAttrs(rec.Attrs))
	case "delete":
		if _, ok := c.entries[key]; ok {
			delete(c.entries, key)
			c.invalidations++
		}
	case "modify":
		cached, ok := c.entries[key]
		if !ok {
			return // cold entry stays cold until the trap path faults it in
		}
		for _, ch := range rec.Changes {
			applyChange(cached, ch)
		}
	case "modifydn":
		// A rename moves the whole subtree; drop the old names and let the
		// new ones fault in on first use.
		c.invalidateSubtreeLocked(key)
	default:
		// Unknown record shape: the safe reaction is a full flush.
		c.entries = make(map[string]lexpress.Record)
		c.invalidations++
	}
}

// applyChange mirrors the DIT's modify semantics on a cached record.
func applyChange(rec lexpress.Record, ch directory.UpdateChange) {
	switch ch.Op {
	case "replace":
		rec.Set(ch.Attr, ch.Values...)
	case "add":
		have := rec.Get(ch.Attr)
		merged := append(append([]string(nil), have...), missingValues(have, ch.Values)...)
		rec.Set(ch.Attr, merged...)
	case "delete":
		if len(ch.Values) == 0 {
			rec.Set(ch.Attr) // removes the attribute
			return
		}
		kept := missingValues(ch.Values, rec.Get(ch.Attr))
		rec.Set(ch.Attr, kept...)
	}
}

// missingValues returns the values in vs that are not in have.
func missingValues(have, vs []string) []string {
	var out []string
	for _, v := range vs {
		found := false
		for _, h := range have {
			if h == v {
				found = true
				break
			}
		}
		if !found {
			out = append(out, v)
		}
	}
	return out
}

func (c *BeforeImageCache) storeLocked(key string, rec lexpress.Record) {
	if _, ok := c.entries[key]; !ok && len(c.entries) >= c.max {
		for k := range c.entries {
			delete(c.entries, k)
			c.evictions++
			break
		}
	}
	c.entries[key] = rec
}

func (c *BeforeImageCache) invalidateSubtreeLocked(key string) {
	suffix := "," + key
	for k := range c.entries {
		if k == key || strings.HasSuffix(k, suffix) {
			delete(c.entries, k)
			c.invalidations++
		}
	}
}

// recordFromAttrs builds a Record from a directory attribute map.
func recordFromAttrs(m map[string][]string) lexpress.Record {
	rec := make(lexpress.Record, len(m))
	for k, vs := range m {
		rec.Set(k, vs...)
	}
	return rec
}
