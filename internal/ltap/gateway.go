package ltap

import (
	"sync/atomic"
	"time"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/ldapserver"
	"metacomm/internal/lexpress"
)

// Extended-operation OIDs for the quiesce facility (private-enterprise arc
// chosen for the prototype).
const (
	OIDQuiesceBegin = "1.3.6.1.4.1.1751.2.1"
	OIDQuiesceEnd   = "1.3.6.1.4.1.1751.2.2"
)

// Backend abstracts the real LDAP server behind the gateway. It matches the
// subset of ldapclient.Conn the gateway needs, so the gateway can run over a
// network connection (gateway mode) or directly on a server handler wrapped
// in-process (library mode).
type Backend interface {
	Bind(name, password string) error
	Search(req *ldap.SearchRequest) ([]*ldapclient.Entry, error)
	Compare(dn, attr, value string) (bool, error)
}

// Gateway is the LTAP proxy: an ldapserver.Handler that forwards reads to
// the backing LDAP server and traps updates, locking the target entries and
// invoking the trigger action (the Update Manager) which services them.
//
// Read traffic never touches the action server — LDAP workloads are heavily
// read-oriented, and keeping reads off the UM machine is the scalability
// argument of §5.5.
type Gateway struct {
	backend  Backend
	action   Action
	locks    *lockTable
	nextID   atomic.Uint64
	triggers triggerSet
	cache    *BeforeImageCache

	searches       atomic.Uint64
	searchNs       atomic.Uint64
	updates        atomic.Uint64
	backendFetch   atomic.Uint64
	backendFetchNs atomic.Uint64

	// AdminDN may quiesce/unquiesce via extended operations ("" disables
	// the check, prototype mode).
	AdminDN string
}

// GatewayStats is a point-in-time snapshot of the gateway's read-path and
// trap-path counters.
type GatewayStats struct {
	// Searches / SearchNs cover proxied client reads.
	Searches uint64
	SearchNs uint64
	// Updates counts trapped update operations.
	Updates uint64
	// BackendFetches / BackendFetchNs cover before-image fetches that went
	// to the backend (cache misses, or all fetches without a cache).
	BackendFetches uint64
	BackendFetchNs uint64
	// Quiesces / QuiesceNs count the quiesce windows and their total wall
	// time; UpdatesDelayedByQuiesce counts update operations that had to
	// wait out a window.
	Quiesces                uint64
	QuiesceNs               uint64
	UpdatesDelayedByQuiesce uint64
	Cache                   CacheStats
	CacheEnabled            bool
}

var _ ldapserver.Handler = (*Gateway)(nil)

// NewGateway builds a gateway over a backend with the given action server.
func NewGateway(backend Backend, action Action) *Gateway {
	return &Gateway{backend: backend, action: action, locks: newLockTable()}
}

// UseCache installs a before-image cache on the trap path. Call before
// serving.
func (g *Gateway) UseCache(c *BeforeImageCache) { g.cache = c }

// Stats snapshots the gateway's counters.
func (g *Gateway) Stats() GatewayStats {
	s := GatewayStats{
		Searches:       g.searches.Load(),
		SearchNs:       g.searchNs.Load(),
		Updates:        g.updates.Load(),
		BackendFetches: g.backendFetch.Load(),
		BackendFetchNs: g.backendFetchNs.Load(),
	}
	s.Quiesces, s.QuiesceNs, s.UpdatesDelayedByQuiesce = g.locks.quiesceStats()
	if g.cache != nil {
		s.CacheEnabled = true
		s.Cache = g.cache.Stats()
	}
	return s
}

// Quiesce enters quiesce mode: blocks until in-flight updates drain, then
// disallows updates until Unquiesce. It reports whether the transition
// happened (false when already quiesced).
func (g *Gateway) Quiesce() bool { return g.locks.beginQuiesce() }

// Unquiesce leaves quiesce mode.
func (g *Gateway) Unquiesce() { g.locks.endQuiesce() }

// Quiesced reports quiesce state.
func (g *Gateway) Quiesced() bool { return g.locks.quiesced() }

// LockEntry acquires the per-entry LTAP lock directly (used by the UM for
// update sequences that originate at devices). Release with the returned
// function.
func (g *Gateway) LockEntry(names ...dn.DN) func() {
	keys := g.locks.lockEntries(names...)
	return func() { g.locks.unlockEntries(keys) }
}

// Bind forwards authentication to the backing server.
func (g *Gateway) Bind(c *ldapserver.Conn, req *ldap.BindRequest) ldap.Result {
	if err := g.backend.Bind(req.Name, req.Password); err != nil {
		return resultFromErr(err)
	}
	return ldap.Result{Code: ldap.ResultSuccess}
}

// Search proxies reads straight through.
func (g *Gateway) Search(c *ldapserver.Conn, req *ldap.SearchRequest, send func(*ldap.SearchResultEntry) error) ldap.Result {
	start := time.Now()
	entries, err := g.backend.Search(req)
	g.searches.Add(1)
	g.searchNs.Add(uint64(time.Since(start)))
	if err != nil && len(entries) == 0 {
		return resultFromErr(err)
	}
	for _, e := range entries {
		if sendErr := send(&ldap.SearchResultEntry{DN: e.DN, Attributes: e.Attributes}); sendErr != nil {
			return ldap.Result{Code: ldap.ResultOther, Message: sendErr.Error()}
		}
	}
	if err != nil {
		return resultFromErr(err)
	}
	return ldap.Result{Code: ldap.ResultSuccess}
}

// Compare proxies straight through.
func (g *Gateway) Compare(c *ldapserver.Conn, req *ldap.CompareRequest) ldap.Result {
	match, err := g.backend.Compare(req.DN, req.Attr, req.Value)
	if err != nil {
		return resultFromErr(err)
	}
	if match {
		return ldap.Result{Code: ldap.ResultCompareTrue}
	}
	return ldap.Result{Code: ldap.ResultCompareFalse}
}

func resultFromErr(err error) ldap.Result {
	if re, ok := err.(*ldap.ResultError); ok {
		return re.Result
	}
	return ldap.Result{Code: ldap.ResultOther, Message: err.Error()}
}

// fetchOld resolves the entry's current attributes: from the before-image
// cache when warm, falling back to a base-scope search against the backing
// server (and writing the result through).
func (g *Gateway) fetchOld(name string) lexpress.Record {
	if g.cache != nil {
		if rec, ok := g.cache.Lookup(name); ok {
			return rec
		}
	}
	start := time.Now()
	entries, err := g.backend.Search(&ldap.SearchRequest{
		BaseDN: name,
		Scope:  ldap.ScopeBaseObject,
	})
	g.backendFetch.Add(1)
	g.backendFetchNs.Add(uint64(time.Since(start)))
	if err != nil || len(entries) != 1 {
		return nil
	}
	rec := lexpress.NewRecord()
	for _, a := range entries[0].Attributes {
		rec.Set(a.Type, a.Values...)
	}
	if g.cache != nil {
		g.cache.Store(name, rec)
	}
	return rec
}

// trap locks the involved entries, resolves the before-image, and hands the
// event to the action server.
func (g *Gateway) trap(c *ldapserver.Conn, ev Event, names ...dn.DN) ldap.Result {
	keys := g.locks.lockEntries(names...)
	g.updates.Add(1)
	ev.ID = g.nextID.Add(1)
	ev.BoundDN = c.BoundDN
	ev.Old = g.fetchOld(ev.DN)
	res := g.action.OnUpdate(ev)
	// Without changelog coherence the cache must not outlive the write: drop
	// every entry this update touched before releasing the locks. (With the
	// changelog attached, the commit's record reaches the cache first.)
	if g.cache != nil && res.Code == ldap.ResultSuccess && !g.cache.ChangelogAttached() {
		for _, n := range names {
			g.cache.Invalidate(n.String())
		}
	}
	g.locks.unlockEntries(keys)
	// Post-update triggers fire outside the locks, asynchronously.
	g.fireTriggers(ev, res, names[0])
	return res
}

// Add traps an add request.
func (g *Gateway) Add(c *ldapserver.Conn, req *ldap.AddRequest) ldap.Result {
	name, err := dn.Parse(req.DN)
	if err != nil {
		return ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: err.Error()}
	}
	attrs := lexpress.NewRecord()
	for _, a := range req.Attributes {
		attrs.Set(a.Type, a.Values...)
	}
	return g.trap(c, Event{Kind: EventAdd, DN: req.DN, Attrs: attrs}, name)
}

// Delete traps a delete request.
func (g *Gateway) Delete(c *ldapserver.Conn, req *ldap.DeleteRequest) ldap.Result {
	name, err := dn.Parse(req.DN)
	if err != nil {
		return ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: err.Error()}
	}
	return g.trap(c, Event{Kind: EventDelete, DN: req.DN}, name)
}

// Modify traps a modify request.
func (g *Gateway) Modify(c *ldapserver.Conn, req *ldap.ModifyRequest) ldap.Result {
	name, err := dn.Parse(req.DN)
	if err != nil {
		return ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: err.Error()}
	}
	return g.trap(c, Event{Kind: EventModify, DN: req.DN, Changes: ChangesFromLDAP(req.Changes)}, name)
}

// ModifyDN traps a modifyDN request, locking both the old and the new name
// so concurrent operations against either block until the rename settles.
func (g *Gateway) ModifyDN(c *ldapserver.Conn, req *ldap.ModifyDNRequest) ldap.Result {
	name, err := dn.Parse(req.DN)
	if err != nil {
		return ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: err.Error()}
	}
	newRDN, err := dn.Parse(req.NewRDN)
	if err != nil || newRDN.Depth() != 1 {
		return ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: "bad newRDN"}
	}
	newName := name.WithRDN(newRDN.RDN())
	return g.trap(c, Event{
		Kind: EventModifyDN, DN: req.DN,
		NewRDN: req.NewRDN, DeleteOldRDN: req.DeleteOldRDN,
	}, name, newName)
}

// Extended services the quiesce facility.
func (g *Gateway) Extended(c *ldapserver.Conn, req *ldap.ExtendedRequest) *ldap.ExtendedResponse {
	switch req.Name {
	case OIDQuiesceBegin, OIDQuiesceEnd:
		if g.AdminDN != "" && c.BoundDN != g.AdminDN {
			return &ldap.ExtendedResponse{Result: ldap.Result{
				Code: ldap.ResultInsufficientAccess, Message: "quiesce requires admin bind"}}
		}
		if req.Name == OIDQuiesceBegin {
			if !g.Quiesce() {
				return &ldap.ExtendedResponse{Name: req.Name, Result: ldap.Result{
					Code: ldap.ResultUnwillingToPerform, Message: "already quiesced"}}
			}
		} else {
			g.Unquiesce()
		}
		return &ldap.ExtendedResponse{Name: req.Name, Result: ldap.Result{Code: ldap.ResultSuccess}}
	}
	return &ldap.ExtendedResponse{Result: ldap.Result{
		Code: ldap.ResultProtocolError, Message: "unsupported extended operation " + req.Name}}
}
