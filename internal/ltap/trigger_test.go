package ltap

import (
	"sync"
	"testing"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapserver"
)

// firedLog collects trigger invocations.
type firedLog struct {
	mu    sync.Mutex
	calls []Event
}

func (l *firedLog) fn(ev Event, res ldap.Result) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.calls = append(l.calls, ev)
}

func (l *firedLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.calls)
}

func okAction() Action {
	return ActionFunc(func(Event) ldap.Result { return ldap.Result{Code: ldap.ResultSuccess} })
}

func failAction() Action {
	return ActionFunc(func(Event) ldap.Result {
		return ldap.Result{Code: ldap.ResultUnwillingToPerform}
	})
}

func modify(g *Gateway, name string) ldap.Result {
	return g.Modify(&ldapserver.Conn{}, &ldap.ModifyRequest{
		DN: name,
		Changes: []ldap.Change{{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"x"}}}},
	})
}

func TestTriggerFiresOnMatchingUpdate(t *testing.T) {
	g := NewGateway(&LocalBackend{DIT: testDIT(t)}, okAction())
	log := &firedLog{}
	g.RegisterTrigger(dn.MustParse("o=Lucent"), []EventKind{EventModify}, log.fn)

	modify(g, "cn=John Doe,o=Lucent")
	g.WaitTriggers()
	if log.count() != 1 {
		t.Fatalf("fired %d times", log.count())
	}
	// Wrong kind: a delete does not fire a modify trigger.
	g.Delete(&ldapserver.Conn{}, &ldap.DeleteRequest{DN: "cn=John Doe,o=Lucent"})
	g.WaitTriggers()
	if log.count() != 1 {
		t.Fatalf("delete fired a modify trigger")
	}
}

func TestTriggerSubtreeScoping(t *testing.T) {
	g := NewGateway(&LocalBackend{DIT: testDIT(t)}, okAction())
	log := &firedLog{}
	g.RegisterTrigger(dn.MustParse("o=SomewhereElse"), nil, log.fn)
	modify(g, "cn=John Doe,o=Lucent")
	g.WaitTriggers()
	if log.count() != 0 {
		t.Fatal("out-of-scope trigger fired")
	}
}

func TestTriggerAllKindsAndWholeTree(t *testing.T) {
	g := NewGateway(&LocalBackend{DIT: testDIT(t)}, okAction())
	log := &firedLog{}
	g.RegisterTrigger(dn.DN{}, nil, log.fn)
	modify(g, "cn=John Doe,o=Lucent")
	g.Delete(&ldapserver.Conn{}, &ldap.DeleteRequest{DN: "cn=John Doe,o=Lucent"})
	g.WaitTriggers()
	if log.count() != 2 {
		t.Fatalf("fired %d times, want 2", log.count())
	}
}

func TestTriggerSkipsFailuresUnlessRequested(t *testing.T) {
	g := NewGateway(&LocalBackend{DIT: testDIT(t)}, failAction())
	normal := &firedLog{}
	audit := &firedLog{}
	g.RegisterTrigger(dn.DN{}, nil, normal.fn)
	g.RegisterFailureTrigger(dn.DN{}, nil, audit.fn)
	modify(g, "cn=John Doe,o=Lucent")
	g.WaitTriggers()
	if normal.count() != 0 {
		t.Error("normal trigger fired on failure")
	}
	if audit.count() != 1 {
		t.Error("failure trigger did not fire")
	}
}

func TestUnregisterTrigger(t *testing.T) {
	g := NewGateway(&LocalBackend{DIT: testDIT(t)}, okAction())
	log := &firedLog{}
	id := g.RegisterTrigger(dn.DN{}, nil, log.fn)
	if !g.UnregisterTrigger(id) {
		t.Fatal("unregister failed")
	}
	if g.UnregisterTrigger(id) {
		t.Fatal("double unregister succeeded")
	}
	modify(g, "cn=John Doe,o=Lucent")
	g.WaitTriggers()
	if log.count() != 0 {
		t.Fatal("unregistered trigger fired")
	}
}

func TestTriggerSeesEventDetails(t *testing.T) {
	g := NewGateway(&LocalBackend{DIT: testDIT(t)}, okAction())
	log := &firedLog{}
	g.RegisterTrigger(dn.DN{}, nil, log.fn)
	modify(g, "cn=John Doe,o=Lucent")
	g.WaitTriggers()
	ev := log.calls[0]
	if ev.Kind != EventModify || ev.DN != "cn=John Doe,o=Lucent" {
		t.Errorf("event = %+v", ev)
	}
	if ev.Old == nil || ev.Old.First("telephoneNumber") == "" {
		t.Error("trigger event missing old image")
	}
}
