package ltap

import (
	"sync"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

// This file adds LTAP's general trigger facility: beyond the single action
// server that *services* updates (MetaComm's Update Manager), applications
// can register classic post-update triggers — notifications fired after an
// update under a subtree succeeds. The LTAP paper positions the gateway as
// "a portable solution to add active functionality to LDAP servers"; the
// UM is one consumer, audit logs and cache invalidation are others.

// TriggerFunc receives the event and the action's result after a
// successful update. It runs on its own goroutine; LTAP does not wait.
type TriggerFunc func(ev Event, res ldap.Result)

// trigger is one registration.
type trigger struct {
	id    int
	base  string // normalized subtree root ("" = everything)
	baseD dn.DN
	kinds map[EventKind]bool // nil = all kinds
	fn    TriggerFunc
	// onFailure also fires the trigger for non-success results.
	onFailure bool
}

type triggerSet struct {
	mu     sync.Mutex
	nextID int
	regs   []*trigger
	wg     sync.WaitGroup
}

// RegisterTrigger installs a post-update trigger for updates under base
// (empty DN = the whole tree) of the given kinds (none = all). It returns
// an id for UnregisterTrigger.
func (g *Gateway) RegisterTrigger(base dn.DN, kinds []EventKind, fn TriggerFunc) int {
	return g.registerTrigger(base, kinds, fn, false)
}

// RegisterFailureTrigger additionally fires on failed updates (for audit
// trails that must record rejected operations too).
func (g *Gateway) RegisterFailureTrigger(base dn.DN, kinds []EventKind, fn TriggerFunc) int {
	return g.registerTrigger(base, kinds, fn, true)
}

func (g *Gateway) registerTrigger(base dn.DN, kinds []EventKind, fn TriggerFunc, onFailure bool) int {
	g.triggers.mu.Lock()
	defer g.triggers.mu.Unlock()
	g.triggers.nextID++
	t := &trigger{
		id:        g.triggers.nextID,
		base:      base.Normalize(),
		baseD:     base,
		fn:        fn,
		onFailure: onFailure,
	}
	if len(kinds) > 0 {
		t.kinds = map[EventKind]bool{}
		for _, k := range kinds {
			t.kinds[k] = true
		}
	}
	g.triggers.regs = append(g.triggers.regs, t)
	return t.id
}

// UnregisterTrigger removes a registration; it reports whether it existed.
func (g *Gateway) UnregisterTrigger(id int) bool {
	g.triggers.mu.Lock()
	defer g.triggers.mu.Unlock()
	for i, t := range g.triggers.regs {
		if t.id == id {
			g.triggers.regs = append(g.triggers.regs[:i], g.triggers.regs[i+1:]...)
			return true
		}
	}
	return false
}

// WaitTriggers blocks until all in-flight trigger invocations return
// (deterministic teardown and tests).
func (g *Gateway) WaitTriggers() { g.triggers.wg.Wait() }

// fireTriggers dispatches the event to matching registrations. Called after
// the action returns, outside the entry locks.
func (g *Gateway) fireTriggers(ev Event, res ldap.Result, target dn.DN) {
	success := res.Code == ldap.ResultSuccess
	g.triggers.mu.Lock()
	var matched []*trigger
	for _, t := range g.triggers.regs {
		if !success && !t.onFailure {
			continue
		}
		if t.kinds != nil && !t.kinds[ev.Kind] {
			continue
		}
		if t.base != "" && target.Normalize() != t.base && !target.IsDescendantOf(t.baseD) {
			continue
		}
		matched = append(matched, t)
	}
	g.triggers.mu.Unlock()
	for _, t := range matched {
		g.triggers.wg.Add(1)
		go func(t *trigger) {
			defer g.triggers.wg.Done()
			t.fn(ev, res)
		}(t)
	}
}
