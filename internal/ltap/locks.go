// Package ltap implements the Lightweight Trigger Access Process of the
// paper (§4.3, and the companion paper [19]): a gateway that pretends to be
// an LDAP server, intercepts LDAP commands, performs trigger processing in
// addition to (or instead of) servicing the original command, and provides
// the locking facilities the underlying repositories lack.
//
// MetaComm-specific extensions reproduced here (paper §5.1):
//
//   - persistent connections from LTAP to the trigger action server, so a
//     synchronization request can flow as a sequence of updates rather than
//     one update per connection;
//   - a quiesce facility that disallows all updates while a synchronization
//     request is being processed, giving synchronization isolation.
//
// LTAP can run as a network gateway (its own LDAP listener, action server
// reached over TCP) or be bound into an application as a library; §5.5
// discusses the trade-off and benchmark E9 measures it.
package ltap

import (
	"sync"
	"time"

	"metacomm/internal/dn"
)

// lockTable provides per-entry exclusive locks keyed by normalized DN, plus
// a global quiesce mode that blocks all update locking. Lock acquisition
// blocks (updates to an entry being trigger-processed wait their turn, as
// do all updates during quiesce).
type lockTable struct {
	mu      sync.Mutex
	cond    *sync.Cond
	held    map[string]bool
	quiesce bool
	// updates counts update locks currently held; quiesce waits for them
	// to drain.
	updates int

	// Quiesce-window accounting: how often the table quiesced, the total
	// wall time spent quiesced, and how many update lock acquisitions had
	// to wait out a quiesce window. The snapshot+delta sync engine's whole
	// point is shrinking these numbers.
	quiesces       uint64
	quiesceNs      uint64
	updatesDelayed uint64
	quiesceStart   time.Time
}

func newLockTable() *lockTable {
	t := &lockTable{held: map[string]bool{}}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// lockEntry blocks until the entry lock (and non-quiesced state) is
// acquired. Multiple DNs must be locked in normalized order by the caller
// to avoid deadlock; lockEntries does that.
func (t *lockTable) lockEntries(names ...dn.DN) []string {
	keys := normalizeSorted(names)
	t.mu.Lock()
	defer t.mu.Unlock()
	delayed := false
	for {
		if !t.quiesce && t.allFree(keys) {
			break
		}
		if t.quiesce && !delayed {
			delayed = true
			t.updatesDelayed++
		}
		t.cond.Wait()
	}
	for _, k := range keys {
		t.held[k] = true
	}
	t.updates++
	return keys
}

func (t *lockTable) allFree(keys []string) bool {
	for _, k := range keys {
		if t.held[k] {
			return false
		}
	}
	return true
}

// unlockEntries releases locks returned by lockEntries.
func (t *lockTable) unlockEntries(keys []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range keys {
		delete(t.held, k)
	}
	t.updates--
	t.cond.Broadcast()
}

// beginQuiesce blocks new update locks and waits for in-flight updates to
// drain. It returns false if the table is already quiesced.
func (t *lockTable) beginQuiesce() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.quiesce {
		return false
	}
	t.quiesce = true
	t.quiesces++
	t.quiesceStart = time.Now()
	for t.updates > 0 {
		t.cond.Wait()
	}
	return true
}

// endQuiesce re-enables updates.
func (t *lockTable) endQuiesce() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.quiesce {
		t.quiesceNs += uint64(time.Since(t.quiesceStart))
	}
	t.quiesce = false
	t.cond.Broadcast()
}

// quiesced reports the quiesce state.
func (t *lockTable) quiesced() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.quiesce
}

// quiesceStats snapshots the quiesce-window accounting. An in-progress
// quiesce contributes its elapsed time so the window is visible while held.
func (t *lockTable) quiesceStats() (quiesces, quiesceNs, updatesDelayed uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	quiesces, quiesceNs, updatesDelayed = t.quiesces, t.quiesceNs, t.updatesDelayed
	if t.quiesce {
		quiesceNs += uint64(time.Since(t.quiesceStart))
	}
	return quiesces, quiesceNs, updatesDelayed
}

func normalizeSorted(names []dn.DN) []string {
	keys := make([]string, 0, len(names))
	seen := map[string]bool{}
	for _, n := range names {
		k := n.Normalize()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	// Insertion sort; the slice holds one or two entries in practice.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
