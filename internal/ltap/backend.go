package ltap

import (
	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
)

// LocalBackend adapts an in-process directory.DIT to the gateway's Backend
// interface — the "library mode" of §5.5, where LTAP is bound into the
// application and no network hop separates it from the store.
type LocalBackend struct {
	DIT *directory.DIT
}

var _ Backend = (*LocalBackend)(nil)

// Bind accepts any credentials (prototype security model).
func (b *LocalBackend) Bind(name, password string) error { return nil }

// Search evaluates the query directly on the DIT.
func (b *LocalBackend) Search(req *ldap.SearchRequest) ([]*ldapclient.Entry, error) {
	base, err := dn.Parse(req.BaseDN)
	if err != nil {
		return nil, &ldap.ResultError{Result: ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: err.Error()}}
	}
	entries, err := b.DIT.Search(base, req.Scope, req.Filter, req.SizeLimit)
	if err != nil {
		return nil, &ldap.ResultError{Result: ldap.Result{
			Code: directory.CodeOf(err), Message: err.Error()}}
	}
	out := make([]*ldapclient.Entry, 0, len(entries))
	for _, e := range entries {
		ce := &ldapclient.Entry{DN: e.DN.String()}
		e.Attrs.EachSorted(func(name string, values []string) {
			ce.Attributes = append(ce.Attributes, ldap.Attribute{
				Type: name, Values: values})
		})
		out = append(out, ce)
	}
	return out, nil
}

// Compare evaluates the assertion directly on the DIT.
func (b *LocalBackend) Compare(name, attr, value string) (bool, error) {
	d, err := dn.Parse(name)
	if err != nil {
		return false, &ldap.ResultError{Result: ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: err.Error()}}
	}
	match, err := b.DIT.Compare(d, attr, value)
	if err != nil {
		return false, &ldap.ResultError{Result: ldap.Result{
			Code: directory.CodeOf(err), Message: err.Error()}}
	}
	return match, nil
}
