package ltap

// Tests for the multiplexed action wire: many OnUpdate calls in flight on
// one persistent connection, replies matched back by event ID. Run under
// -race — the point of these tests is concurrent use of one RemoteAction.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metacomm/internal/ldap"
)

// TestRemoteActionConcurrent pipelines slow updates through one connection
// and checks that (a) they overlap at the server — the wire no longer
// serializes the engine — and (b) every caller receives the reply for its
// own event, not whichever finished first.
func TestRemoteActionConcurrent(t *testing.T) {
	var active, maxActive atomic.Int64
	action := ActionFunc(func(ev Event) ldap.Result {
		n := active.Add(1)
		for {
			m := maxActive.Load()
			if n <= m || maxActive.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		active.Add(-1)
		return ldap.Result{Code: ldap.ResultSuccess, Message: fmt.Sprintf("ev-%d", ev.ID)}
	})
	srv := NewActionServer(action)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	remote, err := DialAction(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })

	const calls = 8
	var wg sync.WaitGroup
	for i := 1; i <= calls; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			res := remote.OnUpdate(Event{ID: id, Kind: EventModify, DN: fmt.Sprintf("cn=c%d", id)})
			if res.Code != ldap.ResultSuccess {
				t.Errorf("event %d: %+v", id, res)
				return
			}
			if want := fmt.Sprintf("ev-%d", id); res.Message != want {
				t.Errorf("event %d got reply %q — replies crossed", id, res.Message)
			}
		}(uint64(i))
	}
	wg.Wait()
	if maxActive.Load() < 2 {
		t.Errorf("max concurrent actions = %d, wire still serializes", maxActive.Load())
	}
}
