package ltap

import (
	"fmt"
	"testing"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapserver"
)

// applyAction services trapped events against the DIT, standing in for the
// Update Manager's write-back (LTAP itself never applies updates).
func applyAction(d *directory.DIT) ActionFunc {
	return func(ev Event) ldap.Result {
		name, err := dn.Parse(ev.DN)
		if err != nil {
			return ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: err.Error()}
		}
		switch ev.Kind {
		case EventAdd:
			err = d.Add(name, directory.AttrsFrom(ev.Attrs))
		case EventDelete:
			err = d.Delete(name)
		case EventModify:
			changes := make([]ldap.Change, 0, len(ev.Changes))
			for _, c := range ev.Changes {
				lc, cerr := c.ToLDAP()
				if cerr != nil {
					return ldap.Result{Code: ldap.ResultProtocolError, Message: cerr.Error()}
				}
				changes = append(changes, lc)
			}
			err = d.Modify(name, changes)
		case EventModifyDN:
			newRDN, perr := dn.Parse(ev.NewRDN)
			if perr != nil || newRDN.Depth() != 1 {
				return ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: "bad newRDN"}
			}
			err = d.ModifyDN(name, newRDN.RDN(), ev.DeleteOldRDN)
		}
		if err != nil {
			return resultFromErr(err)
		}
		return ldap.Result{Code: ldap.ResultSuccess}
	}
}

func replaceReq(name, attr, value string) *ldap.ModifyRequest {
	return &ldap.ModifyRequest{DN: name, Changes: []ldap.Change{{
		Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: attr, Values: []string{value}}}}}
}

func TestCacheWithChangelogServesWarmBeforeImages(t *testing.T) {
	d := testDIT(t)
	action := &recordingAction{}
	applier := applyAction(d)
	g := NewGateway(&LocalBackend{DIT: d}, ActionFunc(func(ev Event) ldap.Result {
		action.OnUpdate(ev)
		return applier(ev)
	}))
	cache := NewBeforeImageCache(0)
	cache.AttachChangelog(d)
	defer cache.Close()
	g.UseCache(cache)

	conn := &ldapserver.Conn{}
	const name = "cn=John Doe,o=Lucent"
	for i := 1; i <= 5; i++ {
		if res := g.Modify(conn, replaceReq(name, "roomNumber", fmt.Sprintf("2C-%03d", i))); res.Code != ldap.ResultSuccess {
			t.Fatalf("modify %d: %+v", i, res)
		}
	}
	evs := action.all()
	if len(evs) != 5 {
		t.Fatalf("events = %d", len(evs))
	}
	// Each trap's before-image reflects the previous committed write: the
	// cache followed the changelog instead of refetching.
	if evs[0].Old.Has("roomNumber") {
		t.Errorf("first old image = %v", evs[0].Old)
	}
	for i := 1; i < 5; i++ {
		want := fmt.Sprintf("2C-%03d", i)
		if got := evs[i].Old.First("roomNumber"); got != want {
			t.Errorf("trap %d old roomNumber = %q, want %q", i+1, got, want)
		}
	}
	st := g.Stats()
	if st.BackendFetches != 0 {
		t.Errorf("backend fetches = %d, want 0 (warm-start snapshot + changelog)", st.BackendFetches)
	}
	if st.Cache.Hits != 5 || st.Cache.Misses != 0 {
		t.Errorf("cache hits/misses = %d/%d, want 5/0", st.Cache.Hits, st.Cache.Misses)
	}
}

func TestCacheSeesWritesThatBypassTheGateway(t *testing.T) {
	d := testDIT(t)
	action := &recordingAction{}
	g := NewGateway(&LocalBackend{DIT: d}, action)
	cache := NewBeforeImageCache(0)
	cache.AttachChangelog(d)
	defer cache.Close()
	g.UseCache(cache)

	// A write straight to the directory (e.g. a device-originated update the
	// UM applied) must be visible in the next trapped before-image.
	name := dn.MustParse("cn=John Doe,o=Lucent")
	if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "telephoneNumber", Values: []string{"+1 908 582 7777"}}}}); err != nil {
		t.Fatal(err)
	}
	conn := &ldapserver.Conn{}
	if res := g.Modify(conn, replaceReq(name.String(), "roomNumber", "2C-401")); res.Code != ldap.ResultSuccess {
		t.Fatalf("modify: %+v", res)
	}
	evs := action.all()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	if got := evs[0].Old.First("telephoneNumber"); got != "+1 908 582 7777" {
		t.Errorf("old telephoneNumber = %q; changelog record not applied", got)
	}
	if st := g.Stats(); st.BackendFetches != 0 {
		t.Errorf("backend fetches = %d, want 0", st.BackendFetches)
	}
}

func TestCacheFollowsAddAndDelete(t *testing.T) {
	d := testDIT(t)
	cache := NewBeforeImageCache(0)
	cache.AttachChangelog(d)
	defer cache.Close()

	name := dn.MustParse("cn=Pat Smith,o=Lucent")
	if err := d.Add(name, directory.AttrsFrom(map[string][]string{
		"objectClass": {"mcPerson"}, "sn": {"Smith"}})); err != nil {
		t.Fatal(err)
	}
	if rec, ok := cache.Lookup(name.String()); !ok || rec.First("sn") != "Smith" {
		t.Fatalf("after add: %v %v", rec, ok)
	}
	if err := d.Delete(name); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Lookup(name.String()); ok {
		t.Error("deleted entry still cached")
	}
}

func TestCacheModifyDNInvalidatesOldName(t *testing.T) {
	d := testDIT(t)
	cache := NewBeforeImageCache(0)
	cache.AttachChangelog(d)
	defer cache.Close()

	old := dn.MustParse("cn=John Doe,o=Lucent")
	if _, ok := cache.Lookup(old.String()); !ok {
		t.Fatal("warm start missed the seed entry")
	}
	if err := d.ModifyDN(old, dn.RDN{{Attr: "cn", Value: "John Q Doe"}}, true); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Lookup(old.String()); ok {
		t.Error("old name still cached after rename")
	}
	// The new name is cold; a lookup misses and the caller faults it in.
	if _, ok := cache.Lookup("cn=John Q Doe,o=Lucent"); ok {
		t.Error("new name unexpectedly warm")
	}
}

func TestCacheTrapPathInvalidationWithoutChangelog(t *testing.T) {
	d := testDIT(t)
	applier := applyAction(d)
	action := &recordingAction{}
	g := NewGateway(&LocalBackend{DIT: d}, ActionFunc(func(ev Event) ldap.Result {
		action.OnUpdate(ev)
		return applier(ev)
	}))
	g.UseCache(NewBeforeImageCache(0)) // no changelog: trap-path invalidation

	conn := &ldapserver.Conn{}
	const name = "cn=John Doe,o=Lucent"
	for i := 1; i <= 3; i++ {
		if res := g.Modify(conn, replaceReq(name, "roomNumber", fmt.Sprintf("r%d", i))); res.Code != ldap.ResultSuccess {
			t.Fatalf("modify %d: %+v", i, res)
		}
	}
	evs := action.all()
	// Every trap must see the PREVIOUS write, not a stale cached image: the
	// successful write invalidated the entry, forcing a refetch.
	for i, want := range []string{"", "r1", "r2"} {
		if got := evs[i].Old.First("roomNumber"); got != want {
			t.Errorf("trap %d old roomNumber = %q, want %q", i+1, got, want)
		}
	}
	st := g.Stats()
	if st.BackendFetches != 3 {
		t.Errorf("backend fetches = %d, want 3 (invalidate-on-write)", st.BackendFetches)
	}
}

func TestCacheOverflowForcesResync(t *testing.T) {
	d := testDIT(t)
	cache := NewBeforeImageCache(0)
	cache.AttachChangelog(d)
	defer cache.Close()

	// Push far more records than the subscription buffer holds without a
	// single drain: the channel closes and the next lookup must resync.
	name := dn.MustParse("cn=John Doe,o=Lucent")
	for i := 0; i < 1500; i++ {
		if err := d.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("r%d", i)}}}}); err != nil {
			t.Fatal(err)
		}
	}
	rec, ok := cache.Lookup(name.String())
	if !ok {
		t.Fatal("lookup missed after resync")
	}
	if got := rec.First("roomNumber"); got != "r1499" {
		t.Errorf("post-resync roomNumber = %q, want r1499", got)
	}
	if st := cache.Stats(); st.Resyncs != 1 {
		t.Errorf("resyncs = %d, want 1", st.Resyncs)
	}
}

func TestCacheEvictionHonorsCapacity(t *testing.T) {
	d := testDIT(t)
	cache := NewBeforeImageCache(2)
	cache.AttachChangelog(d)
	defer cache.Close()

	for i := 0; i < 5; i++ {
		name := dn.MustParse(fmt.Sprintf("cn=Person %d,o=Lucent", i))
		if err := d.Add(name, directory.AttrsFrom(map[string][]string{
			"objectClass": {"mcPerson"}, "sn": {fmt.Sprint(i)}})); err != nil {
			t.Fatal(err)
		}
	}
	// Lookup drains the pending add records into the cache.
	if rec, ok := cache.Lookup("cn=Person 4,o=Lucent"); !ok || rec.First("sn") != "4" {
		t.Fatalf("lookup = %v %v", rec, ok)
	}
	st := cache.Stats()
	if st.Size > 2 {
		t.Errorf("size = %d, want <= 2", st.Size)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded")
	}
}
