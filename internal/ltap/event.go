package ltap

import (
	"fmt"

	"metacomm/internal/ldap"
	"metacomm/internal/lexpress"
)

// EventKind is the kind of intercepted LDAP update.
type EventKind string

// Event kinds.
const (
	EventAdd      EventKind = "add"
	EventDelete   EventKind = "delete"
	EventModify   EventKind = "modify"
	EventModifyDN EventKind = "modifydn"
)

// Change mirrors ldap.Change for the action wire protocol.
type Change struct {
	Op     string   `json:"op"` // add | delete | replace
	Attr   string   `json:"attr"`
	Values []string `json:"values,omitempty"`
}

// Event is one intercepted update delivered to the trigger action server.
// LTAP resolves the entry's current state (Old) before invoking the action,
// because the repositories themselves cannot report before-images.
type Event struct {
	// ID sequences events on a connection.
	ID uint64 `json:"id"`
	// Kind of update.
	Kind EventKind `json:"kind"`
	// DN of the target entry (string form as received).
	DN string `json:"dn"`
	// BoundDN identifies the client that issued the update.
	BoundDN string `json:"boundDN,omitempty"`

	// Add: the new entry's attributes.
	// Modify: unused (see Changes).
	Attrs lexpress.Record `json:"attrs,omitempty"`
	// Modify: the requested changes.
	Changes []Change `json:"changes,omitempty"`
	// ModifyDN: the new RDN and deleteOldRDN flag.
	NewRDN       string `json:"newRDN,omitempty"`
	DeleteOldRDN bool   `json:"deleteOldRDN,omitempty"`

	// Old is the entry's attributes before the update (nil for Add or when
	// the entry does not exist).
	Old lexpress.Record `json:"old,omitempty"`
}

// Result is the action server's reply.
type Result struct {
	ID      uint64 `json:"id"`
	Code    int    `json:"code"`
	Message string `json:"message,omitempty"`
}

// LDAPResult converts to an ldap.Result.
func (r Result) LDAPResult() ldap.Result {
	return ldap.Result{Code: ldap.ResultCode(r.Code), Message: r.Message}
}

// Action is the trigger action server interface. In MetaComm the Update
// Manager implements it; in library mode it is called in-process, in
// gateway mode over a persistent connection.
type Action interface {
	// OnUpdate is invoked with the target entry locked. The returned
	// result is relayed to the LDAP client; the action is responsible for
	// servicing the update (MetaComm mode) — LTAP does not apply it.
	OnUpdate(ev Event) ldap.Result
}

// ActionFunc adapts a function to Action.
type ActionFunc func(ev Event) ldap.Result

// OnUpdate implements Action.
func (f ActionFunc) OnUpdate(ev Event) ldap.Result { return f(ev) }

// ChangesFromLDAP converts wire changes.
func ChangesFromLDAP(cs []ldap.Change) []Change {
	out := make([]Change, 0, len(cs))
	for _, c := range cs {
		out = append(out, Change{Op: c.Op.String(), Attr: c.Attribute.Type, Values: c.Attribute.Values})
	}
	return out
}

// ToLDAP converts a wire change back to an ldap.Change.
func (c Change) ToLDAP() (ldap.Change, error) {
	var op ldap.ModOp
	switch c.Op {
	case "add":
		op = ldap.ModAdd
	case "delete":
		op = ldap.ModDelete
	case "replace":
		op = ldap.ModReplace
	default:
		return ldap.Change{}, fmt.Errorf("ltap: unknown change op %q", c.Op)
	}
	return ldap.Change{Op: op, Attribute: ldap.Attribute{Type: c.Attr, Values: c.Values}}, nil
}
