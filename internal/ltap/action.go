package ltap

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"metacomm/internal/ldap"
)

// This file implements gateway mode's wire between LTAP and the trigger
// action server: newline-delimited JSON over a persistent TCP connection.
// The original LTAP allowed a single update per action connection; MetaComm
// required persistent connections so a synchronization request could flow
// as an ordered sequence of updates (paper §5.1) — events on one connection
// are processed strictly in order.

// ActionServer exposes an Action implementation (in MetaComm, the Update
// Manager) to remote LTAP gateways.
type ActionServer struct {
	Action Action

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// NewActionServer wraps an action.
func NewActionServer(a Action) *ActionServer {
	return &ActionServer{Action: a, conns: map[net.Conn]bool{}}
}

// Start listens on addr and serves in the background.
func (s *ActionServer) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				c.Close()
				return
			}
			s.conns[c] = true
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serve(c)
			}()
		}
	}()
	return l.Addr(), nil
}

// Close stops the server.
func (s *ActionServer) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *ActionServer) serve(nc net.Conn) {
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()
	dec := json.NewDecoder(bufio.NewReader(nc))
	enc := json.NewEncoder(nc)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return
		}
		res := s.Action.OnUpdate(ev)
		out := Result{ID: ev.ID, Code: int(res.Code), Message: res.Message}
		if err := enc.Encode(out); err != nil {
			return
		}
	}
}

// RemoteAction implements Action over a persistent connection to an
// ActionServer. Events are serialized: one outstanding request at a time,
// preserving the ordering the UM's global queue depends on.
type RemoteAction struct {
	addr string

	mu     sync.Mutex
	nc     net.Conn
	dec    *json.Decoder
	enc    *json.Encoder
	closed bool
}

var _ Action = (*RemoteAction)(nil)

// DialAction connects to an action server.
func DialAction(addr string) (*RemoteAction, error) {
	r := &RemoteAction{addr: addr}
	if err := r.connectLocked(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *RemoteAction) connectLocked() error {
	nc, err := net.DialTimeout("tcp", r.addr, 5*time.Second)
	if err != nil {
		return err
	}
	r.nc = nc
	r.dec = json.NewDecoder(bufio.NewReader(nc))
	r.enc = json.NewEncoder(nc)
	return nil
}

// Close drops the connection.
func (r *RemoteAction) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if r.nc != nil {
		return r.nc.Close()
	}
	return nil
}

// OnUpdate implements Action: it ships the event and waits for the matching
// result. A broken connection is retried once (the persistent connection
// survives UM restarts; lost in-flight updates surface as errors for the
// client to retry or for resynchronization to repair).
func (r *RemoteAction) OnUpdate(ev Event) ldap.Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ldap.Result{Code: ldap.ResultUnavailable, Message: "ltap: action connection closed"}
	}
	for attempt := 0; ; attempt++ {
		res, err := r.exchangeLocked(ev)
		if err == nil {
			return res
		}
		if attempt >= 1 {
			return ldap.Result{Code: ldap.ResultUnavailable,
				Message: fmt.Sprintf("ltap: action server unreachable: %v", err)}
		}
		r.nc.Close()
		if err := r.connectLocked(); err != nil {
			return ldap.Result{Code: ldap.ResultUnavailable,
				Message: fmt.Sprintf("ltap: action server unreachable: %v", err)}
		}
	}
}

func (r *RemoteAction) exchangeLocked(ev Event) (ldap.Result, error) {
	if err := r.enc.Encode(ev); err != nil {
		return ldap.Result{}, err
	}
	for {
		var res Result
		if err := r.dec.Decode(&res); err != nil {
			return ldap.Result{}, err
		}
		if res.ID != ev.ID {
			// A stale reply from before a reconnect; skip it.
			continue
		}
		return res.LDAPResult(), nil
	}
}
