package ltap

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"metacomm/internal/ldap"
)

// This file implements gateway mode's wire between LTAP and the trigger
// action server: newline-delimited JSON over a persistent TCP connection.
// The original LTAP allowed a single update per action connection; MetaComm
// required persistent connections so a synchronization request could flow
// as an ordered sequence of updates (paper §5.1).
//
// The connection is multiplexed: requests are pipelined and replies are
// matched by event ID, so updates to distinct entries overlap end to end
// and the UM's sharded engine sees them concurrently. Per-entry ordering
// does not depend on the wire — LTAP holds the entry lock until the action
// replies, so a second update to the same entry is never in flight at the
// same time as the first.

// ActionServer exposes an Action implementation (in MetaComm, the Update
// Manager) to remote LTAP gateways. Each decoded event is serviced on its
// own goroutine; replies are written back as the actions complete, in
// whatever order they finish.
type ActionServer struct {
	Action Action

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// NewActionServer wraps an action.
func NewActionServer(a Action) *ActionServer {
	return &ActionServer{Action: a, conns: map[net.Conn]bool{}}
}

// Start listens on addr and serves in the background.
func (s *ActionServer) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				c.Close()
				return
			}
			s.conns[c] = true
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serve(c)
			}()
		}
	}()
	return l.Addr(), nil
}

// Close stops the server.
func (s *ActionServer) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *ActionServer) serve(nc net.Conn) {
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()
	dec := json.NewDecoder(bufio.NewReader(nc))
	// Replies are buffered; a handler flushes after writing unless another
	// FINISHED handler is already queued on the write mutex (the group-
	// commit discipline: the last writer in the queue flushes for
	// everyone). Replies that complete together — the UM's sharded fan-out
	// finishing a burst — coalesce into one kernel write, while a reply
	// with no one behind it goes out immediately, so a slow in-flight
	// action never delays an already-written reply.
	bw := bufio.NewWriterSize(nc, 4096)
	enc := json.NewEncoder(bw)
	var queued atomic.Int64 // finished handlers at or past the mutex
	var wmu sync.Mutex      // one writer at a time on the shared encoder
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return
		}
		handlers.Add(1)
		go func(ev Event) {
			defer handlers.Done()
			res := s.Action.OnUpdate(ev)
			out := Result{ID: ev.ID, Code: int(res.Code), Message: res.Message}
			queued.Add(1)
			wmu.Lock()
			err := enc.Encode(out)
			if queued.Add(-1) == 0 && err == nil {
				err = bw.Flush()
			}
			wmu.Unlock()
			if err != nil {
				nc.Close() // the reader loop notices and winds down
			}
		}(ev)
	}
}

// RemoteAction implements Action over a persistent, multiplexed connection
// to an ActionServer: many OnUpdate calls may be in flight at once, each
// waiting on its own reply, matched by event ID.
type RemoteAction struct {
	addr string

	mu      sync.Mutex
	nc      net.Conn
	enc     *json.Encoder
	closed  bool
	gen     int // connection generation, guards stale readers
	waiters map[uint64]chan Result
}

var _ Action = (*RemoteAction)(nil)

// DialAction connects to an action server.
func DialAction(addr string) (*RemoteAction, error) {
	r := &RemoteAction{addr: addr, waiters: map[uint64]chan Result{}}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.connectLocked(); err != nil {
		return nil, err
	}
	return r, nil
}

// connectLocked (re)establishes the connection and starts its reader.
func (r *RemoteAction) connectLocked() error {
	nc, err := net.DialTimeout("tcp", r.addr, 5*time.Second)
	if err != nil {
		return err
	}
	r.nc = nc
	r.enc = json.NewEncoder(nc)
	r.gen++
	go r.reader(nc, r.gen)
	return nil
}

// reader drains replies from one connection and routes them to their
// waiters. When the connection dies it fails every outstanding waiter (the
// caller retries once, reconnecting).
func (r *RemoteAction) reader(nc net.Conn, gen int) {
	dec := json.NewDecoder(bufio.NewReader(nc))
	for {
		var res Result
		if err := dec.Decode(&res); err != nil {
			r.mu.Lock()
			if r.gen == gen { // still the current connection
				if r.nc != nil {
					r.nc.Close()
					r.nc = nil
				}
				for id, ch := range r.waiters {
					close(ch)
					delete(r.waiters, id)
				}
			}
			r.mu.Unlock()
			return
		}
		r.mu.Lock()
		ch := r.waiters[res.ID]
		delete(r.waiters, res.ID)
		r.mu.Unlock()
		if ch != nil {
			ch <- res // buffered; a reply no one claims is dropped
		}
	}
}

// Close drops the connection.
func (r *RemoteAction) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for id, ch := range r.waiters {
		close(ch)
		delete(r.waiters, id)
	}
	if r.nc != nil {
		return r.nc.Close()
	}
	return nil
}

// send registers a waiter for ev's reply and ships the event. It returns
// the channel the reader will answer on (closed on connection failure).
func (r *RemoteAction) send(ev Event) (chan Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("ltap: action connection closed")
	}
	if r.nc == nil {
		if err := r.connectLocked(); err != nil {
			return nil, err
		}
	}
	ch := make(chan Result, 1)
	r.waiters[ev.ID] = ch
	if err := r.enc.Encode(ev); err != nil {
		delete(r.waiters, ev.ID)
		r.nc.Close()
		r.nc = nil
		return nil, err
	}
	return ch, nil
}

// OnUpdate implements Action: it ships the event and waits for the matching
// result, while other calls do the same in parallel on the one connection.
// A broken connection is retried once (the persistent connection survives
// UM restarts; lost in-flight updates surface as errors for the client to
// retry or for resynchronization to repair).
func (r *RemoteAction) OnUpdate(ev Event) ldap.Result {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		ch, err := r.send(ev)
		if err != nil {
			lastErr = err
			continue // send reconnects on the next attempt
		}
		if res, ok := <-ch; ok {
			return res.LDAPResult()
		}
		lastErr = fmt.Errorf("connection lost awaiting reply")
	}
	return ldap.Result{Code: ldap.ResultUnavailable,
		Message: fmt.Sprintf("ltap: action server unreachable: %v", lastErr)}
}
