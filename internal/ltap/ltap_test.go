package ltap

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/ldapserver"
	"metacomm/internal/mcschema"
)

// testDIT builds a small schema-checked directory.
func testDIT(t testing.TB) *directory.DIT {
	t.Helper()
	d := directory.New(mcschema.New())
	add := func(name string, attrs map[string][]string) {
		if err := d.Add(dn.MustParse(name), directory.AttrsFrom(attrs)); err != nil {
			t.Fatal(err)
		}
	}
	add("o=Lucent", map[string][]string{"objectClass": {"organization"}})
	add("cn=John Doe,o=Lucent", map[string][]string{
		"objectClass": {"mcPerson"}, "sn": {"Doe"},
		"telephoneNumber": {"+1 908 582 9000"},
	})
	return d
}

// recordingAction captures events and returns success.
type recordingAction struct {
	mu     sync.Mutex
	events []Event
	delay  time.Duration
	result ldap.Result
}

func (a *recordingAction) OnUpdate(ev Event) ldap.Result {
	if a.delay > 0 {
		time.Sleep(a.delay)
	}
	a.mu.Lock()
	a.events = append(a.events, ev)
	a.mu.Unlock()
	if a.result.Code != 0 || a.result.Message != "" {
		return a.result
	}
	return ldap.Result{Code: ldap.ResultSuccess}
}

func (a *recordingAction) all() []Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Event(nil), a.events...)
}

// startGateway serves a gateway over TCP and returns a connected client.
func startGateway(t testing.TB, g *Gateway) *ldapclient.Conn {
	t.Helper()
	srv := ldapserver.NewServer(g)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := ldapclient.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestReadsPassThroughWithoutAction(t *testing.T) {
	d := testDIT(t)
	action := &recordingAction{}
	g := NewGateway(&LocalBackend{DIT: d}, action)
	c := startGateway(t, g)

	entries, err := c.Search(&ldap.SearchRequest{
		BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.Eq("objectClass", "mcPerson"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].First("telephoneNumber") != "+1 908 582 9000" {
		t.Fatalf("entries = %v", entries)
	}
	match, err := c.Compare("cn=John Doe,o=Lucent", "sn", "Doe")
	if err != nil || !match {
		t.Errorf("compare = %v %v", match, err)
	}
	if len(action.all()) != 0 {
		t.Error("reads reached the action server")
	}
}

func TestUpdatesAreTrappedWithOldImage(t *testing.T) {
	d := testDIT(t)
	action := &recordingAction{}
	g := NewGateway(&LocalBackend{DIT: d}, action)
	c := startGateway(t, g)

	if err := c.Modify("cn=John Doe,o=Lucent", []ldap.Change{
		{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"2C-401"}}},
	}); err != nil {
		t.Fatal(err)
	}
	evs := action.all()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	ev := evs[0]
	if ev.Kind != EventModify || ev.DN != "cn=John Doe,o=Lucent" {
		t.Errorf("event = %+v", ev)
	}
	if ev.Old.First("telephoneNumber") != "+1 908 582 9000" {
		t.Errorf("old image = %v", ev.Old)
	}
	if len(ev.Changes) != 1 || ev.Changes[0].Op != "replace" {
		t.Errorf("changes = %v", ev.Changes)
	}
	// LTAP does NOT apply the update itself — the action (UM) services it.
	e, _ := d.Get(dn.MustParse("cn=John Doe,o=Lucent"))
	if e.Attrs.Has("roomNumber") {
		t.Error("gateway applied the update directly")
	}
}

func TestActionResultPropagatesToClient(t *testing.T) {
	d := testDIT(t)
	action := &recordingAction{result: ldap.Result{Code: ldap.ResultUnwillingToPerform, Message: "nope"}}
	g := NewGateway(&LocalBackend{DIT: d}, action)
	c := startGateway(t, g)
	err := c.Delete("cn=John Doe,o=Lucent")
	if !ldap.IsCode(err, ldap.ResultUnwillingToPerform) {
		t.Errorf("err = %v", err)
	}
}

func TestConflictingUpdatesSerializePerEntry(t *testing.T) {
	d := testDIT(t)
	var active, maxActive atomic.Int32
	action := ActionFunc(func(ev Event) ldap.Result {
		cur := active.Add(1)
		for {
			m := maxActive.Load()
			if cur <= m || maxActive.CompareAndSwap(m, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		active.Add(-1)
		return ldap.Result{Code: ldap.ResultSuccess}
	})
	g := NewGateway(&LocalBackend{DIT: d}, action)

	conn := &ldapserver.Conn{}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Modify(conn, &ldap.ModifyRequest{
				DN: "cn=John Doe,o=Lucent",
				Changes: []ldap.Change{{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"x"}}}},
			})
		}()
	}
	wg.Wait()
	if maxActive.Load() != 1 {
		t.Errorf("max concurrent actions on one entry = %d, want 1", maxActive.Load())
	}
}

func TestDifferentEntriesProceedConcurrently(t *testing.T) {
	d := testDIT(t)
	if err := d.Add(dn.MustParse("cn=Pat Smith,o=Lucent"), directory.AttrsFrom(map[string][]string{
		"objectClass": {"mcPerson"}, "sn": {"Smith"},
	})); err != nil {
		t.Fatal(err)
	}
	var active, maxActive atomic.Int32
	action := ActionFunc(func(ev Event) ldap.Result {
		cur := active.Add(1)
		for {
			m := maxActive.Load()
			if cur <= m || maxActive.CompareAndSwap(m, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		active.Add(-1)
		return ldap.Result{Code: ldap.ResultSuccess}
	})
	g := NewGateway(&LocalBackend{DIT: d}, action)
	conn := &ldapserver.Conn{}
	var wg sync.WaitGroup
	for _, name := range []string{"cn=John Doe,o=Lucent", "cn=Pat Smith,o=Lucent"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			g.Modify(conn, &ldap.ModifyRequest{DN: name,
				Changes: []ldap.Change{{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"y"}}}}})
		}(name)
	}
	wg.Wait()
	if maxActive.Load() < 2 {
		t.Errorf("updates to different entries did not overlap (max=%d)", maxActive.Load())
	}
}

func TestQuiesceBlocksUpdatesAllowsReads(t *testing.T) {
	d := testDIT(t)
	action := &recordingAction{}
	g := NewGateway(&LocalBackend{DIT: d}, action)
	if !g.Quiesce() {
		t.Fatal("quiesce failed")
	}
	if g.Quiesce() {
		t.Error("double quiesce succeeded")
	}

	conn := &ldapserver.Conn{}
	done := make(chan ldap.Result, 1)
	go func() {
		done <- g.Delete(conn, &ldap.DeleteRequest{DN: "cn=John Doe,o=Lucent"})
	}()
	select {
	case <-done:
		t.Fatal("update proceeded during quiesce")
	case <-time.After(50 * time.Millisecond):
	}
	// Reads still work during quiesce.
	res := g.Compare(conn, &ldap.CompareRequest{DN: "cn=John Doe,o=Lucent", Attr: "sn", Value: "Doe"})
	if res.Code != ldap.ResultCompareTrue {
		t.Errorf("read during quiesce = %v", res)
	}
	g.Unquiesce()
	select {
	case r := <-done:
		if r.Code != ldap.ResultSuccess {
			t.Errorf("post-quiesce update = %v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update never resumed")
	}
}

func TestQuiesceWaitsForInFlightUpdates(t *testing.T) {
	d := testDIT(t)
	started := make(chan struct{})
	release := make(chan struct{})
	action := ActionFunc(func(ev Event) ldap.Result {
		close(started)
		<-release
		return ldap.Result{Code: ldap.ResultSuccess}
	})
	g := NewGateway(&LocalBackend{DIT: d}, action)
	conn := &ldapserver.Conn{}
	go g.Delete(conn, &ldap.DeleteRequest{DN: "cn=John Doe,o=Lucent"})
	<-started

	quiesced := make(chan struct{})
	go func() {
		g.Quiesce()
		close(quiesced)
	}()
	select {
	case <-quiesced:
		t.Fatal("quiesce returned while an update was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-quiesced:
	case <-time.After(2 * time.Second):
		t.Fatal("quiesce never completed")
	}
	g.Unquiesce()
}

func TestQuiesceExtendedOp(t *testing.T) {
	d := testDIT(t)
	g := NewGateway(&LocalBackend{DIT: d}, &recordingAction{})
	c := startGateway(t, g)
	if _, err := c.Extended(OIDQuiesceBegin, nil); err != nil {
		t.Fatal(err)
	}
	if !g.Quiesced() {
		t.Error("extended op did not quiesce")
	}
	if _, err := c.Extended(OIDQuiesceBegin, nil); !ldap.IsCode(err, ldap.ResultUnwillingToPerform) {
		t.Errorf("double quiesce err = %v", err)
	}
	if _, err := c.Extended(OIDQuiesceEnd, nil); err != nil {
		t.Fatal(err)
	}
	if g.Quiesced() {
		t.Error("extended op did not unquiesce")
	}
}

func TestQuiesceRequiresAdminWhenConfigured(t *testing.T) {
	d := testDIT(t)
	g := NewGateway(&LocalBackend{DIT: d}, &recordingAction{})
	g.AdminDN = "cn=um"
	c := startGateway(t, g)
	if _, err := c.Extended(OIDQuiesceBegin, nil); !ldap.IsCode(err, ldap.ResultInsufficientAccess) {
		t.Errorf("anonymous quiesce err = %v", err)
	}
	if err := c.Bind("cn=um", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Extended(OIDQuiesceBegin, nil); err != nil {
		t.Errorf("admin quiesce err = %v", err)
	}
	g.Unquiesce()
}

func TestModifyDNLocksBothNames(t *testing.T) {
	d := testDIT(t)
	inAction := make(chan struct{})
	release := make(chan struct{})
	action := ActionFunc(func(ev Event) ldap.Result {
		if ev.Kind == EventModifyDN {
			close(inAction)
			<-release
		}
		return ldap.Result{Code: ldap.ResultSuccess}
	})
	g := NewGateway(&LocalBackend{DIT: d}, action)
	conn := &ldapserver.Conn{}
	go g.ModifyDN(conn, &ldap.ModifyDNRequest{
		DN: "cn=John Doe,o=Lucent", NewRDN: "cn=John Q Doe", DeleteOldRDN: true})
	<-inAction

	// An update to the NEW name must block while the rename is processing.
	done := make(chan struct{})
	go func() {
		g.Add(conn, &ldap.AddRequest{DN: "cn=John Q Doe,o=Lucent", Attributes: []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson"}},
			{Type: "sn", Values: []string{"Doe"}}}})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("add to target name proceeded during rename")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked add never resumed")
	}
}

func TestRemoteActionRoundTrip(t *testing.T) {
	action := &recordingAction{}
	srv := NewActionServer(action)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	remote, err := DialAction(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })

	// A sequence of updates flows over ONE persistent connection.
	for i := 1; i <= 5; i++ {
		res := remote.OnUpdate(Event{ID: uint64(i), Kind: EventModify, DN: "cn=x"})
		if res.Code != ldap.ResultSuccess {
			t.Fatalf("event %d: %v", i, res)
		}
	}
	evs := action.all()
	if len(evs) != 5 {
		t.Fatalf("server saw %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.ID != uint64(i+1) {
			t.Errorf("event order broken: %v", evs)
		}
	}
}

func TestRemoteActionThroughGateway(t *testing.T) {
	d := testDIT(t)
	action := &recordingAction{}
	srv := NewActionServer(action)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	remote, err := DialAction(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })

	g := NewGateway(&LocalBackend{DIT: d}, remote)
	c := startGateway(t, g)
	if err := c.Modify("cn=John Doe,o=Lucent", []ldap.Change{
		{Op: ldap.ModAdd, Attribute: ldap.Attribute{Type: "mail", Values: []string{"jd@lucent.com"}}},
	}); err != nil {
		t.Fatal(err)
	}
	evs := action.all()
	if len(evs) != 1 || evs[0].Old == nil {
		t.Fatalf("remote events = %+v", evs)
	}
	if evs[0].Old.First("sn") != "Doe" {
		t.Error("old image lost over the wire")
	}
}

func TestRemoteActionUnavailable(t *testing.T) {
	action := &recordingAction{}
	srv := NewActionServer(action)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := DialAction(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	srv.Close()
	res := remote.OnUpdate(Event{ID: 1, Kind: EventModify, DN: "cn=x"})
	if res.Code != ldap.ResultUnavailable {
		t.Errorf("res = %+v", res)
	}
}
