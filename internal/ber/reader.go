package ber

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// This file is the zero-copy wire-decode path. The original ReadElement
// allocated a fresh header slice, a one-byte scratch buffer and a full
// message buffer per message, and Decode allocated every *Element node and
// every Children slice separately — around two dozen allocations for an
// ordinary modify request, multiplied by every message on every connection.
// Reader replaces all of that with per-connection reused storage:
//
//   - header octets are parsed through bufio's ReadByte, so nothing hits the
//     underlying conn byte-at-a-time and no scratch slices exist;
//   - content is read into one message buffer that is reused across
//     messages;
//   - the Element tree is carved out of an arena (one []Element slab and one
//     []*Element child-pointer slab, both reused across messages), and
//     primitive Values are sub-slices of the message buffer.
//
// The price is an ownership rule: everything ReadElement (and Decoder.
// Decode) returns is BORROWED — valid only until the next call on the same
// Reader/Decoder. Callers that retain anything beyond that point (changelog
// records, cache entries, outbox journal lines) must copy first. In this
// codebase the copy happens at the ldap message boundary: ldap.DecodeMessage
// converts every wire octet it keeps into an owned string (or explicitly
// clones the few raw []byte fields), so nothing above the ldap package ever
// sees borrowed memory. The aliasing tests in reader_test.go pin that rule.

// DefaultMaxMessageSize bounds a single wire message (identifier + length +
// content octets) unless the caller overrides it. A few MB comfortably fits
// any legitimate LDAP operation while keeping a hostile peer from making the
// server allocate MaxElementSize per connection.
const DefaultMaxMessageSize = 4 << 20

// ErrTooLarge reports a wire message whose declared length exceeds the
// reader's configured maximum. Servers should answer with a protocol error
// and drop the connection rather than allocate.
var ErrTooLarge = errors.New("ber: message exceeds maximum size")

// maxRetained bounds the buffer and arena capacity a Reader keeps across
// messages, so one unusually large (but legal) message cannot pin memory for
// the connection's lifetime.
const (
	maxRetainedBuf   = 1 << 20
	maxRetainedElems = 1 << 14
)

// arena holds the storage one decoded element tree is carved from. Both
// slabs are sized exactly per message (a cheap header-only counting pass
// runs first), so pointers into them stay valid while the tree is in use and
// the whole arena is reused for the next message.
type arena struct {
	elems []Element
	ptrs  []*Element
	ei    int // next free Element
	pi    int // next free child-pointer slot
}

// reset prepares the arena for a tree of n elements. Trees handed out from
// earlier resets are overwritten — the borrowed-memory contract.
func (a *arena) reset(n int) {
	if cap(a.elems) < n {
		a.elems = make([]Element, n)
	}
	a.elems = a.elems[:cap(a.elems)]
	if cap(a.ptrs) < n {
		a.ptrs = make([]*Element, n)
	}
	a.ptrs = a.ptrs[:cap(a.ptrs)]
	a.ei, a.pi = 0, 0
}

// trim drops oversized slabs so a single huge message does not pin memory.
func (a *arena) trim() {
	if cap(a.elems) > maxRetainedElems {
		a.elems = nil
	}
	if cap(a.ptrs) > maxRetainedElems {
		a.ptrs = nil
	}
}

func (a *arena) newElement() *Element {
	e := &a.elems[a.ei]
	a.ei++
	return e
}

// childSlice reserves a contiguous slice of n child-pointer slots. The
// caller fills it while recursing; reservation happens before recursion so
// a parent's children stay contiguous even though grandchildren are carved
// in between.
func (a *arena) childSlice(n int) []*Element {
	s := a.ptrs[a.pi : a.pi+n : a.pi+n]
	a.pi += n
	return s
}

// Decoder decodes BER elements zero-copy: primitive Values alias the input
// buffer and the Element tree lives in an arena reused across Decode calls.
// The returned tree is only valid until the next Decode on the same Decoder;
// retain with Element data only after copying. The zero value is ready to
// use. Not safe for concurrent use.
type Decoder struct {
	a arena
}

// Decode parses a single element from the front of b, returning the element
// and the number of bytes consumed. It is byte-for-byte equivalent to the
// package-level Decode (the differential test pins this over the fuzz
// corpora) but performs zero allocations at steady state.
func (d *Decoder) Decode(b []byte) (*Element, int, error) {
	n, err := countElements(b, 0)
	if err != nil {
		// Delegate malformed input to the canonical decoder so the two
		// paths cannot disagree on which error a given input produces.
		return decode(b, 0)
	}
	d.a.reset(n)
	e, consumed := decodeArena(b, &d.a)
	return e, consumed, nil
}

// countElements walks b's element headers (skipping primitive content) and
// returns the total node count of the first element. It applies exactly the
// checks decode applies, in the same order, so an input passes either both
// passes or neither.
func countElements(b []byte, depth int) (int, error) {
	n, _, err := countOne(b, depth)
	return n, err
}

func countOne(b []byte, depth int) (nodes, consumed int, err error) {
	if depth > maxDepth {
		return 0, 0, errors.New("ber: nesting too deep")
	}
	if len(b) == 0 {
		return 0, 0, ErrTruncated
	}
	ident := b[0]
	constructed := ident&0x20 != 0
	off := 1
	if ident&0x1F == 0x1F {
		tag := uint32(0)
		for {
			if off >= len(b) {
				return 0, 0, ErrTruncated
			}
			if tag > (1<<25)-1 {
				return 0, 0, errors.New("ber: tag number too large")
			}
			c := b[off]
			off++
			tag = tag<<7 | uint32(c&0x7F)
			if c&0x80 == 0 {
				break
			}
		}
	}
	length, ln, err := decodeLength(b[off:])
	if err != nil {
		return 0, 0, err
	}
	off += ln
	if length > MaxElementSize {
		return 0, 0, fmt.Errorf("ber: element of %d bytes exceeds limit", length)
	}
	if off+length > len(b) {
		return 0, 0, ErrTruncated
	}
	nodes = 1
	if constructed {
		for rest := b[off : off+length]; len(rest) > 0; {
			cn, cc, err := countOne(rest, depth+1)
			if err != nil {
				return 0, 0, err
			}
			nodes += cn
			rest = rest[cc:]
		}
	}
	return nodes, off + length, nil
}

// decodeArena mirrors decode but allocates nothing: nodes come from the
// arena and Values alias b. countElements validated b already, so this pass
// cannot fail.
func decodeArena(b []byte, a *arena) (*Element, int) {
	ident := b[0]
	class := Class(ident & 0xC0)
	constructed := ident&0x20 != 0
	tag := uint32(ident & 0x1F)
	off := 1
	if tag == 0x1F {
		tag = 0
		for {
			c := b[off]
			off++
			tag = tag<<7 | uint32(c&0x7F)
			if c&0x80 == 0 {
				break
			}
		}
	}
	length, n, _ := decodeLength(b[off:])
	off += n
	content := b[off : off+length]
	e := a.newElement()
	*e = Element{Class: class, Tag: tag, Constructed: constructed}
	if !constructed {
		e.Value = content
		return e, off + length
	}
	// Reserve the children slice before recursing so it stays contiguous in
	// the pointer slab (grandchildren carve their own slices in between).
	nchild := 0
	for rest := content; len(rest) > 0; {
		_, cc, _ := countOne(rest, 0)
		nchild++
		rest = rest[cc:]
	}
	if nchild > 0 {
		e.Children = a.childSlice(nchild)
		rest := content
		for i := 0; i < nchild; i++ {
			child, cc := decodeArena(rest, a)
			e.Children[i] = child
			rest = rest[cc:]
		}
	}
	return e, off + length
}

// Reader reads framed BER elements from a stream with per-connection reused
// storage: one buffered reader (header octets never hit the underlying conn
// byte-at-a-time), one content buffer, and one element arena. Returned
// elements are borrowed — valid until the next ReadElement. Not safe for
// concurrent use.
type Reader struct {
	br  *bufio.Reader
	buf []byte
	dec Decoder
	max int
}

// NewReader wraps r for framed element reads with DefaultMaxMessageSize.
// When r is already a *bufio.Reader it is used directly.
func NewReader(r io.Reader) *Reader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 4096)
	}
	return &Reader{br: br, max: DefaultMaxMessageSize}
}

// SetMaxMessageSize overrides the per-message size bound; n <= 0 restores
// the default. The bound covers the whole message: identifier, length and
// content octets.
func (r *Reader) SetMaxMessageSize(n int) {
	if n <= 0 {
		n = DefaultMaxMessageSize
	}
	r.max = n
}

// Reset discards buffered state and re-points the reader at src, keeping the
// allocated buffers (for tests and connection reuse).
func (r *Reader) Reset(src io.Reader) {
	if br, ok := src.(*bufio.Reader); ok {
		r.br = br
		return
	}
	r.br.Reset(src)
}

// Buffered returns the number of bytes already available in the read buffer.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// MessageBuffered reports whether the read buffer already holds at least one
// complete message, i.e. whether the next ReadElement can complete without
// touching the underlying reader. Servers use it to decide when to flush
// pipelined responses: flush only before a read that would block. Inputs
// with malformed headers report true so the read path surfaces the error
// promptly instead of stalling behind a flush.
func (r *Reader) MessageBuffered() bool {
	n := r.br.Buffered()
	if n == 0 {
		return false
	}
	// A header is at most 1 identifier byte + 4 continuation bytes (the
	// decoder rejects tags over 25 bits) + 1 length byte + 4 long-form
	// octets = 10 bytes.
	peek, _ := r.br.Peek(min(n, 10))
	if len(peek) == 0 {
		return false
	}
	off := 1
	if peek[0]&0x1F == 0x1F {
		for {
			if off >= len(peek) {
				// Header continues past what is buffered (or past any legal
				// header — let the reader produce the error).
				return off >= 10
			}
			c := peek[off]
			off++
			if c&0x80 == 0 {
				break
			}
		}
	}
	if off >= len(peek) {
		return false
	}
	lb := peek[off]
	off++
	length := 0
	if lb >= 0x80 {
		k := int(lb & 0x7F)
		if k == 0 || k > 4 {
			return true // unsupported length form: error out on read
		}
		if off+k > len(peek) {
			return false
		}
		for i := 0; i < k; i++ {
			length = length<<8 | int(peek[off+i])
		}
		off += k
	} else {
		length = int(lb)
	}
	if off+length > r.max {
		return true // oversize: error out on read, don't stall
	}
	return n >= off+length
}

// ReadElement reads one complete BER element from the stream. The returned
// element tree and its Values are borrowed: they alias the reader's internal
// buffer and arena and are only valid until the next ReadElement. A message
// whose total size exceeds the configured maximum returns an error wrapping
// ErrTooLarge before any content is read.
func (r *Reader) ReadElement() (*Element, error) {
	if cap(r.buf) > maxRetainedBuf {
		r.buf = nil
	}
	r.dec.a.trim()
	r.buf = r.buf[:0]

	// EOF mid-header surfaces as io.EOF, matching the legacy ReadElement
	// (io.ReadFull of a single byte); EOF mid-content is unexpected EOF.
	readByte := func() (byte, error) {
		c, err := r.br.ReadByte()
		if err != nil {
			return 0, err
		}
		r.buf = append(r.buf, c)
		return c, nil
	}

	ident, err := readByte()
	if err != nil {
		return nil, err
	}
	if ident&0x1F == 0x1F {
		for {
			c, err := readByte()
			if err != nil {
				return nil, err
			}
			if c&0x80 == 0 {
				break
			}
			if len(r.buf) > 6 {
				return nil, errors.New("ber: tag number too large")
			}
		}
	}
	lb, err := readByte()
	if err != nil {
		return nil, err
	}
	length := 0
	if lb < 0x80 {
		length = int(lb)
	} else {
		n := int(lb & 0x7F)
		if n == 0 || n > 4 {
			return nil, fmt.Errorf("ber: unsupported length form %#x", lb)
		}
		for i := 0; i < n; i++ {
			c, err := readByte()
			if err != nil {
				return nil, err
			}
			length = length<<8 | int(c)
		}
	}
	header := len(r.buf)
	if total := header + length; total > r.max {
		return nil, fmt.Errorf("%w: %d bytes over limit %d", ErrTooLarge, total, r.max)
	}
	if length > MaxElementSize {
		return nil, fmt.Errorf("ber: element of %d bytes exceeds limit", length)
	}
	if cap(r.buf) < header+length {
		grown := make([]byte, header+length)
		copy(grown, r.buf)
		r.buf = grown
	} else {
		r.buf = r.buf[:header+length]
	}
	if _, err := io.ReadFull(r.br, r.buf[header:]); err != nil {
		return nil, err
	}
	e, _, err := r.dec.Decode(r.buf)
	return e, err
}
