// Package ber implements the subset of ASN.1 Basic Encoding Rules used by
// the LDAP v3 protocol (RFC 2251/4511): definite-length encodings of
// BOOLEAN, INTEGER, ENUMERATED, OCTET STRING, NULL, SEQUENCE and SET, plus
// application- and context-specific tagged forms.
//
// The package models a BER value as an Element tree. Encoding is
// deterministic (definite lengths, minimal-length integers), and decoding is
// strict: truncated or over-long inputs return errors rather than partial
// values, which matters for a network-facing directory server.
package ber

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Class is the ASN.1 tag class of an element.
type Class uint8

// Tag classes.
const (
	ClassUniversal   Class = 0x00
	ClassApplication Class = 0x40
	ClassContext     Class = 0x80
	ClassPrivate     Class = 0xC0
)

func (c Class) String() string {
	switch c {
	case ClassUniversal:
		return "universal"
	case ClassApplication:
		return "application"
	case ClassContext:
		return "context"
	case ClassPrivate:
		return "private"
	}
	return fmt.Sprintf("class(%#x)", uint8(c))
}

// Universal tag numbers used by LDAP.
const (
	TagBoolean     = 0x01
	TagInteger     = 0x02
	TagOctetString = 0x04
	TagNull        = 0x05
	TagEnumerated  = 0x0A
	TagSequence    = 0x10
	TagSet         = 0x11
)

// Limits protecting the decoder from hostile input.
const (
	// MaxElementSize bounds the content length of a single element.
	MaxElementSize = 16 << 20
	// maxDepth bounds the nesting of constructed elements.
	maxDepth = 64
)

// Element is a decoded or to-be-encoded BER value. Constructed elements
// carry Children; primitive elements carry Value.
type Element struct {
	Class       Class
	Tag         uint32
	Constructed bool
	Value       []byte
	Children    []*Element
}

// ErrTruncated reports that the input ended before a complete element.
var ErrTruncated = errors.New("ber: truncated element")

// NewSequence returns an empty universal SEQUENCE.
func NewSequence(children ...*Element) *Element {
	return &Element{Class: ClassUniversal, Tag: TagSequence, Constructed: true, Children: children}
}

// NewSet returns an empty universal SET.
func NewSet(children ...*Element) *Element {
	return &Element{Class: ClassUniversal, Tag: TagSet, Constructed: true, Children: children}
}

// NewOctetString returns a universal OCTET STRING holding s.
func NewOctetString(s string) *Element {
	return &Element{Class: ClassUniversal, Tag: TagOctetString, Value: []byte(s)}
}

// NewBytes returns a universal OCTET STRING holding b.
func NewBytes(b []byte) *Element {
	return &Element{Class: ClassUniversal, Tag: TagOctetString, Value: b}
}

// NewInteger returns a universal INTEGER holding v.
func NewInteger(v int64) *Element {
	return &Element{Class: ClassUniversal, Tag: TagInteger, Value: encodeInt(v)}
}

// NewEnumerated returns a universal ENUMERATED holding v.
func NewEnumerated(v int64) *Element {
	return &Element{Class: ClassUniversal, Tag: TagEnumerated, Value: encodeInt(v)}
}

// NewBoolean returns a universal BOOLEAN holding v.
func NewBoolean(v bool) *Element {
	b := byte(0x00)
	if v {
		b = 0xFF
	}
	return &Element{Class: ClassUniversal, Tag: TagBoolean, Value: []byte{b}}
}

// NewNull returns a universal NULL.
func NewNull() *Element {
	return &Element{Class: ClassUniversal, Tag: TagNull}
}

// Tagged re-tags e with the given class and tag, keeping its content. It
// returns a copy; e is not modified. This implements ASN.1 IMPLICIT tagging
// as used throughout LDAP.
func Tagged(class Class, tag uint32, e *Element) *Element {
	return &Element{Class: class, Tag: tag, Constructed: e.Constructed, Value: e.Value, Children: e.Children}
}

// ContextPrimitive returns a context-specific primitive element with raw
// content b.
func ContextPrimitive(tag uint32, b []byte) *Element {
	return &Element{Class: ClassContext, Tag: tag, Value: b}
}

// ContextConstructed returns a context-specific constructed element.
func ContextConstructed(tag uint32, children ...*Element) *Element {
	return &Element{Class: ClassContext, Tag: tag, Constructed: true, Children: children}
}

// ApplicationPrimitive returns an application-class primitive element.
func ApplicationPrimitive(tag uint32, b []byte) *Element {
	return &Element{Class: ClassApplication, Tag: tag, Value: b}
}

// ApplicationConstructed returns an application-class constructed element.
func ApplicationConstructed(tag uint32, children ...*Element) *Element {
	return &Element{Class: ClassApplication, Tag: tag, Constructed: true, Children: children}
}

// Append adds children to a constructed element and returns e for chaining.
func (e *Element) Append(children ...*Element) *Element {
	e.Children = append(e.Children, children...)
	return e
}

// Str returns the element content interpreted as a string.
func (e *Element) Str() string { return string(e.Value) }

// Bool returns the element content interpreted as a BOOLEAN.
func (e *Element) Bool() (bool, error) {
	if e.Constructed || len(e.Value) != 1 {
		return false, fmt.Errorf("ber: invalid boolean encoding (len %d)", len(e.Value))
	}
	return e.Value[0] != 0, nil
}

// Int returns the element content interpreted as a two's-complement INTEGER
// or ENUMERATED.
func (e *Element) Int() (int64, error) {
	if e.Constructed {
		return 0, errors.New("ber: integer must be primitive")
	}
	n := len(e.Value)
	if n == 0 {
		return 0, errors.New("ber: empty integer")
	}
	if n > 8 {
		return 0, fmt.Errorf("ber: integer too large (%d bytes)", n)
	}
	v := int64(0)
	if e.Value[0]&0x80 != 0 {
		v = -1 // sign-extend
	}
	for _, b := range e.Value {
		v = v<<8 | int64(b)
	}
	return v, nil
}

// Is reports whether e has the given class and tag.
func (e *Element) Is(class Class, tag uint32) bool {
	return e.Class == class && e.Tag == tag
}

// Child returns the i-th child, or an error when absent. It exists so
// message decoders read as straight-line code with checked access.
func (e *Element) Child(i int) (*Element, error) {
	if i < 0 || i >= len(e.Children) {
		return nil, fmt.Errorf("ber: missing child %d (have %d)", i, len(e.Children))
	}
	return e.Children[i], nil
}

func encodeInt(v int64) []byte {
	// Minimal two's-complement encoding.
	n := 1
	for ; n < 8; n++ {
		if v>>(uint(n)*8-1) == 0 || v>>(uint(n)*8-1) == -1 {
			break
		}
	}
	out := make([]byte, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = byte(v)
		v >>= 8
	}
	return out
}

// Encoding is two-pass: a length pass computes every definite length, then
// an append pass writes identifier, length and content into one buffer.
// The old single-pass encoder built each constructed element's content by
// concatenating freshly encoded children — O(depth) copies of every byte
// and an allocation per element, which dominated the profile of streaming
// search responses.

func appendLength(buf []byte, n int) []byte {
	if n < 0x80 {
		return append(buf, byte(n))
	}
	var tmp [8]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte(n)
		n >>= 8
	}
	buf = append(buf, 0x80|byte(len(tmp)-i))
	return append(buf, tmp[i:]...)
}

func lengthLen(n int) int {
	if n < 0x80 {
		return 1
	}
	l := 1
	for n > 0 {
		l++
		n >>= 8
	}
	return l
}

func appendIdentifier(buf []byte, class Class, tag uint32, constructed bool) []byte {
	b := byte(class)
	if constructed {
		b |= 0x20
	}
	if tag < 31 {
		return append(buf, b|byte(tag))
	}
	// High-tag-number form.
	buf = append(buf, b|0x1F)
	var tmp [5]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte(tag & 0x7F)
		tag >>= 7
		if tag == 0 {
			break
		}
	}
	for j := i; j < len(tmp)-1; j++ {
		tmp[j] |= 0x80
	}
	return append(buf, tmp[i:]...)
}

func identifierLen(tag uint32) int {
	if tag < 31 {
		return 1
	}
	l := 1
	for tag > 0 {
		l++
		tag >>= 7
	}
	return l
}

// contentLen returns the length of e's content octets.
func (e *Element) contentLen() int {
	if !e.Constructed {
		return len(e.Value)
	}
	n := 0
	for _, c := range e.Children {
		n += c.EncodedLen()
	}
	return n
}

// EncodedLen returns the number of bytes Encode produces for e.
func (e *Element) EncodedLen() int {
	c := e.contentLen()
	return identifierLen(e.Tag) + lengthLen(c) + c
}

// AppendTo appends the complete BER encoding of e to buf and returns the
// extended buffer. This is the allocation-free core of Encode/WriteTo;
// callers with a reusable buffer (per-connection writers) call it directly.
func (e *Element) AppendTo(buf []byte) []byte {
	buf = appendIdentifier(buf, e.Class, e.Tag, e.Constructed)
	buf = appendLength(buf, e.contentLen())
	if !e.Constructed {
		return append(buf, e.Value...)
	}
	for _, c := range e.Children {
		buf = c.AppendTo(buf)
	}
	return buf
}

// Encode returns the complete BER encoding of e.
func (e *Element) Encode() []byte {
	return e.AppendTo(make([]byte, 0, e.EncodedLen()))
}

// encodeBufs pools WriteTo's scratch buffers. Buffers that grew beyond
// maxPooledBuf are dropped so one huge element cannot pin memory.
var encodeBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

const maxPooledBuf = 1 << 20

// WriteTo encodes e to w in one Write, using a pooled buffer.
func (e *Element) WriteTo(w io.Writer) (int64, error) {
	bp := encodeBufs.Get().(*[]byte)
	buf := e.AppendTo((*bp)[:0])
	n, err := w.Write(buf)
	if cap(buf) <= maxPooledBuf {
		*bp = buf[:0]
		encodeBufs.Put(bp)
	}
	return int64(n), err
}

// Decode parses a single element from the front of b, returning the element
// and the number of bytes consumed.
func Decode(b []byte) (*Element, int, error) {
	return decode(b, 0)
}

// DecodeFull parses b as exactly one element with no trailing bytes.
func DecodeFull(b []byte) (*Element, error) {
	e, n, err := Decode(b)
	if err != nil {
		return nil, err
	}
	if n != len(b) {
		return nil, fmt.Errorf("ber: %d trailing bytes after element", len(b)-n)
	}
	return e, nil
}

func decode(b []byte, depth int) (*Element, int, error) {
	if depth > maxDepth {
		return nil, 0, errors.New("ber: nesting too deep")
	}
	if len(b) == 0 {
		return nil, 0, ErrTruncated
	}
	ident := b[0]
	class := Class(ident & 0xC0)
	constructed := ident&0x20 != 0
	tag := uint32(ident & 0x1F)
	off := 1
	if tag == 0x1F {
		tag = 0
		for {
			if off >= len(b) {
				return nil, 0, ErrTruncated
			}
			if tag > (1<<25)-1 {
				return nil, 0, errors.New("ber: tag number too large")
			}
			c := b[off]
			off++
			tag = tag<<7 | uint32(c&0x7F)
			if c&0x80 == 0 {
				break
			}
		}
	}
	length, n, err := decodeLength(b[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	if length > MaxElementSize {
		return nil, 0, fmt.Errorf("ber: element of %d bytes exceeds limit", length)
	}
	if off+length > len(b) {
		return nil, 0, ErrTruncated
	}
	content := b[off : off+length]
	e := &Element{Class: class, Tag: tag, Constructed: constructed}
	if !constructed {
		e.Value = content
		return e, off + length, nil
	}
	for rest := content; len(rest) > 0; {
		child, n, err := decode(rest, depth+1)
		if err != nil {
			return nil, 0, err
		}
		e.Children = append(e.Children, child)
		rest = rest[n:]
	}
	return e, off + length, nil
}

func decodeLength(b []byte) (length, consumed int, err error) {
	if len(b) == 0 {
		return 0, 0, ErrTruncated
	}
	first := b[0]
	if first < 0x80 {
		return int(first), 1, nil
	}
	n := int(first & 0x7F)
	if n == 0 {
		return 0, 0, errors.New("ber: indefinite length not supported")
	}
	if n > 4 {
		return 0, 0, fmt.Errorf("ber: length of %d bytes not supported", n)
	}
	if len(b) < 1+n {
		return 0, 0, ErrTruncated
	}
	v := 0
	for _, c := range b[1 : 1+n] {
		v = v<<8 | int(c)
	}
	return v, 1 + n, nil
}

// ReadElement reads one complete BER element from r. It reads the identifier
// and length octets byte-at-a-time, then the content in full, so it can sit
// directly on a net.Conn without framing. The result owns its memory (safe
// to retain), and the message is bounded by DefaultMaxMessageSize.
//
// Connection loops should prefer Reader, which amortizes the per-message
// buffers and Element allocations this function pays on every call.
func ReadElement(r io.Reader) (*Element, error) {
	header := make([]byte, 0, 8)
	one := make([]byte, 1)

	readByte := func() (byte, error) {
		if _, err := io.ReadFull(r, one); err != nil {
			return 0, err
		}
		header = append(header, one[0])
		return one[0], nil
	}

	ident, err := readByte()
	if err != nil {
		return nil, err
	}
	if ident&0x1F == 0x1F {
		for {
			c, err := readByte()
			if err != nil {
				return nil, err
			}
			if c&0x80 == 0 {
				break
			}
			if len(header) > 6 {
				return nil, errors.New("ber: tag number too large")
			}
		}
	}
	lb, err := readByte()
	if err != nil {
		return nil, err
	}
	length := 0
	if lb < 0x80 {
		length = int(lb)
	} else {
		n := int(lb & 0x7F)
		if n == 0 || n > 4 {
			return nil, fmt.Errorf("ber: unsupported length form %#x", lb)
		}
		for i := 0; i < n; i++ {
			c, err := readByte()
			if err != nil {
				return nil, err
			}
			length = length<<8 | int(c)
		}
	}
	if total := len(header) + length; total > DefaultMaxMessageSize {
		return nil, fmt.Errorf("%w: %d bytes over limit %d", ErrTooLarge, total, DefaultMaxMessageSize)
	}
	if length > MaxElementSize {
		return nil, fmt.Errorf("ber: element of %d bytes exceeds limit", length)
	}
	buf := make([]byte, len(header)+length)
	copy(buf, header)
	if _, err := io.ReadFull(r, buf[len(header):]); err != nil {
		return nil, err
	}
	e, _, err := Decode(buf)
	return e, err
}

// Clone returns a deep copy of e that owns all of its memory. It is the
// copy-on-retain escape hatch for borrowed trees produced by Reader /
// Decoder: anything that must outlive the next read (cache entries,
// journal lines, changelog records) clones first.
func (e *Element) Clone() *Element {
	if e == nil {
		return nil
	}
	c := &Element{Class: e.Class, Tag: e.Tag, Constructed: e.Constructed}
	if e.Value != nil {
		c.Value = append([]byte(nil), e.Value...)
	}
	if e.Children != nil {
		c.Children = make([]*Element, len(e.Children))
		for i, ch := range e.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// String renders e for debugging.
func (e *Element) String() string {
	if e == nil {
		return "<nil>"
	}
	if e.Constructed {
		return fmt.Sprintf("%s[%d]{%d children}", e.Class, e.Tag, len(e.Children))
	}
	return fmt.Sprintf("%s[%d](%q)", e.Class, e.Tag, e.Value)
}
