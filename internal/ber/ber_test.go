package ber

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestIntegerRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 127, 128, -128, -129, 255, 256, 1 << 20, -(1 << 20), math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		e := NewInteger(v)
		dec, err := DecodeFull(e.Encode())
		if err != nil {
			t.Fatalf("decode %d: %v", v, err)
		}
		got, err := dec.Int()
		if err != nil {
			t.Fatalf("Int() for %d: %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %d: got %d", v, got)
		}
	}
}

func TestIntegerMinimalEncoding(t *testing.T) {
	cases := map[int64]int{
		0:       1,
		127:     1,
		128:     2, // needs a leading 0x00
		-128:    1,
		-129:    2,
		1 << 15: 3,
	}
	for v, wantLen := range cases {
		if got := len(NewInteger(v).Value); got != wantLen {
			t.Errorf("integer %d: content length %d, want %d", v, got, wantLen)
		}
	}
}

func TestIntegerProperty(t *testing.T) {
	f := func(v int64) bool {
		dec, err := DecodeFull(NewInteger(v).Encode())
		if err != nil {
			return false
		}
		got, err := dec.Int()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOctetStringRoundTripProperty(t *testing.T) {
	f := func(s []byte) bool {
		dec, err := DecodeFull(NewBytes(s).Encode())
		if err != nil {
			return false
		}
		return bytes.Equal(dec.Value, s) && dec.Is(ClassUniversal, TagOctetString)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolean(t *testing.T) {
	for _, v := range []bool{true, false} {
		dec, err := DecodeFull(NewBoolean(v).Encode())
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Bool()
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("bool %v round-tripped to %v", v, got)
		}
	}
}

func TestSequenceNesting(t *testing.T) {
	seq := NewSequence(
		NewInteger(42),
		NewOctetString("cn=John Doe, o=Marketing, o=Lucent"),
		NewSequence(NewBoolean(true), NewEnumerated(3)),
	)
	dec, err := DecodeFull(seq.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Children) != 3 {
		t.Fatalf("got %d children, want 3", len(dec.Children))
	}
	inner, err := dec.Child(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(inner.Children) != 2 {
		t.Fatalf("inner children = %d, want 2", len(inner.Children))
	}
	en, err := inner.Children[1].Int()
	if err != nil || en != 3 {
		t.Errorf("enumerated = %d, %v", en, err)
	}
}

func TestTaggedPreservesContent(t *testing.T) {
	orig := NewOctetString("telephoneNumber")
	tagged := Tagged(ClassContext, 7, orig)
	dec, err := DecodeFull(tagged.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Is(ClassContext, 7) {
		t.Fatalf("tag = %v/%d", dec.Class, dec.Tag)
	}
	if dec.Str() != "telephoneNumber" {
		t.Errorf("content = %q", dec.Str())
	}
	if orig.Class != ClassUniversal {
		t.Error("Tagged mutated its argument")
	}
}

func TestHighTagNumbers(t *testing.T) {
	for _, tag := range []uint32{30, 31, 127, 128, 16383, 1 << 20} {
		e := &Element{Class: ClassApplication, Tag: tag, Value: []byte("x")}
		dec, err := DecodeFull(e.Encode())
		if err != nil {
			t.Fatalf("tag %d: %v", tag, err)
		}
		if dec.Tag != tag {
			t.Errorf("tag %d decoded as %d", tag, dec.Tag)
		}
	}
}

func TestLongFormLength(t *testing.T) {
	big := make([]byte, 300)
	for i := range big {
		big[i] = byte(i)
	}
	dec, err := DecodeFull(NewBytes(big).Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Value, big) {
		t.Error("long-form content mismatch")
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := NewSequence(NewInteger(1), NewOctetString("abcdef")).Encode()
	for i := 1; i < len(full); i++ {
		if _, _, err := Decode(full[:i]); err == nil {
			t.Errorf("decoding %d-byte prefix succeeded", i)
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	b := append(NewInteger(5).Encode(), 0x00)
	if _, err := DecodeFull(b); err == nil {
		t.Error("DecodeFull accepted trailing bytes")
	}
}

func TestDecodeRejectsIndefiniteLength(t *testing.T) {
	// 0x30 0x80 ... is an indefinite-length SEQUENCE (not valid in LDAP).
	if _, _, err := Decode([]byte{0x30, 0x80, 0x00, 0x00}); err == nil {
		t.Error("indefinite length accepted")
	}
}

func TestDecodeRejectsHugeElement(t *testing.T) {
	// Claims 2^31-ish content length.
	b := []byte{0x04, 0x84, 0x7F, 0xFF, 0xFF, 0xFF}
	if _, _, err := Decode(b); err == nil {
		t.Error("oversized element accepted")
	}
}

func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		// Must not panic; errors are fine.
		Decode(b)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadElementFromStream(t *testing.T) {
	var buf bytes.Buffer
	first := NewSequence(NewInteger(1), NewOctetString("one"))
	second := NewSequence(NewInteger(2), NewOctetString("two"))
	buf.Write(first.Encode())
	buf.Write(second.Encode())

	e1, err := ReadElement(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e1.Children[0].Int(); v != 1 {
		t.Errorf("first message id = %d", v)
	}
	e2, err := ReadElement(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Children[1].Str() != "two" {
		t.Errorf("second payload = %q", e2.Children[1].Str())
	}
	if _, err := ReadElement(&buf); err == nil {
		t.Error("expected EOF on empty stream")
	}
}

func TestReadElementLongForm(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 1000)
	var buf bytes.Buffer
	buf.Write(NewBytes(payload).Encode())
	e, err := ReadElement(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e.Value, payload) {
		t.Error("long-form stream read mismatch")
	}
}

func TestChildOutOfRange(t *testing.T) {
	seq := NewSequence(NewNull())
	if _, err := seq.Child(1); err == nil {
		t.Error("Child(1) on 1-element sequence succeeded")
	}
	if _, err := seq.Child(-1); err == nil {
		t.Error("Child(-1) succeeded")
	}
}

func TestBoolRejectsBadEncodings(t *testing.T) {
	e := &Element{Class: ClassUniversal, Tag: TagBoolean, Value: []byte{1, 2}}
	if _, err := e.Bool(); err == nil {
		t.Error("two-byte boolean accepted")
	}
}

func TestIntRejectsEmptyAndOversized(t *testing.T) {
	e := &Element{Class: ClassUniversal, Tag: TagInteger}
	if _, err := e.Int(); err == nil {
		t.Error("empty integer accepted")
	}
	e.Value = make([]byte, 9)
	if _, err := e.Int(); err == nil {
		t.Error("9-byte integer accepted")
	}
}

func BenchmarkEncodeSearchRequestShape(b *testing.B) {
	e := NewSequence(
		NewInteger(7),
		ApplicationConstructed(3,
			NewOctetString("o=Lucent"),
			NewEnumerated(2),
			NewEnumerated(0),
			NewInteger(0),
			NewInteger(0),
			NewBoolean(false),
			ContextConstructed(3, NewOctetString("cn"), NewOctetString("John Doe")),
		),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.Encode()
	}
}

func BenchmarkDecodeSearchRequestShape(b *testing.B) {
	enc := NewSequence(
		NewInteger(7),
		ApplicationConstructed(3,
			NewOctetString("o=Lucent"),
			NewEnumerated(2),
			NewEnumerated(0),
			NewInteger(0),
			NewInteger(0),
			NewBoolean(false),
			ContextConstructed(3, NewOctetString("cn"), NewOctetString("John Doe")),
		),
	).Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFull(enc); err != nil {
			b.Fatal(err)
		}
	}
}
