package ber

import (
	"errors"
	"fmt"
)

// FrameSize parses the identifier and length octets of the BER element at
// the front of b and returns the total encoded size (header + content
// octets) of that element. It is the slice-based twin of
// Reader.MessageBuffered: event-loop servers that accumulate raw socket
// bytes use it to find complete frames without a streaming reader.
//
//	size, ok, err := FrameSize(buf, max)
//
// ok is false when b is too short to hold the header (read more bytes and
// retry); err is non-nil for malformed headers or a declared total above
// max (wrapping ErrTooLarge), applying exactly the checks — in the same
// order, with the same messages — that Reader.ReadElement applies, so the
// two ingest paths cannot disagree on which inputs are refused. max <= 0
// means DefaultMaxMessageSize. Note ok=true only says the header is
// complete and legal: b may still hold fewer than size content bytes.
func FrameSize(b []byte, max int) (size int, ok bool, err error) {
	if max <= 0 {
		max = DefaultMaxMessageSize
	}
	if len(b) == 0 {
		return 0, false, nil
	}
	off := 1
	if b[0]&0x1F == 0x1F {
		for {
			if off >= len(b) {
				return 0, false, nil
			}
			c := b[off]
			off++
			if c&0x80 == 0 {
				break
			}
			// Matches ReadElement: identifier plus six continuation octets is
			// already past any tag the decoder accepts (25 bits).
			if off > 6 {
				return 0, false, errors.New("ber: tag number too large")
			}
		}
	}
	if off >= len(b) {
		return 0, false, nil
	}
	lb := b[off]
	off++
	length := 0
	if lb < 0x80 {
		length = int(lb)
	} else {
		n := int(lb & 0x7F)
		if n == 0 || n > 4 {
			return 0, false, fmt.Errorf("ber: unsupported length form %#x", lb)
		}
		if off+n > len(b) {
			return 0, false, nil
		}
		for i := 0; i < n; i++ {
			length = length<<8 | int(b[off+i])
		}
		off += n
	}
	if total := off + length; total > max {
		return 0, false, fmt.Errorf("%w: %d bytes over limit %d", ErrTooLarge, total, max)
	}
	if length > MaxElementSize {
		return 0, false, fmt.Errorf("ber: element of %d bytes exceeds limit", length)
	}
	return off + length, true, nil
}

// Trim drops the decoder's oversized retained slabs (see maxRetainedElems),
// so one unusually large message does not pin a long-lived Decoder's memory.
// Reader does this automatically per read; standalone Decoder holders (the
// reactor's worker pool) call it between serving bursts.
func (d *Decoder) Trim() {
	d.a.trim()
}
