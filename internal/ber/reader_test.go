package ber

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// corpusInputs loads every checked-in fuzz input for FuzzDecode, so the
// differential tests cover exactly the adversarial shapes fuzzing has found.
func corpusInputs(t *testing.T) [][]byte {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	var out [][]byte
	for _, ent := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "[]byte(") {
				continue
			}
			q := strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")")
			s, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s: unquote %s: %v", ent.Name(), q, err)
			}
			out = append(out, []byte(s))
		}
	}
	if len(out) == 0 {
		t.Fatal("empty corpus")
	}
	return out
}

// sampleMessages returns realistic wire messages (the shapes the LDAP layer
// actually produces) plus edge encodings.
func sampleMessages() [][]byte {
	deep := NewSequence()
	cur := deep
	for i := 0; i < 20; i++ {
		next := NewSequence(NewInteger(int64(i)))
		cur.Append(next)
		cur = next
	}
	msgs := []*Element{
		// modify-request shape
		NewSequence(NewInteger(7), ApplicationConstructed(6,
			NewOctetString("cn=Bench Person 0001,o=Lucent"),
			NewSequence(NewSequence(NewEnumerated(2), NewSequence(
				NewOctetString("roomNumber"), NewSet(NewOctetString("W-1041"))))))),
		// search-entry shape
		NewSequence(NewInteger(3), ApplicationConstructed(4,
			NewOctetString("cn=Bench Person 0001,o=Lucent"),
			NewSequence(
				NewSequence(NewOctetString("objectClass"), NewSet(NewOctetString("mcPerson"), NewOctetString("definityUser"))),
				NewSequence(NewOctetString("cn"), NewSet(NewOctetString("Bench Person 0001")))))),
		NewNull(),
		NewBoolean(true),
		Tagged(ClassContext, 31, NewOctetString("high tag")), // high-tag-number form
		NewBytes(bytes.Repeat([]byte{0xAB}, 300)),            // long-form length
		deep,
		NewSequence(), // empty constructed
	}
	var out [][]byte
	for _, m := range msgs {
		out = append(out, m.Encode())
	}
	return out
}

func sameError(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// TestDecoderDifferential pins the zero-copy arena decoder byte-identical to
// the canonical Decode over the checked-in fuzz corpus and realistic message
// shapes: same tree, same consumed count, same error.
func TestDecoderDifferential(t *testing.T) {
	inputs := append(corpusInputs(t), sampleMessages()...)
	var d Decoder
	for i, in := range inputs {
		want, wantN, wantErr := Decode(in)
		got, gotN, gotErr := d.Decode(in)
		if !sameError(wantErr, gotErr) {
			t.Fatalf("input %d (%x): error mismatch: Decode=%v Decoder=%v", i, in, wantErr, gotErr)
		}
		if gotN != wantN {
			t.Fatalf("input %d (%x): consumed %d, want %d", i, in, gotN, wantN)
		}
		if wantErr == nil && !reflect.DeepEqual(want, got) {
			t.Fatalf("input %d (%x): tree mismatch:\nDecode:  %v\nDecoder: %v", i, in, want, got)
		}
	}
}

// TestReaderDifferential pins Reader.ReadElement against the allocating
// ReadElement over the same inputs, framed as streams.
func TestReaderDifferential(t *testing.T) {
	inputs := append(corpusInputs(t), sampleMessages()...)
	rd := NewReader(bytes.NewReader(nil))
	for i, in := range inputs {
		want, wantErr := ReadElement(bytes.NewReader(in))
		src := bytes.NewReader(in)
		rd.Reset(src)
		got, gotErr := rd.ReadElement()
		if !sameError(wantErr, gotErr) {
			t.Fatalf("input %d (%x): error mismatch: ReadElement=%v Reader=%v", i, in, wantErr, gotErr)
		}
		if wantErr == nil && !reflect.DeepEqual(want, got) {
			t.Fatalf("input %d (%x): tree mismatch:\nReadElement: %v\nReader:      %v", i, in, want, got)
		}
	}
}

// TestReaderBorrowedAliasing pins the ownership rule: trees from one
// ReadElement are overwritten by the next, and Clone detaches them.
func TestReaderBorrowedAliasing(t *testing.T) {
	msg1 := NewSequence(NewInteger(1), NewOctetString("first message value")).Encode()
	msg2 := NewSequence(NewInteger(2), NewOctetString("SECOND OVERWRITES!!")).Encode()
	rd := NewReader(bytes.NewReader(append(append([]byte(nil), msg1...), msg2...)))

	e1, err := rd.ReadElement()
	if err != nil {
		t.Fatal(err)
	}
	retained := e1.Clone()              // the copy-on-retain rule
	borrowedVal := e1.Children[1].Value // aliases rd.buf
	snapshot := string(e1.Children[1].Value)

	if _, err := rd.ReadElement(); err != nil {
		t.Fatal(err)
	}
	// The borrowed slice aliases the reused read buffer, so it must now show
	// msg2's bytes — proof the buffer really is reused, and why retention
	// without Clone is a bug.
	if string(borrowedVal) == snapshot {
		t.Fatalf("read buffer was not reused; borrowed value still %q", borrowedVal)
	}
	// The clone is unaffected.
	if got := string(retained.Children[1].Value); got != snapshot {
		t.Fatalf("cloned value changed: %q, want %q", got, snapshot)
	}
}

// TestReaderAllocs is the decode-path allocation regression: steady-state
// wire reads allocate nothing, and in any case no more than half of what the
// pre-PR per-message decoder (ReadElement, unchanged) pays on the same
// message.
func TestReaderAllocs(t *testing.T) {
	msg := sampleMessages()[0] // modify-request shape
	src := bytes.NewReader(msg)
	rd := NewReader(src)

	newAllocs := testing.AllocsPerRun(200, func() {
		src.Reset(msg)
		rd.Reset(src)
		if _, err := rd.ReadElement(); err != nil {
			t.Fatal(err)
		}
	})
	oldAllocs := testing.AllocsPerRun(200, func() {
		src.Reset(msg)
		if _, err := ReadElement(src); err != nil {
			t.Fatal(err)
		}
	})
	if newAllocs > 0 {
		t.Errorf("Reader.ReadElement allocates %.1f per message, want 0", newAllocs)
	}
	if newAllocs > oldAllocs/2 {
		t.Errorf("Reader.ReadElement allocates %.1f per message, want <= half of legacy %.1f", newAllocs, oldAllocs)
	}
	t.Logf("allocs/msg: reader=%.1f legacy=%.1f", newAllocs, oldAllocs)
}

// TestReaderMaxMessageSize: an oversized declared length fails with
// ErrTooLarge before any content allocation or read.
func TestReaderMaxMessageSize(t *testing.T) {
	// SEQUENCE with a declared 1 MB body, but only a few bytes behind it.
	huge := []byte{0x30, 0x83, 0x10, 0x00, 0x00, 0x01, 0x02, 0x03}
	rd := NewReader(bytes.NewReader(huge))
	rd.SetMaxMessageSize(1024)
	_, err := rd.ReadElement()
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	// The default bound applies to the legacy path too.
	over := []byte{0x30, 0x84, 0x01, 0x00, 0x00, 0x01} // 16 MB + 1... declared
	if _, err := ReadElement(bytes.NewReader(over)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("legacy ReadElement: got %v, want ErrTooLarge", err)
	}
	// Within bounds still works.
	ok := NewOctetString("fits").Encode()
	rd2 := NewReader(bytes.NewReader(ok))
	rd2.SetMaxMessageSize(64)
	if _, err := rd2.ReadElement(); err != nil {
		t.Fatalf("in-bounds read failed: %v", err)
	}
}

// TestMessageBuffered drives the flush-coalescing predicate: complete
// pipelined messages report true, partial ones false, malformed or
// oversized pending bytes true (so the reader surfaces the error instead of
// stalling behind a skipped flush).
func TestMessageBuffered(t *testing.T) {
	msg1 := NewSequence(NewInteger(1), NewOctetString("one")).Encode()
	msg2 := NewSequence(NewInteger(2), NewOctetString("two")).Encode()

	// Nothing read yet: nothing buffered.
	rd := NewReader(bytes.NewReader(append(append([]byte(nil), msg1...), msg2...)))
	if rd.MessageBuffered() {
		t.Fatal("fresh reader claims a buffered message")
	}
	// After reading msg1, msg2 is fully buffered.
	if _, err := rd.ReadElement(); err != nil {
		t.Fatal(err)
	}
	if !rd.MessageBuffered() {
		t.Fatal("complete pipelined message not detected")
	}
	if _, err := rd.ReadElement(); err != nil {
		t.Fatal(err)
	}
	if rd.MessageBuffered() {
		t.Fatal("drained reader claims a buffered message")
	}

	// Partial second message: not complete, must report false so the server
	// flushes before blocking.
	partial := append(append([]byte(nil), msg1...), msg2[:3]...)
	rd = NewReader(bytes.NewReader(partial))
	if _, err := rd.ReadElement(); err != nil {
		t.Fatal(err)
	}
	if rd.MessageBuffered() {
		t.Fatal("partial message reported as complete")
	}

	// Oversized pending message: report true so the read errors promptly.
	over := []byte{0x30, 0x84, 0x00, 0x50, 0x00, 0x00}
	rd = NewReader(bytes.NewReader(append(append([]byte(nil), msg1...), over...)))
	rd.SetMaxMessageSize(1024)
	if _, err := rd.ReadElement(); err != nil {
		t.Fatal(err)
	}
	if !rd.MessageBuffered() {
		t.Fatal("oversized pending message should report buffered (error path)")
	}
	if _, err := rd.ReadElement(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

// TestReaderStream re-runs the legacy stream test shape against Reader: two
// elements back-to-back, then EOF.
func TestReaderStream(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(NewOctetString("hello").Encode())
	buf.Write(NewInteger(42).Encode())
	rd := NewReader(&buf)
	e1, err := rd.ReadElement()
	if err != nil {
		t.Fatal(err)
	}
	if e1.Str() != "hello" {
		t.Fatalf("first element %q", e1.Str())
	}
	e2, err := rd.ReadElement()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e2.Int(); v != 42 {
		t.Fatalf("second element %d", v)
	}
	if _, err := rd.ReadElement(); err != io.EOF {
		t.Fatalf("got %v at end of stream, want io.EOF", err)
	}
}
