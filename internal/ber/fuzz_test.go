package ber

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the BER decoder. The decoder sits
// directly on the network in the LTAP gateway and the backing directory, so
// it must never panic, never over-read, and its encoder must be a fixed
// point: whatever decodes must re-encode to a form that decodes back to the
// same canonical bytes.
func FuzzDecode(f *testing.F) {
	// A bind request, a search request shape, and assorted edge encodings.
	f.Add([]byte{0x30, 0x0c, 0x02, 0x01, 0x01, 0x60, 0x07, 0x02, 0x01, 0x03, 0x04, 0x00, 0x80, 0x00})
	f.Add([]byte{0x04, 0x03, 'a', 'b', 'c'})
	f.Add([]byte{0x30, 0x80})                   // indefinite length
	f.Add([]byte{0x02, 0x81, 0x01, 0x7f})       // long-form length
	f.Add([]byte{0x1f, 0x85, 0x23, 0x01, 0x00}) // high tag number
	f.Add([]byte{0x30, 0x02, 0x30, 0x00})       // nesting
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, n, err := Decode(data)
		// The zero-copy arena decoder must agree with the canonical decoder
		// on every input: same error, same consumed count, same tree.
		var d Decoder
		ae, an, aerr := d.Decode(data)
		if (err == nil) != (aerr == nil) {
			t.Fatalf("decoder divergence on error: Decode=%v Decoder=%v", err, aerr)
		}
		if err == nil {
			if an != n {
				t.Fatalf("decoder divergence on consumed: Decode=%d Decoder=%d", n, an)
			}
			if enc, aenc := e.Encode(), ae.Encode(); !bytes.Equal(enc, aenc) {
				t.Fatalf("decoder divergence on tree:\nDecode:  %x\nDecoder: %x", enc, aenc)
			}
		}
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		if e == nil {
			t.Fatal("nil element without error")
		}
		// Canonical round-trip: encode, decode, encode again.
		enc := e.Encode()
		e2, err := DecodeFull(enc)
		if err != nil {
			t.Fatalf("re-decode of encoded element failed: %v\nencoded: %x", err, enc)
		}
		if enc2 := e2.Encode(); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point:\nfirst:  %x\nsecond: %x", enc, enc2)
		}
	})
}
