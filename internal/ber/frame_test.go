package ber

import (
	"bufio"
	"bytes"
	"errors"
	"testing"
)

func TestFrameSizeBasic(t *testing.T) {
	enc := NewSequence(NewInteger(7), NewOctetString("hello")).Encode()

	// Every strict prefix of the header reports "need more bytes"; once the
	// header is in, the full frame size comes back even before the content.
	for i := 0; i < len(enc); i++ {
		size, ok, err := FrameSize(enc[:i], 0)
		if err != nil {
			t.Fatalf("prefix %d: unexpected error %v", i, err)
		}
		if i < 2 { // identifier + short-form length
			if ok {
				t.Fatalf("prefix %d: want ok=false, got size %d", i, size)
			}
			continue
		}
		if !ok || size != len(enc) {
			t.Fatalf("prefix %d: got (%d,%v), want (%d,true)", i, size, ok, len(enc))
		}
	}
	// Trailing bytes beyond the first frame are ignored.
	size, ok, err := FrameSize(append(append([]byte{}, enc...), enc...), 0)
	if err != nil || !ok || size != len(enc) {
		t.Fatalf("two frames: got (%d,%v,%v), want (%d,true,nil)", size, ok, err, len(enc))
	}
}

func TestFrameSizeLongForm(t *testing.T) {
	enc := NewOctetString(string(bytes.Repeat([]byte{'x'}, 300))).Encode() // 0x04 0x82 0x01 0x2C ...
	size, ok, err := FrameSize(enc, 0)
	if err != nil || !ok || size != len(enc) {
		t.Fatalf("got (%d,%v,%v), want (%d,true,nil)", size, ok, err, len(enc))
	}
	// Header truncated mid long-form length: need more bytes, no error.
	if _, ok, err := FrameSize(enc[:3], 0); ok || err != nil {
		t.Fatalf("truncated long form: got ok=%v err=%v, want false,nil", ok, err)
	}
}

func TestFrameSizeOversize(t *testing.T) {
	// The oversize probe used by the wire tests: SEQUENCE declaring 16 MB.
	hdr := []byte{0x30, 0x84, 0x01, 0x00, 0x00, 0x00}
	_, _, err := FrameSize(hdr, 1<<16)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	// The same declared length under a permissive max is a legal header.
	size, ok, err := FrameSize(hdr, 32<<20)
	if err != nil || !ok || size != 6+(1<<24) {
		t.Fatalf("got (%d,%v,%v), want (%d,true,nil)", size, ok, err, 6+(1<<24))
	}
}

func TestFrameSizeMalformed(t *testing.T) {
	if _, _, err := FrameSize([]byte{0x30, 0x85, 0, 0, 0, 0, 0}, 0); err == nil {
		t.Fatal("5-octet length form: want error")
	}
	if _, _, err := FrameSize([]byte{0x30, 0x80}, 0); err == nil {
		t.Fatal("indefinite length: want error")
	}
	if _, _, err := FrameSize([]byte{0x1F, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, 0); err == nil {
		t.Fatal("tag continuation past 25 bits: want error")
	}
}

// FrameSize and Reader.MessageBuffered must agree: whenever FrameSize sees a
// complete frame (or a header the reader would refuse), a Reader holding the
// same bytes must report a message buffered, and vice versa — the goroutine
// and reactor accept loops key their flush decisions off these two.
func TestFrameSizeMatchesMessageBuffered(t *testing.T) {
	enc := NewSequence(NewInteger(3), NewOctetString("abcdef")).Encode()
	cases := [][]byte{
		enc, enc[:1], enc[:2], enc[:5],
		append(append([]byte{}, enc...), enc[:3]...),
		{0x30, 0x85, 0, 0, 0, 0, 0},          // bad length form
		{0x30, 0x84, 0x01, 0x00, 0x00, 0x00}, // oversize vs small max
	}
	const max = 1 << 16
	for i, in := range cases {
		size, ok, err := FrameSize(in, max)
		complete := err != nil || (ok && size <= len(in))
		rd := NewReader(bufio.NewReaderSize(bytes.NewReader(in), 4096))
		rd.SetMaxMessageSize(max)
		// Prime the bufio reader so everything available is buffered.
		if len(in) > 0 {
			_, _ = rd.br.Peek(len(in))
		}
		if got := rd.MessageBuffered(); got != complete {
			t.Errorf("case %d (% x): FrameSize says complete=%v, MessageBuffered says %v",
				i, in, complete, got)
		}
	}
}
