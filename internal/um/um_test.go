package um_test

import (
	"testing"

	metacomm "metacomm"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/lexpress"
	"metacomm/internal/ltap"
	"metacomm/internal/um"
)

func startSystem(t *testing.T) *metacomm.System {
	t.Helper()
	s, err := metacomm.Start(metacomm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := um.New(um.Config{}); err == nil {
		t.Error("config without library accepted")
	}
	lib := lexpress.MustStandardLibrary()
	if _, err := um.New(um.Config{Library: lib}); err == nil {
		t.Error("config without backing accepted")
	}
	if _, err := um.New(um.Config{Library: lib, Backing: fakeClient{},
		ClosureMapping: "NoSuchMapping"}); err == nil {
		t.Error("unknown closure mapping accepted")
	}
}

// fakeClient satisfies filter.LDAPClient minimally for config validation.
type fakeClient struct{}

func (fakeClient) Search(*ldap.SearchRequest) ([]*ldapclient.Entry, error) { return nil, nil }
func (fakeClient) Add(string, []ldap.Attribute) error                      { return nil }
func (fakeClient) Modify(string, []ldap.Change) error                      { return nil }
func (fakeClient) ModifyDN(string, string, bool) error                     { return nil }
func (fakeClient) Delete(string) error                                     { return nil }

func TestStartTwiceFails(t *testing.T) {
	s := startSystem(t)
	if err := s.UM.Start(); err == nil {
		t.Error("second Start succeeded")
	}
	// Stop is idempotent (Close calls it again at cleanup).
	s.UM.Stop()
	s.UM.Stop()
}

func TestOnUpdateAfterStop(t *testing.T) {
	s := startSystem(t)
	s.UM.Stop()
	res := s.UM.OnUpdate(ltap.Event{Kind: ltap.EventDelete, DN: "cn=x,o=Lucent"})
	if res.Code != ldap.ResultUnavailable {
		t.Errorf("res = %+v", res)
	}
}

func TestProcessRejectsBadTargets(t *testing.T) {
	s := startSystem(t)
	c, err := s.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Modify("cn=Ghost,o=Lucent", []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"x"}}}})
	if !ldap.IsCode(err, ldap.ResultNoSuchObject) {
		t.Errorf("modify ghost err = %v", err)
	}
	if err := c.Delete("cn=Ghost,o=Lucent"); !ldap.IsCode(err, ldap.ResultNoSuchObject) {
		t.Errorf("delete ghost err = %v", err)
	}
	if err := c.ModifyDN("cn=Ghost,o=Lucent", "cn=Specter", true); !ldap.IsCode(err, ldap.ResultNoSuchObject) {
		t.Errorf("rename ghost err = %v", err)
	}
}

func TestSynchronizeUnknownDevice(t *testing.T) {
	s := startSystem(t)
	if _, err := s.UM.Synchronize("router"); err == nil {
		t.Error("sync of unregistered device succeeded")
	}
}

func TestSynchronizeAllCoversBothDevices(t *testing.T) {
	s := startSystem(t)
	// Seed both devices out-of-band.
	st := lexpress.NewRecord()
	st.Set("extension", "2-0100")
	st.Set("name", "Sync One")
	if _, err := s.PBX.Store.Add("legacy", st); err != nil {
		t.Fatal(err)
	}
	mb := lexpress.NewRecord()
	mb.Set("mailbox", "0200")
	mb.Set("name", "Sync Two")
	if _, err := s.MP.Store.Add("legacy", mb); err != nil {
		t.Fatal(err)
	}
	stats, err := s.UM.SynchronizeAll()
	if err != nil {
		t.Fatal(err)
	}
	// The live DDU path may beat the sync to either record (both routes
	// are legitimate); what matters is that each device's record is
	// accounted for — created by the pass or already in sync.
	for _, dev := range []string{"pbx", "msgplat"} {
		st := stats[dev]
		if st.DeviceRecords < 1 || st.DirectoryAdds+st.AlreadyInSync+st.DirectoryMods < 1 {
			t.Errorf("%s stats = %+v", dev, st)
		}
	}
	// Both people are now in the directory.
	c, err := s.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, name := range []string{"cn=Sync One,o=Lucent", "cn=Sync Two,o=Lucent"} {
		if _, err := c.SearchOne(&ldap.SearchRequest{BaseDN: name, Scope: ldap.ScopeBaseObject}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestStatsProgress(t *testing.T) {
	s := startSystem(t)
	c, err := s.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before := s.UM.Stats()
	err = c.Add("cn=Counter,o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
		{Type: "cn", Values: []string{"Counter"}},
		{Type: "sn", Values: []string{"Counter"}},
		{Type: "definityExtension", Values: []string{"2-0300"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	after := s.UM.Stats()
	if after.UpdatesProcessed <= before.UpdatesProcessed {
		t.Error("UpdatesProcessed did not advance")
	}
	if after.DeviceApplies <= before.DeviceApplies {
		t.Error("DeviceApplies did not advance")
	}
	if after.ClosureChanges <= before.ClosureChanges {
		t.Error("ClosureChanges did not advance (mailbox derivation expected)")
	}
}

func TestErrorContainerVisibleUnderSuffix(t *testing.T) {
	s := startSystem(t)
	c, err := s.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	e, err := c.SearchOne(&ldap.SearchRequest{
		BaseDN: "ou=errors,o=Lucent", Scope: ldap.ScopeBaseObject})
	if err != nil {
		t.Fatal(err)
	}
	if e.First("ou") != "errors" {
		t.Errorf("entry = %v", e.Attributes)
	}
}

func TestSynchronizeAllQuiescesOnce(t *testing.T) {
	s := startSystem(t)
	// Wrap the gateway quiesce with counters: reconciling every device must
	// cycle the system through quiesce exactly once, not once per device.
	var begins, ends int
	s.UM.SetQuiesce(
		func() bool { begins++; return s.Gateway.Quiesce() },
		func() { ends++; s.Gateway.Unquiesce() },
	)
	stats, err := s.UM.SynchronizeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats for %d devices, want 2", len(stats))
	}
	for dev, st := range stats {
		if !st.QuiesceApplied {
			t.Errorf("%s: quiesce not applied", dev)
		}
	}
	if begins != 1 || ends != 1 {
		t.Errorf("quiesce begin/end = %d/%d, want 1/1", begins, ends)
	}
	if s.Gateway.Quiesced() {
		t.Error("gateway left quiesced")
	}
}
