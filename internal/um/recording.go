package um

import (
	"strings"
	"sync"

	"metacomm/internal/directory"
	"metacomm/internal/filter"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
)

// batchModifier is the optional pipelined-modify surface (ldapclient.Pool
// and ldapclient.Conn implement it).
type batchModifier interface {
	ModifyBatch(ops []ldapclient.ModifyOp) []error
}

// recordingClient wraps the backing LDAP client for a synchronization pass:
// every successful write is noted as (normalized DN, content fingerprint)
// so the delta drain can tell the pass's own writebacks apart from external
// updates that landed during the unquiesced bulk phase. Each client write
// produces exactly one changelog record, so attribution is a multiset
// match: a drained record whose fingerprint is still outstanding for its DN
// is ours.
type recordingClient struct {
	inner filter.LDAPClient

	mu sync.Mutex
	// writes: normalized DN -> fingerprint -> outstanding count.
	writes map[string]map[string]int
}

func (c *recordingClient) note(normDN, fp string) {
	c.mu.Lock()
	m := c.writes[normDN]
	if m == nil {
		m = map[string]int{}
		c.writes[normDN] = m
	}
	m[fp]++
	c.mu.Unlock()
}

// consume reports whether an outstanding own-write matches the record and
// removes it from the multiset.
func (c *recordingClient) consume(normDN, fp string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.writes[normDN]
	if m == nil || m[fp] == 0 {
		return false
	}
	m[fp]--
	return true
}

func (c *recordingClient) Search(req *ldap.SearchRequest) ([]*ldapclient.Entry, error) {
	return c.inner.Search(req)
}

func (c *recordingClient) Add(dn string, attrs []ldap.Attribute) error {
	err := c.inner.Add(dn, attrs)
	if err == nil {
		c.note(normalizeDNString(dn), "add")
	}
	return err
}

func (c *recordingClient) Modify(dn string, changes []ldap.Change) error {
	err := c.inner.Modify(dn, changes)
	if err == nil {
		c.note(normalizeDNString(dn), modifyFingerprint(changes))
	}
	return err
}

func (c *recordingClient) ModifyDN(dn, newRDN string, deleteOldRDN bool) error {
	err := c.inner.ModifyDN(dn, newRDN, deleteOldRDN)
	if err == nil {
		// The changelog's modifydn record carries the OLD name.
		c.note(normalizeDNString(dn), "modifydn|"+strings.ToLower(newRDN))
	}
	return err
}

func (c *recordingClient) Delete(dn string) error {
	err := c.inner.Delete(dn)
	if err == nil {
		c.note(normalizeDNString(dn), "delete")
	}
	return err
}

// ModifyBatch pipelines the modifies when the inner client supports it
// (pooled connections) and degrades to sequential round-trips otherwise.
func (c *recordingClient) ModifyBatch(ops []ldapclient.ModifyOp) []error {
	var errs []error
	if bm, ok := c.inner.(batchModifier); ok {
		errs = bm.ModifyBatch(ops)
	} else {
		errs = make([]error, len(ops))
		for i, op := range ops {
			errs[i] = c.inner.Modify(op.DN, op.Changes)
		}
	}
	for i, op := range ops {
		if errs[i] == nil {
			c.note(normalizeDNString(op.DN), modifyFingerprint(op.Changes))
		}
	}
	return errs
}

// modifyFingerprint canonicalizes a change list for own-write attribution.
// It must produce the same string as recordFingerprint does for the
// changelog record the write commits (the DIT journals the request's
// changes verbatim).
func modifyFingerprint(changes []ldap.Change) string {
	var b strings.Builder
	b.WriteString("modify")
	for _, ch := range changes {
		b.WriteByte('|')
		b.WriteString(ch.Op.String())
		b.WriteByte(':')
		b.WriteString(strings.ToLower(ch.Attribute.Type))
		for _, v := range ch.Attribute.Values {
			b.WriteByte('=')
			b.WriteString(v)
		}
	}
	return b.String()
}

// recordFingerprint is modifyFingerprint's counterpart for drained
// changelog records.
func recordFingerprint(rec directory.UpdateRecord) string {
	switch rec.Op {
	case "add", "entry":
		return "add"
	case "delete":
		return "delete"
	case "modifydn":
		return "modifydn|" + strings.ToLower(rec.NewRDN)
	}
	var b strings.Builder
	b.WriteString("modify")
	for _, ch := range rec.Changes {
		b.WriteByte('|')
		b.WriteString(ch.Op)
		b.WriteByte(':')
		b.WriteString(strings.ToLower(ch.Attr))
		for _, v := range ch.Values {
			b.WriteByte('=')
			b.WriteString(v)
		}
	}
	return b.String()
}
