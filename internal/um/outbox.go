// Durable device-update outbox: graceful degradation under device outages.
//
// The paper's UM logs a failed device apply into ou=errors and moves on —
// the update is lost at that device until the next full synchronization
// pass (§4.4). The outbox closes that gap: every translated TargetUpdate
// that fails (or that targets a device whose circuit breaker is open) is
// journaled, keyed by (device, entry DN, seq), and replayed by a per-device
// drainer with exponential backoff once the device answers again. Per-entry
// order is preserved by the same FNV-32a shard discipline the UM's own
// queues use, plus a per-DN pending count: while an entry has backlog at a
// device, new fan-out updates for that entry are appended behind the
// backlog instead of applied directly, so a replay can never regress a
// newer direct apply. Replays that the device rejects for non-outage
// reasons (conditional-update conflicts, semantic errors) fall back to a
// targeted per-entry repair: the live directory entry is re-translated and
// conditionally applied — the PR 3 delta-reconciliation move, for just the
// affected DN, with no global pass and no quiesce.
package um

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"metacomm/internal/device"
	"metacomm/internal/filter"
	"metacomm/internal/ldap"
	"metacomm/internal/lexpress"
)

// Outbox sizing and policy defaults.
const (
	DefaultOutboxMaxRetries       = 8
	DefaultOutboxBaseBackoff      = 50 * time.Millisecond
	DefaultOutboxMaxBackoff       = 5 * time.Second
	DefaultOutboxBreakerThreshold = 3
	// outboxCompactEvery is how many acknowledged journal lines accumulate
	// before the journal is rewritten with only the live records.
	outboxCompactEvery = 1024
)

// OutboxConfig configures the durable device-update outbox. The zero value
// disables it, keeping the legacy behavior: a failed device apply is logged
// as an error entry and the update is lost at that device until the next
// synchronization pass.
type OutboxConfig struct {
	// Enable turns the outbox on without a journal (retries are in-memory
	// only and do not survive a restart). Dir != "" implies Enable.
	Enable bool
	// Dir is the journal directory; each device gets a
	// <Dir>/<device>.outbox JSON-lines file that survives crashes.
	Dir string
	// MaxRetries is how many outage-class replay attempts a journaled
	// update gets before the drainer switches to targeted repair
	// (0 = DefaultOutboxMaxRetries).
	MaxRetries int
	// BaseBackoff is the first retry delay; it doubles per attempt with
	// ±25% jitter (0 = DefaultOutboxBaseBackoff).
	BaseBackoff time.Duration
	// MaxBackoff caps the retry delay and the breaker's open window
	// (0 = DefaultOutboxMaxBackoff).
	MaxBackoff time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// device's circuit breaker open (0 = DefaultOutboxBreakerThreshold).
	BreakerThreshold int
	// ApplyTimeout bounds each fan-out device apply; an apply exceeding it
	// is classified as a device outage and journaled (0 = no timeout).
	ApplyTimeout time.Duration
}

// Enabled reports whether the config turns the outbox on.
func (c OutboxConfig) Enabled() bool { return c.Enable || c.Dir != "" }

func (c OutboxConfig) withDefaults() OutboxConfig {
	if c.MaxRetries <= 0 {
		c.MaxRetries = DefaultOutboxMaxRetries
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = DefaultOutboxBaseBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultOutboxMaxBackoff
	}
	if c.MaxBackoff < c.BaseBackoff {
		c.MaxBackoff = c.BaseBackoff
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultOutboxBreakerThreshold
	}
	return c
}

// OutboxStats snapshots one device's outbox and breaker.
type OutboxStats struct {
	// Device is the device name.
	Device string
	// Breaker is the circuit-breaker position: closed, open, or half-open.
	Breaker string
	// Backlog is the number of journaled updates awaiting replay.
	Backlog int
	// Enqueued counts updates that entered the outbox; Drained counts
	// successful replays; Retries counts failed replay attempts; Repairs
	// counts targeted per-entry repair syncs; Dropped counts updates given
	// up on (repair also failed — an error entry was logged).
	Enqueued, Drained, Retries, Repairs, Dropped uint64
	// Deferred counts fan-out applies diverted into the outbox without
	// touching the device (open breaker or backlog ahead of them).
	Deferred uint64
	// Trips counts breaker openings.
	Trips uint64
}

// errApplyTimeout classifies a fan-out apply that exceeded
// OutboxConfig.ApplyTimeout; it counts as a device outage.
var errApplyTimeout = errors.New("um: device apply timed out")

// outageError reports whether err looks like the device being unreachable
// (retry later) rather than rejecting the update (repair now).
func outageError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, device.ErrDown) || errors.Is(err, errApplyTimeout) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// outboxRecord is one journaled update. Kind "u" lines carry updates; kind
// "a" lines acknowledge the seq they name (replayed or dropped).
type outboxRecord struct {
	Kind string                 `json:"k"`
	Seq  uint64                 `json:"seq"`
	DN   string                 `json:"dn,omitempty"`
	TU   *lexpress.TargetUpdate `json:"tu,omitempty"`

	// attempts counts outage-class replay failures (not persisted: a
	// restart resets the budget, which is the right call — the journal is
	// replayed against a device that just came back).
	attempts int
}

// outbox owns one deviceOutbox per registered filter. It is constructed in
// New (so the pointer is immutable for the UM's lifetime) and populated in
// Start, after AddDevice registration is complete.
type outbox struct {
	u   *UM
	cfg OutboxConfig

	mu      sync.Mutex
	devices []*deviceOutbox

	wg   sync.WaitGroup
	stop chan struct{}
}

// deviceOutbox is one device's journal, queues, and drainer.
type deviceOutbox struct {
	ob      *outbox
	name    string
	f       *filter.DeviceFilter
	breaker *filter.Breaker
	wake    chan struct{}

	mu sync.Mutex
	// queues are per-shard FIFOs: records for one entry DN always land in
	// the same shard (the UM's FNV-32a discipline), so replay order per
	// entry is the enqueue order. A record stays at its queue head while
	// the drainer works on it.
	queues [][]*outboxRecord
	// pendingDN counts queued + in-flight records per normalized DN; the
	// fan-out defers behind it.
	pendingDN map[string]int
	backlog   int
	seq       uint64
	journal   *outboxJournal // nil without a journal directory

	enqueued, drained, retries, repairs, dropped, deferred atomic.Uint64
}

// newOutbox is called from New when the config enables the outbox.
func newOutbox(u *UM, cfg OutboxConfig) *outbox {
	return &outbox{u: u, cfg: cfg.withDefaults(), stop: make(chan struct{})}
}

// start builds the per-device state (loading any journal backlog) and
// launches the drainers. Called from UM.Start after AddDevice registration.
func (ob *outbox) start() error {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	for _, f := range ob.u.filters {
		d := &deviceOutbox{
			ob:   ob,
			name: f.Name(),
			f:    f,
			breaker: filter.NewBreaker(ob.cfg.BreakerThreshold,
				ob.cfg.BaseBackoff, ob.cfg.MaxBackoff),
			wake:      make(chan struct{}, 1),
			queues:    make([][]*outboxRecord, len(ob.u.shards)),
			pendingDN: map[string]int{},
		}
		if ob.cfg.Dir != "" {
			j, backlog, maxSeq, err := openOutboxJournal(ob.cfg.Dir, d.name)
			if err != nil {
				return fmt.Errorf("um: outbox journal for %s: %w", d.name, err)
			}
			d.journal = j
			d.seq = maxSeq
			for _, rec := range backlog {
				si := d.shardOf(rec.DN)
				d.queues[si] = append(d.queues[si], rec)
				d.pendingDN[rec.DN]++
				d.backlog++
			}
			if d.backlog > 0 {
				ob.u.logf("um: outbox %s: %d journaled updates to drain", d.name, d.backlog)
			}
		}
		ob.devices = append(ob.devices, d)
		ob.wg.Add(1)
		go d.run()
	}
	return nil
}

// close stops the drainers and closes the journals.
func (ob *outbox) close() {
	close(ob.stop)
	ob.wg.Wait()
	ob.mu.Lock()
	defer ob.mu.Unlock()
	for _, d := range ob.devices {
		d.mu.Lock()
		if d.journal != nil {
			d.journal.close()
			d.journal = nil
		}
		d.mu.Unlock()
	}
}

// forDevice finds the device's outbox (nil before Start or for an unknown
// device).
func (ob *outbox) forDevice(f *filter.DeviceFilter) *deviceOutbox {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	for _, d := range ob.devices {
		if d.f == f {
			return d
		}
	}
	return nil
}

// stats snapshots every device's outbox.
func (ob *outbox) stats() []OutboxStats {
	ob.mu.Lock()
	devices := append([]*deviceOutbox(nil), ob.devices...)
	ob.mu.Unlock()
	out := make([]OutboxStats, 0, len(devices))
	for _, d := range devices {
		d.mu.Lock()
		backlog := d.backlog
		d.mu.Unlock()
		out = append(out, OutboxStats{
			Device:   d.name,
			Breaker:  d.breaker.State().String(),
			Backlog:  backlog,
			Enqueued: d.enqueued.Load(),
			Drained:  d.drained.Load(),
			Retries:  d.retries.Load(),
			Repairs:  d.repairs.Load(),
			Dropped:  d.dropped.Load(),
			Deferred: d.deferred.Load(),
			Trips:    d.breaker.Trips(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// deferUpdate decides, before the fan-out touches the device, whether the
// update must go through the outbox instead: yes when the device's breaker
// is not closed (outage in progress — don't eat an apply timeout per
// update) or when the entry already has backlog at this device (a direct
// apply would be overtaken by the later replay). The check and the enqueue
// are atomic under the device mutex.
func (ob *outbox) deferUpdate(f *filter.DeviceFilter, dnStr string, tu *lexpress.TargetUpdate) bool {
	d := ob.forDevice(f)
	if d == nil {
		return false
	}
	norm := normalizeDNString(dnStr)
	d.mu.Lock()
	if d.breaker.State() == filter.BreakerClosed && d.pendingDN[norm] == 0 {
		d.mu.Unlock()
		return false
	}
	d.enqueueLocked(norm, tu)
	d.mu.Unlock()
	d.deferred.Add(1)
	d.kick()
	return true
}

// handleFailure journals a fan-out apply that failed. It reports false when
// the outbox does not cover the device (the caller logs the legacy error
// entry).
func (ob *outbox) handleFailure(f *filter.DeviceFilter, dnStr string, tu *lexpress.TargetUpdate, err error) bool {
	d := ob.forDevice(f)
	if d == nil {
		return false
	}
	if outageError(err) {
		d.breaker.Failure()
	}
	norm := normalizeDNString(dnStr)
	d.mu.Lock()
	d.enqueueLocked(norm, tu)
	d.mu.Unlock()
	ob.u.logf("um: outbox %s: journaled %s key=%q after apply error: %v",
		d.name, tu.Op, tu.Key, err)
	d.kick()
	return true
}

// enqueueLocked appends a record behind the DN's backlog. Caller holds d.mu.
func (d *deviceOutbox) enqueueLocked(norm string, tu *lexpress.TargetUpdate) {
	d.seq++
	rec := &outboxRecord{Kind: "u", Seq: d.seq, DN: norm, TU: tu}
	si := d.shardOf(norm)
	d.queues[si] = append(d.queues[si], rec)
	d.pendingDN[norm]++
	d.backlog++
	d.enqueued.Add(1)
	if d.journal != nil {
		if err := d.journal.append(rec); err != nil {
			d.ob.u.logf("um: outbox %s: journal append: %v", d.name, err)
		}
	}
}

// kick wakes the drainer without blocking.
func (d *deviceOutbox) kick() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// shardOf mirrors UM.shardFor on an already-normalized DN.
func (d *deviceOutbox) shardOf(norm string) int {
	if len(d.queues) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(norm))
	return int(h.Sum32() % uint32(len(d.queues)))
}

// run is the device drainer: it sleeps while the backlog is empty, and
// otherwise makes replay passes separated by the backoff the failing pass
// asked for.
func (d *deviceOutbox) run() {
	defer d.ob.wg.Done()
	for {
		d.mu.Lock()
		idle := d.backlog == 0
		d.mu.Unlock()
		if idle {
			select {
			case <-d.wake:
				continue
			case <-d.ob.stop:
				return
			}
		}
		wait := d.pass()
		if wait <= 0 {
			continue
		}
		select {
		case <-time.After(wait):
		case <-d.ob.stop:
			return
		}
	}
}

// pass walks the shard queues once, replaying heads in order. It returns 0
// when every queue drained (or new work should be attempted immediately)
// and a backoff duration when the device pushed back.
func (d *deviceOutbox) pass() time.Duration {
	for si := range d.queues {
		for {
			select {
			case <-d.ob.stop:
				return 0
			default:
			}
			rec := d.head(si)
			if rec == nil {
				break
			}
			if !d.breaker.Allow() {
				// Outage in progress: sleep until the breaker admits its
				// next probe. Other shards would hit the same wall — the
				// breaker is per device, not per entry.
				if w := time.Until(d.breaker.ProbeAt()); w > 0 {
					return w
				}
				return d.ob.cfg.BaseBackoff
			}
			err := d.apply(rec.TU)
			if err == nil {
				d.breaker.Success()
				d.complete(si, rec)
				d.drained.Add(1)
				continue
			}
			d.retries.Add(1)
			if outageError(err) {
				d.breaker.Failure()
				rec.attempts++
				if rec.attempts <= d.ob.cfg.MaxRetries {
					return d.backoffFor(rec.attempts)
				}
				// Retry budget exhausted: try repair; if the device is
				// still down that fails too and the record stays.
			} else {
				// The device answered (and rejected the update): the link
				// is healthy even if the replay conflicted.
				d.breaker.Success()
			}
			d.repairs.Add(1)
			if rerr := d.ob.u.repairEntry(d.f, rec.DN, rec.TU); rerr != nil {
				if outageError(rerr) {
					d.breaker.Failure()
					rec.attempts++
					return d.backoffFor(rec.attempts)
				}
				// Replay failed and repair failed with the device up:
				// surface the legacy error entry and drop the record so
				// the shard is not poisoned.
				d.ob.u.logError("outbox", d.name, rec.TU.Op.String(), rec.TU.Key,
					errors.Join(err, rerr))
				d.complete(si, rec)
				d.dropped.Add(1)
				continue
			}
			d.ob.u.logf("um: outbox %s: repaired %s key=%q after replay error: %v",
				d.name, rec.TU.Op, rec.TU.Key, err)
			d.complete(si, rec)
			d.drained.Add(1)
		}
	}
	return 0
}

// apply replays one update, honoring the configured apply timeout.
func (d *deviceOutbox) apply(tu *lexpress.TargetUpdate) error {
	_, err := d.ob.u.applyDevice(d.f, tu)
	return err
}

// head returns shard si's first record without removing it (the pending
// count must include the in-flight record so the fan-out keeps deferring).
func (d *deviceOutbox) head(si int) *outboxRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.queues[si]) == 0 {
		return nil
	}
	return d.queues[si][0]
}

// complete retires a finished (drained, repaired, or dropped) head record.
func (d *deviceOutbox) complete(si int, rec *outboxRecord) {
	d.mu.Lock()
	defer d.mu.Unlock()
	q := d.queues[si]
	if len(q) == 0 || q[0] != rec {
		return // defensive; heads are only removed here
	}
	d.queues[si] = q[1:]
	if d.pendingDN[rec.DN]--; d.pendingDN[rec.DN] <= 0 {
		delete(d.pendingDN, rec.DN)
	}
	d.backlog--
	if d.journal != nil {
		if err := d.journal.ack(rec.Seq); err != nil {
			d.ob.u.logf("um: outbox %s: journal ack: %v", d.name, err)
		}
		if d.journal.acksSinceCompact >= outboxCompactEvery {
			live := make([]*outboxRecord, 0, d.backlog)
			for _, q := range d.queues {
				live = append(live, q...)
			}
			sort.Slice(live, func(i, j int) bool { return live[i].Seq < live[j].Seq })
			if err := d.journal.compact(live); err != nil {
				d.ob.u.logf("um: outbox %s: journal compact: %v", d.name, err)
			}
		}
	}
}

// backoffFor is the exponential, jittered retry delay after `attempts`
// consecutive outage-class failures of one record.
func (d *deviceOutbox) backoffFor(attempts int) time.Duration {
	delay := d.ob.cfg.BaseBackoff
	for i := 1; i < attempts && delay < d.ob.cfg.MaxBackoff; i++ {
		delay *= 2
	}
	if delay > d.ob.cfg.MaxBackoff {
		delay = d.ob.cfg.MaxBackoff
	}
	// ±25% jitter so recovering devices see a spread of retries.
	return delay*3/4 + time.Duration(rand.Int63n(int64(delay)/2+1))
}

// applyDevice runs one device apply under the configured timeout. A timed-
// out apply keeps running in its goroutine (the device protocol has no
// cancel); if it eventually succeeds, the subsequent replay or repair is
// idempotent (modify-replace, conditional semantics), so the race is
// convergence-safe.
func (u *UM) applyDevice(f *filter.DeviceFilter, tu *lexpress.TargetUpdate) (lexpress.Record, error) {
	timeout := time.Duration(0)
	if u.outbox != nil {
		timeout = u.outbox.cfg.ApplyTimeout
	}
	if timeout <= 0 {
		return f.Apply(tu)
	}
	type result struct {
		stored lexpress.Record
		err    error
	}
	ch := make(chan result, 1)
	go func() {
		stored, err := f.Apply(tu)
		ch <- result{stored, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.stored, r.err
	case <-timer.C:
		return nil, fmt.Errorf("%w after %v (%s key=%q)", errApplyTimeout, timeout, tu.Op, tu.Key)
	}
}

// repairEntry is the targeted per-entry repair sync: re-derive the device's
// record from the live directory entry and conditionally apply it — the
// PR 3 delta-reconciliation move for a single DN, with no global pass and
// no quiesce. An entry that vanished from the directory (or is no longer
// routed to the device) is conditionally deleted at the device.
func (u *UM) repairEntry(f *filter.DeviceFilter, dnStr string, tu *lexpress.TargetUpdate) error {
	entries, err := u.cfg.Backing.Search(&ldap.SearchRequest{
		BaseDN: dnStr, Scope: ldap.ScopeBaseObject,
	})
	if err != nil && !ldap.IsCode(err, ldap.ResultNoSuchObject) {
		return err
	}
	if len(entries) == 0 {
		return u.repairDelete(f, tu)
	}
	live := entryRecord(entries[0])
	ntu, terr := f.Translate(lexpress.Descriptor{
		Source: "ldap", Op: lexpress.OpModify, Key: entries[0].DN, Old: live, New: live,
	})
	if terr != nil {
		return terr
	}
	if ntu == nil {
		// The live entry is no longer under this device's management; the
		// device's record (if any) is stale.
		return u.repairDelete(f, tu)
	}
	ntu.Conditional = true // fall back to add when the device lacks the record
	_, err = u.applyDevice(f, ntu)
	return err
}

// repairDelete conditionally removes the device record the failed update
// addressed (a no-op when the device does not have it).
func (u *UM) repairDelete(f *filter.DeviceFilter, tu *lexpress.TargetUpdate) error {
	if tu.Key == "" && tu.OldKey == "" {
		return nil
	}
	_, err := u.applyDevice(f, &lexpress.TargetUpdate{
		Target: tu.Target, Op: lexpress.OpDelete,
		Key: tu.Key, OldKey: tu.OldKey, Conditional: true,
	})
	return err
}

// OutboxStats snapshots the per-device outbox and breaker state (nil when
// the outbox is disabled).
func (u *UM) OutboxStats() []OutboxStats {
	if u.outbox == nil {
		return nil
	}
	return u.outbox.stats()
}

// OutboxBacklog sums the journaled updates awaiting replay across devices.
func (u *UM) OutboxBacklog() int {
	total := 0
	for _, s := range u.OutboxStats() {
		total += s.Backlog
	}
	return total
}

// --- journal ---

// outboxJournal is one device's JSON-lines journal: "u" lines append
// updates, "a" lines acknowledge them. Compaction rewrites the file with
// only the live records (tmp + rename, so a crash leaves either the old or
// the new journal, never a torn one).
type outboxJournal struct {
	path             string
	f                *os.File
	acksSinceCompact int
}

// openOutboxJournal opens (creating if needed) the device's journal and
// returns the unacknowledged backlog in seq order plus the highest seq seen.
func openOutboxJournal(dir, deviceName string) (*outboxJournal, []*outboxRecord, uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, err
	}
	path := filepath.Join(dir, deviceName+".outbox")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	pending := map[uint64]*outboxRecord{}
	var maxSeq uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec outboxRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn trailing line from a crash mid-append; everything up
			// to it already parsed. Stop here — compaction will drop it.
			break
		}
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		switch rec.Kind {
		case "u":
			if rec.TU != nil {
				r := rec
				pending[rec.Seq] = &r
			}
		case "a":
			delete(pending, rec.Seq)
		}
	}
	backlog := make([]*outboxRecord, 0, len(pending))
	for _, rec := range pending {
		backlog = append(backlog, rec)
	}
	sort.Slice(backlog, func(i, j int) bool { return backlog[i].Seq < backlog[j].Seq })
	j := &outboxJournal{path: path, f: f}
	// Rewrite on open: drops acknowledged pairs and any torn tail.
	if err := j.compact(backlog); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return j, backlog, maxSeq, nil
}

// append writes one update line.
func (j *outboxJournal) append(rec *outboxRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = j.f.Write(append(b, '\n'))
	return err
}

// ack writes one acknowledge line.
func (j *outboxJournal) ack(seq uint64) error {
	b, err := json.Marshal(&outboxRecord{Kind: "a", Seq: seq})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return err
	}
	j.acksSinceCompact++
	return nil
}

// compact rewrites the journal to hold exactly the live records.
func (j *outboxJournal) compact(live []*outboxRecord) error {
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, rec := range live {
		b, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		w.Write(b)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return err
	}
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = nf
	old.Close()
	j.acksSinceCompact = 0
	return nil
}

// close flushes and closes the journal file.
func (j *outboxJournal) close() {
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}
