package um

import (
	"fmt"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/mcschema"
)

// ErrorContainerRDN names the errors subtree under the suffix (paper §4.4:
// failed updates are logged into the directory; the administrator browses
// them and manually repairs the inconsistencies).
const ErrorContainerRDN = "ou=errors"

// errorBase returns the errors container DN.
func (u *UM) errorBase() dn.DN {
	return u.cfg.Suffix.Child(dn.RDN{{Attr: "ou", Value: "errors"}})
}

// ensureErrorContainer creates ou=errors under the suffix if needed. The
// suffix itself must already exist.
func (u *UM) ensureErrorContainer() error {
	base := u.errorBase()
	err := u.cfg.Backing.Add(base.String(), []ldap.Attribute{
		{Type: "objectClass", Values: []string{mcschema.ClassOrgUnit}},
		{Type: "ou", Values: []string{"errors"}},
	})
	if err == nil || ldap.IsCode(err, ldap.ResultEntryAlreadyExists) {
		return nil
	}
	return fmt.Errorf("um: creating error container: %w", err)
}

// logError records a failed update in the directory and on the operational
// log, then keeps going — the paper's administrator repairs such
// inconsistencies later (or resynchronization does).
func (u *UM) logError(source, target, op, key string, cause error) {
	u.errorsLogged.Add(1)
	id := fmt.Sprintf("err-%d", u.errSeq.Add(1))
	u.logf("um: update error %s: %s->%s %s key=%q: %v", id, source, target, op, key, cause)
	name := u.errorBase().Child(dn.RDN{{Attr: mcschema.AttrErrorID, Value: id}})
	err := u.cfg.Backing.Add(name.String(), []ldap.Attribute{
		{Type: "objectClass", Values: []string{mcschema.ClassUpdateError}},
		{Type: mcschema.AttrErrorID, Values: []string{id}},
		{Type: mcschema.AttrErrorSource, Values: []string{source}},
		{Type: mcschema.AttrErrorTarget, Values: []string{target}},
		{Type: mcschema.AttrErrorOp, Values: []string{op}},
		{Type: mcschema.AttrErrorKey, Values: []string{key}},
		{Type: mcschema.AttrErrorMessage, Values: []string{cause.Error()}},
	})
	if err != nil {
		u.logf("um: could not log error entry %s: %v", id, err)
	}
}

// Errors returns the logged error entries (the administrator's browse view).
func (u *UM) Errors() ([]*ldapclient.Entry, error) {
	return u.cfg.Backing.Search(&ldap.SearchRequest{
		BaseDN: u.errorBase().String(),
		Scope:  ldap.ScopeSingleLevel,
		Filter: ldap.Eq("objectClass", mcschema.ClassUpdateError),
	})
}

// ClearErrors deletes all logged error entries (after the administrator has
// dealt with them).
func (u *UM) ClearErrors() (int, error) {
	entries, err := u.Errors()
	if err != nil {
		return 0, err
	}
	for i, e := range entries {
		if err := u.cfg.Backing.Delete(e.DN); err != nil {
			return i, err
		}
	}
	return len(entries), nil
}
