package um_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	metacomm "metacomm"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/lexpress"
	"metacomm/internal/um"
)

func syncClient(t *testing.T, s *metacomm.System) *ldapclient.Conn {
	t.Helper()
	c, err := s.Client()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// addTestPerson provisions a PBX person through the normal LDAP path; the
// synchronous fan-out leaves the device converged when it returns.
func addTestPerson(t *testing.T, c *ldapclient.Conn, cn, ext, room string) string {
	t.Helper()
	name := "cn=" + cn + ",o=Lucent"
	attrs := []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
		{Type: "cn", Values: []string{cn}},
		{Type: "sn", Values: []string{cn}},
		{Type: "definityExtension", Values: []string{ext}},
	}
	if room != "" {
		attrs = append(attrs, ldap.Attribute{Type: "roomNumber", Values: []string{room}})
	}
	if err := c.Add(name, attrs); err != nil {
		t.Fatal(err)
	}
	return name
}

// driftDeviceRoom mutates a PBX record under the suppressed "metacomm"
// session: the device changes with NO direct-device-update notification —
// exactly the lost-update situation synchronization exists to repair.
func driftDeviceRoom(t *testing.T, s *metacomm.System, ext, room string) {
	t.Helper()
	rec, err := s.PBX.Store.Get(ext)
	if err != nil {
		t.Fatal(err)
	}
	rec.Set("room", room)
	if _, err := s.PBX.Store.Modify("metacomm", ext, rec); err != nil {
		t.Fatal(err)
	}
}

func TestSyncDirectoryWinsRestoresDevice(t *testing.T) {
	s := startSystem(t)
	c := syncClient(t, s)
	addTestPerson(t, c, "Policy One", "2-0410", "1A")
	driftDeviceRoom(t, s, "2-0410", "9Z")

	stats, err := s.UM.SynchronizeWithPolicy("pbx", um.DirectoryWins)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeviceMods < 1 {
		t.Errorf("stats = %+v, want DeviceMods >= 1", stats)
	}
	rec, err := s.PBX.Store.Get("2-0410")
	if err != nil || rec.First("room") != "1A" {
		t.Errorf("device room = %q, %v; want restored to 1A", rec.First("room"), err)
	}
	e, err := c.SearchOne(&ldap.SearchRequest{BaseDN: "cn=Policy One,o=Lucent", Scope: ldap.ScopeBaseObject})
	if err != nil || e.First("roomNumber") != "1A" {
		t.Errorf("directory room = %v, %v; want untouched 1A", e, err)
	}
}

func TestSyncDeviceWinsRecoversDrift(t *testing.T) {
	s := startSystem(t)
	c := syncClient(t, s)
	addTestPerson(t, c, "Policy Two", "2-0420", "1B")
	driftDeviceRoom(t, s, "2-0420", "8Y")

	stats, err := s.UM.Synchronize("pbx") // DeviceWins default
	if err != nil {
		t.Fatal(err)
	}
	if stats.DirectoryMods < 1 {
		t.Errorf("stats = %+v, want DirectoryMods >= 1", stats)
	}
	e, err := c.SearchOne(&ldap.SearchRequest{BaseDN: "cn=Policy Two,o=Lucent", Scope: ldap.ScopeBaseObject})
	if err != nil || e.First("roomNumber") != "8Y" {
		t.Errorf("directory room = %v, %v; want converged to 8Y", e, err)
	}
}

// TestSyncWorkerPoolFaultInjection drifts several device records and injects
// one mid-pass device failure: the pool must charge exactly that record and
// converge the rest.
func TestSyncWorkerPoolFaultInjection(t *testing.T) {
	s := startSystem(t)
	c := syncClient(t, s)
	const n = 5
	for i := 0; i < n; i++ {
		ext := fmt.Sprintf("2-05%02d", i)
		addTestPerson(t, c, fmt.Sprintf("Fault %02d", i), ext, "F0")
		driftDeviceRoom(t, s, ext, "FX")
	}
	s.PBX.Store.FailNext("injected fault")

	stats, err := s.UM.SynchronizeWithPolicy("pbx", um.DirectoryWins)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 1 {
		t.Errorf("Errors = %d, want 1 (the injected fault)", stats.Errors)
	}
	if stats.DeviceMods != n-1 {
		t.Errorf("DeviceMods = %d, want %d", stats.DeviceMods, n-1)
	}
}

func TestSyncDeviceDownAndRecovery(t *testing.T) {
	s := startSystem(t)
	c := syncClient(t, s)
	addTestPerson(t, c, "Down One", "2-0550", "D1")

	s.PBX.Store.SetDown(true)
	if _, err := s.UM.Synchronize("pbx"); err == nil {
		t.Error("sync of a down device succeeded")
	}
	s.PBX.Store.SetDown(false)
	stats, err := s.UM.Synchronize("pbx")
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeviceRecords < 1 {
		t.Errorf("stats after recovery = %+v", stats)
	}
}

// TestSynchronizeAllContinuesOnDeviceError: one failing device must not
// abort the others; its error is aggregated into the returned error while
// every device's stats stay in the map.
func TestSynchronizeAllContinuesOnDeviceError(t *testing.T) {
	s := startSystem(t)
	mb := lexpress.NewRecord()
	mb.Set("mailbox", "0310")
	mb.Set("name", "Continue One")
	if _, err := s.MP.Store.Add("metacomm", mb); err != nil {
		t.Fatal(err)
	}
	s.PBX.Store.SetDown(true)

	stats, err := s.UM.SynchronizeAll()
	if err == nil || !strings.Contains(err.Error(), "pbx") {
		t.Fatalf("err = %v, want pbx failure", err)
	}
	if _, ok := stats["pbx"]; !ok {
		t.Error("failed device missing from stats map")
	}
	st, ok := stats["msgplat"]
	if !ok || st.DeviceRecords < 1 {
		t.Fatalf("msgplat stats = %+v, %v — healthy device was not reconciled", st, ok)
	}
	c := syncClient(t, s)
	if _, err := c.SearchOne(&ldap.SearchRequest{BaseDN: "cn=Continue One,o=Lucent", Scope: ldap.ScopeBaseObject}); err != nil {
		t.Errorf("msgplat record not recovered into the directory: %v", err)
	}
}

// TestSyncDuplicateKeysCounted: two directory entries claiming one device
// key shadow each other in the sync index; the pass counts and logs them.
func TestSyncDuplicateKeysCounted(t *testing.T) {
	s := startSystem(t)
	c := syncClient(t, s)
	addTestPerson(t, c, "Dup One", "2-0600", "")
	addTestPerson(t, c, "Dup Two", "2-0600", "")

	stats, err := s.UM.Synchronize("pbx")
	if err != nil {
		t.Fatal(err)
	}
	if stats.DuplicateKeys < 1 {
		t.Errorf("DuplicateKeys = %d, want >= 1", stats.DuplicateKeys)
	}
	if stats.Errors < stats.DuplicateKeys {
		t.Errorf("Errors = %d < DuplicateKeys = %d", stats.Errors, stats.DuplicateKeys)
	}
}

// TestSyncConcurrentUpdatesSurvive is the tentpole property: with the bulk
// phase off the quiesce, updates issued DURING synchronization must be
// neither rejected nor lost — the delta replay repairs any bulk writeback
// that overwrote them.
func TestSyncConcurrentUpdatesSurvive(t *testing.T) {
	s := startSystem(t)
	c := syncClient(t, s)
	const n = 25
	for i := 0; i < n; i++ {
		addTestPerson(t, c, fmt.Sprintf("Conc %02d", i), fmt.Sprintf("2-07%02d", i), "R0")
	}
	target := "cn=Conc 00,o=Lucent"

	wc, err := s.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	last := "R0"
	var writerErrs []error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := fmt.Sprintf("W%d", i)
			err := wc.Modify(target, []ldap.Change{{Op: ldap.ModReplace,
				Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{v}}}})
			mu.Lock()
			if err != nil {
				writerErrs = append(writerErrs, err)
			} else {
				last = v
			}
			mu.Unlock()
		}
	}()

	stats, err := s.UM.Synchronize("pbx")
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	final := last
	errs := writerErrs
	mu.Unlock()
	if len(errs) > 0 {
		t.Fatalf("concurrent updates rejected during sync: %v", errs[0])
	}
	if !stats.SnapshotUsed {
		t.Errorf("stats = %+v, want SnapshotUsed", stats)
	}
	e, err := c.SearchOne(&ldap.SearchRequest{BaseDN: target, Scope: ldap.ScopeBaseObject})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.First("roomNumber"); got != final {
		t.Errorf("directory room = %q, want last written %q — concurrent update lost", got, final)
	}
	rec, err := s.PBX.Store.Get("2-0700")
	if err != nil || rec.First("room") != final {
		t.Errorf("device room = %q, %v; want converged to %q", rec.First("room"), err, final)
	}
}

// TestSyncSnapshotStatsPopulated checks the two-phase pass reports its
// phase breakdown and lands in LastSyncStats.
func TestSyncSnapshotStatsPopulated(t *testing.T) {
	s := startSystem(t)
	rec := lexpress.NewRecord()
	rec.Set("extension", "2-0910")
	rec.Set("name", "Snap One")
	if _, err := s.PBX.Store.Add("metacomm", rec); err != nil {
		t.Fatal(err)
	}

	stats, err := s.UM.Synchronize("pbx")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.SnapshotUsed || !stats.QuiesceApplied {
		t.Errorf("stats = %+v, want SnapshotUsed && QuiesceApplied", stats)
	}
	if stats.Workers < 1 || stats.BulkNs == 0 {
		t.Errorf("phase stats not populated: %+v", stats)
	}
	if stats.DirectoryAdds != 1 {
		t.Errorf("DirectoryAdds = %d, want 1", stats.DirectoryAdds)
	}
	if got := s.UM.LastSyncStats()["pbx"]; got != stats {
		t.Errorf("LastSyncStats[pbx] = %+v, want %+v", got, stats)
	}
	c := syncClient(t, s)
	if _, err := c.SearchOne(&ldap.SearchRequest{BaseDN: "cn=Snap One,o=Lucent", Scope: ldap.ScopeBaseObject}); err != nil {
		t.Errorf("recovered person missing: %v", err)
	}
}

// TestSyncLegacyFallbackWhenNoSnapshot: without a snapshot source the pass
// runs fully quiesced, as the paper describes.
func TestSyncLegacyFallbackWhenNoSnapshot(t *testing.T) {
	s := startSystem(t)
	s.UM.SetSnapshot(nil)
	rec := lexpress.NewRecord()
	rec.Set("extension", "2-0920")
	rec.Set("name", "Fallback One")
	if _, err := s.PBX.Store.Add("metacomm", rec); err != nil {
		t.Fatal(err)
	}

	stats, err := s.UM.Synchronize("pbx")
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotUsed {
		t.Errorf("stats = %+v, want full-quiesce pass", stats)
	}
	if !stats.QuiesceApplied || stats.DirectoryAdds != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.BulkNs == 0 || stats.QuiesceNs != stats.BulkNs {
		t.Errorf("full-quiesce phase timing = bulk %d / quiesce %d, want equal and nonzero", stats.BulkNs, stats.QuiesceNs)
	}
}
