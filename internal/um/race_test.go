package um_test

// Race regression for the UM's observability surface. The WBA status page
// and the shutdown summary call Stats, LastSyncStats, and OutboxStats from
// their own goroutines while shard workers, the outbox drainer, and the
// quiesce barrier are all active; this test pins the locking discipline by
// hammering every reader against a full write load under -race (it runs in
// the race lists of Makefile and scripts/check.sh).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"metacomm/internal/device"
	"metacomm/internal/ltap"
	"metacomm/internal/um"
)

func TestConcurrentStatsReadersUnderLoad(t *testing.T) {
	dir := newFakeDir()
	pbx := device.NewStore("pbx", "Extension")
	cfg := fastOutbox()
	cfg.BreakerThreshold = 2
	e := startOutboxUM(t, um.Config{Shards: 4, Outbox: cfg}, dir, pbx, nil)

	const writers = 6
	const updates = 40
	dns := make([]string, writers)
	for i := range dns {
		dns[i] = e.addPerson(t, fmt.Sprintf("Race Person %d", i), fmt.Sprintf("2-8%03d", i))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Device flapper: the outbox and breaker state churn while readers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		down := false
		for {
			select {
			case <-stop:
				pbx.SetDown(false)
				return
			case <-time.After(3 * time.Millisecond):
				down = !down
				pbx.SetDown(down)
			}
		}
	}()

	// Readers: every externally callable observer, concurrently.
	for _, read := range []func(){
		func() { _ = e.u.Stats() },
		func() { _ = e.u.OutboxStats() },
		func() { _ = e.u.OutboxBacklog() },
		func() { _ = e.u.LastSyncStats() },
	} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					read()
				}
			}
		}()
	}

	// Quiescer: exercises the drain barrier against the same state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				if e.u.Quiesce() {
					e.u.Resume()
				}
			}
		}
	}()

	// Writers: each owns one entry, so per-writer Old images are
	// well-defined; busy rejections under quiesce pressure are tolerated.
	var writerWG sync.WaitGroup
	for i, dnStr := range dns {
		writerWG.Add(1)
		go func(i int, dnStr string) {
			defer writerWG.Done()
			for j := 0; j < updates; j++ {
				old := dir.record(dnStr)
				if old == nil {
					t.Errorf("writer %d: entry vanished", i)
					return
				}
				e.u.OnUpdate(ltap.Event{
					Kind: ltap.EventModify, DN: dnStr, Old: old,
					Changes: []ltap.Change{{
						Op: "replace", Attr: "roomNumber",
						Values: []string{fmt.Sprintf("R-%d-%d", i, j)},
					}},
				})
			}
		}(i, dnStr)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	// With the flapper parked up, everything journaled must drain.
	deadline := time.Now().Add(10 * time.Second)
	for e.u.OutboxBacklog() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outbox backlog stuck at %d after load", e.u.OutboxBacklog())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
