package um_test

// Fault-injection tests for the durable device-update outbox: outage
// mid-fan-out, partial multi-device failures, targeted repair on replay
// conflicts, crash/restart with a non-empty journal, and the circuit
// breaker's open/half-open/close transitions. They drive a UM over an
// in-memory fake directory and in-process device stores, so every fault is
// injected deterministically.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"metacomm/internal/device"
	"metacomm/internal/dn"
	"metacomm/internal/filter"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/lexpress"
	"metacomm/internal/ltap"
	"metacomm/internal/um"
)

// fakeDir is an in-memory backing LDAP client: enough of the protocol for
// the UM's write path and the outbox repair's base-object search.
type fakeDir struct {
	mu      sync.Mutex
	entries map[string]*fakeEntry // normalized DN -> entry
}

type fakeEntry struct {
	dn  string
	rec lexpress.Record
}

func newFakeDir() *fakeDir { return &fakeDir{entries: map[string]*fakeEntry{}} }

func normTestDN(s string) string {
	d, err := dn.Parse(s)
	if err != nil {
		return strings.ToLower(s)
	}
	return d.Normalize()
}

func resultErr(code ldap.ResultCode, msg string) error {
	return &ldap.ResultError{Result: ldap.Result{Code: code, Message: msg}}
}

func (d *fakeDir) Add(dnStr string, attrs []ldap.Attribute) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	norm := normTestDN(dnStr)
	if _, ok := d.entries[norm]; ok {
		return resultErr(ldap.ResultEntryAlreadyExists, dnStr)
	}
	rec := lexpress.NewRecord()
	for _, a := range attrs {
		rec.Set(a.Type, a.Values...)
	}
	d.entries[norm] = &fakeEntry{dn: dnStr, rec: rec}
	return nil
}

func (d *fakeDir) Modify(dnStr string, changes []ldap.Change) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[normTestDN(dnStr)]
	if !ok {
		return resultErr(ldap.ResultNoSuchObject, dnStr)
	}
	for _, c := range changes {
		switch c.Op {
		case ldap.ModReplace:
			e.rec.Set(c.Attribute.Type, c.Attribute.Values...)
		case ldap.ModAdd:
			e.rec.Set(c.Attribute.Type,
				append(e.rec.Get(c.Attribute.Type), c.Attribute.Values...)...)
		case ldap.ModDelete:
			e.rec.Set(c.Attribute.Type)
		}
	}
	return nil
}

func (d *fakeDir) Delete(dnStr string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	norm := normTestDN(dnStr)
	if _, ok := d.entries[norm]; !ok {
		return resultErr(ldap.ResultNoSuchObject, dnStr)
	}
	delete(d.entries, norm)
	return nil
}

func (d *fakeDir) ModifyDN(dnStr, newRDN string, _ bool) error {
	return resultErr(ldap.ResultUnwillingToPerform, "fakeDir: no rename")
}

func (d *fakeDir) Search(req *ldap.SearchRequest) ([]*ldapclient.Entry, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if req.Scope != ldap.ScopeBaseObject {
		return nil, nil // only the repair path's base search matters here
	}
	e, ok := d.entries[normTestDN(req.BaseDN)]
	if !ok {
		return nil, resultErr(ldap.ResultNoSuchObject, req.BaseDN)
	}
	out := &ldapclient.Entry{DN: e.dn}
	for _, a := range e.rec.Attrs() {
		out.Attributes = append(out.Attributes,
			ldap.Attribute{Type: a, Values: e.rec.Get(a)})
	}
	return []*ldapclient.Entry{out}, nil
}

// record returns a copy of the entry's record (nil when absent).
func (d *fakeDir) record(dnStr string) lexpress.Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[normTestDN(dnStr)]
	if !ok {
		return nil
	}
	return e.rec.Clone()
}

// errorEntries counts logged ou=errors children.
func (d *fakeDir) errorEntries() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for norm := range d.entries {
		if strings.Contains(norm, "ou=errors") && norm != "ou=errors,o=lucent" {
			n++
		}
	}
	return n
}

// outboxEnv is one UM over a fakeDir with in-process device stores.
type outboxEnv struct {
	u   *um.UM
	dir *fakeDir
	pbx *device.Store
	mp  *device.Store // nil unless twoDevices
}

// startOutboxUM builds the harness. The stores and dir may be shared with a
// previous instance (the crash/restart test reuses them).
func startOutboxUM(t *testing.T, cfg um.Config, dir *fakeDir, pbx, mp *device.Store) *outboxEnv {
	t.Helper()
	if cfg.Suffix == nil {
		cfg.Suffix = dn.MustParse("o=Lucent")
	}
	if cfg.Library == nil {
		cfg.Library = lexpress.MustStandardLibrary()
	}
	cfg.Backing = dir
	u, err := um.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []*device.Store{pbx, mp} {
		if st == nil {
			continue
		}
		conv := device.NewStoreConverter(st, "metacomm")
		t.Cleanup(func() { conv.Close() })
		f, err := filter.NewDeviceFilter(conv, cfg.Library)
		if err != nil {
			t.Fatal(err)
		}
		u.AddDevice(f)
	}
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)
	return &outboxEnv{u: u, dir: dir, pbx: pbx, mp: mp}
}

// fastOutbox is an outbox config with millisecond-scale backoffs so the
// tests converge quickly.
func fastOutbox() um.OutboxConfig {
	return um.OutboxConfig{
		Enable:      true,
		MaxRetries:  6,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	}
}

func (e *outboxEnv) addPerson(t *testing.T, name, ext string) string {
	t.Helper()
	dnStr := fmt.Sprintf("cn=%s,o=Lucent", name)
	attrs := lexpress.NewRecord()
	attrs.Set("objectClass", "mcPerson", "definityUser")
	attrs.Set("cn", name)
	attrs.Set("sn", name)
	attrs.Set("definityExtension", ext)
	res := e.u.OnUpdate(ltap.Event{Kind: ltap.EventAdd, DN: dnStr, Attrs: attrs})
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("add %s: %+v", dnStr, res)
	}
	return dnStr
}

func (e *outboxEnv) setRoom(t *testing.T, dnStr, room string) {
	t.Helper()
	old := e.dir.record(dnStr)
	if old == nil {
		t.Fatalf("setRoom: no entry %s", dnStr)
	}
	res := e.u.OnUpdate(ltap.Event{
		Kind: ltap.EventModify, DN: dnStr, Old: old,
		Changes: []ltap.Change{{Op: "replace", Attr: "roomNumber", Values: []string{room}}},
	})
	if res.Code != ldap.ResultSuccess {
		t.Fatalf("modify %s: %+v", dnStr, res)
	}
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// deviceRoom reads the Room field the device stores for an extension.
func deviceRoom(st *device.Store, ext string) string {
	rec, err := st.Get(ext)
	if err != nil {
		return "<err:" + err.Error() + ">"
	}
	return rec.First("Room")
}

func pbxStats(t *testing.T, u *um.UM) um.OutboxStats {
	t.Helper()
	for _, s := range u.OutboxStats() {
		if s.Device == "pbx" {
			return s
		}
	}
	t.Fatal("no outbox stats for pbx")
	return um.OutboxStats{}
}

// TestOutboxFaultScenarios drives the single-device fault table: each case
// injects a different failure around one roomNumber update and states what
// must converge and which counters must move.
func TestOutboxFaultScenarios(t *testing.T) {
	cases := []struct {
		name string
		// inject arms the fault before the update; recover clears it after.
		inject  func(e *outboxEnv)
		recover func(e *outboxEnv)
		// wantRepairs is the minimum Repairs count at convergence.
		wantRepairs uint64
	}{
		{
			name:    "outage mid-fan-out",
			inject:  func(e *outboxEnv) { e.pbx.SetDown(true) },
			recover: func(e *outboxEnv) { e.pbx.SetDown(false) },
		},
		{
			name: "transient command failure",
			// One-shot failure: the fan-out apply fails, the first replay
			// succeeds — no repair needed.
			inject:  func(e *outboxEnv) { e.pbx.FailNext("administration command rejected") },
			recover: func(e *outboxEnv) {},
		},
		{
			name: "replay conflict falls back to targeted repair",
			// Two one-shot failures: the fan-out apply fails AND the first
			// replay fails with the device answering — the drainer must
			// repair the entry from the live directory.
			inject: func(e *outboxEnv) {
				e.pbx.FailNext("administration command rejected")
				e.pbx.FailNext("administration command rejected")
			},
			recover:     func(e *outboxEnv) {},
			wantRepairs: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := newFakeDir()
			pbx := device.NewStore("pbx", "Extension")
			e := startOutboxUM(t, um.Config{Shards: 2, Outbox: fastOutbox()}, dir, pbx, nil)
			dnStr := e.addPerson(t, "Fault Case", "2-9001")
			waitUntil(t, time.Second, func() bool { return deviceRoom(pbx, "2-9001") != "<err:device: record not found>" },
				"initial add to reach the device")

			tc.inject(e)
			e.setRoom(t, dnStr, "R-42")
			// The directory accepted the update even though the device
			// could not (the acceptance criterion: no stall, no loss).
			if got := e.dir.record(dnStr).First("roomNumber"); got != "R-42" {
				t.Fatalf("directory roomNumber = %q, want R-42", got)
			}
			tc.recover(e)

			waitUntil(t, 5*time.Second, func() bool {
				return e.u.OutboxBacklog() == 0 && deviceRoom(pbx, "2-9001") == "R-42"
			}, "outbox to drain and the device to converge")

			st := pbxStats(t, e.u)
			if st.Enqueued == 0 {
				t.Error("no update was journaled")
			}
			if st.Drained == 0 {
				t.Error("nothing drained")
			}
			if st.Repairs < tc.wantRepairs {
				t.Errorf("Repairs = %d, want >= %d", st.Repairs, tc.wantRepairs)
			}
			if st.Dropped != 0 {
				t.Errorf("Dropped = %d, want 0", st.Dropped)
			}
			if n := dir.errorEntries(); n != 0 {
				t.Errorf("%d error entries logged; the outbox should have absorbed the failure", n)
			}
		})
	}
}

// TestOutboxPartialMultiDeviceApply fails only the PBX half of a fan-out
// touching both devices: the messaging platform must apply immediately, the
// PBX through the outbox, and no error entry appears.
func TestOutboxPartialMultiDeviceApply(t *testing.T) {
	dir := newFakeDir()
	pbx := device.NewStore("pbx", "Extension")
	mp := device.NewStore("msgplat", "Mailbox")
	e := startOutboxUM(t, um.Config{Shards: 2, Outbox: fastOutbox()}, dir, pbx, mp)

	// A person with an extension gets a derived mailbox through the closure,
	// so updates fan out to both devices.
	dnStr := e.addPerson(t, "Partial Person", "2-9007")
	waitUntil(t, time.Second, func() bool {
		return e.u.OutboxBacklog() == 0 &&
			deviceRoom(pbx, "2-9007") != "<err:device: record not found>"
	}, "initial fan-out")
	if _, err := mp.Get("9007"); err != nil {
		t.Fatalf("mailbox 9007 not at the messaging platform: %v", err)
	}

	pbx.FailNext("port board unavailable")
	e.setRoom(t, dnStr, "R-7")

	// The messaging platform applied in the same fan-out (its Name field
	// carries cn; the roomNumber change itself maps only to the PBX, but the
	// update still reaches it — msgplat must not be disturbed).
	waitUntil(t, 5*time.Second, func() bool {
		return e.u.OutboxBacklog() == 0 && deviceRoom(pbx, "2-9007") == "R-7"
	}, "pbx to drain")
	if _, err := mp.Get("9007"); err != nil {
		t.Errorf("mailbox lost after partial failure: %v", err)
	}
	if n := dir.errorEntries(); n != 0 {
		t.Errorf("%d error entries logged", n)
	}
	st := pbxStats(t, e.u)
	if st.Enqueued != 1 || st.Drained != 1 {
		t.Errorf("pbx outbox enqueued=%d drained=%d, want 1/1", st.Enqueued, st.Drained)
	}
}

// TestOutboxCrashRestartDrainsJournal proves the acceptance criterion: a
// backlog journaled before a crash survives the restart and drains.
func TestOutboxCrashRestartDrainsJournal(t *testing.T) {
	journalDir := t.TempDir()
	dir := newFakeDir()
	pbx := device.NewStore("pbx", "Extension")
	cfg := fastOutbox()
	cfg.Dir = journalDir

	e := startOutboxUM(t, um.Config{Shards: 2, Outbox: cfg}, dir, pbx, nil)
	dnStr := e.addPerson(t, "Crash Person", "2-9003")
	waitUntil(t, time.Second, func() bool { return deviceRoom(pbx, "2-9003") != "<err:device: record not found>" },
		"initial add")

	pbx.SetDown(true)
	e.setRoom(t, dnStr, "R-11")
	e.setRoom(t, dnStr, "R-12")
	if got := pbxStats(t, e.u).Backlog; got != 2 {
		t.Fatalf("backlog before crash = %d, want 2", got)
	}
	e.u.Stop() // "crash": the journal holds two unacknowledged updates

	pbx.SetDown(false)
	e2 := startOutboxUM(t, um.Config{Shards: 2, Outbox: cfg}, dir, pbx, nil)
	waitUntil(t, 5*time.Second, func() bool {
		return e2.u.OutboxBacklog() == 0 && deviceRoom(pbx, "2-9003") == "R-12"
	}, "journaled backlog to drain after restart")
	if st := pbxStats(t, e2.u); st.Dropped != 0 {
		t.Errorf("Dropped = %d after restart drain", st.Dropped)
	}
}

// TestOutboxBreakerTransitions walks the breaker through closed -> open
// (consecutive failures) -> half-open probe -> closed (recovery), and
// checks that fan-out applies during the open window are deferred straight
// into the outbox without touching the device.
func TestOutboxBreakerTransitions(t *testing.T) {
	dir := newFakeDir()
	pbx := device.NewStore("pbx", "Extension")
	cfg := fastOutbox()
	cfg.BreakerThreshold = 2
	e := startOutboxUM(t, um.Config{Shards: 2, Outbox: cfg}, dir, pbx, nil)
	dnStr := e.addPerson(t, "Breaker Person", "2-9005")
	waitUntil(t, time.Second, func() bool { return deviceRoom(pbx, "2-9005") != "<err:device: record not found>" },
		"initial add")

	pbx.SetDown(true)
	e.setRoom(t, dnStr, "R-1")
	// The fan-out failure plus drainer retries trip the breaker open.
	waitUntil(t, 5*time.Second, func() bool { return pbxStats(t, e.u).Breaker == "open" },
		"breaker to open")

	// While open, new updates are deferred into the outbox (Deferred moves)
	// rather than applied (which would eat an apply each).
	before := pbxStats(t, e.u).Deferred
	e.setRoom(t, dnStr, "R-2")
	if got := pbxStats(t, e.u); got.Deferred != before+1 {
		t.Errorf("Deferred = %d, want %d: open breaker did not divert the fan-out", got.Deferred, before+1)
	}

	// Recovery: a half-open probe succeeds and closes the breaker; the
	// backlog drains in order, so the device ends at R-2.
	pbx.SetDown(false)
	waitUntil(t, 5*time.Second, func() bool {
		st := pbxStats(t, e.u)
		return st.Breaker == "closed" && st.Backlog == 0 && deviceRoom(pbx, "2-9005") == "R-2"
	}, "breaker to close and backlog to drain")
	if st := pbxStats(t, e.u); st.Trips == 0 {
		t.Error("breaker never recorded a trip")
	}
}

// TestOutboxRepairDeletesVanishedEntry covers the repair path's other arm:
// the directory entry is gone by the time the replay conflicts, so the
// targeted repair removes the stale device record.
func TestOutboxRepairDeletesVanishedEntry(t *testing.T) {
	dir := newFakeDir()
	pbx := device.NewStore("pbx", "Extension")
	e := startOutboxUM(t, um.Config{Shards: 2, Outbox: fastOutbox()}, dir, pbx, nil)
	dnStr := e.addPerson(t, "Vanish Person", "2-9009")
	waitUntil(t, time.Second, func() bool { return deviceRoom(pbx, "2-9009") != "<err:device: record not found>" },
		"initial add")

	// Journal an update while the device is down, remove the entry from
	// the directory behind the UM's back, then arm one conflict for the
	// replay: the drainer's repair must find nothing live. (The device
	// stays down until everything is staged — the drainer checks downness
	// before consuming injected failures, so the ordering is race-free.)
	pbx.SetDown(true)
	e.setRoom(t, dnStr, "R-99")
	if err := dir.Delete(dnStr); err != nil {
		t.Fatal(err)
	}
	pbx.FailNext("administration command rejected")
	pbx.SetDown(false)

	waitUntil(t, 5*time.Second, func() bool {
		_, err := pbx.Get("2-9009")
		return e.u.OutboxBacklog() == 0 && err != nil
	}, "repair to delete the stale device record")
	if st := pbxStats(t, e.u); st.Repairs == 0 {
		t.Error("no repair recorded")
	}
}
