// Package um implements MetaComm's Update Manager (paper §4.4): the central
// component that keeps the LDAP directory and the telecom devices
// consistent.
//
// All updates — whether they originate at an LDAP client (through LTAP) or
// directly at a device (a DDU, forwarded by the device filter through the
// LDAP filter to LTAP) — funnel through LTAP into the UM. The paper's
// prototype drained one global queue on a single coordinator thread; this
// implementation shards that queue by entry: the update's normalized DN is
// hashed onto one of Config.Shards worker queues, so every update for one
// entry lands on the same shard (total order per entry is preserved) while
// updates to distinct entries proceed in parallel. The relaxation is sound
// because the paper's consistency argument only ever needs per-entry
// ordering — LTAP already locks at entry granularity, and operations on
// independent entries commute. Each shard, for each update: applies it to
// the backing LDAP server, then fans out to the device filters
// concurrently (each device is an independent repository), joining before
// the device-generated write-back. Updates are reapplied to the device
// that originated them (marked conditional by lexpress's Originator
// mechanism), which is how MetaComm extends the directory world's relaxed
// write-write consistency to the meta-directory: every repository
// converges to its entry's serialization order.
//
// Failures at a device abort that device's update, log an error entry into
// the directory under the errors container, and notify the administrator;
// the UM also provides the synchronization facility used for initial
// population and for recovery after disconnection, executed in isolation
// under LTAP quiesce.
package um

import (
	"fmt"
	"hash/fnv"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/filter"
	"metacomm/internal/ldap"
	"metacomm/internal/lexpress"
	"metacomm/internal/ltap"
	"metacomm/internal/mcschema"
)

// Config wires an Update Manager.
type Config struct {
	// Suffix is the directory suffix ("o=Lucent").
	Suffix dn.DN
	// PeopleBase is where device-discovered people are created (defaults
	// to Suffix).
	PeopleBase dn.DN
	// Backing talks directly to the backing LDAP server (bypassing LTAP —
	// the UM's own writes must not re-trigger).
	Backing filter.LDAPClient
	// LTAP talks to the LTAP gateway; the DDU path applies device-
	// originated updates through it so they are locked and serialized.
	LTAP filter.LDAPClient
	// Quiesce/Unquiesce control the gateway's quiesce facility during
	// synchronization. Optional; synchronization proceeds unisolated
	// without them.
	Quiesce   func() bool
	Unquiesce func()
	// Library is the compiled lexpress mapping library.
	Library *lexpress.Library
	// ClosureMapping names the intra-directory closure unit (default
	// "LDAPClosure", "" disables closure).
	ClosureMapping string
	// Shards is the number of update execution shards. Updates are routed
	// by normalized entry DN, so all updates for one entry serialize on one
	// shard while distinct entries proceed in parallel. 0 means
	// DefaultShards.
	Shards int
	// QueueDepth is each shard's queue capacity. A full shard queue
	// rejects the update with ldap.ResultBusy rather than blocking the
	// caller forever. 0 means DefaultQueueDepth.
	QueueDepth int
	// SyncWorkers sizes the synchronization reconciliation worker pool.
	// Items are sharded onto workers by entry key (the UM shard-hash
	// discipline), so per-entry ordering holds within a pass. 0 means
	// DefaultSyncWorkers.
	SyncWorkers int
	// Snapshot, when set, provides a consistent COW directory snapshot plus
	// a changelog subscription starting right after it (the DIT's
	// SnapshotAndSubscribeSeq). With it, synchronization runs its bulk
	// phase UNQUISCED against the snapshot and only quiesces to replay the
	// delta; without it, the whole pass runs under the quiesce as before.
	Snapshot func(buffer int) ([]directory.Entry, uint64, <-chan directory.UpdateRecord, func())
	// SnapshotRange is the streaming form of Snapshot (the DIT's
	// SnapshotRangeAndSubscribeSeq): the same exact cut, but entries are
	// streamed to the visit callback instead of materialized into one
	// slice, so the bulk pass's transient footprint is the person entries
	// it keeps, not the whole directory. Preferred over Snapshot when both
	// are set.
	SnapshotRange func(buffer int, visit func(directory.Entry) bool) (uint64, <-chan directory.UpdateRecord, func())
	// Outbox configures the durable device-update outbox with per-device
	// circuit breakers (see OutboxConfig). The zero value disables it:
	// failed device applies are logged as error entries and lost at that
	// device until the next synchronization pass.
	Outbox OutboxConfig
	// Log receives operational messages (nil = discard).
	Log *log.Logger
}

// Engine sizing defaults.
const (
	DefaultShards      = 4
	DefaultQueueDepth  = 256
	DefaultSyncWorkers = 4
)

// Stats are the UM's monotonic operation counters plus engine gauges.
type Stats struct {
	UpdatesProcessed uint64
	DeviceApplies    uint64
	Reapplies        uint64
	ClosureChanges   uint64
	ErrorsLogged     uint64
	DDUsForwarded    uint64
	// QueueRejections counts updates bounced with ldap.ResultBusy because
	// their shard queue was full.
	QueueRejections uint64
	// RemoteApplies counts replicated writes from peer nodes fanned out to
	// this node's devices; RemoteDrops counts ones dropped because their
	// shard queue was full (the next synchronization pass repairs the
	// device).
	RemoteApplies uint64
	RemoteDrops   uint64

	// Cumulative per-stage wall time, in nanoseconds. Divide by
	// UpdatesProcessed for means. EnqueueWaitNs is the time updates sat in
	// a shard queue before a worker picked them up; DirectoryApplyNs is
	// the backing-directory write; FanoutNs is the concurrent device
	// fan-out (translate+apply, joined); WriteBackNs is the
	// device-generated information write-back.
	EnqueueWaitNs    uint64
	DirectoryApplyNs uint64
	FanoutNs         uint64
	WriteBackNs      uint64

	// Pending gauges updates admitted but not yet fully processed
	// (queued or executing). A quiesced engine shows 0.
	Pending int
	// Shards echoes the engine's shard count.
	Shards int
}

// UM is the Update Manager.
type UM struct {
	cfg     Config
	closure *lexpress.Mapping // may be nil

	filters []*filter.DeviceFilter
	// ldapLTAP applies device-originated updates through LTAP; ldapDirect
	// applies coordinator/sync updates to the backing server.
	ldapLTAP   *filter.LDAPFilter
	ldapDirect *filter.LDAPFilter

	// shards are the per-entry-hash update queues, each drained by its own
	// worker goroutine.
	shards []chan *job
	wg     sync.WaitGroup
	stop   chan struct{}

	// outbox is the durable device-update retry facility (nil when
	// Config.Outbox leaves it disabled). The pointer is set in New and
	// never changes, so lock-free reads are safe.
	outbox *outbox

	// engMu guards the drain barrier: pending counts admitted-but-
	// unfinished updates, paused blocks new admissions (Quiesce/Resume).
	engMu   sync.Mutex
	engCond *sync.Cond
	pending int
	paused  bool

	errSeq  atomic.Uint64
	started atomic.Bool
	stopped atomic.Bool

	// syncMu guards lastSync, the most recent SyncStats per device name
	// (surfaced on the WBA /status page and the metacommd shutdown
	// summary).
	syncMu   sync.Mutex
	lastSync map[string]SyncStats

	updatesProcessed atomic.Uint64
	deviceApplies    atomic.Uint64
	reapplies        atomic.Uint64
	closureChanges   atomic.Uint64
	errorsLogged     atomic.Uint64
	ddusForwarded    atomic.Uint64
	queueRejections  atomic.Uint64
	remoteApplies    atomic.Uint64
	remoteDrops      atomic.Uint64
	enqueueWaitNs    atomic.Uint64
	directoryApplyNs atomic.Uint64
	fanoutNs         atomic.Uint64
	writeBackNs      atomic.Uint64
}

type job struct {
	ev       ltap.Event
	reply    chan ldap.Result
	enqueued time.Time
	// fn, when set, is a self-contained task (remote-write device
	// propagation) the shard worker runs instead of process(ev); it has no
	// caller waiting, so reply is nil.
	fn func()
}

// New builds an Update Manager. Call AddDevice for each device filter, then
// Start.
func New(cfg Config) (*UM, error) {
	if cfg.Library == nil {
		return nil, fmt.Errorf("um: config needs a mapping library")
	}
	if cfg.Backing == nil {
		return nil, fmt.Errorf("um: config needs a backing LDAP client")
	}
	if len(cfg.PeopleBase) == 0 {
		cfg.PeopleBase = cfg.Suffix
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.SyncWorkers <= 0 {
		cfg.SyncWorkers = DefaultSyncWorkers
	}
	u := &UM{
		cfg:      cfg,
		shards:   make([]chan *job, cfg.Shards),
		stop:     make(chan struct{}),
		lastSync: map[string]SyncStats{},
	}
	for i := range u.shards {
		u.shards[i] = make(chan *job, cfg.QueueDepth)
	}
	u.engCond = sync.NewCond(&u.engMu)
	name := cfg.ClosureMapping
	if name == "" {
		name = "LDAPClosure"
	}
	if m, ok := cfg.Library.Get(name); ok {
		u.closure = m
	} else if cfg.ClosureMapping != "" {
		return nil, fmt.Errorf("um: closure mapping %q not in library", cfg.ClosureMapping)
	}
	u.ldapDirect = &filter.LDAPFilter{
		Client: cfg.Backing, Suffix: cfg.Suffix, PeopleBase: cfg.PeopleBase, RDNAttr: mcschema.AttrCN,
	}
	if cfg.Outbox.Enabled() {
		u.outbox = newOutbox(u, cfg.Outbox)
	}
	if cfg.LTAP != nil {
		u.ldapLTAP = &filter.LDAPFilter{
			Client: cfg.LTAP, Suffix: cfg.Suffix, PeopleBase: cfg.PeopleBase, RDNAttr: mcschema.AttrCN,
		}
	}
	return u, nil
}

// AddDevice registers a device filter. Must be called before Start.
func (u *UM) AddDevice(f *filter.DeviceFilter) { u.filters = append(u.filters, f) }

// SetLTAP installs the client used to push device-originated updates
// through the LTAP gateway. The gateway needs the UM as its action and the
// UM needs a connection to the gateway, so this is set after the gateway is
// listening and before Start.
func (u *UM) SetLTAP(c filter.LDAPClient) {
	u.cfg.LTAP = c
	u.ldapLTAP = &filter.LDAPFilter{
		Client: c, Suffix: u.cfg.Suffix, PeopleBase: u.cfg.PeopleBase, RDNAttr: mcschema.AttrCN,
	}
}

// LDAPViaLTAP exposes the LTAP-path LDAP filter (tests exercise the §5.1
// rename crash window through it).
func (u *UM) LDAPViaLTAP() *filter.LDAPFilter { return u.ldapLTAP }

// SetSnapshot installs (or, with nil, removes) the directory snapshot
// source the synchronization engine uses for its unquiesced bulk phase.
// Installing or removing it also removes a configured streaming source
// (SnapshotRange), so SetSnapshot(nil) forces the legacy full-quiesce pass
// — benchmarks and tests use that for comparison.
func (u *UM) SetSnapshot(fn func(int) ([]directory.Entry, uint64, <-chan directory.UpdateRecord, func())) {
	u.cfg.Snapshot = fn
	u.cfg.SnapshotRange = nil
}

// LastSyncStats returns the most recent synchronization stats per device.
func (u *UM) LastSyncStats() map[string]SyncStats {
	u.syncMu.Lock()
	defer u.syncMu.Unlock()
	out := make(map[string]SyncStats, len(u.lastSync))
	for k, v := range u.lastSync {
		out[k] = v
	}
	return out
}

// setLastSync records a pass's stats for LastSyncStats.
func (u *UM) setLastSync(device string, s SyncStats) {
	u.syncMu.Lock()
	u.lastSync[device] = s
	u.syncMu.Unlock()
}

// Filters returns the registered device filters.
func (u *UM) Filters() []*filter.DeviceFilter { return u.filters }

// Stats snapshots the counters.
func (u *UM) Stats() Stats {
	u.engMu.Lock()
	pending := u.pending
	u.engMu.Unlock()
	return Stats{
		UpdatesProcessed: u.updatesProcessed.Load(),
		DeviceApplies:    u.deviceApplies.Load(),
		Reapplies:        u.reapplies.Load(),
		ClosureChanges:   u.closureChanges.Load(),
		ErrorsLogged:     u.errorsLogged.Load(),
		DDUsForwarded:    u.ddusForwarded.Load(),
		QueueRejections:  u.queueRejections.Load(),
		RemoteApplies:    u.remoteApplies.Load(),
		RemoteDrops:      u.remoteDrops.Load(),
		EnqueueWaitNs:    u.enqueueWaitNs.Load(),
		DirectoryApplyNs: u.directoryApplyNs.Load(),
		FanoutNs:         u.fanoutNs.Load(),
		WriteBackNs:      u.writeBackNs.Load(),
		Pending:          pending,
		Shards:           len(u.shards),
	}
}

func (u *UM) logf(format string, args ...any) {
	if u.cfg.Log != nil {
		u.cfg.Log.Printf(format, args...)
	}
}

// Start launches the shard workers and the device notification listeners,
// and ensures the errors container exists.
func (u *UM) Start() error {
	if !u.started.CompareAndSwap(false, true) {
		return fmt.Errorf("um: already started")
	}
	if err := u.ensureErrorContainer(); err != nil {
		return err
	}
	if u.outbox != nil {
		if err := u.outbox.start(); err != nil {
			return err
		}
	}
	for _, q := range u.shards {
		u.wg.Add(1)
		go func(q chan *job) {
			defer u.wg.Done()
			u.shardWorker(q)
		}(q)
	}
	for _, f := range u.filters {
		if u.ldapLTAP == nil {
			break // no DDU path without an LTAP connection
		}
		u.wg.Add(1)
		go func(f *filter.DeviceFilter) {
			defer u.wg.Done()
			u.deviceListener(f)
		}(f)
	}
	return nil
}

// SetQuiesce wires the gateway quiesce facility used to isolate
// synchronization passes.
func (u *UM) SetQuiesce(quiesce func() bool, unquiesce func()) {
	u.cfg.Quiesce, u.cfg.Unquiesce = quiesce, unquiesce
}

// Stop shuts the UM down. It is idempotent and safe to call on a UM that
// never started. Device converters are not closed (their owner closes
// them).
func (u *UM) Stop() {
	if !u.stopped.CompareAndSwap(false, true) {
		return
	}
	close(u.stop)
	// Wake anything blocked on the drain barrier (Quiesce or a paused
	// OnUpdate) so it can observe the stop.
	u.engMu.Lock()
	u.engCond.Broadcast()
	u.engMu.Unlock()
	u.wg.Wait()
	if u.outbox != nil {
		u.outbox.close()
	}
}

// shardFor routes an update to its shard: all updates for one entry hash to
// the same worker, which is what preserves per-entry total order.
func (u *UM) shardFor(name string) chan *job {
	if len(u.shards) == 1 {
		return u.shards[0]
	}
	key := name
	if parsed, err := dn.Parse(name); err == nil {
		key = parsed.Normalize()
	} else {
		key = strings.ToLower(name)
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return u.shards[h.Sum32()%uint32(len(u.shards))]
}

// OnUpdate implements ltap.Action: every trapped LDAP update is admitted
// through the drain barrier, routed to its entry's shard, and answered when
// that shard finishes the full update sequence. A full shard queue rejects
// the update with ResultBusy instead of blocking the caller.
func (u *UM) OnUpdate(ev ltap.Event) ldap.Result {
	u.engMu.Lock()
	for u.paused && !u.stopped.Load() {
		u.engCond.Wait()
	}
	if u.stopped.Load() {
		u.engMu.Unlock()
		return ldap.Result{Code: ldap.ResultUnavailable, Message: "um: stopped"}
	}
	u.pending++
	u.engMu.Unlock()

	j := &job{ev: ev, reply: make(chan ldap.Result, 1), enqueued: time.Now()}
	select {
	case u.shardFor(ev.DN) <- j:
	default:
		u.jobDone()
		u.queueRejections.Add(1)
		return ldap.Result{Code: ldap.ResultBusy,
			Message: "um: update queue full, retry later"}
	}
	select {
	case res := <-j.reply:
		return res
	case <-u.stop:
		return ldap.Result{Code: ldap.ResultUnavailable, Message: "um: stopped"}
	}
}

// PropagateRemote fans a replicated write from a peer node out to THIS
// node's device filters. The write already reached the local directory
// (DIT.ApplyRemote won its LWW resolution and committed), so the sequence
// here is the tail of the normal update sequence only: translate + apply
// per device, serialized per entry on the same shard its LDAP updates
// use. Two deliberate asymmetries against process():
//
//   - it never goes through LTAP — re-trapping a replicated write would
//     re-stamp it and loop it around the mesh;
//   - device-GENERATED information is discarded, not written back: the
//     ORIGIN node ran the write-back for its own write and that result
//     replicates over like any other update. A local write-back here
//     would race it with a fresh stamp and ping-pong the entry.
//
// old/new are the local before/after images (nil old = created, nil new
// = deleted). The call never blocks on a full shard queue: the update is
// dropped (counted in Stats.RemoteDrops) and the next synchronization
// pass repairs the device. Returns false on drop or when stopped.
func (u *UM) PropagateRemote(name string, old, new lexpress.Record) bool {
	u.engMu.Lock()
	for u.paused && !u.stopped.Load() {
		u.engCond.Wait()
	}
	if u.stopped.Load() {
		u.engMu.Unlock()
		return false
	}
	u.pending++
	u.engMu.Unlock()

	j := &job{enqueued: time.Now(), fn: func() { u.propagateRemote(name, old, new) }}
	select {
	case u.shardFor(name) <- j:
		return true
	default:
		u.jobDone()
		u.remoteDrops.Add(1)
		return false
	}
}

// propagateRemote runs one remote write's device fan-out on its shard.
func (u *UM) propagateRemote(name string, old, new lexpress.Record) {
	u.remoteApplies.Add(1)
	op := lexpress.OpModify
	switch {
	case old == nil:
		op = lexpress.OpAdd
	case new == nil:
		op = lexpress.OpDelete
	}
	explicit := new
	if explicit == nil {
		explicit = old
	}
	desc := lexpress.Descriptor{
		Source:   "ldap",
		Op:       op,
		Key:      name,
		Old:      old,
		New:      new,
		Explicit: explicit.Attrs(),
	}
	fanStart := time.Now()
	u.fanOut(desc, new) // generated info discarded; see PropagateRemote
	u.fanoutNs.Add(uint64(time.Since(fanStart)))
}

// shardWorker drains one shard queue, serializing the update sequences of
// the entries that hash onto it.
func (u *UM) shardWorker(q chan *job) {
	for {
		select {
		case j := <-q:
			u.enqueueWaitNs.Add(uint64(time.Since(j.enqueued)))
			if j.fn != nil {
				j.fn()
			} else {
				j.reply <- u.process(j.ev)
			}
			u.jobDone()
		case <-u.stop:
			return
		}
	}
}

// jobDone retires one admitted update and wakes the drain barrier when the
// engine runs dry.
func (u *UM) jobDone() {
	u.engMu.Lock()
	u.pending--
	if u.pending == 0 {
		u.engCond.Broadcast()
	}
	u.engMu.Unlock()
}

// Quiesce is the engine's drain barrier: it blocks new updates from being
// admitted and waits until every queued and executing update has finished,
// so the caller (the synchronization facility, §5.1) observes a quiet
// system across all shards. It reports false when the engine is already
// quiesced. Pair with Resume.
func (u *UM) Quiesce() bool {
	u.engMu.Lock()
	defer u.engMu.Unlock()
	if u.paused {
		return false
	}
	u.paused = true
	for u.pending > 0 && !u.stopped.Load() {
		u.engCond.Wait()
	}
	return true
}

// Resume re-opens the engine after Quiesce.
func (u *UM) Resume() {
	u.engMu.Lock()
	u.paused = false
	u.engCond.Broadcast()
	u.engMu.Unlock()
}

// deviceListener forwards DDU notifications through the LDAP filter to
// LTAP (paper §4.4's update sequence for direct device updates).
func (u *UM) deviceListener(f *filter.DeviceFilter) {
	notifs := f.Converter().Notifications()
	for {
		select {
		case n, ok := <-notifs:
			if !ok {
				return
			}
			u.ddusForwarded.Add(1)
			desc := f.DescriptorFromNotification(n)
			tu, err := f.FromDevice().Translate(desc)
			if err != nil {
				u.logError(f.Name(), "ldap", desc.Op.String(), desc.Key, err)
				continue
			}
			if tu == nil {
				continue
			}
			_, keyDst := f.FromDevice().KeyAttrs()
			err = u.ldapLTAP.Apply(tu, keyDst)
			if err != nil && tu.Op == lexpress.OpAdd && ldap.IsCode(err, ldap.ResultEntryAlreadyExists) {
				// The record reached the directory through another path
				// first (e.g. a synchronization pass racing this DDU);
				// converge rather than complain.
				tu.Op = lexpress.OpModify
				tu.Old = tu.New
				err = u.ldapLTAP.Apply(tu, keyDst)
			}
			if err != nil {
				u.logError(f.Name(), "ldap", tu.Op.String(), tu.Key, err)
			}
		case <-u.stop:
			return
		}
	}
}

// process runs one update sequence, serialized per entry by its shard:
// apply to the backing directory, fan out to the devices concurrently, then
// write back any device-generated information after all devices finish.
func (u *UM) process(ev ltap.Event) ldap.Result {
	u.updatesProcessed.Add(1)
	name, err := dn.Parse(ev.DN)
	if err != nil {
		return ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: err.Error()}
	}

	images, res := u.computeImages(ev, name)
	if res.Code != ldap.ResultSuccess {
		return res
	}

	// Closure: propagate dependent attributes (telephoneNumber <->
	// definityExtension <-> mailboxNumber ...). Explicitly set attributes
	// are never overwritten.
	var closureChanged []string
	var classAdds []ldap.Change
	if u.closure != nil && images.new != nil {
		changed, err := u.closure.ApplyClosure(images.old, images.new, images.explicit)
		if err != nil {
			if err == lexpress.ErrNoFixpoint {
				return ldap.Result{Code: ldap.ResultConstraintViolation,
					Message: "closure did not reach a fixpoint for this update"}
			}
			return ldap.Result{Code: ldap.ResultOther, Message: err.Error()}
		}
		closureChanged = changed
		u.closureChanges.Add(uint64(len(changed)))
		classAdds = u.ensureAuxClasses(images.new, closureChanged)
	}
	if ev.Kind == ltap.EventAdd && images.new != nil {
		// A fresh entry may also need classes for attributes the client
		// supplied without declaring the class (weakly-typed tools do).
		u.ensureAuxClasses(images.new, images.new.Attrs())
	}

	// Apply to the backing directory first; failure aborts the sequence
	// and surfaces to the client.
	dirStart := time.Now()
	newDN, err := u.applyToDirectory(ev, name, images, closureChanged, classAdds)
	u.directoryApplyNs.Add(uint64(time.Since(dirStart)))
	if err != nil {
		return resultOf(err)
	}

	// Fan out to every device (including a conditional reapply to the
	// originator).
	desc := lexpress.Descriptor{
		Source: "ldap",
		Op:     opOfEvent(ev.Kind),
		Key:    newDN.String(),
		Old:    images.old,
		New:    images.new,
		Explicit: append(append([]string(nil), images.explicit...),
			closureChanged...),
	}
	fanStart := time.Now()
	generated := u.fanOut(desc, images.new)
	u.fanoutNs.Add(uint64(time.Since(fanStart)))
	if len(generated) > 0 {
		wbStart := time.Now()
		err := u.applyGenerated(newDN, generated)
		u.writeBackNs.Add(uint64(time.Since(wbStart)))
		if err != nil {
			u.logError("um", "ldap", "modify", newDN.String(), err)
		}
	}
	return ldap.Result{Code: ldap.ResultSuccess}
}

// fanOut translates the update for every device filter and applies the
// concerned ones concurrently — each device is an independent repository,
// so within one update only the write-back must be ordered after them
// (paper §5.5). It returns the merged device-generated information,
// collected in filter-registration order for determinism.
func (u *UM) fanOut(desc lexpress.Descriptor, ldapNew lexpress.Record) lexpress.Record {
	type target struct {
		f      *filter.DeviceFilter
		tu     *lexpress.TargetUpdate
		stored lexpress.Record
		err    error
	}
	targets := make([]*target, 0, len(u.filters))
	for _, f := range u.filters {
		tu, err := f.Translate(desc)
		if err != nil {
			u.logError("ldap", f.Name(), desc.Op.String(), desc.Key, err)
			continue
		}
		if tu == nil {
			continue
		}
		u.deviceApplies.Add(1)
		if tu.Conditional {
			u.reapplies.Add(1)
		}
		if u.outbox != nil && u.outbox.deferUpdate(f, desc.Key, tu) {
			// Open breaker or backlog ahead of this entry: the update is
			// journaled behind the device's outbox instead of applied here
			// (the drainer replays it in order once the device answers).
			continue
		}
		targets = append(targets, &target{f: f, tu: tu})
	}
	if len(targets) > 1 {
		var wg sync.WaitGroup
		for _, t := range targets {
			wg.Add(1)
			go func(t *target) {
				defer wg.Done()
				t.stored, t.err = u.applyDevice(t.f, t.tu)
			}(t)
		}
		wg.Wait()
	} else if len(targets) == 1 {
		t := targets[0]
		t.stored, t.err = u.applyDevice(t.f, t.tu)
	}
	generated := lexpress.NewRecord()
	for _, t := range targets {
		if t.err != nil {
			if u.outbox != nil && u.outbox.handleFailure(t.f, desc.Key, t.tu, t.err) {
				continue // journaled for retry; no error entry unless dropped
			}
			u.logError("ldap", t.f.Name(), t.tu.Op.String(), t.tu.Key, t.err)
			continue
		}
		// Device-generated information (paper §5.5): fields the device
		// invented flow back to the directory only, after all devices.
		u.collectGenerated(t.f, t.tu, t.stored, ldapNew, generated)
	}
	return generated
}

// images carries the before/after records of the entry under update.
type images struct {
	old      lexpress.Record
	new      lexpress.Record
	explicit []string
}

// computeImages derives the old/new records and the explicitly set
// attributes from the trapped event.
func (u *UM) computeImages(ev ltap.Event, name dn.DN) (images, ldap.Result) {
	ok := ldap.Result{Code: ldap.ResultSuccess}
	switch ev.Kind {
	case ltap.EventAdd:
		rec := ev.Attrs.Clone()
		for _, ava := range name.RDN() {
			if !hasValue(rec, ava.Attr, ava.Value) {
				rec[strings.ToLower(ava.Attr)] = append(rec.Get(ava.Attr), ava.Value)
			}
		}
		u.stampOrigin(rec, rec.Attrs())
		return images{new: rec, explicit: rec.Attrs()}, ok

	case ltap.EventDelete:
		if ev.Old == nil {
			return images{}, ldap.Result{Code: ldap.ResultNoSuchObject,
				Message: "no entry " + ev.DN}
		}
		return images{old: ev.Old}, ok

	case ltap.EventModify:
		if ev.Old == nil {
			return images{}, ldap.Result{Code: ldap.ResultNoSuchObject,
				Message: "no entry " + ev.DN}
		}
		rec := ev.Old.Clone()
		var explicit []string
		for _, c := range ev.Changes {
			lc, err := c.ToLDAP()
			if err != nil {
				return images{}, ldap.Result{Code: ldap.ResultProtocolError, Message: err.Error()}
			}
			applyChange(rec, lc)
			explicit = append(explicit, c.Attr)
		}
		u.stampOrigin(rec, explicit)
		return images{old: ev.Old, new: rec, explicit: explicit}, ok

	case ltap.EventModifyDN:
		if ev.Old == nil {
			return images{}, ldap.Result{Code: ldap.ResultNoSuchObject,
				Message: "no entry " + ev.DN}
		}
		newRDN, err := dn.Parse(ev.NewRDN)
		if err != nil || newRDN.Depth() != 1 {
			return images{}, ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: "bad newRDN"}
		}
		rec := ev.Old.Clone()
		var explicit []string
		for _, ava := range newRDN.RDN() {
			vals := rec.Get(ava.Attr)
			if ev.DeleteOldRDN {
				vals = removeValue(vals, name.FirstValue(ava.Attr))
			}
			if !containsFold(vals, ava.Value) {
				vals = append(vals, ava.Value)
			}
			rec.Set(ava.Attr, vals...)
			explicit = append(explicit, ava.Attr)
		}
		u.stampOrigin(rec, explicit)
		return images{old: ev.Old, new: rec, explicit: explicit}, ok
	}
	return images{}, ldap.Result{Code: ldap.ResultProtocolError,
		Message: fmt.Sprintf("unknown event kind %q", ev.Kind)}
}

// stampOrigin records where this update came from. Device-originated
// updates arrive with lastUpdater explicitly set by the device->ldap
// mapping; anything else is an LDAP-client update.
func (u *UM) stampOrigin(rec lexpress.Record, explicit []string) {
	for _, a := range explicit {
		if strings.EqualFold(a, mcschema.AttrLastUpdater) {
			return
		}
	}
	rec.Set(mcschema.AttrLastUpdater, "ldap")
}

// ensureAuxClasses extends the record's objectClass list with the auxiliary
// classes the named attributes require; it returns the ModAdd changes for
// modify-path application.
func (u *UM) ensureAuxClasses(rec lexpress.Record, attrs []string) []ldap.Change {
	var out []ldap.Change
	classes := rec.Get("objectClass")
	for _, a := range attrs {
		cls := mcschema.AuxClassFor(a)
		if cls == "" || containsFold(classes, cls) {
			continue
		}
		classes = append(classes, cls)
		out = append(out, ldap.Change{Op: ldap.ModAdd,
			Attribute: ldap.Attribute{Type: "objectClass", Values: []string{cls}}})
	}
	if len(out) > 0 {
		rec.Set("objectClass", classes...)
	}
	return out
}

// applyToDirectory writes the serialized update to the backing server. For
// a ModifyDN it issues the non-atomic ModifyRDN/Modify pair of §5.1. It
// returns the entry's (possibly new) DN.
func (u *UM) applyToDirectory(ev ltap.Event, name dn.DN, img images, closureChanged []string, classAdds []ldap.Change) (dn.DN, error) {
	switch ev.Kind {
	case ltap.EventAdd:
		return name, u.cfg.Backing.Add(ev.DN, recordAttributes(img.new))

	case ltap.EventDelete:
		return name, u.cfg.Backing.Delete(ev.DN)

	case ltap.EventModify:
		changes := make([]ldap.Change, 0, len(ev.Changes)+len(closureChanged)+len(classAdds))
		for _, c := range ev.Changes {
			lc, err := c.ToLDAP()
			if err != nil {
				return name, err
			}
			changes = append(changes, lc)
		}
		changes = append(changes, classAdds...)
		changes = append(changes, closureReplace(img.new, closureChanged)...)
		changes = append(changes, originChange(img.new, ev.Changes)...)
		return name, u.cfg.Backing.Modify(ev.DN, changes)

	case ltap.EventModifyDN:
		if err := u.cfg.Backing.ModifyDN(ev.DN, ev.NewRDN, ev.DeleteOldRDN); err != nil {
			return name, err
		}
		newRDN, _ := dn.Parse(ev.NewRDN)
		newDN := name.WithRDN(newRDN.RDN())
		// Second half of the pair: closure fallout and the origin stamp.
		changes := append(append([]ldap.Change(nil), classAdds...),
			closureReplace(img.new, closureChanged)...)
		changes = append(changes, ldap.Change{Op: ldap.ModReplace, Attribute: ldap.Attribute{
			Type: mcschema.AttrLastUpdater, Values: img.new.Get(mcschema.AttrLastUpdater)}})
		if len(changes) > 0 {
			if err := u.cfg.Backing.Modify(newDN.String(), changes); err != nil {
				return newDN, err
			}
		}
		return newDN, nil
	}
	return name, fmt.Errorf("um: unknown event kind %q", ev.Kind)
}

func closureReplace(rec lexpress.Record, attrs []string) []ldap.Change {
	var out []ldap.Change
	for _, a := range attrs {
		out = append(out, ldap.Change{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: a, Values: rec.Get(a)}})
	}
	return out
}

// originChange emits the lastUpdater stamp unless the client's own changes
// already set it.
func originChange(rec lexpress.Record, changes []ltap.Change) []ldap.Change {
	for _, c := range changes {
		if strings.EqualFold(c.Attr, mcschema.AttrLastUpdater) {
			return nil
		}
	}
	return []ldap.Change{{Op: ldap.ModReplace, Attribute: ldap.Attribute{
		Type: mcschema.AttrLastUpdater, Values: rec.Get(mcschema.AttrLastUpdater)}}}
}

// collectGenerated diffs what the device stored against what we sent; new
// information maps back through the device->ldap mapping into generated.
// The auxiliary classes the generated attributes require come along.
func (u *UM) collectGenerated(f *filter.DeviceFilter, tu *lexpress.TargetUpdate,
	stored lexpress.Record, ldapNew lexpress.Record, generated lexpress.Record) {
	if stored == nil || tu.Op == lexpress.OpDelete {
		return
	}
	diff := lexpress.NewRecord()
	for _, a := range stored.Attrs() {
		if !sameValues(stored.Get(a), tu.New.Get(a)) {
			diff.Set(a, stored.Get(a)...)
		}
	}
	if len(diff) == 0 {
		return
	}
	img, err := f.FromDevice().Image(stored)
	if err != nil {
		return
	}
	any := false
	for _, a := range img.Attrs() {
		if ldapNew != nil && ldapNew.Has(a) {
			continue // only NEW information flows back
		}
		if strings.EqualFold(a, "objectclass") || strings.EqualFold(a, mcschema.AttrLastUpdater) ||
			strings.EqualFold(a, mcschema.AttrCN) || strings.EqualFold(a, mcschema.AttrSN) {
			continue
		}
		generated.Set(a, img.Get(a)...)
		any = true
	}
	if any {
		// Carry the classes that make the new attributes legal.
		classes := generated.Get("objectClass")
		for _, c := range img.Get("objectClass") {
			if !containsFold(classes, c) {
				classes = append(classes, c)
			}
		}
		generated.Set("objectClass", classes...)
	}
}

// applyGenerated writes device-generated information back to the directory
// entry after all devices are updated (§5.5), diffing against the live
// entry so only real changes (and missing auxiliary classes) are written.
func (u *UM) applyGenerated(name dn.DN, generated lexpress.Record) error {
	entries, err := u.cfg.Backing.Search(&ldap.SearchRequest{
		BaseDN: name.String(), Scope: ldap.ScopeBaseObject,
	})
	if err != nil {
		return err
	}
	if len(entries) != 1 {
		return fmt.Errorf("um: entry %s vanished before generated-info write-back", name)
	}
	cur := entries[0]
	var changes []ldap.Change
	for _, a := range generated.Attrs() {
		if strings.EqualFold(a, "objectclass") {
			for _, v := range generated.Get(a) {
				if !containsFold(cur.Attr(a), v) {
					changes = append(changes, ldap.Change{Op: ldap.ModAdd,
						Attribute: ldap.Attribute{Type: "objectClass", Values: []string{v}}})
				}
			}
			continue
		}
		if sameValueSet(cur.Attr(a), generated.Get(a)) {
			continue
		}
		changes = append(changes, ldap.Change{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: a, Values: generated.Get(a)}})
	}
	if len(changes) == 0 {
		return nil
	}
	return u.cfg.Backing.Modify(cur.DN, changes)
}

func sameValueSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for _, v := range a {
		if !containsFold(b, v) {
			return false
		}
	}
	return true
}

// --- small helpers ---

func opOfEvent(k ltap.EventKind) lexpress.OpKind {
	switch k {
	case ltap.EventAdd:
		return lexpress.OpAdd
	case ltap.EventDelete:
		return lexpress.OpDelete
	default:
		return lexpress.OpModify
	}
}

func resultOf(err error) ldap.Result {
	if err == nil {
		return ldap.Result{Code: ldap.ResultSuccess}
	}
	if re, ok := err.(*ldap.ResultError); ok {
		return re.Result
	}
	return ldap.Result{Code: directory.CodeOf(err), Message: err.Error()}
}

func recordAttributes(rec lexpress.Record) []ldap.Attribute {
	var out []ldap.Attribute
	for _, a := range rec.Attrs() {
		out = append(out, ldap.Attribute{Type: a, Values: rec.Get(a)})
	}
	return out
}

// applyChange mirrors LDAP modify semantics onto a lexpress record
// (tolerantly: this rebuilds an image, the authoritative check happens at
// the directory).
func applyChange(rec lexpress.Record, c ldap.Change) {
	switch c.Op {
	case ldap.ModReplace:
		rec.Set(c.Attribute.Type, c.Attribute.Values...)
	case ldap.ModAdd:
		vals := rec.Get(c.Attribute.Type)
		for _, v := range c.Attribute.Values {
			if !containsFold(vals, v) {
				vals = append(vals, v)
			}
		}
		rec.Set(c.Attribute.Type, vals...)
	case ldap.ModDelete:
		if len(c.Attribute.Values) == 0 {
			rec.Set(c.Attribute.Type)
			return
		}
		vals := rec.Get(c.Attribute.Type)
		for _, v := range c.Attribute.Values {
			vals = removeValue(vals, v)
		}
		rec.Set(c.Attribute.Type, vals...)
	}
}

func containsFold(vals []string, v string) bool {
	for _, x := range vals {
		if strings.EqualFold(x, v) {
			return true
		}
	}
	return false
}

func removeValue(vals []string, v string) []string {
	out := vals[:0:0]
	for _, x := range vals {
		if !strings.EqualFold(x, v) {
			out = append(out, x)
		}
	}
	return out
}

func sameValues(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hasValue(rec lexpress.Record, attr, value string) bool {
	return containsFold(rec.Get(attr), value)
}
