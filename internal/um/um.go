// Package um implements MetaComm's Update Manager (paper §4.4): the central
// component that keeps the LDAP directory and the telecom devices
// consistent.
//
// All updates — whether they originate at an LDAP client (through LTAP) or
// directly at a device (a DDU, forwarded by the device filter through the
// LDAP filter to LTAP) — funnel through LTAP into the UM's global update
// queue. The coordinator (the UM's main thread) drains the queue and, for
// each update: applies it to the backing LDAP server, then tells each
// device filter to translate and apply it. Updates are reapplied to the
// device that originated them (marked conditional by lexpress's Originator
// mechanism), which is how MetaComm extends the directory world's relaxed
// write-write consistency to the meta-directory: every repository converges
// to the queue's serialization order.
//
// Failures at a device abort that device's update, log an error entry into
// the directory under the errors container, and notify the administrator;
// the UM also provides the synchronization facility used for initial
// population and for recovery after disconnection, executed in isolation
// under LTAP quiesce.
package um

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/filter"
	"metacomm/internal/ldap"
	"metacomm/internal/lexpress"
	"metacomm/internal/ltap"
	"metacomm/internal/mcschema"
)

// Config wires an Update Manager.
type Config struct {
	// Suffix is the directory suffix ("o=Lucent").
	Suffix dn.DN
	// PeopleBase is where device-discovered people are created (defaults
	// to Suffix).
	PeopleBase dn.DN
	// Backing talks directly to the backing LDAP server (bypassing LTAP —
	// the UM's own writes must not re-trigger).
	Backing filter.LDAPClient
	// LTAP talks to the LTAP gateway; the DDU path applies device-
	// originated updates through it so they are locked and serialized.
	LTAP filter.LDAPClient
	// Quiesce/Unquiesce control the gateway's quiesce facility during
	// synchronization. Optional; synchronization proceeds unisolated
	// without them.
	Quiesce   func() bool
	Unquiesce func()
	// Library is the compiled lexpress mapping library.
	Library *lexpress.Library
	// ClosureMapping names the intra-directory closure unit (default
	// "LDAPClosure", "" disables closure).
	ClosureMapping string
	// Log receives operational messages (nil = discard).
	Log *log.Logger
}

// Stats are the UM's monotonic operation counters.
type Stats struct {
	UpdatesProcessed uint64
	DeviceApplies    uint64
	Reapplies        uint64
	ClosureChanges   uint64
	ErrorsLogged     uint64
	DDUsForwarded    uint64
}

// UM is the Update Manager.
type UM struct {
	cfg     Config
	closure *lexpress.Mapping // may be nil

	filters []*filter.DeviceFilter
	// ldapLTAP applies device-originated updates through LTAP; ldapDirect
	// applies coordinator/sync updates to the backing server.
	ldapLTAP   *filter.LDAPFilter
	ldapDirect *filter.LDAPFilter

	queue chan *job
	wg    sync.WaitGroup
	stop  chan struct{}

	errSeq  atomic.Uint64
	started atomic.Bool
	stopped atomic.Bool

	updatesProcessed atomic.Uint64
	deviceApplies    atomic.Uint64
	reapplies        atomic.Uint64
	closureChanges   atomic.Uint64
	errorsLogged     atomic.Uint64
	ddusForwarded    atomic.Uint64
}

type job struct {
	ev    ltap.Event
	reply chan ldap.Result
}

// New builds an Update Manager. Call AddDevice for each device filter, then
// Start.
func New(cfg Config) (*UM, error) {
	if cfg.Library == nil {
		return nil, fmt.Errorf("um: config needs a mapping library")
	}
	if cfg.Backing == nil {
		return nil, fmt.Errorf("um: config needs a backing LDAP client")
	}
	if len(cfg.PeopleBase) == 0 {
		cfg.PeopleBase = cfg.Suffix
	}
	u := &UM{
		cfg:   cfg,
		queue: make(chan *job, 256),
		stop:  make(chan struct{}),
	}
	name := cfg.ClosureMapping
	if name == "" {
		name = "LDAPClosure"
	}
	if m, ok := cfg.Library.Get(name); ok {
		u.closure = m
	} else if cfg.ClosureMapping != "" {
		return nil, fmt.Errorf("um: closure mapping %q not in library", cfg.ClosureMapping)
	}
	u.ldapDirect = &filter.LDAPFilter{
		Client: cfg.Backing, Suffix: cfg.Suffix, PeopleBase: cfg.PeopleBase, RDNAttr: mcschema.AttrCN,
	}
	if cfg.LTAP != nil {
		u.ldapLTAP = &filter.LDAPFilter{
			Client: cfg.LTAP, Suffix: cfg.Suffix, PeopleBase: cfg.PeopleBase, RDNAttr: mcschema.AttrCN,
		}
	}
	return u, nil
}

// AddDevice registers a device filter. Must be called before Start.
func (u *UM) AddDevice(f *filter.DeviceFilter) { u.filters = append(u.filters, f) }

// SetLTAP installs the client used to push device-originated updates
// through the LTAP gateway. The gateway needs the UM as its action and the
// UM needs a connection to the gateway, so this is set after the gateway is
// listening and before Start.
func (u *UM) SetLTAP(c filter.LDAPClient) {
	u.cfg.LTAP = c
	u.ldapLTAP = &filter.LDAPFilter{
		Client: c, Suffix: u.cfg.Suffix, PeopleBase: u.cfg.PeopleBase, RDNAttr: mcschema.AttrCN,
	}
}

// LDAPViaLTAP exposes the LTAP-path LDAP filter (tests exercise the §5.1
// rename crash window through it).
func (u *UM) LDAPViaLTAP() *filter.LDAPFilter { return u.ldapLTAP }

// Filters returns the registered device filters.
func (u *UM) Filters() []*filter.DeviceFilter { return u.filters }

// Stats snapshots the counters.
func (u *UM) Stats() Stats {
	return Stats{
		UpdatesProcessed: u.updatesProcessed.Load(),
		DeviceApplies:    u.deviceApplies.Load(),
		Reapplies:        u.reapplies.Load(),
		ClosureChanges:   u.closureChanges.Load(),
		ErrorsLogged:     u.errorsLogged.Load(),
		DDUsForwarded:    u.ddusForwarded.Load(),
	}
}

func (u *UM) logf(format string, args ...any) {
	if u.cfg.Log != nil {
		u.cfg.Log.Printf(format, args...)
	}
}

// Start launches the coordinator and the device notification listeners, and
// ensures the errors container exists.
func (u *UM) Start() error {
	if !u.started.CompareAndSwap(false, true) {
		return fmt.Errorf("um: already started")
	}
	if err := u.ensureErrorContainer(); err != nil {
		return err
	}
	u.wg.Add(1)
	go func() {
		defer u.wg.Done()
		u.coordinator()
	}()
	for _, f := range u.filters {
		if u.ldapLTAP == nil {
			break // no DDU path without an LTAP connection
		}
		u.wg.Add(1)
		go func(f *filter.DeviceFilter) {
			defer u.wg.Done()
			u.deviceListener(f)
		}(f)
	}
	return nil
}

// SetQuiesce wires the gateway quiesce facility used to isolate
// synchronization passes.
func (u *UM) SetQuiesce(quiesce func() bool, unquiesce func()) {
	u.cfg.Quiesce, u.cfg.Unquiesce = quiesce, unquiesce
}

// Stop shuts the UM down. It is idempotent and safe to call on a UM that
// never started. Device converters are not closed (their owner closes
// them).
func (u *UM) Stop() {
	if !u.stopped.CompareAndSwap(false, true) {
		return
	}
	close(u.stop)
	u.wg.Wait()
}

// OnUpdate implements ltap.Action: every trapped LDAP update enters the
// global queue here and is answered when the coordinator finishes its full
// update sequence.
func (u *UM) OnUpdate(ev ltap.Event) ldap.Result {
	j := &job{ev: ev, reply: make(chan ldap.Result, 1)}
	select {
	case u.queue <- j:
	case <-u.stop:
		return ldap.Result{Code: ldap.ResultUnavailable, Message: "um: stopped"}
	}
	select {
	case res := <-j.reply:
		return res
	case <-u.stop:
		return ldap.Result{Code: ldap.ResultUnavailable, Message: "um: stopped"}
	}
}

// coordinator is the UM main thread: it serializes every update in the
// system.
func (u *UM) coordinator() {
	for {
		select {
		case j := <-u.queue:
			j.reply <- u.process(j.ev)
		case <-u.stop:
			return
		}
	}
}

// deviceListener forwards DDU notifications through the LDAP filter to
// LTAP (paper §4.4's update sequence for direct device updates).
func (u *UM) deviceListener(f *filter.DeviceFilter) {
	notifs := f.Converter().Notifications()
	for {
		select {
		case n, ok := <-notifs:
			if !ok {
				return
			}
			u.ddusForwarded.Add(1)
			desc := f.DescriptorFromNotification(n)
			tu, err := f.FromDevice().Translate(desc)
			if err != nil {
				u.logError(f.Name(), "ldap", desc.Op.String(), desc.Key, err)
				continue
			}
			if tu == nil {
				continue
			}
			_, keyDst := f.FromDevice().KeyAttrs()
			err = u.ldapLTAP.Apply(tu, keyDst)
			if err != nil && tu.Op == lexpress.OpAdd && ldap.IsCode(err, ldap.ResultEntryAlreadyExists) {
				// The record reached the directory through another path
				// first (e.g. a synchronization pass racing this DDU);
				// converge rather than complain.
				tu.Op = lexpress.OpModify
				tu.Old = tu.New
				err = u.ldapLTAP.Apply(tu, keyDst)
			}
			if err != nil {
				u.logError(f.Name(), "ldap", tu.Op.String(), tu.Key, err)
			}
		case <-u.stop:
			return
		}
	}
}

// process runs one serialized update: apply to the backing directory, fan
// out to the devices, then write back any device-generated information.
func (u *UM) process(ev ltap.Event) ldap.Result {
	u.updatesProcessed.Add(1)
	name, err := dn.Parse(ev.DN)
	if err != nil {
		return ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: err.Error()}
	}

	images, res := u.computeImages(ev, name)
	if res.Code != ldap.ResultSuccess {
		return res
	}

	// Closure: propagate dependent attributes (telephoneNumber <->
	// definityExtension <-> mailboxNumber ...). Explicitly set attributes
	// are never overwritten.
	var closureChanged []string
	var classAdds []ldap.Change
	if u.closure != nil && images.new != nil {
		changed, err := u.closure.ApplyClosure(images.old, images.new, images.explicit)
		if err != nil {
			if err == lexpress.ErrNoFixpoint {
				return ldap.Result{Code: ldap.ResultConstraintViolation,
					Message: "closure did not reach a fixpoint for this update"}
			}
			return ldap.Result{Code: ldap.ResultOther, Message: err.Error()}
		}
		closureChanged = changed
		u.closureChanges.Add(uint64(len(changed)))
		classAdds = u.ensureAuxClasses(images.new, closureChanged)
	}
	if ev.Kind == ltap.EventAdd && images.new != nil {
		// A fresh entry may also need classes for attributes the client
		// supplied without declaring the class (weakly-typed tools do).
		u.ensureAuxClasses(images.new, images.new.Attrs())
	}

	// Apply to the backing directory first; failure aborts the sequence
	// and surfaces to the client.
	newDN, err := u.applyToDirectory(ev, name, images, closureChanged, classAdds)
	if err != nil {
		return resultOf(err)
	}

	// Fan out to every device (including a conditional reapply to the
	// originator).
	desc := lexpress.Descriptor{
		Source: "ldap",
		Op:     opOfEvent(ev.Kind),
		Key:    newDN.String(),
		Old:    images.old,
		New:    images.new,
		Explicit: append(append([]string(nil), images.explicit...),
			closureChanged...),
	}
	generated := lexpress.NewRecord()
	for _, f := range u.filters {
		tu, err := f.Translate(desc)
		if err != nil {
			u.logError("ldap", f.Name(), desc.Op.String(), desc.Key, err)
			continue
		}
		if tu == nil {
			continue
		}
		u.deviceApplies.Add(1)
		if tu.Conditional {
			u.reapplies.Add(1)
		}
		stored, err := f.Apply(tu)
		if err != nil {
			u.logError("ldap", f.Name(), tu.Op.String(), tu.Key, err)
			continue
		}
		// Device-generated information (paper §5.5): fields the device
		// invented flow back to the directory only, after all devices.
		u.collectGenerated(f, tu, stored, images.new, generated)
	}
	if len(generated) > 0 {
		if err := u.applyGenerated(newDN, generated); err != nil {
			u.logError("um", "ldap", "modify", newDN.String(), err)
		}
	}
	return ldap.Result{Code: ldap.ResultSuccess}
}

// images carries the before/after records of the entry under update.
type images struct {
	old      lexpress.Record
	new      lexpress.Record
	explicit []string
}

// computeImages derives the old/new records and the explicitly set
// attributes from the trapped event.
func (u *UM) computeImages(ev ltap.Event, name dn.DN) (images, ldap.Result) {
	ok := ldap.Result{Code: ldap.ResultSuccess}
	switch ev.Kind {
	case ltap.EventAdd:
		rec := ev.Attrs.Clone()
		for _, ava := range name.RDN() {
			if !hasValue(rec, ava.Attr, ava.Value) {
				rec[strings.ToLower(ava.Attr)] = append(rec.Get(ava.Attr), ava.Value)
			}
		}
		u.stampOrigin(rec, rec.Attrs())
		return images{new: rec, explicit: rec.Attrs()}, ok

	case ltap.EventDelete:
		if ev.Old == nil {
			return images{}, ldap.Result{Code: ldap.ResultNoSuchObject,
				Message: "no entry " + ev.DN}
		}
		return images{old: ev.Old}, ok

	case ltap.EventModify:
		if ev.Old == nil {
			return images{}, ldap.Result{Code: ldap.ResultNoSuchObject,
				Message: "no entry " + ev.DN}
		}
		rec := ev.Old.Clone()
		var explicit []string
		for _, c := range ev.Changes {
			lc, err := c.ToLDAP()
			if err != nil {
				return images{}, ldap.Result{Code: ldap.ResultProtocolError, Message: err.Error()}
			}
			applyChange(rec, lc)
			explicit = append(explicit, c.Attr)
		}
		u.stampOrigin(rec, explicit)
		return images{old: ev.Old, new: rec, explicit: explicit}, ok

	case ltap.EventModifyDN:
		if ev.Old == nil {
			return images{}, ldap.Result{Code: ldap.ResultNoSuchObject,
				Message: "no entry " + ev.DN}
		}
		newRDN, err := dn.Parse(ev.NewRDN)
		if err != nil || newRDN.Depth() != 1 {
			return images{}, ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: "bad newRDN"}
		}
		rec := ev.Old.Clone()
		var explicit []string
		for _, ava := range newRDN.RDN() {
			vals := rec.Get(ava.Attr)
			if ev.DeleteOldRDN {
				vals = removeValue(vals, name.FirstValue(ava.Attr))
			}
			if !containsFold(vals, ava.Value) {
				vals = append(vals, ava.Value)
			}
			rec.Set(ava.Attr, vals...)
			explicit = append(explicit, ava.Attr)
		}
		u.stampOrigin(rec, explicit)
		return images{old: ev.Old, new: rec, explicit: explicit}, ok
	}
	return images{}, ldap.Result{Code: ldap.ResultProtocolError,
		Message: fmt.Sprintf("unknown event kind %q", ev.Kind)}
}

// stampOrigin records where this update came from. Device-originated
// updates arrive with lastUpdater explicitly set by the device->ldap
// mapping; anything else is an LDAP-client update.
func (u *UM) stampOrigin(rec lexpress.Record, explicit []string) {
	for _, a := range explicit {
		if strings.EqualFold(a, mcschema.AttrLastUpdater) {
			return
		}
	}
	rec.Set(mcschema.AttrLastUpdater, "ldap")
}

// ensureAuxClasses extends the record's objectClass list with the auxiliary
// classes the named attributes require; it returns the ModAdd changes for
// modify-path application.
func (u *UM) ensureAuxClasses(rec lexpress.Record, attrs []string) []ldap.Change {
	var out []ldap.Change
	classes := rec.Get("objectClass")
	for _, a := range attrs {
		cls := mcschema.AuxClassFor(a)
		if cls == "" || containsFold(classes, cls) {
			continue
		}
		classes = append(classes, cls)
		out = append(out, ldap.Change{Op: ldap.ModAdd,
			Attribute: ldap.Attribute{Type: "objectClass", Values: []string{cls}}})
	}
	if len(out) > 0 {
		rec.Set("objectClass", classes...)
	}
	return out
}

// applyToDirectory writes the serialized update to the backing server. For
// a ModifyDN it issues the non-atomic ModifyRDN/Modify pair of §5.1. It
// returns the entry's (possibly new) DN.
func (u *UM) applyToDirectory(ev ltap.Event, name dn.DN, img images, closureChanged []string, classAdds []ldap.Change) (dn.DN, error) {
	switch ev.Kind {
	case ltap.EventAdd:
		return name, u.cfg.Backing.Add(ev.DN, recordAttributes(img.new))

	case ltap.EventDelete:
		return name, u.cfg.Backing.Delete(ev.DN)

	case ltap.EventModify:
		changes := make([]ldap.Change, 0, len(ev.Changes)+len(closureChanged)+len(classAdds))
		for _, c := range ev.Changes {
			lc, err := c.ToLDAP()
			if err != nil {
				return name, err
			}
			changes = append(changes, lc)
		}
		changes = append(changes, classAdds...)
		changes = append(changes, closureReplace(img.new, closureChanged)...)
		changes = append(changes, originChange(img.new, ev.Changes)...)
		return name, u.cfg.Backing.Modify(ev.DN, changes)

	case ltap.EventModifyDN:
		if err := u.cfg.Backing.ModifyDN(ev.DN, ev.NewRDN, ev.DeleteOldRDN); err != nil {
			return name, err
		}
		newRDN, _ := dn.Parse(ev.NewRDN)
		newDN := name.WithRDN(newRDN.RDN())
		// Second half of the pair: closure fallout and the origin stamp.
		changes := append(append([]ldap.Change(nil), classAdds...),
			closureReplace(img.new, closureChanged)...)
		changes = append(changes, ldap.Change{Op: ldap.ModReplace, Attribute: ldap.Attribute{
			Type: mcschema.AttrLastUpdater, Values: img.new.Get(mcschema.AttrLastUpdater)}})
		if len(changes) > 0 {
			if err := u.cfg.Backing.Modify(newDN.String(), changes); err != nil {
				return newDN, err
			}
		}
		return newDN, nil
	}
	return name, fmt.Errorf("um: unknown event kind %q", ev.Kind)
}

func closureReplace(rec lexpress.Record, attrs []string) []ldap.Change {
	var out []ldap.Change
	for _, a := range attrs {
		out = append(out, ldap.Change{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: a, Values: rec.Get(a)}})
	}
	return out
}

// originChange emits the lastUpdater stamp unless the client's own changes
// already set it.
func originChange(rec lexpress.Record, changes []ltap.Change) []ldap.Change {
	for _, c := range changes {
		if strings.EqualFold(c.Attr, mcschema.AttrLastUpdater) {
			return nil
		}
	}
	return []ldap.Change{{Op: ldap.ModReplace, Attribute: ldap.Attribute{
		Type: mcschema.AttrLastUpdater, Values: rec.Get(mcschema.AttrLastUpdater)}}}
}

// collectGenerated diffs what the device stored against what we sent; new
// information maps back through the device->ldap mapping into generated.
// The auxiliary classes the generated attributes require come along.
func (u *UM) collectGenerated(f *filter.DeviceFilter, tu *lexpress.TargetUpdate,
	stored lexpress.Record, ldapNew lexpress.Record, generated lexpress.Record) {
	if stored == nil || tu.Op == lexpress.OpDelete {
		return
	}
	diff := lexpress.NewRecord()
	for _, a := range stored.Attrs() {
		if !sameValues(stored.Get(a), tu.New.Get(a)) {
			diff.Set(a, stored.Get(a)...)
		}
	}
	if len(diff) == 0 {
		return
	}
	img, err := f.FromDevice().Image(stored)
	if err != nil {
		return
	}
	any := false
	for _, a := range img.Attrs() {
		if ldapNew != nil && ldapNew.Has(a) {
			continue // only NEW information flows back
		}
		if strings.EqualFold(a, "objectclass") || strings.EqualFold(a, mcschema.AttrLastUpdater) ||
			strings.EqualFold(a, mcschema.AttrCN) || strings.EqualFold(a, mcschema.AttrSN) {
			continue
		}
		generated.Set(a, img.Get(a)...)
		any = true
	}
	if any {
		// Carry the classes that make the new attributes legal.
		classes := generated.Get("objectClass")
		for _, c := range img.Get("objectClass") {
			if !containsFold(classes, c) {
				classes = append(classes, c)
			}
		}
		generated.Set("objectClass", classes...)
	}
}

// applyGenerated writes device-generated information back to the directory
// entry after all devices are updated (§5.5), diffing against the live
// entry so only real changes (and missing auxiliary classes) are written.
func (u *UM) applyGenerated(name dn.DN, generated lexpress.Record) error {
	entries, err := u.cfg.Backing.Search(&ldap.SearchRequest{
		BaseDN: name.String(), Scope: ldap.ScopeBaseObject,
	})
	if err != nil {
		return err
	}
	if len(entries) != 1 {
		return fmt.Errorf("um: entry %s vanished before generated-info write-back", name)
	}
	cur := entries[0]
	var changes []ldap.Change
	for _, a := range generated.Attrs() {
		if strings.EqualFold(a, "objectclass") {
			for _, v := range generated.Get(a) {
				if !containsFold(cur.Attr(a), v) {
					changes = append(changes, ldap.Change{Op: ldap.ModAdd,
						Attribute: ldap.Attribute{Type: "objectClass", Values: []string{v}}})
				}
			}
			continue
		}
		if sameValueSet(cur.Attr(a), generated.Get(a)) {
			continue
		}
		changes = append(changes, ldap.Change{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: a, Values: generated.Get(a)}})
	}
	if len(changes) == 0 {
		return nil
	}
	return u.cfg.Backing.Modify(cur.DN, changes)
}

func sameValueSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for _, v := range a {
		if !containsFold(b, v) {
			return false
		}
	}
	return true
}

// --- small helpers ---

func opOfEvent(k ltap.EventKind) lexpress.OpKind {
	switch k {
	case ltap.EventAdd:
		return lexpress.OpAdd
	case ltap.EventDelete:
		return lexpress.OpDelete
	default:
		return lexpress.OpModify
	}
}

func resultOf(err error) ldap.Result {
	if err == nil {
		return ldap.Result{Code: ldap.ResultSuccess}
	}
	if re, ok := err.(*ldap.ResultError); ok {
		return re.Result
	}
	return ldap.Result{Code: directory.CodeOf(err), Message: err.Error()}
}

func recordAttributes(rec lexpress.Record) []ldap.Attribute {
	var out []ldap.Attribute
	for _, a := range rec.Attrs() {
		out = append(out, ldap.Attribute{Type: a, Values: rec.Get(a)})
	}
	return out
}

// applyChange mirrors LDAP modify semantics onto a lexpress record
// (tolerantly: this rebuilds an image, the authoritative check happens at
// the directory).
func applyChange(rec lexpress.Record, c ldap.Change) {
	switch c.Op {
	case ldap.ModReplace:
		rec.Set(c.Attribute.Type, c.Attribute.Values...)
	case ldap.ModAdd:
		vals := rec.Get(c.Attribute.Type)
		for _, v := range c.Attribute.Values {
			if !containsFold(vals, v) {
				vals = append(vals, v)
			}
		}
		rec.Set(c.Attribute.Type, vals...)
	case ldap.ModDelete:
		if len(c.Attribute.Values) == 0 {
			rec.Set(c.Attribute.Type)
			return
		}
		vals := rec.Get(c.Attribute.Type)
		for _, v := range c.Attribute.Values {
			vals = removeValue(vals, v)
		}
		rec.Set(c.Attribute.Type, vals...)
	}
}

func containsFold(vals []string, v string) bool {
	for _, x := range vals {
		if strings.EqualFold(x, v) {
			return true
		}
	}
	return false
}

func removeValue(vals []string, v string) []string {
	out := vals[:0:0]
	for _, x := range vals {
		if !strings.EqualFold(x, v) {
			out = append(out, x)
		}
	}
	return out
}

func sameValues(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hasValue(rec lexpress.Record, attr, value string) bool {
	return containsFold(rec.Get(attr), value)
}
