package um_test

// Tests for the sharded execution engine: per-entry serialization, cross-
// entry overlap, busy rejection on a full shard queue, and the drain
// barrier. They drive a bare UM (no devices) against an instrumented
// backing client, so the properties are observed at the exact point the
// engine writes — run them under -race.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/lexpress"
	"metacomm/internal/ltap"
	"metacomm/internal/um"
)

// trackingClient is a backing LDAP client that records, per DN and
// globally, how many Modify calls overlap in time.
type trackingClient struct {
	delay time.Duration

	mu        sync.Mutex
	inflight  map[string]int
	perDNMax  int
	active    int
	maxActive int
	modifies  int
}

func newTrackingClient(delay time.Duration) *trackingClient {
	return &trackingClient{delay: delay, inflight: map[string]int{}}
}

func (c *trackingClient) Modify(dn string, _ []ldap.Change) error {
	c.mu.Lock()
	c.modifies++
	c.inflight[dn]++
	if c.inflight[dn] > c.perDNMax {
		c.perDNMax = c.inflight[dn]
	}
	c.active++
	if c.active > c.maxActive {
		c.maxActive = c.active
	}
	c.mu.Unlock()
	time.Sleep(c.delay)
	c.mu.Lock()
	c.inflight[dn]--
	c.active--
	c.mu.Unlock()
	return nil
}

func (c *trackingClient) Search(*ldap.SearchRequest) ([]*ldapclient.Entry, error) { return nil, nil }
func (c *trackingClient) Add(string, []ldap.Attribute) error                      { return nil }
func (c *trackingClient) ModifyDN(string, string, bool) error                     { return nil }
func (c *trackingClient) Delete(string) error                                     { return nil }

// startBareUM builds a UM with no device filters over the given backing.
func startBareUM(t *testing.T, backing *trackingClient, shards, depth int) *um.UM {
	t.Helper()
	u, err := um.New(um.Config{
		Suffix:     dn.MustParse("o=Lucent"),
		Backing:    backing,
		Library:    lexpress.MustStandardLibrary(),
		Shards:     shards,
		QueueDepth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)
	return u
}

func modifyEvent(dnStr string, i int) ltap.Event {
	old := lexpress.NewRecord()
	old.Set("objectClass", "mcPerson")
	old.Set("cn", "Shard Test")
	old.Set("sn", "Test")
	return ltap.Event{
		Kind: ltap.EventModify,
		DN:   dnStr,
		Old:  old,
		Changes: []ltap.Change{{Op: "replace", Attr: "roomNumber",
			Values: []string{fmt.Sprintf("R-%d", i)}}},
	}
}

// TestShardedOrderingAndOverlap checks the engine's two guarantees at once:
// updates to one entry never overlap (total order per entry — every update
// for a DN hashes to the same shard worker), while updates to independent
// entries do overlap (the whole point of sharding).
func TestShardedOrderingAndOverlap(t *testing.T) {
	backing := newTrackingClient(2 * time.Millisecond)
	u := startBareUM(t, backing, 4, 64)

	// 16 distinct entries: the chance that all of them hash to a single
	// one of 4 shards (which would hide overlap) is (1/4)^15.
	const people, perEntry = 16, 8
	var wg sync.WaitGroup
	for p := 0; p < people; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			dnStr := fmt.Sprintf("cn=Shard Person %02d,o=Lucent", p)
			for i := 0; i < perEntry; i++ {
				if res := u.OnUpdate(modifyEvent(dnStr, i)); res.Code != ldap.ResultSuccess {
					t.Errorf("update %s/%d: %+v", dnStr, i, res)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	backing.mu.Lock()
	perDNMax, maxActive, modifies := backing.perDNMax, backing.maxActive, backing.modifies
	backing.mu.Unlock()
	if perDNMax != 1 {
		t.Errorf("per-entry inflight max = %d, serialization broken", perDNMax)
	}
	if maxActive < 2 {
		t.Errorf("global inflight max = %d, independent entries never overlapped", maxActive)
	}
	if modifies != people*perEntry {
		t.Errorf("modifies = %d, want %d", modifies, people*perEntry)
	}

	st := u.Stats()
	if st.UpdatesProcessed != people*perEntry {
		t.Errorf("UpdatesProcessed = %d, want %d", st.UpdatesProcessed, people*perEntry)
	}
	if st.Pending != 0 {
		t.Errorf("Pending = %d after all replies", st.Pending)
	}
	if st.Shards != 4 {
		t.Errorf("Shards = %d", st.Shards)
	}
	if st.DirectoryApplyNs == 0 {
		t.Error("DirectoryApplyNs not accumulated")
	}
}

// blockingClient parks every Modify until released, signalling entry.
type blockingClient struct {
	trackingClient
	entered chan struct{}
	release chan struct{}
}

func (c *blockingClient) Modify(dn string, cs []ldap.Change) error {
	c.entered <- struct{}{}
	<-c.release
	return c.trackingClient.Modify(dn, cs)
}

// TestQueueFullRejectsBusy fills a 1-shard, depth-1 engine: the worker is
// parked inside one update, a second waits in the queue, and a third must
// bounce immediately with ResultBusy instead of blocking the caller.
func TestQueueFullRejectsBusy(t *testing.T) {
	backing := &blockingClient{
		entered: make(chan struct{}, 8),
		release: make(chan struct{}),
	}
	backing.inflight = map[string]int{}
	u, err := um.New(um.Config{
		Suffix:     dn.MustParse("o=Lucent"),
		Backing:    backing,
		Library:    lexpress.MustStandardLibrary(),
		Shards:     1,
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)

	results := make(chan ldap.Result, 2)
	go func() { results <- u.OnUpdate(modifyEvent("cn=A,o=Lucent", 0)) }()
	<-backing.entered // the shard worker is now parked inside update 1
	go func() { results <- u.OnUpdate(modifyEvent("cn=B,o=Lucent", 0)) }()
	// Wait for update 2 to occupy the queue slot.
	for deadline := time.Now().Add(2 * time.Second); ; {
		if u.Stats().Pending == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d, update 2 never queued", u.Stats().Pending)
		}
		time.Sleep(time.Millisecond)
	}

	res := u.OnUpdate(modifyEvent("cn=C,o=Lucent", 0))
	if res.Code != ldap.ResultBusy {
		t.Fatalf("third update result = %+v, want busy", res)
	}
	if got := u.Stats().QueueRejections; got != 1 {
		t.Errorf("QueueRejections = %d, want 1", got)
	}

	close(backing.release)
	for i := 0; i < 2; i++ {
		if res := <-results; res.Code != ldap.ResultSuccess {
			t.Errorf("parked update result = %+v", res)
		}
	}
	if st := u.Stats(); st.Pending != 0 || st.UpdatesProcessed != 2 {
		t.Errorf("final stats = %+v", st)
	}
}

// TestQuiesceDrainsShards checks the drain barrier: Quiesce returns only
// once every admitted update has finished, holds new updates out until
// Resume, and nests correctly (a second Quiesce reports false).
func TestQuiesceDrainsShards(t *testing.T) {
	backing := newTrackingClient(5 * time.Millisecond)
	u := startBareUM(t, backing, 4, 64)

	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			u.OnUpdate(modifyEvent(fmt.Sprintf("cn=Drain %d,o=Lucent", p), 0))
		}(p)
	}
	// Wait until some of them are admitted, then quiesce mid-flight.
	for deadline := time.Now().Add(2 * time.Second); u.Stats().Pending < 2; {
		if time.Now().After(deadline) {
			t.Fatal("updates never became pending")
		}
		time.Sleep(time.Millisecond)
	}
	if !u.Quiesce() {
		t.Fatal("Quiesce reported already-quiesced on first use")
	}
	if st := u.Stats(); st.Pending != 0 {
		t.Fatalf("Pending = %d after Quiesce returned", st.Pending)
	}
	if u.Quiesce() {
		t.Error("second Quiesce did not report already-quiesced")
	}

	// A new update must wait at the admission barrier, not execute.
	processedBefore := u.Stats().UpdatesProcessed
	done := make(chan ldap.Result, 1)
	go func() { done <- u.OnUpdate(modifyEvent("cn=Late,o=Lucent", 0)) }()
	select {
	case res := <-done:
		t.Fatalf("update ran under quiesce: %+v", res)
	case <-time.After(50 * time.Millisecond):
	}
	if got := u.Stats().UpdatesProcessed; got != processedBefore {
		t.Fatalf("UpdatesProcessed advanced under quiesce: %d -> %d", processedBefore, got)
	}

	u.Resume()
	if res := <-done; res.Code != ldap.ResultSuccess {
		t.Fatalf("post-resume update result = %+v", res)
	}
	wg.Wait()
}
