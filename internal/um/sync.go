package um

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/filter"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/lexpress"
	"metacomm/internal/mcschema"
)

// Synchronization engine sizing.
const (
	// syncChangelogBuffer is the delta subscription's buffer: it must absorb
	// every directory update committed during the bulk phase (both external
	// updates and the workers' own writebacks). Overflow is not fatal — the
	// engine falls back to a classic full-quiesce pass — just slow.
	syncChangelogBuffer = 8192
	// syncModifyBatchSize is how many planned directory modifies a worker
	// accumulates before flushing them as one pipelined ModifyBatch.
	syncModifyBatchSize = 16
)

// SyncStats summarize one synchronization pass.
type SyncStats struct {
	DeviceRecords  int // records dumped from the device
	DirectoryAdds  int // people created in the directory
	DirectoryMods  int // directory entries converged to device state
	DeviceAdds     int // records created at the device
	DeviceMods     int // device records converged to directory state
	AlreadyInSync  int // record pairs that matched
	DuplicateKeys  int // directory entries shadowed by a duplicate key value
	Errors         int // reconciliation failures (also logged)
	QuiesceApplied bool

	// SnapshotUsed reports the two-phase snapshot+delta pass: bulk
	// reconciliation ran unquiesced against a COW directory snapshot, and
	// only the delta replay held the quiesce. False means the whole pass ran
	// quiesced (no snapshot source, or changelog overflow fallback).
	SnapshotUsed bool
	// SnapshotSeq is the directory commit sequence the snapshot reflects.
	SnapshotSeq uint64
	// Workers is the reconciliation worker-pool size.
	Workers int
	// BulkNs is the bulk reconciliation wall time; QuiesceNs is how long the
	// pass held the quiesce (the update-rejection window). For a full-
	// quiesce pass the two are equal.
	BulkNs    uint64
	QuiesceNs uint64
	// DeltaRecords counts external directory updates that landed during the
	// bulk phase; DeltaReplayed counts the reconciliation actions the delta
	// replay performed for them.
	DeltaRecords  int
	DeltaReplayed int
}

// RecordsPerSec is the bulk phase's reconciliation throughput.
func (s SyncStats) RecordsPerSec() float64 {
	if s.BulkNs == 0 {
		return 0
	}
	return float64(s.DeviceRecords+s.DeviceAdds) / (float64(s.BulkNs) / 1e9)
}

// SyncPolicy picks which side wins when a record exists on both sides with
// different values. Without per-attribute timestamps the two cannot be
// distinguished automatically — the paper's prototype has the same
// limitation — so the administrator states which side was cut off.
type SyncPolicy int

const (
	// DeviceWins recovers lost direct device updates: the directory is
	// converged to the device's state. Use after the DIRECTORY (or the
	// notification path) was unavailable. This is the default.
	DeviceWins SyncPolicy = iota
	// DirectoryWins recovers lost fanout: the device is converged to the
	// directory's state. Use after the DEVICE was unreachable.
	DirectoryWins
)

// Synchronize reconciles one device with the directory (paper §4.4): it is
// used to populate the directory initially and to recover after the device
// and the directory have been disconnected and updates have been lost.
//
// With a snapshot source configured (Config.Snapshot) the pass runs in two
// phases: the bulk reconciliation runs UNQUIESCED against a consistent COW
// directory snapshot and the device dump, with a pool of Config.SyncWorkers
// workers sharded by entry key; a brief quiesced delta phase then replays
// only the updates that arrived during the bulk pass. The update-rejection
// window is O(updates-during-sync), not O(population). Without a snapshot
// source the whole pass runs under the quiesce, as the paper describes
// (§5.1).
//
// Reconciliation policy: the device is authoritative for the attributes it
// owns (lost DDUs are recovered into the directory); the directory is
// authoritative for device membership (people in the directory whose data
// places them on the device are created there). Deletions that happened
// while the two were disconnected cannot be told apart from missed adds
// without tombstones — the paper's prototype has the same limitation — so a
// record present on either side survives.
func (u *UM) Synchronize(deviceName string) (SyncStats, error) {
	return u.SynchronizeWithPolicy(deviceName, DeviceWins)
}

// SynchronizeWithPolicy reconciles one device with the directory under an
// explicit conflict policy. Records missing on either side are created
// there regardless of policy; only value conflicts follow it.
func (u *UM) SynchronizeWithPolicy(deviceName string, policy SyncPolicy) (SyncStats, error) {
	var dev *syncDevice
	for _, df := range u.filters {
		if df.Name() == deviceName {
			dev = newSyncDevice(&filterRef{df: df}, policy)
			break
		}
	}
	if dev == nil {
		return SyncStats{}, fmt.Errorf("um: no filter for device %q", deviceName)
	}
	u.synchronize([]*syncDevice{dev})
	return dev.stats, dev.err
}

// SynchronizeAll reconciles every registered device in ONE pass: the
// devices share the bulk worker pool (cross-device items for the same entry
// shard together, preserving per-entry order) and one quiesced delta
// barrier, so the system goes quiet once for the whole pass. A device whose
// reconciliation fails does not abort the others; per-device errors are
// aggregated into the returned error while every device's stats remain in
// the map.
func (u *UM) SynchronizeAll() (map[string]SyncStats, error) {
	devs := make([]*syncDevice, 0, len(u.filters))
	for _, df := range u.filters {
		devs = append(devs, newSyncDevice(&filterRef{df: df}, DeviceWins))
	}
	u.synchronize(devs)
	out := make(map[string]SyncStats, len(devs))
	var errs []error
	for _, d := range devs {
		out[d.name] = d.stats
		if d.err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", d.name, d.err))
		}
	}
	return out, errors.Join(errs...)
}

// quiesceForSync enters the quiet state a synchronization pass requires:
// the gateway quiesce stops new updates at LTAP; the engine drain barrier
// additionally flushes every shard queue, so the pass observes a quiet
// system even when no gateway quiesce is configured. It returns whether the
// gateway quiesce was applied and a release function undoing both layers.
func (u *UM) quiesceForSync() (gatewayQuiesced bool, release func(), err error) {
	noop := func() {}
	if u.cfg.Quiesce != nil {
		if !u.cfg.Quiesce() {
			return false, noop, fmt.Errorf("um: gateway already quiesced")
		}
		gatewayQuiesced = true
	}
	engineQuiesced := u.Quiesce()
	return gatewayQuiesced, func() {
		if engineQuiesced {
			u.Resume()
		}
		if gatewayQuiesced {
			u.cfg.Unquiesce()
		}
	}, nil
}

// synchronize runs one pass over the given devices, filling each device's
// stats and err in place.
func (u *UM) synchronize(devs []*syncDevice) {
	if len(devs) == 0 {
		return
	}
	rc := &recordingClient{inner: u.cfg.Backing, writes: map[string]map[string]int{}}
	writer := *u.ldapDirect
	writer.Client = rc
	eng := &syncEngine{u: u, devs: devs, writer: &writer, rc: rc, workers: u.cfg.SyncWorkers}
	if eng.workers < 1 {
		eng.workers = 1
	}
	if u.cfg.Snapshot != nil || u.cfg.SnapshotRange != nil {
		eng.snapshotMode = true
		eng.runSnapshotDelta()
	} else {
		eng.runFullQuiesce()
	}
	for _, d := range devs {
		d.stats.Workers = eng.workers
		u.setLastSync(d.name, d.stats)
		if d.err == nil {
			u.logf("um: synchronized %s: %+v", d.name, d.stats)
		}
	}
}

// syncDevice is one device's slice of a synchronization pass.
type syncDevice struct {
	f      *filterRef
	name   string
	policy SyncPolicy

	keySrc  string   // device-side key attribute
	ldapKey string   // LDAP-side key attribute
	mapped  []string // attributes the device speaks for

	recs       []lexpress.Record            // device dump
	entryByKey map[string]*ldapclient.Entry // directory index by ldapKey
	byKey      map[string]bool              // device records by device key

	mu    sync.Mutex
	stats SyncStats
	err   error
}

func newSyncDevice(f *filterRef, policy SyncPolicy) *syncDevice {
	return &syncDevice{f: f, name: f.df.Name(), policy: policy}
}

// bump applies a stats mutation under the device's lock (workers run
// concurrently).
func (d *syncDevice) bump(fn func(*SyncStats)) {
	d.mu.Lock()
	fn(&d.stats)
	d.mu.Unlock()
}

// syncEngine drives one pass across all participating devices. writer is a
// clone of the UM's direct LDAP filter whose client is the recording
// wrapper, so every directory write the pass issues is attributed for the
// delta drain.
type syncEngine struct {
	u       *UM
	devs    []*syncDevice
	writer  *filter.LDAPFilter
	rc      *recordingClient
	workers int

	snapshotMode bool
	// snapshotByDN indexes the snapshot's person entries by normalized DN —
	// the delta replay's reference for entries deleted during the bulk pass.
	snapshotByDN map[string]*ldapclient.Entry
}

// failAll records err on every device that has not already failed.
func (e *syncEngine) failAll(err error) {
	for _, d := range e.devs {
		if d.err == nil {
			d.err = err
		}
	}
}

// runFullQuiesce is the classic pass: quiesce first, reconcile everything,
// release. Used when no snapshot source is configured and as the changelog-
// overflow fallback.
func (e *syncEngine) runFullQuiesce() {
	start := time.Now()
	quiesced, release, err := e.u.quiesceForSync()
	if err != nil {
		e.failAll(err)
		return
	}
	defer release()
	e.runBulk()
	elapsed := uint64(time.Since(start))
	for _, d := range e.devs {
		if d.err != nil {
			continue
		}
		d.stats.QuiesceApplied = quiesced
		d.stats.BulkNs = elapsed
		d.stats.QuiesceNs = elapsed
	}
}

// runSnapshotDelta is the two-phase pass: bulk reconciliation against a COW
// snapshot with no quiesce at all, then a short quiesced window replaying
// only the updates that landed meanwhile.
func (e *syncEngine) runSnapshotDelta() {
	bulkStart := time.Now()
	var (
		persons []*ldapclient.Entry
		seq     uint64
		changes <-chan directory.UpdateRecord
		cancel  func()
	)
	if e.u.cfg.SnapshotRange != nil {
		// Streaming cut: person entries are filtered and converted as the
		// directory segments stream by, so the full directory is never
		// materialized — non-person entries cost one visit, not a slot in a
		// population-sized snapshot slice.
		seq, changes, cancel = e.u.cfg.SnapshotRange(syncChangelogBuffer, func(en directory.Entry) bool {
			if ce := personEntry(en); ce != nil {
				persons = append(persons, ce)
			}
			return true
		})
	} else {
		var snapshot []directory.Entry
		snapshot, seq, changes, cancel = e.u.cfg.Snapshot(syncChangelogBuffer)
		persons = personEntries(snapshot)
	}
	defer cancel()
	e.runBulkEntries(persons)
	bulkNs := uint64(time.Since(bulkStart))

	quiesced, release, err := e.u.quiesceForSync()
	if err != nil {
		e.failAll(err)
		return
	}
	defer release()
	qStart := time.Now()

	// Every update committed before the quiesce completed has already been
	// emitted into the subscription buffer (records are emitted
	// synchronously at commit), so a non-blocking drain sees the complete
	// delta.
	dirty, external, overflowed := e.drain(changes)
	if overflowed {
		// The bulk phase outlasted the buffer. Finish as a classic full
		// pass under the quiesce we already hold: re-dump and reconcile
		// against live state.
		e.u.logf("um: sync changelog overflowed (buffer %d); falling back to full reconciliation under quiesce", syncChangelogBuffer)
		for _, d := range e.devs {
			d.stats = SyncStats{}
			d.err = nil
		}
		e.runBulk()
		qNs := uint64(time.Since(qStart))
		for _, d := range e.devs {
			if d.err != nil {
				continue
			}
			d.stats.QuiesceApplied = quiesced
			d.stats.BulkNs = bulkNs + qNs
			d.stats.QuiesceNs = qNs
		}
		return
	}

	replayed := e.replay(dirty)
	qNs := uint64(time.Since(qStart))
	for _, d := range e.devs {
		if d.err != nil {
			continue
		}
		d.stats.QuiesceApplied = quiesced
		d.stats.SnapshotUsed = true
		d.stats.SnapshotSeq = seq
		d.stats.BulkNs = bulkNs
		d.stats.QuiesceNs = qNs
		d.stats.DeltaRecords = external
		_ = replayed
	}
}

// runBulk dumps the live directory and reconciles against it (the classic
// quiesced pass and the changelog-overflow fallback).
func (e *syncEngine) runBulk() {
	live, err := e.loadDirectory()
	if err != nil {
		e.failAll(err)
		return
	}
	e.runBulkEntries(live)
}

// runBulkEntries dumps and indexes every device and reconciles all items
// (the directory's person entries) through the worker pool.
func (e *syncEngine) runBulkEntries(allEntries []*ldapclient.Entry) {
	e.indexSnapshot(allEntries)

	var wg sync.WaitGroup
	for _, dev := range e.devs {
		wg.Add(1)
		go func(d *syncDevice) {
			defer wg.Done()
			e.prepareDevice(d, allEntries)
		}(dev)
	}
	wg.Wait()

	e.runPool(e.buildItems(allEntries))
}

// loadDirectory scans the live directory once for all person entries —
// locating each device record with its own subtree search would make
// synchronization quadratic in the population.
func (e *syncEngine) loadDirectory() ([]*ldapclient.Entry, error) {
	entries, err := e.u.cfg.Backing.Search(&ldap.SearchRequest{
		BaseDN: e.u.cfg.Suffix.String(),
		Scope:  ldap.ScopeWholeSubtree,
		Filter: ldap.Eq("objectClass", mcschema.ClassPerson),
	})
	if err != nil {
		return nil, fmt.Errorf("um: dumping directory: %w", err)
	}
	return entries, nil
}

// personEntries converts the snapshot's person entries to the client form
// the reconciliation helpers speak. The snapshot shares the tree's
// immutable attribute values; nothing here may mutate them.
func personEntries(snapshot []directory.Entry) []*ldapclient.Entry {
	var out []*ldapclient.Entry
	for _, se := range snapshot {
		if ce := personEntry(se); ce != nil {
			out = append(out, ce)
		}
	}
	return out
}

// personEntry converts one snapshot entry, or returns nil for non-person
// entries (the streaming path's per-entry filter).
func personEntry(se directory.Entry) *ldapclient.Entry {
	if se.Attrs == nil {
		return nil
	}
	isPerson := false
	for _, v := range se.Attrs.Get("objectClass") {
		if strings.EqualFold(v, mcschema.ClassPerson) {
			isPerson = true
			break
		}
	}
	if !isPerson {
		return nil
	}
	ce := &ldapclient.Entry{DN: se.DN.String()}
	se.Attrs.EachSorted(func(attr string, values []string) {
		ce.Attributes = append(ce.Attributes, ldap.Attribute{Type: attr, Values: values})
	})
	return ce
}

// indexSnapshot builds the by-DN index the delta replay consults.
func (e *syncEngine) indexSnapshot(entries []*ldapclient.Entry) {
	e.snapshotByDN = make(map[string]*ldapclient.Entry, len(entries))
	for _, en := range entries {
		e.snapshotByDN[normalizeDNString(en.DN)] = en
	}
}

// prepareDevice dumps one device and builds its key indexes. Duplicate
// directory key values — two entries claiming the same device key — shadow
// each other in the index; they are counted, logged, and the last one wins
// (the historical behavior).
func (e *syncEngine) prepareDevice(dev *syncDevice, allEntries []*ldapclient.Entry) {
	recs, err := dev.f.df.Converter().Dump()
	if err != nil {
		dev.err = fmt.Errorf("um: dumping %s: %w", dev.name, err)
		return
	}
	dev.recs = recs
	dev.stats.DeviceRecords = len(recs)
	dev.keySrc = dev.f.keySrc()
	_, dev.ldapKey = dev.f.df.FromDevice().KeyAttrs()
	dev.mapped = dev.f.df.FromDevice().MappedAttrs()

	dev.entryByKey = make(map[string]*ldapclient.Entry, len(allEntries))
	for _, en := range allEntries {
		k := en.First(dev.ldapKey)
		if k == "" {
			continue
		}
		if prev, dup := dev.entryByKey[k]; dup {
			dev.stats.DuplicateKeys++
			dev.stats.Errors++
			e.u.logError(dev.name, "ldap", "sync-index", k,
				fmt.Errorf("duplicate %s=%q: %s shadows %s", dev.ldapKey, k, en.DN, prev.DN))
		}
		dev.entryByKey[k] = en
	}
	dev.byKey = make(map[string]bool, len(recs))
	for _, rec := range recs {
		dev.byKey[rec.First(dev.keySrc)] = true
	}
}

// syncItem is one unit of reconciliation work. Pass 1 items (rec != nil)
// reconcile a device record into the directory; pass 2 items (dirEntry !=
// nil) push directory-only people down to the device.
type syncItem struct {
	dev      *syncDevice
	rec      lexpress.Record
	img      lexpress.Record
	key      string
	entry    *ldapclient.Entry
	dirEntry *ldapclient.Entry
	shard    string
}

// buildItems translates dumps and snapshot into work items. Image
// computation errors are charged here so workers only see routable items.
// The shard string keys worker routing: all items touching one directory
// entry carry the same shard (per-entry operation order is preserved, the
// UM shard discipline), including cross-device items in SynchronizeAll.
func (e *syncEngine) buildItems(allEntries []*ldapclient.Entry) []syncItem {
	var items []syncItem
	for _, dev := range e.devs {
		if dev.err != nil {
			continue
		}
		// Pass 1: device -> directory. Every device record must exist in
		// the directory with converged attributes.
		for _, rec := range dev.recs {
			img, err := dev.f.df.FromDevice().Image(rec)
			if err != nil {
				dev.stats.Errors++
				e.u.logError(dev.name, "ldap", "sync", rec.First(dev.keySrc), err)
				continue
			}
			key := img.First(dev.ldapKey)
			if key == "" {
				dev.stats.Errors++
				e.u.logError(dev.name, "ldap", "sync", rec.String(), fmt.Errorf("record has no %s", dev.ldapKey))
				continue
			}
			it := syncItem{dev: dev, rec: rec, img: img, key: key, entry: dev.entryByKey[key]}
			if it.entry != nil {
				it.shard = normalizeDNString(it.entry.DN)
			} else {
				it.shard = "cn:" + strings.ToLower(img.First(mcschema.AttrCN))
			}
			items = append(items, it)
		}
		// Pass 2: directory -> device. People the directory places on this
		// device but the device does not know get created there.
		for _, en := range allEntries {
			items = append(items, syncItem{dev: dev, dirEntry: en, shard: normalizeDNString(en.DN)})
		}
	}
	return items
}

// runPool reconciles the items with the worker pool: items are routed to
// workers by FNV-32a of their shard string (the UM shard-hash discipline),
// so items for one entry run on one worker in submission order while
// distinct entries proceed in parallel.
func (e *syncEngine) runPool(items []syncItem) {
	n := e.workers
	chans := make([]chan syncItem, n)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan syncItem, 2*syncModifyBatchSize)
		wg.Add(1)
		go func(ch chan syncItem) {
			defer wg.Done()
			w := &syncWorker{eng: e}
			for it := range ch {
				w.process(it)
			}
			w.flush()
		}(chans[i])
	}
	for _, it := range items {
		h := fnv.New32a()
		h.Write([]byte(it.shard))
		chans[h.Sum32()%uint32(n)] <- it
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
}

// syncWorker reconciles items on one pool goroutine, accumulating planned
// directory modifies into a pipelined batch.
type syncWorker struct {
	eng *syncEngine
	ops []ldapclient.ModifyOp
	ctx []batchCtx
}

type batchCtx struct {
	dev *syncDevice
	key string
}

func (w *syncWorker) process(it syncItem) {
	if it.dirEntry != nil {
		w.processPass2(it)
		return
	}
	if it.entry == nil {
		w.processAdd(it)
		return
	}
	w.processMatched(it)
}

// processAdd handles a device record with no directory entry. The bulk
// phase runs unquiesced, so a concurrent DDU may create the same person
// between the snapshot and our add: entryAlreadyExists is resolved by
// locating the live entry by key and converging against it, never by
// blindly qualifying the RDN (which would duplicate the person).
func (w *syncWorker) processAdd(it syncItem) {
	dev := it.dev
	err := w.eng.writer.AddEntryOnce(it.img)
	if ldap.IsCode(err, ldap.ResultEntryAlreadyExists) {
		w.flush() // live reads next; drain queued writes first
		live, lerr := w.eng.writer.Locate(dev.ldapKey, it.key)
		if lerr != nil {
			dev.bump(func(s *SyncStats) { s.Errors++ })
			w.eng.u.logError(dev.name, "ldap", "sync-add", it.key, lerr)
			return
		}
		if live != nil {
			// The person exists under a different key index view (created
			// since the snapshot, or shadowed): converge the pair instead.
			w.reconcilePair(it, live)
			return
		}
		// The natural name is taken by a DIFFERENT person; qualify the RDN
		// with the key to keep it unique.
		err = w.eng.writer.AddEntryQualified(it.img, it.key)
	}
	if err != nil {
		dev.bump(func(s *SyncStats) { s.Errors++ })
		w.eng.u.logError(dev.name, "ldap", "sync-add", it.key, err)
		return
	}
	dev.bump(func(s *SyncStats) { s.DirectoryAdds++ })
}

// processMatched reconciles a device record against its directory entry.
// Comparison and convergence cover only the attributes the device speaks
// for (the mapping body's targets), never derive-rule helpers like sn, and
// never the origin stamp — synchronization is reconciliation, not an
// update.
func (w *syncWorker) processMatched(it syncItem) {
	w.reconcilePair(it, it.entry)
}

func (w *syncWorker) reconcilePair(it syncItem, entry *ldapclient.Entry) {
	dev := it.dev
	cmp := restrictRecord(it.img, dev.mapped)
	cur := entryMappedRecord(entry, dev.mapped)
	if mappedInSync(cmp, cur) {
		dev.bump(func(s *SyncStats) { s.AlreadyInSync++ })
		return
	}
	if dev.policy == DeviceWins {
		plan, err := w.eng.writer.PlanConverge(entry, cur, cmp)
		if err != nil {
			dev.bump(func(s *SyncStats) { s.Errors++ })
			w.eng.u.logError(dev.name, "ldap", "sync-mod", it.key, err)
			return
		}
		if plan.Empty() {
			dev.bump(func(s *SyncStats) { s.AlreadyInSync++ })
			return
		}
		if plan.RenameFrom != "" {
			// Renames are the non-atomic ModifyRDN+Modify pair (§5.1);
			// they run immediately, outside the batch.
			w.flush()
			if err := w.eng.writer.ApplyConverge(plan); err != nil {
				w.convergeError(dev, it.key, err)
				return
			}
			dev.bump(func(s *SyncStats) { s.DirectoryMods++ })
			return
		}
		w.queue(ldapclient.ModifyOp{DN: plan.TargetDN, Changes: plan.Changes}, dev, it.key)
		return
	}
	// DirectoryWins: push the directory's state down to the device.
	rec := entryRecord(entry)
	tu, err := dev.f.df.Translate(lexpress.Descriptor{
		Source: "ldap", Op: lexpress.OpModify, Key: entry.DN, Old: rec, New: rec,
	})
	if err != nil || tu == nil {
		if err == nil {
			err = fmt.Errorf("entry %s not routable to %s", entry.DN, dev.name)
		}
		dev.bump(func(s *SyncStats) { s.Errors++ })
		w.eng.u.logError("ldap", dev.name, "sync-mod", it.key, err)
		return
	}
	if _, err := dev.f.df.Apply(tu); err != nil {
		dev.bump(func(s *SyncStats) { s.Errors++ })
		w.eng.u.logError("ldap", dev.name, "sync-mod", tu.Key, err)
		return
	}
	dev.bump(func(s *SyncStats) { s.DeviceMods++ })
}

// convergeError charges a directory-converge failure. In snapshot mode a
// noSuchObject means the entry was deleted during the bulk pass — the
// delete's changelog record makes the DN dirty and the delta replay
// resolves it, so it is not an error.
func (w *syncWorker) convergeError(dev *syncDevice, key string, err error) {
	if w.eng.snapshotMode && ldap.IsCode(err, ldap.ResultNoSuchObject) {
		return
	}
	dev.bump(func(s *SyncStats) { s.Errors++ })
	w.eng.u.logError(dev.name, "ldap", "sync-mod", key, err)
}

// processPass2 creates a device record for a person the directory places on
// the device.
func (w *syncWorker) processPass2(it syncItem) {
	dev := it.dev
	rec := entryRecord(it.dirEntry)
	tu, err := dev.f.df.Translate(lexpress.Descriptor{
		Source: "ldap", Op: lexpress.OpAdd, Key: it.dirEntry.DN, New: rec,
	})
	if err != nil || tu == nil {
		return // not under this device's management
	}
	if dev.byKey[tu.Key] {
		return
	}
	if w.eng.snapshotMode && !w.eng.liveExists(it.dirEntry.DN) {
		// Deleted since the snapshot; creating the device record would
		// resurrect it. (The delete's delta record covers any remaining
		// race.)
		return
	}
	if _, err := dev.f.df.Apply(tu); err != nil {
		dev.bump(func(s *SyncStats) { s.Errors++ })
		w.eng.u.logError("ldap", dev.name, "sync-add", tu.Key, err)
		return
	}
	dev.bump(func(s *SyncStats) { s.DeviceAdds++ })
}

// queue adds a planned modify to the pipelined batch.
func (w *syncWorker) queue(op ldapclient.ModifyOp, dev *syncDevice, key string) {
	w.ops = append(w.ops, op)
	w.ctx = append(w.ctx, batchCtx{dev: dev, key: key})
	if len(w.ops) >= syncModifyBatchSize {
		w.flush()
	}
}

// flush issues the queued modifies as one pipelined batch and maps the
// per-op results back to their devices.
func (w *syncWorker) flush() {
	if len(w.ops) == 0 {
		return
	}
	errs := w.eng.rc.ModifyBatch(w.ops)
	for i, err := range errs {
		c := w.ctx[i]
		if err == nil {
			c.dev.bump(func(s *SyncStats) { s.DirectoryMods++ })
			continue
		}
		w.convergeError(c.dev, c.key, err)
	}
	w.ops = w.ops[:0]
	w.ctx = w.ctx[:0]
}

// liveExists base-searches the live directory for the DN.
func (e *syncEngine) liveExists(dnStr string) bool {
	entries, err := e.rc.Search(&ldap.SearchRequest{BaseDN: dnStr, Scope: ldap.ScopeBaseObject})
	return err == nil && len(entries) == 1
}

// liveEntry fetches the live entry at the DN, or nil when absent.
func (e *syncEngine) liveEntry(dnStr string) (*ldapclient.Entry, error) {
	entries, err := e.rc.Search(&ldap.SearchRequest{BaseDN: dnStr, Scope: ldap.ScopeBaseObject})
	if ldap.IsCode(err, ldap.ResultNoSuchObject) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(entries) != 1 {
		return nil, nil
	}
	return entries[0], nil
}

// deltaRecord is one changelog record observed during the bulk phase,
// attributed to the engine's own writebacks or to an external update.
type deltaRecord struct {
	rec directory.UpdateRecord
	own bool
}

// dirtyDN collects the delta records touching one entry.
type dirtyDN struct {
	dnStr string
	recs  []deltaRecord
}

// drain empties the changelog subscription non-blocking (the quiesce is
// held and emission is synchronous at commit, so the buffer already holds
// the complete delta) and groups the records per normalized DN. Records
// under the errors container are bookkeeping, not population state, and are
// skipped. It returns overflowed=true when the subscription was closed for
// falling behind.
func (e *syncEngine) drain(changes <-chan directory.UpdateRecord) (map[string]*dirtyDN, int, bool) {
	dirty := map[string]*dirtyDN{}
	external := 0
	note := func(key, dnStr string, rec directory.UpdateRecord, own bool) {
		d := dirty[key]
		if d == nil {
			d = &dirtyDN{dnStr: dnStr}
			dirty[key] = d
		}
		d.recs = append(d.recs, deltaRecord{rec: rec, own: own})
	}
	for {
		select {
		case rec, ok := <-changes:
			if !ok {
				return nil, external, true
			}
			parsed, perr := dn.Parse(rec.DN)
			if perr == nil && parsed.IsDescendantOf(e.u.errorBase()) {
				continue
			}
			key := normalizeDNString(rec.DN)
			own := e.rc.consume(key, recordFingerprint(rec))
			if !own {
				external++
			}
			note(key, rec.DN, rec, own)
			if rec.Op == "modifydn" && perr == nil {
				// The entry now also lives at the new name; reconcile both.
				if newRDN, rerr := dn.Parse(rec.NewRDN); rerr == nil && newRDN.Depth() == 1 {
					newDN := parsed.WithRDN(newRDN.RDN())
					note(newDN.Normalize(), newDN.String(), rec, own)
				}
			}
		default:
			return dirty, external, false
		}
	}
}

// replay reconciles every entry an external update touched during the bulk
// pass, under the held quiesce. The engine's own writebacks were attributed
// during the drain; a DN whose records are all our own needs nothing.
func (e *syncEngine) replay(dirty map[string]*dirtyDN) int {
	replayed := 0
	for key, d := range dirty {
		hasExternal := false
		for _, r := range d.recs {
			if !r.own {
				hasExternal = true
				break
			}
		}
		if !hasExternal {
			continue
		}
		replayed += e.replayDN(key, d)
	}
	return replayed
}

// replayDN re-reconciles one dirty entry against its live state.
//
// The consistency argument: an external update that landed during the bulk
// pass went through the normal trap path — it committed to the directory
// and fanned out to the devices before the quiesce completed. A bulk worker
// computing from the snapshot may then have overwritten it (a DeviceWins
// converge re-asserting pre-update device state). Whenever one of our own
// writes follows an external record for the entry, the external modifies
// are re-applied — external updates are newer than the snapshot the pass is
// defined against, so they win — and the devices are converged to the final
// directory state. Entries deleted during the pass are un-resurrected with
// conditional deletes computed from the snapshot image.
func (e *syncEngine) replayDN(key string, d *dirtyDN) int {
	replayed := 0
	live, err := e.liveEntry(d.dnStr)
	if err != nil {
		e.replayError(key, err)
		return 0
	}
	if live == nil {
		return e.replayDeleted(key)
	}
	if clobbered(d.recs) {
		e.reapplyExternal(d)
		if refetched, rerr := e.liveEntry(d.dnStr); rerr == nil && refetched != nil {
			live = refetched
		}
	}
	for _, dev := range e.devs {
		if dev.err != nil {
			continue
		}
		if e.reconcileLive(dev, live) {
			replayed++
		}
	}
	return replayed
}

// clobbered reports whether one of the engine's own writes follows an
// external record — the external update may have been overwritten.
func clobbered(recs []deltaRecord) bool {
	sawExternal := false
	for _, r := range recs {
		if !r.own {
			sawExternal = true
		} else if sawExternal {
			return true
		}
	}
	return false
}

// reapplyExternal re-applies the external records' content in commit order,
// restoring any external update a bulk writeback overwrote. Add records
// re-assert their attributes; structural ops (delete, modifydn) are left to
// the live-state reconciliation.
func (e *syncEngine) reapplyExternal(d *dirtyDN) {
	for _, r := range d.recs {
		if r.own {
			continue
		}
		var changes []ldap.Change
		switch r.rec.Op {
		case "modify":
			for _, c := range r.rec.Changes {
				changes = append(changes, ldap.Change{Op: modOpFromString(c.Op),
					Attribute: ldap.Attribute{Type: c.Attr, Values: c.Values}})
			}
		case "add", "entry":
			for attr, vals := range r.rec.Attrs {
				changes = append(changes, ldap.Change{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: attr, Values: vals}})
			}
		default:
			continue
		}
		if len(changes) == 0 {
			continue
		}
		if err := e.rc.Modify(d.dnStr, changes); err != nil &&
			!ldap.IsCode(err, ldap.ResultNoSuchObject) &&
			!ldap.IsCode(err, ldap.ResultAttributeOrValueExists) &&
			!ldap.IsCode(err, ldap.ResultNoSuchAttribute) {
			e.replayError(d.dnStr, err)
		}
	}
}

// replayDeleted handles a dirty DN with no live entry: it was deleted (or
// renamed away) during the bulk pass. Any device record the bulk pass
// created or converged from the snapshot image is a resurrection; undo it
// with a conditional delete. When the entry merely moved (same key at a new
// name), the live entry is reconciled instead.
func (e *syncEngine) replayDeleted(key string) int {
	snap := e.snapshotByDN[key]
	if snap == nil {
		return 0 // created and removed within the pass; devices followed the fan-out
	}
	replayed := 0
	for _, dev := range e.devs {
		if dev.err != nil {
			continue
		}
		rec := entryRecord(snap)
		tu, err := dev.f.df.Translate(lexpress.Descriptor{
			Source: "ldap", Op: lexpress.OpDelete, Key: snap.DN, Old: rec,
		})
		if err != nil || tu == nil {
			continue // the snapshot image never placed this person on the device
		}
		// A rename keeps the key: if some live entry still claims it, the
		// person moved rather than left — converge the device to that entry.
		devKey := tu.OldKey
		if devKey == "" {
			devKey = tu.Key
		}
		if liveByKey, lerr := e.writer.Locate(dev.ldapKey, snapKeyValue(snap, dev.ldapKey)); lerr == nil && liveByKey != nil {
			if e.reconcileLive(dev, liveByKey) {
				replayed++
			}
			continue
		}
		tu.Conditional = true // already-gone device records are fine
		if _, err := dev.f.df.Apply(tu); err != nil {
			dev.bump(func(s *SyncStats) { s.Errors++ })
			e.u.logError("ldap", dev.name, "sync-delta", devKey, err)
			continue
		}
		dev.bump(func(s *SyncStats) { s.DeltaReplayed++ })
		replayed++
	}
	return replayed
}

// snapKeyValue extracts the device-key value from a snapshot entry.
func snapKeyValue(e *ldapclient.Entry, ldapKey string) string { return e.First(ldapKey) }

// reconcileLive converges one device to the live directory state of an
// entry the delta touched. The directory is authoritative here: the
// external update committed there and already fanned out, so this is a
// convergence re-assertion ordered after every bulk writeback.
func (e *syncEngine) reconcileLive(dev *syncDevice, live *ldapclient.Entry) bool {
	rec := entryRecord(live)
	tu, err := dev.f.df.Translate(lexpress.Descriptor{
		Source: "ldap", Op: lexpress.OpModify, Key: live.DN, Old: rec, New: rec,
	})
	if err != nil || tu == nil {
		return false // not under this device's management
	}
	tu.Conditional = true // fall back to add when the device lacks the record
	if _, err := dev.f.df.Apply(tu); err != nil {
		dev.bump(func(s *SyncStats) { s.Errors++ })
		e.u.logError("ldap", dev.name, "sync-delta", tu.Key, err)
		return false
	}
	dev.bump(func(s *SyncStats) { s.DeltaReplayed++ })
	return true
}

// replayError charges a delta-phase system error to the pass (first
// device): it is not attributable to one device.
func (e *syncEngine) replayError(key string, err error) {
	if len(e.devs) == 0 {
		return
	}
	d := e.devs[0]
	d.bump(func(s *SyncStats) { s.Errors++ })
	e.u.logError("ldap", "ldap", "sync-delta", key, err)
}

func modOpFromString(s string) ldap.ModOp {
	switch s {
	case "add":
		return ldap.ModAdd
	case "delete":
		return ldap.ModDelete
	}
	return ldap.ModReplace
}

// normalizeDNString normalizes a DN string for map keys; unparsable strings
// fall back to case folding.
func normalizeDNString(s string) string {
	d, err := dn.Parse(s)
	if err != nil {
		return strings.ToLower(s)
	}
	return d.Normalize()
}

// filterRef wraps a device filter with sync-pass helpers.
type filterRef struct{ df *filter.DeviceFilter }

// keySrc returns the device-side key attribute.
func (f *filterRef) keySrc() string {
	src, _ := f.df.FromDevice().KeyAttrs()
	return src
}

// restrictRecord keeps only the listed attributes (minus the origin stamp).
func restrictRecord(rec lexpress.Record, attrs []string) lexpress.Record {
	out := lexpress.NewRecord()
	for _, a := range attrs {
		if strings.EqualFold(a, mcschema.AttrLastUpdater) {
			continue
		}
		if vs := rec.Get(a); len(vs) > 0 {
			out.Set(a, vs...)
		}
	}
	return out
}

// entryMappedRecord extracts the mapped attributes currently on a directory
// entry (minus the origin stamp).
func entryMappedRecord(e *ldapclient.Entry, mapped []string) lexpress.Record {
	out := lexpress.NewRecord()
	for _, a := range mapped {
		if strings.EqualFold(a, mcschema.AttrLastUpdater) {
			continue
		}
		if vs := e.Attr(a); len(vs) > 0 {
			out.Set(a, vs...)
		}
	}
	return out
}

// mappedInSync compares the device's image against the entry's state over
// the mapped attributes: object classes need only be present (they
// accumulate across devices); everything else must match exactly — in both
// directions, so an attribute cleared at the device counts as drift.
func mappedInSync(img, cur lexpress.Record) bool {
	keys := map[string]bool{}
	for _, a := range img.Attrs() {
		keys[a] = true
	}
	for _, a := range cur.Attrs() {
		keys[a] = true
	}
	for a := range keys {
		if strings.EqualFold(a, "objectclass") {
			for _, v := range img.Get(a) {
				if !containsFold(cur.Get(a), v) {
					return false
				}
			}
			continue
		}
		if !sameValueSet(img.Get(a), cur.Get(a)) {
			return false
		}
	}
	return true
}

// entryRecord converts a search result entry to a lexpress record.
func entryRecord(e *ldapclient.Entry) lexpress.Record {
	rec := lexpress.NewRecord()
	for _, a := range e.Attributes {
		rec.Set(a.Type, a.Values...)
	}
	return rec
}
