package um

import (
	"fmt"
	"strings"

	"metacomm/internal/filter"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/lexpress"
	"metacomm/internal/mcschema"
)

// SyncStats summarize one synchronization pass.
type SyncStats struct {
	DeviceRecords  int // records dumped from the device
	DirectoryAdds  int // people created in the directory
	DirectoryMods  int // directory entries converged to device state
	DeviceAdds     int // records created at the device
	DeviceMods     int // device records converged to directory state
	AlreadyInSync  int // record pairs that matched
	Errors         int // reconciliation failures (also logged)
	QuiesceApplied bool
}

// SyncPolicy picks which side wins when a record exists on both sides with
// different values. Without per-attribute timestamps the two cannot be
// distinguished automatically — the paper's prototype has the same
// limitation — so the administrator states which side was cut off.
type SyncPolicy int

const (
	// DeviceWins recovers lost direct device updates: the directory is
	// converged to the device's state. Use after the DIRECTORY (or the
	// notification path) was unavailable. This is the default.
	DeviceWins SyncPolicy = iota
	// DirectoryWins recovers lost fanout: the device is converged to the
	// directory's state. Use after the DEVICE was unreachable.
	DirectoryWins
)

// Synchronize reconciles one device with the directory (paper §4.4): it is
// used to populate the directory initially and to recover after the device
// and the directory have been disconnected and updates have been lost.
//
// The pass runs in isolation: when the gateway's quiesce facility is
// configured, all LDAP updates are disallowed for its duration (§5.1).
//
// Reconciliation policy: the device is authoritative for the attributes it
// owns (lost DDUs are recovered into the directory); the directory is
// authoritative for device membership (people in the directory whose data
// places them on the device are created there). Deletions that happened
// while the two were disconnected cannot be told apart from missed adds
// without tombstones — the paper's prototype has the same limitation — so a
// record present on either side survives.
func (u *UM) Synchronize(deviceName string) (SyncStats, error) {
	return u.SynchronizeWithPolicy(deviceName, DeviceWins)
}

// SynchronizeWithPolicy reconciles one device with the directory under an
// explicit conflict policy. Records missing on either side are created
// there regardless of policy; only value conflicts follow it.
func (u *UM) SynchronizeWithPolicy(deviceName string, policy SyncPolicy) (SyncStats, error) {
	var stats SyncStats
	var f *filterRef
	for _, df := range u.filters {
		if df.Name() == deviceName {
			f = &filterRef{df: df}
			break
		}
	}
	if f == nil {
		return stats, fmt.Errorf("um: no filter for device %q", deviceName)
	}

	quiesced, release, err := u.quiesceForSync()
	if err != nil {
		return stats, err
	}
	defer release()

	return u.synchronizeQuiesced(f, policy, quiesced)
}

// quiesceForSync enters the quiet state a synchronization pass requires:
// the gateway quiesce stops new updates at LTAP; the engine drain barrier
// additionally flushes every shard queue, so the pass observes a quiet
// system even when no gateway quiesce is configured. It returns whether the
// gateway quiesce was applied and a release function undoing both layers.
func (u *UM) quiesceForSync() (gatewayQuiesced bool, release func(), err error) {
	noop := func() {}
	if u.cfg.Quiesce != nil {
		if !u.cfg.Quiesce() {
			return false, noop, fmt.Errorf("um: gateway already quiesced")
		}
		gatewayQuiesced = true
	}
	engineQuiesced := u.Quiesce()
	return gatewayQuiesced, func() {
		if engineQuiesced {
			u.Resume()
		}
		if gatewayQuiesced {
			u.cfg.Unquiesce()
		}
	}, nil
}

// synchronizeQuiesced runs one device's reconciliation pass. The caller
// must hold the quiesced state (quiesceForSync) and passes whether the
// gateway layer of it was applied, so the logged stats carry the flag.
func (u *UM) synchronizeQuiesced(f *filterRef, policy SyncPolicy, quiesced bool) (SyncStats, error) {
	var stats SyncStats
	stats.QuiesceApplied = quiesced
	deviceName := f.df.Name()

	deviceRecs, err := f.df.Converter().Dump()
	if err != nil {
		return stats, fmt.Errorf("um: dumping %s: %w", deviceName, err)
	}
	stats.DeviceRecords = len(deviceRecs)

	_, ldapKey := f.df.FromDevice().KeyAttrs()
	mapped := f.df.FromDevice().MappedAttrs()

	// One directory scan builds the key index both passes use; locating
	// each device record with its own subtree search would make
	// synchronization quadratic in the population.
	allEntries, err := u.cfg.Backing.Search(&ldap.SearchRequest{
		BaseDN: u.cfg.Suffix.String(),
		Scope:  ldap.ScopeWholeSubtree,
		Filter: ldap.Eq("objectClass", mcschema.ClassPerson),
	})
	if err != nil {
		return stats, fmt.Errorf("um: dumping directory: %w", err)
	}
	entryByKey := map[string]*ldapclient.Entry{}
	for _, e := range allEntries {
		if k := e.First(ldapKey); k != "" {
			entryByKey[k] = e
		}
	}

	// Pass 1: device -> directory. Every device record must exist in the
	// directory with converged attributes. Comparison and convergence
	// cover only the attributes the device speaks for (the mapping body's
	// targets), never derive-rule helpers like sn, and never the origin
	// stamp — synchronization is reconciliation, not an update.
	for _, rec := range deviceRecs {
		img, err := f.df.FromDevice().Image(rec)
		if err != nil {
			stats.Errors++
			u.logError(deviceName, "ldap", "sync", rec.First(f.keySrc()), err)
			continue
		}
		key := img.First(ldapKey)
		if key == "" {
			stats.Errors++
			u.logError(deviceName, "ldap", "sync", rec.String(), fmt.Errorf("record has no %s", ldapKey))
			continue
		}
		existing := entryByKey[key]
		if existing == nil {
			err := u.ldapDirect.AddEntry(img, key)
			if err != nil {
				stats.Errors++
				u.logError(deviceName, "ldap", "sync-add", key, err)
				continue
			}
			stats.DirectoryAdds++
			continue
		}
		cmp := restrictRecord(img, mapped)
		cur := entryMappedRecord(existing, mapped)
		if mappedInSync(cmp, cur) {
			stats.AlreadyInSync++
			continue
		}
		if policy == DeviceWins {
			if err := u.ldapDirect.ConvergeEntry(existing, cur, cmp); err != nil {
				stats.Errors++
				u.logError(deviceName, "ldap", "sync-mod", key, err)
				continue
			}
			stats.DirectoryMods++
			continue
		}
		// DirectoryWins: push the directory's state down to the device.
		tu, err := f.df.Translate(lexpress.Descriptor{
			Source: "ldap", Op: lexpress.OpModify, Key: existing.DN,
			Old: entryRecord(existing), New: entryRecord(existing),
		})
		if err != nil || tu == nil {
			stats.Errors++
			u.logError("ldap", deviceName, "sync-mod", key, err)
			continue
		}
		if _, err := f.df.Apply(tu); err != nil {
			stats.Errors++
			u.logError("ldap", deviceName, "sync-mod", tu.Key, err)
			continue
		}
		stats.DeviceMods++
	}

	// Pass 2: directory -> device. People the directory places on this
	// device but the device does not know get created there.
	byKey := map[string]bool{}
	for _, rec := range deviceRecs {
		byKey[rec.First(f.keySrc())] = true
	}
	for _, e := range allEntries {
		rec := entryRecord(e)
		tu, err := f.df.Translate(lexpress.Descriptor{
			Source: "ldap", Op: lexpress.OpAdd, Key: e.DN, New: rec,
		})
		if err != nil || tu == nil {
			continue // not under this device's management
		}
		if byKey[tu.Key] {
			continue
		}
		if _, err := f.df.Apply(tu); err != nil {
			stats.Errors++
			u.logError("ldap", deviceName, "sync-add", tu.Key, err)
			continue
		}
		stats.DeviceAdds++
	}
	u.logf("um: synchronized %s: %+v", deviceName, stats)
	return stats, nil
}

// SynchronizeAll reconciles every registered device under ONE quiesce: the
// system goes quiet once for the whole pass instead of cycling the gateway
// quiesce (and its update-rejection window) per device.
func (u *UM) SynchronizeAll() (map[string]SyncStats, error) {
	out := map[string]SyncStats{}
	quiesced, release, err := u.quiesceForSync()
	if err != nil {
		return out, err
	}
	defer release()
	for _, df := range u.filters {
		s, err := u.synchronizeQuiesced(&filterRef{df: df}, DeviceWins, quiesced)
		out[df.Name()] = s
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// filterRef wraps a device filter with sync-pass helpers.
type filterRef struct{ df *filter.DeviceFilter }

// keySrc returns the device-side key attribute.
func (f *filterRef) keySrc() string {
	src, _ := f.df.FromDevice().KeyAttrs()
	return src
}

// restrictRecord keeps only the listed attributes (minus the origin stamp).
func restrictRecord(rec lexpress.Record, attrs []string) lexpress.Record {
	out := lexpress.NewRecord()
	for _, a := range attrs {
		if strings.EqualFold(a, mcschema.AttrLastUpdater) {
			continue
		}
		if vs := rec.Get(a); len(vs) > 0 {
			out.Set(a, vs...)
		}
	}
	return out
}

// entryMappedRecord extracts the mapped attributes currently on a directory
// entry (minus the origin stamp).
func entryMappedRecord(e *ldapclient.Entry, mapped []string) lexpress.Record {
	out := lexpress.NewRecord()
	for _, a := range mapped {
		if strings.EqualFold(a, mcschema.AttrLastUpdater) {
			continue
		}
		if vs := e.Attr(a); len(vs) > 0 {
			out.Set(a, vs...)
		}
	}
	return out
}

// mappedInSync compares the device's image against the entry's state over
// the mapped attributes: object classes need only be present (they
// accumulate across devices); everything else must match exactly — in both
// directions, so an attribute cleared at the device counts as drift.
func mappedInSync(img, cur lexpress.Record) bool {
	keys := map[string]bool{}
	for _, a := range img.Attrs() {
		keys[a] = true
	}
	for _, a := range cur.Attrs() {
		keys[a] = true
	}
	for a := range keys {
		if strings.EqualFold(a, "objectclass") {
			for _, v := range img.Get(a) {
				if !containsFold(cur.Get(a), v) {
					return false
				}
			}
			continue
		}
		if !sameValueSet(img.Get(a), cur.Get(a)) {
			return false
		}
	}
	return true
}

// entryRecord converts a search result entry to a lexpress record.
func entryRecord(e *ldapclient.Entry) lexpress.Record {
	rec := lexpress.NewRecord()
	for _, a := range e.Attributes {
		rec.Set(a.Type, a.Values...)
	}
	return rec
}
