package ldapclient

import (
	"metacomm/internal/ldap"
)

// Pool multiplexes LDAP operations over a fixed set of connections to one
// server. A single Conn serializes requests on the wire (c.mu), so
// concurrent callers — the gateway trapping updates on many client
// connections, the UM's shards writing back — queue behind each other; the
// pool lets min(callers, size) operations proceed in parallel.
//
// Each operation checks a connection out of the free list for its full
// round-trip, so search-entry streams never interleave. Binds are NOT pooled
// state: DialPool binds every connection identically up front (optional), and
// Bind re-binds all connections so later operations run under that identity
// regardless of which connection serves them.
type Pool struct {
	free chan *Conn
	all  []*Conn
}

// DialPool opens size connections to addr. size <= 0 picks 4.
func DialPool(addr string, size int) (*Pool, error) {
	if size <= 0 {
		size = 4
	}
	p := &Pool{free: make(chan *Conn, size)}
	for i := 0; i < size; i++ {
		c, err := Dial(addr)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.all = append(p.all, c)
		p.free <- c
	}
	return p, nil
}

// Size returns the number of pooled connections.
func (p *Pool) Size() int { return len(p.all) }

// Close closes every connection. In-flight operations finish first (Close
// drains the free list), so callers should stop issuing work before closing.
func (p *Pool) Close() error {
	var first error
	for range p.all {
		c := <-p.free
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (p *Pool) get() *Conn  { return <-p.free }
func (p *Pool) put(c *Conn) { p.free <- c }

// Bind authenticates every pooled connection under the same identity.
func (p *Pool) Bind(name, password string) error {
	// Take all connections so no operation runs half-bound.
	conns := make([]*Conn, 0, len(p.all))
	for range p.all {
		conns = append(conns, p.get())
	}
	defer func() {
		for _, c := range conns {
			p.put(c)
		}
	}()
	for _, c := range conns {
		if err := c.Bind(name, password); err != nil {
			return err
		}
	}
	return nil
}

// Search runs a search on a pooled connection.
func (p *Pool) Search(req *ldap.SearchRequest) ([]*Entry, error) {
	c := p.get()
	defer p.put(c)
	return c.Search(req)
}

// SearchOne returns exactly one entry matching the request, or an error.
func (p *Pool) SearchOne(req *ldap.SearchRequest) (*Entry, error) {
	c := p.get()
	defer p.put(c)
	return c.SearchOne(req)
}

// Add creates an entry.
func (p *Pool) Add(dn string, attrs []ldap.Attribute) error {
	c := p.get()
	defer p.put(c)
	return c.Add(dn, attrs)
}

// Delete removes a leaf entry.
func (p *Pool) Delete(dn string) error {
	c := p.get()
	defer p.put(c)
	return c.Delete(dn)
}

// Modify applies changes to an entry.
func (p *Pool) Modify(dn string, changes []ldap.Change) error {
	c := p.get()
	defer p.put(c)
	return c.Modify(dn, changes)
}

// modifyBatchChunk bounds how many pipelined modifies ride one connection
// checkout: large enough to amortize the round-trip, small enough to bound
// socket buffering and keep the pool's other connections fed.
const modifyBatchChunk = 64

// ModifyBatch pipelines the modifies over pooled connections, chunked so a
// huge batch neither monopolizes one connection nor overruns socket
// buffers. Chunks run sequentially, so result order matches op order.
func (p *Pool) ModifyBatch(ops []ModifyOp) []error {
	errs := make([]error, 0, len(ops))
	for len(ops) > 0 {
		n := len(ops)
		if n > modifyBatchChunk {
			n = modifyBatchChunk
		}
		c := p.get()
		errs = append(errs, c.ModifyBatch(ops[:n])...)
		p.put(c)
		ops = ops[n:]
	}
	return errs
}

// ModifyDN renames an entry.
func (p *Pool) ModifyDN(dn, newRDN string, deleteOldRDN bool) error {
	c := p.get()
	defer p.put(c)
	return c.ModifyDN(dn, newRDN, deleteOldRDN)
}

// Compare tests an attribute value assertion.
func (p *Pool) Compare(dn, attr, value string) (bool, error) {
	c := p.get()
	defer p.put(c)
	return c.Compare(dn, attr, value)
}

// Extended performs an extended operation.
func (p *Pool) Extended(name string, value []byte) (*ldap.ExtendedResponse, error) {
	c := p.get()
	defer p.put(c)
	return c.Extended(name, value)
}
