package ldapclient_test

import (
	"testing"

	"metacomm/internal/ldap"
)

// TestPipelineMixedOps drives a single burst mixing searches, modifies, a
// compare, and a failing op, and checks every slot comes back positionally
// with its own entries and error.
func TestPipelineMixedOps(t *testing.T) {
	c := startServer(t)
	seedBatchPeople(t, c, "A", "B")

	results := c.Pipeline([]ldap.Op{
		&ldap.SearchRequest{BaseDN: "cn=A,o=Lucent", Scope: ldap.ScopeBaseObject},
		&ldap.ModifyRequest{DN: "cn=B,o=Lucent", Changes: []ldap.Change{{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"4D"}}}}},
		&ldap.SearchRequest{BaseDN: "cn=Ghost,o=Lucent", Scope: ldap.ScopeBaseObject},
		&ldap.CompareRequest{DN: "cn=A,o=Lucent", Attr: "sn", Value: "A"},
		&ldap.SearchRequest{BaseDN: "cn=B,o=Lucent", Scope: ldap.ScopeBaseObject},
	})
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	if results[0].Err != nil || len(results[0].Entries) != 1 || results[0].Entries[0].First("sn") != "A" {
		t.Errorf("search A = %+v", results[0])
	}
	if results[1].Err != nil {
		t.Errorf("modify B: %v", results[1].Err)
	}
	if !ldap.IsCode(results[2].Err, ldap.ResultNoSuchObject) {
		t.Errorf("ghost search err = %v, want noSuchObject", results[2].Err)
	}
	if results[3].Err != nil {
		t.Errorf("compare: %v", results[3].Err)
	}
	if r, ok := results[3].Op.(*ldap.CompareResponse); !ok || r.Result.Code != ldap.ResultCompareTrue {
		t.Errorf("compare op = %#v, want compareTrue", results[3].Op)
	}
	// The modify earlier in the same burst is visible to the later search:
	// pipelining preserves in-order execution on the connection.
	if results[4].Err != nil || results[4].Entries[0].First("roomNumber") != "4D" {
		t.Errorf("search B after modify = %+v", results[4])
	}

	// The connection still serves ordinary requests afterwards.
	if _, err := c.SearchOne(&ldap.SearchRequest{BaseDN: "cn=A,o=Lucent", Scope: ldap.ScopeBaseObject}); err != nil {
		t.Errorf("post-pipeline search: %v", err)
	}
}

// TestPipelineEntriesStreamPerSlot checks a subtree search inside a burst
// collects its whole entry stream into its own slot.
func TestPipelineEntriesStreamPerSlot(t *testing.T) {
	c := startServer(t)
	seedBatchPeople(t, c, "A", "B", "C")

	results := c.Pipeline([]ldap.Op{
		&ldap.SearchRequest{BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree,
			Filter: ldap.Eq("objectClass", "mcPerson")},
		&ldap.CompareRequest{DN: "cn=C,o=Lucent", Attr: "sn", Value: "C"},
	})
	if results[0].Err != nil || len(results[0].Entries) != 3 {
		t.Fatalf("subtree slot = %+v", results[0])
	}
	if results[1].Err != nil {
		t.Fatalf("compare after stream: %v", results[1].Err)
	}
}
