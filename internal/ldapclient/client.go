// Package ldapclient is a synchronous LDAP v3 client used by the MetaComm
// components (the LDAP filter, the WBA, command-line tools) and by tests. It
// plays the role the paper assigns to "any tool that can perform LDAP
// updates".
package ldapclient

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"metacomm/internal/ldap"
)

// Entry is one search result.
type Entry struct {
	DN         string
	Attributes []ldap.Attribute
}

// Attr returns the values of the named attribute (case-insensitive), or nil.
func (e *Entry) Attr(name string) []string {
	for _, a := range e.Attributes {
		if equalFold(a.Type, name) {
			return a.Values
		}
	}
	return nil
}

// HasAttr reports whether the entry has at least one value of the named
// attribute.
func (e *Entry) HasAttr(name string) bool { return len(e.Attr(name)) > 0 }

// First returns the first value of the named attribute, or "".
func (e *Entry) First(name string) string {
	if vs := e.Attr(name); len(vs) > 0 {
		return vs[0]
	}
	return ""
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Conn is a client connection. Methods are safe for concurrent use; requests
// are serialized on the wire.
type Conn struct {
	mu sync.Mutex
	nc net.Conn
	// rd owns this connection's read-path storage: a buffered reader (BER
	// headers never hit the conn byte-at-a-time), a reused message buffer
	// and a reused element arena, bounded by SetMaxMessageSize. Decoded
	// responses own their memory; only the wire bytes are borrowed.
	rd     *ldap.Reader
	nextID int32
	closed bool
}

// Dial connects to an LDAP server.
func Dial(addr string) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Conn{nc: nc, rd: ldap.NewReader(nc), nextID: 1}, nil
}

// SetMaxMessageSize bounds a single response message (0 restores the
// default, ber.DefaultMaxMessageSize). An oversized response fails the
// in-flight operation before its content is read or allocated; the
// connection should then be discarded.
func (c *Conn) SetMaxMessageSize(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rd.SetMaxMessageSize(n)
}

// Close sends an unbind and closes the connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	_ = (&ldap.Message{ID: c.nextID, Op: &ldap.UnbindRequest{}}).Write(c.nc)
	return c.nc.Close()
}

// roundTrip sends a request and reads responses until the final one for this
// message ID. Intermediate search entries are passed to onEntry.
func (c *Conn) roundTrip(op ldap.Op, onEntry func(*ldap.SearchResultEntry)) (ldap.Op, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("ldapclient: connection closed")
	}
	id := c.nextID
	c.nextID++
	if err := (&ldap.Message{ID: id, Op: op}).Write(c.nc); err != nil {
		return nil, err
	}
	for {
		msg, err := c.rd.ReadMessage()
		if err != nil {
			return nil, err
		}
		if msg.ID != id {
			return nil, fmt.Errorf("ldapclient: response id %d for request %d", msg.ID, id)
		}
		if e, ok := msg.Op.(*ldap.SearchResultEntry); ok {
			if onEntry != nil {
				onEntry(e)
			}
			continue
		}
		return msg.Op, nil
	}
}

// Bind performs a simple bind.
func (c *Conn) Bind(name, password string) error {
	op, err := c.roundTrip(&ldap.BindRequest{Version: 3, Name: name, Password: password}, nil)
	if err != nil {
		return err
	}
	resp, ok := op.(*ldap.BindResponse)
	if !ok {
		return fmt.Errorf("ldapclient: unexpected response %T to bind", op)
	}
	return resp.Result.Err()
}

// Search runs a search and collects all result entries. On a non-success
// final result (e.g. sizeLimitExceeded) the entries received so far are
// returned together with the error, matching LDAP's partial-result
// semantics.
func (c *Conn) Search(req *ldap.SearchRequest) ([]*Entry, error) {
	var out []*Entry
	op, err := c.roundTrip(req, func(e *ldap.SearchResultEntry) {
		out = append(out, &Entry{DN: e.DN, Attributes: e.Attributes})
	})
	if err != nil {
		return nil, err
	}
	resp, ok := op.(*ldap.SearchResultDone)
	if !ok {
		return nil, fmt.Errorf("ldapclient: unexpected response %T to search", op)
	}
	return out, resp.Result.Err()
}

// SearchOne returns exactly one entry matching the request, or an error.
func (c *Conn) SearchOne(req *ldap.SearchRequest) (*Entry, error) {
	entries, err := c.Search(req)
	if err != nil {
		return nil, err
	}
	if len(entries) != 1 {
		return nil, fmt.Errorf("ldapclient: got %d entries, want 1", len(entries))
	}
	return entries[0], nil
}

// Add creates an entry.
func (c *Conn) Add(dn string, attrs []ldap.Attribute) error {
	op, err := c.roundTrip(&ldap.AddRequest{DN: dn, Attributes: attrs}, nil)
	if err != nil {
		return err
	}
	resp, ok := op.(*ldap.AddResponse)
	if !ok {
		return fmt.Errorf("ldapclient: unexpected response %T to add", op)
	}
	return resp.Result.Err()
}

// Delete removes a leaf entry.
func (c *Conn) Delete(dn string) error {
	op, err := c.roundTrip(&ldap.DeleteRequest{DN: dn}, nil)
	if err != nil {
		return err
	}
	resp, ok := op.(*ldap.DeleteResponse)
	if !ok {
		return fmt.Errorf("ldapclient: unexpected response %T to delete", op)
	}
	return resp.Result.Err()
}

// Modify applies changes to an entry.
func (c *Conn) Modify(dn string, changes []ldap.Change) error {
	op, err := c.roundTrip(&ldap.ModifyRequest{DN: dn, Changes: changes}, nil)
	if err != nil {
		return err
	}
	resp, ok := op.(*ldap.ModifyResponse)
	if !ok {
		return fmt.Errorf("ldapclient: unexpected response %T to modify", op)
	}
	return resp.Result.Err()
}

// ModifyOp is one element of a ModifyBatch.
type ModifyOp struct {
	DN      string
	Changes []ldap.Change
}

// PipelineResult carries the outcome of one pipelined operation: the final
// response op, collected search entries (search requests only), and the
// operation's error (transport or result).
type PipelineResult struct {
	Op      ldap.Op
	Entries []*Entry
	Err     error
}

// Pipeline writes a burst of independent requests in one buffer — a single
// kernel write — then reads the responses back in order. The server
// processes one request per connection at a time and responds in order, so
// pipelining is wire-safe and saves a network round-trip per operation; with
// the server's coalesced flushing, the responses come back in one write
// too. Search requests collect their entry stream into Entries.
//
// The returned slice has one element per op. A transport failure fails every
// remaining slot and poisons the connection for the ops after it.
func (c *Conn) Pipeline(ops []ldap.Op) []PipelineResult {
	out := make([]PipelineResult, len(ops))
	if len(ops) == 0 {
		return out
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		err := errors.New("ldapclient: connection closed")
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	firstID := c.nextID
	var buf []byte
	for _, op := range ops {
		m := &ldap.Message{ID: c.nextID, Op: op}
		c.nextID++
		buf = m.AppendTo(buf)
	}
	if _, err := c.nc.Write(buf); err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	for i := range ops {
		want := firstID + int32(i)
		for {
			msg, err := c.rd.ReadMessage()
			if err != nil {
				for j := i; j < len(ops); j++ {
					out[j].Err = err
				}
				return out
			}
			if msg.ID != want {
				err := fmt.Errorf("ldapclient: response id %d for request %d", msg.ID, want)
				for j := i; j < len(ops); j++ {
					out[j].Err = err
				}
				return out
			}
			if e, ok := msg.Op.(*ldap.SearchResultEntry); ok {
				out[i].Entries = append(out[i].Entries, &Entry{DN: e.DN, Attributes: e.Attributes})
				continue
			}
			out[i].Op = msg.Op
			out[i].Err = resultErr(ops[i], msg.Op)
			break
		}
	}
	return out
}

// resultErr extracts the op-level error from a final response, checking the
// response type matches the request.
func resultErr(req, resp ldap.Op) error {
	switch req.(type) {
	case *ldap.SearchRequest:
		if r, ok := resp.(*ldap.SearchResultDone); ok {
			return r.Result.Err()
		}
	case *ldap.ModifyRequest:
		if r, ok := resp.(*ldap.ModifyResponse); ok {
			return r.Result.Err()
		}
	case *ldap.AddRequest:
		if r, ok := resp.(*ldap.AddResponse); ok {
			return r.Result.Err()
		}
	case *ldap.DeleteRequest:
		if r, ok := resp.(*ldap.DeleteResponse); ok {
			return r.Result.Err()
		}
	case *ldap.ModifyDNRequest:
		if r, ok := resp.(*ldap.ModifyDNResponse); ok {
			return r.Result.Err()
		}
	case *ldap.CompareRequest:
		if r, ok := resp.(*ldap.CompareResponse); ok {
			switch r.Result.Code {
			case ldap.ResultCompareTrue, ldap.ResultCompareFalse:
				return nil
			}
			return r.Result.Err()
		}
	case *ldap.BindRequest:
		if r, ok := resp.(*ldap.BindResponse); ok {
			return r.Result.Err()
		}
	case *ldap.ExtendedRequest:
		if r, ok := resp.(*ldap.ExtendedResponse); ok {
			return r.Result.Err()
		}
	}
	return fmt.Errorf("ldapclient: unexpected response %T to %T", resp, req)
}

// ModifyBatch pipelines a set of modify operations over the connection (see
// Pipeline) — the payoff for bulk reconciliation (the UM sync engine's
// directory writebacks).
//
// The returned slice has one element per op: nil on success, the op's
// result error otherwise. A transport failure fills every remaining slot.
func (c *Conn) ModifyBatch(ops []ModifyOp) []error {
	reqs := make([]ldap.Op, len(ops))
	for i, op := range ops {
		reqs[i] = &ldap.ModifyRequest{DN: op.DN, Changes: op.Changes}
	}
	results := c.Pipeline(reqs)
	errs := make([]error, len(ops))
	for i, r := range results {
		errs[i] = r.Err
	}
	return errs
}

// ModifyDN renames an entry.
func (c *Conn) ModifyDN(dn, newRDN string, deleteOldRDN bool) error {
	op, err := c.roundTrip(&ldap.ModifyDNRequest{DN: dn, NewRDN: newRDN, DeleteOldRDN: deleteOldRDN}, nil)
	if err != nil {
		return err
	}
	resp, ok := op.(*ldap.ModifyDNResponse)
	if !ok {
		return fmt.Errorf("ldapclient: unexpected response %T to modifyDN", op)
	}
	return resp.Result.Err()
}

// Compare tests an attribute value assertion; it returns true on
// compareTrue.
func (c *Conn) Compare(dn, attr, value string) (bool, error) {
	op, err := c.roundTrip(&ldap.CompareRequest{DN: dn, Attr: attr, Value: value}, nil)
	if err != nil {
		return false, err
	}
	resp, ok := op.(*ldap.CompareResponse)
	if !ok {
		return false, fmt.Errorf("ldapclient: unexpected response %T to compare", op)
	}
	switch resp.Result.Code {
	case ldap.ResultCompareTrue:
		return true, nil
	case ldap.ResultCompareFalse:
		return false, nil
	}
	return false, resp.Result.Err()
}

// Extended performs an extended operation.
func (c *Conn) Extended(name string, value []byte) (*ldap.ExtendedResponse, error) {
	op, err := c.roundTrip(&ldap.ExtendedRequest{Name: name, Value: value}, nil)
	if err != nil {
		return nil, err
	}
	resp, ok := op.(*ldap.ExtendedResponse)
	if !ok {
		return nil, fmt.Errorf("ldapclient: unexpected response %T to extended", op)
	}
	return resp, resp.Result.Err()
}
