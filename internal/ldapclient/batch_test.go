package ldapclient_test

import (
	"fmt"
	"testing"

	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
)

func seedBatchPeople(t *testing.T, c interface {
	Add(string, []ldap.Attribute) error
}, names ...string) {
	t.Helper()
	if err := c.Add("o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"organization"}}}); err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if err := c.Add("cn="+n+",o=Lucent", []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson"}},
			{Type: "cn", Values: []string{n}},
			{Type: "sn", Values: []string{n}}}); err != nil {
			t.Fatal(err)
		}
	}
}

func roomOp(dn, room string) ldapclient.ModifyOp {
	return ldapclient.ModifyOp{DN: dn, Changes: []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{room}}}}}
}

// TestModifyBatchPipelined: one write, N reads — results come back
// positionally, and a failing op does not poison its neighbors.
func TestModifyBatchPipelined(t *testing.T) {
	c := startServer(t)
	seedBatchPeople(t, c, "A", "B")

	errs := c.ModifyBatch([]ldapclient.ModifyOp{
		roomOp("cn=A,o=Lucent", "1A"),
		roomOp("cn=Ghost,o=Lucent", "2B"),
		roomOp("cn=B,o=Lucent", "3C"),
	})
	if len(errs) != 3 {
		t.Fatalf("got %d results, want 3", len(errs))
	}
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("healthy ops errored: %v / %v", errs[0], errs[2])
	}
	if !ldap.IsCode(errs[1], ldap.ResultNoSuchObject) {
		t.Errorf("errs[1] = %v, want noSuchObject", errs[1])
	}
	for name, want := range map[string]string{"cn=A,o=Lucent": "1A", "cn=B,o=Lucent": "3C"} {
		e, err := c.SearchOne(&ldap.SearchRequest{BaseDN: name, Scope: ldap.ScopeBaseObject})
		if err != nil || e.First("roomNumber") != want {
			t.Errorf("%s room = %v, %v; want %s", name, e, err, want)
		}
	}
	if got := c.ModifyBatch(nil); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
	// The connection survives a batch and still serves ordinary requests.
	if _, err := c.SearchOne(&ldap.SearchRequest{BaseDN: "cn=A,o=Lucent", Scope: ldap.ScopeBaseObject}); err != nil {
		t.Errorf("post-batch search: %v", err)
	}
}

// TestPoolModifyBatchChunks drives a batch larger than the pool's chunk size
// (64) through pooled connections.
func TestPoolModifyBatchChunks(t *testing.T) {
	p := startPool(t, 2)
	names := make([]string, 100)
	for i := range names {
		names[i] = fmt.Sprintf("P%03d", i)
	}
	seedBatchPeople(t, p, names...)

	ops := make([]ldapclient.ModifyOp, len(names))
	for i, n := range names {
		ops[i] = roomOp("cn="+n+",o=Lucent", fmt.Sprintf("R%03d", i))
	}
	errs := p.ModifyBatch(ops)
	if len(errs) != len(ops) {
		t.Fatalf("got %d results, want %d", len(errs), len(ops))
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	for i, n := range names {
		e, err := p.SearchOne(&ldap.SearchRequest{BaseDN: "cn=" + n + ",o=Lucent", Scope: ldap.ScopeBaseObject})
		if err != nil || e.First("roomNumber") != fmt.Sprintf("R%03d", i) {
			t.Fatalf("%s room = %v, %v", n, e, err)
		}
	}
}

func TestModifyBatchAfterClose(t *testing.T) {
	c := startServer(t)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	errs := c.ModifyBatch([]ldapclient.ModifyOp{roomOp("cn=A,o=Lucent", "1A")})
	if len(errs) != 1 || errs[0] == nil {
		t.Errorf("batch on closed conn = %v", errs)
	}
}
