package ldapclient_test

import (
	"testing"

	"metacomm/internal/directory"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/ldapserver"
	"metacomm/internal/mcschema"
)

func startServer(t *testing.T) *ldapclient.Conn {
	t.Helper()
	d := directory.New(mcschema.New())
	srv := ldapserver.NewServer(ldapserver.NewDITHandler(d))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := ldapclient.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestEntryHelpers(t *testing.T) {
	e := &ldapclient.Entry{
		DN: "cn=x,o=Lucent",
		Attributes: []ldap.Attribute{
			{Type: "cn", Values: []string{"x"}},
			{Type: "telephoneNumber", Values: []string{"+1", "+2"}},
		},
	}
	if e.First("CN") != "x" {
		t.Error("case-insensitive First failed")
	}
	if got := e.Attr("TELEPHONENUMBER"); len(got) != 2 {
		t.Errorf("Attr = %v", got)
	}
	if !e.HasAttr("cn") || e.HasAttr("mail") {
		t.Error("HasAttr broken")
	}
	if e.First("missing") != "" {
		t.Error("missing attr should be empty")
	}
}

func TestSearchOneCardinality(t *testing.T) {
	c := startServer(t)
	if err := c.Add("o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"organization"}}}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cn=A,o=Lucent", "cn=B,o=Lucent"} {
		if err := c.Add(name, []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson"}},
			{Type: "sn", Values: []string{"X"}}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.SearchOne(&ldap.SearchRequest{
		BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.Eq("objectClass", "mcPerson")}); err == nil {
		t.Error("SearchOne accepted two entries")
	}
	if _, err := c.SearchOne(&ldap.SearchRequest{
		BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.Eq("cn", "A")}); err != nil {
		t.Errorf("SearchOne for unique entry: %v", err)
	}
}

func TestUseAfterClose(t *testing.T) {
	c := startServer(t)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Error("second Close errored:", err)
	}
	if _, err := c.Search(&ldap.SearchRequest{BaseDN: "", Scope: ldap.ScopeBaseObject}); err == nil {
		t.Error("search after close succeeded")
	}
}

func TestResultErrorsCarryCodes(t *testing.T) {
	c := startServer(t)
	err := c.Delete("cn=nobody,o=Nowhere")
	if !ldap.IsCode(err, ldap.ResultNoSuchObject) {
		t.Errorf("err = %v", err)
	}
}
