package ldapclient_test

import (
	"fmt"
	"sync"
	"testing"

	"metacomm/internal/directory"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/ldapserver"
	"metacomm/internal/mcschema"
)

func startPool(t *testing.T, size int) *ldapclient.Pool {
	t.Helper()
	d := directory.New(mcschema.New())
	srv := ldapserver.NewServer(ldapserver.NewDITHandler(d))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	p, err := ldapclient.DialPool(addr.String(), size)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPoolRoundTrips(t *testing.T) {
	p := startPool(t, 3)
	if p.Size() != 3 {
		t.Fatalf("size = %d", p.Size())
	}
	if err := p.Add("o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"organization"}}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add("cn=Jo,o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson"}},
		{Type: "sn", Values: []string{"Jo"}}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Modify("cn=Jo,o=Lucent", []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"1A"}}}}); err != nil {
		t.Fatal(err)
	}
	e, err := p.SearchOne(&ldap.SearchRequest{BaseDN: "cn=Jo,o=Lucent", Scope: ldap.ScopeBaseObject})
	if err != nil || e.First("roomNumber") != "1A" {
		t.Fatalf("search = %v, %v", e, err)
	}
	match, err := p.Compare("cn=Jo,o=Lucent", "sn", "Jo")
	if err != nil || !match {
		t.Fatalf("compare = %v, %v", match, err)
	}
	if err := p.ModifyDN("cn=Jo,o=Lucent", "cn=Joe", true); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete("cn=Joe,o=Lucent"); err != nil {
		t.Fatal(err)
	}
}

func TestPoolConcurrentClients(t *testing.T) {
	p := startPool(t, 4)
	if err := p.Add("o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"organization"}}}); err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("cn=Worker %02d,o=Lucent", w)
			if err := p.Add(name, []ldap.Attribute{
				{Type: "objectClass", Values: []string{"mcPerson"}},
				{Type: "sn", Values: []string{"W"}}}); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 20; i++ {
				if err := p.Modify(name, []ldap.Change{{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprint(i)}}}}); err != nil {
					errs <- err
					return
				}
				e, err := p.SearchOne(&ldap.SearchRequest{BaseDN: name, Scope: ldap.ScopeBaseObject})
				if err != nil {
					errs <- err
					return
				}
				if got := e.First("roomNumber"); got != fmt.Sprint(i) {
					errs <- fmt.Errorf("%s: roomNumber = %q, want %d (responses crossed streams)", name, got, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	entries, err := p.Search(&ldap.SearchRequest{BaseDN: "o=Lucent",
		Scope: ldap.ScopeWholeSubtree, Filter: ldap.Eq("objectClass", "mcPerson")})
	if err != nil || len(entries) != workers {
		t.Fatalf("final search = %d entries, %v", len(entries), err)
	}
}
