package lexpress

// AST node types produced by the parser and consumed by the compiler.

// expr is a lexpress expression. All expressions evaluate to a value list
// (scalar results are single-element lists; an empty list means "absent").
type expr interface{ isExpr() }

type strLit struct{ Val string }
type numLit struct{ Val int }

// attrRef references a source attribute; it evaluates to all of its values
// (lexpress's multi-valued attribute processing).
type attrRef struct{ Name string }

// concatExpr joins the first values of its parts into one scalar. If any
// part is absent the result is absent — a mapping cannot half-build a value.
type concatExpr struct{ Parts []expr }

// altExpr is the alternate attribute mapping operator 'a ? b ? c': the first
// non-absent option wins.
type altExpr struct{ Options []expr }

// callExpr invokes a builtin (substr, lower, upper, trim, replace, group,
// lookup, values, join, split, count, first).
type callExpr struct {
	Fn   string
	Args []expr
}

func (strLit) isExpr()     {}
func (numLit) isExpr()     {}
func (attrRef) isExpr()    {}
func (concatExpr) isExpr() {}
func (altExpr) isExpr()    {}
func (callExpr) isExpr()   {}

// cond is a lexpress condition.
type cond interface{ isCond() }

type cmpCond struct {
	NE   bool
	L, R expr
}

// likeCond tests expr against a glob ('like') or full pattern ('matches').
type likeCond struct {
	E       expr
	Pat     string
	IsMatch bool // matches vs like
}

type presentCond struct{ Attr string }

type andCond struct{ L, R cond }
type orCond struct{ L, R cond }
type notCond struct{ C cond }

func (cmpCond) isCond()     {}
func (likeCond) isCond()    {}
func (presentCond) isCond() {}
func (andCond) isCond()     {}
func (orCond) isCond()      {}
func (notCond) isCond()     {}

// stmt is a mapping-body statement.
type stmt interface{ isStmt() }

// mapStmt assigns one expression to a target attribute. Assignments are
// ordered and first-mapping-wins: a later map to an already-assigned target
// attribute is skipped, which is how ordered special cases and alternates
// compose.
type mapStmt struct {
	Dst   string
	E     expr
	Guard cond // nil when unguarded
}

// setStmt assigns an explicit value list (multi-valued).
type setStmt struct {
	Dst   string
	Es    []expr
	Guard cond
}

func (mapStmt) isStmt() {}
func (setStmt) isStmt() {}

// deriveStmt is a transitive-closure rule over the TARGET schema: when its
// inputs are present and its output is not explicitly set, it fires during
// closure processing.
type deriveStmt struct {
	Dst string
	E   expr
	// Guard restricts when the rule may fire (nil = always); evaluated
	// against the record under closure.
	Guard cond
}

// tableDef is a table translation with an optional default.
type tableDef struct {
	Name       string
	Entries    map[string]string
	Default    string
	HasDefault bool
}

// mappingAST is a parsed mapping unit.
type mappingAST struct {
	Name   string
	Source string
	Target string
	// KeySrc/KeyDst define the record-key correspondence.
	KeySrc, KeyDst string
	Tables         map[string]*tableDef
	Stmts          []stmt
	Derives        []deriveStmt
	Partition      cond // nil = target manages everything
	Originator     string
	// Owns lists source-schema attributes this mapping's TARGET exclusively
	// owns: when the target's record disappears, these are the attributes
	// to clear from the source-side entry.
	Owns []string
}
